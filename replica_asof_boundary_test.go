package immortaldb

// Follower-side AS OF boundary semantics, mirroring asof_boundary_test.go on
// a replica fed through the shipping path:
//
//   - a query exactly AT the replication horizon (MaxVisible) succeeds and is
//     inclusive of the newest applied commit;
//   - one sequence number or one wall tick past the horizon is a typed
//     ErrBeyondHorizon refusal — never a torn view of half-applied commits;
//   - same-tick commits keep their sequence-number ordering on the replica;
//   - a time split (an SMO) arrives in the shipped log and applies
//     atomically: a replica stepping redo one record at a time always serves
//     a consistent prefix of the primary's history, even mid-split.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"immortaldb/internal/itime"
)

func TestReplicaAsOfBoundaries(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	// No AutoStep: the clock moves only when the test says so, making every
	// commit timestamp — wall tick AND sequence number — predictable.
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	opts := testOpts(func(o *Options) { o.Clock = clock })

	p, err := Open(pdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tbl, err := p.CreateTable("t", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}

	// a and b commit inside one wall tick; c lands on a later tick.
	tsA := commitKV(t, p, tbl, "k", "a")
	tsB := commitKV(t, p, tbl, "k", "b")
	clock.Advance(5 * itime.TickDuration)
	tsC := commitKV(t, p, tbl, "k", "c")
	if tsA.Wall != tsB.Wall || tsB.Seq != tsA.Seq+1 {
		t.Fatalf("setup: a (%v) and b (%v) were meant to be same-tick neighbors", tsA, tsB)
	}

	ropts := testOpts(func(o *Options) { o.Clock = clock })
	r, err := OpenReplica(rdir, ropts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	shipAll(t, p, r)

	rtbl, err := r.Table("t")
	if err != nil {
		t.Fatal(err)
	}

	// The replica's horizon is exactly the newest applied commit.
	h := r.Horizon()
	if h.MaxVisible != tsC {
		t.Fatalf("horizon %v, want newest commit %v", h.MaxVisible, tsC)
	}

	check := func(r *DB, rtbl *Table, atHorizon map[string]string) {
		// The primary's boundary matrix, replayed on the follower.
		wantState(t, r, rtbl, tsA, "replica at first commit", map[string]string{"k": "a"})
		wantState(t, r, rtbl, tsB, "replica at same-tick successor", map[string]string{"k": "b"})
		wantState(t, r, rtbl, tsC, "replica at later-tick commit", map[string]string{"k": "c"})
		wantState(t, r, rtbl, Timestamp{Wall: tsC.Wall - 1, Seq: 0}, "replica tick before c", map[string]string{"k": "b"})
		wantState(t, r, rtbl, Timestamp{Wall: tsA.Wall - 1, Seq: 0}, "replica before first commit", map[string]string{})

		// Exactly at the horizon: inclusive, succeeds.
		wantState(t, r, rtbl, r.Horizon().MaxVisible, "replica at horizon", atHorizon)

		// One sequence number past the horizon, and one wall tick past it:
		// typed refusals, not torn views.
		v := r.Horizon().MaxVisible
		for _, past := range []Timestamp{
			{Wall: v.Wall, Seq: v.Seq + 1},
			{Wall: v.Wall + 1, Seq: 0},
		} {
			tx, err := r.BeginAsOfTS(past)
			if !errors.Is(err, ErrBeyondHorizon) {
				if tx != nil {
					tx.Rollback()
				}
				t.Fatalf("AS OF %v past horizon %v: err = %v, want ErrBeyondHorizon", past, v, err)
			}
		}
	}
	check(r, rtbl, map[string]string{"k": "c"})

	// The refusal is a refusal, not a wound: the replica still serves reads
	// at and below the horizon afterwards, and after more commits ship, the
	// once-refused instant becomes servable.
	clock.Advance(itime.TickDuration)
	tsD := commitKV(t, p, tbl, "k", "d")
	shipAll(t, p, r)
	if got := r.Horizon().MaxVisible; got != tsD {
		t.Fatalf("horizon after catch-up %v, want %v", got, tsD)
	}
	wantState(t, r, rtbl, tsD, "replica at new horizon", map[string]string{"k": "d"})
	wantState(t, r, rtbl, tsC, "replica history intact", map[string]string{"k": "c"})

	// And the whole matrix survives a replica close/reopen (recovery over the
	// byte-identical log copy rebuilds the same history).
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = OpenReplica(rdir, testOpts(func(o *Options) { o.Clock = clock }))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rtbl, err = r.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	check(r, rtbl, map[string]string{"k": "d"})
}

// TestReplicaTimeSplitAtomic forces time splits (SMOs) on the primary, then
// feeds the replica one redo record at a time. After every single applied
// record the replica's view at its own horizon must equal the primary model
// at that horizon — so an in-flight time split is never visible half-done.
func TestReplicaTimeSplitAtomic(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	opts := testOpts(func(o *Options) { o.Clock = clock })

	p, err := Open(pdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tbl, err := p.CreateTable("t", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}

	// Version churn over few keys on 1 KB pages overflows current pages with
	// history, forcing time splits; occasional checkpoints exercise the
	// replica-checkpoint records in the same stream.
	type commitState struct {
		ts    Timestamp
		state map[string]string
	}
	model := map[string]string{}
	var commits []commitState
	for i := 0; i < 80; i++ {
		clock.Advance(itime.TickDuration)
		key := fmt.Sprintf("k%d", i%4)
		val := fmt.Sprintf("v%03d.%060d", i, i)
		ts := commitKV(t, p, tbl, key, val)
		model[key] = val
		snap := make(map[string]string, len(model))
		for k, v := range model {
			snap[k] = v
		}
		commits = append(commits, commitState{ts: ts, state: snap})
		if i%20 == 19 {
			if err := p.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if splits := p.TreeStats(tbl).TimeSplits; splits == 0 {
		t.Fatal("setup: workload forced no time splits; the SMO path is not exercised")
	}

	r, err := OpenReplica(rdir, testOpts(func(o *Options) { o.Clock = clock }))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Ship everything, then apply ONE record per step, checking consistency
	// at the horizon after each.
	for {
		ch, err := p.Log().ShipRead(r.Log().End(), 4096)
		if err != nil {
			t.Fatalf("ShipRead: %v", err)
		}
		if len(ch.Data) == 0 {
			break
		}
		if err := r.Log().IngestChunk(ch); err != nil {
			t.Fatalf("IngestChunk at %d: %v", ch.At, err)
		}
	}
	rtbl := (*Table)(nil)
	steps := 0
	for {
		n, err := r.ReplicaApply(1)
		if err != nil {
			t.Fatalf("ReplicaApply step %d: %v", steps, err)
		}
		if n == 0 {
			break
		}
		steps++
		if rtbl == nil {
			rtbl, _ = r.Table("t") // nil until the catalog record applies
		}
		if rtbl == nil {
			continue
		}
		// The newest commit at or below the horizon defines the only legal
		// answer; a torn SMO would break the scan or change the state.
		h := r.Horizon().MaxVisible
		want := map[string]string{}
		for _, c := range commits {
			if c.ts.After(h) {
				break
			}
			want = c.state
		}
		wantState(t, r, rtbl, h, fmt.Sprintf("replica mid-redo step %d", steps), want)
	}
	if rtbl == nil {
		t.Fatal("replica never saw the table")
	}

	// Fully caught up: every commit's AS OF matches the model exactly.
	for i, c := range commits {
		wantState(t, r, rtbl, c.ts, fmt.Sprintf("replica final commit %d", i), c.state)
	}
}
