package immortaldb

import (
	"fmt"
	"os"
	"path/filepath"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/vfs"
	"immortaldb/internal/wal"
)

// ParseAsOf parses a SQL AS OF time literal ("2004-08-12 10:15:20", a bare
// date, or m/d/y forms) into a Timestamp that sees every transaction
// committed during that tick — the same parse BEGIN TRAN AS OF uses.
func ParseAsOf(s string) (Timestamp, error) { return itime.ParseAsOf(s) }

// RestoreAsOf clones the database at srcDir into dstDir as it stood at
// timestamp ts: the source's log chain is cut just after the last commit
// record at or before ts, the prefix is copied byte-for-byte into a fresh
// destination log, and an ordinary open replays it from the beginning of
// history — rebuilding every page from logged images and version records,
// and undoing the transactions the cut left without a commit. The source is
// only read (via the never-mutating retained-chain scan), so a live or
// crashed database can be restored from without touching it.
//
// The chain must reach back to the database's creation: run the source with
// Options.RetainWAL, or restore from a follower that retains its copy.
// Commit records appear in timestamp order (timestamps are chosen under the
// same lock that orders commit records), so a single cut point captures
// exactly the committed state at ts.
func RestoreAsOf(srcDir, dstDir string, ts Timestamp, opts *Options) error {
	o := opts.withDefaults()
	fsys := o.FS
	if fsys == nil {
		if err := os.MkdirAll(dstDir, 0o755); err != nil {
			return fmt.Errorf("immortaldb: create %s: %w", dstDir, err)
		}
		fsys = vfs.OS()
	}
	srcLog := filepath.Join(srcDir, walFile)
	start, err := wal.RetainedStart(fsys, srcLog)
	if err != nil {
		return fmt.Errorf("immortaldb: restore source %s: %w", srcDir, err)
	}
	if start != wal.FirstLSN {
		return fmt.Errorf("immortaldb: restore needs the full log chain, but %s starts at %d — run the source with Options.RetainWAL", srcDir, start)
	}
	if existing, err := fsys.List(dstDir + string(filepath.Separator)); err == nil && len(existing) > 0 {
		return fmt.Errorf("immortaldb: restore destination %s is not empty", dstDir)
	}

	// Find the cut: the end of the last commit at or before ts. Update
	// records of still-uncommitted transactions before the cut are fine —
	// recovery undoes them, exactly as it would after a crash at that
	// moment.
	cut := wal.FirstLSN
	if err := wal.ScanRetained(fsys, srcLog, func(rec *wal.Record) error {
		if rec.Type == wal.TypeCommit && !rec.TS.After(ts) {
			cut = rec.EndLSN()
		}
		return nil
	}); err != nil {
		return err
	}
	if cut == wal.FirstLSN {
		return fmt.Errorf("%w: no commit at or before %v in %s", ErrNoHistory, ts, srcDir)
	}

	dst, err := wal.OpenFS(fsys, filepath.Join(dstDir, walFile))
	if err != nil {
		return err
	}
	if err := wal.CopyRetained(fsys, srcLog, cut, dst); err != nil {
		dst.Close()
		return fmt.Errorf("immortaldb: restore log copy: %w", err)
	}
	if err := dst.SyncIngested(); err != nil {
		dst.Close()
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}

	// An ordinary open finishes the job: full redo from genesis, undo of the
	// cut's losers, and a checkpoint that makes the clone self-sufficient.
	db, err := openDB(dstDir, opts, false)
	if err != nil {
		return fmt.Errorf("immortaldb: restore replay: %w", err)
	}
	return db.Close()
}
