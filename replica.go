package immortaldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"immortaldb/internal/cow"
	"immortaldb/internal/itime"
	"immortaldb/internal/obs"
	"immortaldb/internal/stamp"
	"immortaldb/internal/storage/disk"
	"immortaldb/internal/storage/page"
	"immortaldb/internal/storage/vfs"
	"immortaldb/internal/wal"
)

// Replica support: a follower holds a byte-identical copy of the primary's
// WAL (grown via wal.IngestChunk) and runs continuous redo over it —
// the same redo logic as crash recovery, executed live while the engine
// serves snapshot and AS OF reads at the replication horizon. Because the
// log copy is an exact byte prefix of the primary's, follower crash recovery
// is ordinary recovery, and catch-up after any interruption just resumes
// ingesting at the copy's end.

var (
	obsReplApplied = obs.NewCounter("immortaldb_replica_records_applied_total", "Log records applied by replica continuous redo.")
	obsReplHorizon = obs.NewGauge("immortaldb_replica_applied_lsn", "Replication horizon: end LSN of the last fully applied record.")
)

// OpenReplica opens a database directory holding a replica's log copy and
// page state, recovers it to the horizon its local log supports, and starts
// serving reads. The returned DB accepts Begin/BeginAsOf (reads at or below
// the horizon) and refuses every write with ErrReplica; feed it the
// primary's log with Log().IngestChunk and advance the horizon with
// ReplicaApply.
func OpenReplica(dir string, opts *Options) (*DB, error) {
	return openDB(dir, opts, true)
}

// IsReplica reports whether the database currently serves as a read replica —
// opened with OpenReplica and not yet promoted, or a primary demoted by
// PromoteToFollower.
func (db *DB) IsReplica() bool { return db.replica.Load() }

// Epoch returns the promotion epoch: 0 for a database that never failed over,
// otherwise the epoch of the newest promotion recorded in its log.
func (db *DB) Epoch() uint64 { return db.epoch.Load() }

// Log exposes the write-ahead log for replication plumbing: ShipRead on a
// primary, IngestChunk/SyncIngested on a replica. Misusing it on a live
// primary can corrupt the database; the repl package is its only intended
// caller.
func (db *DB) Log() *wal.Log { return db.log }

// ReplicaHorizon is a replica's replication horizon: the log position and
// visibility watermark through which the local state is complete.
type ReplicaHorizon struct {
	// AppliedLSN is the end LSN of the last fully applied log record.
	AppliedLSN uint64
	// MaxVisible is the newest commit timestamp the replica serves:
	// snapshot reads begin here, AS OF reads must be at or below it.
	MaxVisible Timestamp
}

// Horizon returns the replica's current replication horizon.
func (db *DB) Horizon() ReplicaHorizon {
	return ReplicaHorizon{
		AppliedLSN: db.appliedLSN.Load(),
		MaxVisible: db.visibleTS(),
	}
}

// errPauseApply stops a bounded ReplicaApply scan between records.
var errPauseApply = errors.New("immortaldb: replica apply pause")

// ReplicaApply runs continuous redo over the ingested log from the current
// horizon, applying at most limit records (0: everything ingested so far),
// and returns how many were applied. Commit records atomically publish
// their transaction's visibility; the primary's checkpoint records drive a
// local checkpoint so follower recovery stays bounded. Safe to call
// repeatedly and concurrently with reads; calls serialize among themselves.
func (db *DB) ReplicaApply(limit int) (int, error) {
	if !db.replica.Load() {
		return 0, fmt.Errorf("immortaldb: ReplicaApply on a primary")
	}
	db.replayMu.Lock()
	defer db.replayMu.Unlock()
	return db.replicaApplyLocked(limit)
}

// replicaApplyLocked is ReplicaApply's body; callers hold replayMu. Promote
// uses it directly to drain redo to the ingested end with the lock already
// held, so no records can slip in between the final drain and the log seal.
func (db *DB) replicaApplyLocked(limit int) (int, error) {
	db.mu.Lock()
	closed := db.closed || db.draining
	db.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	if err := db.Degraded(); err != nil {
		return 0, err
	}
	applied := 0
	from := wal.LSN(db.appliedLSN.Load())
	err := db.log.ScanComplete(from, func(rec *wal.Record) error {
		if err := db.applyReplicated(rec); err != nil {
			return err
		}
		applied++
		db.appliedLSN.Store(uint64(rec.EndLSN()))
		if obs.Enabled() {
			obsReplApplied.Inc()
			obsReplHorizon.Set(int64(rec.EndLSN()))
		}
		if limit > 0 && applied >= limit {
			return errPauseApply
		}
		return nil
	})
	if errors.Is(err, errPauseApply) {
		err = nil
	}
	if err != nil {
		db.degradeIf(err)
	}
	return applied, err
}

// applyReplicated applies one shipped record. Callers hold replayMu.
func (db *DB) applyReplicated(rec *wal.Record) error {
	if rec.TID != 0 {
		db.tids.Bump(rec.TID)
	}
	switch rec.Type {
	case wal.TypePromote:
		// The upstream primary is itself a promoted survivor; adopt its epoch
		// so this follower refuses any lower-epoch zombie that comes calling.
		db.epoch.Store(rec.Epoch)
		return nil
	case wal.TypeCommit:
		// Publish the mapping first, then flip visibility: a snapshot begun
		// between the two reads the old watermark and cannot see this
		// transaction's versions (its timestamp postdates the watermark), so
		// the commit appears atomically — never half.
		if err := db.stamp.RestoreCommitted(rec.TID, rec.TS, rec.HasTT); err != nil {
			return err
		}
		db.seq.Reset(rec.TS)
		db.advanceVisible(rec.TS)
		return nil
	case wal.TypeAbort:
		return nil
	case wal.TypeCheckpoint:
		return db.replicaCheckpoint(rec)
	default:
		return db.replayer.apply(rec)
	}
}

// replicaCheckpoint mirrors a primary checkpoint on the replica: harden
// everything the record covers, then move the local checkpoint pointer to
// the record so the next recovery scan starts there. Ordering matters — the
// ingested log must be durable before the PTT mappings derived from it, and
// all pages must be down before the pointer moves (the primary's own
// flush-before-checkpoint discipline).
func (db *DB) replicaCheckpoint(rec *wal.Record) error {
	ck, err := wal.UnmarshalCheckpoint(rec.Blob)
	if err != nil {
		return err
	}
	if err := db.log.SyncIngested(); err != nil {
		return err
	}
	if err := db.stamp.SyncPTT(); err != nil {
		return err
	}
	if err := db.saveCatalogMeta(); err != nil {
		return err
	}
	if err := db.pool.FlushAll(true); err != nil {
		return err
	}
	if err := db.log.SetCheckpoint(rec.LSN); err != nil {
		return err
	}
	scanStart := ck.RedoScanStart(rec.LSN)
	if !db.opts.RetainWAL {
		if err := db.log.TruncateBefore(scanStart); err != nil {
			obsCkptTruncErr.Inc()
		}
	}
	if _, err := db.stamp.RunGC(scanStart); err != nil {
		return err
	}
	return db.stamp.SyncPTT()
}

// Promote flips a replica to a read-write primary: continuous redo finishes
// to the ingested end, the log copy is sealed at its last complete record
// (the fence — a half-shipped record from the dead primary is cut away), and
// a TypePromote record carrying the new monotonic epoch and the fence LSN is
// appended and made durable BEFORE any write can be accepted. The epoch
// fences the deposed primary: a zombie that comes back can never have acked a
// commit this timeline lacks, because its own commit path refuses once it is
// demoted (PromoteToFollower) and its unshipped log suffix was cut at the
// fence. TIDs continue above everything replicated (each shipped record
// bumped the allocator), so the new primary's transactions are disjoint from
// the old one's.
//
// Returns the new epoch. Promoting a primary is a typed no-op error,
// ErrNotReplica — a supervisor retrying promotion learns the node already
// serves writes. Background history compaction (Options.HistCompactEvery)
// starts on the next reopen, not at promotion.
func (db *DB) Promote() (uint64, error) {
	if !db.replica.Load() {
		return 0, ErrNotReplica
	}
	db.replayMu.Lock()
	db.mu.Lock()
	closed := db.closed || db.draining
	db.mu.Unlock()
	if closed {
		db.replayMu.Unlock()
		return 0, ErrClosed
	}
	// Bounded redo to the ingested end: every complete record already shipped
	// is applied, so the fence equals the applied horizon and nothing sealed
	// into the log is missing from page state.
	if _, err := db.replicaApplyLocked(0); err != nil {
		db.replayMu.Unlock()
		return 0, err
	}
	if err := db.Degraded(); err != nil {
		db.replayMu.Unlock()
		return 0, err
	}
	fence, err := db.log.Promote(wal.LSN(db.appliedLSN.Load()))
	if err != nil {
		db.degradeIf(err)
		db.replayMu.Unlock()
		return 0, err
	}
	db.appliedLSN.Store(uint64(fence))
	// Arm the ENOSPC low-water gate before appends become possible — the
	// open-path step a replica skipped. Safe here: the replica flag still
	// refuses writers, so no Append races this field write.
	db.log.LowWater = db.opts.WALLowWater
	epoch := db.epoch.Load() + 1
	lsn, err := db.log.Append(&wal.Record{Type: wal.TypePromote, Epoch: epoch, Fence: fence})
	if err != nil {
		db.degradeIf(err)
		db.replayMu.Unlock()
		return 0, err
	}
	if err := db.log.SyncTo(lsn); err != nil {
		// The promotion never became durable; the node stays a replica.
		db.degradeIf(err)
		db.replayMu.Unlock()
		return 0, err
	}
	db.epoch.Store(epoch)
	db.replica.Store(false)
	db.replayMu.Unlock()
	// The promotion checkpoint bounds the next recovery and reclaims shipped
	// segments; failure here does not undo the promotion — the record is
	// durable — so the epoch is returned alongside the error.
	if err := db.Checkpoint(); err != nil {
		return epoch, err
	}
	return epoch, nil
}

// PromoteToFollower demotes a primary to a read replica — the fencing half of
// a handover applied to the deposed node. Under commitMu, so it linearizes
// against in-flight commits: a transaction whose commit record was already
// appended committed before the fence; one that arrives after observes the
// replica flag, is refused (ErrReplica, its updates compensated), and is
// never acked — the zombie-primary guarantee. The node serves reads at its
// final state; rejoining the cluster as a live follower requires a reseed
// from the new primary (its unshipped log suffix diverges from the
// survivor's timeline).
//
// Demoting a node that is already a replica returns ErrReplica.
func (db *DB) PromoteToFollower() error {
	if db.replica.Load() {
		return ErrReplica
	}
	db.commitMu.Lock()
	db.replica.Store(true)
	db.commitMu.Unlock()
	// A deposed primary never had a live applier; give it one so ReplicaApply
	// works if the node is later fed a stream again (after a reseed).
	db.replayMu.Lock()
	if db.replayer == nil {
		db.replayer = newLiveApplier(db)
	}
	db.replayMu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Base snapshots: seeding a follower that cannot catch up from the log alone
// (its position fell below the primary's first retained segment).

// PTTEntry is one persistent-timestamp-table mapping carried by a base
// snapshot.
type PTTEntry struct {
	TID TID
	TS  Timestamp
}

// BaseSnapshot is a transferable image of a primary: the page file, catalog
// meta, timestamp table, and the log position a follower must ingest from.
// It is fuzzy in the standard way — pages keep changing while they are read
// — and made consistent by the log suffix from LogStart, which redo replays
// over the installed copy (page-LSN idempotence skips what the copy already
// reflects). While the snapshot is open, checkpoint truncation is pinned at
// LogStart so that suffix cannot disappear mid-transfer; Close releases the
// pin.
type BaseSnapshot struct {
	db      *DB
	floorID uint64

	// CkptLSN is the primary checkpoint record the snapshot hardens; the
	// follower sets its local checkpoint pointer here once it has ingested
	// past it.
	CkptLSN uint64
	// LogStart is the first retained LSN — always a segment boundary — and
	// StartSeq its segment's sequence number: the coordinates the follower's
	// fresh log is re-rooted at.
	LogStart uint64
	StartSeq uint64
	PageSize int
	// NumPages is the page-file length at snapshot time; pages allocated
	// later are re-created by redo of their image records.
	NumPages uint64
	Meta     []byte
	PTT      []PTTEntry
}

// NewBaseSnapshot checkpoints the primary and opens a base snapshot at the
// result. The caller must Close it.
func (db *DB) NewBaseSnapshot() (*BaseSnapshot, error) {
	if db.replica.Load() {
		return nil, ErrReplica
	}
	// The checkpoint bounds the log suffix a follower needs: everything
	// before its redo scan start is reflected in the page file and PTT
	// copied below.
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	b := &BaseSnapshot{db: db, PageSize: db.pager.PageSize()}
	// Register the truncation floor under retainMu so no concurrent
	// checkpoint can reclaim the suffix between reading the start position
	// and pinning it.
	db.retainMu.Lock()
	db.retainNext++
	b.floorID = db.retainNext
	b.LogStart = uint64(db.log.FirstRetained())
	db.retainFloors[b.floorID] = wal.LSN(b.LogStart)
	db.retainMu.Unlock()
	seq, _, err := db.log.SegmentStart(wal.LSN(b.LogStart))
	if err != nil {
		b.Close()
		return nil, err
	}
	b.StartSeq = seq
	b.CkptLSN = uint64(db.log.Checkpoint())
	b.NumPages = db.pager.NumPages()
	b.Meta = append([]byte(nil), db.pager.GetMeta()...)
	err = db.stamp.ExportPTT(func(tid itime.TID, ts itime.Timestamp) bool {
		b.PTT = append(b.PTT, PTTEntry{TID: tid, TS: ts})
		return true
	})
	if err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// Pages streams every data page of the snapshot. The images are current —
// possibly newer than the checkpoint — which redo's page-LSN check absorbs.
func (b *BaseSnapshot) Pages(fn func(id uint64, img []byte) error) error {
	for id := uint64(disk.FirstDataPage); id < b.NumPages; id++ {
		img, err := b.Page(id)
		if err != nil {
			return err
		}
		if err := fn(id, img); err != nil {
			return err
		}
	}
	return nil
}

// FirstPage is the first data page ID a base snapshot transfers; Page is
// valid for FirstPage <= id < NumPages. The shipper uses the pair to stream
// pages incrementally, one pull at a time, instead of materializing the
// whole page file.
func (b *BaseSnapshot) FirstPage() uint64 { return uint64(disk.FirstDataPage) }

// Page reads one data page of the snapshot.
func (b *BaseSnapshot) Page(id uint64) ([]byte, error) {
	img, err := b.db.pager.ReadPage(page.ID(id))
	if err != nil {
		return nil, fmt.Errorf("immortaldb: base snapshot page %d: %w", id, err)
	}
	return img, nil
}

// Close releases the snapshot's truncation pin.
func (b *BaseSnapshot) Close() {
	b.db.retainMu.Lock()
	delete(b.db.retainFloors, b.floorID)
	b.db.retainMu.Unlock()
}

// BaseInstaller rebuilds a follower directory from a primary's base
// snapshot. Usage, in order: InstallBase, WritePage for every streamed page,
// PutPTT for every mapping, StartLog, Ingest until past the snapshot's
// CkptLSN, Finish, then OpenReplica on the directory.
type BaseInstaller struct {
	fsys  vfs.FS
	dir   string
	pager *disk.Pager
	ptt   *cow.Tree
	log   *wal.Log
}

// InstallBase wipes any previous database files in dir and starts a fresh
// install sized to the snapshot's page geometry.
func InstallBase(dir string, opts *Options, pageSize int, numPages uint64, meta []byte) (*BaseInstaller, error) {
	o := opts.withDefaults()
	fsys := o.FS
	if fsys == nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("immortaldb: create %s: %w", dir, err)
		}
		fsys = vfs.OS()
	}
	// A half-synced previous copy must not shine through the new one: remove
	// every file under the directory prefix. The trailing separator matters —
	// List takes a file-name prefix, and without it the directory itself is
	// the prefix, which resolves to a listing of its parent.
	names, err := fsys.List(dir + string(filepath.Separator))
	if err != nil {
		return nil, fmt.Errorf("immortaldb: list %s: %w", dir, err)
	}
	for _, name := range names {
		if err := fsys.Remove(name); err != nil {
			return nil, fmt.Errorf("immortaldb: wipe %s: %w", name, err)
		}
	}
	pager, err := disk.OpenFS(fsys, filepath.Join(dir, pagesFile), pageSize)
	if err != nil {
		return nil, err
	}
	bi := &BaseInstaller{fsys: fsys, dir: dir, pager: pager}
	if err := pager.SetMeta(meta); err != nil {
		bi.Abort()
		return nil, err
	}
	for pager.NumPages() < numPages {
		if _, err := pager.Allocate(); err != nil {
			bi.Abort()
			return nil, err
		}
	}
	ptt, err := cow.Open(filepath.Join(dir, pttFile), cow.Options{
		ValSize: stamp.PTTValueLen,
		NoSync:  o.NoSync,
		FS:      fsys,
	})
	if err != nil {
		bi.Abort()
		return nil, err
	}
	bi.ptt = ptt
	return bi, nil
}

// WritePage installs one streamed page image.
func (bi *BaseInstaller) WritePage(id uint64, img []byte) error {
	return bi.pager.WritePage(page.ID(id), img)
}

// PutPTT installs one timestamp-table mapping.
func (bi *BaseInstaller) PutPTT(e PTTEntry) error {
	buf := make([]byte, itime.EncodedLen)
	e.TS.Encode(buf)
	return bi.ptt.Put(uint64(e.TID), buf)
}

// StartLog creates the local log copy re-rooted at the snapshot's start
// coordinates; Ingest then appends the primary's suffix to it.
func (bi *BaseInstaller) StartLog(startSeq, logStart uint64) error {
	if bi.log != nil {
		return fmt.Errorf("immortaldb: log already started")
	}
	log, err := wal.OpenFS(bi.fsys, filepath.Join(bi.dir, walFile))
	if err != nil {
		return err
	}
	if err := log.ResetIngest(startSeq, wal.LSN(logStart)); err != nil {
		log.Close()
		return err
	}
	bi.log = log
	return nil
}

// Ingest appends one shipped chunk to the installing log copy.
func (bi *BaseInstaller) Ingest(ch wal.ShipChunk) error {
	if bi.log == nil {
		return fmt.Errorf("immortaldb: Ingest before StartLog")
	}
	return bi.log.IngestChunk(ch)
}

// End returns the current end of the installing log copy.
func (bi *BaseInstaller) End() uint64 {
	if bi.log == nil {
		return 0
	}
	return uint64(bi.log.End())
}

// Finish hardens the install and closes its files; the directory is then
// ready for OpenReplica. The log must have been ingested past the
// snapshot's checkpoint record — the local checkpoint pointer is set there,
// and recovery must be able to read the record it points at.
func (bi *BaseInstaller) Finish(ckptLSN uint64) error {
	if bi.log == nil {
		return fmt.Errorf("immortaldb: Finish before StartLog")
	}
	if wal.LSN(ckptLSN) >= bi.log.End() {
		return fmt.Errorf("immortaldb: log ingested only to %d, checkpoint record at %d not covered", bi.log.End(), ckptLSN)
	}
	if err := bi.ptt.Commit(); err != nil {
		return err
	}
	if err := bi.log.SyncIngested(); err != nil {
		return err
	}
	if err := bi.log.SetCheckpoint(wal.LSN(ckptLSN)); err != nil {
		return err
	}
	if err := bi.pager.Sync(); err != nil {
		return err
	}
	var err error
	if e := bi.ptt.Close(); e != nil {
		err = e
	}
	if e := bi.log.Close(); e != nil && err == nil {
		err = e
	}
	if e := bi.pager.Close(); e != nil && err == nil {
		err = e
	}
	bi.log, bi.ptt, bi.pager = nil, nil, nil
	return err
}

// Abort closes the installer's files without finishing; the directory is
// left in an unusable, partially-installed state and a retry starts with a
// fresh InstallBase (which wipes it).
func (bi *BaseInstaller) Abort() {
	if bi.ptt != nil {
		bi.ptt.CloseNoCommit()
		bi.ptt = nil
	}
	if bi.log != nil {
		bi.log.Close()
		bi.log = nil
	}
	if bi.pager != nil {
		bi.pager.Close()
		bi.pager = nil
	}
}
