package immortaldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// modelEvent records one committed write for the reference model.
type modelEvent struct {
	ts  Timestamp
	key string
	val string
	del bool
}

// modelStateAt replays events up to ts.
func modelStateAt(events []modelEvent, at Timestamp) map[string]string {
	state := map[string]string{}
	for _, e := range events {
		if e.ts.After(at) {
			continue
		}
		if e.del {
			delete(state, e.key)
		} else {
			state[e.key] = e.val
		}
	}
	return state
}

// verifyAgainstModel checks the current state and a handful of historical
// states against the model.
func verifyAgainstModel(t *testing.T, db *DB, tbl *Table, events []modelEvent, rng *rand.Rand) {
	t.Helper()
	checkAt := func(at Timestamp, label string) {
		want := modelStateAt(events, at)
		tx, err := db.BeginAsOfTS(at)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]string{}
		err = tx.Scan(tbl, nil, nil, func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		})
		tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d keys, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: %s = %q, want %q", label, k, got[k], v)
			}
		}
	}
	if len(events) == 0 {
		return
	}
	checkAt(events[len(events)-1].ts, "current")
	for i := 0; i < 5; i++ {
		e := events[rng.Intn(len(events))]
		checkAt(e.ts, fmt.Sprintf("as of %v", e.ts))
	}
}

// TestCrashRecoveryRandomized is the heavyweight durability test: a random
// workload interrupted by crashes at random points (sometimes mid-
// transaction, sometimes right after commits, sometimes after checkpoints),
// re-verified against an in-memory model after every recovery — including
// historical (AS OF) states, which exercise post-crash lazy re-timestamping
// from the recovered PTT.
func TestCrashRecoveryRandomized(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			opts := testOpts(func(o *Options) {
				o.PageSize = 1024
				o.CacheFrames = 16 // force evictions (and flush-path stamping)
			})
			var events []modelEvent

			for round := 0; round < 5; round++ {
				db, err := Open(dir, opts)
				if err != nil {
					t.Fatalf("round %d: open: %v", round, err)
				}
				var tbl *Table
				if round == 0 {
					tbl, err = db.CreateTable("t", TableOptions{Immortal: true})
				} else {
					tbl, err = db.Table("t")
				}
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}

				// Everything committed before this round must have survived.
				verifyAgainstModel(t, db, tbl, events, rng)

				// Random committed work.
				nTxns := 10 + rng.Intn(40)
				for i := 0; i < nTxns; i++ {
					tx, err := db.Begin(Serializable)
					if err != nil {
						t.Fatal(err)
					}
					var txEvents []modelEvent
					nOps := 1 + rng.Intn(4)
					for j := 0; j < nOps; j++ {
						k := fmt.Sprintf("key-%02d", rng.Intn(12))
						del := rng.Intn(6) == 0
						v := fmt.Sprintf("s%d-r%d-%d-%d", seed, round, i, j)
						if del {
							err = tx.Delete(tbl, []byte(k))
						} else {
							err = tx.Set(tbl, []byte(k), []byte(v))
						}
						if err != nil {
							t.Fatal(err)
						}
						txEvents = append(txEvents, modelEvent{key: k, val: v, del: del})
					}
					if rng.Intn(5) == 0 {
						if err := tx.Rollback(); err != nil {
							t.Fatal(err)
						}
						continue
					}
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					at := db.Now()
					for _, e := range txEvents {
						e.ts = at
						events = append(events, e)
					}
				}
				// Sometimes checkpoint; sometimes leave everything dirty.
				if rng.Intn(2) == 0 {
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				// Sometimes leave a loser transaction in flight.
				if rng.Intn(2) == 0 {
					tx, _ := db.Begin(Serializable)
					tx.Set(tbl, []byte("key-00"), []byte("loser"))
					tx.Delete(tbl, []byte("key-01"))
					db.log.Flush()
				}
				verifyAgainstModel(t, db, tbl, events, rng)
				db.crash()
			}

			// Final clean open and verify.
			db, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			tbl, err := db.Table("t")
			if err != nil {
				t.Fatal(err)
			}
			verifyAgainstModel(t, db, tbl, events, rng)
		})
	}
}

// TestChainVsTSBDifferential runs an identical committed workload under both
// historical index modes and requires identical answers for every query —
// the two access paths are different routes to the same versions.
func TestChainVsTSBDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	type q struct {
		at  Timestamp
		key string
	}
	var answers [2]map[string]string
	var queries []q

	for mi, mode := range []IndexMode{IndexChain, IndexTSB} {
		rngW := rand.New(rand.NewSource(123)) // same workload both modes
		db, _ := openTestDB(t, func(o *Options) {
			o.HistoricalIndex = mode
			o.PageSize = 1024
		})
		tbl, _ := db.CreateTable("t", TableOptions{Immortal: true})
		var times []Timestamp
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("key-%02d", rngW.Intn(20))
			if rngW.Intn(7) == 0 {
				del(t, db, tbl, k)
			} else {
				set(t, db, tbl, k, fmt.Sprintf("v%d", i))
			}
			times = append(times, db.Now())
		}
		if mi == 0 {
			// Build the query set once, from the first run's timestamps.
			for i := 0; i < 200; i++ {
				queries = append(queries, q{
					at:  times[rng.Intn(len(times))],
					key: fmt.Sprintf("key-%02d", rng.Intn(20)),
				})
			}
		}
		answers[mi] = map[string]string{}
		for qi, qq := range queries {
			tx, err := db.BeginAsOfTS(qq.at)
			if err != nil {
				t.Fatal(err)
			}
			v, ok, err := tx.Get(tbl, []byte(qq.key))
			tx.Commit()
			if err != nil {
				t.Fatal(err)
			}
			answers[mi][fmt.Sprint(qi)] = fmt.Sprintf("%v:%s", ok, v)
		}
		// Timestamps must be identical across runs (same clock schedule) for
		// the comparison to be meaningful.
		if mi == 1 {
			for k, v := range answers[0] {
				if answers[1][k] != v {
					t.Fatalf("query %s: chain=%q tsb=%q", k, v, answers[1][k])
				}
			}
		}
	}
}
