package immortaldb

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"immortaldb/internal/itime"
	"immortaldb/internal/lock"
	"immortaldb/internal/obs"
	"immortaldb/internal/storage/page"
	"immortaldb/internal/tsb"
	"immortaldb/internal/wal"
)

// pageID shortens page.ID in log callbacks.
type pageID = page.ID

// IsolationLevel selects transaction semantics.
type IsolationLevel int

// Isolation levels.
const (
	// Serializable uses fine-grained two-phase locking: shared locks on
	// reads, exclusive locks on writes, all held to commit.
	Serializable IsolationLevel = iota
	// SnapshotIsolation reads the database as of the transaction's start
	// (never blocking on writers) and applies first-committer-wins to its
	// own writes.
	SnapshotIsolation
	// asOf is an internal read-only mode over a past state.
	asOf
)

func (l IsolationLevel) String() string {
	switch l {
	case Serializable:
		return "serializable"
	case SnapshotIsolation:
		return "snapshot"
	case asOf:
		return "as-of"
	default:
		return "unknown"
	}
}

// writeRec remembers one write for rollback and conflict bookkeeping.
type writeRec struct {
	table *Table
	key   string
}

// Tx is a transaction. A Tx must not be used concurrently from multiple
// goroutines.
type Tx struct {
	db     *DB
	id     itime.TID
	mode   IsolationLevel
	snapTS itime.Timestamp // snapshot read point (SnapshotIsolation, asOf)
	// lastLSN is the transaction's most recent log record (head of its undo
	// chain); atomic because checkpoints read it from another goroutine.
	lastLSN atomic.Uint64
	// firstLSN is the transaction's oldest log record — the end of its undo
	// chain, and therefore the oldest record WAL segment truncation must
	// retain while the transaction is live. Zero until the first append.
	firstLSN atomic.Uint64
	// logMu makes a log append and the lastLSN advance one step as seen by a
	// checkpoint's ATT snapshot: a record the snapshot's LastLSN does not
	// cover is guaranteed an LSN at or past the checkpoint's BeginLSN, so
	// the analysis scan finds it and repairs the ATT entry.
	logMu sync.Mutex
	// terminalLogged is set (under db.commitMu) once the transaction's fate
	// is decided in the log — its commit record is appended, or its rollback
	// has fully compensated its updates. Checkpoints skip such transactions:
	// their terminal records precede the checkpoint record, so if recovery
	// ever reads this checkpoint those records are durable, and listing the
	// transaction as active could get a committed transaction undone when
	// the analysis scan starts past its commit record.
	terminalLogged bool
	// killed is set by DB.Close when shutdown force-aborts the transaction:
	// every subsequent operation returns ErrAborted without touching engine
	// state, so Close can roll the transaction back on the owner's behalf.
	killed   atomic.Bool
	writes   []writeRec
	done     bool
	hasTT    bool            // wrote a transaction-time (immortal) table
	fixedTS  itime.Timestamp // timestamp fixed early by CurrentTime (zero: commit-time choice)
	commitTS itime.Timestamp // commit timestamp, set once Commit succeeds
}

// ID returns the transaction's TID.
func (tx *Tx) ID() TID { return tx.id }

// CommitTS returns the transaction's commit timestamp. It is zero until
// Commit returns successfully, and stays zero for transactions that had
// nothing to commit (read-only and AS OF transactions).
func (tx *Tx) CommitTS() Timestamp { return tx.commitTS }

// SnapshotTS returns the transaction's snapshot read point (zero for
// Serializable transactions, which always read the latest committed state).
func (tx *Tx) SnapshotTS() Timestamp { return tx.snapTS }

// Begin starts a read-write transaction at the given isolation level.
func (db *DB) Begin(level IsolationLevel) (*Tx, error) {
	if level != Serializable && level != SnapshotIsolation {
		return nil, fmt.Errorf("immortaldb: unsupported isolation level %v", level)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if db.draining {
		return nil, ErrShuttingDown
	}
	if db.replica.Load() {
		// Any requested level downgrades to a snapshot read at the
		// replication horizon: serializable 2PL would interleave with
		// continuous redo, which takes no transaction locks, so the locks
		// could not actually order anything. The snapshot view is immune —
		// commits become visible atomically when the watermark advances, and
		// structural installs exclude readers per tree. Writes fail with
		// ErrReplica at the first Set/Delete.
		tx := &Tx{db: db, id: db.nextReadTID(), mode: SnapshotIsolation, snapTS: db.visibleTS()}
		db.active[tx.id] = tx
		return tx, nil
	}
	tx := &Tx{db: db, id: db.tids.Next(), mode: level}
	if level == SnapshotIsolation {
		// The snapshot read point is the visibility watermark — the newest
		// commit whose timestamp mapping is published — not seq.Last(): with
		// concurrent committers the sequencer may already have issued
		// timestamps for commits still in flight, and a snapshot that
		// included one would see its versions appear mid-transaction.
		tx.snapTS = db.visibleTS()
	}
	// Stage I of the timestamping protocol: create the VTT entry. Snapshot
	// transactions on non-immortal tables never persist timestamps, but
	// whether this transaction touches an immortal table is unknown yet; the
	// snapshot flag here is refined at commit via the persistent argument.
	db.stamp.Begin(tx.id, false)
	db.active[tx.id] = tx
	return tx, nil
}

// BeginAsOf starts a read-only transaction over the database state as of the
// given wall-clock time ("Begin Tran AS OF", Section 4.2). Only immortal
// tables can be read.
func (db *DB) BeginAsOf(at time.Time) (*Tx, error) {
	ts := itime.FromTime(at)
	ts.Seq = 1<<32 - 1 // see the whole 20 ms tick
	return db.BeginAsOfTS(ts)
}

// BeginAsOfTS is BeginAsOf with an exact engine timestamp (tests, and
// replaying a timestamp obtained from History).
func (db *DB) BeginAsOfTS(ts Timestamp) (*Tx, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if db.draining {
		return nil, ErrShuttingDown
	}
	id := db.tids.Next()
	if db.replica.Load() {
		// Serving a time past the horizon could expose a torn view: some of
		// that moment's commits are applied, others still in flight on the
		// wire. Reads exactly at the horizon are fine — the watermark is the
		// newest fully-applied commit.
		if v := db.visibleTS(); ts.After(v) {
			return nil, fmt.Errorf("%w: requested %v, horizon %v", ErrBeyondHorizon, ts, v)
		}
		id = db.nextReadTID()
	}
	tx := &Tx{db: db, id: id, mode: asOf, snapTS: ts}
	db.active[tx.id] = tx
	return tx, nil
}

// replicaTIDBit marks locally-issued read-transaction IDs on a replica,
// keeping them disjoint from the primary's TID space arriving in the shipped
// log — a replicated record's TID must never collide with a local reader's.
const replicaTIDBit = itime.TID(1) << 63

func (db *DB) nextReadTID() itime.TID {
	return replicaTIDBit | itime.TID(db.readTIDs.Add(1))
}

func (tx *Tx) check(write bool) error {
	if tx.killed.Load() {
		return ErrAborted
	}
	if tx.done {
		return ErrTxDone
	}
	if write && tx.mode == asOf {
		return ErrReadOnly
	}
	if write && tx.db.replica.Load() {
		return ErrReplica
	}
	return nil
}

// opEnter registers a transaction operation in flight, failing if the
// transaction cannot proceed. DB.Close drains registered operations before
// tearing the engine down, and the killed re-check under db.mu linearizes
// against Close's kill-then-drain sequence: an operation either enters
// before the kill (and is waited out) or observes it and backs off.
func (tx *Tx) opEnter(write bool) error {
	if err := tx.check(write); err != nil {
		return err
	}
	db := tx.db
	db.mu.Lock()
	if tx.killed.Load() {
		db.mu.Unlock()
		return ErrAborted
	}
	db.opCount++
	db.mu.Unlock()
	return nil
}

// opExit balances opEnter.
func (db *DB) opExit() {
	db.mu.Lock()
	db.opCount--
	if db.opCount == 0 && db.draining {
		db.opDone.Broadcast()
	}
	db.mu.Unlock()
}

// Set writes key=value in t: an insert if the key is new, an update
// otherwise. On versioned tables this adds a new record version; on
// conventional tables it updates in place.
func (tx *Tx) Set(t *Table, key, value []byte) error {
	return tx.write(t, key, value, false)
}

// Delete removes key from t. On versioned tables this adds a delete stub —
// the record's history remains queryable; on conventional tables the record
// is removed outright.
func (tx *Tx) Delete(t *Table, key []byte) error {
	return tx.write(t, key, nil, true)
}

func (tx *Tx) write(t *Table, key, value []byte, del bool) error {
	if err := tx.opEnter(true); err != nil {
		return err
	}
	defer tx.db.opExit()
	if err := tx.db.Degraded(); err != nil {
		return err
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	db := tx.db
	if err := db.locks.Acquire(tx.id, lock.Key{Table: t.meta.ID, Key: string(key)}, lock.Exclusive); err != nil {
		return err
	}
	if (tx.mode == SnapshotIsolation || !tx.fixedTS.IsZero()) && t.meta.Versioned() {
		// `since` tells LatestInfo how old a version can be before we stop
		// caring — it only chases a delete stub migrated off the current
		// page by a time split when the stub could postdate that bound.
		since := itime.Max
		if tx.mode == SnapshotIsolation {
			since = tx.snapTS
		}
		if !tx.fixedTS.IsZero() && tx.fixedTS.Less(since) {
			since = tx.fixedTS
		}
		ts, tid, _, found, err := t.tree.LatestInfo(key, since)
		if err != nil {
			return err
		}
		// First committer wins: abort if someone committed a newer version
		// of this record after our snapshot (Section 1.1's snapshot
		// isolation semantics). A foreign unstamped latest version is also
		// a conflict: we hold the X lock, so its writer is no longer
		// active — it committed after our snapshot was taken and simply has
		// not been lazily stamped yet.
		if tx.mode == SnapshotIsolation && found && tid != tx.id &&
			(tid != 0 || ts.After(tx.snapTS)) {
			return fmt.Errorf("%w: key %q", ErrWriteConflict, key)
		}
		// CURRENT TIME ordering: overwriting a version stamped after the
		// fixed timestamp would put the chain out of time order.
		if found && tid != tx.id {
			if err := tx.validateFixedTS(ts); err != nil {
				return err
			}
		}
	}

	if !t.meta.Versioned() {
		return tx.writeNoTail(t, key, value, del)
	}

	// Versioned write: a new non-timestamped version (delete stub for
	// deletes), or an in-place overwrite of this transaction's own earlier
	// uncommitted version. Logged as it is applied.
	wasReplace := false
	_, err := t.tree.Insert(tx.id, key, value, del, func(pid pageID, replaced bool, oldVal []byte, oldStub bool) (uint64, error) {
		rec := &wal.Record{
			Type:    wal.TypeInsertVersion,
			TID:     tx.id,
			PrevLSN: wal.LSN(tx.lastLSN.Load()),
			Table:   t.meta.ID,
			Page:    pid,
			Key:     key,
			Value:   value,
			Stub:    del,
		}
		if replaced {
			wasReplace = true
			if oldVal == nil {
				oldVal = []byte{}
			}
			rec.Old = oldVal
			rec.OldStub = oldStub
		}
		return tx.appendChained(rec)
	})
	if err != nil {
		db.degradeIf(err)
		return err
	}
	// Stage II: count the version against the transaction — overwrites did
	// not create a new version.
	if !wasReplace {
		if err := db.stamp.AddRef(tx.id, 1); err != nil {
			return err
		}
	}
	tx.writes = append(tx.writes, writeRec{table: t, key: string(key)})
	if t.meta.Immortal {
		tx.hasTT = true
	}
	return nil
}

// appendChained appends one record to the transaction's undo chain and
// advances lastLSN, atomically with respect to checkpoint ATT snapshots
// (see the logMu field comment).
func (tx *Tx) appendChained(rec *wal.Record) (uint64, error) {
	tx.logMu.Lock()
	defer tx.logMu.Unlock()
	lsn, err := tx.db.log.Append(rec)
	if err != nil {
		tx.db.degradeIf(err)
		return 0, err
	}
	if tx.firstLSN.Load() == 0 {
		tx.firstLSN.Store(uint64(lsn))
	}
	tx.lastLSN.Store(uint64(lsn))
	return uint64(lsn), nil
}

// writeNoTail handles conventional tables: in-place update, outright delete.
func (tx *Tx) writeNoTail(t *Table, key, value []byte, del bool) error {
	appendRec := func(pid pageID, old []byte, existed bool) (uint64, error) {
		rec := &wal.Record{
			Type:    wal.TypeInsertVersion,
			TID:     tx.id,
			PrevLSN: wal.LSN(tx.lastLSN.Load()),
			Table:   t.meta.ID,
			Page:    pid,
			Key:     key,
			Value:   value,
			Stub:    del,
		}
		if existed {
			if old == nil {
				old = []byte{}
			}
			rec.Old = old
		}
		return tx.appendChained(rec)
	}
	withOld := func(pid pageID, old []byte) (uint64, error) { return appendRec(pid, old, true) }
	switch {
	case del:
		if _, err := t.tree.RemoveNoTail(key, withOld); err != nil {
			if errors.Is(err, page.ErrNotFound) {
				return nil // deleting a missing key is a no-op
			}
			return err
		}
	default:
		_, found, err := t.tree.ReplaceNoTail(key, value, withOld)
		if err != nil {
			return err
		}
		if !found {
			if _, err := t.tree.Insert(tx.id, key, value, false,
				func(pid pageID, _ bool, _ []byte, _ bool) (uint64, error) {
					return appendRec(pid, nil, false)
				}); err != nil {
				return err
			}
		}
	}
	tx.writes = append(tx.writes, writeRec{table: t, key: string(key)})
	return nil
}

// Get returns the value of key visible to this transaction.
func (tx *Tx) Get(t *Table, key []byte) ([]byte, bool, error) {
	if err := tx.opEnter(false); err != nil {
		return nil, false, err
	}
	defer tx.db.opExit()
	if tx.mode == asOf && !t.meta.Immortal {
		return nil, false, fmt.Errorf("%w: %s", ErrNotImmortal, t.meta.Name)
	}
	if tx.mode == Serializable {
		if err := tx.db.locks.Acquire(tx.id, lock.Key{Table: t.meta.ID, Key: string(key)}, lock.Shared); err != nil {
			return nil, false, err
		}
	}
	at := itime.Max
	if tx.mode != Serializable {
		at = tx.snapTS
	}
	// Own writes are visible even under snapshot reads — and they postdate
	// the snapshot, so after a time split they can live on a newer page than
	// the one covering snapTS, where the as-of read would instead surface an
	// older committed version. Check them first.
	if tx.mode == SnapshotIsolation && tx.wrote(t, key) {
		cur, err := t.tree.ReadKey(key, itime.Max, tx.id)
		if err != nil {
			return nil, false, err
		}
		if cur.TID == tx.id {
			if cur.Deleted {
				return nil, false, nil
			}
			if cur.Found {
				return cur.Value, true, nil
			}
		}
	}
	res, err := t.tree.ReadKey(key, at, tx.id)
	if err != nil {
		return nil, false, err
	}
	if res.Found || res.Deleted {
		// CURRENT TIME ordering: depending on a version committed after the
		// fixed timestamp contradicts the chosen serialization point.
		if err := tx.validateFixedTS(res.TS); err != nil {
			return nil, false, err
		}
	}
	return res.Value, res.Found, nil
}

// wrote reports whether the transaction has written key in t.
func (tx *Tx) wrote(t *Table, key []byte) bool {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		w := &tx.writes[i]
		if w.table.meta.ID == t.meta.ID && w.key == string(key) {
			return true
		}
	}
	return false
}

// Scan calls fn for every visible record with lo <= key < hi (nil bounds are
// unbounded) in key order; fn returning false stops the scan.
func (tx *Tx) Scan(t *Table, lo, hi []byte, fn func(key, value []byte) bool) error {
	if err := tx.opEnter(false); err != nil {
		return err
	}
	defer tx.db.opExit()
	if tx.mode == asOf && !t.meta.Immortal {
		return fmt.Errorf("%w: %s", ErrNotImmortal, t.meta.Name)
	}
	at := itime.Max
	if tx.mode != Serializable {
		at = tx.snapTS
	}
	// A snapshot transaction's own writes postdate its snapshot, and after a
	// time split they live on a newer page than the one covering snapTS, so
	// the as-of scan can miss them entirely — the scan counterpart of Get's
	// own-write fallback. Overlay the current state of every key this
	// transaction wrote in range.
	var own map[string]tsb.Result
	if tx.mode == SnapshotIsolation {
		for _, w := range tx.writes {
			if w.table.meta.ID != t.meta.ID {
				continue
			}
			k := []byte(w.key)
			if lo != nil && bytes.Compare(k, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				continue
			}
			if _, done := own[w.key]; done {
				continue
			}
			cur, err := t.tree.ReadKey(k, itime.Max, tx.id)
			if err != nil {
				return err
			}
			if cur.TID != tx.id {
				continue // newest version is not ours (should not happen: X lock held)
			}
			if own == nil {
				own = make(map[string]tsb.Result)
			}
			own[w.key] = cur
		}
	}
	var tsErr error
	if own == nil {
		err := t.tree.ScanAsOf(lo, hi, at, tx.id, func(r tsb.Result) bool {
			if tsErr = tx.validateFixedTS(r.TS); tsErr != nil {
				return false
			}
			return fn(r.Key, r.Value)
		})
		if err == nil {
			err = tsErr
		}
		return err
	}
	merged := make(map[string]tsb.Result)
	err := t.tree.ScanAsOf(lo, hi, at, tx.id, func(r tsb.Result) bool {
		if _, ours := own[string(r.Key)]; ours {
			return true // replaced by the overlay below
		}
		if tsErr = tx.validateFixedTS(r.TS); tsErr != nil {
			return false
		}
		merged[string(r.Key)] = r
		return true
	})
	if err != nil {
		return err
	}
	if tsErr != nil {
		return tsErr
	}
	for k, r := range own {
		if r.Found {
			merged[k] = r
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := merged[k]
		if !fn(r.Key, r.Value) {
			return nil
		}
	}
	return nil
}

// Commit finishes the transaction. Its timestamp is chosen now — commit
// time, the latest possible choice, guaranteeing agreement with
// serialization order (Section 2.1) — and recorded in one PTT update;
// the transaction's record versions are NOT revisited (lazy timestamping).
func (tx *Tx) Commit() error {
	if err := tx.opEnter(false); err != nil {
		return err
	}
	db := tx.db
	defer db.opExit()
	tx.done = true
	defer db.finish(tx)

	if tx.mode == asOf || len(tx.writes) == 0 {
		// Read-only: nothing to log or stamp.
		db.stamp.Abort(tx.id) // drop the VTT entry
		return nil
	}
	if err := db.Degraded(); err != nil {
		// Fail before any timestamp or log work: a degraded engine must never
		// acknowledge a commit. The updates already logged have no terminal
		// record, so recovery at the next open undoes them.
		db.stamp.Abort(tx.id)
		return err
	}
	defer obsCommitLat.ObserveSince(obs.Now())
	span := obs.NewRootSpan("tx.commit")
	defer span.End()

	// Phase 1, under commitMu: pick the timestamp, append the commit record,
	// and publish the TID-to-timestamp mapping. commitMu makes timestamp
	// order equal commit-record order within the log, so a group-commit
	// fsync that covers a batch of commit records covers a timestamp prefix.
	pubSpan := span.Child("commit.publish")
	db.commitMu.Lock()
	if db.replica.Load() {
		// Fenced mid-flight: PromoteToFollower deposed this primary after the
		// transaction's updates were logged but before its commit record.
		// Refuse the ack and compensate the updates exactly like a rollback —
		// a zombie commit record must never enter the log, because the
		// cluster's surviving timeline will not contain it.
		last := wal.LSN(tx.lastLSN.Load())
		if uerr := db.undoTx(tx.id, last); uerr == nil {
			tx.terminalLogged = true
			db.log.Append(&wal.Record{Type: wal.TypeAbort, TID: tx.id, PrevLSN: last})
		} else {
			db.degradeIf(uerr)
		}
		db.stamp.Abort(tx.id)
		db.commitMu.Unlock()
		pubSpan.End()
		db.aborts.Add(1)
		return ErrReplica
	}
	ts := tx.fixedTS
	if ts.IsZero() {
		// Late choice: the timestamp is the commit time, so it necessarily
		// agrees with serialization order (Section 2.1).
		ts = db.seq.Next()
	}
	if db.opts.EagerTimestamping {
		// Eager mode: revisit and stamp everything before commit completes.
		// No TID-to-timestamp mapping needs to outlive the transaction.
		if err := tx.eagerStamp(ts); err != nil {
			db.degradeIf(err)
			db.commitMu.Unlock()
			pubSpan.End()
			return err
		}
		db.stamp.Abort(tx.id)
	}
	// The commit record is appended BEFORE stamp.Commit publishes the
	// mapping: lazy stamping is never logged, so the moment the mapping is
	// resolvable a stamped page could head for disk, and the buffer pool
	// must know the commit-record LSN (the page's StampLSN write-ahead
	// point) to hold that write until the log covers it.
	lsn, err := db.log.Append(&wal.Record{
		Type:    wal.TypeCommit,
		TID:     tx.id,
		PrevLSN: wal.LSN(tx.lastLSN.Load()),
		TS:      ts,
		HasTT:   tx.hasTT && !db.opts.EagerTimestamping,
	})
	if err != nil {
		// Nothing was published: the VTT entry is still active, exactly as
		// if Commit had not been called. An append can only fail on an I/O
		// fault (segment rotation out of space, a latched log) — degrade.
		db.degradeIf(err)
		db.commitMu.Unlock()
		pubSpan.End()
		return err
	}
	// The transaction's fate is now in the log; a checkpoint taken from here
	// on must not list it as active (see terminalLogged).
	tx.terminalLogged = true
	if !db.opts.EagerTimestamping {
		if serr := db.stamp.Commit(tx.id, ts, tx.hasTT, lsn, func() wal.LSN {
			// Snapshot-only transactions (no immortal table touched) keep
			// their mapping in the VTT alone; immortal writers get the one
			// PTT insert.
			return db.log.End()
		}); serr != nil {
			// The commit record is already in the log buffer and cannot be
			// retracted. Neutralize it: undo the versions with CLRs and log
			// an abort, so if the record ever reaches disk recovery replays
			// a transaction that committed empty.
			last := wal.LSN(tx.lastLSN.Load())
			if uerr := db.undoTx(tx.id, last); uerr == nil {
				db.log.Append(&wal.Record{Type: wal.TypeAbort, TID: tx.id, PrevLSN: last})
			} else {
				// The commit record is in the log and its neutralization
				// failed: if it reaches disk, recovery will replay a commit
				// the engine never acknowledged. Nothing written from here on
				// may be trusted.
				db.degrade(uerr)
			}
			db.stamp.Abort(tx.id)
			db.degradeIf(serr)
			db.commitMu.Unlock()
			pubSpan.End()
			return serr
		}
	}
	db.advanceVisible(ts)
	db.commitMu.Unlock()
	pubSpan.End()

	// Phase 2, outside commitMu: harden the commit record. With group commit
	// on, concurrent committers share one fsync here instead of queueing one
	// fsync each behind commitMu. The transaction's locks are held until
	// Commit returns, so conflicting writers cannot observe its effects
	// before durability is settled either way.
	fsyncSpan := span.Child("commit.fsync")
	err = db.log.SyncTo(lsn)
	fsyncSpan.End()
	if err != nil {
		// Not durable, so not committed: withdraw the timestamp mapping, or
		// the VTT/PTT would claim a commit the log cannot prove and lazy
		// stamping would publish the transaction's versions.
		if !db.opts.EagerTimestamping {
			if uerr := db.stamp.UndoCommit(tx.id); uerr != nil {
				err = fmt.Errorf("%w (timestamp withdraw: %v)", err, uerr)
			}
		}
		// The fsyncgate rule: a failed sync may have silently dropped dirty
		// kernel buffers, so the commit record's fate is unknowable in-process
		// — the log has latched itself failed, and the engine degrades. The
		// commit is settled (present or absent, never half) by reopening.
		db.degradeIf(err)
		return err
	}
	tx.commitTS = ts
	if db.opts.PTTSyncEveryCommit {
		if err := db.stamp.SyncPTT(); err != nil {
			// The commit itself is durable; only the PTT hardening failed.
			db.degradeIf(err)
			return err
		}
	}

	db.commits.Add(1)
	db.mu.Lock()
	db.txnsSinceCkpt++
	doCkpt := db.opts.CheckpointEveryN > 0 && db.txnsSinceCkpt >= db.opts.CheckpointEveryN
	if doCkpt {
		db.txnsSinceCkpt = 0
	}
	db.mu.Unlock()
	if doCkpt {
		return db.Checkpoint()
	}
	return nil
}

// eagerStamp revisits every record the transaction wrote and timestamps it
// before commit completes, logging each stamp — exactly the cost profile
// Section 2.2 rejects: commit is delayed and extra log records are written.
func (tx *Tx) eagerStamp(ts itime.Timestamp) error {
	db := tx.db
	stamped := make(map[string]bool, len(tx.writes))
	for _, w := range tx.writes {
		if !w.table.meta.Versioned() {
			continue
		}
		sk := fmt.Sprintf("%d/%s", w.table.meta.ID, w.key)
		if stamped[sk] {
			continue
		}
		stamped[sk] = true
		w := w
		_, err := w.table.tree.ApplyStamp([]byte(w.key), tx.id, ts, func(pid pageID) (uint64, error) {
			lsn, err := db.log.Append(&wal.Record{
				Type:  wal.TypeStamp,
				TID:   tx.id,
				Table: w.table.meta.ID,
				Page:  pid,
				Key:   []byte(w.key),
				TS:    ts,
			})
			return uint64(lsn), err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Rollback undoes the transaction: every versioned insert is removed (the
// logical undo of ARIES), compensation records are logged, and locks drop.
func (tx *Tx) Rollback() error {
	if err := tx.opEnter(false); err != nil {
		return err
	}
	db := tx.db
	defer db.opExit()
	tx.done = true
	defer db.finish(tx)
	defer db.aborts.Add(1)

	// commitMu makes the whole compensation atomic with respect to a
	// checkpoint's ATT snapshot: the snapshot sees this transaction either
	// before any CLR exists (recovery undoes the full chain from LastLSN) or
	// after compensation is complete (terminalLogged set, skipped). A
	// mid-rollback snapshot would carry a LastLSN that predates the CLRs and
	// recovery would undo already-compensated updates.
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	last := wal.LSN(tx.lastLSN.Load())
	if err := db.undoTx(tx.id, last); err != nil {
		// Compensation hit an I/O fault mid-chain: the log holds a partial
		// rollback and the transaction has no terminal record. Degrade; the
		// locks still release (finish above), the uncommitted versions stay
		// invisible, and recovery finishes the undo at the next open.
		db.degradeIf(err)
		db.stamp.Abort(tx.id)
		return err
	}
	// Every update is compensated in the log; even if the abort record below
	// fails to append, recovery has nothing left to undo.
	tx.terminalLogged = true
	db.stamp.Abort(tx.id)
	_, err := db.log.Append(&wal.Record{Type: wal.TypeAbort, TID: tx.id, PrevLSN: last})
	return err
}

// undoTx walks a transaction's log chain backwards, undoing each update and
// logging CLRs. It serves both online rollback and recovery undo.
func (db *DB) undoTx(tid itime.TID, from wal.LSN) error {
	cur := from
	for cur != 0 {
		rec, err := db.log.ReadAt(cur)
		if err != nil {
			return err
		}
		switch rec.Type {
		case wal.TypeCLR:
			// Already-compensated region: skip to the next record to undo.
			cur = rec.Undo
			continue
		case wal.TypeInsertVersion:
			t, ok := db.cat.ByID(rec.Table)
			if !ok {
				return fmt.Errorf("immortaldb: undo references unknown table %d", rec.Table)
			}
			tree := db.treeByID(rec.Table)
			logCLR := func(stub bool, value []byte) tsb.LogFunc {
				return func(pid pageID) (uint64, error) {
					lsn, err := db.log.Append(&wal.Record{
						Type:  wal.TypeCLR,
						TID:   tid,
						Table: rec.Table,
						Page:  pid,
						Key:   rec.Key,
						Undo:  rec.PrevLSN,
						Stub:  stub,
						Value: value,
					})
					return uint64(lsn), err
				}
			}
			if t.Versioned() {
				if rec.Old != nil || rec.OldStub {
					// Undo of an in-place overwrite: put the previous
					// uncommitted state back.
					if err := tree.UndoReplaceOwn(tid, rec.Key, rec.Old, rec.OldStub, logRestoreCLR(db, tid, rec)); err != nil {
						return fmt.Errorf("immortaldb: undo overwrite of %q: %w", rec.Key, err)
					}
				} else if err := tree.UndoInsert(tid, rec.Key, logCLR(false, nil)); err != nil {
					return fmt.Errorf("immortaldb: undo insert of %q: %w", rec.Key, err)
				}
			} else {
				// Conventional table: restore the old value / remove.
				if rec.Old != nil {
					if err := tree.RestoreNoTail(rec.Key, rec.Old, true, logCLR(false, rec.Old)); err != nil {
						return err
					}
				} else {
					if err := tree.RestoreNoTail(rec.Key, nil, false, logCLR(true, nil)); err != nil {
						return err
					}
				}
			}
		case wal.TypeStamp:
			// Eager-mode stamp of a loser transaction: the stamped versions
			// are removed by the InsertVersion undos that follow in the
			// chain; nothing to compensate here.
		}
		cur = rec.PrevLSN
	}
	return nil
}

func (db *DB) treeByID(id uint32) *tsb.Tree {
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.trees[id]; ok {
		return t
	}
	// Not yet instantiated: recovery undo can reach a table none of whose
	// records fell inside the redo scan window (a loser checkpointed as
	// in-flight that never wrote again). Open it from the catalog.
	meta, ok := db.cat.ByID(id)
	if !ok {
		return nil
	}
	t := db.openTree(meta)
	db.trees[id] = t
	return t
}

// finish releases a transaction's locks and bookkeeping.
func (db *DB) finish(tx *Tx) {
	db.locks.ReleaseAll(tx.id)
	db.mu.Lock()
	delete(db.active, tx.id)
	db.mu.Unlock()
}

// Update runs fn in a serializable transaction, committing on success and
// rolling back on error or panic.
func (db *DB) Update(fn func(tx *Tx) error) error {
	tx, err := db.Begin(Serializable)
	if err != nil {
		return err
	}
	defer func() {
		if !tx.done {
			tx.Rollback()
		}
	}()
	if err := fn(tx); err != nil {
		if rbErr := tx.Rollback(); rbErr != nil && !errors.Is(rbErr, ErrTxDone) {
			return fmt.Errorf("%w (rollback: %v)", err, rbErr)
		}
		return err
	}
	return tx.Commit()
}

// View runs fn in a read-only snapshot transaction.
func (db *DB) View(fn func(tx *Tx) error) error {
	tx, err := db.Begin(SnapshotIsolation)
	if err != nil {
		return err
	}
	defer tx.Commit()
	return fn(tx)
}

// logRestoreCLR builds the CLR logger for undoing an in-place overwrite: the
// compensation carries the restored value and stub state, and is marked
// Restore so redo re-applies the restore rather than removing a version.
func logRestoreCLR(db *DB, tid itime.TID, rec *wal.Record) tsb.LogFunc {
	return func(pid pageID) (uint64, error) {
		lsn, err := db.log.Append(&wal.Record{
			Type:    wal.TypeCLR,
			TID:     tid,
			Table:   rec.Table,
			Page:    pid,
			Key:     rec.Key,
			Undo:    rec.PrevLSN,
			Stub:    rec.OldStub,
			Restore: true,
			Value:   rec.Old,
		})
		return uint64(lsn), err
	}
}
