package immortaldb_test

// The tiered-history crash and chaos matrices: the same harnesses as
// crashmatrix_test.go and persistmatrix_test.go, but with TieredHistory on
// and a CompactHistory pass after every checkpoint. Crash points and
// sustained faults then land inside the migration pipeline itself — cold-run
// writes and fsyncs, the WAL records that anchor them, the dual-slot
// manifest flip, the chain-cut SMOs, and the reclamation of migrated hot
// pages and merged-away runs. The invariants are unchanged: no acked commit
// (or any already-durable historical version) may be lost or duplicated, the
// maybe-committed transaction is all-or-nothing, and after recovery AS OF
// reads spanning hot pages and cold runs must reproduce the model exactly.
//
// Failing coordinates replay with the same flag sets as the base matrices:
//
//	go test -run TestHistCrashMatrix -seed=<N> -point=<M>
//	go test -run TestHistCrashMatrixConcurrent -cseed=<N> -cpoint=<M>
//	go test -run TestHistPersistMatrix -pseed=<S> -pkind=<K> -ppoint=<N> -ppersist=<P>

import (
	"fmt"
	"sync/atomic"
	"testing"

	"immortaldb/internal/fault"
)

func runHistPoint(t *testing.T, seed, point int64) {
	t.Helper()
	res := fault.Run(fault.Config{Seed: seed, CrashAt: point, Tiered: true})
	if !fault.Crashed(res) {
		t.Fatalf("point %d: workload finished without hitting the crash point (%d ops total)\n%s",
			point, res.FS.OpCount(), fault.Describe(res))
	}
	if err := fault.Verify(res); err != nil {
		t.Fatalf("crash point %d failed verification: %v\n%s", point, err, fault.Describe(res))
	}
}

// TestHistCrashMatrix crashes the disk at every I/O operation of the tiered
// workload — including every operation of each migration and compaction —
// and verifies recovery. The migration protocol's crash windows are all
// crossed: after the run file but before its WAL record, after the manifest
// record but before the flip, after the flip but before the chain cut
// (benign duplicate coverage), and mid-reclamation.
func TestHistCrashMatrix(t *testing.T) {
	seed := *matrixSeed

	if *matrixPoint > 0 {
		runHistPoint(t, seed, *matrixPoint)
		return
	}

	base := fault.Run(fault.Config{Seed: seed, Tiered: true})
	if !base.Clean {
		t.Fatalf("baseline tiered workload failed: %v\n%s", base.Err, fault.Describe(base))
	}
	total := base.FS.OpCount()
	if err := fault.Verify(base); err != nil {
		t.Fatalf("baseline verification failed: %v", err)
	}
	// The tiered workload must be strictly bigger than the plain one — the
	// extra operations ARE the migration pipeline under test.
	plain := fault.Run(fault.Config{Seed: seed})
	if !plain.Clean {
		t.Fatalf("plain baseline failed: %v", plain.Err)
	}
	if total <= plain.FS.OpCount() {
		t.Fatalf("tiered workload issued %d ops, plain %d; migrations generated no crash points",
			total, plain.FS.OpCount())
	}
	if total < minCrashPoints {
		t.Fatalf("workload generated only %d disk operations; need >= %d crash points", total, minCrashPoints)
	}

	// Determinism self-check: CompactHistory runs synchronously (no background
	// compactor in the matrix), so the I/O sequence must replay exactly.
	again := fault.Run(fault.Config{Seed: seed, Tiered: true})
	if !again.Clean || again.FS.OpCount() != total || len(again.Committed) != len(base.Committed) {
		t.Fatalf("tiered workload is not deterministic: run 1 = %d ops / %d commits, run 2 = %d ops / %d commits (err %v)",
			total, len(base.Committed), again.FS.OpCount(), len(again.Committed), again.Err)
	}

	stride := int64(1)
	if testing.Short() {
		stride = 4
	}
	t.Logf("tiered crash matrix: seed=%d, %d crash points (stride %d), %d committed txns",
		seed, total, stride, len(base.Committed))
	for point := int64(1); point <= total; point += stride {
		runHistPoint(t, seed, point)
	}
}

// TestHistCrashMatrixConcurrent sweeps crash points while workers commit
// through the group-commit pipeline and worker 0's mid-run CompactHistory
// migrates their history to the cold tier underneath them.
func TestHistCrashMatrixConcurrent(t *testing.T) {
	seed := *concSeed

	runConc := func(t *testing.T, after int64) bool {
		t.Helper()
		res := fault.RunConcurrent(fault.ConcurrentConfig{Seed: seed, CrashAfter: after, Tiered: true})
		crashed := fault.ConcCrashed(res)
		if !crashed && !res.Clean {
			t.Fatalf("crash-after %d: workload failed without a crash\n%s", after, fault.DescribeConcurrent(res))
		}
		if err := fault.VerifyConcurrent(res); err != nil {
			t.Fatalf("crash-after %d failed verification: %v\n%s", after, err, fault.DescribeConcurrent(res))
		}
		return crashed
	}

	if *concPoint > 0 {
		runConc(t, *concPoint)
		return
	}

	base := fault.RunConcurrent(fault.ConcurrentConfig{Seed: seed, Tiered: true})
	if !base.Clean {
		t.Fatalf("baseline tiered concurrent workload failed\n%s", fault.DescribeConcurrent(base))
	}
	total := base.FS.OpCount() - base.SetupOps
	if err := fault.VerifyConcurrent(base); err != nil {
		t.Fatalf("baseline concurrent verification failed: %v", err)
	}

	points := int64(36)
	if testing.Short() {
		points = 10
	}
	stride := total / points
	if stride < 1 {
		stride = 1
	}
	crashes, swept := 0, 0
	for after := int64(1); after <= total; after += stride {
		swept++
		if runConc(t, after) {
			crashes++
		}
	}
	if crashes < swept/2 {
		t.Fatalf("only %d of %d crash points actually crashed", crashes, swept)
	}
	t.Logf("tiered concurrent crash matrix: seed=%d, %d points swept, %d crashed", seed, swept, crashes)
}

// TestHistPersistMatrix sweeps the compactor-targeted sustained-fault kinds:
// EIO and ENOSPC on cold-run writes, failing manifest fsyncs, and EIO on
// old-run/old-page reclamation — each persisting for 1, 4 or unbounded
// operations from start points sampled across the whole workload. Acked
// history must survive every cell, reads must keep serving while degraded,
// and after the fault clears the compactor must work again.
func TestHistPersistMatrix(t *testing.T) {
	// The kinds only fire inside CompactHistory, so a replay coordinate from
	// this matrix needs Tiered set; route -pkind replays of hist kinds here.
	runHistPersistCell := func(t *testing.T, seed int64, kind fault.PersistKind, startOp, persist int64) *fault.PersistResult {
		t.Helper()
		f := kind.Fault
		f.StartOp = startOp
		f.Count = persist
		res := fault.RunPersist(fault.PersistConfig{Seed: seed, Fault: f, Txns: 36, Tiered: true})
		if err := fault.VerifyPersist(res); err != nil {
			t.Fatalf("%v\n%s", err, fault.DescribePersist(res, kind.Name))
		}
		return res
	}

	if *persistKind != "" {
		kind, ok := fault.KindByName(*persistKind)
		if !ok {
			t.Fatalf("unknown -pkind %q", *persistKind)
		}
		runHistPersistCell(t, *persistSeed, kind, *persistPoint, *persistLen)
		return
	}

	base := fault.RunPersist(fault.PersistConfig{Seed: *persistSeed, Txns: 36, Tiered: true})
	if err := fault.VerifyPersist(base); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if !base.Clean {
		t.Fatalf("baseline tiered workload did not finish clean: %+v", base)
	}
	total := base.FS.IOOpCount()
	if total < 100 {
		t.Fatalf("baseline generated only %d I/O ops; matrix would be vacuous", total)
	}

	starts := int64(9)
	persists := []int64{1, 4, -1}
	if testing.Short() {
		starts = 3
		persists = []int64{1, -1}
	}
	cells := 0
	var degraded, clean atomic.Int64
	for _, kind := range fault.HistPersistKinds {
		kind := kind
		for s := int64(0); s < starts; s++ {
			startOp := s*total/starts + 1
			for _, p := range persists {
				p := p
				cells++
				name := fmt.Sprintf("%s/op%d/n%d", kind.Name, startOp, p)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res := runHistPersistCell(t, *persistSeed, kind, startOp, p)
					if res.Degraded {
						degraded.Add(1)
					}
					if res.Clean {
						clean.Add(1)
					}
				})
			}
		}
	}
	t.Cleanup(func() {
		t.Logf("tiered persistence matrix: %d cells, %d degraded, %d clean", cells, degraded.Load(), clean.Load())
		// Hist faults only have a target while a migration or compaction is
		// in flight, but the permanent cells whose start precedes a
		// compaction with work to do must degrade, and transient cells must
		// be survived cleanly.
		if d := degraded.Load(); d < int64(cells)/4 {
			t.Errorf("only %d/%d cells degraded the engine; the compactor faults are not biting", d, cells)
		}
		if clean.Load() == 0 {
			t.Errorf("no cell survived its transient fault cleanly; persistence clearing is not exercised")
		}
	})
}
