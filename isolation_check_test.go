package immortaldb

// Timestamp-based isolation checker: R goroutines run a randomized mix of
// serializable, snapshot-isolation and AS OF transactions through the
// concurrent group-commit pipeline, recording every operation and the
// timestamps the engine assigned. Afterwards the recorded history is
// verified offline against the table's ground-truth version history:
//
//   - Reads observe exactly the latest version committed at or before the
//     transaction's effective timestamp — the snapshot timestamp for
//     SI / AS OF transactions, the commit timestamp for serializable ones.
//     For serializable transactions this, together with the write check, is
//     the serializability proof: every committed transaction sees precisely
//     the state produced by the transactions with smaller commit timestamps,
//     so commit-timestamp order is a valid serial order.
//   - First committer wins: no committed SI transaction overlaps a foreign
//     committed version of a key it wrote in (snapTS, commitTS).
//   - Writes are all-or-nothing: every version in the final history maps to
//     exactly one committed transaction's final write of that key, stamped
//     at its commit timestamp; aborted transactions leave no versions.
//
// The workload is deterministic under the seed (per-goroutine rngs); the
// interleaving is not, but the checks hold for every interleaving. Failures
// print a shrunk trace: the offending transaction's ops plus the relevant
// slice of the key's version history.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

type ckOp struct {
	kind  byte   // 'r' read, 'w' write, 'd' delete, 's' scan
	key   string // for r/w/d
	val   string // written value, or observed value for reads
	found bool   // for reads
	scan  map[string]string // for scans: observed key -> value
}

type ckTxn struct {
	gor, idx int
	mode     IsolationLevel
	snapTS   Timestamp
	commitTS Timestamp
	// serTS is the serialization point of a committed READ-ONLY serializable
	// transaction, which gets no commit timestamp: the visibility watermark
	// captured just before Commit, while its S locks still blocked writers
	// on everything it read.
	serTS     Timestamp
	ops       []ckOp
	committed bool
	conflict  bool // aborted with ErrWriteConflict
}

func (x *ckTxn) label() string {
	return fmt.Sprintf("g%d.t%d %v snap=%v commit=%v", x.gor, x.idx, x.mode, x.snapTS, x.commitTS)
}

// lastOwnWrite returns the transaction's final w/d op for key among ops[:n],
// or nil.
func (x *ckTxn) lastOwnWrite(key string, n int) *ckOp {
	for i := n - 1; i >= 0; i-- {
		op := &x.ops[i]
		if (op.kind == 'w' || op.kind == 'd') && op.key == key {
			return op
		}
	}
	return nil
}

// ckVersion is one committed version from the ground-truth history.
type ckVersion struct {
	ts      Timestamp
	val     string
	deleted bool
}

func isoSeed() int64 {
	if s := os.Getenv("IMMORTALDB_ISO_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 0x1db2006
}

func TestIsolationChecker(t *testing.T) {
	seed := isoSeed()
	t.Logf("seed=%d (override with IMMORTALDB_ISO_SEED)", seed)

	db, _ := openTestDB(t, func(o *Options) {
		o.LockTimeout = 500 * time.Millisecond
	})
	runIsolationCheck(t, db, seed)
}

// runIsolationCheck drives the concurrent workload against db and verifies
// the recorded history offline. Shared with the promotion tests, which run
// it on a freshly promoted survivor to prove a post-failover primary honors
// the same isolation contract as one that never failed over.
func runIsolationCheck(t *testing.T, db *DB, seed int64) {
	t.Helper()
	const (
		goroutines  = 8
		txnsPerGor  = 40
		keySpace    = 24
		maxOps      = 6
		maxFailures = 5
	)
	tbl, err := db.CreateTable("iso", TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) string { return fmt.Sprintf("k%02d", i) }

	// Seed every key in one recorded transaction so early readers have a
	// ground state.
	var txns []*ckTxn
	var txnsMu sync.Mutex
	var commitTimes []Timestamp // for AS OF target picking
	record := func(x *ckTxn) {
		txnsMu.Lock()
		txns = append(txns, x)
		if x.committed && !x.commitTS.IsZero() {
			commitTimes = append(commitTimes, x.commitTS)
		}
		txnsMu.Unlock()
	}
	pickAsOf := func(rng *rand.Rand) (Timestamp, bool) {
		txnsMu.Lock()
		defer txnsMu.Unlock()
		if len(commitTimes) == 0 {
			return Timestamp{}, false
		}
		return commitTimes[rng.Intn(len(commitTimes))], true
	}

	init := &ckTxn{gor: -1, mode: Serializable, committed: true}
	{
		tx, err := db.Begin(Serializable)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < keySpace; i++ {
			v := "init." + key(i)
			if err := tx.Set(tbl, []byte(key(i)), []byte(v)); err != nil {
				t.Fatal(err)
			}
			init.ops = append(init.ops, ckOp{kind: 'w', key: key(i), val: v})
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		init.commitTS = tx.CommitTS()
		record(init)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)*7919))
			for ti := 0; ti < txnsPerGor; ti++ {
				x := &ckTxn{gor: g, idx: ti}
				var tx *Tx
				var err error
				switch r := rng.Intn(10); {
				case r < 4:
					x.mode = Serializable
					tx, err = db.Begin(Serializable)
				case r < 8:
					x.mode = SnapshotIsolation
					tx, err = db.Begin(SnapshotIsolation)
				default:
					at, ok := pickAsOf(rng)
					if !ok {
						x.mode = SnapshotIsolation
						tx, err = db.Begin(SnapshotIsolation)
					} else {
						x.mode = asOf
						tx, err = db.BeginAsOfTS(at)
					}
				}
				if err != nil {
					t.Errorf("g%d.t%d begin: %v", g, ti, err)
					return
				}
				x.snapTS = tx.SnapshotTS()

				nops := 1 + rng.Intn(maxOps)
				opErr := func() error {
					for i := 0; i < nops; i++ {
						k := key(rng.Intn(keySpace))
						r := rng.Intn(10)
						if x.mode == asOf {
							r = 0 // read-only
						}
						switch {
						case r < 4: // read
							v, found, err := tx.Get(tbl, []byte(k))
							if err != nil {
								return err
							}
							x.ops = append(x.ops, ckOp{kind: 'r', key: k, val: string(v), found: found})
						case r < 5 && x.mode != Serializable: // scan (stable snapshot only)
							lo, hi := key(rng.Intn(keySpace)), key(rng.Intn(keySpace))
							if lo > hi {
								lo, hi = hi, lo
							}
							seen := make(map[string]string)
							if err := tx.Scan(tbl, []byte(lo), []byte(hi+"~"), func(k, v []byte) bool {
								seen[string(k)] = string(v)
								return true
							}); err != nil {
								return err
							}
							x.ops = append(x.ops, ckOp{kind: 's', key: lo, val: hi, scan: seen})
						case r < 9: // write
							v := fmt.Sprintf("g%d.t%d.%d", g, ti, i)
							if err := tx.Set(tbl, []byte(k), []byte(v)); err != nil {
								return err
							}
							x.ops = append(x.ops, ckOp{kind: 'w', key: k, val: v})
						default: // delete
							if err := tx.Delete(tbl, []byte(k)); err != nil {
								return err
							}
							x.ops = append(x.ops, ckOp{kind: 'd', key: k})
						}
					}
					return nil
				}()
				if opErr != nil {
					// Write conflict (FCW) or lock timeout/deadlock: abort.
					x.conflict = errors.Is(opErr, ErrWriteConflict)
					tx.Rollback()
					record(x)
					continue
				}
				x.serTS = db.Now()
				if err := tx.Commit(); err != nil {
					t.Errorf("g%d.t%d commit: %v", g, ti, err)
					return
				}
				x.committed = true
				x.commitTS = tx.CommitTS()
				record(x)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// ---- Offline verification against ground truth. ----

	// Ground truth: per-key committed version lists, oldest first.
	hist := make(map[string][]ckVersion)
	for i := 0; i < keySpace; i++ {
		entries, err := db.History(tbl, []byte(key(i)))
		if err != nil {
			t.Fatal(err)
		}
		var vs []ckVersion
		for j := len(entries) - 1; j >= 0; j-- { // History is newest-first
			e := entries[j]
			if e.Pending {
				t.Fatalf("key %s: pending version (tid %d) leaked into history", key(i), e.TID)
			}
			vs = append(vs, ckVersion{ts: e.TS, val: string(e.Value), deleted: e.Deleted})
		}
		hist[key(i)] = vs
	}

	// visibleAt returns the latest version at or before ts, excluding the
	// version stamped exactly at exclude (the reading transaction's own
	// commit, for reads that precede the transaction's write of the key).
	visibleAt := func(k string, ts Timestamp, exclude Timestamp) *ckVersion {
		var best *ckVersion
		for i := range hist[k] {
			v := &hist[k][i]
			if v.ts.After(ts) {
				break
			}
			if !exclude.IsZero() && v.ts == exclude {
				continue
			}
			best = v
		}
		return best
	}

	failures := 0
	fail := func(x *ckTxn, opIdx int, format string, args ...any) {
		failures++
		if failures > maxFailures {
			return
		}
		msg := fmt.Sprintf(format, args...)
		trace := ""
		for i, op := range x.ops {
			mark := "  "
			if i == opIdx {
				mark = "->"
			}
			switch op.kind {
			case 'r':
				trace += fmt.Sprintf("%s [%d] get  %s = %q found=%v\n", mark, i, op.key, op.val, op.found)
			case 'w':
				trace += fmt.Sprintf("%s [%d] set  %s = %q\n", mark, i, op.key, op.val)
			case 'd':
				trace += fmt.Sprintf("%s [%d] del  %s\n", mark, i, op.key)
			case 's':
				trace += fmt.Sprintf("%s [%d] scan [%s,%s] saw %d keys\n", mark, i, op.key, op.val, len(op.scan))
			}
		}
		k := ""
		if opIdx >= 0 && opIdx < len(x.ops) {
			k = x.ops[opIdx].key
		}
		histDump := ""
		if k != "" {
			for _, v := range hist[k] {
				histDump += fmt.Sprintf("    %v %q deleted=%v\n", v.ts, v.val, v.deleted)
			}
		}
		t.Errorf("isolation violation: txn %s: %s\nops:\n%shistory of %s:\n%s", x.label(), msg, trace, k, histDump)
	}

	// Expected version set per key from the model: each committed txn's final
	// write of a key becomes one version at its commit timestamp.
	type expVersion struct {
		val     string
		deleted bool
		by      string
	}
	expected := make(map[string]map[Timestamp]expVersion)
	for _, x := range txns {
		if !x.committed {
			continue
		}
		finals := make(map[string]*ckOp)
		for i := range x.ops {
			op := &x.ops[i]
			if op.kind == 'w' || op.kind == 'd' {
				finals[op.key] = op
			}
		}
		for k, op := range finals {
			if expected[k] == nil {
				expected[k] = make(map[Timestamp]expVersion)
			}
			if prev, dup := expected[k][x.commitTS]; dup {
				t.Fatalf("two committed writes of %s share timestamp %v (%s and %s)", k, x.commitTS, prev.by, x.label())
			}
			expected[k][x.commitTS] = expVersion{val: op.val, deleted: op.kind == 'd', by: x.label()}
		}
	}
	for k, vs := range hist {
		for _, v := range vs {
			want, ok := expected[k][v.ts]
			if !ok {
				t.Errorf("ghost version: key %s has version at %v (%q deleted=%v) no committed transaction wrote", k, v.ts, v.val, v.deleted)
				continue
			}
			if want.deleted != v.deleted || (!v.deleted && want.val != v.val) {
				t.Errorf("key %s at %v: history has %q deleted=%v, %s wrote %q deleted=%v",
					k, v.ts, v.val, v.deleted, want.by, want.val, want.deleted)
			}
			delete(expected[k], v.ts)
		}
	}
	for k, rest := range expected {
		for ts, v := range rest {
			t.Errorf("lost write: %s committed %s=%q deleted=%v at %v but history has no such version", v.by, k, v.val, v.deleted, ts)
		}
	}
	if t.Failed() {
		return
	}

	// Read checks.
	committed, conflicts := 0, 0
	for _, x := range txns {
		if x.conflict {
			conflicts++
		}
		if x.committed {
			committed++
		}
		var effective Timestamp
		var exclude Timestamp
		switch {
		case x.mode == Serializable:
			if !x.committed {
				continue // no serialization point assigned
			}
			if x.commitTS.IsZero() {
				effective = x.serTS // read-only: watermark under held S locks
			} else {
				effective = x.commitTS
				exclude = x.commitTS // own writes live at commitTS; reads before a write must not see it
			}
		default: // SnapshotIsolation (committed or aborted) and asOf
			effective = x.snapTS
		}
		for i, op := range x.ops {
			switch op.kind {
			case 'r':
				wantVal, wantFound := "", false
				if own := x.lastOwnWrite(op.key, i); own != nil {
					wantVal, wantFound = own.val, own.kind == 'w'
				} else if v := visibleAt(op.key, effective, exclude); v != nil && !v.deleted {
					wantVal, wantFound = v.val, true
				}
				if op.found != wantFound || (wantFound && op.val != wantVal) {
					fail(x, i, "read of %s at effective ts %v observed (%q, %v), want (%q, %v)",
						op.key, effective, op.val, op.found, wantVal, wantFound)
				}
			case 's':
				lo, hi := op.key, op.val
				for ki := 0; ki < keySpace; ki++ {
					k := key(ki)
					if k < lo || k > hi {
						continue
					}
					wantVal, wantFound := "", false
					if own := x.lastOwnWrite(k, i); own != nil {
						wantVal, wantFound = own.val, own.kind == 'w'
					} else if v := visibleAt(k, effective, exclude); v != nil && !v.deleted {
						wantVal, wantFound = v.val, true
					}
					got, gotFound := op.scan[k]
					if gotFound != wantFound || (wantFound && got != wantVal) {
						fail(x, i, "scan observed %s as (%q, %v), want (%q, %v)", k, got, gotFound, wantVal, wantFound)
					}
				}
			}
		}
		// First committer wins: a committed SI transaction must not overlap
		// a foreign committed version of any key it wrote.
		if x.mode == SnapshotIsolation && x.committed {
			for i, op := range x.ops {
				if op.kind != 'w' && op.kind != 'd' {
					continue
				}
				for _, v := range hist[op.key] {
					if x.snapTS.Less(v.ts) && v.ts.Less(x.commitTS) {
						who := "?"
						for _, o := range txns {
							if o.committed && o.commitTS == v.ts {
								who = o.label()
							}
						}
						fail(x, i, "FCW violation: foreign version of %s at %v inside (%v, %v), written by [%s]",
							op.key, v.ts, x.snapTS, x.commitTS, who)
					}
				}
			}
		}
	}
	t.Logf("txns=%d committed=%d conflicts=%d failures=%d", len(txns), committed, conflicts, failures)
	if committed < goroutines*txnsPerGor/2 {
		t.Errorf("only %d/%d transactions committed — workload degenerate", committed, goroutines*txnsPerGor+1)
	}
}
