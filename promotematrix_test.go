package immortaldb_test

// The promotion crash matrix: a fully caught-up follower — holding a
// half-shipped zombie commit from the partitioned primary — promotes on a
// disk that crashes at EVERY operation index of the promotion in turn: the
// final redo drain, the fence trim's physical truncate, the promote record
// append and fsync, the promotion checkpoint, the first post-failover
// commit, the close. After each crash the follower reboots with torn/lost
// sectors and must finish the failover (reopen as primary if the promote
// record survived, retry Promote otherwise) and prove the contract: no
// durably acked commit is lost, no byte of the zombie commit survives, the
// epoch fences the deposed primary, and the survivor accepts and retains
// new writes.
//
// A failing point is a replayable coordinate:
//
//	go test -run TestPromoteCrashMatrix -pmseed=<N> -pmpoint=<M>
//
// re-runs exactly that crash with full disk-op trace output.

import (
	"flag"
	"testing"

	"immortaldb/internal/fault"
)

var (
	promoteSeed  = flag.Int64("pmseed", 1, "promotion crash-matrix workload seed")
	promotePoint = flag.Int64("pmpoint", 0, "replay a single promotion crash point (0 = full matrix)")
)

// minPromotePoints is the floor the promotion must generate: the fence
// trim's truncate, the promote record's write and fsync, the checkpoint's
// page flushes and PTT sync, and the first post-failover commit all count.
const minPromotePoints = 15

func runPromotePoint(t *testing.T, seed, point int64) {
	t.Helper()
	res := fault.RunPromote(fault.PromoteConfig{Seed: seed, CrashAt: point})
	if !fault.PromoteCrashed(res) {
		t.Fatalf("point %d: promotion finished without hitting the crash point\n%s",
			point, fault.DescribePromote(res))
	}
	if err := fault.VerifyPromote(res); err != nil {
		t.Fatalf("promotion crash point %d failed verification: %v\n%s",
			point, err, fault.DescribePromote(res))
	}
}

func TestPromoteCrashMatrix(t *testing.T) {
	seed := *promoteSeed

	if *promotePoint > 0 {
		runPromotePoint(t, seed, *promotePoint)
		return
	}

	// Baseline: the promotion must run to a clean close with no fault
	// injected, and the verifier must accept the uncrashed survivor.
	base := fault.RunPromote(fault.PromoteConfig{Seed: seed})
	if !base.Clean {
		t.Fatalf("baseline promotion failed: %v\n%s", base.Err, fault.DescribePromote(base))
	}
	total := base.PromoteOps
	if err := fault.VerifyPromote(base); err != nil {
		t.Fatalf("baseline promotion verification failed: %v", err)
	}
	if total < minPromotePoints {
		t.Fatalf("promotion issued only %d disk operations; need >= %d crash points", total, minPromotePoints)
	}

	// Determinism self-check: the same seed must produce the same promotion
	// I/O sequence, or "crash at op N" is not a stable coordinate.
	again := fault.RunPromote(fault.PromoteConfig{Seed: seed})
	if !again.Clean || again.PromoteOps != total ||
		len(again.Committed) != len(base.Committed) ||
		again.SyncedLSN != base.SyncedLSN || again.PromotedEpoch != base.PromotedEpoch {
		t.Fatalf("promotion is not deterministic: run 1 = %d ops / %d commits / lsn %d / epoch %d, run 2 = %d ops / %d commits / lsn %d / epoch %d (err %v)",
			total, len(base.Committed), base.SyncedLSN, base.PromotedEpoch,
			again.PromoteOps, len(again.Committed), again.SyncedLSN, again.PromotedEpoch, again.Err)
	}
	if err := fault.VerifyPromote(again); err != nil {
		t.Fatalf("determinism re-run failed verification: %v", err)
	}

	stride := int64(1)
	if testing.Short() {
		stride = 3
	}
	t.Logf("promotion crash matrix: seed=%d, %d crash points (stride %d), %d acked commits",
		seed, total, stride, len(base.Committed))
	for point := int64(1); point <= total; point += stride {
		runPromotePoint(t, seed, point)
	}
}

// TestPromoteCrashMatrixSecondSeed runs the sweep under a different seed
// (different workload, different torn-sector coin flips) unless -short.
func TestPromoteCrashMatrixSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("second-seed promotion sweep skipped in -short mode")
	}
	const seed = 31
	base := fault.RunPromote(fault.PromoteConfig{Seed: seed})
	if !base.Clean {
		t.Fatalf("baseline promotion failed: %v\n%s", base.Err, fault.DescribePromote(base))
	}
	if err := fault.VerifyPromote(base); err != nil {
		t.Fatalf("baseline promotion verification failed: %v", err)
	}
	for point := int64(1); point <= base.PromoteOps; point += 2 {
		runPromotePoint(t, seed, point)
	}
}
