// Benchmarks regenerating the paper's evaluation (one per table/figure/
// ablation in DESIGN.md). The figure-shaped sweeps with paper-sized
// workloads live in cmd/benchfig5 and cmd/benchfig6; these testing.B
// benchmarks measure the same code paths per operation so regressions are
// visible in `go test -bench`.
package immortaldb_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"immortaldb"
	"immortaldb/internal/repro"
	"immortaldb/internal/workload"
)

// benchOpts keeps setup time reasonable under `go test -bench`.
func benchOpts() repro.Options { return repro.Options{Scale: 0.1, PageSize: 8192, Seed: 1} }

// prepEnv builds an environment with the Figure 5 workload pre-applied.
func prepEnv(b *testing.B, immortal bool, mutate func(*immortaldb.Options)) (*repro.Env, []workload.Op) {
	b.Helper()
	o := benchOpts()
	ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(100, 2000)
	if err != nil {
		b.Fatal(err)
	}
	e, err := repro.NewEnv(o, immortal, mutate)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	if _, err := repro.ApplyStream(e, ops); err != nil {
		b.Fatal(err)
	}
	return e, ops
}

// oneRecordTxn is the paper's highest-overhead case: one update per txn.
func oneRecordTxn(b *testing.B, e *repro.Env, i int) {
	op := workload.Op{OID: uint16(i % 100), Pos: workload.Point{X: int32(i), Y: int32(i)}}
	if err := repro.ApplyOp(e, op); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig5ImmortalTxn measures a single-record transaction against a
// transaction-time table (Figure 5, Immortal DB curve).
func BenchmarkFig5ImmortalTxn(b *testing.B) {
	e, _ := prepEnv(b, true, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oneRecordTxn(b, e, i)
	}
}

// BenchmarkFig5ConventionalTxn measures the same transaction against a
// conventional table (Figure 5, baseline curve).
func BenchmarkFig5ConventionalTxn(b *testing.B) {
	e, _ := prepEnv(b, false, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oneRecordTxn(b, e, i)
	}
}

// BenchmarkFig5BatchedWrite measures the lowest-overhead case: many records
// inside one transaction (per-record cost).
func BenchmarkFig5BatchedWrite(b *testing.B) {
	e, _ := prepEnv(b, true, nil)
	tx, err := e.DB.Begin(immortaldb.Serializable)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid := uint16(i % 100)
		if err := tx.Set(e.Table, workload.Key(oid), workload.Value(workload.Point{X: int32(i)})); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig6AsOfScan measures the Figure 6 full-table AS OF scan at three
// history depths for two insert/update mixes.
func BenchmarkFig6AsOfScan(b *testing.B) {
	for _, mix := range []repro.Fig6Mix{{Inserts: 100, UpdatesPerItem: 36}, {Inserts: 400, UpdatesPerItem: 9}} {
		o := benchOpts()
		ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(mix.Inserts, 3600)
		if err != nil {
			b.Fatal(err)
		}
		e, err := repro.NewEnv(o, true, nil)
		if err != nil {
			b.Fatal(err)
		}
		times, err := repro.ApplyStream(e, ops)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.DB.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		for _, pct := range []int{0, 50, 100} {
			at := times[(len(times)-1)*(100-pct)/100]
			b.Run(fmt.Sprintf("mix=%dx%d/pct=%d", mix.Inserts, mix.UpdatesPerItem, pct), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tx, err := e.DB.BeginAsOfTS(at)
					if err != nil {
						b.Fatal(err)
					}
					rows := 0
					if err := tx.Scan(e.Table, nil, nil, func(k, v []byte) bool { rows++; return true }); err != nil {
						b.Fatal(err)
					}
					tx.Commit()
					if rows == 0 {
						b.Fatal("empty scan")
					}
				}
			})
		}
		e.Close()
	}
}

// BenchmarkAblationEagerVsLazy compares the per-transaction cost of the two
// timestamping strategies (ablation A1).
func BenchmarkAblationEagerVsLazy(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			e, _ := prepEnv(b, true, func(o *immortaldb.Options) { o.EagerTimestamping = eager })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				oneRecordTxn(b, e, i)
			}
			b.StopTimer()
			b.ReportMetric(float64(e.DB.Stats().LogBytes)/float64(b.N+2000), "logB/txn")
		})
	}
}

// BenchmarkAblationChainVsTSB compares a deep-history point read through the
// chain traversal against the TSB-tree index (ablation A2).
func BenchmarkAblationChainVsTSB(b *testing.B) {
	for _, mode := range []immortaldb.IndexMode{immortaldb.IndexChain, immortaldb.IndexTSB} {
		name := "chain"
		if mode == immortaldb.IndexTSB {
			name = "tsb"
		}
		b.Run(name, func(b *testing.B) {
			o := benchOpts()
			ops, err := workload.New(workload.Config{Seed: o.Seed}).Stream(50, 4000)
			if err != nil {
				b.Fatal(err)
			}
			e, err := repro.NewEnv(o, true, func(op *immortaldb.Options) { op.HistoricalIndex = mode })
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			times, err := repro.ApplyStream(e, ops)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.DB.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			oldest := times[0] // deepest history
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := e.DB.BeginAsOfTS(oldest)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := tx.Get(e.Table, workload.Key(uint16(i%50))); err != nil {
					b.Fatal(err)
				}
				tx.Commit()
			}
			b.StopTimer()
			b.ReportMetric(float64(e.DB.TreeStats(e.Table).ChainHops)/float64(b.N), "chainhops/op")
		})
	}
}

// BenchmarkAblationPTTGC measures the commit path with timestamp-table GC on
// and off, reporting the final PTT size (ablation A3).
func BenchmarkAblationPTTGC(b *testing.B) {
	for _, gc := range []bool{true, false} {
		name := "gc=on"
		if !gc {
			name = "gc=off"
		}
		b.Run(name, func(b *testing.B) {
			e, _ := prepEnv(b, true, func(o *immortaldb.Options) {
				o.DisablePTTGC = !gc
				o.CheckpointEveryN = 500
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				oneRecordTxn(b, e, i)
			}
			b.StopTimer()
			b.ReportMetric(float64(e.DB.Stats().PTTEntries), "PTTentries")
		})
	}
}

// BenchmarkAblationThreshold reports current-timeslice utilization across
// key-split thresholds (ablation A4; the paper predicts ~T·ln2).
func BenchmarkAblationThreshold(b *testing.B) {
	for _, t := range []float64{0.5, 0.7, 0.9} {
		b.Run(fmt.Sprintf("T=%.1f", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e, err := repro.NewEnv(benchOpts(), true, func(o *immortaldb.Options) { o.Threshold = t })
				if err != nil {
					b.Fatal(err)
				}
				ops, err := workload.New(workload.Config{Seed: 1}).Stream(2000, 8000)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := repro.ApplyStream(e, ops); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				u, err := e.DB.TableUtilization(e.Table)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*u.CurrentSliceUtilization(), "sliceutil%")
				e.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkSnapshotIsolation measures snapshot reads racing a writer stream
// against serializable reads that contend on locks (experiment S1).
func BenchmarkSnapshotIsolation(b *testing.B) {
	for _, level := range []immortaldb.IsolationLevel{immortaldb.SnapshotIsolation, immortaldb.Serializable} {
		b.Run(level.String(), func(b *testing.B) {
			e, _ := prepEnv(b, true, func(o *immortaldb.Options) { o.LockTimeout = 30 * time.Second })
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					op := workload.Op{OID: uint16(i % 16), Pos: workload.Point{X: int32(i)}}
					if repro.ApplyOp(e, op) != nil {
						return
					}
					i++
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := e.DB.Begin(level)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := tx.Get(e.Table, workload.Key(uint16(i%16))); err != nil {
					b.Fatal(err)
				}
				tx.Commit()
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkCommitThroughput measures durable single-record commits as the
// client count grows, under the group-commit dispatcher and the serial
// one-fsync-per-commit baseline (experiment C1). Unlike the other benchmarks
// fsync stays ON — the shared sync is the effect under test. The reported
// ns/op is per commit regardless of the client count.
func BenchmarkCommitThroughput(b *testing.B) {
	for _, mode := range []immortaldb.GroupCommitMode{immortaldb.GroupCommitOn, immortaldb.GroupCommitOff} {
		name := "group"
		if mode == immortaldb.GroupCommitOff {
			name = "serial"
		}
		for _, clients := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", name, clients), func(b *testing.B) {
				e, err := repro.NewEnv(benchOpts(), true, func(o *immortaldb.Options) {
					o.NoSync = false
					o.GroupCommit = mode
				})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				b.ResetTimer()
				sec, commits, err := repro.CommitStorm(e, clients, b.N)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(commits)/sec, "commits/s")
			})
		}
	}
}

// BenchmarkHistoryTimeTravel measures whole-history retrieval of one record.
func BenchmarkHistoryTimeTravel(b *testing.B) {
	e, _ := prepEnv(b, true, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist, err := e.DB.History(e.Table, workload.Key(uint16(i%100)))
		if err != nil {
			b.Fatal(err)
		}
		if len(hist) == 0 {
			b.Fatal("no history")
		}
	}
}
