package immortaldb

// Tests for VacuumHistory: the synchronous, accounted cold-tier pass behind
// the VACUUM HISTORY statement. The pass must do real work (migrate pages,
// merge runs, vacuum behind the retention horizon), report that work in its
// stats, and leave current reads intact.

import (
	"errors"
	"fmt"
	"testing"

	"immortaldb/internal/itime"
)

func TestVacuumHistoryReclaimsAndReports(t *testing.T) {
	clock := testClock()
	db, _ := openTestDB(t, tieredOpts(func(o *Options) {
		o.Clock = clock
		o.Retention = 10 * itime.TickDuration
	}))
	tbl, _ := db.CreateTable("objects", TableOptions{Immortal: true})

	for i := 0; i < 30; i++ {
		set(t, db, tbl, "k", fmt.Sprintf("v%03d-padpadpadpadpadpadpadpadpadpadpadpad", i))
	}
	before, err := db.History(tbl, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}

	// Let the clock run far past every version, then vacuum until the
	// passes have migrated the chains and swept behind the horizon.
	clock.Advance(1000 * itime.TickDuration)
	var total VacuumStats
	for i := 0; i < 4; i++ {
		st, err := db.VacuumHistory()
		if err != nil {
			t.Fatalf("VacuumHistory pass %d: %v", i, err)
		}
		total.VersionsReclaimed += st.VersionsReclaimed
		total.BytesReclaimed += st.BytesReclaimed
		total.PagesMigrated += st.PagesMigrated
		total.RunsMerged += st.RunsMerged
	}
	if total.PagesMigrated == 0 {
		t.Fatalf("vacuum migrated no pages: %+v", total)
	}
	if total.RunsMerged == 0 {
		t.Fatalf("vacuum merged no runs: %+v", total)
	}
	if total.VersionsReclaimed == 0 {
		t.Fatalf("vacuum reclaimed no versions: %+v", total)
	}
	if total.BytesReclaimed == 0 {
		t.Fatalf("vacuum reclaimed no bytes: %+v", total)
	}

	after, err := db.History(tbl, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("history did not shrink: %d -> %d versions", len(before), len(after))
	}
	// The newest version must always survive and read correctly now.
	tx, _ := db.Begin(Serializable)
	if v, ok := get(t, tx, tbl, "k"); !ok || v[:4] != "v029" {
		t.Fatalf("current read after vacuum = %q, %v", v, ok)
	}
	tx.Commit()
}

func TestVacuumHistoryRequiresTieredHistory(t *testing.T) {
	db, _ := openTestDB(t, nil)
	if _, err := db.VacuumHistory(); !errors.Is(err, ErrTieredOff) {
		t.Fatalf("VacuumHistory without TieredHistory = %v, want ErrTieredOff", err)
	}
}
