package immortaldb_test

// The crash matrix: run a committed workload on the simulated disk, count
// its I/O operations, then crash the disk at EVERY operation index in turn —
// every page write, log write, timestamp-table write, and fsync across the
// commit, fuzzy-checkpoint, time-split, PTT-hardening, and lazy-stamping
// paths — reboot with torn/lost sectors, recover, and verify the survivor
// against the reference model.
//
// A failing point is a replayable coordinate:
//
//	go test -run TestCrashMatrix -seed=<N> -point=<M>
//
// re-runs exactly that crash with full disk-op trace output.

import (
	"flag"
	"testing"

	"immortaldb/internal/fault"
)

var (
	matrixSeed  = flag.Int64("seed", 1, "crash-matrix workload seed")
	matrixPoint = flag.Int64("point", 0, "replay a single crash point (0 = full matrix)")
)

// minCrashPoints is the floor the full workload must generate: the matrix is
// only exhaustive if the workload actually exercises that many distinct
// write/sync points.
const minCrashPoints = 200

func runPoint(t *testing.T, seed, point int64) {
	t.Helper()
	res := fault.Run(fault.Config{Seed: seed, CrashAt: point})
	if !fault.Crashed(res) {
		t.Fatalf("point %d: workload finished without hitting the crash point (%d ops total)\n%s",
			point, res.FS.OpCount(), fault.Describe(res))
	}
	if err := fault.Verify(res); err != nil {
		t.Fatalf("crash point %d failed verification: %v\n%s", point, err, fault.Describe(res))
	}
}

func TestCrashMatrix(t *testing.T) {
	seed := *matrixSeed

	if *matrixPoint > 0 {
		runPoint(t, seed, *matrixPoint)
		return
	}

	// Baseline: the workload must complete cleanly with no fault injected,
	// and the verifier must accept the uncrashed database.
	base := fault.Run(fault.Config{Seed: seed})
	if !base.Clean {
		t.Fatalf("baseline workload failed: %v\n%s", base.Err, fault.Describe(base))
	}
	total := base.FS.OpCount() // before Verify, which issues more I/O
	if err := fault.Verify(base); err != nil {
		t.Fatalf("baseline verification failed: %v", err)
	}
	if total < minCrashPoints {
		t.Fatalf("workload generated only %d disk operations; need >= %d crash points", total, minCrashPoints)
	}

	// Determinism self-check: the same seed must produce the same I/O
	// sequence, or "crash at op N" is not a stable coordinate.
	again := fault.Run(fault.Config{Seed: seed})
	if !again.Clean || again.FS.OpCount() != total || len(again.Committed) != len(base.Committed) {
		t.Fatalf("workload is not deterministic: run 1 = %d ops / %d commits, run 2 = %d ops / %d commits (err %v)",
			total, len(base.Committed), again.FS.OpCount(), len(again.Committed), again.Err)
	}
	for i := range base.Committed {
		if base.Committed[i].TS != again.Committed[i].TS {
			t.Fatalf("workload is not deterministic: commit %d ts %v vs %v",
				i, base.Committed[i].TS, again.Committed[i].TS)
		}
	}

	t.Logf("crash matrix: seed=%d, %d crash points, %d committed txns", seed, total, len(base.Committed))
	for point := int64(1); point <= total; point++ {
		runPoint(t, seed, point)
	}
}

// TestCrashMatrixSecondSeed runs a reduced sweep under a different seed (and
// therefore different torn-sector coin flips) unless -short is set.
func TestCrashMatrixSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("second-seed sweep skipped in -short mode")
	}
	const seed = 42
	base := fault.Run(fault.Config{Seed: seed})
	if !base.Clean {
		t.Fatalf("baseline workload failed: %v\n%s", base.Err, fault.Describe(base))
	}
	total := base.FS.OpCount()
	// Stride 3 keeps this sweep cheap while still crossing every code path.
	for point := int64(1); point <= total; point += 3 {
		runPoint(t, seed, point)
	}
}
