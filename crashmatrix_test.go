package immortaldb_test

// The crash matrix: run a committed workload on the simulated disk, count
// its I/O operations, then crash the disk at EVERY operation index in turn —
// every page write, log write, timestamp-table write, and fsync across the
// commit, fuzzy-checkpoint, time-split, PTT-hardening, and lazy-stamping
// paths — reboot with torn/lost sectors, recover, and verify the survivor
// against the reference model.
//
// A failing point is a replayable coordinate:
//
//	go test -run TestCrashMatrix -seed=<N> -point=<M>
//
// re-runs exactly that crash with full disk-op trace output.

import (
	"flag"
	"testing"
	"time"

	"immortaldb/internal/fault"
)

var (
	matrixSeed  = flag.Int64("seed", 1, "crash-matrix workload seed")
	matrixPoint = flag.Int64("point", 0, "replay a single crash point (0 = full matrix)")
	concSeed    = flag.Int64("cseed", 1, "concurrent crash-matrix workload seed")
	concPoint   = flag.Int64("cpoint", 0, "re-run a single concurrent crash point (0 = full sweep)")
)

// minCrashPoints is the floor the full workload must generate: the matrix is
// only exhaustive if the workload actually exercises that many distinct
// write/sync points.
const minCrashPoints = 200

func runPoint(t *testing.T, seed, point int64) {
	t.Helper()
	res := fault.Run(fault.Config{Seed: seed, CrashAt: point})
	if !fault.Crashed(res) {
		t.Fatalf("point %d: workload finished without hitting the crash point (%d ops total)\n%s",
			point, res.FS.OpCount(), fault.Describe(res))
	}
	if err := fault.Verify(res); err != nil {
		t.Fatalf("crash point %d failed verification: %v\n%s", point, err, fault.Describe(res))
	}
}

func TestCrashMatrix(t *testing.T) {
	seed := *matrixSeed

	if *matrixPoint > 0 {
		runPoint(t, seed, *matrixPoint)
		return
	}

	// Baseline: the workload must complete cleanly with no fault injected,
	// and the verifier must accept the uncrashed database.
	base := fault.Run(fault.Config{Seed: seed})
	if !base.Clean {
		t.Fatalf("baseline workload failed: %v\n%s", base.Err, fault.Describe(base))
	}
	total := base.FS.OpCount() // before Verify, which issues more I/O
	if err := fault.Verify(base); err != nil {
		t.Fatalf("baseline verification failed: %v", err)
	}
	if total < minCrashPoints {
		t.Fatalf("workload generated only %d disk operations; need >= %d crash points", total, minCrashPoints)
	}

	// Determinism self-check: the same seed must produce the same I/O
	// sequence, or "crash at op N" is not a stable coordinate.
	again := fault.Run(fault.Config{Seed: seed})
	if !again.Clean || again.FS.OpCount() != total || len(again.Committed) != len(base.Committed) {
		t.Fatalf("workload is not deterministic: run 1 = %d ops / %d commits, run 2 = %d ops / %d commits (err %v)",
			total, len(base.Committed), again.FS.OpCount(), len(again.Committed), again.Err)
	}
	for i := range base.Committed {
		if base.Committed[i].TS != again.Committed[i].TS {
			t.Fatalf("workload is not deterministic: commit %d ts %v vs %v",
				i, base.Committed[i].TS, again.Committed[i].TS)
		}
	}

	t.Logf("crash matrix: seed=%d, %d crash points, %d committed txns", seed, total, len(base.Committed))
	for point := int64(1); point <= total; point++ {
		runPoint(t, seed, point)
	}
}

// TestCrashMatrixConcurrent sweeps crash points while several goroutines
// commit through the group-commit pipeline. The disk-op sequence is not
// deterministic here (the committer interleaving varies), so each run is
// self-verifying: the harness records at runtime which transactions were
// acked — with the commit timestamps the engine reported — and recovery must
// preserve exactly those (plus, all-or-nothing, each worker's single
// maybe-committed transaction). A txn whose commit record missed the shared
// fsync can therefore never have been acked, or the sweep fails.
func TestCrashMatrixConcurrent(t *testing.T) {
	seed := *concSeed

	runConc := func(t *testing.T, after int64, every time.Duration) bool {
		t.Helper()
		res := fault.RunConcurrent(fault.ConcurrentConfig{Seed: seed, CrashAfter: after, CommitEvery: every})
		crashed := fault.ConcCrashed(res)
		if !crashed && !res.Clean {
			// Without a crash, every worker error is an engine bug.
			t.Fatalf("crash-after %d: workload failed without a crash\n%s", after, fault.DescribeConcurrent(res))
		}
		if err := fault.VerifyConcurrent(res); err != nil {
			t.Fatalf("crash-after %d failed verification: %v\n%s", after, err, fault.DescribeConcurrent(res))
		}
		return crashed
	}

	if *concPoint > 0 {
		runConc(t, *concPoint, 0)
		return
	}

	// Baseline: clean run, verified, to size the sweep. The op count is only
	// an estimate for other interleavings, which is all a sweep needs.
	base := fault.RunConcurrent(fault.ConcurrentConfig{Seed: seed})
	if !base.Clean {
		t.Fatalf("baseline concurrent workload failed\n%s", fault.DescribeConcurrent(base))
	}
	total := base.FS.OpCount() - base.SetupOps
	if err := fault.VerifyConcurrent(base); err != nil {
		t.Fatalf("baseline concurrent verification failed: %v", err)
	}
	const minConcPoints = 120
	if total < minConcPoints {
		t.Fatalf("concurrent phase generated only %d disk operations; need >= %d", total, minConcPoints)
	}

	points := int64(48)
	if testing.Short() {
		points = 12
	}
	stride := total / points
	if stride < 1 {
		stride = 1
	}
	crashes := 0
	swept := 0
	for after := int64(1); after <= total; after += stride {
		swept++
		if runConc(t, after, 0) {
			crashes++
		}
	}
	// Op counts vary across interleavings, so late points can finish cleanly
	// before the crash fires; most must still crash or the sweep is not
	// exercising recovery.
	if crashes < swept/2 {
		t.Fatalf("only %d of %d crash points actually crashed", crashes, swept)
	}
	t.Logf("concurrent crash matrix: seed=%d, %d points swept, %d crashed", seed, swept, crashes)

	// A few points with a non-zero group-commit max delay: the leader then
	// waits for followers before the shared fsync, shifting which commit
	// records each sync round covers.
	for after := total / 5; after <= total; after += total / 5 {
		runConc(t, after, 200*time.Microsecond)
	}
}

// TestCrashMatrixSecondSeed runs a reduced sweep under a different seed (and
// therefore different torn-sector coin flips) unless -short is set.
func TestCrashMatrixSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("second-seed sweep skipped in -short mode")
	}
	const seed = 42
	base := fault.Run(fault.Config{Seed: seed})
	if !base.Clean {
		t.Fatalf("baseline workload failed: %v\n%s", base.Err, fault.Describe(base))
	}
	total := base.FS.OpCount()
	// Stride 3 keeps this sweep cheap while still crossing every code path.
	for point := int64(1); point <= total; point += 3 {
		runPoint(t, seed, point)
	}
}
