package immortaldb_test

// The replica crash matrix: a primary runs a committed workload on a healthy
// simulated disk while a follower replicates it — shipped chunk ingest,
// ingest fsync, bounded continuous redo, replica checkpoints — on a disk
// that crashes at EVERY operation index in turn. After each crash the
// follower reboots with torn/lost sectors, reopens, resyncs from its own log
// end, and must prove the replication contract: the durably acknowledged
// horizon never regresses, and no commit acked on the primary is missing —
// current state and AS OF every commit timestamp.
//
// A failing point is a replayable coordinate:
//
//	go test -run TestReplicaCrashMatrix -rseed=<N> -rpoint=<M>
//
// re-runs exactly that crash with full disk-op trace output.

import (
	"flag"
	"testing"

	"immortaldb/internal/fault"
)

var (
	replicaSeed  = flag.Int64("rseed", 1, "replica crash-matrix workload seed")
	replicaPoint = flag.Int64("rpoint", 0, "replay a single replica crash point (0 = full matrix)")
)

// minReplicaPoints is the floor the follower must generate: ingest writes,
// ingest fsyncs, redo page writes, and replica-checkpoint I/O all count.
const minReplicaPoints = 150

func runReplicaPoint(t *testing.T, seed, point int64) {
	t.Helper()
	res := fault.RunReplica(fault.ReplicaConfig{Seed: seed, CrashAt: point})
	if !fault.ReplicaCrashed(res) {
		t.Fatalf("point %d: replication finished without hitting the crash point\n%s",
			point, fault.DescribeReplica(res))
	}
	if err := fault.VerifyReplica(res); err != nil {
		t.Fatalf("replica crash point %d failed verification: %v\n%s",
			point, err, fault.DescribeReplica(res))
	}
}

func TestReplicaCrashMatrix(t *testing.T) {
	seed := *replicaSeed

	if *replicaPoint > 0 {
		runReplicaPoint(t, seed, *replicaPoint)
		return
	}

	// Baseline: replication must run to a clean follower close with no fault
	// injected, and the verifier must accept the uncrashed replica.
	base := fault.RunReplica(fault.ReplicaConfig{Seed: seed})
	if !base.Clean {
		t.Fatalf("baseline replication failed: %v\n%s", base.Err, fault.DescribeReplica(base))
	}
	total := base.FollowerFS.OpCount() // before Verify, which issues more I/O
	if err := fault.VerifyReplica(base); err != nil {
		t.Fatalf("baseline replica verification failed: %v", err)
	}
	if total < minReplicaPoints {
		t.Fatalf("follower generated only %d disk operations; need >= %d crash points", total, minReplicaPoints)
	}

	// Determinism self-check: the same seed must produce the same follower
	// I/O sequence, or "crash at op N" is not a stable coordinate.
	again := fault.RunReplica(fault.ReplicaConfig{Seed: seed})
	if !again.Clean || again.FollowerFS.OpCount() != total ||
		len(again.Committed) != len(base.Committed) ||
		again.SyncedLSN != base.SyncedLSN {
		t.Fatalf("replication is not deterministic: run 1 = %d ops / %d commits / lsn %d, run 2 = %d ops / %d commits / lsn %d (err %v)",
			total, len(base.Committed), base.SyncedLSN,
			again.FollowerFS.OpCount(), len(again.Committed), again.SyncedLSN, again.Err)
	}
	if err := fault.VerifyReplica(again); err != nil {
		t.Fatalf("determinism re-run failed verification: %v", err)
	}

	stride := int64(1)
	if testing.Short() {
		stride = 5
	}
	t.Logf("replica crash matrix: seed=%d, %d crash points (stride %d), %d committed txns",
		seed, total, stride, len(base.Committed))
	for point := int64(1); point <= total; point += stride {
		runReplicaPoint(t, seed, point)
	}
}

// TestReplicaCrashMatrixSecondSeed runs a reduced sweep under a different
// seed (different workload, different torn-sector coin flips) unless -short.
func TestReplicaCrashMatrixSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("second-seed replica sweep skipped in -short mode")
	}
	const seed = 23
	base := fault.RunReplica(fault.ReplicaConfig{Seed: seed})
	if !base.Clean {
		t.Fatalf("baseline replication failed: %v\n%s", base.Err, fault.DescribeReplica(base))
	}
	total := base.FollowerFS.OpCount()
	if err := fault.VerifyReplica(base); err != nil {
		t.Fatalf("baseline replica verification failed: %v", err)
	}
	// Stride 3 keeps this sweep cheap while still crossing every code path.
	for point := int64(1); point <= total; point += 3 {
		runReplicaPoint(t, seed, point)
	}
}
