// Command immortald serves an Immortal DB database over the wire protocol.
//
// It listens for wire-protocol clients (cmd/immortalsql -connect, or the
// internal/client Go package), enforces a connection cap and per-request
// deadlines, and exposes Prometheus-style /metrics, /healthz, the slow
// operation log (/debug/slowops) and net/http/pprof profiling over a
// separate HTTP listener. SIGINT/SIGTERM triggers a graceful shutdown: the
// listener closes, connections holding an open transaction get the drain
// timeout to commit or roll back, and the database closes cleanly behind
// them.
//
// A replica follows a primary with -follow: the local directory is seeded
// (from a base snapshot when the primary has truncated history) and kept
// current by continuous WAL segment shipping, and the same listener serves
// read-only snapshot and AS OF transactions against the replication horizon.
// Writes are answered with a typed redirect. If the replica falls so far
// behind that the primary must re-seed it mid-flight, the process exits so a
// supervisor restarts it onto the fresh copy.
//
// -restore-from together with -restore-asof runs a one-shot point-in-time
// restore into -db and exits: the source's retained log chain is cut at the
// last commit at or before the given time and replayed from genesis.
//
// Usage:
//
//	immortald -db ./mydb -listen :7707 -http :7708
//	immortald -db ./replica -listen :7717 -follow primary:7707
//	immortald -db ./clone -restore-from ./mydb -restore-asof "2004-08-12 10:15:20"
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"immortaldb"
	"immortaldb/internal/admit"
	"immortaldb/internal/obs"
	"immortaldb/internal/repl"
	"immortaldb/internal/server"
)

func main() {
	dir := flag.String("db", "immortaldb-data", "database directory")
	listen := flag.String("listen", ":7707", "wire-protocol listen address")
	httpAddr := flag.String("http", "", "HTTP listen address for /metrics and /healthz (empty = disabled)")
	maxConns := flag.Int("max-conns", 128, "maximum concurrent client connections")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "close connections idle this long")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request I/O deadline")
	drain := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain window for open transactions")
	index := flag.String("index", "chain", "historical access path: chain or tsb")
	slowOp := flag.Duration("slowop-threshold", 100*time.Millisecond, "operations slower than this record their span tree in /debug/slowops (negative = off)")
	follow := flag.String("follow", "", "primary address to replicate from; serves read-only")
	promoteFlag := flag.Bool("promote", false, "with -follow: promote to read-write primary once the initial catch-up finishes (SIGUSR1 promotes a running follower)")
	restoreFrom := flag.String("restore-from", "", "source directory for a point-in-time restore into -db")
	restoreAsOf := flag.String("restore-asof", "", `restore cut time, e.g. "2004-08-12 10:15:20" (with -restore-from)`)
	tiered := flag.Bool("tiered", false, "migrate cold history pages into compressed immutable runs (requires -index chain)")
	retention := flag.Duration("retention", 0, "vacuum historical versions older than this from the cold tier (0 = keep forever; with -tiered)")
	compactEvery := flag.Duration("compact-every", time.Minute, "background history-compaction interval (0 = manual only; with -tiered)")
	admitLimit := flag.Int("admit-limit", 0, "starting adaptive concurrency limit for the admission gate (0 = admission control off unless a quota flag enables it)")
	admitTarget := flag.Duration("admit-target", 25*time.Millisecond, "commit latency the adaptive limit steers toward (0 = fixed limit)")
	admitQueue := flag.Int("admit-queue", 0, "admission queue depth (0 = 2x the limit)")
	admitWait := flag.Duration("admit-wait", 0, "longest a request may wait for an admission slot before it is shed (0 = 1s)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant token refill rate in requests/s (0 = no refill beyond the burst)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant token bucket capacity (0 = tenants unlimited)")
	untaggedRate := flag.Float64("untagged-rate", 0, "token refill rate for statements carrying no tenant key (0 = no refill)")
	untaggedBurst := flag.Float64("untagged-burst", 0, "token bucket capacity shared by untagged statements (0 = unlimited)")
	flag.Parse()

	obs.SetSlowOpThreshold(*slowOp)

	logger := log.New(os.Stderr, "immortald: ", log.LstdFlags)

	opts := &immortaldb.Options{DrainTimeout: *drain}
	if *index == "tsb" {
		opts.HistoricalIndex = immortaldb.IndexTSB
	}
	if *tiered {
		opts.TieredHistory = true
		opts.Retention = *retention
		opts.HistCompactEvery = *compactEvery
	}

	if *restoreFrom != "" || *restoreAsOf != "" {
		if *restoreFrom == "" || *restoreAsOf == "" {
			logger.Fatalf("-restore-from and -restore-asof must be given together")
		}
		ts, err := immortaldb.ParseAsOf(*restoreAsOf)
		if err != nil {
			logger.Fatalf("restore: %v", err)
		}
		if err := immortaldb.RestoreAsOf(*restoreFrom, *dir, ts, opts); err != nil {
			logger.Fatalf("restore: %v", err)
		}
		logger.Printf("restored %s as of %s into %s", *restoreFrom, *restoreAsOf, *dir)
		return
	}

	// replaced fires when the follower's local engine is swapped for a fresh
	// base copy mid-flight; the process exits so a supervisor restarts it.
	var replaced chan struct{}
	var follower *repl.Follower
	var followerDone chan error
	followCtx, stopFollow := context.WithCancel(context.Background())
	defer stopFollow()

	var db *immortaldb.DB
	var err error
	if *follow != "" {
		follower = repl.NewFollower(repl.Config{
			Dir:       *dir,
			Addr:      *follow,
			DBOptions: opts,
			Logf:      logger.Printf,
		})
		logger.Printf("syncing from %s", *follow)
		if err := follower.Sync(followCtx); err != nil {
			logger.Fatalf("follow %s: %v", *follow, err)
		}
		db = follower.DB()
		_, reseeds := follower.Stats()
		h := follower.Horizon()
		logger.Printf("caught up to %s (applied LSN %d, base reseeds %d)", h.MaxVisible, h.AppliedLSN, reseeds)
		followerDone = make(chan error, 1)
		replaced = make(chan struct{})
		go func() { followerDone <- follower.Run(followCtx) }()
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for range t.C {
				if cur := follower.DB(); cur != nil && cur != db {
					close(replaced)
					return
				}
			}
		}()
	} else {
		if *promoteFlag {
			logger.Fatalf("-promote requires -follow: only a follower can be promoted")
		}
		db, err = immortaldb.Open(*dir, opts)
		if err != nil {
			logger.Fatalf("open %s: %v", *dir, err)
		}
	}

	// Any admission flag turns the gate on: a concurrency limit alone, tenant
	// quotas alone, or both. With only quotas set, the concurrency limit
	// takes the gate's own default.
	var admission *admit.Config
	if *admitLimit > 0 || *tenantBurst > 0 || *untaggedBurst > 0 {
		admission = &admit.Config{
			Default:  admit.Quota{Rate: *untaggedRate, Burst: *untaggedBurst},
			Tenant:   admit.Quota{Rate: *tenantRate, Burst: *tenantBurst},
			Limit:    *admitLimit,
			Target:   *admitTarget,
			MaxQueue: *admitQueue,
			MaxWait:  *admitWait,
		}
	}

	srv := server.New(db, server.Config{
		MaxConns:       *maxConns,
		IdleTimeout:    *idle,
		RequestTimeout: *reqTimeout,
		Admission:      admission,
		Logf:           logger.Printf,
	})
	if follower != nil {
		// Write refusals carry the primary's address, so clients re-resolve
		// without an external directory.
		srv.SetPrimaryAddr(*follow)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		db.Close()
		logger.Fatalf("listen %s: %v", *listen, err)
	}
	logger.Printf("serving %s on %s", *dir, addr)

	var httpSrv *http.Server
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			writeMetrics(w, db.Stats(), srv.Stats())
			// Histograms and gauges recorded by the obs layer (latency
			// summaries, table sizes, span-derived data) follow the legacy
			// engine counters; the name sets are disjoint.
			obs.WriteMetrics(w)
		})
		mux.HandleFunc("/debug/slowops", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(obs.SlowOps())
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("/healthz", healthzHandler(db, srv, follower))
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Fatalf("http listen %s: %v", *httpAddr, err)
		}
		httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := httpSrv.Serve(hl); err != nil && err != http.ErrServerClosed {
				logger.Printf("http: %v", err)
			}
		}()
		logger.Printf("metrics on http://%s/metrics", hl.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	// promote turns a follower into the read-write primary in place: redo
	// finishes, the log seals, the epoch fences the deposed primary, and the
	// same listener starts accepting writes — no restart, no reconnects.
	promote := func(reason string) {
		if follower == nil {
			logger.Printf("promote (%s): not a follower, ignoring", reason)
			return
		}
		epoch, err := follower.Promote()
		if err != nil {
			logger.Printf("promote (%s): %v", reason, err)
			return
		}
		srv.SetPrimaryAddr("")
		logger.Printf("promoted to primary (%s): epoch %d, fence LSN %d", reason, epoch, follower.Horizon().AppliedLSN)
	}
	if *promoteFlag {
		promote("-promote")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
wait:
	for {
		select {
		case s := <-sig:
			logger.Printf("signal %v: draining (up to %v)", s, *drain)
			break wait
		case err := <-serveErr:
			logger.Printf("serve: %v", err)
			break wait
		case <-replaced:
			logger.Printf("local copy re-seeded from base snapshot; restarting to serve the fresh copy")
			break wait
		case err := <-followerDone:
			if errors.Is(err, repl.ErrPromoted) {
				// The replication loop retired because this node is the
				// primary now; keep serving.
				logger.Printf("replication loop retired: %v", err)
				followerDone = nil
				continue
			}
			logger.Printf("replication stream ended: %v", err)
			break wait
		case <-usr1:
			promote("SIGUSR1")
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v (survivors force-closed)", err)
	}
	if httpSrv != nil {
		httpSrv.Close()
	}
	if follower != nil {
		stopFollow()
		if followerDone != nil {
			<-followerDone
		}
		if err := follower.Close(); err != nil {
			logger.Fatalf("close follower: %v", err)
		}
		logger.Printf("closed cleanly")
		return
	}
	// A degraded engine skips the final checkpoint inside Close — writing one
	// would claim durability the failed I/O disproved — so the error it
	// returns is expected, not fatal: recovery at the next start settles
	// everything from the last synced log prefix.
	if derr := db.Degraded(); derr != nil {
		logger.Printf("engine degraded, skipping final checkpoint: %v", derr)
		db.Close()
		logger.Printf("closed degraded; next start will run recovery")
		return
	}
	if err := db.Close(); err != nil {
		logger.Fatalf("close: %v", err)
	}
	logger.Printf("closed cleanly")
}

// writeMetrics renders engine and server counters in Prometheus text
// exposition format.
func writeMetrics(w http.ResponseWriter, ds immortaldb.Stats, ss server.Stats) {
	p := func(name string, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	p("immortaldb_commits_total", "Committed transactions.", ds.Commits)
	p("immortaldb_aborts_total", "Aborted transactions.", ds.Aborts)
	p("immortaldb_open_txns", "Currently active transactions.", ds.OpenTxns)
	p("immortaldb_vtt_backlog", "Volatile timestamp table entries awaiting lazy timestamping.", ds.VTTBacklog)
	p("immortaldb_ptt_entries", "Persistent timestamp table entries.", ds.PTTEntries)
	p("immortaldb_log_bytes", "Write-ahead log size in bytes.", ds.LogBytes)
	p("immortaldb_log_appends_total", "Log records appended.", ds.LogAppends)
	p("immortaldb_log_syncs_total", "Log fsyncs issued.", ds.LogSyncs)
	p("immortaldb_grouped_commits_total", "Commit hardenings satisfied by another committer's fsync.", ds.GroupedCommits)
	p("immortaldb_group_commit_batch_mean", "Mean commits hardened per fsync.", ds.MeanCommitBatch())
	p("immortaldb_pager_reads_total", "Pages read from disk.", ds.PagerReads)
	p("immortaldb_pager_writes_total", "Pages written to disk.", ds.PagerWrites)
	p("immortaldb_cache_hits_total", "Buffer-pool hits.", ds.CacheHits)
	p("immortaldb_cache_misses_total", "Buffer-pool misses.", ds.CacheMisses)
	p("immortaldb_time_splits_total", "TSB time splits across all tables.", ds.TimeSplits)
	p("immortaldb_key_splits_total", "TSB key splits across all tables.", ds.KeySplits)
	p("immortaldb_chain_hops_total", "Version-chain hops during historical reads.", ds.ChainHops)
	degraded := 0
	if ds.Degraded {
		degraded = 1
	}
	p("immortaldb_engine_degraded", "1 while the engine is read-only-degraded after an I/O failure.", degraded)
	p("immortaldb_wal_segment_files", "Live WAL segment files.", ds.WALSegments)
	p("immortald_conns_accepted_total", "Connections accepted.", ss.Accepted)
	p("immortald_conns_refused_total", "Connections refused over the cap.", ss.Refused)
	p("immortald_conns_active", "Connections currently open.", ss.ActiveConns)
	p("immortald_requests_total", "Statements executed.", ss.Requests)
	p("immortald_request_errors_total", "Statements answered with an error frame.", ss.Errors)
	p("immortald_conn_panics_total", "Connection handlers killed by a panic.", ss.Panics)
	p("immortald_admitted_total", "Requests admitted by the admission gate (0 when the gate is off).", ss.Admitted)
	p("immortald_shed_total", "Requests shed by the admission gate with a retryable overload response.", ss.Shed)
	draining := 0
	if ss.Draining {
		draining = 1
	}
	p("immortald_draining", "1 while a graceful shutdown is in progress.", draining)
}
