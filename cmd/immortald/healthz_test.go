package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
	"immortaldb/internal/repl"
	"immortaldb/internal/server"
	"immortaldb/internal/sim"
)

func healthzOpts() *immortaldb.Options {
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	clock.AutoStep = 1
	clock.AutoEvery = 3
	return &immortaldb.Options{
		PageSize:       1024,
		CacheFrames:    64,
		NoSync:         true,
		WALSegmentSize: 4096,
		Clock:          clock,
	}
}

// healthzGet drives the handler exactly as an HTTP client would and decodes
// the JSON body.
func healthzGet(t *testing.T, db *immortaldb.DB, srv *server.Server, f *repl.Follower) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	healthzHandler(db, srv, f)(rec, httptest.NewRequest("GET", "/healthz", nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body not JSON: %v\n%s", err, rec.Body.String())
	}
	return rec.Code, body
}

// TestHealthzFollowerLagFields pins the replica /healthz contract an
// orchestrator depends on: the payload carries applied_lsn, max_visible and
// lag_bytes, and the first two advance monotonically as the follower syncs a
// shipping workload. The primary payload must carry none of them.
func TestHealthzFollowerLagFields(t *testing.T) {
	primary, err := immortaldb.Open(t.TempDir(), healthzOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	n := sim.NewNet(nil, 7)
	const addr = "primary:7707"
	lis, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(primary, server.Config{Logf: t.Logf})
	if err := srv.ListenOn(lis); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	tbl, err := primary.CreateTable("kv", immortaldb.TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	write := func(round int) {
		for i := 0; i < 8; i++ {
			if err := primary.Update(func(tx *immortaldb.Tx) error {
				k := fmt.Sprintf("k%d-%d", round, i)
				return tx.Set(tbl, []byte(k), []byte("v"))
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(0)

	f := repl.NewFollower(repl.Config{
		Dir:       t.TempDir(),
		Addr:      addr,
		DBOptions: healthzOpts(),
		Dialer:    n.Dialer("follower"),
		Logf:      t.Logf,
	})
	defer f.Close()
	ctx := context.Background()
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Primary payload: role only, never the replica lag fields.
	code, body := healthzGet(t, primary, srv, nil)
	if code != 200 || body["status"] != "ok" || body["role"] != "primary" {
		t.Fatalf("primary healthz = %d %v", code, body)
	}
	for _, field := range []string{"applied_lsn", "max_visible", "lag_bytes"} {
		if _, ok := body[field]; ok {
			t.Fatalf("primary healthz leaked replica field %q: %v", field, body)
		}
	}

	// Follower payload after the first sync.
	fdb := f.DB()
	fsrv := server.New(fdb, server.Config{Logf: t.Logf})
	code, body = healthzGet(t, fdb, fsrv, f)
	if code != 200 || body["status"] != "ok" || body["role"] != "replica" {
		t.Fatalf("follower healthz = %d %v", code, body)
	}
	for _, field := range []string{"applied_lsn", "max_visible", "lag_bytes"} {
		if _, ok := body[field]; !ok {
			t.Fatalf("follower healthz missing %q: %v", field, body)
		}
	}
	if body["primary"] != addr {
		t.Fatalf("follower healthz primary = %v, want %s", body["primary"], addr)
	}
	applied1, ok := body["applied_lsn"].(float64)
	if !ok || applied1 <= 0 {
		t.Fatalf("applied_lsn = %v, want positive number", body["applied_lsn"])
	}
	hz1 := fdb.Horizon()
	if got := body["max_visible"]; got != fmt.Sprint(hz1.MaxVisible) {
		t.Fatalf("max_visible = %v, want %v", got, hz1.MaxVisible)
	}
	if _, ok := body["lag_bytes"].(float64); !ok {
		t.Fatalf("lag_bytes = %v, want number", body["lag_bytes"])
	}

	// Ship more work and sync twice more: the advertised horizon must be
	// strictly monotone in applied_lsn and max_visible.
	prevApplied, prevVisible := applied1, hz1.MaxVisible
	for round := 1; round <= 2; round++ {
		write(round)
		if err := f.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		fdb = f.DB() // a base re-seed may have swapped the engine
		code, body = healthzGet(t, fdb, fsrv, f)
		if code != 200 {
			t.Fatalf("round %d healthz = %d %v", round, code, body)
		}
		applied, _ := body["applied_lsn"].(float64)
		if applied <= prevApplied {
			t.Fatalf("round %d: applied_lsn %v did not advance past %v", round, applied, prevApplied)
		}
		hz := fdb.Horizon()
		if got := body["max_visible"]; got != fmt.Sprint(hz.MaxVisible) {
			t.Fatalf("round %d: max_visible = %v, want %v", round, got, hz.MaxVisible)
		}
		if !prevVisible.Less(hz.MaxVisible) {
			t.Fatalf("round %d: max_visible %v did not advance past %v", round, hz.MaxVisible, prevVisible)
		}
		prevApplied, prevVisible = applied, hz.MaxVisible
	}
}
