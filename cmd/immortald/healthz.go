package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"immortaldb"
	"immortaldb/internal/repl"
	"immortaldb/internal/server"
)

// healthzHandler answers /healthz: degradation and draining as 503 with a
// machine-readable reason, otherwise role, promotion epoch, the replication
// horizon and lag on a replica, and the admission gate's overload signals
// when one is installed. follower may be nil (a primary).
func healthzHandler(db *immortaldb.DB, srv *server.Server, follower *repl.Follower) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if err := db.Degraded(); err != nil {
			// 503 with a machine-readable reason: orchestrators stop
			// routing writes here, operators see why. Reads still work,
			// so this process stays up until replaced.
			w.WriteHeader(http.StatusServiceUnavailable)
			enc.Encode(map[string]any{
				"status": "degraded",
				"reason": err.Error(),
			})
			return
		}
		if srv.Stats().Draining {
			w.WriteHeader(http.StatusServiceUnavailable)
			enc.Encode(map[string]any{"status": "draining"})
			return
		}
		// Role, promotion epoch and — on a replica — the replication
		// horizon and lag, so an orchestrator can pick the most
		// caught-up follower to promote without a side channel.
		h := map[string]any{"status": "ok", "epoch": db.Epoch()}
		if db.IsReplica() {
			hz := db.Horizon()
			h["role"] = "replica"
			h["applied_lsn"] = hz.AppliedLSN
			h["max_visible"] = fmt.Sprint(hz.MaxVisible)
			if follower != nil {
				h["lag_bytes"] = follower.LagBytes()
				h["primary"] = follower.Addr()
			}
		} else {
			h["role"] = "primary"
		}
		// Overload signals: load balancers drain hosts whose gate is
		// shedding, autoscalers read the admitted/shed ratio.
		if g := srv.Gate(); g != nil {
			gs := g.Stats()
			h["admission"] = map[string]any{
				"limit":    gs.Limit,
				"inflight": gs.Inflight,
				"queued":   gs.Queued,
				"admitted": gs.Admitted,
				"shed":     gs.Shed,
			}
		}
		enc.Encode(h)
	}
}
