// Command benchablations runs the design-choice ablations of DESIGN.md:
//
//	eager      — lazy vs eager timestamping (A1)
//	index      — history chain traversal vs TSB-tree index (A2)
//	gc         — PTT garbage collection on/off (A3)
//	threshold  — key-split utilization threshold sweep (A4)
//	snapshot   — snapshot vs serializable readers under a write stream (S1)
//	commit     — group-commit vs serial durable-commit throughput (C1),
//	             also written as JSON rows to -commitout
//	serve      — wire-protocol vs embedded durable-commit throughput (C2),
//	             also written as JSON rows to -serveout
//	obs        — observability instrumentation overhead on durable commits
//	             (O1), also written as JSON rows to -obsout
//	repl       — primary-only vs primary+follower durable-commit throughput
//	             and follower lag (R1), also written as JSON rows to -replout
//	hist       — tiered history storage: cold-tier storage reduction, AS OF
//	             latency hot vs cold, commit throughput under the background
//	             compactor (H1), also written as JSON rows to -histout
//	failover   — promotion time and client-visible write-unavailability vs
//	             replication lag (F1), also written as JSON rows to
//	             -failoverout
//	overload   — goodput and p99 at 1×/2×/4× offered load with and without
//	             admission control (O2), also written as JSON rows to
//	             -overloadout
//	all        — everything
//
// Usage:
//
//	benchablations [-scale 1.0] [-seed 1] [experiment...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"immortaldb/internal/repro"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	pageSize := flag.Int("pagesize", 8192, "page size in bytes")
	seed := flag.Int64("seed", 1, "workload random seed")
	commitOut := flag.String("commitout", "BENCH_commit.json", "JSON output path for the commit experiment (empty disables)")
	serveOut := flag.String("serveout", "BENCH_server.json", "JSON output path for the serve experiment (empty disables)")
	obsOut := flag.String("obsout", "BENCH_obs.json", "JSON output path for the obs-overhead experiment (empty disables)")
	replOut := flag.String("replout", "BENCH_repl.json", "JSON output path for the replication experiment (empty disables)")
	histOut := flag.String("histout", "BENCH_hist.json", "JSON output path for the tiered-history experiment (empty disables)")
	failoverOut := flag.String("failoverout", "BENCH_failover.json", "JSON output path for the failover experiment (empty disables)")
	overloadOut := flag.String("overloadout", "BENCH_overload.json", "JSON output path for the overload experiment (empty disables)")
	flag.Parse()

	o := repro.Options{Scale: *scale, PageSize: *pageSize, Seed: *seed}
	which := flag.Args()
	if len(which) == 0 {
		which = []string{"all"}
	}
	run := map[string]bool{}
	for _, w := range which {
		run[w] = true
	}
	all := run["all"]

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchablations:", err)
		os.Exit(1)
	}

	if all || run["eager"] {
		rows, err := repro.RunEagerVsLazy(o)
		if err != nil {
			fail(err)
		}
		fmt.Println("A1 — Lazy vs eager timestamping (Section 2.2's rejected alternative)")
		fmt.Printf("%8s %10s %14s %12s %12s\n", "mode", "total(s)", "per-txn(us)", "log bytes", "PTT entries")
		for _, r := range rows {
			fmt.Printf("%8s %10.3f %14.2f %12d %12d\n",
				r.Mode, r.Seconds, r.PerTxnMicro, r.LogBytes, r.PTTEntries)
		}
		fmt.Println()
	}

	if all || run["index"] {
		rows, err := repro.RunChainVsTSB(o, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("A2 — History page-chain traversal vs TSB-tree index (Section 5.2's prediction)")
		fmt.Printf("%6s %10s %12s %14s %12s\n", "mode", "% history", "scan (ms)", "point (us)", "chain hops")
		for _, r := range rows {
			fmt.Printf("%6s %9d%% %12.3f %14.2f %12d\n",
				r.Mode, r.PctHistory, r.ScanMillis, r.PointMicros, r.ChainHops)
		}
		fmt.Println()
	}

	if all || run["gc"] {
		rows, err := repro.RunPTTGC(o)
		if err != nil {
			fail(err)
		}
		fmt.Println("A3 — Persistent timestamp table garbage collection")
		fmt.Printf("%6s %10s %12s\n", "GC", "txns", "PTT entries")
		for _, r := range rows {
			fmt.Printf("%6v %10d %12d\n", r.GC, r.Txns, r.PTTEntries)
		}
		fmt.Println()
	}

	if all || run["threshold"] {
		rows, err := repro.RunThreshold(o, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("A4 — Key-split threshold T vs current-timeslice utilization (paper: ~T·ln2)")
		fmt.Printf("%6s %12s %12s %10s %10s\n", "T", "slice util", "T*ln2", "cur pages", "hist pages")
		for _, r := range rows {
			fmt.Printf("%6.2f %11.1f%% %11.1f%% %10d %10d\n",
				r.T, 100*r.SliceUtil, 100*r.Predicted, r.CurrentPages, r.HistPages)
		}
		fmt.Println()
	}

	if all || run["snapshot"] {
		rows, err := repro.RunSnapshotBench(o)
		if err != nil {
			fail(err)
		}
		fmt.Println("S1 — Reader throughput under a concurrent writer stream")
		fmt.Printf("%14s %10s %12s\n", "reader", "reads", "reads/ms")
		for _, r := range rows {
			fmt.Printf("%14s %10d %12.1f\n", r.ReaderMode, r.ReadsDone, r.ReadsPerMs)
		}
		fmt.Println()
	}

	if all || run["commit"] {
		rows, err := repro.RunCommitThroughput(o, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("C1 — Durable commit throughput: group commit vs one fsync per commit")
		fmt.Printf("%8s %8s %10s %10s %14s\n", "mode", "clients", "commits", "total(s)", "commits/s")
		for _, r := range rows {
			fmt.Printf("%8s %8d %10d %10.3f %14.1f\n",
				r.Mode, r.Clients, r.Commits, r.Seconds, r.CommitsPerSec)
		}
		fmt.Println()
		if *commitOut != "" {
			blob, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*commitOut, append(blob, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", *commitOut)
		}
	}

	if all || run["serve"] {
		rows, err := repro.RunServerThroughput(o, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("C2 — Durable commit throughput: wire protocol vs embedded")
		fmt.Printf("%10s %8s %10s %10s %14s\n", "mode", "clients", "commits", "total(s)", "commits/s")
		for _, r := range rows {
			fmt.Printf("%10s %8d %10d %10.3f %14.1f\n",
				r.Mode, r.Clients, r.Commits, r.Seconds, r.CommitsPerSec)
		}
		fmt.Println()
		if *serveOut != "" {
			blob, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*serveOut, append(blob, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", *serveOut)
		}
	}

	if all || run["obs"] {
		rows, err := repro.RunObsOverhead(o, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("O1 — Observability overhead on durable group commits (runtime-disabled baseline)")
		fmt.Printf("%8s %8s %10s %10s %14s %10s\n", "mode", "clients", "commits", "total(s)", "commits/s", "overhead")
		for _, r := range rows {
			over := ""
			if r.Mode == "obs-on" {
				over = fmt.Sprintf("%+.1f%%", r.OverheadPct)
			}
			fmt.Printf("%8s %8d %10d %10.3f %14.1f %10s\n",
				r.Mode, r.Clients, r.Commits, r.Seconds, r.CommitsPerSec, over)
		}
		fmt.Println()
		if *obsOut != "" {
			blob, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*obsOut, append(blob, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", *obsOut)
		}
	}

	if all || run["repl"] {
		rows, err := repro.RunReplThroughput(o, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("R1 — Durable commit throughput with a follower continuously shipping the log")
		fmt.Printf("%14s %8s %10s %10s %14s %12s\n", "mode", "clients", "commits", "total(s)", "commits/s", "lag p95(KB)")
		for _, r := range rows {
			lag := ""
			if r.Mode == "with-follower" {
				lag = fmt.Sprintf("%12.1f", r.LagP95KB)
			}
			fmt.Printf("%14s %8d %10d %10.3f %14.1f %12s\n",
				r.Mode, r.Clients, r.Commits, r.Seconds, r.CommitsPerSec, lag)
		}
		fmt.Println()
		if *replOut != "" {
			blob, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*replOut, append(blob, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", *replOut)
		}
	}

	if all || run["hist"] {
		rows, err := repro.RunHistAblation(o, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("H1 — Tiered history: cold-run storage, AS OF hot vs cold, compactor impact")
		fmt.Printf("%18s %8s %10s %10s %14s %12s\n", "mode", "clients", "count", "total(s)", "per-sec/factor", "cold bytes")
		for _, r := range rows {
			cold := ""
			if r.Mode == "storage-reduction" {
				cold = fmt.Sprintf("%12d", r.ColdBytes)
			}
			fmt.Printf("%18s %8d %10d %10.3f %14.1f %12s\n",
				r.Mode, r.Clients, r.Commits, r.Seconds, r.CommitsPerSec, cold)
		}
		fmt.Println()
		if *histOut != "" {
			blob, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*histOut, append(blob, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", *histOut)
		}
	}

	if all || run["failover"] {
		rows, err := repro.RunFailoverAblation(o, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("F1 — Promotion time vs replication lag (client-visible write unavailability)")
		fmt.Printf("%8s %8s %10s %12s %12s %12s\n", "mode", "lag(KB)", "redo(KB)", "promote(ms)", "commit(ms)", "unavail(ms)")
		for _, r := range rows {
			fmt.Printf("%8s %8d %10.1f %12.2f %12.2f %12.2f\n",
				r.Mode, r.Clients, r.RedoKB, r.PromoteMillis, r.FirstCommitMillis, r.UnavailMillis)
		}
		fmt.Println()
		if *failoverOut != "" {
			blob, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*failoverOut, append(blob, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", *failoverOut)
		}
	}

	if all || run["overload"] {
		rows, err := repro.RunOverloadAblation(o, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("O2 — Goodput and p99 under overload, with and without admission control")
		fmt.Printf("%8s %6s %9s %9s %8s %9s %8s %14s %10s %12s\n",
			"mode", "load", "offered", "commits", "shed", "timeouts", "dropped", "goodput/s", "p99(ms)", "deadline(ms)")
		for _, r := range rows {
			fmt.Printf("%8s %5dx %9d %9d %8d %9d %8d %14.1f %10.2f %12.2f\n",
				r.Mode, r.Clients, r.Offered, r.Commits, r.Shed, r.Timeouts, r.Dropped,
				r.CommitsPerSec, r.P99Millis, r.DeadlineMillis)
		}
		fmt.Println()
		if *overloadOut != "" {
			blob, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*overloadOut, append(blob, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", *overloadOut)
		}
	}
}
