package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Row is the benchmark cell shape shared by benchablations' JSON outputs.
// Extra fields in the files are ignored.
type Row struct {
	Mode          string  `json:"mode"`
	Clients       int     `json:"clients"`
	CommitsPerSec float64 `json:"commits_per_sec"`
}

type cell struct {
	Mode    string
	Clients int
}

// Report is the outcome of one baseline/current comparison.
type Report struct {
	Lines    []string // human-readable per-cell results, stable order
	Failures []cell   // cells beyond the allowed regression
	Compared int      // cells present on both sides
}

func loadRows(path string) ([]Row, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []Row
	if err := json.Unmarshal(blob, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// Compare checks every cell present in both row sets. A cell fails when the
// current throughput is more than maxRegressPct percent below baseline.
// Improvements never fail (the baseline is a floor, not a pin); cells only
// one side has are noted but never fail, so changing the experiment grid
// doesn't break the gate.
func Compare(base, cur []Row, maxRegressPct float64) Report {
	baseBy := make(map[cell]Row, len(base))
	for _, r := range base {
		baseBy[cell{r.Mode, r.Clients}] = r
	}
	curBy := make(map[cell]Row, len(cur))
	cells := make([]cell, 0, len(cur))
	for _, r := range cur {
		k := cell{r.Mode, r.Clients}
		curBy[k] = r
		cells = append(cells, k)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Mode != cells[j].Mode {
			return cells[i].Mode < cells[j].Mode
		}
		return cells[i].Clients < cells[j].Clients
	})

	var rep Report
	for _, k := range cells {
		c := curBy[k]
		b, ok := baseBy[k]
		if !ok {
			rep.Lines = append(rep.Lines, fmt.Sprintf("  new   %-10s clients=%-3d %12.1f commits/s (no baseline)", k.Mode, k.Clients, c.CommitsPerSec))
			continue
		}
		rep.Compared++
		delta := 100 * (c.CommitsPerSec - b.CommitsPerSec) / b.CommitsPerSec
		verdict := "ok"
		if delta < -maxRegressPct {
			verdict = "FAIL"
			rep.Failures = append(rep.Failures, k)
		}
		rep.Lines = append(rep.Lines, fmt.Sprintf("  %-4s  %-10s clients=%-3d %12.1f -> %12.1f commits/s (%+.1f%%)",
			verdict, k.Mode, k.Clients, b.CommitsPerSec, c.CommitsPerSec, delta))
	}
	for _, r := range base {
		if _, ok := curBy[cell{r.Mode, r.Clients}]; !ok {
			rep.Lines = append(rep.Lines, fmt.Sprintf("  gone  %-10s clients=%-3d (baseline cell not re-measured)", r.Mode, r.Clients))
		}
	}
	return rep
}
