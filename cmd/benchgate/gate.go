package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Row is the benchmark cell shape shared by benchablations' JSON outputs.
// Extra fields in the files are ignored.
type Row struct {
	Mode          string  `json:"mode"`
	Clients       int     `json:"clients"`
	CommitsPerSec float64 `json:"commits_per_sec"`
}

type cell struct {
	Mode    string
	Clients int
}

// Report is the outcome of one baseline/current comparison.
type Report struct {
	Lines    []string // human-readable per-cell results, stable order
	Failures []cell   // cells beyond the allowed regression
	Compared int      // cells present on both sides
}

func loadRows(path string) ([]Row, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []Row
	if err := json.Unmarshal(blob, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// collapsedFrac marks baseline cells that measure a collapse rather than a
// capacity: below this fraction of the file's best cell, a throughput is
// noise (the overload ablation's ungated cells run at ~0 goodput by design),
// and a percentage comparison against noise would flap on every run.
const collapsedFrac = 0.02

// Compare checks every cell present in both row sets. A cell fails when the
// current throughput is more than maxRegressPct percent below baseline.
// Improvements never fail (the baseline is a floor, not a pin); cells only
// one side has are noted but never fail, so changing the experiment grid
// doesn't break the gate. Cells whose baseline is collapsed — under
// collapsedFrac of the file's best baseline cell — are noted and skipped:
// they exist to demonstrate a failure mode, not to pin a throughput.
func Compare(base, cur []Row, maxRegressPct float64) Report {
	baseBy := make(map[cell]Row, len(base))
	bestBase := 0.0
	for _, r := range base {
		baseBy[cell{r.Mode, r.Clients}] = r
		if r.CommitsPerSec > bestBase {
			bestBase = r.CommitsPerSec
		}
	}
	curBy := make(map[cell]Row, len(cur))
	cells := make([]cell, 0, len(cur))
	for _, r := range cur {
		k := cell{r.Mode, r.Clients}
		curBy[k] = r
		cells = append(cells, k)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Mode != cells[j].Mode {
			return cells[i].Mode < cells[j].Mode
		}
		return cells[i].Clients < cells[j].Clients
	})

	var rep Report
	for _, k := range cells {
		c := curBy[k]
		b, ok := baseBy[k]
		if !ok {
			rep.Lines = append(rep.Lines, fmt.Sprintf("  new   %-10s clients=%-3d %12.1f commits/s (no baseline)", k.Mode, k.Clients, c.CommitsPerSec))
			continue
		}
		if b.CommitsPerSec < collapsedFrac*bestBase {
			rep.Lines = append(rep.Lines, fmt.Sprintf("  skip  %-10s clients=%-3d %12.1f commits/s (collapsed baseline)", k.Mode, k.Clients, b.CommitsPerSec))
			continue
		}
		rep.Compared++
		delta := 100 * (c.CommitsPerSec - b.CommitsPerSec) / b.CommitsPerSec
		verdict := "ok"
		if delta < -maxRegressPct {
			verdict = "FAIL"
			rep.Failures = append(rep.Failures, k)
		}
		rep.Lines = append(rep.Lines, fmt.Sprintf("  %-4s  %-10s clients=%-3d %12.1f -> %12.1f commits/s (%+.1f%%)",
			verdict, k.Mode, k.Clients, b.CommitsPerSec, c.CommitsPerSec, delta))
	}
	for _, r := range base {
		if _, ok := curBy[cell{r.Mode, r.Clients}]; !ok {
			rep.Lines = append(rep.Lines, fmt.Sprintf("  gone  %-10s clients=%-3d (baseline cell not re-measured)", r.Mode, r.Clients))
		}
	}
	return rep
}

// overloadRow is the extra shape of BENCH_overload.json rows: Clients holds
// the offered-load multiplier, and the latency fields carry the ablation's
// own deadline and tail.
type overloadRow struct {
	Row
	P99Millis      float64 `json:"p99_millis"`
	DeadlineMillis float64 `json:"deadline_millis"`
}

// CheckOverload validates the overload ablation's within-run invariants —
// the claims a single BENCH_overload.json makes regardless of the machine
// that produced it:
//
//   - Admitted goodput holds: at the highest offered-load multiplier, the
//     gated run keeps at least 80% of its lowest-multiplier goodput.
//   - Admitted tail stays bounded: gated p99 at the highest multiplier is
//     within 2× the run's deadline.
//
// It also warns (never fails) when the ungated run fails to collapse at the
// highest multiplier — that contrast is the point of the ablation, but it
// depends on machine shape (core count, fsync cost), so a beefy runner must
// not turn it into a flake.
func CheckOverload(rows []overloadRow) (failures, warnings []string) {
	byMode := map[string][]overloadRow{}
	for _, r := range rows {
		byMode[r.Mode] = append(byMode[r.Mode], r)
	}
	for mode, rs := range byMode {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Clients < rs[j].Clients })
		byMode[mode] = rs
	}
	admit, ok := byMode["admit"]
	if !ok || len(admit) < 2 {
		return []string{"no admit rows with at least two load multipliers"}, nil
	}
	lo, hi := admit[0], admit[len(admit)-1]
	if hi.CommitsPerSec < 0.8*lo.CommitsPerSec {
		failures = append(failures, fmt.Sprintf(
			"admitted goodput collapsed: %.1f commits/s at %dx vs %.1f at %dx (floor 80%%)",
			hi.CommitsPerSec, hi.Clients, lo.CommitsPerSec, lo.Clients))
	}
	if hi.P99Millis > 2*hi.DeadlineMillis {
		failures = append(failures, fmt.Sprintf(
			"admitted p99 unbounded: %.1fms at %dx vs %.1fms deadline (bound 2x)",
			hi.P99Millis, hi.Clients, hi.DeadlineMillis))
	}
	if noadmit := byMode["noadmit"]; len(noadmit) >= 2 {
		nlo, nhi := noadmit[0], noadmit[len(noadmit)-1]
		if nhi.CommitsPerSec > 0.5*nlo.CommitsPerSec {
			warnings = append(warnings, fmt.Sprintf(
				"ungated goodput did not collapse: %.1f commits/s at %dx vs %.1f at %dx — admission shows no benefit on this machine",
				nhi.CommitsPerSec, nhi.Clients, nlo.CommitsPerSec, nlo.Clients))
		}
	}
	return failures, warnings
}

func loadOverloadRows(path string) ([]overloadRow, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []overloadRow
	if err := json.Unmarshal(blob, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}
