package main

import (
	"fmt"
	"path/filepath"
	"sort"

	"immortaldb/internal/repro"
)

// checkGrids verifies every checked-in BENCH_*.json baseline still carries
// exactly the (mode, clients) grid its experiment emits today. Compare
// deliberately skips cells present on only one side, so a baseline left
// behind by a grid change would silently shrink the gate's coverage — this
// mode turns that into a hard failure. Returns the problems found, one line
// per stale file.
func checkGrids(dir string) []string {
	var problems []string
	grids := repro.BenchGrids()
	files := make([]string, 0, len(grids))
	for f := range grids {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		path := filepath.Join(dir, f)
		rows, err := loadRows(path)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", f, err))
			continue
		}
		want := make(map[cell]bool, len(grids[f]))
		for _, c := range grids[f] {
			want[cell{c.Mode, c.Clients}] = true
		}
		got := make(map[cell]bool, len(rows))
		for _, r := range rows {
			k := cell{r.Mode, r.Clients}
			if got[k] {
				problems = append(problems, fmt.Sprintf("%s: duplicate cell mode=%s clients=%d", f, k.Mode, k.Clients))
			}
			got[k] = true
		}
		var missing, extra []cell
		for k := range want {
			if !got[k] {
				missing = append(missing, k)
			}
		}
		for k := range got {
			if !want[k] {
				extra = append(extra, k)
			}
		}
		sortCells(missing)
		sortCells(extra)
		for _, k := range missing {
			problems = append(problems, fmt.Sprintf("%s: missing cell mode=%s clients=%d — regenerate with benchablations", f, k.Mode, k.Clients))
		}
		for _, k := range extra {
			problems = append(problems, fmt.Sprintf("%s: stale cell mode=%s clients=%d no longer in the experiment grid", f, k.Mode, k.Clients))
		}
	}
	return problems
}

func sortCells(cs []cell) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Mode != cs[j].Mode {
			return cs[i].Mode < cs[j].Mode
		}
		return cs[i].Clients < cs[j].Clients
	})
}
