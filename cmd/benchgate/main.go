// Command benchgate compares a freshly measured benchmark JSON against a
// checked-in baseline and fails (exit 1) when throughput regressed beyond
// the allowed percentage on any (mode, clients) cell present in both files.
// It is the CI bench-gate: benchablations writes the current file, the
// repository carries the baseline.
//
// The rows are the JSON shape benchablations emits for the commit, serve
// and obs experiments: objects with "mode", "clients" and
// "commits_per_sec". Cells only one side has are reported and skipped —
// adding a client count must not break the gate.
//
// With -check-grids it instead audits every checked-in baseline against the
// grid its experiment emits today (repro.BenchGrids) and fails when a
// baseline is stale — missing a cell the experiment now produces, or
// carrying one it no longer does. Because Compare skips one-sided cells, a
// stale baseline would otherwise silently shrink the gate's coverage.
//
// With -overload-check it validates the within-run invariants of an
// overload ablation JSON (admitted goodput holds across load multipliers,
// admitted p99 stays bounded relative to the run's own deadline) — claims a
// single run makes about itself, independent of any baseline.
//
// Usage:
//
//	benchgate -baseline BENCH_commit.json -current /tmp/commit.json [-max-regress 25]
//	benchgate -check-grids [-dir .]
//	benchgate -overload-check BENCH_overload.json
package main

import (
	"flag"
	"fmt"
	"os"

	"immortaldb/internal/repro"
)

func main() {
	baseline := flag.String("baseline", "", "checked-in baseline JSON")
	current := flag.String("current", "", "freshly measured JSON")
	maxRegress := flag.Float64("max-regress", 25, "fail when throughput drops more than this percentage below baseline")
	checkGridsMode := flag.Bool("check-grids", false, "audit checked-in baselines against the current experiment grids instead of comparing runs")
	dir := flag.String("dir", ".", "directory holding the checked-in baselines (with -check-grids)")
	overloadCheck := flag.String("overload-check", "", "validate an overload ablation JSON's within-run invariants instead of comparing runs")
	flag.Parse()

	if *overloadCheck != "" {
		rows, err := loadOverloadRows(*overloadCheck)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		failures, warnings := CheckOverload(rows)
		for _, w := range warnings {
			fmt.Println("  warn  ", w)
		}
		for _, f := range failures {
			fmt.Println("  FAIL  ", f)
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %d overload invariant(s) violated in %s\n", len(failures), *overloadCheck)
			os.Exit(1)
		}
		fmt.Printf("benchgate: OK — overload invariants hold in %s\n", *overloadCheck)
		return
	}

	if *checkGridsMode {
		problems := checkGrids(*dir)
		for _, p := range problems {
			fmt.Println("  stale ", p)
		}
		if len(problems) > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %d baseline problem(s) — regenerate the listed BENCH_*.json with benchablations\n", len(problems))
			os.Exit(1)
		}
		fmt.Printf("benchgate: OK — %d baseline file(s) match their experiment grids\n", len(repro.BenchGrids()))
		return
	}

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := loadRows(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := loadRows(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	report := Compare(base, cur, *maxRegress)
	for _, line := range report.Lines {
		fmt.Println(line)
	}
	if len(report.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d cell(s) regressed more than %.0f%%\n", len(report.Failures), *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d cell(s) within %.0f%% of baseline\n", report.Compared, *maxRegress)
}
