package main

import (
	"strings"
	"testing"
)

func rows(cps ...float64) []Row {
	out := make([]Row, len(cps))
	for i, v := range cps {
		out[i] = Row{Mode: "group", Clients: 1 << i, CommitsPerSec: v}
	}
	return out
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	base := rows(1000, 2000, 4000)
	cur := rows(900, 1600, 4400) // -10%, -20%, +10%
	rep := Compare(base, cur, 25)
	if len(rep.Failures) != 0 {
		t.Fatalf("failures = %v, want none", rep.Failures)
	}
	if rep.Compared != 3 {
		t.Fatalf("compared = %d, want 3", rep.Compared)
	}
}

// TestCompareSyntheticRegressionFails is the gate's own proof: an injected
// 50% throughput collapse on one cell must fail the comparison.
func TestCompareSyntheticRegressionFails(t *testing.T) {
	base := rows(1000, 2000)
	cur := rows(1000, 1000) // second cell: -50%
	rep := Compare(base, cur, 25)
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly the collapsed cell", rep.Failures)
	}
	if f := rep.Failures[0]; f.Mode != "group" || f.Clients != 2 {
		t.Fatalf("failed cell = %+v, want group/2", f)
	}
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "FAIL") {
		t.Fatalf("report lacks FAIL line:\n%s", joined)
	}
}

func TestCompareBoundaryIsInclusive(t *testing.T) {
	// Exactly -25% is allowed; the gate trips strictly beyond it.
	rep := Compare(rows(1000), rows(750), 25)
	if len(rep.Failures) != 0 {
		t.Fatalf("exact -25%% failed: %v", rep.Failures)
	}
	rep = Compare(rows(1000), rows(749), 25)
	if len(rep.Failures) != 1 {
		t.Fatal("-25.1% did not fail")
	}
}

func TestCompareGridChangesDoNotFail(t *testing.T) {
	base := []Row{{Mode: "group", Clients: 1, CommitsPerSec: 1000}}
	cur := []Row{
		{Mode: "group", Clients: 8, CommitsPerSec: 10}, // new cell, no baseline
		{Mode: "serial", Clients: 1, CommitsPerSec: 5}, // new mode
	}
	rep := Compare(base, cur, 25)
	if len(rep.Failures) != 0 || rep.Compared != 0 {
		t.Fatalf("grid change failed the gate: %+v", rep)
	}
	joined := strings.Join(rep.Lines, "\n")
	for _, want := range []string{"new", "gone"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q annotation:\n%s", want, joined)
		}
	}
}
