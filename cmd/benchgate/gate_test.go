package main

import (
	"strings"
	"testing"
)

func rows(cps ...float64) []Row {
	out := make([]Row, len(cps))
	for i, v := range cps {
		out[i] = Row{Mode: "group", Clients: 1 << i, CommitsPerSec: v}
	}
	return out
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	base := rows(1000, 2000, 4000)
	cur := rows(900, 1600, 4400) // -10%, -20%, +10%
	rep := Compare(base, cur, 25)
	if len(rep.Failures) != 0 {
		t.Fatalf("failures = %v, want none", rep.Failures)
	}
	if rep.Compared != 3 {
		t.Fatalf("compared = %d, want 3", rep.Compared)
	}
}

// TestCompareSyntheticRegressionFails is the gate's own proof: an injected
// 50% throughput collapse on one cell must fail the comparison.
func TestCompareSyntheticRegressionFails(t *testing.T) {
	base := rows(1000, 2000)
	cur := rows(1000, 1000) // second cell: -50%
	rep := Compare(base, cur, 25)
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly the collapsed cell", rep.Failures)
	}
	if f := rep.Failures[0]; f.Mode != "group" || f.Clients != 2 {
		t.Fatalf("failed cell = %+v, want group/2", f)
	}
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "FAIL") {
		t.Fatalf("report lacks FAIL line:\n%s", joined)
	}
}

func TestCompareBoundaryIsInclusive(t *testing.T) {
	// Exactly -25% is allowed; the gate trips strictly beyond it.
	rep := Compare(rows(1000), rows(750), 25)
	if len(rep.Failures) != 0 {
		t.Fatalf("exact -25%% failed: %v", rep.Failures)
	}
	rep = Compare(rows(1000), rows(749), 25)
	if len(rep.Failures) != 1 {
		t.Fatal("-25.1% did not fail")
	}
}

// TestCompareSkipsCollapsedBaseline pins the overload-file behavior: cells
// whose baseline goodput is noise (under 2% of the file's best cell) are
// reported as skipped, never compared — a 10× swing on a ~0 baseline must
// not flap the gate.
func TestCompareSkipsCollapsedBaseline(t *testing.T) {
	base := []Row{
		{Mode: "admit", Clients: 1, CommitsPerSec: 10000},
		{Mode: "noadmit", Clients: 4, CommitsPerSec: 50}, // collapsed by design
	}
	cur := []Row{
		{Mode: "admit", Clients: 1, CommitsPerSec: 9500},
		{Mode: "noadmit", Clients: 4, CommitsPerSec: 2}, // -96%: noise
	}
	rep := Compare(base, cur, 25)
	if len(rep.Failures) != 0 {
		t.Fatalf("collapsed baseline failed the gate: %v", rep.Failures)
	}
	if rep.Compared != 1 {
		t.Fatalf("compared = %d, want 1 (the healthy cell)", rep.Compared)
	}
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "collapsed baseline") {
		t.Fatalf("report lacks skip annotation:\n%s", joined)
	}
}

func ovRow(mode string, mult int, cps, p99, deadline float64) overloadRow {
	return overloadRow{
		Row:            Row{Mode: mode, Clients: mult, CommitsPerSec: cps},
		P99Millis:      p99,
		DeadlineMillis: deadline,
	}
}

// TestCheckOverloadHealthyRun passes a run shaped like the ablation's
// intended outcome and expects no failures; the ungated collapse must not
// warn either.
func TestCheckOverloadHealthyRun(t *testing.T) {
	rows := []overloadRow{
		ovRow("admit", 1, 10000, 10, 20),
		ovRow("admit", 2, 11000, 28, 20),
		ovRow("admit", 4, 9500, 35, 20),
		ovRow("noadmit", 1, 11000, 15, 20),
		ovRow("noadmit", 2, 200, 70, 20),
		ovRow("noadmit", 4, 5, 90, 20),
	}
	failures, warnings := CheckOverload(rows)
	if len(failures) != 0 || len(warnings) != 0 {
		t.Fatalf("healthy run flagged: failures=%v warnings=%v", failures, warnings)
	}
}

// TestCheckOverloadCatchesCollapse is the check's own proof: a gated run
// whose goodput collapses at high load, or whose admitted tail blows past
// 2× the deadline, must fail.
func TestCheckOverloadCatchesCollapse(t *testing.T) {
	rows := []overloadRow{
		ovRow("admit", 1, 10000, 10, 20),
		ovRow("admit", 4, 1000, 35, 20), // goodput collapsed
	}
	failures, _ := CheckOverload(rows)
	if len(failures) != 1 || !strings.Contains(failures[0], "goodput collapsed") {
		t.Fatalf("goodput collapse not caught: %v", failures)
	}

	rows = []overloadRow{
		ovRow("admit", 1, 10000, 10, 20),
		ovRow("admit", 4, 9500, 55, 20), // p99 2.75× deadline
	}
	failures, _ = CheckOverload(rows)
	if len(failures) != 1 || !strings.Contains(failures[0], "p99 unbounded") {
		t.Fatalf("unbounded p99 not caught: %v", failures)
	}
}

// TestCheckOverloadWarnsWithoutFailingOnMissingContrast: a machine where the
// ungated run keeps its goodput only warns — the admit-side invariants are
// the gate, the contrast is informational.
func TestCheckOverloadWarnsWithoutFailingOnMissingContrast(t *testing.T) {
	rows := []overloadRow{
		ovRow("admit", 1, 10000, 10, 20),
		ovRow("admit", 4, 9500, 30, 20),
		ovRow("noadmit", 1, 11000, 15, 20),
		ovRow("noadmit", 4, 10500, 18, 20),
	}
	failures, warnings := CheckOverload(rows)
	if len(failures) != 0 {
		t.Fatalf("missing contrast failed the check: %v", failures)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "did not collapse") {
		t.Fatalf("missing contrast did not warn: %v", warnings)
	}
}

func TestCompareGridChangesDoNotFail(t *testing.T) {
	base := []Row{{Mode: "group", Clients: 1, CommitsPerSec: 1000}}
	cur := []Row{
		{Mode: "group", Clients: 8, CommitsPerSec: 10}, // new cell, no baseline
		{Mode: "serial", Clients: 1, CommitsPerSec: 5}, // new mode
	}
	rep := Compare(base, cur, 25)
	if len(rep.Failures) != 0 || rep.Compared != 0 {
		t.Fatalf("grid change failed the gate: %+v", rep)
	}
	joined := strings.Join(rep.Lines, "\n")
	for _, want := range []string{"new", "gone"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q annotation:\n%s", want, joined)
		}
	}
}
