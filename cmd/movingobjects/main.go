// Command movingobjects drives the Section 5 workload end to end: a
// network-based stream of moving objects is applied to an immortal
// MovingObjects table, then the tool demonstrates the temporal features on
// it — AS OF snapshots of the whole fleet and the time-travel trajectory of
// one object.
//
// Usage:
//
//	movingobjects [-objects 500] [-txns 10000] [-db DIR] [-trace OID]
package main

import (
	"flag"
	"fmt"
	"os"

	"immortaldb"
	"immortaldb/internal/repro"
	"immortaldb/internal/workload"
)

func main() {
	objects := flag.Int("objects", 500, "number of moving objects (insert transactions)")
	txns := flag.Int("txns", 10000, "total transactions (inserts + updates)")
	seed := flag.Int64("seed", 1, "workload random seed")
	trace := flag.Int("trace", 0, "object ID whose trajectory to time travel")
	flag.Parse()

	gen := workload.New(workload.Config{Seed: *seed})
	ops, err := gen.Stream(*objects, *txns)
	if err != nil {
		fail(err)
	}

	env, err := repro.NewEnv(repro.Options{Seed: *seed}, true, nil)
	if err != nil {
		fail(err)
	}
	defer env.Close()

	fmt.Printf("applying %d transactions (%d inserts, %d updates)...\n",
		len(ops), *objects, len(ops)-*objects)
	times, err := repro.ApplyStream(env, ops)
	if err != nil {
		fail(err)
	}
	st := env.DB.Stats()
	ts := env.DB.TreeStats(env.Table)
	fmt.Printf("commits=%d  versions stamped=%d  PTT entries=%d  time splits=%d  key splits=%d\n",
		st.Commits, st.Stamp.VersionsStamped, st.PTTEntries, ts.TimeSplits, ts.KeySplits)

	// Fleet snapshots at three points in history.
	for _, pct := range []int{100, 50, 0} {
		at := times[(len(times)-1)*(100-pct)/100]
		tx, err := env.DB.BeginAsOfTS(at)
		if err != nil {
			fail(err)
		}
		n := 0
		err = tx.Scan(env.Table, nil, nil, func(k, v []byte) bool { n++; return true })
		tx.Commit()
		if err != nil {
			fail(err)
		}
		fmt.Printf("fleet AS OF %v (%3d%% back): %d objects on the map\n", at.Time().Format("15:04:05.000"), pct, n)
	}

	// Trajectory of one object via time travel.
	oid := uint16(*trace)
	hist, err := env.DB.History(env.Table, workload.Key(oid))
	if err != nil {
		fail(err)
	}
	fmt.Printf("\ntrajectory of object %d (%d recorded positions, newest first):\n", oid, len(hist))
	limit := 10
	for i, h := range hist {
		if i == limit {
			fmt.Printf("  ... %d older positions\n", len(hist)-limit)
			break
		}
		p, err := workload.DecodeValue(h.Value)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %s  (%4d,%4d)\n", h.Time.Format("15:04:05.000"), p.X, p.Y)
	}

	// The same data through the SQL surface.
	_ = immortaldb.MaxTime()
	fmt.Println("\n(equivalent SQL: SHOW HISTORY FOR MovingObjects WHERE Oid =", oid, ")")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "movingobjects:", err)
	os.Exit(1)
}
