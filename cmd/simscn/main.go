// Command simscn runs the deterministic simulation scenario suite: whole
// client/server clusters in one process, over a seeded in-memory network on
// a virtual timeline, with scripted partitions, drops and mid-frame kills.
// A run is reproduced bit-for-bit by its (scenario, seed) pair.
//
// Usage:
//
//	simscn -list
//	simscn [-scenario all] [-seed 1] [-verify] [-out report.json]
//
// With -verify each run executes twice and the trace hashes must match
// (the determinism contract). Exit status 1 on any oracle violation or
// hash mismatch; the failing run's repro command is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"immortaldb/internal/repro"
	"immortaldb/internal/sim"
)

func main() {
	var (
		scenario = flag.String("scenario", "all", "scenario name, or 'all' for the suite")
		seeds    = flag.String("seed", "1", "comma-separated list of seeds")
		verify   = flag.Bool("verify", false, "run each scenario twice and compare trace hashes")
		out      = flag.String("out", "", "write a JSON report (the CI artifact) to this file")
		list     = flag.Bool("list", false, "list predefined scenarios")
	)
	flag.Parse()

	if *list {
		for _, n := range sim.ScenarioNames() {
			fmt.Println(n)
		}
		return
	}

	var seedList []int64
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simscn: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		seedList = append(seedList, v)
	}

	var (
		reports []*repro.ScenarioReport
		pass    = true
		err     error
	)
	if *scenario == "all" {
		reports, pass, err = repro.ScenarioSuite(seedList, *verify, os.Stdout)
	} else {
		for _, seed := range seedList {
			var rep *repro.ScenarioReport
			rep, err = repro.RunScenario(*scenario, seed, *verify)
			if err != nil {
				break
			}
			reports = append(reports, rep)
			fmt.Printf("%s seed=%d ops=%d errs=%d events=%d hash=%s\n",
				rep.Scenario, rep.Seed, rep.Ops, rep.Errors, rep.Events, rep.Hash)
			for _, v := range rep.Violations {
				fmt.Printf("  violation: %s\n", v)
			}
			if rep.Failed() {
				pass = false
				fmt.Printf("  repro: %s\n", rep.ReproLine())
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simscn: %v\n", err)
		os.Exit(2)
	}
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "simscn: %v\n", ferr)
			os.Exit(2)
		}
		if werr := repro.WriteScenarioReports(f, reports); werr != nil {
			fmt.Fprintf(os.Stderr, "simscn: %v\n", werr)
			os.Exit(2)
		}
		f.Close()
	}
	if !pass {
		os.Exit(1)
	}
}
