// Command benchfig6 regenerates Figure 6 of the paper ("The effect of
// insertions/updates on AS OF queries"): full-table-scan AS OF query latency
// against history depth, for the four insert/update mixes over 36,000
// transactions (0.5K*72, 1K*36, 2K*18, 4K*9).
//
// Usage:
//
//	benchfig6 [-scale 1.0] [-pagesize 8192] [-seed 1] [-reps 3] [-index chain|tsb]
package main

import (
	"flag"
	"fmt"
	"os"

	"immortaldb"
	"immortaldb/internal/repro"
)

func main() {
	scale := flag.Float64("scale", 1.0, "transaction count multiplier (1.0 = the paper's 36K)")
	pageSize := flag.Int("pagesize", 8192, "page size in bytes")
	seed := flag.Int64("seed", 1, "workload random seed")
	reps := flag.Int("reps", 3, "scan repetitions per point (average reported)")
	index := flag.String("index", "chain", "historical access path: chain (the paper's prototype) or tsb")
	flag.Parse()

	var mutate func(*immortaldb.Options)
	switch *index {
	case "chain":
	case "tsb":
		mutate = func(o *immortaldb.Options) { o.HistoricalIndex = immortaldb.IndexTSB }
	default:
		fmt.Fprintln(os.Stderr, "benchfig6: -index must be chain or tsb")
		os.Exit(2)
	}

	rows, err := repro.RunFig6(
		repro.Options{Scale: *scale, PageSize: *pageSize, Seed: *seed},
		repro.Fig6Mixes, nil, *reps, mutate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig6:", err)
		os.Exit(1)
	}

	fmt.Println("Figure 6 — The effect of insertions/updates on AS OF queries")
	fmt.Printf("(full-table-scan latency in ms; historical access path: %s)\n\n", *index)

	// Series per mix, like the paper's legend.
	fmt.Printf("%14s", "% of history")
	for _, m := range repro.Fig6Mixes {
		fmt.Printf(" %12s", repro.Fig6Label(m))
	}
	fmt.Println()
	byPct := map[int]map[string]repro.Fig6Row{}
	var pcts []int
	for _, r := range rows {
		if byPct[r.PctHistory] == nil {
			byPct[r.PctHistory] = map[string]repro.Fig6Row{}
			pcts = append(pcts, r.PctHistory)
		}
		byPct[r.PctHistory][repro.Fig6Label(r.Mix)] = r
	}
	for _, pct := range pcts {
		fmt.Printf("%13d%%", pct)
		for _, m := range repro.Fig6Mixes {
			fmt.Printf(" %12.3f", byPct[pct][repro.Fig6Label(m)].Millis)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("%14s", "rows returned")
	for _, m := range repro.Fig6Mixes {
		fmt.Printf(" %12d", byPct[pcts[0]][repro.Fig6Label(m)].Rows)
	}
	fmt.Println(" (at the most recent point)")
}
