// Command benchfig5 regenerates Figure 5 of the paper ("Transaction
// overhead in Immortal DB"): cumulative elapsed time for up to 32,000
// single-record transactions (500 inserts, the rest updates) against a
// transaction-time table and a conventional table, plus the Section 5.1
// headline numbers (per-transaction cost and overhead percentage, the
// paper's 9.6 ms + 1.1 ms ≈ 11%).
//
// Usage:
//
//	benchfig5 [-scale 1.0] [-pagesize 8192] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"immortaldb/internal/repro"
)

func main() {
	scale := flag.Float64("scale", 1.0, "transaction count multiplier (1.0 = the paper's 32K)")
	pageSize := flag.Int("pagesize", 8192, "page size in bytes")
	seed := flag.Int64("seed", 1, "workload random seed")
	flag.Parse()

	res, err := repro.RunFig5(repro.Options{Scale: *scale, PageSize: *pageSize, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig5:", err)
		os.Exit(1)
	}

	fmt.Println("Figure 5 — Transaction overhead in Immortal DB")
	fmt.Println("(cumulative seconds; every transaction inserts/updates a single record)")
	fmt.Println()
	fmt.Printf("%12s %14s %14s %10s\n", "txns", "immortal(s)", "conventional(s)", "overhead")
	for _, r := range res.Rows {
		fmt.Printf("%12d %14.3f %14.3f %9.1f%%\n",
			r.Txns, r.ImmortalSec, r.ConventionalSec, r.OverheadPct)
	}
	fmt.Println()
	fmt.Println("Section 5.1 summary (highest-overhead case: one record per transaction)")
	fmt.Printf("  conventional per txn: %8.4f ms\n", res.ConvPerTxnMs)
	fmt.Printf("  immortal     per txn: %8.4f ms  (+%.4f ms)\n",
		res.ImmortalPerTxnMs, res.ImmortalPerTxnMs-res.ConvPerTxnMs)
	fmt.Printf("  overhead            : %8.1f %%   (paper: ~11%%)\n", res.OverheadPct)
	fmt.Println()
	fmt.Println("Lowest-overhead case (all records in ONE transaction; paper: indistinguishable)")
	fmt.Printf("  immortal    : %.3f s\n", res.BatchedImmortalSec)
	fmt.Printf("  conventional: %.3f s\n", res.BatchedConventionalSec)
}
