// Command immortalsql is an interactive shell (and script runner) for an
// Immortal DB database, speaking the paper's SQL subset:
//
//	CREATE [IMMORTAL] TABLE t (col TYPE [PRIMARY KEY], ...)
//	ALTER TABLE t ENABLE SNAPSHOT
//	BEGIN TRAN [AS OF "2004-08-12 10:15:20"] [ISOLATION SNAPSHOT]
//	INSERT INTO t VALUES (...)
//	UPDATE t SET col = v WHERE pk = x
//	DELETE FROM t WHERE pk = x
//	SELECT * FROM t [WHERE pk < x]
//	SHOW HISTORY FOR t WHERE pk = x
//	COMMIT / ROLLBACK
//
// Usage:
//
//	immortalsql -db ./mydb [-f script.sql]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"immortaldb"
	"immortaldb/internal/sqlish"
)

func main() {
	dir := flag.String("db", "immortaldb-data", "database directory")
	script := flag.String("f", "", "execute statements from a file instead of stdin")
	index := flag.String("index", "chain", "historical access path: chain or tsb")
	flag.Parse()

	opts := &immortaldb.Options{}
	if *index == "tsb" {
		opts.HistoricalIndex = immortaldb.IndexTSB
	}
	db, err := immortaldb.Open(*dir, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "immortalsql:", err)
		os.Exit(1)
	}
	defer db.Close()
	sess := sqlish.NewSession(db)
	defer sess.Close()

	var in io.Reader = os.Stdin
	interactive := true
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "immortalsql:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		interactive = false
	}

	if interactive {
		fmt.Println("Immortal DB SQL shell — transaction-time support inside a database engine")
		fmt.Println(`try: CREATE IMMORTAL TABLE MovingObjects (Oid smallint PRIMARY KEY, LocationX int, LocationY int)`)
	}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if sess.InTransaction() {
			fmt.Print("immortal*> ")
		} else {
			fmt.Print("immortal> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "--") {
			prompt()
			continue
		}
		if interactive && (strings.EqualFold(trimmed, "exit") || strings.EqualFold(trimmed, "quit")) {
			break
		}
		pending.WriteString(line)
		pending.WriteString(" ")
		if !strings.HasSuffix(trimmed, ";") && interactive {
			// Multi-line input until a semicolon in interactive mode.
			fmt.Print("      ...> ")
			continue
		}
		stmtText := strings.TrimSpace(pending.String())
		pending.Reset()
		if stmtText == "" {
			prompt()
			continue
		}
		res, err := sess.Exec(stmtText)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			if !interactive {
				os.Exit(1)
			}
		} else {
			printResult(res)
		}
		prompt()
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "immortalsql:", err)
		os.Exit(1)
	}
	if interactive {
		fmt.Println()
	}
}

func printResult(r *sqlish.Result) {
	switch {
	case r.Columns != nil:
		widths := make([]int, len(r.Columns))
		for i, c := range r.Columns {
			widths[i] = len(c)
		}
		for _, row := range r.Rows {
			for i, v := range row {
				if len(v) > widths[i] {
					widths[i] = len(v)
				}
			}
		}
		for i, c := range r.Columns {
			fmt.Printf("%-*s  ", widths[i], c)
		}
		fmt.Println()
		for i := range r.Columns {
			fmt.Print(strings.Repeat("-", widths[i]), "  ")
		}
		fmt.Println()
		for _, row := range r.Rows {
			for i, v := range row {
				fmt.Printf("%-*s  ", widths[i], v)
			}
			fmt.Println()
		}
		fmt.Printf("(%d rows)\n", len(r.Rows))
	case r.Msg != "":
		fmt.Println(r.Msg)
	default:
		fmt.Printf("(%d rows affected)\n", r.Affected)
	}
}
