// Command immortalsql is an interactive shell (and script runner) for an
// Immortal DB database, speaking the paper's SQL subset:
//
//	CREATE [IMMORTAL] TABLE t (col TYPE [PRIMARY KEY], ...)
//	ALTER TABLE t ENABLE SNAPSHOT
//	BEGIN TRAN [AS OF "2004-08-12 10:15:20"] [ISOLATION SNAPSHOT]
//	INSERT INTO t VALUES (...)
//	UPDATE t SET col = v WHERE pk = x
//	DELETE FROM t WHERE pk = x
//	SELECT * FROM t [WHERE pk < x]
//	SHOW HISTORY FOR t WHERE pk = x
//	VACUUM HISTORY
//	COMMIT / ROLLBACK
//
// Usage:
//
//	immortalsql -db ./mydb [-f script.sql]
//	immortalsql -connect localhost:7707   # drive a running immortald
//	immortalsql -db ./clone -restore-from ./mydb -restore-asof "2004-08-12 10:15:20"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"immortaldb"
	"immortaldb/internal/client"
	"immortaldb/internal/sqlish"
)

// executor abstracts the REPL's backend: an embedded database directory or a
// remote immortald server.
type executor interface {
	Exec(sql string) (*sqlish.Result, error)
	InTransaction() bool
	Close() error
}

// localExec runs statements on an embedded engine.
type localExec struct {
	db   *immortaldb.DB
	sess *sqlish.Session
}

func (l *localExec) Exec(sql string) (*sqlish.Result, error) { return l.sess.Exec(sql) }
func (l *localExec) InTransaction() bool                     { return l.sess.InTransaction() }
func (l *localExec) Close() error {
	l.sess.Close()
	return l.db.Close()
}

// remoteExec runs statements over the wire on one pinned server session. The
// server owns the transaction state; the REPL mirrors it by watching which
// statements succeed, so the prompt can show an open transaction.
type remoteExec struct {
	pool *client.DB
	sess *client.Session
	inTx bool
}

func (r *remoteExec) Exec(sql string) (*sqlish.Result, error) {
	res, err := r.sess.Exec(context.Background(), sql)
	if err == nil {
		if stmt, perr := sqlish.Parse(sql); perr == nil {
			switch stmt.(type) {
			case sqlish.BeginTran:
				r.inTx = true
			case sqlish.CommitTran, sqlish.RollbackTran:
				r.inTx = false
			}
		}
	}
	return res, err
}
func (r *remoteExec) InTransaction() bool { return r.inTx }
func (r *remoteExec) Close() error {
	r.sess.Close()
	return r.pool.Close()
}

func main() {
	dir := flag.String("db", "immortaldb-data", "database directory")
	connect := flag.String("connect", "", "immortald address (host:port); overrides -db")
	script := flag.String("f", "", "execute statements from a file instead of stdin")
	index := flag.String("index", "chain", "historical access path: chain or tsb")
	tiered := flag.Bool("tiered", false, "migrate cold history pages into compressed immutable runs (VACUUM HISTORY needs this; requires -index chain)")
	retention := flag.Duration("retention", 0, "vacuum historical versions older than this (0 = keep forever; with -tiered)")
	restoreFrom := flag.String("restore-from", "", "point-in-time restore source; clones into -db before opening it")
	restoreAsOf := flag.String("restore-asof", "", `restore cut time, e.g. "2004-08-12 10:15:20" (with -restore-from)`)
	flag.Parse()

	if *restoreFrom != "" || *restoreAsOf != "" {
		if *restoreFrom == "" || *restoreAsOf == "" {
			fmt.Fprintln(os.Stderr, "immortalsql: -restore-from and -restore-asof must be given together")
			os.Exit(1)
		}
		if *connect != "" {
			fmt.Fprintln(os.Stderr, "immortalsql: restore works on local directories, not -connect")
			os.Exit(1)
		}
		ts, err := immortaldb.ParseAsOf(*restoreAsOf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "immortalsql:", err)
			os.Exit(1)
		}
		if err := immortaldb.RestoreAsOf(*restoreFrom, *dir, ts, nil); err != nil {
			fmt.Fprintln(os.Stderr, "immortalsql:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "immortalsql: restored %s as of %s into %s\n", *restoreFrom, *restoreAsOf, *dir)
	}

	var sess executor
	if *connect != "" {
		pool, err := client.Open(*connect, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "immortalsql:", err)
			os.Exit(1)
		}
		csess, err := pool.Session(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "immortalsql:", err)
			os.Exit(1)
		}
		sess = &remoteExec{pool: pool, sess: csess}
	} else {
		opts := &immortaldb.Options{}
		if *index == "tsb" {
			opts.HistoricalIndex = immortaldb.IndexTSB
		}
		if *tiered {
			opts.TieredHistory = true
			opts.Retention = *retention
		}
		db, err := immortaldb.Open(*dir, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "immortalsql:", err)
			os.Exit(1)
		}
		sess = &localExec{db: db, sess: sqlish.NewSession(db)}
	}
	defer sess.Close()

	var in io.Reader = os.Stdin
	interactive := true
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "immortalsql:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		interactive = false
	}

	if interactive {
		fmt.Println("Immortal DB SQL shell — transaction-time support inside a database engine")
		fmt.Println(`try: CREATE IMMORTAL TABLE MovingObjects (Oid smallint PRIMARY KEY, LocationX int, LocationY int)`)
	}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if sess.InTransaction() {
			fmt.Print("immortal*> ")
		} else {
			fmt.Print("immortal> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "--") {
			prompt()
			continue
		}
		if interactive && (strings.EqualFold(trimmed, "exit") || strings.EqualFold(trimmed, "quit")) {
			break
		}
		pending.WriteString(line)
		pending.WriteString(" ")
		if !strings.HasSuffix(trimmed, ";") && interactive {
			// Multi-line input until a semicolon in interactive mode.
			fmt.Print("      ...> ")
			continue
		}
		stmtText := strings.TrimSpace(pending.String())
		pending.Reset()
		if stmtText == "" {
			prompt()
			continue
		}
		res, err := sess.Exec(stmtText)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			if !interactive {
				os.Exit(1)
			}
		} else {
			printResult(res)
		}
		prompt()
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "immortalsql:", err)
		os.Exit(1)
	}
	if interactive {
		fmt.Println()
	}
}

func printResult(r *sqlish.Result) {
	switch {
	case r.Columns != nil:
		widths := make([]int, len(r.Columns))
		for i, c := range r.Columns {
			widths[i] = len(c)
		}
		for _, row := range r.Rows {
			for i, v := range row {
				if len(v) > widths[i] {
					widths[i] = len(v)
				}
			}
		}
		for i, c := range r.Columns {
			fmt.Printf("%-*s  ", widths[i], c)
		}
		fmt.Println()
		for i := range r.Columns {
			fmt.Print(strings.Repeat("-", widths[i]), "  ")
		}
		fmt.Println()
		for _, row := range r.Rows {
			for i, v := range row {
				fmt.Printf("%-*s  ", widths[i], v)
			}
			fmt.Println()
		}
		fmt.Printf("(%d rows)\n", len(r.Rows))
	case r.Msg != "":
		fmt.Println(r.Msg)
	default:
		fmt.Printf("(%d rows affected)\n", r.Affected)
	}
}
