package stamp

import (
	"path/filepath"
	"testing"

	"immortaldb/internal/cow"
	"immortaldb/internal/itime"
	"immortaldb/internal/wal"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	ptt, err := cow.Open(filepath.Join(t.TempDir(), "ptt.cow"),
		cow.Options{ValSize: PTTValueLen, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ptt.Close() })
	return NewManager(ptt)
}

func ts(w int64, s uint32) itime.Timestamp { return itime.Timestamp{Wall: w, Seq: s} }

func lsn(v wal.LSN) func() wal.LSN { return func() wal.LSN { return v } }

func TestFourStageProtocol(t *testing.T) {
	m := newManager(t)

	// Stage I: begin.
	m.Begin(1, false)
	if _, ok := m.Resolve(1); ok {
		t.Fatal("active transaction must not resolve")
	}
	// Stage II: three updates.
	if err := m.AddRef(1, 3); err != nil {
		t.Fatal(err)
	}
	// Stage III: commit writes exactly one PTT entry.
	if err := m.Commit(1, ts(10, 0), true, 0, lsn(100)); err != nil {
		t.Fatal(err)
	}
	if m.PTTLen() != 1 {
		t.Fatalf("PTT len = %d", m.PTTLen())
	}
	// Stage IV: resolve from the VTT.
	got, ok := m.Resolve(1)
	if !ok || got != ts(10, 0) {
		t.Fatalf("Resolve = %v, %v", got, ok)
	}
	if !m.Pending(1) {
		t.Fatal("3 versions outstanding")
	}
	m.NoteStamped(map[itime.TID]int{1: 2}, lsn(200))
	if !m.Pending(1) {
		t.Fatal("1 version still outstanding")
	}
	m.NoteStamped(map[itime.TID]int{1: 1}, lsn(300))
	if m.Pending(1) {
		t.Fatal("all versions stamped")
	}
	st := m.Snapshot()
	if st.PTTPuts != 1 || st.VersionsStamped != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGCWatermark(t *testing.T) {
	m := newManager(t)
	m.Begin(1, false)
	m.AddRef(1, 1)
	m.Commit(1, ts(10, 0), true, 0, lsn(50))
	m.NoteStamped(map[itime.TID]int{1: 1}, lsn(120)) // doneLSN = 120

	// Watermark not yet past doneLSN: no GC.
	if n, err := m.RunGC(120); err != nil || n != 0 {
		t.Fatalf("premature GC: n=%d err=%v", n, err)
	}
	if m.PTTLen() != 1 {
		t.Fatal("entry GC'd too early")
	}
	// Watermark passes: entry goes from PTT and VTT.
	if n, err := m.RunGC(121); err != nil || n != 1 {
		t.Fatalf("GC: n=%d err=%v", n, err)
	}
	if m.PTTLen() != 0 || m.VTTLen() != 0 {
		t.Fatalf("PTT=%d VTT=%d after GC", m.PTTLen(), m.VTTLen())
	}
}

func TestGCSkipsIncompleteAndActive(t *testing.T) {
	m := newManager(t)
	m.Begin(1, false) // active
	m.Begin(2, false) // committed, refs outstanding
	m.AddRef(2, 2)
	m.Commit(2, ts(10, 0), true, 0, lsn(50))
	m.NoteStamped(map[itime.TID]int{2: 1}, lsn(60))
	m.Begin(3, false) // committed, zero refs: GC-able immediately
	m.Commit(3, ts(11, 0), true, 0, lsn(70))

	if n, _ := m.RunGC(1000); n != 1 {
		t.Fatalf("GC removed %d, want only txn 3", n)
	}
	if _, ok := m.Resolve(2); !ok {
		t.Fatal("txn 2 must still resolve")
	}
}

func TestGCDisabled(t *testing.T) {
	m := newManager(t)
	m.GCEnabled = false
	m.Begin(1, false)
	m.AddRef(1, 1)
	m.Commit(1, ts(10, 0), true, 0, lsn(50))
	m.NoteStamped(map[itime.TID]int{1: 1}, lsn(60))
	if n, _ := m.RunGC(1000); n != 0 {
		t.Fatal("GC ran while disabled")
	}
	if m.PTTLen() != 1 {
		t.Fatal("entry vanished")
	}
}

func TestResolveFallsBackToPTTAndCaches(t *testing.T) {
	m := newManager(t)
	m.Begin(7, false)
	m.Commit(7, ts(42, 3), true, 0, lsn(10))
	// Simulate VTT loss (e.g. long time passed; entry GC-able but the PTT
	// entry is the source of truth): drop the VTT entry directly.
	m.mu.Lock()
	delete(m.vtt, 7)
	m.mu.Unlock()

	got, ok := m.Resolve(7)
	if !ok || got != ts(42, 3) {
		t.Fatalf("Resolve from PTT = %v, %v", got, ok)
	}
	st := m.Snapshot()
	if st.PTTGets != 1 {
		t.Fatalf("PTT gets = %d", st.PTTGets)
	}
	// Second resolve hits the VTT cache.
	m.Resolve(7)
	if st := m.Snapshot(); st.PTTGets != 1 {
		t.Fatalf("PTT gets after cached resolve = %d", st.PTTGets)
	}
	// Cached-from-PTT entries have undefined refcounts: GC must skip them.
	m.NoteStamped(map[itime.TID]int{7: 5}, lsn(99))
	if n, _ := m.RunGC(10000); n != 0 {
		t.Fatal("GC collected an undefined-refcount entry")
	}
}

func TestSnapshotTransactionsStayVolatile(t *testing.T) {
	m := newManager(t)
	m.Begin(1, true)
	m.AddRef(1, 2)
	if err := m.Commit(1, ts(5, 0), true, 0, lsn(10)); err != nil {
		t.Fatal(err)
	}
	if m.PTTLen() != 0 {
		t.Fatal("snapshot txn reached the PTT")
	}
	if got, ok := m.Resolve(1); !ok || got != ts(5, 0) {
		t.Fatal("snapshot txn must resolve from VTT")
	}
	// VTT entry drops immediately when its refcount reaches zero.
	m.NoteStamped(map[itime.TID]int{1: 2}, lsn(20))
	if m.VTTLen() != 0 {
		t.Fatalf("VTT len = %d, snapshot entry must drop at zero refs", m.VTTLen())
	}
}

func TestNonPersistentTableCommit(t *testing.T) {
	m := newManager(t)
	m.Begin(1, false)
	m.AddRef(1, 1)
	// Conventional table with snapshot versions: persistent=false.
	if err := m.Commit(1, ts(5, 0), false, 0, lsn(10)); err != nil {
		t.Fatal(err)
	}
	if m.PTTLen() != 0 {
		t.Fatal("non-persistent commit reached the PTT")
	}
	if _, ok := m.Resolve(1); !ok {
		t.Fatal("must resolve from VTT")
	}
}

func TestAbortDropsEntry(t *testing.T) {
	m := newManager(t)
	m.Begin(1, false)
	m.AddRef(1, 5)
	m.Abort(1)
	if _, ok := m.Resolve(1); ok {
		t.Fatal("aborted txn resolved")
	}
	if m.VTTLen() != 0 {
		t.Fatal("VTT entry survived abort")
	}
	if err := m.AddRef(1, 1); err == nil {
		t.Fatal("AddRef after abort must fail")
	}
}

func TestRestoreCommitted(t *testing.T) {
	m := newManager(t)
	// Recovery redo of a commit record.
	if err := m.RestoreCommitted(9, ts(33, 1), true); err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Resolve(9); !ok || got != ts(33, 1) {
		t.Fatalf("Resolve restored = %v, %v", got, ok)
	}
	if m.PTTLen() != 1 {
		t.Fatal("PTT entry not restored")
	}
	// Restored entries have undefined refcounts and are never GC'd — the
	// paper's accepted post-crash leak.
	m.NoteStamped(map[itime.TID]int{9: 1}, lsn(10))
	if n, _ := m.RunGC(100000); n != 0 {
		t.Fatal("restored entry GC'd")
	}
	// Idempotent redo.
	if err := m.RestoreCommitted(9, ts(33, 1), true); err != nil {
		t.Fatal(err)
	}
	if m.PTTLen() != 1 {
		t.Fatal("double restore duplicated the entry")
	}
}

func TestPTTSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ptt.cow")
	ptt, err := cow.Open(path, cow.Options{ValSize: PTTValueLen, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(ptt)
	m.Begin(1, false)
	m.Commit(1, ts(10, 2), true, 0, lsn(5))
	if err := m.SyncPTT(); err != nil {
		t.Fatal(err)
	}
	ptt.Close()

	ptt2, err := cow.Open(path, cow.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ptt2.Close()
	m2 := NewManager(ptt2)
	if got, ok := m2.Resolve(1); !ok || got != ts(10, 2) {
		t.Fatalf("Resolve after reopen = %v, %v", got, ok)
	}
}

func TestCommitReadOnlyGCsImmediately(t *testing.T) {
	m := newManager(t)
	m.Begin(1, false)
	m.Commit(1, ts(10, 0), true, 0, lsn(40)) // zero refs at commit
	if n, _ := m.RunGC(41); n != 1 {
		t.Fatal("zero-ref commit must be GC-able once the watermark passes")
	}
}

// TestMaxCommitLSN checks the write-ahead guard for lazily stamped pages:
// live commits report their commit-record LSN, while PTT-cached and
// recovery-restored entries (provably durable) contribute nothing.
func TestMaxCommitLSN(t *testing.T) {
	m := newManager(t)
	m.Begin(1, false)
	m.AddRef(1, 2)
	m.Begin(2, false)
	m.AddRef(2, 1)
	if err := m.Commit(1, ts(5, 0), true, 120, lsn(130)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2, ts(6, 0), true, 150, lsn(160)); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreCommitted(3, ts(2, 0), true); err != nil {
		t.Fatal(err)
	}
	got := m.MaxCommitLSN(map[itime.TID]int{1: 2, 3: 1})
	if got != 120 {
		t.Fatalf("MaxCommitLSN{1,3} = %d, want 120", got)
	}
	got = m.MaxCommitLSN(map[itime.TID]int{1: 1, 2: 1})
	if got != 150 {
		t.Fatalf("MaxCommitLSN{1,2} = %d, want 150", got)
	}
	if got = m.MaxCommitLSN(map[itime.TID]int{3: 1, 99: 1}); got != 0 {
		t.Fatalf("MaxCommitLSN over durable/unknown TIDs = %d, want 0", got)
	}
	// A withdrawn commit no longer pins the log.
	if err := m.UndoCommit(2); err != nil {
		t.Fatal(err)
	}
	if got = m.MaxCommitLSN(map[itime.TID]int{2: 1}); got != 0 {
		t.Fatalf("MaxCommitLSN after UndoCommit = %d, want 0", got)
	}
}
