// Package stamp implements Immortal DB's timestamp management (Section 2.2):
// the Volatile Timestamp Table (VTT) with volatile reference counting, the
// Persistent Timestamp Table (PTT, a B-tree ordered by TID), the four-stage
// lazy timestamping protocol, and incremental PTT garbage collection gated
// on the recovery redo-scan-start point.
package stamp

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"immortaldb/internal/cow"
	"immortaldb/internal/itime"
	"immortaldb/internal/obs"
	"immortaldb/internal/wal"
)

// Observability: table sizes as gauges (the paper's §5 growth curves live
// here) plus stamping and GC progress counters. A process serving several
// databases sees the last writer's sizes; counters aggregate.
var (
	obsVTTSize = obs.NewGauge("immortaldb_stamp_vtt_size", "Volatile timestamp table entries (commits awaiting lazy timestamping plus active writers).")
	obsPTTSize = obs.NewGauge("immortaldb_stamp_ptt_size", "Persistent timestamp table entries.")
	obsStamps  = obs.NewCounter("immortaldb_stamp_versions_total", "Record versions lazily timestamped.")
	obsGCRuns  = obs.NewCounter("immortaldb_stamp_gc_runs_total", "Incremental PTT garbage-collection passes.")
	obsGCFreed = obs.NewCounter("immortaldb_stamp_gc_removed_total", "PTT entries reclaimed by garbage collection.")
)

// PTTValueLen is the PTT entry payload: Ttime (8 bytes) + SN (4 bytes).
const PTTValueLen = itime.EncodedLen

// refUndefined marks a VTT entry cached from the PTT whose outstanding
// version count is unknown; such entries are never used to trigger GC
// ("we set the RefCount for the entry to undefined so that we don't garbage
// collect its PTT entry" — Section 2.2).
const refUndefined = -1

// ErrUnknownTID reports a stamping bookkeeping call for a TID with no VTT
// entry.
var ErrUnknownTID = errors.New("stamp: unknown transaction")

type vttEntry struct {
	ts        itime.Timestamp
	committed bool
	snapshot  bool // snapshot-isolation-only txn: VTT-only, never in the PTT
	refCount  int
	doneLSN   wal.LSN // end-of-log when refCount hit zero; 0 = not yet
	// commitLSN is the transaction's commit record, 0 when provably durable
	// already (PTT-cached and recovery-restored entries). Lazy stamping is
	// never logged, so a page carrying a freshly stamped version must not
	// reach disk before the log covers this LSN: recovery would otherwise
	// find a stamped — published — version of a transaction it must undo.
	commitLSN wal.LSN
}

// Manager owns the VTT and PTT.
type Manager struct {
	mu  sync.Mutex
	vtt map[itime.TID]*vttEntry
	ptt *cow.Tree

	// GCEnabled turns incremental PTT garbage collection on (the default).
	// The A3 ablation switches it off to measure unbounded PTT growth.
	GCEnabled bool

	// ForceLog, when set, forces the WAL durable through the given LSN.
	// SyncPTT calls it before hardening the PTT file: commit timestamps
	// enter the PTT while the commit record may still sit in the unsynced
	// log tail (the group-commit pipeline publishes the mapping before the
	// shared fsync), and the PTT is a separate file the log's append order
	// cannot protect. Without the force, a crash could leave a durable
	// TID→TS mapping for a transaction recovery must undo — lazy stamping
	// would then stamp a loser's versions.
	ForceLog func(wal.LSN) error

	// pttMaxCommitLSN is the highest commit-record LSN among transactions
	// inserted into the PTT since open; the WAL must be durable through it
	// before the PTT file is.
	pttMaxCommitLSN wal.LSN

	pttPuts, pttGets, pttDeletes, stamps, gcRuns uint64

	// pttLen mirrors ptt.Len() so the size gauge never takes the tree's
	// mutex on the commit path. It can drift one entry low if recovery
	// re-inserts an existing TID (RestoreCommitted overwrite) — harmless
	// for a gauge.
	pttLen int64
}

// NewManager returns a Manager over the given PTT tree (which must have
// been opened with ValSize == PTTValueLen).
func NewManager(ptt *cow.Tree) *Manager {
	return &Manager{
		vtt:       make(map[itime.TID]*vttEntry),
		ptt:       ptt,
		pttLen:    int64(ptt.Len()),
		GCEnabled: true,
	}
}

// noteSizesLocked refreshes the size gauges. Callers hold m.mu; the PTT
// tree has its own synchronization and no path back into the manager.
func (m *Manager) noteSizesLocked() {
	if !obs.Enabled() {
		return
	}
	obsVTTSize.Set(int64(len(m.vtt)))
	obsPTTSize.Set(m.pttLen)
}

// Begin creates the VTT entry for a starting transaction (stage I): the TID
// is entered, the reference count is zero, and the entry has no timestamp
// yet (the transaction is active). snapshot marks transactions whose
// versions are needed only for snapshot isolation; their timestamps never
// persist.
func (m *Manager) Begin(tid itime.TID, snapshot bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.vtt[tid] = &vttEntry{snapshot: snapshot}
	m.noteSizesLocked()
}

// AddRef counts n freshly written, non-timestamped versions against the
// transaction (stage II).
func (m *Manager) AddRef(tid itime.TID, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.vtt[tid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTID, tid)
	}
	if e.refCount != refUndefined {
		e.refCount += n
	}
	return nil
}

// Commit records the transaction's timestamp (stage III): the VTT entry is
// completed, and — for transactions against transaction-time tables — a
// single PTT entry is written. The updated data records are NOT revisited;
// that is the entire point of lazy timestamping. commitLSN is the
// transaction's (already appended, not necessarily durable) commit record;
// MaxCommitLSN reports it to the buffer pool so pages stamped before the
// record's fsync completes still respect write-ahead. endOfLog supplies the
// current end-of-log LSN for transactions that committed with zero
// outstanding versions.
func (m *Manager) Commit(tid itime.TID, ts itime.Timestamp, persistent bool, commitLSN wal.LSN, endOfLog func() wal.LSN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.vtt[tid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTID, tid)
	}
	e.ts = ts
	e.committed = true
	e.commitLSN = commitLSN
	if e.snapshot || !persistent {
		// Snapshot transactions are never entered into the PTT; their VTT
		// entry can be dropped as soon as the reference count reaches zero.
		if e.refCount == 0 {
			delete(m.vtt, tid)
		}
		m.noteSizesLocked()
		return nil
	}
	var val [PTTValueLen]byte
	ts.Encode(val[:])
	if err := m.ptt.Put(uint64(tid), val[:]); err != nil {
		return fmt.Errorf("stamp: PTT insert for %d: %w", tid, err)
	}
	m.pttPuts++
	m.pttLen++
	if commitLSN > m.pttMaxCommitLSN {
		m.pttMaxCommitLSN = commitLSN
	}
	if e.refCount == 0 {
		// Nothing to stamp (e.g. a read-only commit still entered here):
		// eligible for GC as soon as the watermark passes.
		e.doneLSN = endOfLog()
	}
	m.noteSizesLocked()
	return nil
}

// SyncPTT makes buffered PTT changes durable, first forcing the WAL through
// every commit record whose timestamp the PTT carries (see ForceLog).
func (m *Manager) SyncPTT() error {
	m.mu.Lock()
	lsn := m.pttMaxCommitLSN
	force := m.ForceLog
	m.mu.Unlock()
	if lsn > 0 && force != nil {
		if err := force(lsn); err != nil {
			return fmt.Errorf("stamp: log force before PTT sync: %w", err)
		}
	}
	return m.ptt.Commit()
}

// UndoCommit reverses a Commit whose transaction failed to become durable —
// the commit record could not be appended or flushed. The VTT entry reverts
// to active and the buffered PTT insert is withdrawn, so the transaction can
// still be rolled back normally.
func (m *Manager) UndoCommit(tid itime.TID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.vtt[tid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTID, tid)
	}
	e.committed = false
	e.ts = itime.Timestamp{}
	e.doneLSN = 0
	e.commitLSN = 0
	if err := m.ptt.Delete(uint64(tid)); err != nil {
		if !errors.Is(err, cow.ErrNotFound) {
			return fmt.Errorf("stamp: PTT withdraw for %d: %w", tid, err)
		}
	} else {
		m.pttLen--
	}
	m.noteSizesLocked()
	return nil
}

// Abort drops the transaction's VTT entry; its versions are being removed
// by rollback, so no timestamp will ever be needed.
func (m *Manager) Abort(tid itime.TID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.vtt, tid)
	m.noteSizesLocked()
}

// Resolve maps a TID to its commit timestamp (stage IV support). ok is false
// while the transaction is active or after it aborted. A PTT hit is cached
// in the VTT with an undefined reference count so the PTT entry survives GC.
func (m *Manager) Resolve(tid itime.TID) (itime.Timestamp, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.vtt[tid]; ok {
		if !e.committed {
			return itime.Timestamp{}, false
		}
		return e.ts, true
	}
	val, err := m.ptt.Get(uint64(tid))
	if err != nil {
		return itime.Timestamp{}, false
	}
	m.pttGets++
	ts := itime.DecodeTimestamp(val)
	m.vtt[tid] = &vttEntry{ts: ts, committed: true, refCount: refUndefined}
	m.noteSizesLocked()
	return ts, true
}

// MaxCommitLSN returns the highest commit-record LSN among the transactions
// in counts (as returned by a page's StampAll): the point the log must be
// durable through before a page carrying those freshly applied stamps may be
// written. TIDs resolved from the PTT or restored by recovery contribute
// nothing — their commit records are already durable (a PTT hit implies a
// synced PTT whose entry the durable log proved, and recovery read the
// record off disk).
func (m *Manager) MaxCommitLSN(counts map[itime.TID]int) wal.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max wal.LSN
	for tid := range counts {
		if e, ok := m.vtt[tid]; ok && e.commitLSN > max {
			max = e.commitLSN
		}
	}
	return max
}

// NoteStamped records that counts[tid] versions of each transaction were
// lazily timestamped. When a transaction's count reaches zero its VTT entry
// remembers the end-of-log LSN; once the redo scan start point passes that
// LSN, all its stamps are stable on disk and its PTT entry can go.
func (m *Manager) NoteStamped(counts map[itime.TID]int, endOfLog func() wal.LSN) {
	if len(counts) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for tid, n := range counts {
		m.stamps += uint64(n)
		obsStamps.Add(uint64(n))
		e, ok := m.vtt[tid]
		if !ok || e.refCount == refUndefined {
			continue
		}
		e.refCount -= n
		if e.refCount <= 0 {
			e.refCount = 0
			if e.snapshot {
				// Snapshot entries go immediately (Section 2.2, last para).
				delete(m.vtt, tid)
				continue
			}
			if e.doneLSN == 0 {
				e.doneLSN = endOfLog()
			}
		}
	}
	m.noteSizesLocked()
}

// RunGC deletes PTT (and VTT) entries whose timestamping completed and whose
// stamped pages are provably on disk: the redo scan start point has moved
// past the entry's recorded end-of-log LSN. It returns how many entries were
// collected. The caller syncs the PTT afterwards (typically as part of a
// checkpoint).
func (m *Manager) RunGC(redoScanStart wal.LSN) (int, error) {
	if !m.GCEnabled {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gcRuns++
	obsGCRuns.Inc()
	// Collect in TID order so PTT mutations — and therefore the I/O they
	// cause — happen in a replayable sequence for crash-matrix tests.
	eligible := make([]itime.TID, 0, len(m.vtt))
	for tid, e := range m.vtt {
		if !e.committed || e.snapshot || e.refCount != 0 || e.doneLSN == 0 {
			continue
		}
		if redoScanStart <= e.doneLSN {
			continue
		}
		eligible = append(eligible, tid)
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i] < eligible[j] })
	removed := 0
	for _, tid := range eligible {
		if err := m.ptt.Delete(uint64(tid)); err != nil {
			if !errors.Is(err, cow.ErrNotFound) {
				return removed, fmt.Errorf("stamp: PTT delete for %d: %w", tid, err)
			}
		} else {
			m.pttLen--
		}
		m.pttDeletes++
		delete(m.vtt, tid)
		removed++
	}
	obsGCFreed.Add(uint64(removed))
	m.noteSizesLocked()
	return removed, nil
}

// RestoreCommitted re-creates a committed transaction's timestamp mapping
// during recovery redo: the PTT entry is reinserted if missing and a VTT
// entry with an undefined reference count is cached. The reference count is
// undefined because volatile counts were lost in the crash — such entries
// are never GC'd, the failure mode the paper explicitly accepts ("we simply
// end up with certain PTT entries that cannot be deleted").
func (m *Manager) RestoreCommitted(tid itime.TID, ts itime.Timestamp, persistent bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.vtt[tid] = &vttEntry{ts: ts, committed: true, refCount: refUndefined}
	defer m.noteSizesLocked()
	if !persistent {
		return nil
	}
	var val [PTTValueLen]byte
	ts.Encode(val[:])
	if err := m.ptt.Put(uint64(tid), val[:]); err != nil {
		return fmt.Errorf("stamp: PTT restore for %d: %w", tid, err)
	}
	m.pttPuts++
	m.pttLen++
	return nil
}

// PTTLen returns the number of entries in the persistent timestamp table.
func (m *Manager) PTTLen() uint64 { return m.ptt.Len() }

// ExportPTT streams every persistent timestamp entry, in TID order, to fn —
// the PTT half of a base snapshot for replica seeding. fn returning false
// stops the walk. Entries are read from the PTT's committed+buffered state
// under the manager's lock, so no commit can interleave a half-published
// mapping into the export.
func (m *Manager) ExportPTT(fn func(tid itime.TID, ts itime.Timestamp) bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ptt.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		return fn(itime.TID(k), itime.DecodeTimestamp(v))
	})
}

// VTTLen returns the number of entries in the volatile timestamp table.
func (m *Manager) VTTLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.vtt)
}

// Pending reports whether tid still has unstamped versions outstanding
// (false also for unknown TIDs).
func (m *Manager) Pending(tid itime.TID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.vtt[tid]
	return ok && e.refCount > 0
}

// Stats returns counters: PTT puts/gets/deletes, versions stamped, GC runs.
type Stats struct {
	PTTPuts, PTTGets, PTTDeletes uint64
	VersionsStamped              uint64
	GCRuns                       uint64
}

// Snapshot returns a copy of the manager's counters.
func (m *Manager) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		PTTPuts:         m.pttPuts,
		PTTGets:         m.pttGets,
		PTTDeletes:      m.pttDeletes,
		VersionsStamped: m.stamps,
		GCRuns:          m.gcRuns,
	}
}
