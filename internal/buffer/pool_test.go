package buffer

import (
	"errors"
	"path/filepath"
	"testing"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/disk"
	"immortaldb/internal/storage/page"
)

func newPool(t *testing.T, capacity int) (*Pool, *disk.Pager) {
	t.Helper()
	pg, err := disk.Open(filepath.Join(t.TempDir(), "db.pages"), 512)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pg.Close() })
	return New(pg, capacity), pg
}

// newDataFrame allocates a page and installs a fresh data page for it.
func newDataFrame(t *testing.T, p *Pool, pg *disk.Pager) *Frame {
	t.Helper()
	id, err := pg.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	dp := page.NewData(id, pg.PageSize())
	f, err := p.NewPage(id, dp, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFetchCachesPages(t *testing.T) {
	p, pg := newPool(t, 8)
	f := newDataFrame(t, p, pg)
	id := f.ID()
	f.Data().LSN = 5
	if err := f.Data().Insert([]byte("k"), []byte("v"), false, 1); err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	if err := p.FlushAll(false); err != nil {
		t.Fatal(err)
	}

	f2, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Data() != f.Data() {
		t.Fatal("fetch did not return the cached object")
	}
	p.Release(f2)
	hits, misses, _, _ := p.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestEvictionWritesDirtyAndRereads(t *testing.T) {
	p, pg := newPool(t, 4)
	var ids []page.ID
	for i := 0; i < 10; i++ {
		f := newDataFrame(t, p, pg)
		if err := f.Data().Insert([]byte{byte(i)}, []byte("v"), false, 1); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		p.Release(f)
	}
	if p.Len() > 4 {
		t.Fatalf("pool grew past capacity: %d", p.Len())
	}
	// Every page must be readable with its content intact.
	for i, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		if _, found := f.Data().FindSlot([]byte{byte(i)}); !found {
			t.Fatalf("page %d lost its record", id)
		}
		p.Release(f)
	}
}

func TestAllPinned(t *testing.T) {
	p, pg := newPool(t, 4)
	var frames []*Frame
	for i := 0; i < 4; i++ {
		frames = append(frames, newDataFrame(t, p, pg))
	}
	id, _ := pg.Allocate()
	if _, err := p.NewPage(id, page.NewData(id, pg.PageSize()), 1); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("err = %v, want ErrAllPinned", err)
	}
	p.Release(frames[0])
	if _, err := p.NewPage(id, page.NewData(id, pg.PageSize()), 1); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestPreFlushHookStampsBeforeWrite(t *testing.T) {
	p, pg := newPool(t, 4)
	f := newDataFrame(t, p, pg)
	id := f.ID()
	if err := f.Data().Insert([]byte("k"), []byte("v"), false, 42); err != nil {
		t.Fatal(err)
	}
	p.Release(f)

	stampCalls := 0
	p.PreFlush = func(pgAny any) {
		stampCalls++
		if dp, ok := pgAny.(*page.DataPage); ok {
			dp.StampAll(func(tid itime.TID) (itime.Timestamp, bool) {
				return itime.Timestamp{Wall: 9}, tid == 42
			})
		}
	}
	if err := p.FlushAll(false); err != nil {
		t.Fatal(err)
	}
	if stampCalls != 1 {
		t.Fatalf("PreFlush ran %d times", stampCalls)
	}
	// Drop the cache and re-read: the stamp must be on disk.
	if err := p.Drop(id); err != nil {
		t.Fatal(err)
	}
	f2, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(f2)
	s, _ := f2.Data().FindSlot([]byte("k"))
	if v := f2.Data().Latest(s); !v.Stamped || v.TS.Wall != 9 {
		t.Fatalf("stamp not persisted: %+v", v)
	}
}

func TestFlushLSNRespectsWALRule(t *testing.T) {
	p, pg := newPool(t, 4)
	f := newDataFrame(t, p, pg)
	f.Data().LSN = 77
	p.Release(f)

	var asked []uint64
	p.FlushLSN = func(lsn uint64) error {
		asked = append(asked, lsn)
		return nil
	}
	if err := p.FlushAll(false); err != nil {
		t.Fatal(err)
	}
	if len(asked) != 1 || asked[0] != 77 {
		t.Fatalf("FlushLSN calls = %v", asked)
	}
	// A failing WAL flush must abort the page write.
	f2, _ := p.Fetch(f.ID())
	f2.Data().LSN = 99
	p.MarkDirty(f2, 99)
	p.Release(f2)
	p.FlushLSN = func(uint64) error { return errors.New("boom") }
	if err := p.FlushAll(false); err == nil {
		t.Fatal("flush with failing WAL must error")
	}
}

func TestDirtyPagesTable(t *testing.T) {
	p, pg := newPool(t, 8)
	f1 := newDataFrame(t, p, pg)
	f2 := newDataFrame(t, p, pg)
	p.Release(f1)
	p.Release(f2)
	dpt := p.DirtyPages()
	if len(dpt) != 2 {
		t.Fatalf("dpt = %v", dpt)
	}
	if err := p.FlushAll(false); err != nil {
		t.Fatal(err)
	}
	if len(p.DirtyPages()) != 0 {
		t.Fatal("dpt not empty after flush")
	}
	// Re-dirty: RecLSN is the first dirtying LSN, not later ones.
	f, _ := p.Fetch(f1.ID())
	p.MarkDirty(f, 100)
	p.MarkDirty(f, 200)
	p.Release(f)
	dpt = p.DirtyPages()
	if dpt[f1.ID()] != 100 {
		t.Fatalf("recLSN = %d, want 100", dpt[f1.ID()])
	}
}

func TestDropPinned(t *testing.T) {
	p, pg := newPool(t, 4)
	f := newDataFrame(t, p, pg)
	if err := p.Drop(f.ID()); err == nil {
		t.Fatal("dropping a pinned page must fail")
	}
	p.Release(f)
	if err := p.Drop(f.ID()); err != nil {
		t.Fatal(err)
	}
	if err := p.Drop(f.ID()); err != nil {
		t.Fatal("dropping an absent page must be a no-op")
	}
}

func TestWithRunsAndReleases(t *testing.T) {
	p, pg := newPool(t, 4)
	f := newDataFrame(t, p, pg)
	id := f.ID()
	p.Release(f)
	err := p.With(id, func(pgAny any) error {
		if pgAny.(*page.DataPage).ID != id {
			t.Fatal("wrong page")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All pins released: page can be dropped.
	if err := p.Drop(id); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	p, pg := newPool(t, 4)
	f := newDataFrame(t, p, pg)
	p.Release(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Release(f)
}
