// Package buffer implements the buffer pool: an LRU cache of decoded pages
// over the disk pager, enforcing the write-ahead rule (log flushed up to a
// page's LSN before the page is written) and exposing the pre-flush hook
// that drives flush-triggered lazy timestamping ("just before a cached page
// is flushed to disk, we check whether the page contains any non-timestamped
// records from committed transactions" — Section 2.2).
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"immortaldb/internal/obs"
	"immortaldb/internal/storage/disk"
	"immortaldb/internal/storage/page"
)

// Observability: cache effectiveness counters and the latency of writing a
// dirty page out (pre-flush stamping + WAL force + physical write).
var (
	obsHits      = obs.NewCounter("immortaldb_buffer_hits_total", "Buffer-pool fetches served from cache.")
	obsMisses    = obs.NewCounter("immortaldb_buffer_misses_total", "Buffer-pool fetches that read from disk.")
	obsEvictions = obs.NewCounter("immortaldb_buffer_evictions_total", "Frames evicted to make room.")
	obsFlushLat  = obs.NewHistogram("immortaldb_buffer_flush_seconds",
		"Latency of flushing one dirty page (lazy stamping, write-ahead force, encode, write).", obs.LatencyBuckets)
)

// ErrAllPinned reports that the pool is full of pinned pages and cannot
// evict. It indicates a pin leak or an undersized pool.
var ErrAllPinned = errors.New("buffer: all frames pinned")

// ErrReadOnly reports that the pool refused to write a dirty page because it
// has been switched read-only (the engine degraded after an I/O failure).
// Clean frames can still be evicted and reads keep being served.
var ErrReadOnly = errors.New("buffer: pool is read-only (engine degraded)")

// Frame is a cached page. Callers receive a pinned frame from Fetch or
// NewPage and must Release it; the frame's decoded page must not be touched
// after release.
type Frame struct {
	id     page.ID
	pg     any // *page.DataPage | *page.IndexPage | *page.BlobPage
	dirty  bool
	recLSN uint64 // LSN of the first change since the page was last clean
	pins   int
	elem   *list.Element
	// latch protects the decoded page's contents between concurrent pin
	// holders. Most of the storage layer needs no latching — writers hold the
	// table tree's exclusive lock, and unpinned frames are only touched under
	// the pool mutex — but lazy timestamping mutates version fields in place
	// under the tree's SHARED lock, so readers of a current page take the
	// read latch and the stamping path takes the write latch.
	latch sync.RWMutex
}

// ID returns the page ID.
func (f *Frame) ID() page.ID { return f.id }

// Page returns the decoded page.
func (f *Frame) Page() any { return f.pg }

// Data returns the decoded page as a data page, or nil.
func (f *Frame) Data() *page.DataPage {
	d, _ := f.pg.(*page.DataPage)
	return d
}

// Index returns the decoded page as an index page, or nil.
func (f *Frame) Index() *page.IndexPage {
	d, _ := f.pg.(*page.IndexPage)
	return d
}

// RLatch takes the frame's shared content latch. Callers must hold a pin.
func (f *Frame) RLatch() { f.latch.RLock() }

// RUnlatch releases the shared content latch.
func (f *Frame) RUnlatch() { f.latch.RUnlock() }

// Latch takes the frame's exclusive content latch (in-place stamping).
func (f *Frame) Latch() { f.latch.Lock() }

// Unlatch releases the exclusive content latch.
func (f *Frame) Unlatch() { f.latch.Unlock() }

// Pool is the buffer pool. It is safe for concurrent use, but the decoded
// pages it hands out are not internally locked: the storage layer above
// (the TSB-tree) serializes access to page contents.
type Pool struct {
	mu     sync.Mutex
	pager  *disk.Pager
	cap    int
	frames map[page.ID]*Frame
	lru    *list.List // front = most recently used; holds *Frame

	// PreFlush, when set, runs on a dirty page immediately before it is
	// encoded and written — the lazy-timestamping flush trigger. Changes it
	// makes are included in the write but do not move the page LSN
	// (timestamping is never logged).
	PreFlush func(pg any)
	// FlushLSN, when set, is called with a dirty page's LSN before the page
	// is written; it must make the log durable at least that far.
	FlushLSN func(lsn uint64) error
	// PreWrite, when set, sees the encoded bytes of every dirty page just
	// before the physical write and returns an LSN the log must be durable
	// through first. It implements full-page-writes: the hook logs a page
	// image so recovery can repair a write torn by a crash.
	PreWrite func(id page.ID, buf []byte) (uint64, error)
	// OnWriteError, when set, is told about every failed dirty-page write
	// (encode, write-ahead force, or physical write). The engine uses it to
	// degrade to read-only: a page whose write failed may be half on disk, so
	// no later state may be trusted until recovery re-reads it. The hook runs
	// with the pool mutex held and must not call back into the pool.
	OnWriteError func(err error)

	readOnly atomic.Bool

	hits, misses, evictions, flushes uint64
}

// New returns a pool of at most capacity frames over pager.
func New(pager *disk.Pager, capacity int) *Pool {
	if capacity < 4 {
		capacity = 4
	}
	return &Pool{
		pager:  pager,
		cap:    capacity,
		frames: make(map[page.ID]*Frame, capacity),
		lru:    list.New(),
	}
}

// PageSize returns the underlying page size.
func (p *Pool) PageSize() int { return p.pager.PageSize() }

// SetReadOnly switches the pool into (or out of) read-only mode. While
// read-only the pool never writes a dirty page: eviction only takes clean
// victims and FlushAll/FlushPage return ErrReadOnly for dirty frames, so a
// degraded engine keeps serving reads from clean pages without touching disk.
func (p *Pool) SetReadOnly(ro bool) { p.readOnly.Store(ro) }

// ReadOnly reports whether the pool is in read-only mode.
func (p *Pool) ReadOnly() bool { return p.readOnly.Load() }

// Fetch returns a pinned frame for page id, reading and decoding it if not
// cached.
func (p *Pool) Fetch(id page.ID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		p.hits++
		obsHits.Inc()
		f.pins++
		p.lru.MoveToFront(f.elem)
		return f, nil
	}
	p.misses++
	obsMisses.Inc()
	buf, err := p.pager.ReadPage(id)
	if err != nil {
		return nil, err
	}
	pg, err := page.Unmarshal(buf)
	if err != nil {
		return nil, fmt.Errorf("buffer: decode page %d: %w", id, err)
	}
	return p.installLocked(id, pg)
}

// NewPage installs a freshly created decoded page (whose ID the caller
// already allocated from the pager) into the pool, pinned and dirty.
func (p *Pool) NewPage(id page.ID, pg any, recLSN uint64) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.frames[id]; ok {
		return nil, fmt.Errorf("buffer: page %d already cached", id)
	}
	f, err := p.installLocked(id, pg)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	f.recLSN = recLSN
	return f, nil
}

func (p *Pool) installLocked(id page.ID, pg any) (*Frame, error) {
	if err := p.evictIfFullLocked(); err != nil {
		return nil, err
	}
	f := &Frame{id: id, pg: pg, pins: 1}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	return f, nil
}

func (p *Pool) evictIfFullLocked() error {
	readOnly := p.readOnly.Load()
	for len(p.frames) >= p.cap {
		// Prefer a clean victim: evicting clean pages costs no write, and in
		// read-only (degraded) mode clean victims are the only legal ones.
		var victim, dirtyVictim *Frame
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			f := e.Value.(*Frame)
			if f.pins != 0 {
				continue
			}
			if !f.dirty {
				victim = f
				break
			}
			if dirtyVictim == nil {
				dirtyVictim = f
			}
		}
		if victim == nil && !readOnly {
			victim = dirtyVictim
		}
		if victim == nil {
			if readOnly && dirtyVictim != nil {
				return fmt.Errorf("%w: no clean frame to evict", ErrReadOnly)
			}
			return ErrAllPinned
		}
		if err := p.writeFrameLocked(victim); err != nil {
			return err
		}
		p.lru.Remove(victim.elem)
		delete(p.frames, victim.id)
		p.evictions++
		obsEvictions.Inc()
	}
	return nil
}

// Release unpins a frame obtained from Fetch or NewPage.
func (p *Pool) Release(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: release of unpinned page %d", f.id))
	}
	f.pins--
}

// MarkDirty records that the frame's page was modified by a log record at
// lsn. The first dirtying LSN since the page was clean becomes its RecLSN
// for the dirty-page table.
func (p *Pool) MarkDirty(f *Frame, lsn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !f.dirty {
		f.dirty = true
		f.recLSN = lsn
	}
}

// With fetches page id, runs fn on the decoded page, and releases it.
func (p *Pool) With(id page.ID, fn func(pg any) error) error {
	f, err := p.Fetch(id)
	if err != nil {
		return err
	}
	defer p.Release(f)
	return fn(f.pg)
}

// pageLSN extracts the LSN header field from a decoded page.
func pageLSN(pg any) uint64 {
	switch v := pg.(type) {
	case *page.DataPage:
		return v.LSN
	case *page.IndexPage:
		return v.LSN
	default:
		return 0
	}
}

// writeFrameLocked encodes and writes a frame if dirty, running the
// pre-flush hook and the write-ahead check first. Pinned frames are left
// alone: their holder may be mutating the decoded page right now, and a
// fuzzy checkpoint simply keeps them in the dirty-page table.
func (p *Pool) writeFrameLocked(f *Frame) (err error) {
	if !f.dirty || f.pins > 0 {
		return nil
	}
	if p.readOnly.Load() {
		return fmt.Errorf("%w: dirty page %d", ErrReadOnly, f.id)
	}
	defer func() {
		if err != nil && p.OnWriteError != nil {
			p.OnWriteError(err)
		}
	}()
	defer obsFlushLat.ObserveSince(obs.Now())
	if p.PreFlush != nil {
		p.PreFlush(f.pg)
	}
	buf := make([]byte, p.pager.PageSize())
	switch v := f.pg.(type) {
	case *page.DataPage:
		err = v.Marshal(buf)
	case *page.IndexPage:
		err = v.Marshal(buf)
	case *page.BlobPage:
		err = v.Marshal(buf)
	default:
		err = fmt.Errorf("buffer: cannot encode %T", f.pg)
	}
	if err != nil {
		return fmt.Errorf("buffer: encode page %d: %w", f.id, err)
	}
	// Write-ahead: the log must be durable through the page's own LSN, the
	// commit records of any lazily stamped versions (StampLSN — stamping is
	// not logged, so the page LSN does not cover it) and, with
	// full-page-writes on, through the image record PreWrite just appended.
	lsn := pageLSN(f.pg)
	if dp, ok := f.pg.(*page.DataPage); ok && dp.StampLSN > lsn {
		lsn = dp.StampLSN
	}
	if p.PreWrite != nil {
		imageLSN, err := p.PreWrite(f.id, buf)
		if err != nil {
			return fmt.Errorf("buffer: page image for page %d: %w", f.id, err)
		}
		if imageLSN > lsn {
			lsn = imageLSN
		}
	}
	if p.FlushLSN != nil && lsn != 0 {
		if err := p.FlushLSN(lsn); err != nil {
			return fmt.Errorf("buffer: WAL flush for page %d: %w", f.id, err)
		}
	}
	if err := p.pager.WritePage(f.id, buf); err != nil {
		return err
	}
	f.dirty = false
	f.recLSN = 0
	p.flushes++
	return nil
}

// FlushAll writes every dirty page. With sync set it also fsyncs the pager,
// making the flush a durable (sharp) checkpoint of page state.
func (p *Pool) FlushAll(sync bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Flush in page-ID order: the physical write sequence must be a pure
	// function of the workload so crash-matrix tests can replay an exact
	// crash point.
	ids := make([]page.ID, 0, len(p.frames))
	for id := range p.frames {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := p.writeFrameLocked(p.frames[id]); err != nil {
			return err
		}
	}
	if sync {
		return p.pager.Sync()
	}
	return nil
}

// FlushPage writes one page through if it is cached and dirty.
func (p *Pool) FlushPage(id page.ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		return p.writeFrameLocked(f)
	}
	return nil
}

// DirtyPages returns the dirty-page table: page ID to RecLSN.
func (p *Pool) DirtyPages() map[page.ID]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[page.ID]uint64)
	for id, f := range p.frames {
		if f.dirty {
			out[id] = f.recLSN
		}
	}
	return out
}

// Drop removes a page from the cache without writing it, for pages being
// freed. The page must be unpinned.
func (p *Pool) Drop(id page.ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return nil
	}
	if f.pins != 0 {
		return fmt.Errorf("buffer: drop of pinned page %d", id)
	}
	p.lru.Remove(f.elem)
	delete(p.frames, id)
	return nil
}

// Stats returns cache counters: hits, misses, evictions, page flushes.
func (p *Pool) Stats() (hits, misses, evictions, flushes uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions, p.flushes
}

// Len returns the number of cached frames.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}
