package workload

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestStreamShape(t *testing.T) {
	g := New(Config{Seed: 1})
	ops, err := g.Stream(500, 32000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 32000 {
		t.Fatalf("len = %d", len(ops))
	}
	ins, upd := 0, 0
	seen := make(map[uint16]bool)
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			if seen[op.OID] {
				t.Fatalf("object %d inserted twice", op.OID)
			}
			seen[op.OID] = true
			ins++
		case OpUpdate:
			if !seen[op.OID] {
				t.Fatalf("object %d updated before insert", op.OID)
			}
			upd++
		}
	}
	if ins != 500 || upd != 31500 {
		t.Fatalf("inserts=%d updates=%d", ins, upd)
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, err := New(Config{Seed: 42}).Stream(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(Config{Seed: 42}).Stream(100, 1000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c, _ := New(Config{Seed: 43}).Stream(100, 1000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestObjectsMoveWithinBoundsAndSpeed(t *testing.T) {
	g := New(Config{Seed: 7, Width: 100, Height: 100})
	ops, err := g.Stream(50, 2000)
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[uint16]Point)
	for _, op := range ops {
		if op.Pos.X < 0 || op.Pos.X >= 100 || op.Pos.Y < 0 || op.Pos.Y >= 100 {
			t.Fatalf("object %d left the map: %+v", op.OID, op.Pos)
		}
		if prev, ok := last[op.OID]; ok && op.Kind == OpUpdate {
			d := abs32(op.Pos.X-prev.X) + abs32(op.Pos.Y-prev.Y)
			if d > 8 { // max speed class
				t.Fatalf("object %d jumped %d cells", op.OID, d)
			}
		}
		last[op.OID] = op.Pos
	}
}

func TestUpdateCountsVary(t *testing.T) {
	g := New(Config{Seed: 3})
	if _, err := g.Stream(200, 8000); err != nil {
		t.Fatal(err)
	}
	counts := g.UpdateCounts()
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// "Not all moving objects have the same number of updates" (Section 5).
	if min == max {
		t.Fatalf("all objects updated exactly %d times", min)
	}
}

func TestStreamErrors(t *testing.T) {
	g := New(Config{Seed: 1})
	if _, err := g.Stream(0, 10); err == nil {
		t.Fatal("zero inserts accepted")
	}
	if _, err := g.Stream(10, 5); err == nil {
		t.Fatal("total < inserts accepted")
	}
	if _, err := g.Stream(1<<16+1, 1<<17); err == nil {
		t.Fatal("too many objects accepted")
	}
}

func TestKeyValueRoundTrip(t *testing.T) {
	f := func(oid uint16, x, y int32) bool {
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		k, err := DecodeKey(Key(oid))
		if err != nil || k != oid {
			return false
		}
		p, err := DecodeValue(Value(Point{X: x, Y: y}))
		return err == nil && p == Point{X: x, Y: y}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeKey([]byte{1}); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := DecodeValue([]byte{1, 2, 3}); err == nil {
		t.Fatal("short value accepted")
	}
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
