package workload

import (
	"fmt"
	"math/rand"
)

// The metering workload models a usage-metering/billing tenant — the second
// tenant archetype after moving-objects, and the one that leans hardest on
// transaction time: usage events append at a high rate into billing periods;
// closing a period computes its invoice total; later corrections may rewrite
// history — but an invoice audit re-reads the period AS OF the moment it was
// closed and must match the recorded total exactly. Transaction-time
// semantics are the test oracle: if the engine's versioning is right, no
// amount of later activity can change what a closed period summed to.

// MeterKind classifies one metering operation.
type MeterKind uint8

// Metering operation kinds.
const (
	// MeterAppend inserts one usage row into the tenant's open period.
	MeterAppend MeterKind = iota
	// MeterClose closes the open period: the runner sums its rows with
	// current reads, records the invoice total, and captures an AS OF
	// timestamp for later audits.
	MeterClose
	// MeterCorrect rewrites one usage row in an earlier, closed period (a
	// billing correction). It must not affect that period's AS OF audit.
	MeterCorrect
	// MeterAudit re-reads a closed period AS OF its close timestamp and
	// compares against the recorded invoice total.
	MeterAudit
)

func (k MeterKind) String() string {
	switch k {
	case MeterAppend:
		return "append"
	case MeterClose:
		return "close"
	case MeterCorrect:
		return "correct"
	default:
		return "audit"
	}
}

// MeterOp is one metering operation.
type MeterOp struct {
	Kind   MeterKind
	Tenant uint32
	// Period is the billing period the operation addresses: the open one
	// for Append/Close, a closed one for Correct/Audit.
	Period uint32
	// Seq is the row within the period (Append/Correct).
	Seq uint32
	// Amount is the usage amount (Append) or the corrected value (Correct).
	Amount int64
}

// MeterKey packs (tenant, period, seq) into the meter table's BIGINT
// primary key, ordering rows tenant-major then period then sequence.
func MeterKey(tenant, period, seq uint32) int64 {
	return int64(tenant)<<32 | int64(period&0xFFFF)<<16 | int64(seq&0xFFFF)
}

// MeterCreate is the DDL for the shared meter table. IMMORTAL, because
// audits are AS OF queries.
func MeterCreate() string {
	return "CREATE IMMORTAL TABLE meter (k bigint PRIMARY KEY, amount bigint)"
}

// Statement renders an Append or Correct as SQL. Close and Audit are
// multi-statement protocols driven by the runner (see MeterSelect).
func (op MeterOp) Statement() string {
	key := MeterKey(op.Tenant, op.Period, op.Seq)
	switch op.Kind {
	case MeterAppend:
		return fmt.Sprintf("INSERT INTO meter VALUES (%d, %d)", key, op.Amount)
	case MeterCorrect:
		return fmt.Sprintf("UPDATE meter SET amount = %d WHERE k = %d", op.Amount, key)
	default:
		return ""
	}
}

// MeterSelect is the point read for one usage row.
func MeterSelect(tenant, period, seq uint32) string {
	return fmt.Sprintf("SELECT amount FROM meter WHERE k = %d", MeterKey(tenant, period, seq))
}

// MeterGen produces one tenant's deterministic metering operation stream:
// a handful of appends per period, a close, and occasional corrections and
// audits against earlier periods. Two generators with the same (tenant,
// seed) produce identical streams.
type MeterGen struct {
	tenant uint32
	rng    *rand.Rand

	period    uint32
	seq       uint32
	perPeriod uint32
	rows      map[uint32]uint32 // closed period -> row count
	closed    []uint32
	queue     []MeterOp
}

// NewMeterGen returns a generator for one tenant.
func NewMeterGen(tenant uint32, seed int64) *MeterGen {
	g := &MeterGen{
		tenant: tenant,
		rng:    rand.New(rand.NewSource(seed ^ int64(tenant)<<17)),
		rows:   make(map[uint32]uint32),
	}
	g.perPeriod = 3 + uint32(g.rng.Intn(4))
	return g
}

// Next returns the tenant's next operation.
func (g *MeterGen) Next() MeterOp {
	if len(g.queue) > 0 {
		op := g.queue[0]
		g.queue = g.queue[1:]
		return op
	}
	if g.seq < g.perPeriod {
		op := MeterOp{
			Kind:   MeterAppend,
			Tenant: g.tenant,
			Period: g.period,
			Seq:    g.seq,
			Amount: 1 + g.rng.Int63n(1000),
		}
		g.seq++
		return op
	}
	// Period full: close it, then queue follow-on history operations.
	op := MeterOp{Kind: MeterClose, Tenant: g.tenant, Period: g.period}
	g.rows[g.period] = g.perPeriod
	g.closed = append(g.closed, g.period)
	// Corrections rewrite a closed period; audits check one. Both pick
	// their targets from the generator's rng, so the stream stays a pure
	// function of (tenant, seed).
	if len(g.closed) > 1 && g.rng.Intn(2) == 0 {
		p := g.closed[g.rng.Intn(len(g.closed)-1)] // never the just-closed one
		g.queue = append(g.queue, MeterOp{
			Kind:   MeterCorrect,
			Tenant: g.tenant,
			Period: p,
			Seq:    uint32(g.rng.Intn(int(g.rows[p]))),
			Amount: 1 + g.rng.Int63n(1000),
		})
	}
	if g.rng.Intn(2) == 0 {
		p := g.closed[g.rng.Intn(len(g.closed))]
		g.queue = append(g.queue, MeterOp{Kind: MeterAudit, Tenant: g.tenant, Period: p})
	}
	g.period++
	g.seq = 0
	g.perPeriod = 3 + uint32(g.rng.Intn(4))
	return op
}

// RowSeqs returns the row sequence numbers of a period: 0..n-1 for closed
// periods, the rows appended so far for the open one.
func (g *MeterGen) RowSeqs(period uint32) []uint32 {
	n, ok := g.rows[period]
	if !ok && period == g.period {
		n = g.seq
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(i)
	}
	return out
}
