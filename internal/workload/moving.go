// Package workload generates the paper's evaluation workload: a
// network-based stream of moving objects (vehicles, trucks, cyclists) on a
// road network, substituting for the Brinkhoff generator [8] used in Section
// 5. Objects appear on the map (an Insert transaction with object ID and
// location), move along a route at a class-specific speed (Update
// transactions), and stop transmitting when they reach their destination —
// so, as in the paper, objects differ in their number of updates.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Point is a grid coordinate on the road network.
type Point struct {
	X, Y int32
}

// OpKind distinguishes the two transaction kinds the server receives.
type OpKind uint8

// Operation kinds.
const (
	OpInsert OpKind = iota
	OpUpdate
)

func (k OpKind) String() string {
	if k == OpInsert {
		return "insert"
	}
	return "update"
}

// Op is one transaction sent to the database server.
type Op struct {
	Kind OpKind
	OID  uint16
	Pos  Point
}

// speedClasses mirrors the generator's object classes (cyclists, cars,
// trucks): grid cells moved per simulation tick.
var speedClasses = []int32{1, 2, 3, 5, 8}

// object is one moving object.
type object struct {
	id       uint16
	pos      Point
	dest     Point
	speed    int32
	inserted bool
	done     bool
	updates  int
}

// Config parameterizes the generator.
type Config struct {
	// Width and Height bound the road network grid (default 1000x1000,
	// roughly the Seattle-area extent of Figure 4 in grid cells).
	Width, Height int32
	// Seed makes streams reproducible.
	Seed int64
}

// Generator produces a deterministic moving-objects transaction stream.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	objs []*object
}

// New returns a generator.
func New(cfg Config) *Generator {
	if cfg.Width == 0 {
		cfg.Width = 1000
	}
	if cfg.Height == 0 {
		cfg.Height = 1000
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (g *Generator) randPoint() Point {
	return Point{X: g.rng.Int31n(g.cfg.Width), Y: g.rng.Int31n(g.cfg.Height)}
}

// spawn creates a new object with a random source, destination and speed.
func (g *Generator) spawn() *object {
	o := &object{
		id:    uint16(len(g.objs)),
		pos:   g.randPoint(),
		dest:  g.randPoint(),
		speed: speedClasses[g.rng.Intn(len(speedClasses))],
	}
	g.objs = append(g.objs, o)
	return o
}

// step advances an object one tick along the Manhattan route to its
// destination (the shortest path on a grid network), at its speed.
func (o *object) step() {
	budget := o.speed
	for budget > 0 && !o.done {
		switch {
		case o.pos.X < o.dest.X:
			o.pos.X++
		case o.pos.X > o.dest.X:
			o.pos.X--
		case o.pos.Y < o.dest.Y:
			o.pos.Y++
		case o.pos.Y > o.dest.Y:
			o.pos.Y--
		default:
			o.done = true
		}
		budget--
	}
}

// Stream produces a transaction stream with exactly inserts insert
// transactions followed (interleaved) by total-inserts update transactions,
// matching the experimental setups of Section 5 (e.g. 500 inserts out of
// 32,000 transactions for Figure 5; 500/1K/2K/4K inserts out of 36,000 for
// Figure 6). Objects whose journeys end are re-dispatched to new
// destinations so the stream can always reach the requested length, but
// per-object update counts still vary with route length and speed.
func (g *Generator) Stream(inserts, total int) ([]Op, error) {
	if inserts <= 0 || total < inserts {
		return nil, fmt.Errorf("workload: invalid stream shape %d/%d", inserts, total)
	}
	if inserts > 1<<16 {
		return nil, fmt.Errorf("workload: at most %d objects (smallint IDs)", 1<<16)
	}
	ops := make([]Op, 0, total)

	// Objects appear early in the stream, as on the map at experiment start:
	// inserts interleave with updates over roughly the first tenth of the
	// stream, after which the full fleet is moving (matching Section 5's
	// setup, where all as-of depths see the full fleet).
	updates := total - inserts
	appearEvery := 1
	if updates > inserts {
		appearEvery = (total / 10) / inserts
		if appearEvery < 1 {
			appearEvery = 1
		}
	}

	live := make([]*object, 0, inserts)
	spawned := 0
	for len(ops) < total {
		if spawned < inserts && (len(ops)%appearEvery == 0 || len(live) == 0) {
			o := g.spawn()
			o.inserted = true
			live = append(live, o)
			spawned++
			ops = append(ops, Op{Kind: OpInsert, OID: o.id, Pos: o.pos})
			continue
		}
		// Pick a live object to move; finished objects stop transmitting and
		// are re-dispatched only when the stream still needs updates.
		o := live[g.rng.Intn(len(live))]
		if o.done {
			o.dest = g.randPoint()
			o.done = false
		}
		o.step()
		o.updates++
		ops = append(ops, Op{Kind: OpUpdate, OID: o.id, Pos: o.pos})
	}
	return ops, nil
}

// UpdateCounts returns per-object update totals for the last Stream call.
func (g *Generator) UpdateCounts() []int {
	out := make([]int, len(g.objs))
	for i, o := range g.objs {
		out[i] = o.updates
	}
	return out
}

// Key encodes an object ID as the MovingObjects primary key (Oid smallint).
func Key(oid uint16) []byte {
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, oid)
	return b
}

// Value encodes a location as the record payload (LocationX int, LocationY
// int — the row layout of the paper's MovingObjects table).
func Value(p Point) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b[0:], uint32(p.X))
	binary.BigEndian.PutUint32(b[4:], uint32(p.Y))
	return b
}

// DecodeValue decodes a location payload.
func DecodeValue(b []byte) (Point, error) {
	if len(b) != 8 {
		return Point{}, fmt.Errorf("workload: bad location payload of %d bytes", len(b))
	}
	return Point{
		X: int32(binary.BigEndian.Uint32(b[0:])),
		Y: int32(binary.BigEndian.Uint32(b[4:])),
	}, nil
}

// DecodeKey decodes an object ID key.
func DecodeKey(b []byte) (uint16, error) {
	if len(b) != 2 {
		return 0, fmt.Errorf("workload: bad key of %d bytes", len(b))
	}
	return binary.BigEndian.Uint16(b), nil
}
