package workload

import (
	"strconv"
	"testing"
)

func TestMeterGenDeterministicStream(t *testing.T) {
	a := NewMeterGen(3, 42)
	b := NewMeterGen(3, 42)
	var appends, closes, corrects, audits int
	for i := 0; i < 500; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("op %d diverged: %+v vs %+v", i, x, y)
		}
		switch x.Kind {
		case MeterAppend:
			appends++
		case MeterClose:
			closes++
		case MeterCorrect:
			corrects++
		case MeterAudit:
			audits++
		}
	}
	if appends == 0 || closes == 0 || corrects == 0 || audits == 0 {
		t.Fatalf("unbalanced stream: %d appends, %d closes, %d corrects, %d audits",
			appends, closes, corrects, audits)
	}
	// A different tenant must get a different stream.
	c := NewMeterGen(4, 42)
	diverged := false
	a2 := NewMeterGen(3, 42)
	for i := 0; i < 50; i++ {
		if a2.Next() != c.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("tenants 3 and 4 produced identical streams")
	}
}

func TestMeterOpInvariants(t *testing.T) {
	g := NewMeterGen(1, 7)
	seen := make(map[int64]bool)
	closed := make(map[uint32]bool)
	open := uint32(0)
	for i := 0; i < 300; i++ {
		op := g.Next()
		switch op.Kind {
		case MeterAppend:
			if op.Period != open {
				t.Fatalf("append into period %d while %d is open", op.Period, open)
			}
			key := MeterKey(op.Tenant, op.Period, op.Seq)
			if seen[key] {
				t.Fatalf("duplicate append key %d", key)
			}
			seen[key] = true
			if op.Amount <= 0 {
				t.Fatalf("non-positive amount %d", op.Amount)
			}
		case MeterClose:
			if op.Period != open {
				t.Fatalf("close of period %d while %d is open", op.Period, open)
			}
			closed[op.Period] = true
			open++
		case MeterCorrect:
			if !closed[op.Period] {
				t.Fatalf("correction targets unclosed period %d", op.Period)
			}
			key := MeterKey(op.Tenant, op.Period, op.Seq)
			if !seen[key] {
				t.Fatalf("correction targets never-appended key %d", key)
			}
		case MeterAudit:
			if !closed[op.Period] {
				t.Fatalf("audit targets unclosed period %d", op.Period)
			}
		}
	}
	if rows := g.RowSeqs(0); len(rows) == 0 {
		t.Fatal("closed period 0 reports no rows")
	}
}

func TestMeterKeyPacking(t *testing.T) {
	k := MeterKey(7, 300, 12)
	if k != 7<<32|300<<16|12 {
		t.Fatalf("key = %d", k)
	}
	// Keys order tenant-major, then period, then row.
	if !(MeterKey(1, 0, 0) > MeterKey(0, 65535, 65535)) {
		t.Fatal("tenant ordering broken")
	}
	if !(MeterKey(1, 2, 0) > MeterKey(1, 1, 65535)) {
		t.Fatal("period ordering broken")
	}
	// And fit in a positive BIGINT for any 31-bit tenant.
	if MeterKey(1<<31-1, 65535, 65535) < 0 {
		t.Fatal("key overflows int64")
	}
}

func TestMeterStatements(t *testing.T) {
	app := MeterOp{Kind: MeterAppend, Tenant: 2, Period: 1, Seq: 3, Amount: 50}
	wantKey := strconv.FormatInt(MeterKey(2, 1, 3), 10)
	if s := app.Statement(); s != "INSERT INTO meter VALUES ("+wantKey+", 50)" {
		t.Fatalf("append sql %q", s)
	}
	cor := MeterOp{Kind: MeterCorrect, Tenant: 2, Period: 1, Seq: 3, Amount: 9}
	if s := cor.Statement(); s != "UPDATE meter SET amount = 9 WHERE k = "+wantKey {
		t.Fatalf("correct sql %q", s)
	}
	if s := MeterSelect(2, 1, 3); s != "SELECT amount FROM meter WHERE k = "+wantKey {
		t.Fatalf("select sql %q", s)
	}
}
