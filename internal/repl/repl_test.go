package repl_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"immortaldb"
	"immortaldb/internal/client"
	"immortaldb/internal/itime"
	"immortaldb/internal/repl"
	"immortaldb/internal/server"
	"immortaldb/internal/sim"
)

func testOpts() *immortaldb.Options {
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	clock.AutoStep = 1
	clock.AutoEvery = 3
	return &immortaldb.Options{
		PageSize:       1024,
		CacheFrames:    64,
		NoSync:         true,
		WALSegmentSize: 4096,
		Clock:          clock,
	}
}

// cluster is one primary engine served over a simulated network.
type cluster struct {
	t       *testing.T
	net     *sim.Net
	primary *immortaldb.DB
	srv     *server.Server
	addr    string
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	primary, err := immortaldb.Open(t.TempDir(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	n := sim.NewNet(nil, 7)
	const addr = "primary:7707"
	lis, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(primary, server.Config{Logf: t.Logf})
	if err := srv.ListenOn(lis); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return &cluster{t: t, net: n, primary: primary, srv: srv, addr: addr}
}

func (c *cluster) follower(label string) *repl.Follower {
	f := repl.NewFollower(repl.Config{
		Dir:          c.t.TempDir(),
		Addr:         c.addr,
		DBOptions:    testOpts(),
		Dialer:       c.net.Dialer(label),
		PollInterval: 2 * time.Millisecond,
		Logf:         c.t.Logf,
	})
	c.t.Cleanup(func() { f.Close() })
	return f
}

func commit(t *testing.T, db *immortaldb.DB, tbl *immortaldb.Table, key, val string) immortaldb.Timestamp {
	t.Helper()
	if err := db.Update(func(tx *immortaldb.Tx) error {
		return tx.Set(tbl, []byte(key), []byte(val))
	}); err != nil {
		t.Fatal(err)
	}
	return db.Now()
}

// state reads every row of tbl at the given timestamp (or the horizon when
// at is the zero value, via a snapshot read).
func state(t *testing.T, db *immortaldb.DB, table string, at immortaldb.Timestamp) map[string]string {
	t.Helper()
	tbl, err := db.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	var tx *immortaldb.Tx
	if at == (immortaldb.Timestamp{}) {
		tx, err = db.Begin(immortaldb.SnapshotIsolation)
	} else {
		tx, err = db.BeginAsOfTS(at)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Commit()
	got := map[string]string{}
	if err := tx.Scan(tbl, nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func wantEqual(t *testing.T, label string, got, want map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: key %s = %q, want %q", label, k, got[k], v)
		}
	}
}

// TestFollowerSyncAndServe exercises the whole network path: a table
// created and populated over SQL against the primary server, hello plus
// segment streaming to a follower (catalog SMO records included), reads
// served over SQL from the follower's own server, and the typed wire errors
// for writes and beyond-horizon AS OF reads on the replica.
func TestFollowerSyncAndServe(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()

	pcli, err := client.Open(c.addr, &client.Options{Dialer: c.net.Dialer("pcli")})
	if err != nil {
		t.Fatal(err)
	}
	defer pcli.Close()
	mustSQL := func(sql string) {
		t.Helper()
		if _, err := pcli.Exec(ctx, sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustSQL("CREATE IMMORTAL TABLE kv (id int PRIMARY KEY, v int)")
	mustSQL("INSERT INTO kv VALUES (1, 100)")
	mustSQL("INSERT INTO kv VALUES (2, 200)")
	t1 := c.primary.Now()

	f := c.follower("f1")
	if err := f.Sync(ctx); err != nil {
		t.Fatalf("initial sync: %v", err)
	}
	rdb := f.DB()
	if rdb == nil {
		t.Fatal("no replica engine after sync")
	}
	wantEqual(t, "replica after first sync",
		state(t, rdb, "kv", immortaldb.Timestamp{}),
		state(t, c.primary, "kv", immortaldb.Timestamp{}))

	// The horizon covers everything the primary committed.
	if h := rdb.Horizon(); h.MaxVisible.Less(t1) {
		t.Fatalf("horizon %v behind primary commit %v", h.MaxVisible, t1)
	}

	// New primary commits appear after the next sync, and the old state
	// stays readable AS OF the old timestamp.
	mustSQL("UPDATE kv SET v = 150 WHERE id = 1")
	if err := f.Sync(ctx); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	wantEqual(t, "replica after second sync",
		state(t, rdb, "kv", immortaldb.Timestamp{}),
		state(t, c.primary, "kv", immortaldb.Timestamp{}))
	wantEqual(t, "replica AS OF t1",
		state(t, rdb, "kv", t1),
		state(t, c.primary, "kv", t1))

	// Serve the replica over its own server and hit it with the real client:
	// reads work, writes come back typed as read-only-replica redirects, and
	// an AS OF read past the horizon comes back typed as beyond-horizon.
	rlis, err := c.net.Listen("replica:7707")
	if err != nil {
		t.Fatal(err)
	}
	rsrv := server.New(rdb, server.Config{Logf: t.Logf})
	if err := rsrv.ListenOn(rlis); err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve()
	defer rsrv.Close()

	cli, err := client.Open("replica:7707", &client.Options{Dialer: c.net.Dialer("cli")})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	res, err := cli.Exec(ctx, "SELECT v FROM kv WHERE id = 1")
	if err != nil {
		t.Fatalf("SELECT on replica: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "150" {
		t.Fatalf("SELECT on replica: got %+v", res.Rows)
	}

	_, err = cli.Exec(ctx, "UPDATE kv SET v = 1 WHERE id = 1")
	var re *client.RemoteError
	if !errors.As(err, &re) || !re.ReadOnlyReplica() {
		t.Fatalf("write on replica: got %v, want read-only-replica error", err)
	}

	_, err = cli.BeginAsOf(ctx, "2031-01-01 00:00:00")
	if !errors.As(err, &re) || !re.BeyondHorizon() {
		t.Fatalf("future AS OF on replica: got %v, want beyond-horizon error", err)
	}
}

// TestFollowerRunStreamsContinuously drives the background Run loop: commits
// made while the follower streams become visible without explicit syncs.
func TestFollowerRunStreamsContinuously(t *testing.T) {
	c := newCluster(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	tbl, err := c.primary.CreateTable("kv", immortaldb.TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, c.primary, tbl, "k0", "v0")

	f := c.follower("runner")
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	last := commit(t, c.primary, tbl, "k1", "v1")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := f.Horizon(); !h.MaxVisible.Less(last) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower horizon %v never reached %v", f.Horizon().MaxVisible, last)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wantEqual(t, "streamed state", state(t, f.DB(), "kv", immortaldb.Timestamp{}),
		map[string]string{"k0": "v0", "k1": "v1"})

	if n, _ := c.srv.Shipper().Stats(); n != 1 {
		t.Fatalf("shipper followers = %d, want 1", n)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestFollowerBaseReseed forces the retention gap twice: a fresh follower
// joining after the primary truncated history is seeded from a base
// snapshot, and a follower that fell behind retention while offline is
// wiped and re-seeded — both ending byte-exact with the primary, including
// AS OF states predating the snapshot (served from copied tree pages).
func TestFollowerBaseReseed(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()

	tbl, err := c.primary.CreateTable("kv", immortaldb.TableOptions{Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	early := commit(t, c.primary, tbl, "k0", "v0")
	want := map[string]string{"k0": "v0"}
	for i := 0; i < 30; i++ {
		key := string(rune('a' + i%26))
		commit(t, c.primary, tbl, key, "x")
		want[key] = "x"
	}
	if err := c.primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if c.primary.Log().FirstRetained() == 16 {
		t.Fatal("primary never truncated; reseed not exercised")
	}

	f := c.follower("reseed")
	if err := f.Sync(ctx); err != nil {
		t.Fatalf("seeded sync: %v", err)
	}
	if _, reseeds := f.Stats(); reseeds != 1 {
		t.Fatalf("base reseeds = %d, want 1", reseeds)
	}
	wantEqual(t, "replica after base seed", state(t, f.DB(), "kv", immortaldb.Timestamp{}), want)
	wantEqual(t, "replica AS OF pre-snapshot time", state(t, f.DB(), "kv", early),
		map[string]string{"k0": "v0"})
	followerEnd := f.DB().Log().End()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Fall behind retention while offline: keep committing and
	// checkpointing until truncation passes the follower's log end.
	for i := 0; c.primary.Log().FirstRetained() <= followerEnd; i++ {
		if i > 200 {
			t.Fatal("primary never truncated past follower position")
		}
		key := string(rune('A' + i%26))
		commit(t, c.primary, tbl, key, "y")
		want[key] = "y"
		if err := c.primary.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	f2 := repl.NewFollower(repl.Config{
		Dir:       f.Dir(),
		Addr:      "primary:7707",
		DBOptions: testOpts(),
		Dialer:    c.net.Dialer("reseed2"),
		Logf:      t.Logf,
	})
	defer f2.Close()
	if err := f2.Sync(ctx); err != nil {
		t.Fatalf("re-seed sync: %v", err)
	}
	if _, reseeds := f2.Stats(); reseeds != 1 {
		t.Fatalf("second follower base reseeds = %d, want 1", reseeds)
	}
	wantEqual(t, "replica after re-seed", state(t, f2.DB(), "kv", immortaldb.Timestamp{}), want)
}
