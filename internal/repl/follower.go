package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
	"immortaldb/internal/obs"
	"immortaldb/internal/storage/vfs"
	"immortaldb/internal/wal"
	"immortaldb/internal/wire"
)

// Follower observability: ingest volume and re-seed count; the applied-LSN
// horizon gauge lives in the engine (immortaldb_replica_applied_lsn).
var (
	obsIngested = obs.NewCounter("immortald_follower_ingested_bytes_total", "Log bytes ingested from the primary.")
	obsResyncs  = obs.NewCounter("immortald_follower_base_resyncs_total", "Times the follower was re-seeded from a base snapshot.")
)

// ReplError is an error frame the primary answered a replication request
// with, classified by its wire code.
type ReplError struct {
	Code byte
	Msg  string
}

func (e *ReplError) Error() string { return "repl: primary: " + e.Msg }

// Retryable reports a transient condition (a retention gap, a drain): the
// follower reconnects and the new handshake sorts it out.
func (e *ReplError) Retryable() bool { return e.Code == wire.CodeRetryable }

// Terminal session errors: Run stops retrying when one of these surfaces,
// because reconnecting to the same upstream can never fix them.
var (
	// ErrPromoted: this follower's engine was promoted to primary; the
	// replication loop is permanently done.
	ErrPromoted = errors.New("repl: follower promoted to primary")
	// ErrStaleUpstream: the upstream's promotion epoch is behind what this
	// follower has already replicated — it is a deposed (zombie) primary and
	// nothing it ships can be trusted.
	ErrStaleUpstream = errors.New("repl: upstream epoch behind local epoch, refusing deposed primary")
	// ErrDiverged: the local log extends past the upstream's durable end, so
	// the byte-prefix invariant is broken (e.g. retargeted at a primary that
	// was promoted from a less-caught-up position). The replica must be
	// re-seeded.
	ErrDiverged = errors.New("repl: local log ahead of upstream durable end, reseed required")
)

// Config tunes a Follower. Dir and Addr are required.
type Config struct {
	// Dir is the local replica directory: the byte-identical log copy, page
	// file and timestamp table live here.
	Dir string
	// Addr is the primary's address.
	Addr string
	// DBOptions configure the local replica engine. The FS, page size and
	// clock should match the primary's. RetainWAL makes the follower keep
	// its full log copy, turning it into a RestoreAsOf source.
	DBOptions *immortaldb.Options
	// Dialer overrides how the primary is reached (default: TCP). The
	// simulation harness injects its in-memory network here.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// Timeline supplies the clock for deadlines, polling and backoff
	// (default: the real clock).
	Timeline itime.Timeline
	// PollInterval is how long a caught-up follower sleeps between pulls
	// (default 100ms).
	PollInterval time.Duration
	// MaxPull is the per-pull response byte budget (default 256 KiB).
	MaxPull uint32
	// OpTimeout bounds one request/response round trip (default 30s).
	OpTimeout time.Duration
	// DialTimeout bounds one dial attempt (default 5s).
	DialTimeout time.Duration
	// RetryBackoff is the reconnect delay after a failed session; it doubles
	// per consecutive failure, capped at 16x (default 200ms).
	RetryBackoff time.Duration
	// Logf, when set, receives follower diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Timeline == nil {
		c.Timeline = itime.Real()
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * time.Millisecond
	}
	if c.MaxPull == 0 {
		c.MaxPull = 256 << 10
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 200 * time.Millisecond
	}
	return c
}

// Follower replicates one primary into one local directory and keeps the
// local replica engine's horizon advancing. Sync performs one catch-up pass
// (opening — or re-seeding — the local database as needed); Run streams
// continuously with reconnect-and-backoff. The replica engine behind DB()
// serves reads the whole time, except across a base re-seed, which replaces
// the database wholesale.
type Follower struct {
	cfg Config

	mu     sync.Mutex
	db     *immortaldb.DB
	closed bool

	// ingestMu serializes log ingestion against Promote and Retarget, so a
	// seal or trim never races a chunk landing in the local log.
	ingestMu sync.Mutex

	promoted atomic.Bool

	ingested atomic.Uint64
	resyncs  atomic.Uint64

	// lastFlushed is the primary's durable end as last observed (handshake,
	// or local ingested end when a caught-up pull confirms parity); LagBytes
	// measures the horizon against it.
	lastFlushed atomic.Uint64
}

// NewFollower returns a follower; no I/O happens until Sync or Run.
func NewFollower(cfg Config) *Follower {
	return &Follower{cfg: cfg.withDefaults()}
}

// DB returns the local replica engine, nil before the first successful
// open. The pointer is replaced — and the old engine closed — when a base
// re-seed rebuilds the directory; callers serving reads should re-fetch it
// after ErrClosed.
func (f *Follower) DB() *immortaldb.DB {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.db
}

// Horizon returns the replica's replication horizon (zero before open).
func (f *Follower) Horizon() immortaldb.ReplicaHorizon {
	if db := f.DB(); db != nil {
		return db.Horizon()
	}
	return immortaldb.ReplicaHorizon{}
}

// Stats reports total bytes ingested and base re-seeds performed.
func (f *Follower) Stats() (ingestedBytes, baseResyncs uint64) {
	return f.ingested.Load(), f.resyncs.Load()
}

// LagBytes estimates how far the replica's applied horizon trails the
// primary's durable log end, in bytes: the distance to the durable end as of
// the last handshake, or zero once a caught-up pull confirmed parity.
func (f *Follower) LagBytes() uint64 {
	applied := f.Horizon().AppliedLSN
	if flushed := f.lastFlushed.Load(); flushed > applied {
		return flushed - applied
	}
	return 0
}

// Dir returns the local replica directory.
func (f *Follower) Dir() string { return f.cfg.Dir }

// Addr returns the upstream primary address currently targeted.
func (f *Follower) Addr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Addr
}

// Close stops serving and closes the local database. Concurrent Sync/Run
// calls fail on their next step.
func (f *Follower) Close() error {
	f.mu.Lock()
	db := f.db
	f.db = nil
	f.closed = true
	f.mu.Unlock()
	if db != nil {
		return db.Close()
	}
	return nil
}

func (f *Follower) setDB(db *immortaldb.DB) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("repl: follower closed")
	}
	f.db = db
	return nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Sync performs one synchronization pass: connect, re-seed from a base
// snapshot if the primary says the local position fell behind retained
// history, then ingest and apply until caught up with the primary's durable
// log end. On return DB() is non-nil and the horizon covers everything the
// primary had flushed when the catch-up chunk drained.
func (f *Follower) Sync(ctx context.Context) error {
	return f.session(ctx, true)
}

// Run streams continuously until ctx is done: sessions that fail (network
// fault, primary restart, retention gap) are retried with exponential
// backoff, re-seeding when required. Returns ctx.Err() on cancellation, or a
// terminal error (ErrPromoted, ErrStaleUpstream, ErrDiverged) that retrying
// cannot fix.
func (f *Follower) Run(ctx context.Context) error {
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := f.session(ctx, false)
		if err == nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			failures = 0 // clean hangup (primary drain); reconnect promptly
		} else {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			if errors.Is(err, ErrPromoted) || errors.Is(err, ErrStaleUpstream) || errors.Is(err, ErrDiverged) {
				return err
			}
			failures++
			f.logf("repl: session error (attempt %d): %v", failures, err)
		}
		backoff := f.cfg.RetryBackoff << min(failures, 4)
		if err := f.cfg.Timeline.Sleep(ctx, backoff); err != nil {
			return err
		}
	}
}

// Promote turns the follower's engine into a read-write primary: finishes
// redo over everything ingested, seals the local log at the applied
// boundary, and fences the deposed primary's TID/LSN space under a bumped
// epoch logged in a promotion record. The replication loop (Run) terminates
// with ErrPromoted at its next step; the engine behind DB() keeps serving
// throughout and accepts writes once this returns. Returns the new epoch.
func (f *Follower) Promote() (uint64, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, errors.New("repl: follower closed")
	}
	db := f.db
	f.mu.Unlock()
	if db == nil {
		return 0, errors.New("repl: no local database to promote")
	}
	f.ingestMu.Lock()
	defer f.ingestMu.Unlock()
	f.promoted.Store(true) // fence the pull loop before the seal
	epoch, err := db.Promote()
	if err != nil && !errors.Is(err, immortaldb.ErrNotReplica) {
		f.promoted.Store(false) // promotion did not happen; keep replicating
	}
	return epoch, err
}

// Retarget re-points the follower at a new primary after a promotion
// elsewhere. The local log is trimmed back to the applied horizon so the
// next session resumes from a position the new primary's log is guaranteed
// to share: complete-record boundaries are byte-identical across replicas of
// the same stream, and a correctly chosen promotion candidate (the most
// caught-up follower) sealed at or past every peer's applied position. The
// current session, if any, ends on its next pull (connection addressed at
// the old primary) and the retry dials the new address.
func (f *Follower) Retarget(addr string) error {
	f.ingestMu.Lock()
	defer f.ingestMu.Unlock()
	f.mu.Lock()
	f.cfg.Addr = addr
	db := f.db
	f.mu.Unlock()
	if db == nil {
		return nil
	}
	if _, err := db.ReplicaApply(0); err != nil {
		return err
	}
	_, err := db.Log().TrimIngestTail(wal.LSN(db.Horizon().AppliedLSN))
	return err
}

// session runs one connection: hello, optional base install, then the pull
// loop. With once set it returns nil at the first caught-up (empty) chunk.
func (f *Follower) session(ctx context.Context, once bool) error {
	if f.promoted.Load() {
		return ErrPromoted
	}
	db, err := f.openLocal()
	if err != nil {
		return err
	}

	nc, err := f.dial(ctx)
	if err != nil {
		return err
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	from := uint64(0)
	if db != nil {
		from = uint64(db.Log().End())
	}
	f.deadline(nc)
	if err := wire.WriteFrame(nc, wire.MsgReplHello, wire.AppendReplHello(nil, wire.ReplHello{From: from})); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		return err
	}
	if typ == wire.MsgError {
		code, msg := wire.ParseError(payload)
		return &ReplError{Code: code, Msg: msg}
	}
	if typ != wire.MsgReplHelloOK {
		return fmt.Errorf("repl: unexpected handshake response %#x", typ)
	}
	ok, err := wire.ParseReplHelloOK(payload)
	if err != nil {
		return err
	}
	if db != nil {
		if local := db.Epoch(); ok.Epoch < local {
			return fmt.Errorf("%w: upstream epoch %d, local %d", ErrStaleUpstream, ok.Epoch, local)
		}
		if ok.Flags&wire.ReplFlagBase == 0 && ok.Flushed < from {
			return fmt.Errorf("%w: local end %d, upstream durable end %d", ErrDiverged, from, ok.Flushed)
		}
	}
	f.lastFlushed.Store(ok.Flushed)

	if ok.Flags&wire.ReplFlagBase != 0 {
		// The primary cannot serve our position from its log: rebuild the
		// directory from a streamed base snapshot. The old engine (if any)
		// closes first — its files are about to be wiped.
		if db != nil {
			f.mu.Lock()
			f.db = nil
			f.mu.Unlock()
			if err := db.Close(); err != nil {
				return err
			}
			db = nil
		}
		f.resyncs.Add(1)
		obsResyncs.Inc()
		if err := f.installBase(ctx, nc, br); err != nil {
			return err
		}
		if db, err = f.openLocal(); err != nil {
			return err
		}
		if db == nil {
			return errors.New("repl: follower closed during base install")
		}
	} else if db == nil {
		return errors.New("repl: no local database and primary did not offer a base snapshot")
	}

	if _, err := db.ReplicaApply(0); err != nil {
		return err
	}
	return f.pullLoop(ctx, nc, br, db, once)
}

// pullLoop drives steady-state streaming on an established session.
func (f *Follower) pullLoop(ctx context.Context, nc net.Conn, br *bufio.Reader, db *immortaldb.DB, once bool) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if f.promoted.Load() {
			return ErrPromoted
		}
		ch, err := f.pull(nc, br, db)
		if err != nil {
			return err
		}
		if len(ch.Data) == 0 {
			// Caught up with the primary's durable prefix.
			f.lastFlushed.Store(uint64(db.Log().End()))
			if once {
				return nil
			}
			if err := f.cfg.Timeline.Sleep(ctx, f.cfg.PollInterval); err != nil {
				return err
			}
			continue
		}
		if err := f.ingest(db, ch); err != nil {
			return err
		}
	}
}

// ingest lands one chunk in the local log and applies it, serialized against
// Promote and Retarget so a seal or trim never interleaves with new bytes.
func (f *Follower) ingest(db *immortaldb.DB, ch wire.SegChunk) error {
	f.ingestMu.Lock()
	defer f.ingestMu.Unlock()
	if f.promoted.Load() {
		return ErrPromoted
	}
	if err := db.Log().IngestChunk(wal.ShipChunk{
		Seq:      ch.Seq,
		SegStart: wal.LSN(ch.SegStart),
		At:       wal.LSN(ch.At),
		Data:     ch.Data,
	}); err != nil {
		return err
	}
	f.ingested.Add(uint64(len(ch.Data)))
	obsIngested.Add(uint64(len(ch.Data)))
	_, err := db.ReplicaApply(0)
	return err
}

// pull performs one MsgReplPull round trip.
func (f *Follower) pull(nc net.Conn, br *bufio.Reader, db *immortaldb.DB) (wire.SegChunk, error) {
	req := wire.ReplPull{Max: f.cfg.MaxPull}
	if db != nil {
		req.From = uint64(db.Log().End())
		req.Applied = db.Horizon().AppliedLSN
	}
	f.deadline(nc)
	if err := wire.WriteFrame(nc, wire.MsgReplPull, wire.AppendReplPull(nil, req)); err != nil {
		return wire.SegChunk{}, err
	}
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		return wire.SegChunk{}, err
	}
	switch typ {
	case wire.MsgSegChunk:
		return wire.ParseSegChunk(payload)
	case wire.MsgError:
		code, msg := wire.ParseError(payload)
		return wire.SegChunk{}, &ReplError{Code: code, Msg: msg}
	default:
		return wire.SegChunk{}, fmt.Errorf("repl: unexpected pull response %#x", typ)
	}
}

// installBase receives a streamed base snapshot plus enough of the log
// suffix to cover its checkpoint record, leaving the directory ready for
// OpenReplica. The connection is mid-session: the primary answers each pull
// with base parts until BaseDone, then with segment chunks.
func (f *Follower) installBase(ctx context.Context, nc net.Conn, br *bufio.Reader) error {
	var bi *immortaldb.BaseInstaller
	var ckptLSN, start uint64
	abort := func(err error) error {
		if bi != nil {
			bi.Abort()
		}
		return err
	}

parts:
	for {
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		f.deadline(nc)
		req := wire.ReplPull{Max: f.cfg.MaxPull}
		if err := wire.WriteFrame(nc, wire.MsgReplPull, wire.AppendReplPull(nil, req)); err != nil {
			return abort(err)
		}
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			return abort(err)
		}
		if typ == wire.MsgError {
			code, msg := wire.ParseError(payload)
			return abort(&ReplError{Code: code, Msg: msg})
		}
		if typ != wire.MsgBasePart {
			return abort(fmt.Errorf("repl: unexpected base response %#x", typ))
		}
		part, err := wire.ParseBasePart(payload)
		if err != nil {
			return abort(err)
		}
		switch part.Kind {
		case wire.BaseMeta:
			if bi != nil {
				return abort(errors.New("repl: duplicate base meta part"))
			}
			ckptLSN = part.Meta.CkptLSN
			bi, err = immortaldb.InstallBase(f.cfg.Dir, f.cfg.DBOptions, int(part.Meta.PageSize), part.Meta.NumPages, part.Meta.Meta)
			if err != nil {
				return err
			}
		case wire.BasePages:
			if bi == nil {
				return abort(errors.New("repl: base pages before meta"))
			}
			for _, pg := range part.Pages {
				if err := bi.WritePage(pg.ID, pg.Img); err != nil {
					return abort(err)
				}
			}
		case wire.BasePTT:
			if bi == nil {
				return abort(errors.New("repl: base PTT before meta"))
			}
			for _, e := range part.Entries {
				err := bi.PutPTT(immortaldb.PTTEntry{
					TID: immortaldb.TID(e.TID),
					TS:  itime.DecodeTimestamp(e.TS[:]),
				})
				if err != nil {
					return abort(err)
				}
			}
		case wire.BaseDone:
			if bi == nil {
				return abort(errors.New("repl: base done before meta"))
			}
			start = part.Start
			break parts
		default:
			return abort(fmt.Errorf("repl: unknown base part kind %d", part.Kind))
		}
	}

	// Ingest the log suffix until the snapshot's checkpoint record is
	// covered; the first chunk carries the segment coordinates the local log
	// copy is re-rooted at.
	for bi.End() <= ckptLSN {
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		f.deadline(nc)
		req := wire.ReplPull{From: bi.End(), Max: f.cfg.MaxPull}
		if req.From == 0 {
			req.From = start
		}
		if err := wire.WriteFrame(nc, wire.MsgReplPull, wire.AppendReplPull(nil, req)); err != nil {
			return abort(err)
		}
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			return abort(err)
		}
		if typ == wire.MsgError {
			code, msg := wire.ParseError(payload)
			return abort(&ReplError{Code: code, Msg: msg})
		}
		if typ != wire.MsgSegChunk {
			return abort(fmt.Errorf("repl: unexpected suffix response %#x", typ))
		}
		ch, err := wire.ParseSegChunk(payload)
		if err != nil {
			return abort(err)
		}
		if len(ch.Data) == 0 {
			// The primary's flushed end always covers its own checkpoint
			// record, so running dry before ckptLSN is a protocol violation.
			return abort(fmt.Errorf("repl: log stream dry at %d, checkpoint record at %d not covered", bi.End(), ckptLSN))
		}
		if bi.End() == 0 {
			if ch.At != start {
				return abort(fmt.Errorf("repl: log stream starts at %d, want %d", ch.At, start))
			}
			if err := bi.StartLog(ch.Seq, ch.SegStart); err != nil {
				return abort(err)
			}
		}
		if err := bi.Ingest(wal.ShipChunk{
			Seq:      ch.Seq,
			SegStart: wal.LSN(ch.SegStart),
			At:       wal.LSN(ch.At),
			Data:     ch.Data,
		}); err != nil {
			return abort(err)
		}
		f.ingested.Add(uint64(len(ch.Data)))
		obsIngested.Add(uint64(len(ch.Data)))
	}
	return bi.Finish(ckptLSN)
}

// openLocal returns the current replica engine, opening (or creating) the
// local directory on first use. A directory left unusable by a crashed base
// install is wiped: the primary will re-seed it.
func (f *Follower) openLocal() (*immortaldb.DB, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errors.New("repl: follower closed")
	}
	if f.db != nil {
		db := f.db
		f.mu.Unlock()
		return db, nil
	}
	f.mu.Unlock()

	db, err := immortaldb.OpenReplica(f.cfg.Dir, f.cfg.DBOptions)
	if err != nil {
		f.logf("repl: local open failed (%v); wiping %s for re-seed", err, f.cfg.Dir)
		if werr := f.wipeDir(); werr != nil {
			return nil, fmt.Errorf("repl: wipe after failed open: %w (open error: %v)", werr, err)
		}
		return nil, nil // no local engine; hello with From=0 requests a seed
	}
	if err := f.setDB(db); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// wipeDir removes every file under the replica directory.
func (f *Follower) wipeDir() error {
	var fsys vfs.FS
	if f.cfg.DBOptions != nil && f.cfg.DBOptions.FS != nil {
		fsys = f.cfg.DBOptions.FS
	} else {
		if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
			return err
		}
		fsys = vfs.OS()
	}
	// Trailing separator: List takes a file-name prefix, and a bare
	// directory path would list the parent instead.
	names, err := fsys.List(f.cfg.Dir + string(filepath.Separator))
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := fsys.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

func (f *Follower) dial(ctx context.Context) (net.Conn, error) {
	if f.cfg.Dialer != nil {
		dctx, cancel := context.WithTimeout(ctx, f.cfg.DialTimeout)
		defer cancel()
		return f.cfg.Dialer(dctx, f.cfg.Addr)
	}
	return (&net.Dialer{Timeout: f.cfg.DialTimeout}).DialContext(ctx, "tcp", f.cfg.Addr)
}

// deadline arms the per-round-trip I/O deadline on the follower's timeline.
func (f *Follower) deadline(nc net.Conn) {
	nc.SetDeadline(f.cfg.Timeline.Now().Add(f.cfg.OpTimeout))
}
