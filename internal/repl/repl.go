// Package repl is the replication layer: WAL segment shipping from a
// primary to read replicas over the wire protocol, and the follower loop
// that ingests the stream, runs continuous redo, and serves AS OF reads at
// the replication horizon.
//
// The transport is the query protocol's frame format, pull-based and
// strictly request/response: a follower opens with MsgReplHello carrying
// the LSN it wants to resume from (the end of its local log copy), then
// drives the transfer with MsgReplPull requests. The primary answers each
// pull with one MsgSegChunk — a checksummed span of its durable log — or,
// while the follower is being re-seeded from a base snapshot, one
// MsgBasePart. A pull's applied-LSN field doubles as the horizon
// acknowledgement feeding the primary's lag gauge, so no unsolicited frames
// ever flow and the protocol runs unchanged over the simulated network.
//
// Because the follower's log is a byte-identical prefix of the primary's
// (wal.IngestChunk), every failure mode reduces to something the engine
// already handles: a follower crash is ordinary crash recovery, a dropped
// connection resumes by pulling from the local log's end, and a follower
// that fell behind the primary's retained history is re-seeded from a fuzzy
// base snapshot made consistent by the log suffix.
package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"immortaldb"
	"immortaldb/internal/obs"
	"immortaldb/internal/wal"
	"immortaldb/internal/wire"
)

// Observability: shipped volume, connected followers, and the lag gauge a
// primary operator watches — the worst follower's distance behind the
// durable log end, in bytes, as of its last horizon ack.
var (
	obsShippedBytes  = obs.NewCounter("immortald_repl_shipped_bytes_total", "Log bytes shipped to followers in segment chunks.")
	obsBaseSnapshots = obs.NewCounter("immortald_repl_base_snapshots_total", "Base snapshots streamed to re-seed followers that fell behind retained history.")
	obsFollowers     = obs.NewGauge("immortald_repl_followers", "Replication connections currently being served.")
	obsMaxLag        = obs.NewGauge("immortald_repl_max_lag_bytes", "Largest follower lag: primary durable end minus the follower's last acked applied LSN.")
)

// basePartTarget is the byte budget one base-snapshot part aims for; a pull
// whose Max is smaller wins. One part must still always carry at least one
// page, or a page larger than the budget would stall the transfer.
const basePartTarget = 128 << 10

// basePTTBatch caps timestamp-table entries per BasePTT part.
const basePTTBatch = 4096

// Shipper serves a primary's log to followers. One Shipper per served
// database; it tracks each connection's acked horizon for the lag gauge.
// The zero value is not usable — construct with NewShipper.
type Shipper struct {
	db *immortaldb.DB

	mu     sync.Mutex
	nextID uint64
	acked  map[uint64]uint64
}

// NewShipper returns a shipper over db.
func NewShipper(db *immortaldb.DB) *Shipper {
	return &Shipper{db: db, acked: make(map[uint64]uint64)}
}

// ConnOpts carries the hosting server's serving parameters into one
// replication connection.
type ConnOpts struct {
	// Now reads the server's clock (virtual in simulation).
	Now func() time.Time
	// IdleTimeout bounds the wait for the next pull; followers poll well
	// inside it even when fully caught up.
	IdleTimeout time.Duration
	// RequestTimeout bounds one response write.
	RequestTimeout time.Duration
	// Draining, when it reports true, makes the connection hang up cleanly
	// at the next pull boundary (the follower reconnects elsewhere/later).
	Draining func() bool
}

// Stats reports the number of connected followers and the largest lag in
// bytes (primary durable end minus the smallest acked applied LSN).
func (s *Shipper) Stats() (followers int, maxLag uint64) {
	flushed := uint64(s.db.Log().FlushedLSN())
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.acked {
		if lag := flushed - a; a < flushed && lag > maxLag {
			maxLag = lag
		}
	}
	return len(s.acked), maxLag
}

// register adds a connection to the ack table.
func (s *Shipper) register() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.acked[id] = 0
	obsFollowers.Set(int64(len(s.acked)))
	return id
}

func (s *Shipper) unregister(id uint64) {
	s.mu.Lock()
	delete(s.acked, id)
	obsFollowers.Set(int64(len(s.acked)))
	s.mu.Unlock()
	s.updateLag()
}

// ack records a follower's applied LSN and refreshes the lag gauge.
func (s *Shipper) ack(id, applied uint64) {
	s.mu.Lock()
	// A reconnecting follower can briefly ack an older LSN than a previous
	// connection did; keep the gauge monotone per connection only.
	if applied > s.acked[id] {
		s.acked[id] = applied
	}
	s.mu.Unlock()
	s.updateLag()
}

func (s *Shipper) updateLag() {
	if !obs.Enabled() {
		return
	}
	_, lag := s.Stats()
	obsMaxLag.Set(int64(lag))
}

// ServeConn runs one replication connection to completion: the follower's
// MsgReplHello payload has already been read by the hosting server's
// handshake dispatch. Returns nil on a clean hangup (EOF, drain).
func (s *Shipper) ServeConn(nc net.Conn, br *bufio.Reader, helloPayload []byte, opt ConnOpts) error {
	hello, err := wire.ParseReplHello(helloPayload)
	if err != nil {
		writeReplError(nc, wire.CodeGeneric, err)
		return err
	}
	from := hello.From
	if from < uint64(wal.FirstLSN) {
		from = uint64(wal.FirstLSN) // 0 = "from the beginning"
	}
	log := s.db.Log()

	ok := wire.ReplHelloOK{
		Start:         from,
		FirstRetained: uint64(log.FirstRetained()),
		Flushed:       uint64(log.FlushedLSN()),
		Epoch:         s.db.Epoch(),
	}
	var base *baseSender
	if from < ok.FirstRetained {
		// The follower's position predates retained history: seed it with a
		// base snapshot plus the log suffix from the snapshot's start.
		snap, err := s.db.NewBaseSnapshot()
		if err != nil {
			writeReplError(nc, wire.CodeGeneric, err)
			return err
		}
		obsBaseSnapshots.Inc()
		base = &baseSender{snap: snap, nextPage: snap.FirstPage()}
		ok.Flags = wire.ReplFlagBase
		ok.Start = snap.LogStart
		ok.FirstRetained = snap.LogStart
		ok.Flushed = uint64(log.FlushedLSN())
	}
	defer func() {
		if base != nil {
			base.snap.Close()
		}
	}()

	id := s.register()
	defer s.unregister(id)

	nc.SetWriteDeadline(opt.Now().Add(opt.RequestTimeout))
	if err := wire.WriteFrame(nc, wire.MsgReplHelloOK, wire.AppendReplHelloOK(nil, ok)); err != nil {
		return err
	}

	for {
		if opt.Draining() {
			return nil
		}
		nc.SetReadDeadline(opt.Now().Add(opt.IdleTimeout))
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			if opt.Draining() {
				return nil // drain poke woke the idle read
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err // EOF on follower hangup lands here; callers treat io.EOF as clean
		}
		if typ != wire.MsgReplPull {
			err := fmt.Errorf("repl: unexpected frame %#x on replication connection", typ)
			writeReplError(nc, wire.CodeGeneric, err)
			return err
		}
		pull, err := wire.ParseReplPull(payload)
		if err != nil {
			writeReplError(nc, wire.CodeGeneric, err)
			return err
		}
		s.ack(id, pull.Applied)
		nc.SetWriteDeadline(opt.Now().Add(opt.RequestTimeout))

		if base != nil && !base.done() {
			part, err := base.next(pull.Max)
			if err != nil {
				writeReplError(nc, wire.CodeGeneric, err)
				return err
			}
			if err := wire.WriteFrame(nc, wire.MsgBasePart, part); err != nil {
				return err
			}
			continue
		}
		if base != nil && pull.From > base.snap.CkptLSN {
			// The follower has ingested past the snapshot's checkpoint record,
			// so its install can finish even if this connection dies; release
			// the truncation pin.
			base.snap.Close()
			base = nil
		}

		maxBytes := int(pull.Max)
		if maxBytes <= 0 {
			maxBytes = basePartTarget
		}
		ch, err := log.ShipRead(wal.LSN(pull.From), maxBytes)
		if err != nil {
			if errors.Is(err, wal.ErrShipGap) {
				// The pulled position fell out of retained history mid-stream
				// (a checkpoint truncated past it). The follower reconnects
				// and its new hello is answered with a base snapshot.
				writeReplError(nc, wire.CodeRetryable, err)
				return nil
			}
			writeReplError(nc, wire.CodeGeneric, err)
			return err
		}
		if obs.Enabled() && len(ch.Data) > 0 {
			obsShippedBytes.Add(uint64(len(ch.Data)))
		}
		frame := wire.AppendSegChunk(nil, wire.SegChunk{
			Seq:      ch.Seq,
			SegStart: uint64(ch.SegStart),
			At:       uint64(ch.At),
			Data:     ch.Data,
		})
		if err := wire.WriteFrame(nc, wire.MsgSegChunk, frame); err != nil {
			return err
		}
	}
}

// writeReplError best-effort sends an error frame.
func writeReplError(nc net.Conn, code byte, err error) {
	wire.WriteFrame(nc, wire.MsgError, wire.ErrorPayload(code, err.Error()))
}

// baseSender streams a base snapshot one part per pull: meta, then page
// batches, then timestamp-table batches, then the done marker carrying the
// log stream's start LSN.
type baseSender struct {
	snap     *immortaldb.BaseSnapshot
	stage    int // 0 meta, 1 pages, 2 ptt, 3 done, 4 finished
	nextPage uint64
	nextPTT  int
}

func (b *baseSender) done() bool { return b.stage > 3 }

func (b *baseSender) next(budget uint32) ([]byte, error) {
	target := int(budget)
	if target <= 0 || target > basePartTarget {
		target = basePartTarget
	}
	switch b.stage {
	case 0:
		b.stage = 1
		return wire.AppendBaseMeta(nil, wire.BaseMetaPart{
			PageSize: uint32(b.snap.PageSize),
			NumPages: b.snap.NumPages,
			CkptLSN:  b.snap.CkptLSN,
			Meta:     b.snap.Meta,
		}), nil
	case 1:
		var pages []wire.BasePage
		size := 0
		for b.nextPage < b.snap.NumPages && (size < target || len(pages) == 0) {
			img, err := b.snap.Page(b.nextPage)
			if err != nil {
				return nil, err
			}
			pages = append(pages, wire.BasePage{ID: b.nextPage, Img: img})
			size += len(img)
			b.nextPage++
		}
		if b.nextPage >= b.snap.NumPages {
			b.stage = 2
		}
		if len(pages) == 0 {
			return b.next(budget) // no data pages at all; fall through to PTT
		}
		return wire.AppendBasePages(nil, pages), nil
	case 2:
		var entries []wire.BasePTTEntry
		for b.nextPTT < len(b.snap.PTT) && len(entries) < basePTTBatch {
			e := b.snap.PTT[b.nextPTT]
			we := wire.BasePTTEntry{TID: uint64(e.TID)}
			e.TS.Encode(we.TS[:])
			entries = append(entries, we)
			b.nextPTT++
		}
		if b.nextPTT >= len(b.snap.PTT) {
			b.stage = 3
		}
		if len(entries) == 0 {
			return b.next(budget)
		}
		return wire.AppendBasePTT(nil, entries), nil
	case 3:
		b.stage = 4
		return wire.AppendBaseDone(nil, b.snap.LogStart), nil
	}
	return nil, errors.New("repl: base snapshot already fully sent")
}
