// Package fault drives the crash-matrix recovery harness: it runs a fixed,
// fully deterministic workload against a database backed by the simulated
// disk (vfs.SimFS), crashes the disk at a chosen I/O operation, reboots with
// torn and lost sectors, recovers, and verifies the survivor against a
// reference model.
//
// Determinism contract: for a given Seed, the sequence of database calls —
// and therefore the sequence of disk operations — is identical regardless of
// CrashAt. CrashAt only chooses where the run is cut short. That is what
// makes "crash at operation N" a replayable coordinate: a failing point can
// be re-run in isolation with the same seed.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
	"immortaldb/internal/storage/vfs"
)

// Config selects a workload instance and a crash point.
type Config struct {
	// Seed drives the workload generator and the simulated disk's torn-write
	// coin flips.
	Seed int64
	// CrashAt crashes the simulated disk at the CrashAt-th I/O operation
	// (1-based). 0 runs the workload to a clean Close, which is how callers
	// learn the total operation count.
	CrashAt int64
	// Txns is the number of transactions to attempt (default 60).
	Txns int
	// Tiered enables tiered history storage and runs a CompactHistory pass
	// after every checkpoint, so crash points land inside cold-run writes,
	// manifest flips, chain cuts and old-page reclamation.
	Tiered bool
}

// Event is one write inside a transaction.
type Event struct {
	Key, Val string
	Del      bool
}

// CommitRecord is one successfully committed transaction with its timestamp.
type CommitRecord struct {
	TS     immortaldb.Timestamp
	Events []Event
}

// RunResult captures everything Verify needs: the crashed filesystem, the
// committed history (the model), and the single maybe-committed transaction.
type RunResult struct {
	Config Config
	FS     *vfs.SimFS

	// Committed lists transactions whose Commit returned nil, in commit
	// order. Recovery must preserve every one of them.
	Committed []CommitRecord
	// Pending holds the events of a transaction whose Commit returned an
	// error. Its commit record may or may not have reached the disk, so
	// recovery may legitimately resolve it either way ("presumed nothing"
	// is wrong: the record could have hit the log just before the crash).
	Pending []Event

	// OpenCompleted is false when the crash hit during initial Open /
	// CreateTable, before any transaction ran.
	OpenCompleted bool
	// Clean is true when the workload ran to a successful Close (no crash).
	Clean bool
	// Err is the first error the workload observed (the injected crash, on a
	// healthy engine).
	Err error
	// Trace is the tail of the disk-operation log captured at crash time
	// (Reboot and verification overwrite the filesystem's live trace).
	Trace []vfs.Op
}

const (
	dirName   = "crashsim"
	tableName = "t"
	numKeys   = 12
)

// workloadStart is the fixed simulated wall-clock origin.
var workloadStart = time.Date(2006, 4, 3, 12, 0, 0, 0, time.UTC)

func options(fs *vfs.SimFS) *immortaldb.Options {
	return &immortaldb.Options{
		PageSize:       1024,
		CacheFrames:    8,
		Clock:          itime.NewSimClock(workloadStart),
		FS:             fs,
		FullPageWrites: true,
		// Small segments force frequent WAL rotation, so crash points and
		// sustained faults land inside segment creation and switch-over too.
		WALSegmentSize: 4096,
	}
}

// optionsFor is options plus, when tiered is set, the tiered-history knob.
// The compactor interval stays zero either way: matrices call CompactHistory
// at fixed workload points so the I/O sequence remains deterministic.
func optionsFor(fs *vfs.SimFS, tiered bool) *immortaldb.Options {
	o := options(fs)
	o.TieredHistory = tiered
	return o
}

// Run executes the deterministic workload for cfg, crashing at cfg.CrashAt.
func Run(cfg Config) *RunResult {
	if cfg.Txns == 0 {
		cfg.Txns = 60
	}
	fs := vfs.NewSim(cfg.Seed)
	if cfg.CrashAt > 0 {
		fs.SetCrashAt(cfg.CrashAt)
	}
	res := &RunResult{Config: cfg, FS: fs}

	opts := optionsFor(fs, cfg.Tiered)
	clock := opts.Clock.(*itime.SimClock)
	db, err := immortaldb.Open(dirName, opts)
	if err != nil {
		res.Err = err
		res.Trace = fs.Trace()
		return res
	}
	abandon := func(err error) *RunResult {
		res.Err = err
		res.Trace = fs.Trace()
		db.Close() // best effort; the disk has usually crashed under it
		return res
	}
	tbl, err := db.CreateTable(tableName, immortaldb.TableOptions{Immortal: true})
	if err != nil {
		return abandon(err)
	}
	res.OpenCompleted = true

	// The generator is a function of Seed alone. Every rng draw below happens
	// in a fixed order, so two runs with the same seed issue identical I/O.
	rng := rand.New(rand.NewSource(cfg.Seed*7919 + 17))
	for i := 0; i < cfg.Txns; i++ {
		// Advance the clock by 0–2 ticks: zero keeps consecutive commits on
		// one wall tick, exercising the sequence-number tie-break.
		if adv := rng.Intn(3); adv > 0 {
			clock.Advance(time.Duration(adv) * itime.TickDuration)
		}
		if i%8 == 7 {
			if err := db.Checkpoint(); err != nil {
				return abandon(err)
			}
			if cfg.Tiered {
				// The checkpoint just flush-stamped everything, so history
				// pages are migratable; crash points now land inside run
				// writes, the manifest flip, chain cuts and page frees.
				if err := db.CompactHistory(); err != nil {
					return abandon(err)
				}
			}
		}
		tx, err := db.Begin(immortaldb.Serializable)
		if err != nil {
			return abandon(err)
		}
		rollback := rng.Intn(7) == 0
		n := 1 + rng.Intn(4)
		var evs []Event
		for j := 0; j < n; j++ {
			key := fmt.Sprintf("k%02d", rng.Intn(numKeys))
			if rng.Intn(5) == 0 {
				if err := tx.Delete(tbl, []byte(key)); err != nil {
					tx.Rollback()
					return abandon(err)
				}
				evs = append(evs, Event{Key: key, Del: true})
			} else {
				val := fmt.Sprintf("v%03d.%d.%s", i, j, strings.Repeat("x", 20+rng.Intn(80)))
				if err := tx.Set(tbl, []byte(key), []byte(val)); err != nil {
					tx.Rollback()
					return abandon(err)
				}
				evs = append(evs, Event{Key: key, Val: val})
			}
		}
		if rollback {
			if err := tx.Rollback(); err != nil {
				return abandon(err)
			}
			continue
		}
		if err := tx.Commit(); err != nil {
			// The commit record may have reached the log before the crash.
			res.Pending = evs
			return abandon(err)
		}
		res.Committed = append(res.Committed, CommitRecord{TS: db.Now(), Events: evs})
	}
	if err := db.Close(); err != nil {
		return abandon(err)
	}
	res.Clean = true
	return res
}

func apply(state map[string]string, evs []Event) {
	for _, e := range evs {
		if e.Del {
			delete(state, e.Key)
		} else {
			state[e.Key] = e.Val
		}
	}
}

func clone(state map[string]string) map[string]string {
	out := make(map[string]string, len(state))
	for k, v := range state {
		out[k] = v
	}
	return out
}

func diff(got, want map[string]string) string {
	keys := map[string]struct{}{}
	for k := range got {
		keys[k] = struct{}{}
	}
	for k := range want {
		keys[k] = struct{}{}
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	var b strings.Builder
	for _, k := range ordered {
		g, gok := got[k]
		w, wok := want[k]
		if gok == wok && g == w {
			continue
		}
		fmt.Fprintf(&b, "  %s: got %q(%v) want %q(%v)\n", k, g, gok, w, wok)
	}
	return b.String()
}

func equal(got, want map[string]string) bool {
	if len(got) != len(want) {
		return false
	}
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

func scanAt(db *immortaldb.DB, tbl *immortaldb.Table, at immortaldb.Timestamp) (map[string]string, error) {
	tx, err := db.BeginAsOfTS(at)
	if err != nil {
		return nil, err
	}
	defer tx.Commit()
	state := map[string]string{}
	err = tx.Scan(tbl, nil, nil, func(k, v []byte) bool {
		state[string(k)] = string(v)
		return true
	})
	return state, err
}

func scanCurrent(db *immortaldb.DB, tbl *immortaldb.Table) (map[string]string, error) {
	tx, err := db.Begin(immortaldb.Serializable)
	if err != nil {
		return nil, err
	}
	defer tx.Commit()
	state := map[string]string{}
	err = tx.Scan(tbl, nil, nil, func(k, v []byte) bool {
		state[string(k)] = string(v)
		return true
	})
	return state, err
}

// Verify reboots the crashed disk, reopens the database (running recovery),
// and checks the three invariant classes:
//
//  1. Durability/atomicity: the current state equals the replay of every
//     committed transaction — plus, optionally, the single maybe-committed
//     one. Nothing else (no partial transactions, no rolled-back data).
//  2. History: AS OF every committed timestamp reproduces the model's state
//     at that timestamp. The maybe-committed transaction cannot disturb
//     these: its timestamp, if it got one durably, is strictly later.
//  3. Forward life: a sentinel transaction commits, a checkpoint (which
//     flush-stamps recovered pages and hardens the PTT) succeeds, and a
//     second clean reopen re-verifies everything — proving the recovered
//     pages are CRC-clean and the timestamp table is stampable again.
func Verify(res *RunResult) error {
	fs := res.FS
	fs.Reboot()

	db, err := immortaldb.Open(dirName, optionsFor(fs, res.Config.Tiered))
	if err != nil {
		if !res.OpenCompleted && len(res.Committed) == 0 && res.Pending == nil {
			// Creation window: the database never finished coming into
			// existence and holds no committed data; a clean refusal to open
			// is acceptable.
			return nil
		}
		return fmt.Errorf("reopen after recovery failed: %w", err)
	}
	defer db.Close()

	tbl, err := db.Table(tableName)
	if err != nil {
		if len(res.Committed) == 0 {
			// The crash hit before (or during) CreateTable became durable and
			// nothing ever committed; an absent table is a valid outcome.
			return nil
		}
		return fmt.Errorf("table lost despite %d commits: %w", len(res.Committed), err)
	}

	base := map[string]string{}
	for _, c := range res.Committed {
		apply(base, c.Events)
	}
	withPending := clone(base)
	apply(withPending, res.Pending)

	cur, err := scanCurrent(db, tbl)
	if err != nil {
		return fmt.Errorf("current-state scan: %w", err)
	}
	pendingApplied := false
	switch {
	case equal(cur, base):
	case res.Pending != nil && equal(cur, withPending):
		pendingApplied = true
	default:
		return fmt.Errorf("current state matches neither committed model nor committed+pending\nvs committed:\n%svs committed+pending:\n%s",
			diff(cur, base), diff(cur, withPending))
	}

	checkHistory := func(db *immortaldb.DB, tbl *immortaldb.Table) error {
		state := map[string]string{}
		for i, c := range res.Committed {
			apply(state, c.Events)
			got, err := scanAt(db, tbl, c.TS)
			if err != nil {
				return fmt.Errorf("AS OF commit %d (ts %v): %w", i, c.TS, err)
			}
			if !equal(got, state) {
				return fmt.Errorf("AS OF commit %d (ts %v) diverges:\n%s", i, c.TS, diff(got, state))
			}
		}
		return nil
	}
	if err := checkHistory(db, tbl); err != nil {
		return err
	}

	// Forward life: commit, checkpoint (flush-stamps + hardens PTT + GC),
	// close, reopen, re-verify.
	err = db.Update(func(tx *immortaldb.Tx) error {
		return tx.Set(tbl, []byte("sentinel"), []byte("alive"))
	})
	if err != nil {
		return fmt.Errorf("post-recovery commit: %w", err)
	}
	if err := db.Checkpoint(); err != nil {
		return fmt.Errorf("post-recovery checkpoint: %w", err)
	}
	if res.Config.Tiered {
		// Migration after recovery exercises cold reads over runs written on
		// a disk image that may hold a torn migration from before the crash.
		if err := db.CompactHistory(); err != nil {
			return fmt.Errorf("post-recovery history compaction: %w", err)
		}
	}
	if err := db.Close(); err != nil {
		return fmt.Errorf("post-recovery close: %w", err)
	}

	db2, err := immortaldb.Open(dirName, optionsFor(fs, res.Config.Tiered))
	if err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	defer db2.Close()
	tbl2, err := db2.Table(tableName)
	if err != nil {
		return fmt.Errorf("table lost on second reopen: %w", err)
	}
	want := clone(base)
	if pendingApplied {
		want = clone(withPending)
	}
	want["sentinel"] = "alive"
	cur2, err := scanCurrent(db2, tbl2)
	if err != nil {
		return fmt.Errorf("second current-state scan: %w", err)
	}
	if !equal(cur2, want) {
		return fmt.Errorf("state after sentinel+checkpoint+reopen diverges:\n%s", diff(cur2, want))
	}
	if err := checkHistory(db2, tbl2); err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	return nil
}

// Describe renders a failure coordinate with enough context to replay it.
func Describe(res *RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d crash-point=%d ops-executed=%d committed=%d pending=%v open-completed=%v\n",
		res.Config.Seed, res.Config.CrashAt, res.FS.OpCount(), len(res.Committed), res.Pending != nil, res.OpenCompleted)
	fmt.Fprintf(&b, "replay: go test -run TestCrashMatrix -seed=%d -point=%d\n", res.Config.Seed, res.Config.CrashAt)
	fmt.Fprintf(&b, "last disk ops before crash:\n")
	for _, op := range res.Trace {
		fmt.Fprintf(&b, "  %s\n", op.String())
	}
	return b.String()
}

// Crashed reports whether err (or the filesystem) reflects the injected
// crash, as opposed to an unexpected engine failure.
func Crashed(res *RunResult) bool {
	return res.FS.Crashed() || errors.Is(res.Err, vfs.ErrCrashed)
}
