package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
	"immortaldb/internal/storage/vfs"
)

// The concurrent crash matrix drives N goroutines through the group-commit
// pipeline while the simulated disk crashes underneath them. Unlike the
// serial matrix, the disk-operation sequence is NOT deterministic — the
// interleaving of committers (and which of them lands the shared fsync)
// varies run to run — so there is no precomputed reference model. Instead
// each run records, at runtime, exactly which transactions were acked
// (Commit returned nil, with the commit timestamp the engine reported) and
// which single transaction per worker was in Commit when the crash hit.
// Verification is then self-contained:
//
//   - every acked transaction must survive recovery in full, and an AS OF
//     query at its recorded commit timestamp must reproduce it — a txn whose
//     commit record missed the shared fsync must therefore never have been
//     acked;
//   - a transaction whose Commit returned an error is all-or-nothing: its
//     writes are either all present (the record reached the log just before
//     the crash) or all absent;
//   - nothing else survives (no ghosts, no partial transactions).
//
// Workers write disjoint key ranges ("g<W>." prefixes), which keeps the
// per-worker reference model exact while still exercising the shared parts
// of the pipeline: the commit sequencer, the group-commit dispatcher and its
// shared fsyncs, the tree latches, and the timestamp tables.

// ConcurrentConfig selects a concurrent workload instance and a crash point.
type ConcurrentConfig struct {
	// Seed drives the per-worker generators and the disk's torn-write coin
	// flips.
	Seed int64
	// CrashAfter crashes the disk at the CrashAfter-th I/O operation counted
	// from the end of setup (Open + CreateTable), so every point lands in
	// the concurrent commit phase. 0 runs to a clean Close.
	CrashAfter int64
	// Workers is the number of committing goroutines (default 4).
	Workers int
	// TxnsPerWorker is the number of transactions each worker attempts
	// (default 10).
	TxnsPerWorker int
	// CommitEvery, when non-zero, is passed to the engine as the
	// group-commit max-delay knob.
	CommitEvery time.Duration
	// Tiered enables tiered history storage; worker 0 runs a CompactHistory
	// pass right after its mid-run checkpoint, so cold-run writes, the
	// manifest flip, and chain cuts race the other committers.
	Tiered bool
}

// WorkerTxn is one transaction attempted by a worker.
type WorkerTxn struct {
	Worker int
	TID    immortaldb.TID
	Events []Event
	// TS is the commit timestamp the engine reported, set only for acked
	// transactions.
	TS immortaldb.Timestamp
}

// ConcurrentResult captures a run of the concurrent workload.
type ConcurrentResult struct {
	Config   ConcurrentConfig
	FS       *vfs.SimFS
	SetupOps int64

	// Acked[w] lists worker w's transactions whose Commit returned nil, in
	// the worker's program order (which is also commit-timestamp order:
	// a worker's next commit starts only after its previous one returned).
	Acked [][]WorkerTxn
	// Pending[w] is worker w's transaction whose Commit returned an error,
	// or nil. At most one per worker: workers stop at the first failure.
	Pending []*WorkerTxn
	// Rolled[w] lists the TIDs of worker w's deliberately rolled-back txns.
	Rolled [][]immortaldb.TID

	// Clean is true when every worker finished and Close succeeded.
	Clean bool
	// Errs records the first error each worker observed (nil if none).
	Errs []error
	// Trace is the tail of the disk-operation log captured at crash time.
	Trace []vfs.Op
}

const (
	concKeysPerWorker = 6
	concTableName     = "ct"
	concDirName       = "crashsim-conc"
)

func concKey(worker int, rng *rand.Rand) string {
	return fmt.Sprintf("g%d.k%02d", worker, rng.Intn(concKeysPerWorker))
}

// RunConcurrent executes the concurrent workload for cfg, crashing at
// cfg.CrashAfter operations past setup.
func RunConcurrent(cfg ConcurrentConfig) *ConcurrentResult {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.TxnsPerWorker == 0 {
		cfg.TxnsPerWorker = 10
	}
	fs := vfs.NewSim(cfg.Seed)
	res := &ConcurrentResult{
		Config:  cfg,
		FS:      fs,
		Acked:   make([][]WorkerTxn, cfg.Workers),
		Pending: make([]*WorkerTxn, cfg.Workers),
		Rolled:  make([][]immortaldb.TID, cfg.Workers),
		Errs:    make([]error, cfg.Workers),
	}

	opts := optionsFor(fs, cfg.Tiered)
	opts.CommitEvery = cfg.CommitEvery
	clock := opts.Clock.(*itime.SimClock)
	// Workers advance the clock implicitly: one tick every few reads keeps
	// commit timestamps spread over wall ticks while still exercising the
	// same-tick sequence-number tie-break.
	clock.AutoStep = 1
	clock.AutoEvery = 3

	db, err := immortaldb.Open(concDirName, opts)
	if err != nil {
		res.Errs[0] = err
		res.Trace = fs.Trace()
		return res
	}
	tbl, err := db.CreateTable(concTableName, immortaldb.TableOptions{Immortal: true})
	if err != nil {
		res.Errs[0] = err
		res.Trace = fs.Trace()
		db.Close()
		return res
	}
	res.SetupOps = fs.OpCount()
	if cfg.CrashAfter > 0 {
		fs.SetCrashAt(res.SetupOps + cfg.CrashAfter)
	}

	var (
		mu sync.Mutex // guards Acked/Pending/Errs across workers
		wg sync.WaitGroup
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*104729 + int64(w)*7919 + 1))
			fail := func(err error) {
				mu.Lock()
				res.Errs[w] = err
				mu.Unlock()
			}
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				if w == 0 && i == cfg.TxnsPerWorker/2 {
					// One checkpoint races the committers: page flushing,
					// flush-stamping, and PTT hardening all run against the
					// group-commit pipeline.
					if err := db.Checkpoint(); err != nil {
						fail(err)
						return
					}
					if cfg.Tiered {
						// Migrate checkpoint-stamped history to the cold tier
						// while the other workers keep committing.
						if err := db.CompactHistory(); err != nil {
							fail(err)
							return
						}
					}
				}
				tx, err := db.Begin(immortaldb.Serializable)
				if err != nil {
					fail(err)
					return
				}
				n := 1 + rng.Intn(3)
				var evs []Event
				aborted := false
				for j := 0; j < n; j++ {
					key := concKey(w, rng)
					if rng.Intn(5) == 0 {
						if err := tx.Delete(tbl, []byte(key)); err != nil {
							tx.Rollback()
							fail(err)
							return
						}
						evs = append(evs, Event{Key: key, Del: true})
					} else {
						val := fmt.Sprintf("w%d.t%d.%d.%s", w, i, j, strings.Repeat("y", 10+rng.Intn(60)))
						if err := tx.Set(tbl, []byte(key), []byte(val)); err != nil {
							tx.Rollback()
							fail(err)
							return
						}
						evs = append(evs, Event{Key: key, Val: val})
					}
				}
				if rng.Intn(8) == 0 {
					aborted = true
					if err := tx.Rollback(); err != nil {
						fail(err)
						return
					}
				}
				if aborted {
					mu.Lock()
					res.Rolled[w] = append(res.Rolled[w], tx.ID())
					mu.Unlock()
					continue
				}
				if err := tx.Commit(); err != nil {
					// The commit record may or may not have reached the
					// durable log; recovery may resolve it either way.
					mu.Lock()
					res.Pending[w] = &WorkerTxn{Worker: w, TID: tx.ID(), Events: evs}
					res.Errs[w] = err
					mu.Unlock()
					return
				}
				mu.Lock()
				res.Acked[w] = append(res.Acked[w], WorkerTxn{Worker: w, TID: tx.ID(), Events: evs, TS: tx.CommitTS()})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	res.Trace = fs.Trace()

	failed := false
	for _, err := range res.Errs {
		if err != nil {
			failed = true
			break
		}
	}
	if failed {
		db.Close() // best effort; the disk has usually crashed under it
		return res
	}
	if err := db.Close(); err != nil {
		res.Errs[0] = err
		return res
	}
	res.Clean = true
	return res
}

// ConcCrashed reports whether the run was cut short by the injected crash,
// as opposed to an unexpected engine failure (or no failure at all).
func ConcCrashed(res *ConcurrentResult) bool {
	return res.FS.Crashed()
}

// workerPrefix is the key prefix owned by worker w.
func workerPrefix(w int) string { return fmt.Sprintf("g%d.", w) }

// VerifyConcurrent reboots the crashed disk, recovers, and checks the
// concurrent-run invariants described in the package comment.
func VerifyConcurrent(res *ConcurrentResult) error {
	fs := res.FS
	fs.Reboot()

	opts := optionsFor(fs, res.Config.Tiered)
	opts.CommitEvery = res.Config.CommitEvery
	db, err := immortaldb.Open(concDirName, opts)
	if err != nil {
		return fmt.Errorf("reopen after recovery failed: %w", err)
	}
	defer db.Close()
	tbl, err := db.Table(concTableName)
	if err != nil {
		return fmt.Errorf("table lost (setup completed before the crash was armed): %w", err)
	}

	// Per-worker reference models from the runtime-recorded acks.
	base := make([]map[string]string, res.Config.Workers)
	withPending := make([]map[string]string, res.Config.Workers)
	for w := 0; w < res.Config.Workers; w++ {
		base[w] = map[string]string{}
		for _, txn := range res.Acked[w] {
			apply(base[w], txn.Events)
		}
		withPending[w] = clone(base[w])
		if res.Pending[w] != nil {
			apply(withPending[w], res.Pending[w].Events)
		}
	}

	// Current state, partitioned by worker prefix. Keys outside every
	// worker's range are ghosts.
	partition := func(state map[string]string) ([]map[string]string, error) {
		parts := make([]map[string]string, res.Config.Workers)
		for w := range parts {
			parts[w] = map[string]string{}
		}
		for k, v := range state {
			placed := false
			for w := 0; w < res.Config.Workers; w++ {
				if strings.HasPrefix(k, workerPrefix(w)) {
					parts[w][k] = v
					placed = true
					break
				}
			}
			if !placed && k != "sentinel" {
				return nil, fmt.Errorf("ghost key %q belongs to no worker", k)
			}
		}
		return parts, nil
	}

	checkCurrent := func(db *immortaldb.DB, tbl *immortaldb.Table, wantSentinel bool) error {
		cur, err := scanCurrent(db, tbl)
		if err != nil {
			return fmt.Errorf("current-state scan: %w", err)
		}
		if _, ok := cur["sentinel"]; ok != wantSentinel {
			return fmt.Errorf("sentinel present=%v, want %v", ok, wantSentinel)
		}
		parts, err := partition(cur)
		if err != nil {
			return err
		}
		for w := 0; w < res.Config.Workers; w++ {
			switch {
			case equal(parts[w], base[w]):
			case res.Pending[w] != nil && equal(parts[w], withPending[w]):
				// The maybe-committed transaction made it; fold it into the
				// model so history checks and the second reopen agree.
				base[w] = withPending[w]
			default:
				return fmt.Errorf("worker %d state matches neither its %d acked txns nor acked+pending\nvs acked:\n%svs acked+pending:\n%s",
					w, len(res.Acked[w]), diff(parts[w], base[w]), diff(parts[w], withPending[w]))
			}
		}
		return nil
	}
	if err := checkCurrent(db, tbl, false); err != nil {
		return err
	}

	// Acked transactions survive with their recorded timestamps: AS OF each
	// ack's commit TS, the worker's partition equals the replay of its acked
	// prefix. Workers' ranges are disjoint, so other workers never perturb
	// the partition; a worker's own maybe-committed txn has a strictly later
	// timestamp than all of its acks.
	checkHistory := func(db *immortaldb.DB, tbl *immortaldb.Table) error {
		for w := 0; w < res.Config.Workers; w++ {
			state := map[string]string{}
			for i, txn := range res.Acked[w] {
				apply(state, txn.Events)
				got, err := scanAt(db, tbl, txn.TS)
				if err != nil {
					return fmt.Errorf("worker %d AS OF ack %d (ts %v): %w", w, i, txn.TS, err)
				}
				parts, err := partition(got)
				if err != nil {
					return fmt.Errorf("worker %d AS OF ack %d (ts %v): %w", w, i, txn.TS, err)
				}
				if !equal(parts[w], state) {
					return fmt.Errorf("worker %d acked txn %d (ts %v) not fully recovered:\n%s",
						w, i, txn.TS, diff(parts[w], state))
				}
			}
		}
		return nil
	}
	if err := checkHistory(db, tbl); err != nil {
		return err
	}

	// Forward life: the recovered database must keep working — commit,
	// checkpoint (flush-stamps recovered pages, hardens the PTT), reopen,
	// re-verify.
	err = db.Update(func(tx *immortaldb.Tx) error {
		return tx.Set(tbl, []byte("sentinel"), []byte("alive"))
	})
	if err != nil {
		return fmt.Errorf("post-recovery commit: %w", err)
	}
	if err := db.Checkpoint(); err != nil {
		return fmt.Errorf("post-recovery checkpoint: %w", err)
	}
	if res.Config.Tiered {
		if err := db.CompactHistory(); err != nil {
			return fmt.Errorf("post-recovery history compaction: %w", err)
		}
	}
	if err := db.Close(); err != nil {
		return fmt.Errorf("post-recovery close: %w", err)
	}

	db2, err := immortaldb.Open(concDirName, opts)
	if err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	defer db2.Close()
	tbl2, err := db2.Table(concTableName)
	if err != nil {
		return fmt.Errorf("table lost on second reopen: %w", err)
	}
	if err := checkCurrent(db2, tbl2, true); err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	if err := checkHistory(db2, tbl2); err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	return nil
}

// DescribeConcurrent renders a failure coordinate. Concurrent runs are not
// bit-replayable (the interleaving varies), but the seed and crash point
// localize the failure and the trace shows the final disk operations.
func DescribeConcurrent(res *ConcurrentResult) string {
	var b strings.Builder
	acked := 0
	for _, a := range res.Acked {
		acked += len(a)
	}
	pending := 0
	for _, p := range res.Pending {
		if p != nil {
			pending++
		}
	}
	fmt.Fprintf(&b, "seed=%d crash-after=%d setup-ops=%d ops-executed=%d acked=%d pending=%d clean=%v\n",
		res.Config.Seed, res.Config.CrashAfter, res.SetupOps, res.FS.OpCount(), acked, pending, res.Clean)
	fmt.Fprintf(&b, "rerun (not bit-identical): go test -run TestCrashMatrixConcurrent -cseed=%d -cpoint=%d\n",
		res.Config.Seed, res.Config.CrashAfter)
	for w, err := range res.Errs {
		if err != nil {
			fmt.Fprintf(&b, "worker %d first error: %v\n", w, err)
		}
	}
	for w := range res.Acked {
		var tids []string
		for _, txn := range res.Acked[w] {
			tids = append(tids, fmt.Sprintf("%d@%v", txn.TID, txn.TS))
		}
		fmt.Fprintf(&b, "worker %d acked TIDs: %s", w, strings.Join(tids, " "))
		if res.Pending[w] != nil {
			fmt.Fprintf(&b, " pending=%d", res.Pending[w].TID)
		}
		if len(res.Rolled[w]) > 0 {
			fmt.Fprintf(&b, " rolled=%v", res.Rolled[w])
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "last disk ops before crash:\n")
	for _, op := range res.Trace {
		fmt.Fprintf(&b, "  %s\n", op.String())
	}
	return b.String()
}
