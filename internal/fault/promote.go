package fault

// The promotion crash matrix: a primary runs the deterministic workload
// while a follower replicates it to the end on a healthy disk. The primary
// then commits one more "zombie" transaction that is only half-shipped —
// the partition hit mid-frame — and the follower promotes on a disk armed
// to crash at the CrashAt-th I/O operation of the promotion itself: the
// final redo drain, the fence trim's physical truncation, the promote
// record append and fsync, or the promotion checkpoint. After the crash the
// follower reboots with torn/lost sectors and must finish the failover: if
// the promote record survived it reopens directly as a primary, otherwise
// it reopens as a replica and retries Promote. Either way the survivor must
// hold every commit that was durably acknowledged before the promotion, no
// byte of the zombie commit, an epoch strictly above the deposed primary's,
// and must accept and retain new writes across a further clean reopen.

import (
	"errors"
	"fmt"
	"strings"

	"immortaldb"
	"immortaldb/internal/storage/vfs"
)

// PromoteConfig selects a promotion crash-matrix cell.
type PromoteConfig struct {
	// Seed drives the primary workload and the follower disk's torn-write
	// coin flips.
	Seed int64
	// CrashAt crashes the follower's simulated disk at the CrashAt-th I/O
	// operation of the promotion (1-based, counted from the Promote call —
	// the replication phase runs on a healthy disk). 0 runs the promotion to
	// a clean close, which is how callers learn the operation count.
	CrashAt int64
	// Txns is the number of primary transactions to attempt (default 40).
	Txns int
}

// zombieKey/zombieVal identify the deposed primary's half-shipped commit: a
// key outside the workload's key space, with a value long enough that the
// partial final chunk can never contain the whole transaction.
const (
	zombieKey     = "zombie"
	zombieShipMax = 96
	zombiePadding = 300
	promotedKey   = "promoted"
	promotedVal   = "written-after-failover"
)

// PromoteRunResult captures one promotion crash-matrix run.
type PromoteRunResult struct {
	Config PromoteConfig

	// PrimaryDB is the deposed primary, left open for VerifyPromote (which
	// closes it). Its epoch is the bar the survivor must clear.
	PrimaryDB *immortaldb.DB
	// FollowerFS is the follower's crashed (or cleanly closed) disk.
	FollowerFS *vfs.SimFS

	// Committed is every commit shipped to and durably acknowledged by the
	// follower before the promotion; none of it may be missing from the
	// promoted survivor.
	Committed []CommitRecord

	// SyncedLSN/SyncedVisible form the follower's durably acknowledged
	// horizon at promotion start. The fence may land above it (the zombie's
	// complete update records) but never below.
	SyncedLSN     uint64
	SyncedVisible immortaldb.Timestamp

	// PromoteOps is how many disk operations a clean promotion issues — the
	// size of the crash matrix (CrashAt = 0 runs only).
	PromoteOps int64
	// PromotedEpoch is the epoch Promote returned, 0 if it never returned
	// one (the crash landed before the promote record was durable).
	PromotedEpoch uint64

	// Clean is true when the promotion and the follow-up write ran to a
	// clean close.
	Clean bool
	// Err is the first follower error (the injected crash, on a healthy
	// engine).
	Err error
	// Trace is the tail of the follower disk-operation log at crash time.
	Trace []vfs.Op
}

// RunPromote executes one promotion crash-matrix cell.
func RunPromote(cfg PromoteConfig) *PromoteRunResult {
	if cfg.Txns == 0 {
		cfg.Txns = 40
	}
	res := &PromoteRunResult{Config: cfg}

	pdb, committed, err := runReplicaPrimary(ReplicaConfig{Seed: cfg.Seed, Txns: cfg.Txns})
	if err != nil {
		res.Err = fmt.Errorf("primary workload: %w", err)
		return res
	}
	res.PrimaryDB = pdb
	res.Committed = committed

	ffs := vfs.NewSim(cfg.Seed ^ 0x9107)
	res.FollowerFS = ffs
	abandon := func(fdb *immortaldb.DB, err error) *PromoteRunResult {
		res.Err = err
		res.Trace = ffs.Trace()
		if fdb != nil {
			fdb.Close() // best effort; the disk has usually crashed under it
		}
		return res
	}

	// Phase 1, healthy disk: full catch-up. Everything shipped here was
	// fsynced and applied, so all of it counts as acknowledged.
	fdb, err := immortaldb.OpenReplica(replFollowerDir, options(ffs))
	if err != nil {
		return abandon(nil, err)
	}
	err = shipAll(pdb, fdb, func(h immortaldb.ReplicaHorizon) {
		res.SyncedLSN, res.SyncedVisible = h.AppliedLSN, h.MaxVisible
	})
	if err != nil {
		return abandon(fdb, fmt.Errorf("catch-up: %w", err))
	}

	// Phase 2: the zombie commit. The primary — already partitioned from the
	// cluster in this story — commits one more transaction, and only its
	// first zombieShipMax bytes reach the follower: a half-shipped frame the
	// dead primary will never finish. The padding guarantees the partial
	// chunk cannot contain the commit record, so no crash point may ever
	// resurrect it.
	if err := commitZombie(pdb); err != nil {
		return abandon(fdb, fmt.Errorf("zombie commit: %w", err))
	}
	ch, err := pdb.Log().ShipRead(fdb.Log().End(), zombieShipMax)
	if err != nil {
		return abandon(fdb, fmt.Errorf("zombie partial ship: %w", err))
	}
	if len(ch.Data) == 0 {
		return abandon(fdb, errors.New("zombie partial ship: primary produced no bytes"))
	}
	if err := fdb.Log().IngestChunk(ch); err != nil {
		return abandon(fdb, fmt.Errorf("zombie partial ingest: %w", err))
	}
	if err := fdb.Log().SyncIngested(); err != nil {
		return abandon(fdb, fmt.Errorf("zombie partial sync: %w", err))
	}
	if _, err := fdb.ReplicaApply(0); err != nil {
		return abandon(fdb, fmt.Errorf("zombie partial apply: %w", err))
	}

	// Phase 3: the promotion, with the crash armed relative to its first
	// disk operation so the whole matrix lands inside the failover path.
	startOps := ffs.OpCount()
	if cfg.CrashAt > 0 {
		ffs.SetCrashAt(startOps + cfg.CrashAt)
	}
	epoch, err := fdb.Promote()
	res.PromotedEpoch = epoch
	if err != nil {
		return abandon(fdb, err)
	}

	// Clean run: prove the survivor accepts writes, then close. These
	// operations sit inside the op count on purpose — the matrix must also
	// crash the first post-promotion commit and the final close.
	if err := commitPromoted(fdb); err != nil {
		return abandon(fdb, fmt.Errorf("post-promotion write: %w", err))
	}
	if err := fdb.Close(); err != nil {
		return abandon(nil, err)
	}
	res.PromoteOps = ffs.OpCount() - startOps
	res.Clean = true
	return res
}

// commitZombie commits the deposed primary's doomed transaction: one write
// to a key inside the workload space (so a resurrected commit corrupts the
// current-state comparison) and one to the zombie marker key.
func commitZombie(pdb *immortaldb.DB) error {
	tbl, err := pdb.Table(tableName)
	if err != nil {
		return err
	}
	tx, err := pdb.Begin(immortaldb.Serializable)
	if err != nil {
		return err
	}
	if err := tx.Set(tbl, []byte("k00"), []byte("ZOMBIE-"+strings.Repeat("z", zombiePadding))); err != nil {
		tx.Rollback()
		return err
	}
	if err := tx.Set(tbl, []byte(zombieKey), []byte(strings.Repeat("z", zombiePadding))); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// commitPromoted commits the survivor's first post-failover write.
func commitPromoted(db *immortaldb.DB) error {
	tbl, err := db.Table(tableName)
	if err != nil {
		return err
	}
	tx, err := db.Begin(immortaldb.Serializable)
	if err != nil {
		return err
	}
	if err := tx.Set(tbl, []byte(promotedKey), []byte(promotedVal)); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// VerifyPromote reboots the crashed follower disk and drives the failover to
// completion, checking the promotion contract:
//
//  1. The survivor reopens. If the promote record survived the crash it
//     reopens directly as a primary at the recorded epoch; otherwise it
//     reopens as a replica and a retried Promote must succeed.
//  2. The durably acknowledged horizon never regresses, and no acked commit
//     is lost: current state and AS OF every acked commit timestamp match
//     the model.
//  3. No zombie-primary commit survives: the half-shipped transaction the
//     deposed primary committed after the partition is absent in full.
//  4. The survivor's epoch is strictly above the deposed primary's, and its
//     sealed log refuses further ingestion from any old stream.
//  5. The survivor accepts a new write and retains it across a clean close
//     and reopen.
func VerifyPromote(res *PromoteRunResult) error {
	defer func() {
		if res.PrimaryDB != nil {
			res.PrimaryDB.Close()
		}
	}()
	fs := res.FollowerFS
	fs.Reboot()

	// Reopen as a replica first: that is always safe (recovery over the
	// local chain, writes still fenced) and recovery surfaces the durable
	// epoch, which decides the retry path.
	fdb, err := immortaldb.OpenReplica(replFollowerDir, options(fs))
	if err != nil {
		return fmt.Errorf("reopen after crash failed despite acked position %d: %w", res.SyncedLSN, err)
	}
	h0 := fdb.Horizon()
	if h0.AppliedLSN < res.SyncedLSN {
		fdb.Close()
		return fmt.Errorf("horizon regressed across crash: applied %d < acked %d", h0.AppliedLSN, res.SyncedLSN)
	}
	if h0.MaxVisible.Less(res.SyncedVisible) {
		fdb.Close()
		return fmt.Errorf("visibility regressed across crash: %v < acked %v", h0.MaxVisible, res.SyncedVisible)
	}

	sdb := fdb
	if durable := fdb.Epoch(); res.PromotedEpoch != 0 && durable >= res.PromotedEpoch {
		// The promote record survived: the node IS the primary; a supervisor
		// reopens it as one without promoting again.
		if err := fdb.Close(); err != nil {
			return fmt.Errorf("close before primary reopen: %w", err)
		}
		sdb, err = immortaldb.Open(replFollowerDir, options(fs))
		if err != nil {
			return fmt.Errorf("reopen as primary (durable epoch %d): %w", durable, err)
		}
		if got := sdb.Epoch(); got != durable {
			sdb.Close()
			return fmt.Errorf("epoch lost across primary reopen: %d != %d", got, durable)
		}
	} else {
		// The promotion never became durable: retry it, exactly as a
		// supervisor looping on -promote would.
		epoch, err := fdb.Promote()
		if err != nil {
			fdb.Close()
			return fmt.Errorf("promotion retry after crash: %w", err)
		}
		if epoch == 0 {
			fdb.Close()
			return fmt.Errorf("promotion retry returned epoch 0")
		}
	}
	defer sdb.Close()

	if sdb.IsReplica() {
		return fmt.Errorf("survivor still a replica after failover")
	}
	if se, pe := sdb.Epoch(), res.PrimaryDB.Epoch(); se <= pe {
		return fmt.Errorf("survivor epoch %d does not fence deposed primary epoch %d", se, pe)
	}
	// The sealed log must refuse any further shipped bytes — a retargeting
	// bug or a zombie shipper must not be able to graft onto this timeline.
	if ch, err := res.PrimaryDB.Log().ShipRead(0, 64); err == nil && len(ch.Data) > 0 {
		ship := ch
		ship.At = sdb.Log().End()
		if err := sdb.Log().IngestChunk(ship); err == nil {
			return fmt.Errorf("promoted survivor's log accepted an ingested chunk")
		}
	}

	if err := checkPromoted(sdb, res, false); err != nil {
		return err
	}

	// The survivor accepts new writes (TIDs re-based above the fence, so
	// this commit must not collide with anything replicated).
	if err := commitPromoted(sdb); err != nil {
		return fmt.Errorf("post-failover write refused: %w", err)
	}

	// Forward life: a clean close and reopen as primary preserves every
	// answer, the epoch, and the new write.
	epoch := sdb.Epoch()
	if err := sdb.Close(); err != nil {
		return fmt.Errorf("post-failover close: %w", err)
	}
	sdb, err = immortaldb.Open(replFollowerDir, options(fs))
	if err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	// The deferred Close above captured the first handle (already closed,
	// harmlessly); defer again for the fresh one.
	defer sdb.Close()
	if got := sdb.Epoch(); got != epoch {
		return fmt.Errorf("epoch lost across clean reopen: %d != %d", got, epoch)
	}
	if err := checkPromoted(sdb, res, true); err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	return nil
}

// checkPromoted verifies the survivor's state: the acked model, the AS OF
// answers, the zombie's absence, and (after the post-failover write) the new
// key's presence.
func checkPromoted(db *immortaldb.DB, res *PromoteRunResult, wantPromotedKey bool) error {
	tbl, err := db.Table(tableName)
	if err != nil {
		return fmt.Errorf("table missing on survivor: %w", err)
	}
	model := map[string]string{}
	for _, c := range res.Committed {
		apply(model, c.Events)
	}
	cur, err := scanReplica(db, tbl) // snapshot scan; works on a primary too
	if err != nil {
		return fmt.Errorf("current-state scan: %w", err)
	}
	if wantPromotedKey {
		model[promotedKey] = promotedVal
	} else if v, ok := cur[promotedKey]; ok {
		// The crash landed at or after the survivor's own first commit: a
		// write that persisted without being acked is allowed, but only with
		// the value the survivor actually wrote.
		if v != promotedVal {
			return fmt.Errorf("post-failover key holds foreign value %q", v)
		}
		model[promotedKey] = promotedVal
	}
	if v, ok := cur[zombieKey]; ok {
		return fmt.Errorf("zombie commit survived the fence: %s=%q", zombieKey, v)
	}
	if strings.HasPrefix(cur["k00"], "ZOMBIE-") {
		return fmt.Errorf("zombie overwrite of k00 survived the fence")
	}
	if !equal(cur, model) {
		return fmt.Errorf("survivor state diverges from acked model:\n%s", diff(cur, model))
	}
	state := map[string]string{}
	for i, c := range res.Committed {
		apply(state, c.Events)
		got, err := scanAt(db, tbl, c.TS)
		if err != nil {
			return fmt.Errorf("AS OF acked commit %d (ts %v): %w", i, c.TS, err)
		}
		if !equal(got, state) {
			return fmt.Errorf("AS OF acked commit %d (ts %v) diverges:\n%s", i, c.TS, diff(got, state))
		}
	}
	return nil
}

// DescribePromote renders a failure coordinate with enough context to replay.
func DescribePromote(res *PromoteRunResult) string {
	var b strings.Builder
	ops := int64(0)
	if res.FollowerFS != nil {
		ops = res.FollowerFS.OpCount()
	}
	fmt.Fprintf(&b, "seed=%d crash-point=%d follower-ops=%d acked-commits=%d acked-lsn=%d promoted-epoch=%d\n",
		res.Config.Seed, res.Config.CrashAt, ops, len(res.Committed), res.SyncedLSN, res.PromotedEpoch)
	fmt.Fprintf(&b, "replay: go test -run TestPromoteCrashMatrix -pmseed=%d -pmpoint=%d\n",
		res.Config.Seed, res.Config.CrashAt)
	fmt.Fprintf(&b, "last follower disk ops before crash:\n")
	for _, op := range res.Trace {
		fmt.Fprintf(&b, "  %s\n", op.String())
	}
	return b.String()
}

// PromoteCrashed reports whether the follower actually hit the injected
// crash, as opposed to finishing (or failing) without it.
func PromoteCrashed(res *PromoteRunResult) bool {
	return res.FollowerFS != nil && res.FollowerFS.Crashed()
}
