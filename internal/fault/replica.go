package fault

// The replica crash matrix: a primary runs the deterministic workload on a
// healthy simulated disk while a follower — on its own simulated disk, armed
// with a crash point — ingests the primary's WAL in small shipped chunks and
// applies them through bounded ReplicaApply steps. The crash lands inside
// chunk ingestion, the fsync of ingested segments, continuous redo, or the
// replica checkpoints the primary's checkpoint records drive. The follower
// then reboots with torn/lost sectors, reopens (ordinary recovery over the
// byte-identical log copy), resumes shipping from its own log end, and must
// end byte-exact with the primary: no durably acknowledged position ever
// regresses, and every primary commit is present — current state and AS OF
// every commit timestamp.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
	"immortaldb/internal/storage/vfs"
)

// ReplicaConfig selects a replica crash-matrix cell.
type ReplicaConfig struct {
	// Seed drives the primary workload and the follower disk's torn-write
	// coin flips.
	Seed int64
	// CrashAt crashes the follower's simulated disk at the CrashAt-th I/O
	// operation (1-based). 0 runs the replication to a clean close, which is
	// how callers learn the total operation count.
	CrashAt int64
	// Txns is the number of primary transactions to attempt (default 40).
	Txns int
}

// ReplicaRunResult captures one replica crash-matrix run.
type ReplicaRunResult struct {
	Config ReplicaConfig

	// PrimaryDB stays open for VerifyReplica, which resyncs the rebooted
	// follower from it and closes it.
	PrimaryDB *immortaldb.DB
	// FollowerFS is the follower's crashed (or cleanly closed) disk.
	FollowerFS *vfs.SimFS

	// Committed is the primary's commit history — the reference model. All
	// of it was acknowledged on the primary, so none of it may be missing
	// from a fully resynced follower.
	Committed []CommitRecord

	// SyncedLSN/SyncedVisible form the follower's last durably acknowledged
	// horizon: every byte below SyncedLSN was fsynced to the follower's
	// disk and applied before the crash. Recovery must come back at or
	// above this point — the horizon never regresses.
	SyncedLSN     uint64
	SyncedVisible immortaldb.Timestamp

	// Clean is true when replication ran to a clean follower close.
	Clean bool
	// Err is the first follower error (the injected crash, on a healthy
	// engine).
	Err error
	// Trace is the tail of the follower disk-operation log at crash time.
	Trace []vfs.Op
}

const (
	replPrimaryDir  = "replsim-p"
	replFollowerDir = "replsim-f"
	// replChunkMax keeps shipped chunks small so a sweep crosses many
	// ingest/sync/apply boundaries.
	replChunkMax = 1536
	// replApplyStep bounds each ReplicaApply call, pausing redo between
	// records so crash points land mid-redo, not only at chunk boundaries.
	replApplyStep = 3
)

// runReplicaPrimary executes the deterministic workload on a healthy disk
// and leaves the database open for shipping. It mirrors Run's generator —
// same rng stream shape, same clock advances — minus crash handling.
func runReplicaPrimary(cfg ReplicaConfig) (*immortaldb.DB, []CommitRecord, error) {
	fs := vfs.NewSim(cfg.Seed ^ 0x1ead)
	opts := options(fs)
	// The follower syncs from genesis: keep every segment.
	opts.RetainWAL = true
	clock := opts.Clock.(*itime.SimClock)
	db, err := immortaldb.Open(replPrimaryDir, opts)
	if err != nil {
		return nil, nil, err
	}
	tbl, err := db.CreateTable(tableName, immortaldb.TableOptions{Immortal: true})
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	var committed []CommitRecord
	rng := rand.New(rand.NewSource(cfg.Seed*7919 + 17))
	for i := 0; i < cfg.Txns; i++ {
		if adv := rng.Intn(3); adv > 0 {
			clock.Advance(time.Duration(adv) * itime.TickDuration)
		}
		if i%8 == 7 {
			if err := db.Checkpoint(); err != nil {
				db.Close()
				return nil, nil, err
			}
		}
		tx, err := db.Begin(immortaldb.Serializable)
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		rollback := rng.Intn(7) == 0
		n := 1 + rng.Intn(4)
		var evs []Event
		for j := 0; j < n; j++ {
			key := fmt.Sprintf("k%02d", rng.Intn(numKeys))
			if rng.Intn(5) == 0 {
				if err := tx.Delete(tbl, []byte(key)); err != nil {
					tx.Rollback()
					db.Close()
					return nil, nil, err
				}
				evs = append(evs, Event{Key: key, Del: true})
			} else {
				val := fmt.Sprintf("v%03d.%d.%s", i, j, strings.Repeat("x", 20+rng.Intn(80)))
				if err := tx.Set(tbl, []byte(key), []byte(val)); err != nil {
					tx.Rollback()
					db.Close()
					return nil, nil, err
				}
				evs = append(evs, Event{Key: key, Val: val})
			}
		}
		if rollback {
			if err := tx.Rollback(); err != nil {
				db.Close()
				return nil, nil, err
			}
			continue
		}
		if err := tx.Commit(); err != nil {
			db.Close()
			return nil, nil, err
		}
		committed = append(committed, CommitRecord{TS: db.Now(), Events: evs})
	}
	return db, committed, nil
}

// shipAll streams the primary's durable log into the follower from the
// follower's current end: ingest a chunk, fsync it, apply it in bounded redo
// steps. After each fully applied chunk the follower's horizon is durably
// backed, so the caller may record it as acknowledged.
func shipAll(pdb, fdb *immortaldb.DB, acked func(immortaldb.ReplicaHorizon)) error {
	plog, flog := pdb.Log(), fdb.Log()
	for {
		ch, err := plog.ShipRead(flog.End(), replChunkMax)
		if err != nil {
			return err
		}
		if len(ch.Data) == 0 {
			return nil
		}
		if err := flog.IngestChunk(ch); err != nil {
			return err
		}
		if err := flog.SyncIngested(); err != nil {
			return err
		}
		for {
			n, err := fdb.ReplicaApply(replApplyStep)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
		}
		if acked != nil {
			acked(fdb.Horizon())
		}
	}
}

// RunReplica executes one replica crash-matrix cell: primary workload on a
// healthy disk, follower replication on a disk that crashes at cfg.CrashAt.
func RunReplica(cfg ReplicaConfig) *ReplicaRunResult {
	if cfg.Txns == 0 {
		cfg.Txns = 40
	}
	res := &ReplicaRunResult{Config: cfg}

	pdb, committed, err := runReplicaPrimary(cfg)
	if err != nil {
		res.Err = fmt.Errorf("primary workload: %w", err)
		return res
	}
	res.PrimaryDB = pdb
	res.Committed = committed

	ffs := vfs.NewSim(cfg.Seed)
	if cfg.CrashAt > 0 {
		ffs.SetCrashAt(cfg.CrashAt)
	}
	res.FollowerFS = ffs
	abandon := func(fdb *immortaldb.DB, err error) *ReplicaRunResult {
		res.Err = err
		res.Trace = ffs.Trace()
		if fdb != nil {
			fdb.Close() // best effort; the disk has usually crashed under it
		}
		return res
	}

	fdb, err := immortaldb.OpenReplica(replFollowerDir, options(ffs))
	if err != nil {
		return abandon(nil, err)
	}
	err = shipAll(pdb, fdb, func(h immortaldb.ReplicaHorizon) {
		res.SyncedLSN, res.SyncedVisible = h.AppliedLSN, h.MaxVisible
	})
	if err != nil {
		return abandon(fdb, err)
	}
	if err := fdb.Close(); err != nil {
		return abandon(nil, err)
	}
	res.Clean = true
	return res
}

// wipeSim removes every follower file, mirroring the real follower's
// wipe-and-reseed reaction to a directory recovery cannot open.
func wipeSim(fs *vfs.SimFS) error {
	names, err := fs.List(replFollowerDir + string(filepath.Separator))
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := fs.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

// VerifyReplica reboots the crashed follower disk, reopens the replica
// (running ordinary recovery over the byte-identical log copy), and checks:
//
//  1. The horizon never regresses: the reopened replica is at or above the
//     last durably acknowledged position. (A follower whose directory was
//     torn before anything was acknowledged may instead wipe and reseed,
//     exactly as the live follower does.)
//  2. Resync completes from the follower's own log end — no acknowledged
//     byte is shipped twice, no gap is left.
//  3. No acked-on-primary commit is missing: the resynced current state
//     equals the model, and AS OF every primary commit timestamp reproduces
//     the model's state at that commit.
//  4. Forward life: the replica survives a clean close and reopen with the
//     same answers.
func VerifyReplica(res *ReplicaRunResult) error {
	defer func() {
		if res.PrimaryDB != nil {
			res.PrimaryDB.Close()
		}
	}()
	fs := res.FollowerFS
	fs.Reboot()

	fdb, err := immortaldb.OpenReplica(replFollowerDir, options(fs))
	if err != nil {
		if res.SyncedLSN != 0 {
			return fmt.Errorf("reopen after crash failed despite acked position %d: %w", res.SyncedLSN, err)
		}
		// Nothing was ever acknowledged: wipe and reseed from genesis, as
		// the live follower would.
		if werr := wipeSim(fs); werr != nil {
			return fmt.Errorf("wipe after failed reopen: %w (reopen error: %v)", werr, err)
		}
		fdb, err = immortaldb.OpenReplica(replFollowerDir, options(fs))
		if err != nil {
			return fmt.Errorf("reopen after wipe failed: %w", err)
		}
	}
	defer fdb.Close()

	h0 := fdb.Horizon()
	if h0.AppliedLSN < res.SyncedLSN {
		return fmt.Errorf("horizon regressed across crash: applied %d < acked %d", h0.AppliedLSN, res.SyncedLSN)
	}
	if h0.MaxVisible.Less(res.SyncedVisible) {
		return fmt.Errorf("visibility regressed across crash: %v < acked %v", h0.MaxVisible, res.SyncedVisible)
	}

	if err := shipAll(res.PrimaryDB, fdb, nil); err != nil {
		return fmt.Errorf("resync after crash: %w", err)
	}

	check := func(fdb *immortaldb.DB) error {
		tbl, err := fdb.Table(tableName)
		if err != nil {
			return fmt.Errorf("table missing after resync: %w", err)
		}
		model := map[string]string{}
		for _, c := range res.Committed {
			apply(model, c.Events)
		}
		cur, err := scanReplica(fdb, tbl)
		if err != nil {
			return fmt.Errorf("current-state scan: %w", err)
		}
		if !equal(cur, model) {
			return fmt.Errorf("resynced state diverges from primary model:\n%s", diff(cur, model))
		}
		state := map[string]string{}
		for i, c := range res.Committed {
			apply(state, c.Events)
			got, err := scanAt(fdb, tbl, c.TS)
			if err != nil {
				return fmt.Errorf("AS OF commit %d (ts %v): %w", i, c.TS, err)
			}
			if !equal(got, state) {
				return fmt.Errorf("AS OF commit %d (ts %v) diverges:\n%s", i, c.TS, diff(got, state))
			}
		}
		return nil
	}
	if err := check(fdb); err != nil {
		return err
	}

	// Forward life: a clean close and reopen must preserve every answer.
	if err := fdb.Close(); err != nil {
		return fmt.Errorf("post-resync close: %w", err)
	}
	fdb, err = immortaldb.OpenReplica(replFollowerDir, options(fs))
	if err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	if err := check(fdb); err != nil {
		return fmt.Errorf("second reopen: %w", err)
	}
	return nil
}

// scanReplica reads the replica's current state through a snapshot read at
// the replication horizon.
func scanReplica(db *immortaldb.DB, tbl *immortaldb.Table) (map[string]string, error) {
	tx, err := db.Begin(immortaldb.SnapshotIsolation)
	if err != nil {
		return nil, err
	}
	defer tx.Commit()
	state := map[string]string{}
	err = tx.Scan(tbl, nil, nil, func(k, v []byte) bool {
		state[string(k)] = string(v)
		return true
	})
	return state, err
}

// DescribeReplica renders a failure coordinate with enough context to replay.
func DescribeReplica(res *ReplicaRunResult) string {
	var b strings.Builder
	ops := int64(0)
	if res.FollowerFS != nil {
		ops = res.FollowerFS.OpCount()
	}
	fmt.Fprintf(&b, "seed=%d crash-point=%d follower-ops=%d committed=%d acked-lsn=%d\n",
		res.Config.Seed, res.Config.CrashAt, ops, len(res.Committed), res.SyncedLSN)
	fmt.Fprintf(&b, "replay: go test -run TestReplicaCrashMatrix -rseed=%d -rpoint=%d\n",
		res.Config.Seed, res.Config.CrashAt)
	fmt.Fprintf(&b, "last follower disk ops before crash:\n")
	for _, op := range res.Trace {
		fmt.Fprintf(&b, "  %s\n", op.String())
	}
	return b.String()
}

// ReplicaCrashed reports whether the follower actually hit the injected
// crash, as opposed to finishing (or failing) without it.
func ReplicaCrashed(res *ReplicaRunResult) bool {
	return res.FollowerFS != nil && res.FollowerFS.Crashed()
}
