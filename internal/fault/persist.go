package fault

// The error-persistence chaos matrix: where the crash matrix kills the
// machine at operation N, this harness keeps the machine RUNNING against a
// disk that starts failing at operation N — with EIO, ENOSPC or failing
// fsyncs that persist for a chosen number of operations and then clear (or
// never do). The engine must contain the fault: no acknowledged commit may
// be lost, no unacknowledged commit may half-apply, reads must keep working
// while the engine is degraded, and every write after degradation must fail
// with the typed ErrDegraded before any acknowledgement.
//
// A failing cell is a replayable coordinate:
//
//	go test -run TestPersistMatrix -pseed=<S> -pkind=<K> -ppoint=<N> -ppersist=<P>

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"immortaldb"
	"immortaldb/internal/itime"
	"immortaldb/internal/storage/vfs"
	"immortaldb/internal/wal"
)

// PersistKind is one named sustained-fault shape. The File/Op selectors aim
// the fault at a particular layer (WAL segments, page file, timestamp table)
// or at everything.
type PersistKind struct {
	Name  string
	Fault vfs.Fault
}

// PersistKinds enumerates the fault shapes the matrix sweeps. Names are the
// -pkind replay coordinates.
var PersistKinds = []PersistKind{
	{"wal-write-eio", vfs.Fault{Op: vfs.OpWrite, File: walSegPrefix, Err: vfs.ErrInjectedIO}},
	{"pages-write-eio", vfs.Fault{Op: vfs.OpWrite, File: "data.pages", Err: vfs.ErrInjectedIO}},
	{"ptt-write-eio", vfs.Fault{Op: vfs.OpWrite, File: "ptt.cow", Err: vfs.ErrInjectedIO}},
	{"any-write-enospc", vfs.Fault{Op: vfs.OpWrite, Err: vfs.ErrNoSpace}},
	{"truncate-enospc", vfs.Fault{Op: vfs.OpTruncate, Err: vfs.ErrNoSpace}},
	{"sync-eio", vfs.Fault{Op: vfs.OpSync, Err: vfs.ErrInjectedIO}},
	{"sync-fsyncgate", vfs.Fault{Op: vfs.OpSync, Err: vfs.ErrInjectedIO, DropDirty: true}},
	{"read-eio", vfs.Fault{Op: vfs.OpRead, Err: vfs.ErrInjectedIO}},
}

// HistPersistKinds are fault shapes aimed at the tiered history path:
// cold-run writes, the manifest double-write flip, and the reclamation of
// merged-away runs and migrated hot pages. Swept with PersistConfig.Tiered
// so the workload actually drives migrations and compactions. A compactor
// hitting any of these must trip the read-only latch without corrupting
// acked history; reclamation faults at worst leave garbage files that a
// later open sweeps.
var HistPersistKinds = []PersistKind{
	{"hist-run-write-eio", vfs.Fault{Op: vfs.OpWrite, File: ".run.", Err: vfs.ErrInjectedIO}},
	{"hist-write-enospc", vfs.Fault{Op: vfs.OpWrite, File: "hist.", Err: vfs.ErrNoSpace}},
	{"hist-manifest-sync-eio", vfs.Fault{Op: vfs.OpSync, File: ".manifest.", Err: vfs.ErrInjectedIO}},
	{"hist-reclaim-remove-eio", vfs.Fault{Op: vfs.OpRemove, File: "hist.", Err: vfs.ErrInjectedIO}},
}

// walSegPrefix matches WAL segment files ("wal.log.00000001", ...) but not
// the tiny control file, so the fault lands on record writes.
const walSegPrefix = "wal.log."

// KindByName resolves a -pkind replay coordinate from either kind list.
func KindByName(name string) (PersistKind, bool) {
	for _, k := range PersistKinds {
		if k.Name == name {
			return k, true
		}
	}
	for _, k := range HistPersistKinds {
		if k.Name == name {
			return k, true
		}
	}
	return PersistKind{}, false
}

// PersistConfig selects a workload instance and one matrix cell.
type PersistConfig struct {
	// Seed drives the workload generator, as in Config.
	Seed int64
	// Fault is the sustained fault injected before Open; its StartOp and
	// Count position the cell in the grid. A zero Op runs the baseline.
	Fault vfs.Fault
	// Txns is the number of transactions to attempt (default 24).
	Txns int
	// Tiered enables tiered history storage and runs CompactHistory after
	// every checkpoint, so sustained faults land inside cold-run writes,
	// manifest flips and run/page reclamation.
	Tiered bool
}

// PersistResult is the observable outcome of one cell: what was acked, what
// is in limbo, and how the engine behaved once the disk started failing.
type PersistResult struct {
	Config PersistConfig
	FS     *vfs.SimFS

	// Committed lists acknowledged transactions; recovery must preserve all
	// of them no matter how long the fault persisted.
	Committed []CommitRecord
	// Pending holds the events of the (at most one) transaction whose Commit
	// returned an error: all-or-nothing after reopen.
	Pending []Event
	// OpenCompleted is false when the fault prevented Open/CreateTable.
	OpenCompleted bool
	// Degraded records DB.Degraded() != nil at end of the writing phase.
	Degraded bool
	// DegradedScan and DegradedScanErr capture a live read taken WHILE the
	// engine was degraded (reads must keep working from clean state).
	DegradedScan    map[string]string
	DegradedScanErr error
	// DegradedWriteErr is the error a probing write observed while degraded;
	// it must be ErrDegraded, delivered before any acknowledgement.
	DegradedWriteErr error
	// Clean is true when every transaction committed and Close succeeded
	// (the fault cleared early, or never matched an operation).
	Clean bool
	// Err is the first error that cannot be explained by the injected fault
	// — an engine bug the verifier reports verbatim.
	Err error
}

// injected reports whether err traces back to the injected fault (directly,
// through the WAL's failure latch, or through the engine's degradation).
func injected(err error) bool {
	return errors.Is(err, vfs.ErrInjectedIO) ||
		errors.Is(err, vfs.ErrNoSpace) ||
		errors.Is(err, vfs.ErrInjectedSync) ||
		errors.Is(err, wal.ErrFailed) ||
		errors.Is(err, immortaldb.ErrDegraded)
}

// RunPersist executes the deterministic workload for cfg with the cell's
// sustained fault armed. It never calls t.Fatal itself: everything the
// verifier needs is in the result.
func RunPersist(cfg PersistConfig) *PersistResult {
	if cfg.Txns == 0 {
		cfg.Txns = 24
	}
	fs := vfs.NewSim(cfg.Seed)
	if cfg.Fault.Op != "" {
		fs.InjectFault(cfg.Fault)
	}
	res := &PersistResult{Config: cfg, FS: fs}

	opts := optionsFor(fs, cfg.Tiered)
	clock := opts.Clock.(*itime.SimClock)
	db, err := immortaldb.Open(dirName, opts)
	if err != nil {
		if !injected(err) {
			res.Err = fmt.Errorf("open: %w", err)
		}
		return res
	}
	tbl, err := db.CreateTable(tableName, immortaldb.TableOptions{Immortal: true})
	if err != nil {
		if !injected(err) {
			res.Err = fmt.Errorf("create table: %w", err)
		}
		db.Close()
		return res
	}
	res.OpenCompleted = true

	rng := rand.New(rand.NewSource(cfg.Seed*104729 + 71))
	degraded := func() bool { return db.Degraded() != nil }
loop:
	for i := 0; i < cfg.Txns && !degraded(); i++ {
		if adv := rng.Intn(3); adv > 0 {
			clock.Advance(time.Duration(adv) * itime.TickDuration)
		}
		if i%6 == 5 {
			if err := db.Checkpoint(); err != nil && !injected(err) {
				res.Err = fmt.Errorf("checkpoint: %w", err)
				break
			}
			if cfg.Tiered && !degraded() {
				if err := db.CompactHistory(); err != nil && !injected(err) {
					res.Err = fmt.Errorf("compact history: %w", err)
					break
				}
			}
		}
		tx, err := db.Begin(immortaldb.Serializable)
		if err != nil {
			res.Err = fmt.Errorf("begin: %w", err) // Begin does no I/O
			break
		}
		n := 1 + rng.Intn(4)
		var evs []Event
		for j := 0; j < n; j++ {
			key := fmt.Sprintf("k%02d", rng.Intn(numKeys))
			var werr error
			if rng.Intn(5) == 0 {
				werr = tx.Delete(tbl, []byte(key))
				evs = append(evs, Event{Key: key, Del: true})
			} else {
				val := fmt.Sprintf("v%03d.%d.%s", i, j, strings.Repeat("y", 20+rng.Intn(80)))
				werr = tx.Set(tbl, []byte(key), []byte(val))
				evs = append(evs, Event{Key: key, Val: val})
			}
			if werr != nil {
				// The transaction never reached Commit: its events are
				// definitely absent after reopen, whatever the fault did.
				tx.Rollback()
				if !injected(werr) {
					res.Err = fmt.Errorf("txn %d write: %w", i, werr)
					break loop
				}
				continue loop
			}
		}
		if err := tx.Commit(); err != nil {
			// Not acknowledged: all-or-nothing after reopen.
			res.Pending = evs
			if !injected(err) {
				res.Err = fmt.Errorf("txn %d commit: %w", i, err)
			}
			break
		}
		res.Committed = append(res.Committed, CommitRecord{TS: db.Now(), Events: evs})
	}

	res.Degraded = degraded()
	if res.Degraded {
		// The containment contract, probed live: reads still work, writes
		// fail typed before any ack.
		res.DegradedScan, res.DegradedScanErr = scanCurrent(db, tbl)
		res.DegradedWriteErr = db.Update(func(tx *immortaldb.Tx) error {
			return tx.Set(tbl, []byte("probe"), []byte("boom"))
		})
		// Close skips the final checkpoint/flush for a degraded engine; the
		// reboot below then models the operator restart.
		db.Close()
		return res
	}
	if res.Err != nil {
		db.Close()
		return res
	}
	if err := db.Close(); err != nil && !injected(err) {
		res.Err = fmt.Errorf("close: %w", err)
		return res
	}
	res.Clean = res.Err == nil && res.Pending == nil && len(res.Committed) == cfg.Txns
	return res
}

// VerifyPersist checks a cell's outcome: the live degraded-mode probes, then
// — after a reboot that clears the fault, tearing unsynced sectors exactly
// like a crash — recovery, durability of every acked commit, all-or-nothing
// resolution of the pending one, AS OF history, and forward life.
func VerifyPersist(res *PersistResult) error {
	if res.Err != nil {
		return fmt.Errorf("engine error not explained by the injected fault: %w", res.Err)
	}

	base := map[string]string{}
	for _, c := range res.Committed {
		apply(base, c.Events)
	}
	if res.Degraded {
		if res.DegradedScanErr != nil {
			return fmt.Errorf("reads unavailable while degraded: %w", res.DegradedScanErr)
		}
		if !equal(res.DegradedScan, base) {
			return fmt.Errorf("degraded-mode read diverges from acked commits:\n%s", diff(res.DegradedScan, base))
		}
		if !errors.Is(res.DegradedWriteErr, immortaldb.ErrDegraded) {
			return fmt.Errorf("write on degraded engine returned %v, want ErrDegraded", res.DegradedWriteErr)
		}
	}

	fs := res.FS
	fs.Crash() // whatever was never synced is now at the mercy of the reboot
	fs.Reboot()

	db, err := immortaldb.Open(dirName, optionsFor(fs, res.Config.Tiered))
	if err != nil {
		if !res.OpenCompleted && len(res.Committed) == 0 && res.Pending == nil {
			return nil // the database never finished coming into existence
		}
		return fmt.Errorf("reopen after fault failed: %w", err)
	}
	defer db.Close()
	tbl, err := db.Table(tableName)
	if err != nil {
		if len(res.Committed) == 0 {
			return nil // CreateTable never became durable; nothing was acked
		}
		return fmt.Errorf("table lost despite %d acked commits: %w", len(res.Committed), err)
	}

	withPending := clone(base)
	apply(withPending, res.Pending)
	cur, err := scanCurrent(db, tbl)
	if err != nil {
		return fmt.Errorf("post-reopen scan: %w", err)
	}
	switch {
	case equal(cur, base):
	case res.Pending != nil && equal(cur, withPending):
	default:
		return fmt.Errorf("state after reopen matches neither acked model nor acked+pending\nvs acked:\n%svs acked+pending:\n%s",
			diff(cur, base), diff(cur, withPending))
	}

	// History: AS OF every acked commit must replay exactly — a fault must
	// never corrupt or lose an already-durable version chain.
	state := map[string]string{}
	for i, c := range res.Committed {
		apply(state, c.Events)
		got, err := scanAt(db, tbl, c.TS)
		if err != nil {
			return fmt.Errorf("AS OF commit %d (ts %v): %w", i, c.TS, err)
		}
		if !equal(got, state) {
			return fmt.Errorf("AS OF commit %d (ts %v) diverges:\n%s", i, c.TS, diff(got, state))
		}
	}

	// Forward life: the fault cleared with the reboot, so the reopened
	// engine must accept writes and checkpoint again.
	err = db.Update(func(tx *immortaldb.Tx) error {
		return tx.Set(tbl, []byte("sentinel"), []byte("alive"))
	})
	if err != nil {
		return fmt.Errorf("post-reopen commit: %w", err)
	}
	if err := db.Checkpoint(); err != nil {
		return fmt.Errorf("post-reopen checkpoint: %w", err)
	}
	if res.Config.Tiered {
		// The fault is gone; migration and compaction must work again, and a
		// re-run of the AS OF sweep validates reads over the new cold runs.
		if err := db.CompactHistory(); err != nil {
			return fmt.Errorf("post-reopen history compaction: %w", err)
		}
		state = map[string]string{}
		for i, c := range res.Committed {
			apply(state, c.Events)
			got, err := scanAt(db, tbl, c.TS)
			if err != nil {
				return fmt.Errorf("post-compaction AS OF commit %d (ts %v): %w", i, c.TS, err)
			}
			if !equal(got, state) {
				return fmt.Errorf("post-compaction AS OF commit %d (ts %v) diverges:\n%s", i, c.TS, diff(got, state))
			}
		}
	}
	return nil
}

// DescribePersist renders a cell with its replay command.
func DescribePersist(res *PersistResult, kind string) string {
	var b strings.Builder
	f := res.Config.Fault
	fmt.Fprintf(&b, "seed=%d kind=%s start-op=%d persist=%d acked=%d pending=%v degraded=%v clean=%v\n",
		res.Config.Seed, kind, f.StartOp, f.Count, len(res.Committed), res.Pending != nil, res.Degraded, res.Clean)
	fmt.Fprintf(&b, "replay: go test -run TestPersistMatrix -pseed=%d -pkind=%s -ppoint=%d -ppersist=%d\n",
		res.Config.Seed, kind, f.StartOp, f.Count)
	return b.String()
}
