// Package hist implements the cold tier of history storage: immutable,
// prefix/delta-compressed, block-checksummed run files that historical
// TSB-tree pages migrate into once a time split has made them immutable,
// plus the per-table manifest that makes the hot/cold boundary crash-atomic.
//
// A run holds record versions sorted by (key, timestamp): within a block,
// keys are prefix-compressed against their predecessor and timestamps are
// delta-encoded, which is what makes "immortal" affordable — historical
// versions of one key differ little, and an 8 KB page holding a dozen of
// them shrinks to a few hundred bytes of run. Runs are levelled: migration
// produces small level-0 runs, the compactor merges a full level into one
// run of the next level, dropping (key, time) duplicates and, when a
// retention horizon is set, versions no AS OF query inside the horizon can
// reach.
package hist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"immortaldb/internal/itime"
)

// Entry is one historical record version inside a run: the unit migration
// extracts from a history page and compaction merges. All entries are
// stamped — unstamped versions never leave the hot tier.
type Entry struct {
	Key   []byte
	Value []byte
	TS    itime.Timestamp
	Stub  bool // delete stub: the record was deleted at TS
}

// Version is a lookup result: one version of a key, without the key.
type Version struct {
	Value []byte
	TS    itime.Timestamp
	Stub  bool
}

// RunMeta describes one run file inside a manifest.
type RunMeta struct {
	Seq   uint64
	Level uint8
	Count uint64 // entries in the run
	Bytes uint64 // encoded file size
	// MinKey/MaxKey and MinTS/MaxTS bound the run's contents, letting
	// lookups skip runs that cannot contain the point of interest.
	MinKey, MaxKey []byte
	MinTS, MaxTS   itime.Timestamp
}

// Run file layout. Everything is independently checksummed: each block
// carries a CRC over its payload and the footer carries one over the block
// index, so a torn or bit-flipped run is detected at read time, never
// trusted.
//
//	header (28 B): magic "IHR1" | tableID u32 | seq u64 | level u8 | pad[3] | entryCount u64
//	blocks:        [payloadLen u32 | crc32c(payload) u32 | payload]...
//	footer:        index payload | payloadLen u32 | crc32c(payload) u32 | magic "IHF1"
//
// Block payload: uvarint count, then per entry (sorted by key asc, TS asc):
//
//	uvarint sharedPrefix   (with the previous key in the block; 0 for the first)
//	uvarint suffixLen, suffix bytes
//	flags u8               (bit0 = stub)
//	varint wallDelta       (vs the previous entry's wall tick; first vs 0)
//	uvarint seq32
//	uvarint valueLen, value bytes
const (
	runMagic      = "IHR1"
	footMagic     = "IHF1"
	runHeaderLen  = 4 + 4 + 8 + 1 + 3 + 8
	footTailLen   = 4 + 4 + 4 // payloadLen, crc, magic
	blockHdrLen   = 4 + 4     // payloadLen, crc
	targetBlock   = 4096      // uncompressed payload bytes per block
	maxBlockBytes = 1 << 22   // decode-side sanity cap on one block
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports an undecodable run or manifest.
var ErrCorrupt = fmt.Errorf("hist: corrupt")

// blockRef is one entry of a run's block index.
type blockRef struct {
	firstKey []byte
	off      int64
	length   int // including the 8-byte block header
	count    int
}

// sortEntries orders entries by (key asc, TS asc) and drops exact
// (key, TS) duplicates — replicated spanning versions extracted from two
// chain pages, identical by construction.
func sortEntries(entries []Entry) []Entry {
	sort.SliceStable(entries, func(i, j int) bool {
		if c := bytes.Compare(entries[i].Key, entries[j].Key); c != 0 {
			return c < 0
		}
		return entries[i].TS.Less(entries[j].TS)
	})
	out := entries[:0]
	for i := range entries {
		if i > 0 && bytes.Equal(entries[i].Key, entries[i-1].Key) && entries[i].TS == entries[i-1].TS {
			continue
		}
		out = append(out, entries[i])
	}
	return out
}

// EncodeRun encodes entries into a run file image and its manifest entry.
// Entries are sorted and (key, TS)-deduplicated in place first.
func EncodeRun(tableID uint32, seq uint64, level uint8, entries []Entry) ([]byte, RunMeta, error) {
	entries = sortEntries(entries)
	if len(entries) == 0 {
		return nil, RunMeta{}, fmt.Errorf("hist: empty run")
	}

	buf := make([]byte, runHeaderLen)
	copy(buf, runMagic)
	binary.BigEndian.PutUint32(buf[4:], tableID)
	binary.BigEndian.PutUint64(buf[8:], seq)
	buf[16] = level
	binary.BigEndian.PutUint64(buf[20:], uint64(len(entries)))

	var refs []blockRef
	var payload []byte
	var prevKey []byte
	var prevWall int64
	var blockFirst []byte
	blockCount := 0

	flush := func() {
		if blockCount == 0 {
			return
		}
		var cnt [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(cnt[:], uint64(blockCount))
		full := make([]byte, 0, n+len(payload))
		full = append(full, cnt[:n]...)
		full = append(full, payload...)
		refs = append(refs, blockRef{
			firstKey: blockFirst,
			off:      int64(len(buf)),
			length:   blockHdrLen + len(full),
			count:    blockCount,
		})
		var hdr [blockHdrLen]byte
		binary.BigEndian.PutUint32(hdr[0:], uint32(len(full)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(full, crcTable))
		buf = append(buf, hdr[:]...)
		buf = append(buf, full...)
		payload = payload[:0]
		prevKey, prevWall = nil, 0
		blockFirst = nil
		blockCount = 0
	}

	meta := RunMeta{
		Seq: seq, Level: level, Count: uint64(len(entries)),
		MinKey: append([]byte(nil), entries[0].Key...),
		MaxKey: append([]byte(nil), entries[len(entries)-1].Key...),
		MinTS:  itime.Max,
	}
	for i := range entries {
		e := &entries[i]
		if e.TS.Less(meta.MinTS) {
			meta.MinTS = e.TS
		}
		if meta.MaxTS.Less(e.TS) {
			meta.MaxTS = e.TS
		}
		shared := 0
		if prevKey != nil {
			shared = sharedPrefix(prevKey, e.Key)
		}
		if blockCount == 0 {
			shared = 0
			blockFirst = append([]byte(nil), e.Key...)
		}
		payload = appendUvarint(payload, uint64(shared))
		payload = appendUvarint(payload, uint64(len(e.Key)-shared))
		payload = append(payload, e.Key[shared:]...)
		var flags byte
		if e.Stub {
			flags |= 1
		}
		payload = append(payload, flags)
		payload = appendVarint(payload, e.TS.Wall-prevWall)
		payload = appendUvarint(payload, uint64(e.TS.Seq))
		payload = appendUvarint(payload, uint64(len(e.Value)))
		payload = append(payload, e.Value...)
		prevKey, prevWall = e.Key, e.TS.Wall
		blockCount++
		if len(payload) >= targetBlock {
			flush()
		}
	}
	flush()

	// Footer: block index, its CRC, and the closing magic.
	var foot []byte
	foot = appendUvarint(foot, uint64(len(refs)))
	for i := range refs {
		foot = appendUvarint(foot, uint64(len(refs[i].firstKey)))
		foot = append(foot, refs[i].firstKey...)
		foot = appendUvarint(foot, uint64(refs[i].off))
		foot = appendUvarint(foot, uint64(refs[i].length))
		foot = appendUvarint(foot, uint64(refs[i].count))
	}
	buf = append(buf, foot...)
	var tail [footTailLen]byte
	binary.BigEndian.PutUint32(tail[0:], uint32(len(foot)))
	binary.BigEndian.PutUint32(tail[4:], crc32.Checksum(foot, crcTable))
	copy(tail[8:], footMagic)
	buf = append(buf, tail[:]...)

	meta.Bytes = uint64(len(buf))
	return buf, meta, nil
}

func sharedPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// parseRunHeader validates the fixed header of a run image.
func parseRunHeader(b []byte) (tableID uint32, seq uint64, level uint8, count uint64, err error) {
	if len(b) < runHeaderLen {
		return 0, 0, 0, 0, fmt.Errorf("%w run: short header", ErrCorrupt)
	}
	if string(b[:4]) != runMagic {
		return 0, 0, 0, 0, fmt.Errorf("%w run: bad magic", ErrCorrupt)
	}
	tableID = binary.BigEndian.Uint32(b[4:])
	seq = binary.BigEndian.Uint64(b[8:])
	level = b[16]
	count = binary.BigEndian.Uint64(b[20:])
	return tableID, seq, level, count, nil
}

// parseRunFooter decodes the block index from the tail of a run. size is the
// full file length; tail holds at least the last footTailLen bytes plus the
// footer payload (callers pass the whole image, or a read of the tail).
func parseRunFooter(tail []byte, size int64) ([]blockRef, error) {
	if len(tail) < footTailLen {
		return nil, fmt.Errorf("%w run: short footer", ErrCorrupt)
	}
	t := tail[len(tail)-footTailLen:]
	if string(t[8:12]) != footMagic {
		return nil, fmt.Errorf("%w run: bad footer magic", ErrCorrupt)
	}
	plen := int(binary.BigEndian.Uint32(t[0:]))
	if plen < 0 || plen > len(tail)-footTailLen {
		return nil, fmt.Errorf("%w run: footer length %d", ErrCorrupt, plen)
	}
	payload := tail[len(tail)-footTailLen-plen : len(tail)-footTailLen]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(t[4:]) {
		return nil, fmt.Errorf("%w run: footer checksum", ErrCorrupt)
	}
	nBlocks, n := binary.Uvarint(payload)
	if n <= 0 || nBlocks > uint64(len(payload)) {
		return nil, fmt.Errorf("%w run: block count", ErrCorrupt)
	}
	payload = payload[n:]
	refs := make([]blockRef, 0, nBlocks)
	for i := uint64(0); i < nBlocks; i++ {
		klen, n := binary.Uvarint(payload)
		if n <= 0 || klen > uint64(len(payload[n:])) {
			return nil, fmt.Errorf("%w run: footer key", ErrCorrupt)
		}
		key := append([]byte(nil), payload[n:n+int(klen)]...)
		payload = payload[n+int(klen):]
		off, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("%w run: footer offset", ErrCorrupt)
		}
		payload = payload[n:]
		length, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("%w run: footer block length", ErrCorrupt)
		}
		payload = payload[n:]
		cnt, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("%w run: footer block entry count", ErrCorrupt)
		}
		payload = payload[n:]
		if length > maxBlockBytes || off+length > uint64(size) || off < runHeaderLen {
			return nil, fmt.Errorf("%w run: block ref out of file", ErrCorrupt)
		}
		refs = append(refs, blockRef{firstKey: key, off: int64(off), length: int(length), count: int(cnt)})
	}
	return refs, nil
}

// decodeBlock decodes one block (header + payload) into entries.
func decodeBlock(b []byte) ([]Entry, error) {
	if len(b) < blockHdrLen {
		return nil, fmt.Errorf("%w block: short", ErrCorrupt)
	}
	plen := int(binary.BigEndian.Uint32(b[0:]))
	if plen < 0 || plen > len(b)-blockHdrLen || plen > maxBlockBytes {
		return nil, fmt.Errorf("%w block: length %d", ErrCorrupt, plen)
	}
	payload := b[blockHdrLen : blockHdrLen+plen]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(b[4:]) {
		return nil, fmt.Errorf("%w block: checksum", ErrCorrupt)
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 || count > uint64(len(payload)) {
		return nil, fmt.Errorf("%w block: entry count", ErrCorrupt)
	}
	payload = payload[n:]
	entries := make([]Entry, 0, count)
	var prevKey []byte
	var prevWall int64
	for i := uint64(0); i < count; i++ {
		shared, n := binary.Uvarint(payload)
		if n <= 0 || shared > uint64(len(prevKey)) {
			return nil, fmt.Errorf("%w block: shared prefix", ErrCorrupt)
		}
		payload = payload[n:]
		slen, n := binary.Uvarint(payload)
		if n <= 0 || slen > uint64(len(payload[n:])) {
			return nil, fmt.Errorf("%w block: suffix length", ErrCorrupt)
		}
		key := make([]byte, 0, shared+slen)
		key = append(key, prevKey[:shared]...)
		key = append(key, payload[n:n+int(slen)]...)
		payload = payload[n+int(slen):]
		if len(payload) < 1 {
			return nil, fmt.Errorf("%w block: flags", ErrCorrupt)
		}
		flags := payload[0]
		payload = payload[1:]
		wallDelta, n := binary.Varint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("%w block: wall delta", ErrCorrupt)
		}
		payload = payload[n:]
		seq32, n := binary.Uvarint(payload)
		if n <= 0 || seq32 > 1<<32-1 {
			return nil, fmt.Errorf("%w block: seq", ErrCorrupt)
		}
		payload = payload[n:]
		vlen, n := binary.Uvarint(payload)
		if n <= 0 || vlen > uint64(len(payload[n:])) {
			return nil, fmt.Errorf("%w block: value length", ErrCorrupt)
		}
		val := append([]byte(nil), payload[n:n+int(vlen)]...)
		payload = payload[n+int(vlen):]
		entries = append(entries, Entry{
			Key:   key,
			Value: val,
			TS:    itime.Timestamp{Wall: prevWall + wallDelta, Seq: uint32(seq32)},
			Stub:  flags&1 != 0,
		})
		prevKey, prevWall = key, prevWall+wallDelta
	}
	return entries, nil
}

// DecodeRun decodes a complete run image back into its entries, validating
// every checksum on the way — the inverse of EncodeRun, used by compaction
// and by the fuzzer.
func DecodeRun(data []byte) (tableID uint32, seq uint64, level uint8, entries []Entry, err error) {
	tableID, seq, level, count, err := parseRunHeader(data)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	refs, err := parseRunFooter(data, int64(len(data)))
	if err != nil {
		return 0, 0, 0, nil, err
	}
	for _, r := range refs {
		if r.off+int64(r.length) > int64(len(data)) {
			return 0, 0, 0, nil, fmt.Errorf("%w run: block past end", ErrCorrupt)
		}
		es, err := decodeBlock(data[r.off : r.off+int64(r.length)])
		if err != nil {
			return 0, 0, 0, nil, err
		}
		entries = append(entries, es...)
	}
	if uint64(len(entries)) != count {
		return 0, 0, 0, nil, fmt.Errorf("%w run: entry count %d != header %d", ErrCorrupt, len(entries), count)
	}
	return tableID, seq, level, entries, nil
}

// Compact sorts, (key, TS)-deduplicates and retention-filters entries for a
// merged run. When horizon is non-zero, versions no AS OF query at or after
// horizon can reach are dropped: for each key, everything strictly older
// than the newest version starting at or before horizon goes, and when that
// anchor version is itself a delete stub it goes too (absence from the cold
// tier reads as deleted, so the stub carries no information).
//
// Compact may only be used when entries cover the key's ENTIRE cold history:
// dropping a stub anchor while an older live version survives in another run
// would resurrect it. Partial merges use CompactPartial.
func Compact(entries []Entry, horizon itime.Timestamp) []Entry {
	return compactEntries(entries, horizon, true)
}

// CompactPartial is Compact for merges that see only part of a key's cold
// history (a subset of the table's runs): delete-stub anchors are kept, so an
// older version of the key surviving in an unmerged run cannot resurface.
func CompactPartial(entries []Entry, horizon itime.Timestamp) []Entry {
	return compactEntries(entries, horizon, false)
}

func compactEntries(entries []Entry, horizon itime.Timestamp, dropStubAnchor bool) []Entry {
	entries = sortEntries(entries)
	if horizon.IsZero() {
		return entries
	}
	out := entries[:0]
	for i := 0; i < len(entries); {
		j := i
		for j < len(entries) && bytes.Equal(entries[j].Key, entries[i].Key) {
			j++
		}
		// entries[i:j] is one key, TS ascending. Find the anchor: the newest
		// version with TS <= horizon.
		anchor := -1
		for k := i; k < j; k++ {
			if !entries[k].TS.After(horizon) {
				anchor = k
			}
		}
		start := i
		if anchor >= 0 {
			start = anchor
			if entries[anchor].Stub && dropStubAnchor {
				start = anchor + 1
			}
		}
		out = append(out, entries[start:j]...)
		i = j
	}
	return out
}
