package hist

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"immortaldb/internal/itime"
	"immortaldb/internal/obs"
	"immortaldb/internal/storage/vfs"
)

var (
	obsColdLookups = obs.NewCounter("hist_cold_lookups_total",
		"Point lookups that consulted the cold run tier.")
	obsColdHits = obs.NewCounter("hist_cold_hits_total",
		"Cold-tier lookups that found a version.")
	obsRunsWritten = obs.NewCounter("hist_runs_written_total",
		"Run files written (migration and compaction).")
	obsRunBytes = obs.NewCounter("hist_run_bytes_written_total",
		"Bytes of run files written.")
	obsRunCount = obs.NewGauge("hist_runs",
		"Live run files across all tables.")
	obsColdBytes = obs.NewGauge("hist_cold_bytes",
		"Bytes held in live cold-tier run files.")
)

// Store is a database's cold history tier: per-table sets of immutable run
// files plus the manifest naming them. One Store lives inside each DB; the
// engine migrates pages in through WriteRun/Install, recovery and replicas
// replay the same transitions through ApplyRunRecord/ApplyManifestRecord,
// and the TSB read path calls Lookup/Newest/KeyHistory/ScanAsOf when a
// history chain ends without covering the requested time.
//
// The run FILES are the durability authority — WriteRun and Install fsync
// before returning, and Install's dual-slot manifest write is the atomic
// flip. The WAL records exist to make the transitions idempotent under
// redo and visible to replicas.
type Store struct {
	fs  vfs.FS
	dir string

	mu     sync.RWMutex
	tables map[uint32]*tier
}

// tier is one table's loaded manifest plus open readers for its runs.
type tier struct {
	man  Manifest
	runs map[uint64]*runFile
}

// runFile is an open run with its block index resident.
type runFile struct {
	meta   RunMeta
	f      vfs.File
	blocks []blockRef
}

// NewStore returns a Store over dir. No I/O happens until LoadTable.
func NewStore(fs vfs.FS, dir string) *Store {
	return &Store{fs: fs, dir: dir, tables: map[uint32]*tier{}}
}

func (s *Store) runName(tid uint32, seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("hist.%d.run.%d", tid, seq))
}

func (s *Store) runPrefix(tid uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("hist.%d.run.", tid))
}

func (s *Store) manifestName(tid uint32, ver uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("hist.%d.manifest.%d", tid, ver%2))
}

// readAll reads a whole file through the vfs.
func readAll(f vfs.File) ([]byte, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	b := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(b, 0); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// writeFile writes data as the entire content of name and fsyncs it.
// vfs.OpenFile creates absent files, so this works for both fresh writes
// and idempotent redo rewrites.
func (s *Store) writeFile(name string, data []byte) error {
	f, err := s.fs.OpenFile(name)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	if err := f.Truncate(int64(len(data))); err != nil {
		return err
	}
	return f.Sync()
}

// openRun opens the run file described by meta and loads its block index.
// The name must exist (callers discover files via List or just wrote them);
// a created-empty file fails footer validation, which is the safety net
// against OpenFile's create-if-absent behavior.
func (s *Store) openRun(tid uint32, meta RunMeta) (*runFile, error) {
	f, err := s.fs.OpenFile(s.runName(tid, meta.Seq))
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Read the header and the whole footer region in one tail read. The
	// footer length is unknown until the tail is read, so read generously:
	// index entries are tiny, and re-reading on a miss is fine.
	hdr := make([]byte, runHeaderLen)
	if size < int64(runHeaderLen+footTailLen) {
		f.Close()
		return nil, fmt.Errorf("%w run %d/%d: file too small (%d bytes)", ErrCorrupt, tid, meta.Seq, size)
	}
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	gotTID, gotSeq, _, _, err := parseRunHeader(hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	if gotTID != tid || gotSeq != meta.Seq {
		f.Close()
		return nil, fmt.Errorf("%w run %d/%d: header says %d/%d", ErrCorrupt, tid, meta.Seq, gotTID, gotSeq)
	}
	tailLen := int64(footTailLen)
	if size < tailLen {
		tailLen = size
	}
	tail := make([]byte, tailLen)
	if _, err := f.ReadAt(tail, size-tailLen); err != nil {
		f.Close()
		return nil, err
	}
	var blocks []blockRef
	if len(tail) >= footTailLen {
		plen := int64(uint32(tail[0])<<24 | uint32(tail[1])<<16 | uint32(tail[2])<<8 | uint32(tail[3]))
		if plen < 0 || plen > size-int64(footTailLen) {
			f.Close()
			return nil, fmt.Errorf("%w run %d/%d: footer length", ErrCorrupt, tid, meta.Seq)
		}
		full := make([]byte, plen+int64(footTailLen))
		if _, err := f.ReadAt(full, size-int64(len(full))); err != nil {
			f.Close()
			return nil, err
		}
		blocks, err = parseRunFooter(full, size)
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	return &runFile{meta: meta, f: f, blocks: blocks}, nil
}

// readBlock reads and decodes block i of r.
func (r *runFile) readBlock(i int) ([]Entry, error) {
	ref := r.blocks[i]
	b := make([]byte, ref.length)
	if _, err := r.f.ReadAt(b, ref.off); err != nil {
		return nil, err
	}
	return decodeBlock(b)
}

// candidateBlocks returns the index range [lo, hi) of blocks that may hold
// keys in [lowKey, highKey]; highKey nil means unbounded.
func (r *runFile) candidateBlocks(lowKey, highKey []byte) (int, int) {
	// First block whose firstKey >= lowKey. One key's versions can span
	// several consecutive blocks (they all carry that firstKey), so the
	// range must start at the FIRST such block, not the last; the block
	// before it may also hold lowKey in its tail when the key starts
	// mid-block.
	i := sort.Search(len(r.blocks), func(i int) bool {
		return bytes.Compare(r.blocks[i].firstKey, lowKey) >= 0
	})
	if i > 0 {
		i--
	}
	j := len(r.blocks)
	if highKey != nil {
		// A block whose firstKey is at or past the exclusive bound holds
		// only out-of-range keys.
		j = sort.Search(len(r.blocks), func(j int) bool {
			return bytes.Compare(r.blocks[j].firstKey, highKey) >= 0
		})
	}
	if j < i {
		j = i
	}
	return i, j
}

// lookup scans r for the newest version of key with TS <= ts (ts == Max
// means newest overall). Returns ok=false when the run has no version.
func (r *runFile) lookup(key []byte, ts itime.Timestamp) (Version, bool, error) {
	if bytes.Compare(key, r.meta.MinKey) < 0 || bytes.Compare(key, r.meta.MaxKey) > 0 {
		return Version{}, false, nil
	}
	if ts.Less(r.meta.MinTS) {
		return Version{}, false, nil
	}
	lo, hi := r.candidateBlocks(key, nil)
	var best Version
	found := false
	for i := lo; i < hi; i++ {
		if i > lo && bytes.Compare(r.blocks[i].firstKey, key) > 0 {
			break
		}
		entries, err := r.readBlock(i)
		if err != nil {
			return Version{}, false, err
		}
		for k := range entries {
			e := &entries[k]
			c := bytes.Compare(e.Key, key)
			if c < 0 {
				continue
			}
			if c > 0 {
				return best, found, nil
			}
			if e.TS.After(ts) {
				continue
			}
			if !found || best.TS.Less(e.TS) {
				best = Version{Value: e.Value, TS: e.TS, Stub: e.Stub}
				found = true
			}
		}
	}
	return best, found, nil
}

// LoadTable (re)loads a table's tier from disk: it picks the manifest slot
// with the highest valid version and opens the runs it lists. Absent
// manifests mean an empty tier. Files are discovered via List — never by
// opening names blind, which would create them.
func (s *Store) LoadTable(tid uint32) error {
	prefix := filepath.Join(s.dir, fmt.Sprintf("hist.%d.manifest.", tid))
	names, err := s.fs.List(prefix)
	if err != nil {
		return err
	}
	var best Manifest
	for _, name := range names {
		f, err := s.fs.OpenFile(name)
		if err != nil {
			return err
		}
		b, rerr := readAll(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		m, derr := DecodeManifest(b)
		if derr != nil || m.TableID != tid {
			// A torn slot from a crashed install: the other slot decides.
			continue
		}
		if m.Ver > best.Ver {
			best = m
		}
	}
	t := &tier{man: best, runs: map[uint64]*runFile{}}
	if best.Ver > 0 {
		for _, rm := range best.Runs {
			rf, err := s.openRun(tid, rm)
			if err != nil {
				for _, open := range t.runs {
					open.f.Close()
				}
				return err
			}
			t.runs[rm.Seq] = rf
		}
	}
	s.mu.Lock()
	old := s.tables[tid]
	s.tables[tid] = t
	s.mu.Unlock()
	closeTier(old)
	s.refreshGauges()
	return nil
}

func closeTier(t *tier) {
	if t == nil {
		return
	}
	for _, r := range t.runs {
		r.f.Close()
	}
}

// Manifest returns the table's current manifest (zero-value if never
// installed or not loaded).
func (s *Store) Manifest(tid uint32) Manifest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t := s.tables[tid]; t != nil {
		return t.man
	}
	return Manifest{TableID: tid}
}

// WriteRun persists a run image under (tid, seq) and fsyncs it. Idempotent:
// rewriting the same (seq, data) is a no-op in effect.
func (s *Store) WriteRun(tid uint32, seq uint64, data []byte) error {
	if err := s.writeFile(s.runName(tid, seq), data); err != nil {
		return err
	}
	obsRunsWritten.Inc()
	obsRunBytes.Add(uint64(len(data)))
	return nil
}

// Install makes m the table's manifest: it writes the image to slot
// m.Ver%2, fsyncs it, and swaps the in-memory tier to the new run set,
// opening newly referenced runs (their files must already be written). This
// is the commit point of a migration or compaction.
func (s *Store) Install(tid uint32, m Manifest) error {
	if err := s.writeFile(s.manifestName(tid, m.Ver), EncodeManifest(m)); err != nil {
		return err
	}
	return s.swapTier(tid, m)
}

// swapTier points the in-memory tier at m, reusing already-open run readers
// and opening the rest.
func (s *Store) swapTier(tid uint32, m Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.tables[tid]
	t := &tier{man: m, runs: map[uint64]*runFile{}}
	for _, rm := range m.Runs {
		if old != nil {
			if rf, ok := old.runs[rm.Seq]; ok {
				t.runs[rm.Seq] = rf
				continue
			}
		}
		rf, err := s.openRun(tid, rm)
		if err != nil {
			for seq, open := range t.runs {
				if old == nil || old.runs[seq] == nil {
					open.f.Close()
				}
			}
			return err
		}
		t.runs[rm.Seq] = rf
	}
	s.tables[tid] = t
	if old != nil {
		for seq, rf := range old.runs {
			if t.runs[seq] == nil {
				rf.f.Close()
			}
		}
	}
	s.refreshGaugesLocked()
	return nil
}

// ApplyRunRecord replays a TypeHistRun WAL record: rewrite the run file.
// Safe to repeat; recovery may replay records already reflected on disk.
func (s *Store) ApplyRunRecord(tid uint32, seq uint64, data []byte) error {
	return s.writeFile(s.runName(tid, seq), data)
}

// ApplyManifestRecord replays a TypeHistManifest WAL record: install the
// carried manifest if it is newer than the one loaded. Replicas use this as
// their only install path.
func (s *Store) ApplyManifestRecord(tid uint32, blob []byte) error {
	m, err := DecodeManifest(blob)
	if err != nil {
		return err
	}
	if m.TableID != tid {
		return fmt.Errorf("%w manifest record: table %d carries manifest for %d", ErrCorrupt, tid, m.TableID)
	}
	s.mu.RLock()
	loaded := s.tables[tid] != nil
	s.mu.RUnlock()
	if !loaded {
		// Redo may replay a record OLDER than the manifest already on disk
		// (versions two apart share a slot, so blindly writing would clobber
		// the newer image). Learn the disk state first; stale replays then
		// fall out as no-ops below.
		if err := s.LoadTable(tid); err != nil {
			return err
		}
	}
	s.mu.RLock()
	cur := uint64(0)
	if t := s.tables[tid]; t != nil {
		cur = t.man.Ver
	}
	s.mu.RUnlock()
	if m.Ver <= cur {
		return nil
	}
	if err := s.writeFile(s.manifestName(tid, m.Ver), blob); err != nil {
		return err
	}
	return s.swapTier(tid, m)
}

// RemoveRuns deletes the named run files — called only after a manifest
// that no longer lists them is durably installed.
func (s *Store) RemoveRuns(tid uint32, seqs []uint64) error {
	for _, seq := range seqs {
		if err := s.fs.Remove(s.runName(tid, seq)); err != nil {
			return err
		}
	}
	return nil
}

// Cleanup removes run files on disk that the current manifest does not
// reference: leftovers of a migration or compaction that crashed between
// writing runs and installing the manifest, or after install but before
// removal of replaced runs.
func (s *Store) Cleanup(tid uint32) error {
	names, err := s.fs.List(s.runPrefix(tid))
	if err != nil {
		return err
	}
	s.mu.RLock()
	live := map[uint64]bool{}
	if t := s.tables[tid]; t != nil {
		for _, rm := range t.man.Runs {
			live[rm.Seq] = true
		}
	}
	s.mu.RUnlock()
	for _, name := range names {
		seqStr := name[strings.LastIndexByte(name, '.')+1:]
		seq, perr := strconv.ParseUint(seqStr, 10, 64)
		if perr != nil {
			continue
		}
		if live[seq] {
			continue
		}
		if err := s.fs.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

// RunEntries fully decodes one run — compaction's input path.
func (s *Store) RunEntries(tid uint32, seq uint64) ([]Entry, error) {
	s.mu.RLock()
	t := s.tables[tid]
	var rf *runFile
	if t != nil {
		rf = t.runs[seq]
	}
	s.mu.RUnlock()
	if rf == nil {
		return nil, fmt.Errorf("hist: run %d/%d not loaded", tid, seq)
	}
	b, err := readAll(rf.f)
	if err != nil {
		return nil, err
	}
	_, _, _, entries, err := DecodeRun(b)
	return entries, err
}

// Lookup returns the newest cold version of key with TS <= ts, across all
// of the table's runs. ok=false means the cold tier holds no such version —
// for an exhausted history chain that means the record did not exist at ts.
func (s *Store) Lookup(tid uint32, key []byte, ts itime.Timestamp) (Version, bool, error) {
	obsColdLookups.Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[tid]
	if t == nil {
		return Version{}, false, nil
	}
	var best Version
	found := false
	for _, rf := range t.runs {
		v, ok, err := rf.lookup(key, ts)
		if err != nil {
			return Version{}, false, err
		}
		if ok && (!found || best.TS.Less(v.TS)) {
			best, found = v, true
		}
	}
	if found {
		obsColdHits.Inc()
	}
	return best, found, nil
}

// Newest returns the newest cold version of key regardless of time.
func (s *Store) Newest(tid uint32, key []byte) (Version, bool, error) {
	return s.Lookup(tid, key, itime.Max)
}

// KeyHistory returns every cold version of key, newest first, with
// (key, TS) duplicates across runs collapsed.
func (s *Store) KeyHistory(tid uint32, key []byte) ([]Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[tid]
	if t == nil {
		return nil, nil
	}
	seen := map[itime.Timestamp]bool{}
	var out []Version
	for _, rf := range t.runs {
		if bytes.Compare(key, rf.meta.MinKey) < 0 || bytes.Compare(key, rf.meta.MaxKey) > 0 {
			continue
		}
		lo, hi := rf.candidateBlocks(key, nil)
		for i := lo; i < hi; i++ {
			if i > lo && bytes.Compare(rf.blocks[i].firstKey, key) > 0 {
				break
			}
			entries, err := rf.readBlock(i)
			if err != nil {
				return nil, err
			}
			for k := range entries {
				e := &entries[k]
				if !bytes.Equal(e.Key, key) || seen[e.TS] {
					continue
				}
				seen[e.TS] = true
				out = append(out, Version{Value: e.Value, TS: e.TS, Stub: e.Stub})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[j].TS.Less(out[i].TS) })
	return out, nil
}

// ScanAsOf visits, in key order, the newest version with TS <= ts of every
// key in [lo, hi) present in the cold tier (nil bounds are open). Delete
// stubs ARE visited — the caller decides whether absence-at-ts means
// skip. fn returning false stops the scan.
func (s *Store) ScanAsOf(tid uint32, lo, hi []byte, ts itime.Timestamp, fn func(key []byte, v Version) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[tid]
	if t == nil {
		return nil
	}
	best := map[string]Version{}
	for _, rf := range t.runs {
		if hi != nil && bytes.Compare(rf.meta.MinKey, hi) >= 0 {
			continue
		}
		if lo != nil && bytes.Compare(rf.meta.MaxKey, lo) < 0 {
			continue
		}
		if ts.Less(rf.meta.MinTS) {
			continue
		}
		var start []byte
		if lo != nil {
			start = lo
		}
		bLo, bHi := rf.candidateBlocks(start, hi)
		for i := bLo; i < bHi; i++ {
			entries, err := rf.readBlock(i)
			if err != nil {
				return err
			}
			for k := range entries {
				e := &entries[k]
				if lo != nil && bytes.Compare(e.Key, lo) < 0 {
					continue
				}
				if hi != nil && bytes.Compare(e.Key, hi) >= 0 {
					break
				}
				if e.TS.After(ts) {
					continue
				}
				cur, ok := best[string(e.Key)]
				if !ok || cur.TS.Less(e.TS) {
					best[string(e.Key)] = Version{Value: e.Value, TS: e.TS, Stub: e.Stub}
				}
			}
		}
	}
	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), best[k]) {
			return nil
		}
	}
	return nil
}

// Totals reports the live run count and byte total across loaded tables.
func (s *Store) Totals() (runs int, bytes uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, t := range s.tables {
		runs += len(t.man.Runs)
		for i := range t.man.Runs {
			bytes += t.man.Runs[i].Bytes
		}
	}
	return runs, bytes
}

func (s *Store) refreshGauges() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.refreshGaugesLocked()
}

func (s *Store) refreshGaugesLocked() {
	var runs, byteTotal int64
	for _, t := range s.tables {
		runs += int64(len(t.man.Runs))
		for i := range t.man.Runs {
			byteTotal += int64(t.man.Runs[i].Bytes)
		}
	}
	obsRunCount.Set(runs)
	obsColdBytes.Set(byteTotal)
}

// Close releases all open run readers.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tables {
		closeTier(t)
	}
	s.tables = map[uint32]*tier{}
}
