package hist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"immortaldb/internal/itime"
)

// Manifest is the authoritative list of a table's cold-tier runs. It is
// persisted with the same dual-slot ping-pong scheme as the pager meta:
// version v goes to slot v%2, so a torn write destroys at most the slot
// being written and the previous version survives in the other. The higher
// valid version wins at open. A run not listed here does not exist as far
// as reads are concerned — installing a new manifest is THE atomic flip
// that moves the hot/cold boundary.
type Manifest struct {
	Ver     uint64 // monotone install counter; 0 = never installed
	TableID uint32
	NextSeq uint64 // next run sequence number to allocate
	Runs    []RunMeta
}

// Manifest image layout (all integers big-endian):
//
//	magic "IHM1" | ver u64 | tableID u32 | nextSeq u64 | runCount u32
//	per run: seq u64 | level u8 | count u64 | bytes u64
//	         minKeyLen u16 | minKey | maxKeyLen u16 | maxKey | minTS 12B | maxTS 12B
//	crc32c over everything above, u32
const (
	manMagic     = "IHM1"
	manHeaderLen = 4 + 8 + 4 + 8 + 4
	manRunFixed  = 8 + 1 + 8 + 8 + 2 + 2 + 2*itime.EncodedLen
)

// EncodeManifest encodes m; the result is what both the manifest file slots
// and the TypeHistManifest WAL record carry.
func EncodeManifest(m Manifest) []byte {
	n := manHeaderLen
	for i := range m.Runs {
		n += manRunFixed + len(m.Runs[i].MinKey) + len(m.Runs[i].MaxKey)
	}
	b := make([]byte, 0, n+4)
	b = append(b, manMagic...)
	b = binary.BigEndian.AppendUint64(b, m.Ver)
	b = binary.BigEndian.AppendUint32(b, m.TableID)
	b = binary.BigEndian.AppendUint64(b, m.NextSeq)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Runs)))
	for i := range m.Runs {
		r := &m.Runs[i]
		b = binary.BigEndian.AppendUint64(b, r.Seq)
		b = append(b, r.Level)
		b = binary.BigEndian.AppendUint64(b, r.Count)
		b = binary.BigEndian.AppendUint64(b, r.Bytes)
		b = binary.BigEndian.AppendUint16(b, uint16(len(r.MinKey)))
		b = append(b, r.MinKey...)
		b = binary.BigEndian.AppendUint16(b, uint16(len(r.MaxKey)))
		b = append(b, r.MaxKey...)
		b = r.MinTS.AppendEncode(b)
		b = r.MaxTS.AppendEncode(b)
	}
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// DecodeManifest decodes and validates a manifest image.
func DecodeManifest(b []byte) (Manifest, error) {
	var m Manifest
	if len(b) < manHeaderLen+4 {
		return m, fmt.Errorf("%w manifest: short", ErrCorrupt)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(tail) {
		return m, fmt.Errorf("%w manifest: checksum", ErrCorrupt)
	}
	if string(body[:4]) != manMagic {
		return m, fmt.Errorf("%w manifest: bad magic", ErrCorrupt)
	}
	m.Ver = binary.BigEndian.Uint64(body[4:])
	m.TableID = binary.BigEndian.Uint32(body[12:])
	m.NextSeq = binary.BigEndian.Uint64(body[16:])
	runCount := binary.BigEndian.Uint32(body[24:])
	body = body[manHeaderLen:]
	if uint64(runCount)*manRunFixed > uint64(len(body)) {
		return m, fmt.Errorf("%w manifest: run count %d", ErrCorrupt, runCount)
	}
	m.Runs = make([]RunMeta, 0, runCount)
	for i := uint32(0); i < runCount; i++ {
		var r RunMeta
		if len(body) < 8+1+8+8+2 {
			return m, fmt.Errorf("%w manifest: short run", ErrCorrupt)
		}
		r.Seq = binary.BigEndian.Uint64(body)
		r.Level = body[8]
		r.Count = binary.BigEndian.Uint64(body[9:])
		r.Bytes = binary.BigEndian.Uint64(body[17:])
		klen := int(binary.BigEndian.Uint16(body[25:]))
		body = body[27:]
		if len(body) < klen+2 {
			return m, fmt.Errorf("%w manifest: short min key", ErrCorrupt)
		}
		r.MinKey = append([]byte(nil), body[:klen]...)
		body = body[klen:]
		klen = int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if len(body) < klen+2*itime.EncodedLen {
			return m, fmt.Errorf("%w manifest: short max key", ErrCorrupt)
		}
		r.MaxKey = append([]byte(nil), body[:klen]...)
		body = body[klen:]
		r.MinTS = itime.DecodeTimestamp(body[:itime.EncodedLen])
		r.MaxTS = itime.DecodeTimestamp(body[itime.EncodedLen : 2*itime.EncodedLen])
		body = body[2*itime.EncodedLen:]
		m.Runs = append(m.Runs, r)
	}
	if len(body) != 0 {
		return m, fmt.Errorf("%w manifest: %d trailing bytes", ErrCorrupt, len(body))
	}
	return m, nil
}
