package hist

import (
	"bytes"
	"fmt"
	"testing"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/vfs"
)

func ts(wall int64, seq uint32) itime.Timestamp {
	return itime.Timestamp{Wall: wall, Seq: seq}
}

// mkEntries builds nKeys keys with nVers versions each, sharing a long
// common prefix so the codec's prefix compression has something to chew.
func mkEntries(nKeys, nVers int) []Entry {
	var out []Entry
	for k := 0; k < nKeys; k++ {
		key := []byte(fmt.Sprintf("tenant/42/device/%06d", k))
		for v := 0; v < nVers; v++ {
			out = append(out, Entry{
				Key:   key,
				Value: []byte(fmt.Sprintf("value-%d-%d-padding-padding", k, v)),
				TS:    ts(int64(100+v*10), uint32(k)),
				Stub:  false,
			})
		}
	}
	return out
}

func TestRunRoundTrip(t *testing.T) {
	entries := mkEntries(50, 8)
	blob, meta, err := EncodeRun(7, 3, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Count != uint64(len(entries)) {
		t.Fatalf("meta.Count=%d want %d", meta.Count, len(entries))
	}
	if meta.Bytes != uint64(len(blob)) {
		t.Fatalf("meta.Bytes=%d want %d", meta.Bytes, len(blob))
	}
	tid, seq, level, got, err := DecodeRun(blob)
	if err != nil {
		t.Fatal(err)
	}
	if tid != 7 || seq != 3 || level != 1 {
		t.Fatalf("header %d/%d/%d", tid, seq, level)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if !bytes.Equal(got[i].Key, entries[i].Key) || !bytes.Equal(got[i].Value, entries[i].Value) ||
			got[i].TS != entries[i].TS || got[i].Stub != entries[i].Stub {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], entries[i])
		}
	}
	// Compression must actually compress: raw size is keys+values replicated
	// per version.
	raw := 0
	for i := range entries {
		raw += len(entries[i].Key) + len(entries[i].Value) + itime.EncodedLen
	}
	if len(blob) >= raw {
		t.Fatalf("run (%d B) not smaller than raw entries (%d B)", len(blob), raw)
	}
}

func TestRunRejectsCorruption(t *testing.T) {
	blob, _, err := EncodeRun(1, 1, 0, mkEntries(20, 4))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short":         blob[:10],
		"truncated":     blob[:len(blob)-5],
		"no footer":     blob[:runHeaderLen+4],
		"bad magic":     append([]byte("XXXX"), blob[4:]...),
		"flipped byte":  flipByte(blob, runHeaderLen+12),
		"flipped tail":  flipByte(blob, len(blob)-6),
		"flipped index": flipByte(blob, len(blob)-20),
	}
	for name, b := range cases {
		if _, _, _, _, err := DecodeRun(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0xff
	return c
}

func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{
		Ver: 9, TableID: 4, NextSeq: 17,
		Runs: []RunMeta{
			{Seq: 3, Level: 0, Count: 10, Bytes: 512, MinKey: []byte("a"), MaxKey: []byte("m"), MinTS: ts(5, 0), MaxTS: ts(50, 2)},
			{Seq: 9, Level: 1, Count: 99, Bytes: 4096, MinKey: []byte(""), MaxKey: []byte("zz"), MinTS: ts(1, 0), MaxTS: ts(80, 1)},
		},
	}
	blob := EncodeManifest(m)
	got, err := DecodeManifest(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ver != m.Ver || got.TableID != m.TableID || got.NextSeq != m.NextSeq || len(got.Runs) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range m.Runs {
		a, b := m.Runs[i], got.Runs[i]
		if a.Seq != b.Seq || a.Level != b.Level || a.Count != b.Count || a.Bytes != b.Bytes ||
			!bytes.Equal(a.MinKey, b.MinKey) || !bytes.Equal(a.MaxKey, b.MaxKey) ||
			a.MinTS != b.MinTS || a.MaxTS != b.MaxTS {
			t.Fatalf("run %d: %+v vs %+v", i, a, b)
		}
	}
	for _, bad := range [][]byte{{}, blob[:8], blob[:len(blob)-1], flipByte(blob, 6)} {
		if _, err := DecodeManifest(bad); err == nil {
			t.Fatal("accepted corrupt manifest")
		}
	}
}

func TestCompactRetention(t *testing.T) {
	key := []byte("k")
	entries := []Entry{
		{Key: key, Value: []byte("v1"), TS: ts(10, 0)},
		{Key: key, Value: []byte("v2"), TS: ts(20, 0)},
		{Key: key, Value: []byte("v3"), TS: ts(30, 0)},
		{Key: key, Value: []byte("v4"), TS: ts(40, 0)},
	}
	// No horizon: everything survives, duplicates collapse.
	got := Compact(append(entries, entries[1]), itime.Timestamp{})
	if len(got) != 4 {
		t.Fatalf("no-horizon compact: %d entries", len(got))
	}
	// Horizon at 25: v2 (newest <= 25) anchors; v1 drops.
	got = Compact(append([]Entry(nil), entries...), ts(25, 0))
	if len(got) != 3 || got[0].TS != ts(20, 0) {
		t.Fatalf("horizon 25: %+v", got)
	}
	// Stub anchor drops with everything older: absence reads as deleted.
	withStub := []Entry{
		{Key: key, Value: []byte("v1"), TS: ts(10, 0)},
		{Key: key, TS: ts(20, 0), Stub: true},
		{Key: key, Value: []byte("v3"), TS: ts(30, 0)},
	}
	got = Compact(withStub, ts(25, 0))
	if len(got) != 1 || got[0].TS != ts(30, 0) {
		t.Fatalf("stub anchor: %+v", got)
	}
	// Horizon before everything: all kept.
	got = Compact(append([]Entry(nil), entries...), ts(5, 0))
	if len(got) != 4 {
		t.Fatalf("early horizon: %d entries", len(got))
	}
}

func TestCompactPartialKeepsStubAnchor(t *testing.T) {
	key := []byte("k")
	withStub := []Entry{
		{Key: key, Value: []byte("v1"), TS: ts(10, 0)},
		{Key: key, TS: ts(20, 0), Stub: true},
		{Key: key, Value: []byte("v3"), TS: ts(30, 0)},
	}
	// A partial merge may not see an even older version of k living in an
	// unmerged run; dropping the stub would resurrect it. The stub anchor
	// must survive (only v1, strictly older than it, drops).
	got := CompactPartial(append([]Entry(nil), withStub...), ts(25, 0))
	if len(got) != 2 || !got[0].Stub || got[0].TS != ts(20, 0) {
		t.Fatalf("partial stub anchor: %+v", got)
	}
	// Non-stub behaviour is identical to Compact.
	got = CompactPartial(append([]Entry(nil), withStub...), ts(35, 0))
	if len(got) != 1 || got[0].TS != ts(30, 0) {
		t.Fatalf("partial non-stub anchor: %+v", got)
	}
}

func newTestStore(t *testing.T) (*Store, vfs.FS) {
	t.Helper()
	fs := vfs.NewSim(1)
	return NewStore(fs, "db"), fs
}

func TestStoreLifecycle(t *testing.T) {
	s, fsys := newTestStore(t)
	const tid = 3
	if err := s.LoadTable(tid); err != nil {
		t.Fatal(err)
	}

	entries := mkEntries(30, 5)
	blob, meta, err := EncodeRun(tid, 1, 0, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRun(tid, 1, blob); err != nil {
		t.Fatal(err)
	}
	m := Manifest{Ver: 1, TableID: tid, NextSeq: 2, Runs: []RunMeta{meta}}
	if err := s.Install(tid, m); err != nil {
		t.Fatal(err)
	}

	// Point lookup: AS OF between versions picks the newest not-after.
	key := entries[7].Key
	v, ok, err := s.Lookup(tid, key, ts(125, 1<<31))
	if err != nil || !ok {
		t.Fatalf("lookup: %v ok=%v", err, ok)
	}
	if v.TS.Wall != 120 {
		t.Fatalf("lookup got wall %d, want 120", v.TS.Wall)
	}
	// Before the first version: absent.
	if _, ok, _ := s.Lookup(tid, key, ts(50, 0)); ok {
		t.Fatal("lookup before first version should miss")
	}
	// Newest.
	v, ok, err = s.Newest(tid, key)
	if err != nil || !ok || v.TS.Wall != 140 {
		t.Fatalf("newest: %v ok=%v ts=%v", err, ok, v.TS)
	}
	// History: all 5 versions, newest first.
	hist, err := s.KeyHistory(tid, key)
	if err != nil || len(hist) != 5 {
		t.Fatalf("history: %v len=%d", err, len(hist))
	}
	if !hist[0].TS.After(hist[4].TS) {
		t.Fatal("history not newest-first")
	}
	// Scan: every key visible at a late time.
	n := 0
	err = s.ScanAsOf(tid, nil, nil, itime.Max, func(k []byte, v Version) bool { n++; return true })
	if err != nil || n != 30 {
		t.Fatalf("scan: %v n=%d", err, n)
	}

	// Reload from disk — same answers (exercises openRun + LoadTable).
	s2 := NewStore(fsys, "db")
	if err := s2.LoadTable(tid); err != nil {
		t.Fatal(err)
	}
	if got := s2.Manifest(tid); got.Ver != 1 || len(got.Runs) != 1 {
		t.Fatalf("reloaded manifest: %+v", got)
	}
	v, ok, err = s2.Lookup(tid, key, ts(125, 0))
	if err != nil || !ok || v.TS.Wall != 120 {
		t.Fatalf("reloaded lookup: %v ok=%v", err, ok)
	}

	// Dual-slot: install ver 2 (slot 0), then corrupt slot... ver 2 goes to
	// slot 0; a reload must pick ver 2, and with slot 0 torn must fall back
	// to ver 1 in slot 1.
	blob3, meta3, err := EncodeRun(tid, 2, 1, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRun(tid, 2, blob3); err != nil {
		t.Fatal(err)
	}
	m2 := Manifest{Ver: 2, TableID: tid, NextSeq: 3, Runs: []RunMeta{meta3}}
	if err := s.Install(tid, m2); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveRuns(tid, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	s3 := NewStore(fsys, "db")
	if err := s3.LoadTable(tid); err != nil {
		t.Fatal(err)
	}
	if got := s3.Manifest(tid); got.Ver != 2 || got.Runs[0].Seq != 2 {
		t.Fatalf("after second install: %+v", got)
	}

	// Tear slot 0 (ver 2): fall back to ver 1 — but its run file is gone,
	// so rewrite it first (mirrors redo of the TypeHistRun record).
	if err := s.ApplyRunRecord(tid, 1, blob); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile("db/hist.3.manifest.0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 4); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s4 := NewStore(fsys, "db")
	if err := s4.LoadTable(tid); err != nil {
		t.Fatal(err)
	}
	if got := s4.Manifest(tid); got.Ver != 1 || got.Runs[0].Seq != 1 {
		t.Fatalf("torn-slot fallback: %+v", got)
	}

	// Cleanup removes runs the manifest doesn't list.
	if err := s3.Cleanup(tid); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.List("db/hist.3.run.")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "db/hist.3.run.2" {
		t.Fatalf("after cleanup: %v", names)
	}
}

func TestStoreApplyManifestRecord(t *testing.T) {
	s, _ := newTestStore(t)
	const tid = 5
	if err := s.LoadTable(tid); err != nil {
		t.Fatal(err)
	}
	blob, meta, err := EncodeRun(tid, 1, 0, mkEntries(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyRunRecord(tid, 1, blob); err != nil {
		t.Fatal(err)
	}
	m := Manifest{Ver: 1, TableID: tid, NextSeq: 2, Runs: []RunMeta{meta}}
	if err := s.ApplyManifestRecord(tid, EncodeManifest(m)); err != nil {
		t.Fatal(err)
	}
	if got := s.Manifest(tid); got.Ver != 1 {
		t.Fatalf("apply: %+v", got)
	}
	// Replaying an older or equal manifest is a no-op.
	if err := s.ApplyManifestRecord(tid, EncodeManifest(m)); err != nil {
		t.Fatal(err)
	}
	stale := Manifest{Ver: 0, TableID: tid}
	if err := s.ApplyManifestRecord(tid, EncodeManifest(stale)); err != nil {
		t.Fatal(err)
	}
	if got := s.Manifest(tid); got.Ver != 1 || len(got.Runs) != 1 {
		t.Fatalf("after stale replay: %+v", got)
	}
	// Wrong-table blob is rejected.
	wrong := Manifest{Ver: 7, TableID: tid + 1}
	if err := s.ApplyManifestRecord(tid, EncodeManifest(wrong)); err == nil {
		t.Fatal("accepted manifest for another table")
	}
}

func TestStoreStubSemantics(t *testing.T) {
	s, _ := newTestStore(t)
	const tid = 1
	if err := s.LoadTable(tid); err != nil {
		t.Fatal(err)
	}
	entries := []Entry{
		{Key: []byte("a"), Value: []byte("v1"), TS: ts(10, 0)},
		{Key: []byte("a"), TS: ts(20, 0), Stub: true},
		{Key: []byte("b"), Value: []byte("w1"), TS: ts(15, 0)},
	}
	blob, meta, err := EncodeRun(tid, 1, 0, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRun(tid, 1, blob); err != nil {
		t.Fatal(err)
	}
	if err := s.Install(tid, Manifest{Ver: 1, TableID: tid, NextSeq: 2, Runs: []RunMeta{meta}}); err != nil {
		t.Fatal(err)
	}
	// At 25 the newest version of "a" is the stub.
	v, ok, err := s.Lookup(tid, []byte("a"), ts(25, 0))
	if err != nil || !ok || !v.Stub {
		t.Fatalf("stub lookup: %v ok=%v stub=%v", err, ok, v.Stub)
	}
	// At 12 it's the live version.
	v, ok, err = s.Lookup(tid, []byte("a"), ts(12, 0))
	if err != nil || !ok || v.Stub || string(v.Value) != "v1" {
		t.Fatalf("pre-stub lookup: %v ok=%v %+v", err, ok, v)
	}
	// Scan at 25 visits the stub; caller filters.
	got := map[string]bool{}
	err = s.ScanAsOf(tid, nil, nil, ts(25, 0), func(k []byte, v Version) bool {
		got[string(k)] = v.Stub
		return true
	})
	if err != nil || len(got) != 2 || !got["a"] || got["b"] {
		t.Fatalf("scan stubs: %v %+v", err, got)
	}
}

func TestScanRange(t *testing.T) {
	s, _ := newTestStore(t)
	const tid = 2
	if err := s.LoadTable(tid); err != nil {
		t.Fatal(err)
	}
	entries := mkEntries(100, 3)
	blob, meta, err := EncodeRun(tid, 1, 0, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRun(tid, 1, blob); err != nil {
		t.Fatal(err)
	}
	if err := s.Install(tid, Manifest{Ver: 1, TableID: tid, NextSeq: 2, Runs: []RunMeta{meta}}); err != nil {
		t.Fatal(err)
	}
	lo := []byte("tenant/42/device/000010")
	hi := []byte("tenant/42/device/000020")
	var keys []string
	err = s.ScanAsOf(tid, lo, hi, itime.Max, func(k []byte, v Version) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 || keys[0] != string(lo) || keys[9] != "tenant/42/device/000019" {
		t.Fatalf("range scan: %d keys %v", len(keys), keys)
	}
}

func TestMultiRunLookupPrefersNewest(t *testing.T) {
	s, _ := newTestStore(t)
	const tid = 6
	if err := s.LoadTable(tid); err != nil {
		t.Fatal(err)
	}
	older := []Entry{{Key: []byte("k"), Value: []byte("old"), TS: ts(10, 0)}}
	newer := []Entry{{Key: []byte("k"), Value: []byte("new"), TS: ts(30, 0)}}
	b1, m1, _ := EncodeRun(tid, 1, 0, older)
	b2, m2, _ := EncodeRun(tid, 2, 0, newer)
	if err := s.WriteRun(tid, 1, b1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRun(tid, 2, b2); err != nil {
		t.Fatal(err)
	}
	if err := s.Install(tid, Manifest{Ver: 1, TableID: tid, NextSeq: 3, Runs: []RunMeta{m1, m2}}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Lookup(tid, []byte("k"), itime.Max)
	if err != nil || !ok || string(v.Value) != "new" {
		t.Fatalf("multi-run lookup: %v ok=%v %+v", err, ok, v)
	}
	v, ok, err = s.Lookup(tid, []byte("k"), ts(15, 0))
	if err != nil || !ok || string(v.Value) != "old" {
		t.Fatalf("multi-run as-of: %v ok=%v %+v", err, ok, v)
	}
}

// TestLookupKeySpanningBlocks pins a bug where candidateBlocks started the
// scan at the LAST block whose firstKey <= key: when one key's versions
// overflow a single 4 KB block, consecutive blocks all carry that firstKey
// and every block but the last was skipped — lookups below the newest few
// versions missed, so deep AS OF reads of a hot key returned not-found.
func TestLookupKeySpanningBlocks(t *testing.T) {
	s, fsys := newTestStore(t)
	const tid = 7
	if err := s.LoadTable(tid); err != nil {
		t.Fatal(err)
	}

	// Three keys; the middle key has enough versions of ~90 bytes each to
	// span several blocks. Values are mostly-unique so prefix compression
	// cannot collapse them back under one block.
	var entries []Entry
	pad := bytes.Repeat([]byte("x"), 60)
	const vers = 300
	for _, k := range []string{"a-first", "m-deep", "z-last"} {
		n := 3
		if k == "m-deep" {
			n = vers
		}
		for v := 0; v < n; v++ {
			entries = append(entries, Entry{
				Key:   []byte(k),
				Value: []byte(fmt.Sprintf("%s-v%03d-%d-%s", k, v, v*v, pad)),
				TS:    ts(int64(1000+v*10), 0),
			})
		}
	}
	blob, meta, err := EncodeRun(tid, 1, 0, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRun(tid, 1, blob); err != nil {
		t.Fatal(err)
	}
	if err := s.Install(tid, Manifest{Ver: 1, TableID: tid, NextSeq: 2, Runs: []RunMeta{meta}}); err != nil {
		t.Fatal(err)
	}
	// Precondition: the deep key must actually span blocks, or this test
	// stops guarding anything if the geometry changes.
	rf := s.tables[tid].runs[1]
	span := 0
	for _, b := range rf.blocks {
		if bytes.Equal(b.firstKey, []byte("m-deep")) {
			span++
		}
	}
	if span < 2 {
		t.Fatalf("test geometry: m-deep spans %d blocks, need >= 2 (grow vers)", span)
	}

	// Every version must be reachable by an AS OF at exactly its timestamp,
	// including the oldest (the original failure was at the oldest).
	for v := 0; v < vers; v++ {
		at := ts(int64(1000+v*10), 0)
		got, ok, err := s.Lookup(tid, []byte("m-deep"), at)
		if err != nil || !ok {
			t.Fatalf("lookup v%d: err=%v ok=%v", v, err, ok)
		}
		if got.TS != at {
			t.Fatalf("lookup v%d: got ts %v, want %v", v, got.TS, at)
		}
	}
	// Before the first version: still a miss, not a wrap-around hit.
	if _, ok, _ := s.Lookup(tid, []byte("m-deep"), ts(999, 0)); ok {
		t.Fatal("lookup before first version should miss")
	}
	// KeyHistory sees the full depth.
	h, err := s.KeyHistory(tid, []byte("m-deep"))
	if err != nil || len(h) != vers {
		t.Fatalf("KeyHistory: err=%v len=%d want %d", err, len(h), vers)
	}
	// Neighbours unaffected.
	for _, k := range []string{"a-first", "z-last"} {
		if h, err := s.KeyHistory(tid, []byte(k)); err != nil || len(h) != 3 {
			t.Fatalf("KeyHistory(%s): err=%v len=%d", k, err, len(h))
		}
	}
	// ScanAsOf at the oldest timestamp sees only the keys alive then.
	n := 0
	if err := s.ScanAsOf(tid, nil, nil, ts(1000, 0), func(k []byte, v Version) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ScanAsOf(oldest): %d keys, want 3", n)
	}
	// Reload from disk and spot-check the oldest again.
	s2 := NewStore(fsys, "db")
	if err := s2.LoadTable(tid); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok, err := s2.Lookup(tid, []byte("m-deep"), ts(1000, 0)); err != nil || !ok || got.TS != ts(1000, 0) {
		t.Fatalf("reloaded oldest lookup: err=%v ok=%v ts=%v", err, ok, got.TS)
	}
}
