package hist

// Fuzzing the cold-tier codecs: run files and manifests are read back after
// crashes and bit rot, so arbitrary bytes must yield entries or ErrCorrupt —
// never a panic, out-of-bounds read, or unbounded allocation.

import (
	"testing"
)

func fuzzRunSeeds() [][]byte {
	var seeds [][]byte
	small, _, err := EncodeRun(1, 1, 0, []Entry{
		{Key: []byte("alpha"), Value: []byte("v1"), TS: ts(100, 1)},
		{Key: []byte("alpine"), Value: []byte("v2"), TS: ts(200, 2), Stub: true},
	})
	if err == nil {
		seeds = append(seeds, small)
	}
	multi, _, err := EncodeRun(9, 42, 2, mkFuzzEntries())
	if err == nil {
		seeds = append(seeds, multi)
		// Truncated mid-entry and mid-footer.
		seeds = append(seeds, multi[:len(multi)*2/3])
		seeds = append(seeds, multi[:len(multi)-7])
		// Checksum mismatch: flip a payload byte, leave the CRC alone.
		seeds = append(seeds, flipByte(multi, runHeaderLen+20))
		// Corrupt footer index.
		seeds = append(seeds, flipByte(multi, len(multi)-16))
	}
	return seeds
}

func mkFuzzEntries() []Entry {
	var out []Entry
	for k := 0; k < 400; k++ {
		out = append(out, Entry{
			Key:   []byte{'k', byte(k >> 8), byte(k), 'x', 'y', 'z'},
			Value: []byte("some-moderately-long-value-payload"),
			TS:    ts(int64(1000+k), uint32(k%3)),
			Stub:  k%17 == 0,
		})
	}
	return out
}

func FuzzRunDecode(f *testing.F) {
	for _, s := range fuzzRunSeeds() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte(runMagic))
	f.Fuzz(func(t *testing.T, b []byte) {
		tid, seq, level, entries, err := DecodeRun(b)
		if err != nil {
			return
		}
		// A successful decode must round-trip through the encoder: the
		// entries are self-consistent enough to re-encode.
		if len(entries) == 0 {
			t.Fatalf("decode ok with zero entries")
		}
		if _, _, err := EncodeRun(tid, seq, level, entries); err != nil {
			t.Fatalf("re-encode of decoded run failed: %v", err)
		}
	})
}

func fuzzManifestSeeds() [][]byte {
	m := Manifest{
		Ver: 3, TableID: 2, NextSeq: 9,
		Runs: []RunMeta{
			{Seq: 1, Level: 0, Count: 5, Bytes: 333, MinKey: []byte("a"), MaxKey: []byte("q"), MinTS: ts(1, 0), MaxTS: ts(9, 0)},
			{Seq: 8, Level: 1, Count: 50, Bytes: 3333, MinKey: []byte(""), MaxKey: []byte("zzz"), MinTS: ts(1, 0), MaxTS: ts(90, 0)},
		},
	}
	blob := EncodeManifest(m)
	empty := EncodeManifest(Manifest{Ver: 1, TableID: 7, NextSeq: 1})
	return [][]byte{
		blob,
		empty,
		blob[:len(blob)-3],  // truncated: CRC cut
		blob[:manHeaderLen], // truncated: runs cut
		flipByte(blob, 17),  // checksum mismatch in a run entry
		flipByte(blob, 1),   // bad magic
	}
}

func FuzzManifestDecode(f *testing.F) {
	for _, s := range fuzzManifestSeeds() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			return
		}
		// Valid decodes re-encode to the identical image (the codec is
		// canonical), so the WAL record and the file slots always agree.
		out := EncodeManifest(m)
		if string(out) != string(b) {
			t.Fatalf("manifest decode/encode not canonical: %d vs %d bytes", len(out), len(b))
		}
	})
}
