// Package wire is the immortald client/server protocol: length-prefixed
// frames over a TCP stream carrying sqlish statements one way and typed
// result sets the other.
//
// Frame layout (all integers big-endian):
//
//	uint32  length of what follows (type byte + payload)
//	byte    message type
//	[]byte  payload
//
// A connection opens with a handshake — the client sends MsgHello carrying
// the protocol magic and version, the server answers MsgHelloOK — and then
// carries strictly alternating request/response pairs: every MsgExec or
// MsgPing from the client is answered by exactly one MsgResult, MsgError or
// MsgPong. There is no pipelining; the session state machine (at most one
// open transaction per connection) stays trivially unambiguous.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Message types. Requests flow client to server; responses have the high bit
// set.
const (
	// MsgHello opens a connection: payload is Magic followed by the
	// one-byte protocol version.
	MsgHello = byte(0x01)
	// MsgExec executes one sqlish statement: payload is the statement text.
	MsgExec = byte(0x02)
	// MsgPing checks liveness (and keeps a pooled connection warm).
	MsgPing = byte(0x03)

	// MsgHelloOK accepts a handshake: payload is the server's version byte.
	MsgHelloOK = byte(0x81)
	// MsgResult carries an encoded sqlish.Result (see EncodeResult).
	MsgResult = byte(0x82)
	// MsgError carries a one-byte error code followed by the error string
	// (see ErrorPayload). The connection remains usable: statement errors do
	// not poison the session.
	MsgError = byte(0x83)
	// MsgPong answers MsgPing.
	MsgPong = byte(0x84)
)

// Error codes: the first byte of a MsgError payload. They tell the client
// what a retry is worth without it having to parse error strings.
const (
	// CodeGeneric is a statement error (parse error, conflict, constraint):
	// retrying the same statement would fail the same way.
	CodeGeneric = byte(0)
	// CodeDegraded reports the server's engine is read-only-degraded after an
	// I/O failure. Not retryable anywhere: writes fail until an operator
	// restarts the server (reads still work).
	CodeDegraded = byte(1)
	// CodeRetryable is a transient server condition — a graceful shutdown
	// drain. The statement may succeed on another connection or after a
	// backoff.
	CodeRetryable = byte(2)

	// Codes 3 (CodeReadOnlyReplica) and 4 (CodeBeyondHorizon) live in
	// repl.go with the replication protocol.

	// CodeOverloaded reports the server shed the request — an admission-gate
	// quota or concurrency shed, or a refused connection over the cap.
	// Retryable, and the message may carry a retry-after hint (see
	// OverloadMsg) telling the client when a retry is worth sending.
	CodeOverloaded = byte(5)
)

// Magic opens every MsgHello payload.
const Magic = "immw"

// Version is the protocol version this package speaks. Version 2 added the
// error-code byte leading every MsgError payload.
const Version = byte(2)

// MaxFrame bounds a frame's length field — oversized frames indicate a
// corrupt or hostile peer and kill the connection before any allocation.
const MaxFrame = 16 << 20

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadHandshake  = errors.New("wire: bad handshake")
)

// WriteFrame writes one frame. The payload may be nil.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[4] = typ
	_, err := w.Write(append(hdr, payload...))
	return err
}

// ReadFrame reads one frame, rejecting empty and oversized ones.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, errors.New("wire: empty frame")
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	typ = hdr[4]
	if n == 1 {
		return typ, nil, nil
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// HelloPayload builds the MsgHello payload.
func HelloPayload() []byte {
	return append([]byte(Magic), Version)
}

// CheckHello validates a MsgHello payload and returns the peer's version.
func CheckHello(payload []byte) (byte, error) {
	if len(payload) != len(Magic)+1 || string(payload[:len(Magic)]) != Magic {
		return 0, ErrBadHandshake
	}
	v := payload[len(Magic)]
	if v != Version {
		return v, fmt.Errorf("%w: version %d, want %d", ErrBadHandshake, v, Version)
	}
	return v, nil
}

// ErrorPayload builds a MsgError payload: code byte, then the message.
func ErrorPayload(code byte, msg string) []byte {
	return append([]byte{code}, msg...)
}

// ParseError splits a MsgError payload. An empty payload — which a v1 peer
// could produce for an empty error string — reads as a generic error.
func ParseError(payload []byte) (code byte, msg string) {
	if len(payload) == 0 {
		return CodeGeneric, "unknown server error"
	}
	return payload[0], string(payload[1:])
}

// redirectMarker separates a CodeReadOnlyReplica error message from the
// primary address appended after it. The unit separator cannot appear in an
// engine error string, so the split is unambiguous.
const redirectMarker = "\x1f"

// RedirectMsg appends the current primary's address to a read-only-replica
// error message, so the refusal doubles as a redirect: the client re-resolves
// to the named primary and retries there. An empty address is a refusal with
// no forwarding information (the replica does not know its primary yet).
func RedirectMsg(msg, primary string) string {
	if primary == "" {
		return msg
	}
	return msg + redirectMarker + primary
}

// ParseRedirect splits a CodeReadOnlyReplica error message into the bare
// message and the primary address RedirectMsg embedded, if any.
func ParseRedirect(msg string) (clean, primary string) {
	if i := strings.LastIndex(msg, redirectMarker); i >= 0 {
		return msg[:i], msg[i+len(redirectMarker):]
	}
	return msg, ""
}

// overloadMarker separates a CodeOverloaded error message from the
// retry-after hint appended after it. Like redirectMarker, a C0 control
// character cannot appear in an engine error string, so the split is
// unambiguous; a distinct separator keeps the two encodings from ever
// shadowing each other.
const overloadMarker = "\x1e"

// OverloadMsg appends a retry-after hint to a CodeOverloaded error message.
// The hint is encoded as decimal milliseconds (rounded up to at least 1ms so
// a positive hint survives the trip); a non-positive hint leaves the message
// bare, which clients read as "back off on your own schedule".
func OverloadMsg(msg string, retryAfter time.Duration) string {
	if retryAfter <= 0 {
		return msg
	}
	ms := (retryAfter + time.Millisecond - 1) / time.Millisecond
	return msg + overloadMarker + strconv.FormatInt(int64(ms), 10)
}

// ParseOverload splits a CodeOverloaded error message into the bare message
// and the retry-after hint OverloadMsg embedded, if any. A missing or
// malformed hint parses as zero (no hint).
func ParseOverload(msg string) (clean string, retryAfter time.Duration) {
	i := strings.LastIndex(msg, overloadMarker)
	if i < 0 {
		return msg, 0
	}
	ms, err := strconv.ParseInt(msg[i+len(overloadMarker):], 10, 64)
	if err != nil || ms < 0 {
		return msg, 0
	}
	return msg[:i], time.Duration(ms) * time.Millisecond
}

// AppendString appends a uvarint-length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// ReadString consumes a uvarint-length-prefixed string.
func ReadString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, errors.New("wire: truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// ReadUvarint consumes one uvarint.
func ReadUvarint(b []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, errors.New("wire: truncated uvarint")
	}
	return n, b[sz:], nil
}
