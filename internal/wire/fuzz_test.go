package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameRoundTrip: any (type, payload) pair either encodes and decodes to
// itself, or is rejected for size at write time — nothing in between.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(MsgExec, []byte("SELECT * FROM t"))
	f.Add(MsgExec, []byte{})
	f.Add(MsgHello, HelloPayload())
	f.Add(MsgError, ErrorPayload(CodeDegraded, "engine degraded"))
	f.Add(byte(0xff), bytes.Repeat([]byte{0xaa}, 4096))
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		var buf bytes.Buffer
		err := WriteFrame(&buf, typ, payload)
		if len(payload)+1 > MaxFrame {
			if !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("oversize write: got %v", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		gotTyp, gotPayload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if gotTyp != typ || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip: (%#x, %d bytes) -> (%#x, %d bytes)",
				typ, len(payload), gotTyp, len(gotPayload))
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the decoder. It must never
// panic or over-allocate, and anything it accepts must re-encode to exactly
// the bytes it consumed (the encoding is canonical).
func FuzzReadFrame(f *testing.F) {
	valid := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(MsgHello, HelloPayload()))
	f.Add(valid(MsgExec, nil)) // zero-length Exec: smallest legal frame
	f.Add([]byte{0, 0, 0})     // truncated header
	f.Add([]byte{0, 0, 0, 0})  // zero-length frame: no type byte
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, MsgExec})
	f.Add([]byte{1, 0, 0, 1, MsgExec, 'x'}) // just over MaxFrame
	f.Fuzz(func(t *testing.T, stream []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		if len(payload)+1 > MaxFrame {
			t.Fatalf("accepted %d-byte payload past MaxFrame", len(payload))
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encode accepted frame: %v", err)
		}
		if consumed := buf.Len(); !bytes.Equal(buf.Bytes(), stream[:consumed]) {
			t.Fatalf("re-encoding differs from the %d bytes consumed", consumed)
		}
	})
}

// FuzzWireStrings walks arbitrary bytes with the uvarint-prefixed string
// reader: no panics, and every successful read must strictly consume input
// (a decoder that can succeed without progress loops forever on its caller).
func FuzzWireStrings(f *testing.F) {
	f.Add(AppendString(AppendString(nil, "hello"), ""))
	f.Add([]byte{200})                    // length prefix past the buffer
	f.Add([]byte{0x80})                   // truncated uvarint: continuation, no end
	f.Add(bytes.Repeat([]byte{0xff}, 10)) // uvarint overflow
	f.Fuzz(func(t *testing.T, b []byte) {
		rest := b
		for len(rest) > 0 {
			s, r, err := ReadString(rest)
			if err != nil {
				break
			}
			if len(r) >= len(rest) {
				t.Fatalf("ReadString made no progress (%d -> %d bytes)", len(rest), len(r))
			}
			if len(s) > len(rest) {
				t.Fatalf("string longer than its input: %d > %d", len(s), len(rest))
			}
			rest = r
		}
		if n, r, err := ReadUvarint(b); err == nil {
			if len(r) >= len(b) && len(b) > 0 {
				t.Fatalf("ReadUvarint made no progress")
			}
			_ = n
		}
	})
}

// TestMalformedFrames sweeps the hostile-input table: every way a frame
// header can lie about its body, plus the boundary cases either side of the
// 16MB cap.
func TestMalformedFrames(t *testing.T) {
	frame := func(n uint32, body ...byte) []byte {
		return append([]byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}, body...)
	}
	cases := []struct {
		name    string
		in      []byte
		wantErr error // nil means "any error"; io.EOF et al checked by name
		ok      bool  // frame must parse
		typ     byte
		payload int // expected payload length when ok
	}{
		{name: "empty stream", in: nil},
		{name: "truncated header 1B", in: []byte{0}},
		{name: "truncated header 4B", in: []byte{0, 0, 0, 1}},
		{name: "zero-length frame", in: frame(0)},
		{name: "zero-length then junk", in: frame(0, 'x', 'y')},
		{name: "length 1 missing type", in: frame(1)},
		{name: "zero-length exec", in: frame(1, MsgExec), ok: true, typ: MsgExec, payload: 0},
		{name: "body shorter than length", in: frame(100, MsgExec, 'S', 'E', 'L')},
		{name: "length just over cap", in: frame(MaxFrame+1, MsgExec), wantErr: ErrFrameTooLarge},
		{name: "length absurdly large", in: frame(0xffffffff, MsgExec), wantErr: ErrFrameTooLarge},
		{name: "length at cap, body truncated", in: frame(MaxFrame, MsgExec, 'x')},
		{
			name: "length exactly at cap, full body",
			in:   frame(MaxFrame, append([]byte{MsgExec}, make([]byte, MaxFrame-1)...)...),
			ok:   true, typ: MsgExec, payload: MaxFrame - 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			typ, payload, err := ReadFrame(bytes.NewReader(tc.in))
			if tc.ok {
				if err != nil {
					t.Fatalf("want frame, got error %v", err)
				}
				if typ != tc.typ || len(payload) != tc.payload {
					t.Fatalf("got (%#x, %d bytes), want (%#x, %d bytes)",
						typ, len(payload), tc.typ, tc.payload)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted malformed input as (%#x, %d bytes)", typ, len(payload))
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestMalformedHandshake: every way a hello payload can be wrong.
func TestMalformedHandshake(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short", []byte("imm")},
		{"magic only", []byte(Magic)},
		{"wrong magic", []byte("http5")},
		{"wrong version", append([]byte(Magic), 99)},
		{"trailing junk", append(HelloPayload(), 0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := CheckHello(tc.in); !errors.Is(err, ErrBadHandshake) {
				t.Fatalf("got %v, want ErrBadHandshake", err)
			}
		})
	}
}

// TestMalformedUvarints: truncated and overflowing varints must error, never
// panic or mis-slice.
func TestMalformedUvarints(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"continuation bit, no terminator", []byte{0x80}},
		{"all continuation bytes", bytes.Repeat([]byte{0x80}, 12)},
		{"overflow", bytes.Repeat([]byte{0xff}, 10)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadUvarint(tc.in); err == nil {
				t.Fatal("ReadUvarint accepted malformed input")
			}
			if _, _, err := ReadString(tc.in); err == nil {
				t.Fatal("ReadString accepted malformed input")
			}
		})
	}
	// A length prefix pointing past the buffer is truncation, not a crash.
	if _, _, err := ReadString([]byte{0x20, 'a', 'b'}); err == nil {
		t.Fatal("ReadString accepted a length past the buffer")
	}
}
