package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte("SELECT * FROM t"),
		{},
		nil,
		bytes.Repeat([]byte("x"), 100_000),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, MsgExec, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != MsgExec {
			t.Fatalf("frame %d: type %#x", i, typ)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgExec, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write oversize: got %v", err)
	}
	// A hostile length header must be rejected before any allocation.
	hostile := []byte{0xff, 0xff, 0xff, 0xff, MsgExec}
	if _, _, err := ReadFrame(bytes.NewReader(hostile)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read oversize: got %v", err)
	}
	// A zero-length frame has no type byte and is malformed.
	empty := []byte{0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(empty)); err == nil {
		t.Fatal("read empty frame: want error")
	}
}

func TestHello(t *testing.T) {
	v, err := CheckHello(HelloPayload())
	if err != nil {
		t.Fatal(err)
	}
	if v != Version {
		t.Fatalf("version %d, want %d", v, Version)
	}
	if _, err := CheckHello([]byte("http/1.1")); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("bad magic: got %v", err)
	}
	bad := HelloPayload()
	bad[len(bad)-1] = 99
	if _, err := CheckHello(bad); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("bad version: got %v", err)
	}
}

func TestOverloadMsg(t *testing.T) {
	cases := []struct {
		msg   string
		hint  time.Duration
		want  string
		parse time.Duration
	}{
		{"server: overloaded", 100 * time.Millisecond, "server: overloaded", 100 * time.Millisecond},
		{"server: overloaded", 0, "server: overloaded", 0},
		{"server: overloaded", -time.Second, "server: overloaded", 0},
		// Sub-millisecond hints round up so a positive hint survives the trip.
		{"shed", 10 * time.Microsecond, "shed", time.Millisecond},
	}
	for _, c := range cases {
		enc := OverloadMsg(c.msg, c.hint)
		clean, got := ParseOverload(enc)
		if clean != c.want || got != c.parse {
			t.Fatalf("OverloadMsg(%q, %v) round-trip: got (%q, %v), want (%q, %v)",
				c.msg, c.hint, clean, got, c.want, c.parse)
		}
	}
	// A malformed hint parses as zero instead of failing.
	if _, hint := ParseOverload("msg" + overloadMarker + "not-a-number"); hint != 0 {
		t.Fatalf("malformed hint: got %v, want 0", hint)
	}
	// Hint-less messages pass through untouched.
	if clean, hint := ParseOverload("bare"); clean != "bare" || hint != 0 {
		t.Fatalf("bare message: got (%q, %v)", clean, hint)
	}
}

func TestStringHelpers(t *testing.T) {
	b := AppendString(nil, "hello")
	b = AppendString(b, "")
	b = AppendString(b, "world")
	for _, want := range []string{"hello", "", "world"} {
		var s string
		var err error
		s, b, err = ReadString(b)
		if err != nil {
			t.Fatal(err)
		}
		if s != want {
			t.Fatalf("got %q, want %q", s, want)
		}
	}
	if _, _, err := ReadString([]byte{200}); err == nil {
		t.Fatal("truncated string: want error")
	}
}
