// Replication messages: the segment-shipping protocol a follower speaks to
// its primary, layered on the same frame format as the query protocol.
//
// The stream is pull-based and strictly request/response, like the query
// side: the follower opens with MsgReplHello (carrying the LSN it wants to
// resume from), then drives the transfer with MsgReplPull requests. The
// primary answers each pull with either one MsgSegChunk — a checksummed span
// of the durable log that never crosses a segment boundary — or, while the
// follower is re-seeding, one MsgBasePart of a base snapshot. A pull's
// applied-LSN field doubles as the horizon acknowledgement the primary's lag
// gauge reads; no separate ack message exists, so the protocol stays free of
// unsolicited frames and works unchanged over the simulated network.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Replication message types. Requests flow follower to primary; responses
// have the high bit set.
const (
	// MsgReplHello opens a replication connection: ReplMagic, a version
	// byte, and the resume LSN (0 for "from the beginning").
	MsgReplHello = byte(0x10)
	// MsgReplPull requests the next chunk (or base part): the LSN to read
	// from, a byte budget, and the follower's applied LSN as the horizon ack.
	MsgReplPull = byte(0x11)

	// MsgReplHelloOK accepts: flags byte (ReplFlagBase when a base snapshot
	// precedes the log stream), the LSN the stream will start at, and the
	// primary's first-retained and durable-end LSNs.
	MsgReplHelloOK = byte(0x90)
	// MsgSegChunk carries one shipped log span: segment seq, segment start
	// LSN, chunk LSN, CRC-32C of the data, and the data itself. Empty data
	// means "caught up".
	MsgSegChunk = byte(0x91)
	// MsgBasePart carries one part of a base snapshot (see BasePart).
	MsgBasePart = byte(0x92)
)

// Replication error codes, continuing the wire code space. They ride
// MsgError frames on the query protocol too: a write sent to a replica is
// answered with CodeReadOnlyReplica rather than a generic statement error.
const (
	// CodeReadOnlyReplica: the server is a replica; writes must be
	// redirected to the primary. Retrying here will fail the same way.
	CodeReadOnlyReplica = byte(3)
	// CodeBeyondHorizon: an AS OF read asked for a timestamp the replica has
	// not fully applied yet. Retryable against the same replica after it
	// catches up, or immediately against the primary.
	CodeBeyondHorizon = byte(4)
)

// ReplMagic opens every MsgReplHello payload, distinct from the query
// protocol's Magic so a misdirected client fails the handshake loudly.
const ReplMagic = "immr"

// ReplVersion is the replication protocol version.
const ReplVersion = byte(1)

// ReplFlagBase in a MsgReplHelloOK flags byte announces that base-snapshot
// parts precede the log stream.
const ReplFlagBase = byte(1)

// Base part kinds (first byte of a MsgBasePart payload).
const (
	// BaseMeta: page size, page count, checkpoint LSN, catalog/meta blob.
	BaseMeta = byte(0)
	// BasePages: a batch of (pageID, image) pairs.
	BasePages = byte(1)
	// BasePTT: a batch of (TID, timestamp) persistent-timestamp entries.
	BasePTT = byte(2)
	// BaseDone: end of snapshot; payload carries the log stream's start LSN.
	BaseDone = byte(3)
)

// ErrReplProto reports a malformed replication payload.
var ErrReplProto = errors.New("wire: bad replication payload")

// ErrChunkChecksum reports a MsgSegChunk whose data does not match its CRC —
// corruption in transit; the follower drops the connection and re-pulls.
var ErrChunkChecksum = errors.New("wire: segment chunk checksum mismatch")

var chunkCRC = crc32.MakeTable(crc32.Castagnoli)

// ReplHello is the replication handshake request.
type ReplHello struct {
	From uint64 // resume LSN; 0 = from the beginning of retained history
}

// AppendReplHello builds a MsgReplHello payload.
func AppendReplHello(b []byte, h ReplHello) []byte {
	b = append(b, ReplMagic...)
	b = append(b, ReplVersion)
	return binary.AppendUvarint(b, h.From)
}

// ParseReplHello validates and decodes a MsgReplHello payload.
func ParseReplHello(p []byte) (ReplHello, error) {
	if len(p) < len(ReplMagic)+1 || string(p[:len(ReplMagic)]) != ReplMagic {
		return ReplHello{}, fmt.Errorf("%w: handshake magic", ErrReplProto)
	}
	if v := p[len(ReplMagic)]; v != ReplVersion {
		return ReplHello{}, fmt.Errorf("%w: version %d, want %d", ErrReplProto, v, ReplVersion)
	}
	rest := p[len(ReplMagic)+1:]
	from, rest, err := ReadUvarint(rest)
	if err != nil || len(rest) != 0 {
		return ReplHello{}, fmt.Errorf("%w: hello resume LSN", ErrReplProto)
	}
	return ReplHello{From: from}, nil
}

// ReplHelloOK is the handshake response.
type ReplHelloOK struct {
	Flags         byte   // ReplFlagBase when a base snapshot comes first
	Start         uint64 // LSN the log stream will start at
	FirstRetained uint64 // oldest LSN still on the primary's disk
	Flushed       uint64 // primary's durable end at handshake time
	Epoch         uint64 // primary's promotion epoch; the follower refuses a lower one
}

// AppendReplHelloOK builds a MsgReplHelloOK payload.
func AppendReplHelloOK(b []byte, h ReplHelloOK) []byte {
	b = append(b, h.Flags)
	b = binary.AppendUvarint(b, h.Start)
	b = binary.AppendUvarint(b, h.FirstRetained)
	b = binary.AppendUvarint(b, h.Flushed)
	return binary.AppendUvarint(b, h.Epoch)
}

// ParseReplHelloOK decodes a MsgReplHelloOK payload. Epoch is an optional
// trailing field — a pre-promotion peer's payload decodes with epoch 0.
func ParseReplHelloOK(p []byte) (ReplHelloOK, error) {
	if len(p) < 1 {
		return ReplHelloOK{}, fmt.Errorf("%w: empty hello-ok", ErrReplProto)
	}
	h := ReplHelloOK{Flags: p[0]}
	rest := p[1:]
	var err error
	if h.Start, rest, err = ReadUvarint(rest); err != nil {
		return ReplHelloOK{}, fmt.Errorf("%w: hello-ok start", ErrReplProto)
	}
	if h.FirstRetained, rest, err = ReadUvarint(rest); err != nil {
		return ReplHelloOK{}, fmt.Errorf("%w: hello-ok first-retained", ErrReplProto)
	}
	if h.Flushed, rest, err = ReadUvarint(rest); err != nil {
		return ReplHelloOK{}, fmt.Errorf("%w: hello-ok flushed", ErrReplProto)
	}
	if len(rest) != 0 {
		if h.Epoch, rest, err = ReadUvarint(rest); err != nil || len(rest) != 0 {
			return ReplHelloOK{}, fmt.Errorf("%w: hello-ok epoch", ErrReplProto)
		}
	}
	return h, nil
}

// ReplPull requests the next transfer unit. Applied is the follower's
// replication horizon (its applied LSN): the primary records it for its lag
// gauge, and — because a follower only ever pulls what it has durably
// positioned for — From is also an implicit ack of everything before it.
type ReplPull struct {
	From    uint64 // LSN to read from
	Max     uint32 // response byte budget
	Applied uint64 // follower's applied LSN (horizon ack)
}

// AppendReplPull builds a MsgReplPull payload.
func AppendReplPull(b []byte, r ReplPull) []byte {
	b = binary.AppendUvarint(b, r.From)
	b = binary.AppendUvarint(b, uint64(r.Max))
	return binary.AppendUvarint(b, r.Applied)
}

// ParseReplPull decodes a MsgReplPull payload.
func ParseReplPull(p []byte) (ReplPull, error) {
	var r ReplPull
	var maxb uint64
	var err error
	rest := p
	if r.From, rest, err = ReadUvarint(rest); err != nil {
		return ReplPull{}, fmt.Errorf("%w: pull from", ErrReplProto)
	}
	if maxb, rest, err = ReadUvarint(rest); err != nil || maxb > 1<<32-1 {
		return ReplPull{}, fmt.Errorf("%w: pull max", ErrReplProto)
	}
	r.Max = uint32(maxb)
	if r.Applied, rest, err = ReadUvarint(rest); err != nil || len(rest) != 0 {
		return ReplPull{}, fmt.Errorf("%w: pull applied", ErrReplProto)
	}
	return r, nil
}

// SegChunk is one shipped log span (mirrors wal.ShipChunk). Empty Data means
// the follower has caught up with the primary's durable prefix.
type SegChunk struct {
	Seq      uint64
	SegStart uint64
	At       uint64
	Data     []byte
}

// AppendSegChunk builds a MsgSegChunk payload. The CRC covers Data only;
// record-level CRCs inside the data protect everything else end to end.
func AppendSegChunk(b []byte, c SegChunk) []byte {
	b = binary.AppendUvarint(b, c.Seq)
	b = binary.AppendUvarint(b, c.SegStart)
	b = binary.AppendUvarint(b, c.At)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(c.Data, chunkCRC))
	b = append(b, crc[:]...)
	b = binary.AppendUvarint(b, uint64(len(c.Data)))
	return append(b, c.Data...)
}

// ParseSegChunk decodes and checksum-verifies a MsgSegChunk payload.
func ParseSegChunk(p []byte) (SegChunk, error) {
	var c SegChunk
	var err error
	rest := p
	if c.Seq, rest, err = ReadUvarint(rest); err != nil {
		return SegChunk{}, fmt.Errorf("%w: chunk seq", ErrReplProto)
	}
	if c.SegStart, rest, err = ReadUvarint(rest); err != nil {
		return SegChunk{}, fmt.Errorf("%w: chunk segment start", ErrReplProto)
	}
	if c.At, rest, err = ReadUvarint(rest); err != nil {
		return SegChunk{}, fmt.Errorf("%w: chunk LSN", ErrReplProto)
	}
	if len(rest) < 4 {
		return SegChunk{}, fmt.Errorf("%w: chunk checksum", ErrReplProto)
	}
	want := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	n, rest, err := ReadUvarint(rest)
	if err != nil || n > uint64(len(rest)) {
		return SegChunk{}, fmt.Errorf("%w: truncated chunk data", ErrReplProto)
	}
	if uint64(len(rest)) != n {
		return SegChunk{}, fmt.Errorf("%w: trailing bytes after chunk", ErrReplProto)
	}
	if n > 0 {
		c.Data = append([]byte(nil), rest[:n]...)
	}
	if crc32.Checksum(c.Data, chunkCRC) != want {
		return SegChunk{}, ErrChunkChecksum
	}
	return c, nil
}

// BaseMetaPart is the first part of a base snapshot.
type BaseMetaPart struct {
	PageSize uint32
	NumPages uint64
	CkptLSN  uint64 // primary checkpoint the snapshot is consistent with
	Meta     []byte // pager meta blob (the catalog)
}

// AppendBaseMeta builds a BaseMeta MsgBasePart payload.
func AppendBaseMeta(b []byte, m BaseMetaPart) []byte {
	b = append(b, BaseMeta)
	b = binary.AppendUvarint(b, uint64(m.PageSize))
	b = binary.AppendUvarint(b, m.NumPages)
	b = binary.AppendUvarint(b, m.CkptLSN)
	b = binary.AppendUvarint(b, uint64(len(m.Meta)))
	return append(b, m.Meta...)
}

// BasePage is one page image in a BasePages part.
type BasePage struct {
	ID  uint64
	Img []byte
}

// AppendBasePages builds a BasePages MsgBasePart payload.
func AppendBasePages(b []byte, pages []BasePage) []byte {
	b = append(b, BasePages)
	b = binary.AppendUvarint(b, uint64(len(pages)))
	for _, pg := range pages {
		b = binary.AppendUvarint(b, pg.ID)
		b = binary.AppendUvarint(b, uint64(len(pg.Img)))
		b = append(b, pg.Img...)
	}
	return b
}

// BasePTTEntry is one persistent-timestamp-table entry in a BasePTT part.
type BasePTTEntry struct {
	TID uint64
	TS  [12]byte // itime.Timestamp, encoded
}

// AppendBasePTT builds a BasePTT MsgBasePart payload.
func AppendBasePTT(b []byte, entries []BasePTTEntry) []byte {
	b = append(b, BasePTT)
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = binary.AppendUvarint(b, e.TID)
		b = append(b, e.TS[:]...)
	}
	return b
}

// AppendBaseDone builds a BaseDone MsgBasePart payload; start is the LSN the
// log stream will begin at.
func AppendBaseDone(b []byte, start uint64) []byte {
	b = append(b, BaseDone)
	return binary.AppendUvarint(b, start)
}

// BasePart is a decoded MsgBasePart. Exactly one of the kind-specific fields
// is meaningful, selected by Kind.
type BasePart struct {
	Kind    byte
	Meta    BaseMetaPart   // BaseMeta
	Pages   []BasePage     // BasePages
	Entries []BasePTTEntry // BasePTT
	Start   uint64         // BaseDone
}

// ParseBasePart decodes any MsgBasePart payload.
func ParseBasePart(p []byte) (BasePart, error) {
	if len(p) < 1 {
		return BasePart{}, fmt.Errorf("%w: empty base part", ErrReplProto)
	}
	out := BasePart{Kind: p[0]}
	rest := p[1:]
	var err error
	switch out.Kind {
	case BaseMeta:
		var ps uint64
		if ps, rest, err = ReadUvarint(rest); err != nil || ps > 1<<31 {
			return BasePart{}, fmt.Errorf("%w: base page size", ErrReplProto)
		}
		out.Meta.PageSize = uint32(ps)
		if out.Meta.NumPages, rest, err = ReadUvarint(rest); err != nil {
			return BasePart{}, fmt.Errorf("%w: base page count", ErrReplProto)
		}
		if out.Meta.CkptLSN, rest, err = ReadUvarint(rest); err != nil {
			return BasePart{}, fmt.Errorf("%w: base checkpoint", ErrReplProto)
		}
		var n uint64
		if n, rest, err = ReadUvarint(rest); err != nil || n > uint64(len(rest)) {
			return BasePart{}, fmt.Errorf("%w: base meta blob", ErrReplProto)
		}
		if uint64(len(rest)) != n {
			return BasePart{}, fmt.Errorf("%w: trailing bytes after meta", ErrReplProto)
		}
		out.Meta.Meta = append([]byte(nil), rest[:n]...)
	case BasePages:
		var count uint64
		if count, rest, err = ReadUvarint(rest); err != nil || count > uint64(len(rest)) {
			return BasePart{}, fmt.Errorf("%w: base page batch count", ErrReplProto)
		}
		out.Pages = make([]BasePage, 0, count)
		for i := uint64(0); i < count; i++ {
			var pg BasePage
			if pg.ID, rest, err = ReadUvarint(rest); err != nil {
				return BasePart{}, fmt.Errorf("%w: base page id", ErrReplProto)
			}
			var n uint64
			if n, rest, err = ReadUvarint(rest); err != nil || n > uint64(len(rest)) {
				return BasePart{}, fmt.Errorf("%w: base page image", ErrReplProto)
			}
			pg.Img = append([]byte(nil), rest[:n]...)
			rest = rest[n:]
			out.Pages = append(out.Pages, pg)
		}
		if len(rest) != 0 {
			return BasePart{}, fmt.Errorf("%w: trailing bytes after pages", ErrReplProto)
		}
	case BasePTT:
		var count uint64
		if count, rest, err = ReadUvarint(rest); err != nil || count > uint64(len(rest)) {
			return BasePart{}, fmt.Errorf("%w: base PTT count", ErrReplProto)
		}
		out.Entries = make([]BasePTTEntry, 0, count)
		for i := uint64(0); i < count; i++ {
			var e BasePTTEntry
			if e.TID, rest, err = ReadUvarint(rest); err != nil {
				return BasePart{}, fmt.Errorf("%w: base PTT tid", ErrReplProto)
			}
			if len(rest) < len(e.TS) {
				return BasePart{}, fmt.Errorf("%w: base PTT timestamp", ErrReplProto)
			}
			copy(e.TS[:], rest)
			rest = rest[len(e.TS):]
			out.Entries = append(out.Entries, e)
		}
		if len(rest) != 0 {
			return BasePart{}, fmt.Errorf("%w: trailing bytes after PTT", ErrReplProto)
		}
	case BaseDone:
		if out.Start, rest, err = ReadUvarint(rest); err != nil || len(rest) != 0 {
			return BasePart{}, fmt.Errorf("%w: base done", ErrReplProto)
		}
	default:
		return BasePart{}, fmt.Errorf("%w: unknown base part kind %d", ErrReplProto, out.Kind)
	}
	return out, nil
}
