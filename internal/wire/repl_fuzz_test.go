package wire

// Fuzzing the replication codecs. Two properties per message type:
//
//   - Structured round trip: any field values encode and decode back to
//     themselves (Append* and Parse* are inverses on the valid domain).
//   - Hostile decode: arbitrary bytes never panic or over-allocate, and any
//     payload the parser accepts re-encodes and re-parses to the same value
//     (the parser's output is always within the encoder's domain — uvarint
//     padding is the only permitted representational slack).
//
// SegChunk additionally pins the checksum contract: corrupting any data byte
// of a valid chunk must surface ErrChunkChecksum, never a silent accept.
// Seed corpora live under testdata/fuzz/ — including a truncated chunk and a
// checksum-mismatch chunk — so plain `go test` sweeps the known-nasty inputs
// on every run.

import (
	"bytes"
	"errors"
	"testing"
)

func FuzzParseReplHello(f *testing.F) {
	f.Add(AppendReplHello(nil, ReplHello{}))
	f.Add(AppendReplHello(nil, ReplHello{From: 1 << 40}))
	f.Add([]byte("imm"))                         // truncated magic
	f.Add([]byte("http5"))                       // wrong magic
	f.Add(append([]byte(ReplMagic), 99))         // wrong version
	f.Add(append(AppendReplHello(nil, ReplHello{From: 7}), 0)) // trailing junk
	f.Fuzz(func(t *testing.T, p []byte) {
		h, err := ParseReplHello(p)
		if err != nil {
			return
		}
		h2, err := ParseReplHello(AppendReplHello(nil, h))
		if err != nil || h2 != h {
			t.Fatalf("accepted hello %+v does not survive re-encode: %+v, %v", h, h2, err)
		}
	})
}

func FuzzParseReplHelloOK(f *testing.F) {
	f.Add(AppendReplHelloOK(nil, ReplHelloOK{}))
	f.Add(AppendReplHelloOK(nil, ReplHelloOK{Flags: ReplFlagBase, Start: 16, FirstRetained: 16, Flushed: 1 << 33}))
	f.Add([]byte{})        // empty
	f.Add([]byte{0, 0x80}) // truncated uvarint
	f.Fuzz(func(t *testing.T, p []byte) {
		h, err := ParseReplHelloOK(p)
		if err != nil {
			return
		}
		h2, err := ParseReplHelloOK(AppendReplHelloOK(nil, h))
		if err != nil || h2 != h {
			t.Fatalf("accepted hello-ok %+v does not survive re-encode: %+v, %v", h, h2, err)
		}
	})
}

func FuzzParseReplPull(f *testing.F) {
	f.Add(AppendReplPull(nil, ReplPull{}))
	f.Add(AppendReplPull(nil, ReplPull{From: 4286, Max: 256 << 10, Applied: 4286}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // Max past uint32
	f.Fuzz(func(t *testing.T, p []byte) {
		r, err := ParseReplPull(p)
		if err != nil {
			return
		}
		r2, err := ParseReplPull(AppendReplPull(nil, r))
		if err != nil || r2 != r {
			t.Fatalf("accepted pull %+v does not survive re-encode: %+v, %v", r, r2, err)
		}
	})
}

func FuzzSegChunkRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(16), uint64(16), []byte{})
	f.Add(uint64(3), uint64(4096), uint64(5000), []byte("record bytes"))
	f.Fuzz(func(t *testing.T, seq, segStart, at uint64, data []byte) {
		enc := AppendSegChunk(nil, SegChunk{Seq: seq, SegStart: segStart, At: at, Data: data})
		c, err := ParseSegChunk(enc)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if c.Seq != seq || c.SegStart != segStart || c.At != at || !bytes.Equal(c.Data, data) {
			t.Fatalf("round trip changed the chunk: %+v", c)
		}
		if len(data) > 0 {
			// Flip one data byte: the CRC must catch it. The data region is
			// the encoding's tail.
			bad := append([]byte(nil), enc...)
			bad[len(bad)-1] ^= 0x01
			if _, err := ParseSegChunk(bad); !errors.Is(err, ErrChunkChecksum) {
				t.Fatalf("corrupted data byte: got %v, want ErrChunkChecksum", err)
			}
		}
		// Truncating the data region must be a decode error, never a panic.
		if _, err := ParseSegChunk(enc[:len(enc)-1]); err == nil {
			t.Fatal("truncated chunk accepted")
		}
	})
}

func FuzzParseSegChunk(f *testing.F) {
	valid := AppendSegChunk(nil, SegChunk{Seq: 2, SegStart: 4096, At: 4200, Data: []byte("payload")})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated mid-data
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt) // checksum mismatch
	f.Add(AppendSegChunk(nil, SegChunk{At: 16}))
	f.Fuzz(func(t *testing.T, p []byte) {
		c, err := ParseSegChunk(p)
		if err != nil {
			return
		}
		c2, err := ParseSegChunk(AppendSegChunk(nil, c))
		if err != nil || c2.Seq != c.Seq || c2.SegStart != c.SegStart || c2.At != c.At || !bytes.Equal(c2.Data, c.Data) {
			t.Fatalf("accepted chunk %+v does not survive re-encode: %+v, %v", c, c2, err)
		}
	})
}

// reencodeBasePart maps a decoded part back through its kind's encoder.
func reencodeBasePart(p BasePart) []byte {
	switch p.Kind {
	case BaseMeta:
		return AppendBaseMeta(nil, p.Meta)
	case BasePages:
		return AppendBasePages(nil, p.Pages)
	case BasePTT:
		return AppendBasePTT(nil, p.Entries)
	default: // BaseDone; Parse rejects every other kind
		return AppendBaseDone(nil, p.Start)
	}
}

func FuzzParseBasePart(f *testing.F) {
	f.Add(AppendBaseMeta(nil, BaseMetaPart{PageSize: 1024, NumPages: 9, CkptLSN: 4286, Meta: []byte("catalog")}))
	f.Add(AppendBasePages(nil, []BasePage{{ID: 1, Img: bytes.Repeat([]byte{0xab}, 32)}, {ID: 7}}))
	f.Add(AppendBasePTT(nil, []BasePTTEntry{{TID: 5, TS: [12]byte{1, 2, 3}}}))
	f.Add(AppendBaseDone(nil, 8192))
	f.Add([]byte{BasePages, 0xff}) // count past the buffer
	f.Add([]byte{99, 0})           // unknown kind
	f.Fuzz(func(t *testing.T, p []byte) {
		part, err := ParseBasePart(p)
		if err != nil {
			return
		}
		part2, err := ParseBasePart(reencodeBasePart(part))
		if err != nil {
			t.Fatalf("accepted base part kind %d does not re-parse: %v", part.Kind, err)
		}
		if part2.Kind != part.Kind || part2.Start != part.Start ||
			part2.Meta.PageSize != part.Meta.PageSize || !bytes.Equal(part2.Meta.Meta, part.Meta.Meta) ||
			len(part2.Pages) != len(part.Pages) || len(part2.Entries) != len(part.Entries) {
			t.Fatalf("base part changed across re-encode: %+v vs %+v", part, part2)
		}
		for i := range part.Pages {
			if part2.Pages[i].ID != part.Pages[i].ID || !bytes.Equal(part2.Pages[i].Img, part.Pages[i].Img) {
				t.Fatalf("page %d changed across re-encode", i)
			}
		}
		for i := range part.Entries {
			if part2.Entries[i] != part.Entries[i] {
				t.Fatalf("PTT entry %d changed across re-encode", i)
			}
		}
	})
}
