package obs

// I/O error accounting. The storage layers (WAL, pager, COW tree) report
// every failed disk operation here, keyed by operation and errno class —
// the classes mirror vfs.ErrClass ("enospc", "eio", "crash", "other").
// The registry has no label support, so the (op, class) grid is
// pre-registered as one counter per cell; /metrics renders them all.

var ioErrOps = []string{"open", "read", "write", "sync", "truncate", "remove"}

var ioErrClasses = []string{"enospc", "eio", "crash", "other"}

var ioErrors = func() map[[2]string]*Counter {
	m := make(map[[2]string]*Counter, len(ioErrOps)*len(ioErrClasses))
	for _, op := range ioErrOps {
		for _, class := range ioErrClasses {
			m[[2]string{op, class}] = NewCounter(
				"immortaldb_io_errors_"+op+"_"+class+"_total",
				"Failed "+op+" operations with errno class "+class+".")
		}
	}
	return m
}()

// IOError counts one failed I/O operation. Unknown ops or classes fold into
// the "other" cell so no failure ever goes uncounted.
func IOError(op, class string) {
	c := ioErrors[[2]string{op, class}]
	if c == nil {
		if c = ioErrors[[2]string{op, "other"}]; c == nil {
			c = ioErrors[[2]string{"write", "other"}]
		}
	}
	c.Inc()
}

// IOErrorCount returns the counter value for one (op, class) cell; zero for
// unknown cells. Tests use it to assert failures were attributed correctly.
func IOErrorCount(op, class string) uint64 {
	if c := ioErrors[[2]string{op, class}]; c != nil {
		return c.Value()
	}
	return 0
}
