package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default histogram bounds for operation latencies,
// in seconds: a 1-2-5 progression from 1 µs to 10 s. Fsyncs land mid-range,
// cache hits in the first buckets, stuck operations in the overflow.
var LatencyBuckets = []float64{
	1e-6, 2e-6, 5e-6,
	1e-5, 2e-5, 5e-5,
	1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2,
	1e-1, 2e-1, 5e-1,
	1, 2, 5, 10,
}

// CountBuckets are histogram bounds for small cardinalities — group-commit
// batch sizes, chain hops per read.
var CountBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}

// Histogram is a fixed-bucket histogram with atomic recording: one
// bucket-count increment, one total-count increment, and one CAS-loop
// float add for the sum. Quantiles are derived from the bucket counts with
// linear interpolation inside the winning bucket.
type Histogram struct {
	name, help string
	uppers     []float64 // ascending bucket upper bounds
	counts     []atomic.Uint64
	// overflow counts observations above the last upper bound.
	overflow atomic.Uint64
	count    atomic.Uint64
	sumBits  atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(name, help string, uppers []float64) *Histogram {
	if len(uppers) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	sorted := sortedCopy(uppers)
	return &Histogram{
		name:   name,
		help:   help,
		uppers: sorted,
		counts: make([]atomic.Uint64, len(sorted)),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !Enabled() {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds. The zero
// start (the pattern `defer h.ObserveSince(obs.Now())` with recording
// disabled) records nothing.
func (h *Histogram) ObserveSince(start time.Time) {
	if !Enabled() || start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Now returns the current time when recording is enabled, the zero time
// otherwise — so a disabled build never calls the clock on the hot path.
func Now() time.Time {
	if !Enabled() {
		return time.Time{}
	}
	return time.Now()
}

// Count returns total observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// interpolating linearly within the winning bucket. Observations beyond the
// last bound report that bound (the histogram cannot see further). A
// histogram with no observations reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.uppers[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + frac*(h.uppers[i]-lower)
		}
		cum += n
	}
	return h.uppers[len(h.uppers)-1]
}

// writePrometheus renders the histogram as a Prometheus summary: derived
// quantiles plus _sum and _count. Summaries keep the scrape small; the raw
// buckets stay queryable in-process via Quantile.
func (h *Histogram) writePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", h.name, h.help, h.name)
	for _, q := range [...]float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "%s{quantile=%q} %g\n", h.name, fmt.Sprintf("%g", q), h.Quantile(q))
	}
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", h.name, h.Sum(), h.name, h.Count())
}
