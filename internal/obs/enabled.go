//go:build !obsoff

package obs

// compiledIn is true in default builds. Building with -tags obsoff turns it
// into a false constant, so every Enabled() check — and the recording code
// behind it — is eliminated by the compiler: the no-op baseline the overhead
// ablation compares against.
const compiledIn = true
