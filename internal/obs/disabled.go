//go:build obsoff

package obs

// compiledIn is false under the obsoff build tag: recording methods compile
// to a dead branch and spans to nil.
const compiledIn = false
