package obs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	if !compiledIn {
		t.Skip("recording compiled out (obsoff)")
	}
	c := NewCounter("test_counter_total", "test")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := NewGauge("test_gauge", "test")
	g.Set(10)
	g.Inc()
	g.Add(-3)
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %d, want 8", got)
	}
}

// TestHistogramBucketBoundaries pins the boundary rule: a value equal to a
// bucket's upper bound lands IN that bucket (SearchFloat64s finds the first
// upper >= v), and values beyond the last bound land in overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	if !compiledIn {
		t.Skip("recording compiled out (obsoff)")
	}
	h := newHistogram("test_hist", "test", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1} { // both <= 1
		h.Observe(v)
	}
	h.Observe(1.01) // (1,10]
	h.Observe(10)   // (1,10]: boundary value stays in its bucket
	h.Observe(100)  // (10,100]
	h.Observe(101)  // overflow
	wantCounts := []uint64{2, 2, 1}
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d count = %d, want %d", i, got, want)
		}
	}
	if got := h.overflow.Load(); got != 1 {
		t.Errorf("overflow = %d, want 1", got)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got, want := h.Sum(), 0.5+1+1.01+10+100+101; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	if !compiledIn {
		t.Skip("recording compiled out (obsoff)")
	}
	h := newHistogram("test_hist_q", "test", []float64{1, 2, 4, 8, 16})
	// 100 observations uniform in (0,1]: every quantile interpolates inside
	// the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if p50 := h.Quantile(0.5); p50 < 0.4 || p50 > 0.6 {
		t.Errorf("p50 = %g, want ~0.5", p50)
	}
	// Pile everything above the range: quantiles saturate at the last bound.
	h2 := newHistogram("test_hist_q2", "test", []float64{1})
	for i := 0; i < 10; i++ {
		h2.Observe(50)
	}
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %g, want last bound 1", got)
	}
	// Empty histogram.
	h3 := newHistogram("test_hist_q3", "test", []float64{1})
	if got := h3.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

// TestConcurrentRecording hammers one counter, one histogram and one span
// tree from many goroutines; run under -race this is the race-cleanliness
// proof, and the totals prove no lost updates.
func TestConcurrentRecording(t *testing.T) {
	if !compiledIn {
		t.Skip("recording compiled out (obsoff)")
	}
	c := NewCounter("test_conc_total", "test")
	h := newHistogram("test_conc_hist", "test", LatencyBuckets)
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, root := StartSpan(context.Background(), "conc.root")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				_, child := StartSpan(ctx, "conc.child")
				child.End()
			}
			root.End()
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestSlowOpCaptureAndRingEviction(t *testing.T) {
	if !compiledIn {
		t.Skip("recording compiled out (obsoff)")
	}
	defer SetSlowOpThreshold(100 * time.Millisecond)
	defer SetSlowOpCapacity(128)
	SetSlowOpCapacity(4)
	SetSlowOpThreshold(0) // capture everything

	for i := 0; i < 7; i++ {
		ctx, root := StartSpan(context.Background(), fmt.Sprintf("op-%d", i))
		cctx, child := StartSpan(ctx, "child-a")
		_, grandchild := StartSpan(cctx, "child-a-1")
		grandchild.End()
		child.End()
		root.End()
	}
	ops := SlowOps()
	if len(ops) != 4 {
		t.Fatalf("ring holds %d ops, want capacity 4", len(ops))
	}
	// Newest first; the oldest three (op-0..2) were evicted.
	for i, op := range ops {
		want := fmt.Sprintf("op-%d", 6-i)
		if op.Root.Name != want {
			t.Errorf("ops[%d] = %q, want %q", i, op.Root.Name, want)
		}
	}
	// Span tree shape survives recording.
	if len(ops[0].Root.Children) != 1 || ops[0].Root.Children[0].Name != "child-a" {
		t.Fatalf("root children = %+v, want [child-a]", ops[0].Root.Children)
	}
	if kids := ops[0].Root.Children[0].Children; len(kids) != 1 || kids[0].Name != "child-a-1" {
		t.Fatalf("grandchildren = %+v, want [child-a-1]", kids)
	}

	// Below-threshold roots are not recorded.
	ResetSlowOps()
	SetSlowOpThreshold(time.Hour)
	_, fast := StartSpan(context.Background(), "fast")
	fast.End()
	if got := SlowOps(); len(got) != 0 {
		t.Fatalf("fast op recorded: %+v", got)
	}
}

func TestSetEnabledStopsRecording(t *testing.T) {
	c := NewCounter("test_disable_total", "test")
	h := newHistogram("test_disable_hist", "test", []float64{1})
	SetEnabled(false)
	c.Inc()
	h.Observe(0.5)
	_, sp := StartSpan(context.Background(), "disabled")
	SetEnabled(true)
	sp.End() // nil span: no-op
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("recording not disabled: counter=%d hist=%d", c.Value(), h.Count())
	}
	if sp != nil {
		t.Fatal("StartSpan returned a live span while disabled")
	}
	c.Inc()
	if compiledIn && c.Value() != 1 {
		t.Fatal("recording did not resume")
	}
}

func TestWritePrometheus(t *testing.T) {
	if !compiledIn {
		t.Skip("recording compiled out (obsoff)")
	}
	c := NewCounter("test_prom_total", "a counter")
	c.Add(3)
	g := NewGauge("test_prom_gauge", "a gauge")
	g.Set(-2)
	h := NewHistogram("test_prom_seconds", "a histogram", LatencyBuckets)
	h.Observe(0.01)
	h.ObserveSince(time.Now().Add(-time.Millisecond))

	var b strings.Builder
	WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_prom_total counter",
		"test_prom_total 3",
		"test_prom_gauge -2",
		"# TYPE test_prom_seconds summary",
		`test_prom_seconds{quantile="0.5"}`,
		"test_prom_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	count, sum, qs, ok := HistogramSnapshot("test_prom_seconds", 0.5, 0.99)
	if !ok || count != 2 || sum <= 0 || len(qs) != 2 {
		t.Fatalf("HistogramSnapshot = %d %g %v %v", count, sum, qs, ok)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter("test_dup_total", "x")
	NewCounter("test_dup_total", "x")
}
