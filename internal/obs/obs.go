// Package obs is the engine's observability layer: dependency-free atomic
// counters and gauges, fixed-bucket latency histograms (p50/p95/p99
// derivable), and context-propagated trace spans feeding a ring-buffered
// slow-op log. Every hot subsystem (WAL, buffer pool, timestamp manager,
// TSB-tree, lock manager, serving layer) registers its metrics here at
// package init; cmd/immortald renders the whole registry in Prometheus text
// exposition format on /metrics and the slow-op ring on /debug/slowops.
//
// The layer is built to live on hot paths. Recording is a few atomic
// operations behind a single enabled check; building with the `obsoff` tag
// compiles every recording call down to a dead branch on a false constant,
// giving a true no-op baseline for overhead measurement (the runtime switch
// SetEnabled approximates the same baseline in one binary — see the "obs"
// experiment in internal/repro).
//
// Metrics are process-global, like Prometheus default-registry collectors: a
// process serving several DB instances aggregates them. Counters and
// histograms are cumulative so aggregation is sound; instance-exact numbers
// stay available via DB.Stats.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// disabled is the runtime kill switch; the zero value means enabled. The
// compile-time switch is the `obsoff` build tag (see compiledIn).
var disabled atomic.Bool

// Enabled reports whether recording is live. With the obsoff build tag,
// compiledIn is a false constant and every recording method's enabled check
// folds away.
func Enabled() bool { return compiledIn && !disabled.Load() }

// SetEnabled flips the runtime switch. Registered metrics keep their values;
// recording simply stops (or resumes). Used by the overhead ablation to
// measure the instrumented-vs-no-op delta within one binary.
func SetEnabled(on bool) { disabled.Store(!on) }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if !Enabled() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !Enabled() {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if !Enabled() {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds registered metrics in registration order. The package-level
// constructors (NewCounter, NewGauge, NewHistogram) register into Default,
// which is what /metrics renders.
type Registry struct {
	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	names    map[string]bool
}

// Default is the process-wide registry.
var Default = &Registry{names: make(map[string]bool)}

func (r *Registry) checkName(name string) {
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
}

// NewCounter registers a counter in the Default registry. Metric names
// follow Prometheus conventions (snake_case, _total suffix for counters).
// Registration happens at package init; a duplicate name panics.
func NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	Default.mu.Lock()
	defer Default.mu.Unlock()
	Default.checkName(name)
	Default.counters = append(Default.counters, c)
	return c
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	Default.mu.Lock()
	defer Default.mu.Unlock()
	Default.checkName(name)
	Default.gauges = append(Default.gauges, g)
	return g
}

// NewHistogram registers a histogram with the given bucket upper bounds
// (ascending; an implicit +Inf bucket is appended) in the Default registry.
func NewHistogram(name, help string, uppers []float64) *Histogram {
	h := newHistogram(name, help, uppers)
	Default.mu.Lock()
	defer Default.mu.Unlock()
	Default.checkName(name)
	Default.hists = append(Default.hists, h)
	return h
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format: counters and gauges as single samples, histograms as
// summaries (p50/p95/p99 quantiles plus _sum and _count).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.Value())
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.Value())
	}
	for _, h := range hists {
		h.writePrometheus(w)
	}
}

// WriteMetrics renders the Default registry.
func WriteMetrics(w io.Writer) { Default.WritePrometheus(w) }

// findHistogram returns the registered histogram with the given name (tests
// and the overhead report).
func findHistogram(name string) *Histogram {
	Default.mu.Lock()
	defer Default.mu.Unlock()
	for _, h := range Default.hists {
		if h.name == name {
			return h
		}
	}
	return nil
}

// HistogramSnapshot returns count, sum and the given quantiles of a
// registered histogram, or ok=false if no histogram has that name.
func HistogramSnapshot(name string, qs ...float64) (count uint64, sum float64, quantiles []float64, ok bool) {
	h := findHistogram(name)
	if h == nil {
		return 0, 0, nil, false
	}
	count, sum = h.Count(), h.Sum()
	for _, q := range qs {
		quantiles = append(quantiles, h.Quantile(q))
	}
	return count, sum, quantiles, true
}

// sortedCopy returns a sorted copy of vs (bucket bound validation).
func sortedCopy(vs []float64) []float64 {
	out := append([]float64(nil), vs...)
	sort.Float64s(out)
	return out
}
