package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of an operation. Spans form a tree: StartSpan
// under a context carrying a parent attaches the child to it. When a root
// span ends and its duration meets the slow-op threshold, the whole tree is
// recorded in the slow-op ring.
//
// A nil *Span is valid and inert, which is how a disabled build costs
// nothing: StartSpan returns nil and every method no-ops.
type Span struct {
	name   string
	start  time.Time
	parent *Span

	pooled bool

	mu       sync.Mutex
	children []*Span
	dur      time.Duration
}

type spanKey struct{}

// spanPool recycles the span trees of the hot-path API (NewRootSpan/Child):
// per-commit span allocation was a measurable share of the instrumentation
// overhead, and those trees are strictly owned — the whole tree is released
// when its root ends. Context-propagated spans (StartSpan) are NOT pooled;
// a context can outlive the root's End.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// StartSpan begins a span named name. If ctx carries a span, the new span
// becomes its child; otherwise it is a root. The returned context carries
// the new span for further nesting.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !Enabled() {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		sp.parent = parent
		parent.mu.Lock()
		parent.children = append(parent.children, sp)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// NewRootSpan begins a pooled root span without context plumbing — the
// cheap form for hot paths. The tree it roots is recycled when End runs, so
// callers must not touch the root or any Child after the root's End.
func NewRootSpan(name string) *Span {
	if !Enabled() {
		return nil
	}
	sp := spanPool.Get().(*Span)
	sp.name, sp.start, sp.parent, sp.pooled, sp.dur = name, time.Now(), nil, true, 0
	sp.children = sp.children[:0]
	return sp
}

// Child begins a child span under s (nil-safe: a nil receiver returns nil).
// Children of a pooled root are pooled with it.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := spanPool.Get().(*Span)
	c.name, c.start, c.parent, c.pooled, c.dur = name, time.Now(), s, s.pooled, 0
	c.children = c.children[:0]
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End finishes the span. Ending a root span whose duration meets the
// slow-op threshold records its tree in the slow-op ring; ending a pooled
// root releases the tree for reuse.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	s.dur = d
	s.mu.Unlock()
	if s.parent == nil {
		if d >= SlowOpThreshold() {
			recordSlowOp(s)
		}
		if s.pooled {
			releaseTree(s)
		}
	}
}

// releaseTree returns a finished pooled span tree to the pool. The snapshot
// (if any) copied everything out, so recycling is safe.
func releaseTree(s *Span) {
	for _, c := range s.children {
		releaseTree(c)
	}
	s.children = s.children[:0]
	s.parent = nil
	spanPool.Put(s)
}

// Duration returns the span's duration, 0 before End.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// SpanNode is one node of a recorded slow-op span tree. Offsets are relative
// to the root span's start.
type SpanNode struct {
	Name     string     `json:"name"`
	StartUS  int64      `json:"start_us"`
	DurUS    int64      `json:"dur_us"`
	Children []SpanNode `json:"children,omitempty"`
}

// SlowOp is one entry of the slow-op log: a root operation that exceeded the
// threshold, with its full span tree.
type SlowOp struct {
	Time  time.Time `json:"time"` // root span start, wall clock
	DurUS int64     `json:"dur_us"`
	Root  SpanNode  `json:"root"`
}

// slowOpThresholdNS is the root-span duration at or above which the span
// tree is kept. Default 100 ms.
var slowOpThresholdNS atomic.Int64

func init() { slowOpThresholdNS.Store(int64(100 * time.Millisecond)) }

// SlowOpThreshold returns the current slow-op threshold.
func SlowOpThreshold() time.Duration { return time.Duration(slowOpThresholdNS.Load()) }

// SetSlowOpThreshold sets the slow-op threshold. Zero records every root
// span (tests); negative disables recording entirely.
func SetSlowOpThreshold(d time.Duration) {
	if d < 0 {
		d = 1<<63 - 1
	}
	slowOpThresholdNS.Store(int64(d))
}

// slowRing is the fixed-capacity slow-op ring buffer: new entries evict the
// oldest once full.
var slowRing = struct {
	sync.Mutex
	buf  []SlowOp
	next int // insertion index once len(buf) == cap
	cap  int
}{cap: 128}

// SetSlowOpCapacity resizes the ring (dropping recorded entries).
func SetSlowOpCapacity(n int) {
	if n < 1 {
		n = 1
	}
	slowRing.Lock()
	defer slowRing.Unlock()
	slowRing.cap = n
	slowRing.buf = nil
	slowRing.next = 0
}

// ResetSlowOps clears the ring (tests).
func ResetSlowOps() {
	slowRing.Lock()
	defer slowRing.Unlock()
	slowRing.buf = nil
	slowRing.next = 0
}

// SlowOps returns the recorded slow operations, newest first.
func SlowOps() []SlowOp {
	slowRing.Lock()
	defer slowRing.Unlock()
	out := make([]SlowOp, 0, len(slowRing.buf))
	// Entries sit oldest-first starting at next (the ring wraps there).
	for i := len(slowRing.buf) - 1; i >= 0; i-- {
		out = append(out, slowRing.buf[(slowRing.next+i)%len(slowRing.buf)])
	}
	return out
}

func recordSlowOp(root *Span) {
	op := SlowOp{
		Time:  root.start,
		DurUS: root.Duration().Microseconds(),
		Root:  snapshotSpan(root, root.start),
	}
	slowRing.Lock()
	defer slowRing.Unlock()
	if len(slowRing.buf) < slowRing.cap {
		slowRing.buf = append(slowRing.buf, op)
		return
	}
	slowRing.buf[slowRing.next] = op
	slowRing.next = (slowRing.next + 1) % len(slowRing.buf)
}

func snapshotSpan(s *Span, rootStart time.Time) SpanNode {
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	dur := s.dur
	s.mu.Unlock()
	if dur == 0 {
		// A child still running when the root ended: charge it through now.
		dur = time.Since(s.start)
	}
	node := SpanNode{
		Name:    s.name,
		StartUS: s.start.Sub(rootStart).Microseconds(),
		DurUS:   dur.Microseconds(),
	}
	for _, c := range children {
		node.Children = append(node.Children, snapshotSpan(c, rootStart))
	}
	return node
}
