package sqlish

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"time"

	"immortaldb/internal/catalog"
	"immortaldb/internal/itime"
)

// Value is one typed column value.
type Value struct {
	Type catalog.ColType
	Int  int64  // SMALLINT, INT, BIGINT, DATETIME (wall ticks)
	Str  string // VARCHAR
}

// ParseValue converts a literal to a typed value for column c.
func ParseValue(c catalog.Column, lit Literal) (Value, error) {
	v := Value{Type: c.Type}
	switch c.Type {
	case catalog.TypeSmallInt, catalog.TypeInt, catalog.TypeBigInt:
		if lit.IsString {
			return v, fmt.Errorf("sql: column %s: string literal for %s", c.Name, c.Type)
		}
		n, err := strconv.ParseInt(lit.Text, 10, 64)
		if err != nil {
			return v, fmt.Errorf("sql: column %s: %w", c.Name, err)
		}
		if err := checkIntRange(c.Type, n); err != nil {
			return v, fmt.Errorf("sql: column %s: %w", c.Name, err)
		}
		v.Int = n
	case catalog.TypeVarChar:
		if !lit.IsString {
			v.Str = lit.Text // numbers coerce to text
		} else {
			v.Str = lit.Text
		}
	case catalog.TypeDateTime:
		if !lit.IsString {
			return v, fmt.Errorf("sql: column %s: DATETIME needs a quoted literal", c.Name)
		}
		ts, err := itime.ParseAsOf(lit.Text)
		if err != nil {
			return v, fmt.Errorf("sql: column %s: %w", c.Name, err)
		}
		v.Int = ts.Wall
	default:
		return v, fmt.Errorf("sql: column %s: unsupported type %s", c.Name, c.Type)
	}
	return v, nil
}

func checkIntRange(t catalog.ColType, n int64) error {
	switch t {
	case catalog.TypeSmallInt:
		if n < -1<<15 || n >= 1<<15 {
			return fmt.Errorf("value %d out of SMALLINT range", n)
		}
	case catalog.TypeInt:
		if n < -1<<31 || n >= 1<<31 {
			return fmt.Errorf("value %d out of INT range", n)
		}
	}
	return nil
}

// String renders the value for result sets.
func (v Value) String() string {
	switch v.Type {
	case catalog.TypeVarChar:
		return v.Str
	case catalog.TypeDateTime:
		return time.Unix(0, v.Int*int64(itime.TickDuration)).UTC().Format("2006-01-02 15:04:05")
	default:
		return strconv.FormatInt(v.Int, 10)
	}
}

// encodeOrdered produces an order-preserving byte encoding (used for keys).
func (v Value) encodeOrdered() []byte {
	switch v.Type {
	case catalog.TypeSmallInt:
		b := make([]byte, 2)
		binary.BigEndian.PutUint16(b, uint16(v.Int)^0x8000)
		return b
	case catalog.TypeInt:
		b := make([]byte, 4)
		binary.BigEndian.PutUint32(b, uint32(v.Int)^0x80000000)
		return b
	case catalog.TypeBigInt, catalog.TypeDateTime:
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, uint64(v.Int)^0x8000000000000000)
		return b
	default:
		return []byte(v.Str)
	}
}

func decodeOrdered(t catalog.ColType, b []byte) (Value, error) {
	v := Value{Type: t}
	switch t {
	case catalog.TypeSmallInt:
		if len(b) != 2 {
			return v, fmt.Errorf("sql: bad SMALLINT encoding")
		}
		v.Int = int64(int16(binary.BigEndian.Uint16(b) ^ 0x8000))
	case catalog.TypeInt:
		if len(b) != 4 {
			return v, fmt.Errorf("sql: bad INT encoding")
		}
		v.Int = int64(int32(binary.BigEndian.Uint32(b) ^ 0x80000000))
	case catalog.TypeBigInt, catalog.TypeDateTime:
		if len(b) != 8 {
			return v, fmt.Errorf("sql: bad %s encoding", t)
		}
		v.Int = int64(binary.BigEndian.Uint64(b) ^ 0x8000000000000000)
	default:
		v.Str = string(b)
	}
	return v, nil
}

// EncodeKey encodes the primary key value of a row.
func EncodeKey(pk catalog.Column, v Value) []byte { return v.encodeOrdered() }

// EncodeRow encodes a full row (all columns, in schema order).
func EncodeRow(cols []catalog.Column, vals []Value) ([]byte, error) {
	if len(cols) != len(vals) {
		return nil, fmt.Errorf("sql: %d values for %d columns", len(vals), len(cols))
	}
	var out []byte
	for i := range cols {
		enc := vals[i].encodeOrdered()
		if len(enc) > 1<<16-1 {
			return nil, fmt.Errorf("sql: column %s value too long", cols[i].Name)
		}
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(enc)))
		out = append(out, l[:]...)
		out = append(out, enc...)
	}
	return out, nil
}

// DecodeRow decodes a row encoded by EncodeRow.
func DecodeRow(cols []catalog.Column, b []byte) ([]Value, error) {
	out := make([]Value, 0, len(cols))
	off := 0
	for i := range cols {
		if off+2 > len(b) {
			return nil, fmt.Errorf("sql: truncated row at column %s", cols[i].Name)
		}
		n := int(binary.BigEndian.Uint16(b[off:]))
		off += 2
		if off+n > len(b) {
			return nil, fmt.Errorf("sql: truncated row at column %s", cols[i].Name)
		}
		v, err := decodeOrdered(cols[i].Type, b[off:off+n])
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		off += n
	}
	if off != len(b) {
		return nil, fmt.Errorf("sql: %d trailing row bytes", len(b)-off)
	}
	return out, nil
}
