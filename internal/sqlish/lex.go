// Package sqlish implements the SQL subset of the Immortal DB prototype
// (Section 4): CREATE [IMMORTAL] TABLE, ALTER TABLE ... ENABLE SNAPSHOT,
// BEGIN TRAN [AS OF "..."], COMMIT/ROLLBACK, INSERT/UPDATE/DELETE, primary
// key SELECTs, and a SHOW HISTORY time-travel statement.
package sqlish

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single punctuation: ( ) , * = < > ; and two-char <= >= <>
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) error(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && unicode.IsSpace(rune(l.in[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.in[l.pos]
	switch {
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.in) {
			if l.in[l.pos] == quote {
				// Doubled quote escapes itself.
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(l.in[l.pos])
			l.pos++
		}
		return token{}, l.error(start, "unterminated string")
	case c == '-' || c >= '0' && c <= '9':
		l.pos++
		for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9' || l.in[l.pos] == '.') {
			l.pos++
		}
		text := l.in[start:l.pos]
		if text == "-" {
			return token{}, l.error(start, "lone '-'")
		}
		return token{kind: tokNumber, text: text, pos: start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.in[start:l.pos], pos: start}, nil
	case strings.ContainsRune("(),*=<>;[]", rune(c)):
		l.pos++
		text := string(c)
		if (c == '<' || c == '>') && l.pos < len(l.in) {
			if n := l.in[l.pos]; n == '=' || (c == '<' && n == '>') {
				text += string(n)
				l.pos++
			}
		}
		return token{kind: tokPunct, text: text, pos: start}, nil
	default:
		return token{}, l.error(start, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

// tokenize splits the whole input.
func tokenize(in string) ([]token, error) {
	l := &lexer{in: in}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
