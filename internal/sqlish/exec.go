package sqlish

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"immortaldb"
	"immortaldb/internal/catalog"
)

// Result is the outcome of executing one statement.
type Result struct {
	// Columns and Rows hold a result set (SELECT, SHOW HISTORY).
	Columns []string
	Rows    [][]string
	// Affected counts modified rows (INSERT/UPDATE/DELETE).
	Affected int
	// Msg is a human-readable confirmation for DDL and transaction control.
	Msg string
}

// Session executes statements against a database, managing an optional
// explicit transaction (BEGIN TRAN ... COMMIT). Statements outside an
// explicit transaction auto-commit. Sessions are not safe for concurrent
// use.
type Session struct {
	db *immortaldb.DB
	tx *immortaldb.Tx
}

// NewSession returns a session over db.
func NewSession(db *immortaldb.DB) *Session { return &Session{db: db} }

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil }

// Close rolls back any open transaction.
func (s *Session) Close() error {
	if s.tx != nil {
		err := s.tx.Rollback()
		s.tx = nil
		return err
	}
	return nil
}

// Exec parses and executes one statement.
func (s *Session) Exec(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(stmt)
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(stmt Stmt) (*Result, error) {
	switch st := stmt.(type) {
	case CreateTable:
		return s.execCreate(st)
	case AlterEnableSnapshot:
		return s.execAlter(st)
	case BeginTran:
		return s.execBegin(st)
	case CommitTran:
		return s.execCommit()
	case RollbackTran:
		return s.execRollback()
	case Insert:
		return s.execInsert(st)
	case Update:
		return s.execUpdate(st)
	case Delete:
		return s.execDelete(st)
	case Select:
		return s.execSelect(st)
	case ShowHistory:
		return s.execHistory(st)
	case VacuumHistory:
		return s.execVacuum()
	default:
		return nil, fmt.Errorf("sql: unhandled statement %T", stmt)
	}
}

func (s *Session) execCreate(st CreateTable) (*Result, error) {
	if s.tx != nil {
		return nil, errors.New("sql: DDL inside a transaction is not supported")
	}
	_, err := s.db.CreateTable(st.Name, immortaldb.TableOptions{
		Immortal: st.Immortal,
		Columns:  st.Columns,
	})
	if err != nil {
		return nil, err
	}
	kind := "TABLE"
	if st.Immortal {
		kind = "IMMORTAL TABLE"
	}
	return &Result{Msg: fmt.Sprintf("created %s %s", kind, st.Name)}, nil
}

func (s *Session) execAlter(st AlterEnableSnapshot) (*Result, error) {
	if s.tx != nil {
		return nil, errors.New("sql: DDL inside a transaction is not supported")
	}
	if err := s.db.EnableSnapshot(st.Name); err != nil {
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("snapshot versioning enabled on %s", st.Name)}, nil
}

func (s *Session) execBegin(st BeginTran) (*Result, error) {
	if s.tx != nil {
		return nil, errors.New("sql: transaction already open")
	}
	var err error
	switch {
	case st.AsOf != "":
		s.tx, err = s.db.BeginAsOfString(st.AsOf)
		if err != nil {
			return nil, err
		}
		return &Result{Msg: fmt.Sprintf("begin tran as of %q", st.AsOf)}, nil
	case st.Snapshot:
		s.tx, err = s.db.Begin(immortaldb.SnapshotIsolation)
	default:
		s.tx, err = s.db.Begin(immortaldb.Serializable)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Msg: "begin tran"}, nil
}

func (s *Session) execCommit() (*Result, error) {
	if s.tx == nil {
		return nil, errors.New("sql: no open transaction")
	}
	err := s.tx.Commit()
	s.tx = nil
	if err != nil {
		return nil, err
	}
	return &Result{Msg: "commit"}, nil
}

func (s *Session) execRollback() (*Result, error) {
	if s.tx == nil {
		return nil, errors.New("sql: no open transaction")
	}
	err := s.tx.Rollback()
	s.tx = nil
	if err != nil {
		return nil, err
	}
	return &Result{Msg: "rollback"}, nil
}

// run executes fn in the session transaction, or an auto-commit one.
func (s *Session) run(fn func(tx *immortaldb.Tx) error) error {
	if s.tx != nil {
		return fn(s.tx)
	}
	tx, err := s.db.Begin(immortaldb.Serializable)
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// table resolves a table and its schema.
func (s *Session) table(name string) (*immortaldb.Table, *catalog.Table, error) {
	tbl, err := s.db.Table(name)
	if err != nil {
		return nil, nil, err
	}
	meta := tbl.Meta()
	if len(meta.Columns) == 0 {
		return nil, nil, fmt.Errorf("sql: table %s has no SQL schema", name)
	}
	return tbl, meta, nil
}

func colIndex(meta *catalog.Table, name string) (int, error) {
	for i, c := range meta.Columns {
		if strings.EqualFold(c.Name, name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sql: no column %s in %s", name, meta.Name)
}

func pkIndex(meta *catalog.Table) int {
	for i, c := range meta.Columns {
		if c.PrimaryKey {
			return i
		}
	}
	return 0
}

func (s *Session) execInsert(st Insert) (*Result, error) {
	tbl, meta, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	if len(st.Values) != len(meta.Columns) {
		return nil, fmt.Errorf("sql: %d values for %d columns", len(st.Values), len(meta.Columns))
	}
	vals := make([]Value, len(st.Values))
	for i, lit := range st.Values {
		if vals[i], err = ParseValue(meta.Columns[i], lit); err != nil {
			return nil, err
		}
	}
	pki := pkIndex(meta)
	key := EncodeKey(meta.Columns[pki], vals[pki])
	row, err := EncodeRow(meta.Columns, vals)
	if err != nil {
		return nil, err
	}
	err = s.run(func(tx *immortaldb.Tx) error {
		if _, exists, err := tx.Get(tbl, key); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("sql: duplicate primary key in %s", meta.Name)
		}
		return tx.Set(tbl, key, row)
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: 1}, nil
}

// matchRows finds the rows satisfying cond, returning decoded values.
type matchedRow struct {
	key  []byte
	vals []Value
}

func (s *Session) matchRows(tx *immortaldb.Tx, tbl *immortaldb.Table, meta *catalog.Table, cond *Cond) ([]matchedRow, error) {
	var out []matchedRow
	collect := func(key, val []byte) error {
		vals, err := DecodeRow(meta.Columns, val)
		if err != nil {
			return err
		}
		out = append(out, matchedRow{key: key, vals: vals})
		return nil
	}
	if cond == nil {
		var scanErr error
		err := tx.Scan(tbl, nil, nil, func(k, v []byte) bool {
			if scanErr = collect(append([]byte(nil), k...), v); scanErr != nil {
				return false
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		return out, err
	}
	ci, err := colIndex(meta, cond.Column)
	if err != nil {
		return nil, err
	}
	cv, err := ParseValue(meta.Columns[ci], cond.Value)
	if err != nil {
		return nil, err
	}
	pki := pkIndex(meta)
	if ci == pki {
		// Primary key predicate: use the index.
		enc := cv.encodeOrdered()
		switch cond.Op {
		case "=":
			v, ok, err := tx.Get(tbl, enc)
			if err != nil || !ok {
				return out, err
			}
			return out, collect(enc, v)
		case "<":
			err = scanAll(tx, tbl, nil, enc, collect)
		case "<=":
			err = scanAll(tx, tbl, nil, append(enc, 0), collect)
		case ">=":
			err = scanAll(tx, tbl, enc, nil, collect)
		case ">":
			err = scanAll(tx, tbl, append(enc, 0), nil, collect)
		}
		return out, err
	}
	// Non-key predicate: full scan with a filter.
	var scanErr error
	err = tx.Scan(tbl, nil, nil, func(k, v []byte) bool {
		vals, derr := DecodeRow(meta.Columns, v)
		if derr != nil {
			scanErr = derr
			return false
		}
		if compareValues(vals[ci], cv, cond.Op) {
			out = append(out, matchedRow{key: append([]byte(nil), k...), vals: vals})
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	return out, err
}

func scanAll(tx *immortaldb.Tx, tbl *immortaldb.Table, lo, hi []byte, collect func(k, v []byte) error) error {
	var scanErr error
	err := tx.Scan(tbl, lo, hi, func(k, v []byte) bool {
		if scanErr = collect(append([]byte(nil), k...), v); scanErr != nil {
			return false
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	return err
}

func compareValues(a, b Value, op string) bool {
	var cmp int
	if a.Type == catalog.TypeVarChar {
		cmp = strings.Compare(a.Str, b.Str)
	} else {
		switch {
		case a.Int < b.Int:
			cmp = -1
		case a.Int > b.Int:
			cmp = 1
		}
	}
	switch op {
	case "=":
		return cmp == 0
	case "<":
		return cmp < 0
	case ">":
		return cmp > 0
	case "<=":
		return cmp <= 0
	case ">=":
		return cmp >= 0
	default:
		return false
	}
}

func (s *Session) execUpdate(st Update) (*Result, error) {
	tbl, meta, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	pki := pkIndex(meta)
	n := 0
	err = s.run(func(tx *immortaldb.Tx) error {
		rows, err := s.matchRows(tx, tbl, meta, st.Where)
		if err != nil {
			return err
		}
		for _, r := range rows {
			for _, a := range st.Sets {
				ci, err := colIndex(meta, a.Column)
				if err != nil {
					return err
				}
				if ci == pki {
					return fmt.Errorf("sql: cannot update the primary key")
				}
				v, err := ParseValue(meta.Columns[ci], a.Value)
				if err != nil {
					return err
				}
				r.vals[ci] = v
			}
			row, err := EncodeRow(meta.Columns, r.vals)
			if err != nil {
				return err
			}
			if err := tx.Set(tbl, r.key, row); err != nil {
				return err
			}
			n++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

func (s *Session) execDelete(st Delete) (*Result, error) {
	tbl, meta, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	n := 0
	err = s.run(func(tx *immortaldb.Tx) error {
		rows, err := s.matchRows(tx, tbl, meta, st.Where)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if err := tx.Delete(tbl, r.key); err != nil {
				return err
			}
			n++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

func (s *Session) execSelect(st Select) (*Result, error) {
	tbl, meta, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	// Project.
	proj := make([]int, 0, len(meta.Columns))
	var names []string
	if st.Columns == nil {
		for i, c := range meta.Columns {
			proj = append(proj, i)
			names = append(names, c.Name)
		}
	} else {
		for _, cn := range st.Columns {
			ci, err := colIndex(meta, cn)
			if err != nil {
				return nil, err
			}
			proj = append(proj, ci)
			names = append(names, meta.Columns[ci].Name)
		}
	}
	res := &Result{Columns: names}
	err = s.run(func(tx *immortaldb.Tx) error {
		rows, err := s.matchRows(tx, tbl, meta, st.Where)
		if err != nil {
			return err
		}
		for _, r := range rows {
			out := make([]string, len(proj))
			for i, ci := range proj {
				out[i] = r.vals[ci].String()
			}
			res.Rows = append(res.Rows, out)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Session) execHistory(st ShowHistory) (*Result, error) {
	tbl, meta, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	ci, err := colIndex(meta, st.Where.Column)
	if err != nil {
		return nil, err
	}
	if ci != pkIndex(meta) {
		return nil, fmt.Errorf("sql: SHOW HISTORY requires the primary key column")
	}
	cv, err := ParseValue(meta.Columns[ci], st.Where.Value)
	if err != nil {
		return nil, err
	}
	hist, err := s.db.History(tbl, cv.encodeOrdered())
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: append([]string{"_time", "_op"}, columnNames(meta)...)}
	for _, h := range hist {
		row := make([]string, 2, 2+len(meta.Columns))
		switch {
		case h.Pending:
			row[0] = fmt.Sprintf("(pending txn %d)", h.TID)
		default:
			row[0] = h.TS.String()
		}
		if h.Deleted {
			row[1] = "DELETE"
			for range meta.Columns {
				row = append(row, "")
			}
		} else {
			row[1] = "SET"
			vals, err := DecodeRow(meta.Columns, h.Value)
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				row = append(row, v.String())
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// execVacuum runs one synchronous cold-tier vacuum pass and reports the
// reclamation as a one-row result set. Rejected inside an explicit
// transaction: the pass commits its own WAL records and cannot roll back
// with the session's work.
func (s *Session) execVacuum() (*Result, error) {
	if s.tx != nil {
		return nil, errors.New("sql: VACUUM HISTORY inside a transaction is not supported")
	}
	st, err := s.db.VacuumHistory()
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns: []string{"versions_reclaimed", "bytes_reclaimed", "pages_migrated", "runs_merged"},
		Rows: [][]string{{
			strconv.FormatUint(st.VersionsReclaimed, 10),
			strconv.FormatUint(st.BytesReclaimed, 10),
			strconv.FormatUint(st.PagesMigrated, 10),
			strconv.FormatUint(st.RunsMerged, 10),
		}},
	}, nil
}

func columnNames(meta *catalog.Table) []string {
	out := make([]string, len(meta.Columns))
	for i, c := range meta.Columns {
		out[i] = c.Name
	}
	return out
}
