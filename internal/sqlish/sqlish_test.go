package sqlish

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"immortaldb"
	"immortaldb/internal/catalog"
	"immortaldb/internal/itime"
)

func testSession(t *testing.T) (*Session, *itime.SimClock) {
	t.Helper()
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	clock.AutoStep = 1
	clock.AutoEvery = 2
	db, err := immortaldb.Open(t.TempDir(), &immortaldb.Options{
		PageSize: 1024, NoSync: true, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := NewSession(db)
	t.Cleanup(func() { s.Close() })
	return s, clock
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	r, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return r
}

const createMovingObjects = `Create IMMORTAL Table MovingObjects
	(Oid smallint PRIMARY KEY, LocationX int, LocationY int) ON [PRIMARY]`

func TestPaperExampleDDLAndAsOf(t *testing.T) {
	s, clock := testSession(t)
	// The paper's Section 4.1 CREATE statement, verbatim shape.
	r := mustExec(t, s, createMovingObjects)
	if !strings.Contains(r.Msg, "IMMORTAL") {
		t.Fatalf("msg = %q", r.Msg)
	}
	for i := 0; i < 20; i++ {
		mustExec(t, s, "INSERT INTO MovingObjects VALUES ("+itoa(i)+", 10, 20)")
	}
	// Advance past a known instant, then move the objects.
	clock.Advance(time.Hour)
	asOfTime := "2004-08-12 11:30:00"
	clock.Advance(2 * time.Hour)
	for i := 0; i < 20; i++ {
		mustExec(t, s, "UPDATE MovingObjects SET LocationX = 99 WHERE Oid = "+itoa(i))
	}

	// The paper's Section 4.2 query, current state.
	r = mustExec(t, s, "SELECT * FROM MovingObjects WHERE Oid < 10")
	if len(r.Rows) != 10 {
		t.Fatalf("current rows = %d", len(r.Rows))
	}
	if r.Rows[0][1] != "99" {
		t.Fatalf("current LocationX = %q", r.Rows[0][1])
	}

	// AS OF: the pre-update state.
	mustExec(t, s, `Begin Tran AS OF "`+asOfTime+`"`)
	r = mustExec(t, s, "SELECT * FROM MovingObjects WHERE Oid < 10")
	mustExec(t, s, "Commit Tran")
	if len(r.Rows) != 10 {
		t.Fatalf("as-of rows = %d", len(r.Rows))
	}
	if r.Rows[0][1] != "10" {
		t.Fatalf("as-of LocationX = %q", r.Rows[0][1])
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func TestInsertSelectProjectionsAndPredicates(t *testing.T) {
	s, _ := testSession(t)
	mustExec(t, s, "CREATE TABLE people (id int PRIMARY KEY, name varchar(20), age int)")
	mustExec(t, s, "INSERT INTO people VALUES (1, 'alice', 30)")
	mustExec(t, s, "INSERT INTO people VALUES (2, 'bob', 25)")
	mustExec(t, s, "INSERT INTO people VALUES (3, 'carol', 35)")

	r := mustExec(t, s, "SELECT name FROM people WHERE id = 2")
	if len(r.Rows) != 1 || r.Rows[0][0] != "bob" {
		t.Fatalf("rows = %v", r.Rows)
	}
	r = mustExec(t, s, "SELECT id, name FROM people WHERE id >= 2")
	if len(r.Rows) != 2 || r.Columns[0] != "id" {
		t.Fatalf("rows = %v cols = %v", r.Rows, r.Columns)
	}
	// Non-key predicate: filtered scan.
	r = mustExec(t, s, "SELECT name FROM people WHERE age > 28")
	if len(r.Rows) != 2 {
		t.Fatalf("age filter rows = %v", r.Rows)
	}
	// Duplicate PK rejected.
	if _, err := s.Exec("INSERT INTO people VALUES (1, 'dup', 1)"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	// Range ops on the key.
	if r := mustExec(t, s, "SELECT * FROM people WHERE id < 3"); len(r.Rows) != 2 {
		t.Fatalf("id<3 rows = %v", r.Rows)
	}
	if r := mustExec(t, s, "SELECT * FROM people WHERE id <= 3"); len(r.Rows) != 3 {
		t.Fatalf("id<=3 rows = %v", r.Rows)
	}
	if r := mustExec(t, s, "SELECT * FROM people WHERE id > 3"); len(r.Rows) != 0 {
		t.Fatalf("id>3 rows = %v", r.Rows)
	}
}

func TestUpdateDeleteAffectedCounts(t *testing.T) {
	s, _ := testSession(t)
	mustExec(t, s, "CREATE IMMORTAL TABLE t (id int PRIMARY KEY, v varchar(10))")
	for i := 1; i <= 5; i++ {
		mustExec(t, s, "INSERT INTO t VALUES ("+itoa(i)+", 'x')")
	}
	r := mustExec(t, s, "UPDATE t SET v = 'y' WHERE id <= 3")
	if r.Affected != 3 {
		t.Fatalf("update affected = %d", r.Affected)
	}
	r = mustExec(t, s, "DELETE FROM t WHERE id = 5")
	if r.Affected != 1 {
		t.Fatalf("delete affected = %d", r.Affected)
	}
	r = mustExec(t, s, "SELECT v FROM t WHERE id = 2")
	if r.Rows[0][0] != "y" {
		t.Fatalf("v = %q", r.Rows[0][0])
	}
	if r := mustExec(t, s, "SELECT * FROM t"); len(r.Rows) != 4 {
		t.Fatalf("rows after delete = %d", len(r.Rows))
	}
}

func TestExplicitTransactionRollback(t *testing.T) {
	s, _ := testSession(t)
	mustExec(t, s, "CREATE TABLE t (id int PRIMARY KEY, v int)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 10)")
	mustExec(t, s, "BEGIN TRAN")
	mustExec(t, s, "UPDATE t SET v = 99 WHERE id = 1")
	r := mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	if r.Rows[0][0] != "99" {
		t.Fatal("own write invisible inside transaction")
	}
	mustExec(t, s, "ROLLBACK")
	r = mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	if r.Rows[0][0] != "10" {
		t.Fatalf("v after rollback = %q", r.Rows[0][0])
	}
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Fatal("commit without transaction accepted")
	}
}

func TestShowHistory(t *testing.T) {
	s, _ := testSession(t)
	mustExec(t, s, "CREATE IMMORTAL TABLE t (id int PRIMARY KEY, v varchar(10))")
	mustExec(t, s, "INSERT INTO t VALUES (7, 'one')")
	mustExec(t, s, "UPDATE t SET v = 'two' WHERE id = 7")
	mustExec(t, s, "DELETE FROM t WHERE id = 7")
	r := mustExec(t, s, "SHOW HISTORY FOR t WHERE id = 7")
	if len(r.Rows) != 3 {
		t.Fatalf("history rows = %d", len(r.Rows))
	}
	if r.Rows[0][1] != "DELETE" {
		t.Fatalf("newest history op = %q", r.Rows[0][1])
	}
	if r.Rows[1][3] != "two" || r.Rows[2][3] != "one" {
		t.Fatalf("history values wrong: %v", r.Rows)
	}
}

func TestSnapshotIsolationStatement(t *testing.T) {
	s, _ := testSession(t)
	mustExec(t, s, "CREATE IMMORTAL TABLE t (id int PRIMARY KEY, v int)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 10)")
	mustExec(t, s, "BEGIN TRAN ISOLATION SNAPSHOT")
	r := mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	if r.Rows[0][0] != "10" {
		t.Fatal("snapshot read wrong")
	}
	mustExec(t, s, "COMMIT")
}

func TestAlterEnableSnapshot(t *testing.T) {
	s, _ := testSession(t)
	mustExec(t, s, "CREATE TABLE conv (id int PRIMARY KEY, v int)")
	mustExec(t, s, "ALTER TABLE conv ENABLE SNAPSHOT")
	mustExec(t, s, "INSERT INTO conv VALUES (1, 10)")
	r := mustExec(t, s, "SELECT v FROM conv WHERE id = 1")
	if r.Rows[0][0] != "10" {
		t.Fatal("read after alter failed")
	}
	// Enabling on a non-empty non-versioned table fails.
	mustExec(t, s, "CREATE TABLE conv2 (id int PRIMARY KEY, v int)")
	mustExec(t, s, "INSERT INTO conv2 VALUES (1, 10)")
	if _, err := s.Exec("ALTER TABLE conv2 ENABLE SNAPSHOT"); err == nil {
		t.Fatal("alter of non-empty table accepted")
	}
}

func TestDatetimeColumns(t *testing.T) {
	s, _ := testSession(t)
	mustExec(t, s, "CREATE TABLE events (id int PRIMARY KEY, at datetime)")
	mustExec(t, s, "INSERT INTO events VALUES (1, '2004-08-12 10:15:20')")
	r := mustExec(t, s, "SELECT at FROM events WHERE id = 1")
	if r.Rows[0][0] != "2004-08-12 10:15:20" {
		t.Fatalf("datetime round trip = %q", r.Rows[0][0])
	}
}

func TestParseErrors(t *testing.T) {
	s, _ := testSession(t)
	bad := []string{
		"",
		"FLY ME TO THE MOON",
		"CREATE TABLE t (id int)", // no primary key
		"CREATE TABLE t (id int PRIMARY KEY, id2 int PRIMARY KEY)", // two
		"SELECT * FROM",
		"INSERT INTO t VALUES 1",
		"UPDATE t SET v = 1",              // no WHERE
		"DELETE FROM t",                   // no WHERE
		"BEGIN TRAN AS OF 2004",           // unquoted time
		"SELECT * FROM t WHERE id <> 1",   // unsupported op
		"SHOW HISTORY FOR t WHERE id > 1", // non-equality
		"INSERT INTO t VALUES ('unterminated",
	}
	for _, q := range bad {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	s, _ := testSession(t)
	mustExec(t, s, "CREATE TABLE t (id smallint PRIMARY KEY, v int)")
	if _, err := s.Exec("INSERT INTO t VALUES (99999, 1)"); err == nil {
		t.Fatal("smallint overflow accepted")
	}
	if _, err := s.Exec("INSERT INTO t VALUES ('abc', 1)"); err == nil {
		t.Fatal("string for int accepted")
	}
	if _, err := s.Exec("SELECT * FROM nosuch"); err == nil {
		t.Fatal("missing table accepted")
	}
	if _, err := s.Exec("SELECT nosuchcol FROM t"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestValueEncodingOrderPreserved(t *testing.T) {
	cases := []struct {
		typ  catalog.ColType
		vals []int64
	}{
		{catalog.TypeSmallInt, []int64{-32768, -1, 0, 1, 32767}},
		{catalog.TypeInt, []int64{-2147483648, -5, 0, 7, 2147483647}},
		{catalog.TypeBigInt, []int64{-1 << 62, -1, 0, 1, 1 << 62}},
	}
	for _, c := range cases {
		var prev []byte
		for i, n := range c.vals {
			enc := (Value{Type: c.typ, Int: n}).encodeOrdered()
			if i > 0 && string(prev) >= string(enc) {
				t.Errorf("%s: encoding order broken at %d", c.typ, n)
			}
			dec, err := decodeOrdered(c.typ, enc)
			if err != nil || dec.Int != n {
				t.Errorf("%s: round trip of %d: %v %v", c.typ, n, dec, err)
			}
			prev = enc
		}
	}
}

func TestRowEncodingRoundTrip(t *testing.T) {
	cols := []catalog.Column{
		{Name: "id", Type: catalog.TypeInt, PrimaryKey: true},
		{Name: "name", Type: catalog.TypeVarChar},
		{Name: "big", Type: catalog.TypeBigInt},
	}
	vals := []Value{
		{Type: catalog.TypeInt, Int: -42},
		{Type: catalog.TypeVarChar, Str: "héllo, world"},
		{Type: catalog.TypeBigInt, Int: 1 << 40},
	}
	enc, err := EncodeRow(cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(cols, enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("col %d: %+v != %+v", i, got[i], vals[i])
		}
	}
	if _, err := DecodeRow(cols, enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated row accepted")
	}
	if _, err := DecodeRow(cols[:2], enc); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestStringEscapes(t *testing.T) {
	s, _ := testSession(t)
	mustExec(t, s, "CREATE TABLE t (id int PRIMARY KEY, v varchar(50))")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'it''s quoted')")
	r := mustExec(t, s, "SELECT v FROM t WHERE id = 1")
	if r.Rows[0][0] != "it's quoted" {
		t.Fatalf("escape = %q", r.Rows[0][0])
	}
}

// TestVacuumHistoryStatement pins the VACUUM HISTORY verb: a one-row result
// set of reclamation counters on a tiered engine, a clear error mid-
// transaction, and ErrTieredOff surfaced when the engine keeps history hot.
func TestVacuumHistoryStatement(t *testing.T) {
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	clock.AutoStep = 1
	clock.AutoEvery = 2
	db, err := immortaldb.Open(t.TempDir(), &immortaldb.Options{
		PageSize: 1024, CacheFrames: 32, NoSync: true, Clock: clock,
		TieredHistory: true, Retention: 10 * itime.TickDuration,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := NewSession(db)
	t.Cleanup(func() { s.Close() })

	mustExec(t, s, "CREATE IMMORTAL TABLE t (id int PRIMARY KEY, v varchar(64))")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'seed')")
	for i := 0; i < 40; i++ {
		mustExec(t, s, "UPDATE t SET v = 'v"+itoa(i)+"-padpadpadpadpadpadpadpadpadpad' WHERE id = 1")
	}
	clock.Advance(1000 * itime.TickDuration)

	r := mustExec(t, s, "VACUUM HISTORY")
	want := []string{"versions_reclaimed", "bytes_reclaimed", "pages_migrated", "runs_merged"}
	if len(r.Columns) != len(want) || len(r.Rows) != 1 {
		t.Fatalf("result shape = %v / %v", r.Columns, r.Rows)
	}
	for i, c := range want {
		if r.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", r.Columns, want)
		}
		if _, err := strconv.ParseUint(r.Rows[0][i], 10, 64); err != nil {
			t.Fatalf("cell %s = %q, want a number", c, r.Rows[0][i])
		}
	}
	if r.Rows[0][2] == "0" {
		t.Fatalf("vacuum migrated no pages: %v", r.Rows[0])
	}

	mustExec(t, s, "BEGIN TRAN")
	if _, err := s.Exec("VACUUM HISTORY"); err == nil {
		t.Fatal("VACUUM HISTORY inside a transaction succeeded")
	}
	mustExec(t, s, "ROLLBACK")

	// Hot-history engine: the verb parses but the engine refuses.
	s2, _ := testSession(t)
	if _, err := s2.Exec("VACUUM HISTORY"); err == nil {
		t.Fatal("VACUUM HISTORY without TieredHistory succeeded")
	}
}
