package sqlish

import (
	"encoding/binary"
	"errors"

	"immortaldb/internal/wire"
)

// Result serialization for the network serving layer. The encoding is
// self-describing enough to round-trip the three result shapes Exec
// produces — a result set (Columns non-nil, possibly empty), a row count,
// and a DDL/transaction-control message — across the wire.
//
// Layout:
//
//	byte    flags (bit0: has result set)
//	uvarint Affected
//	string  Msg
//	if result set:
//	  uvarint ncols, ncols strings
//	  uvarint nrows, per row: uvarint ncells, ncells strings

const resultHasRows = 1 << 0

// maxResultCells bounds decoded result-set size against corrupt frames.
const maxResultCells = 1 << 24

// AppendBinary appends the encoded result to b.
func (r *Result) AppendBinary(b []byte) []byte {
	var flags byte
	if r.Columns != nil {
		flags |= resultHasRows
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(r.Affected))
	b = wire.AppendString(b, r.Msg)
	if r.Columns == nil {
		return b
	}
	b = binary.AppendUvarint(b, uint64(len(r.Columns)))
	for _, c := range r.Columns {
		b = wire.AppendString(b, c)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Rows)))
	for _, row := range r.Rows {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, cell := range row {
			b = wire.AppendString(b, cell)
		}
	}
	return b
}

// DecodeResult decodes a result encoded by AppendBinary.
func DecodeResult(b []byte) (*Result, error) {
	if len(b) == 0 {
		return nil, errors.New("sql: truncated result")
	}
	flags := b[0]
	b = b[1:]
	affected, b, err := wire.ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	msg, b, err := wire.ReadString(b)
	if err != nil {
		return nil, err
	}
	r := &Result{Affected: int(affected), Msg: msg}
	if flags&resultHasRows == 0 {
		return r, nil
	}
	ncols, b, err := wire.ReadUvarint(b)
	if err != nil || ncols > maxResultCells {
		return nil, errors.New("sql: corrupt result columns")
	}
	r.Columns = make([]string, ncols)
	for i := range r.Columns {
		if r.Columns[i], b, err = wire.ReadString(b); err != nil {
			return nil, err
		}
	}
	nrows, b, err := wire.ReadUvarint(b)
	if err != nil || nrows > maxResultCells {
		return nil, errors.New("sql: corrupt result rows")
	}
	for i := uint64(0); i < nrows; i++ {
		var ncells uint64
		if ncells, b, err = wire.ReadUvarint(b); err != nil || ncells > maxResultCells {
			return nil, errors.New("sql: corrupt result row")
		}
		row := make([]string, ncells)
		for j := range row {
			if row[j], b, err = wire.ReadString(b); err != nil {
				return nil, err
			}
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}
