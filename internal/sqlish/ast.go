package sqlish

import (
	"fmt"
	"strconv"
	"strings"

	"immortaldb/internal/catalog"
)

// Stmt is a parsed statement.
type Stmt interface{ stmt() }

// CreateTable is CREATE [IMMORTAL] TABLE name (col type [PRIMARY KEY], ...).
type CreateTable struct {
	Name     string
	Immortal bool
	Columns  []catalog.Column
}

// AlterEnableSnapshot is ALTER TABLE name ENABLE SNAPSHOT.
type AlterEnableSnapshot struct{ Name string }

// BeginTran is BEGIN TRAN [AS OF "time"] [ISOLATION SNAPSHOT].
type BeginTran struct {
	AsOf     string // empty if absent
	Snapshot bool
}

// CommitTran is COMMIT [TRAN].
type CommitTran struct{}

// RollbackTran is ROLLBACK [TRAN].
type RollbackTran struct{}

// Insert is INSERT INTO name VALUES (v, ...).
type Insert struct {
	Table  string
	Values []Literal
}

// Assign is one SET col = v.
type Assign struct {
	Column string
	Value  Literal
}

// Update is UPDATE name SET a=v,... WHERE col op v.
type Update struct {
	Table string
	Sets  []Assign
	Where *Cond
}

// Delete is DELETE FROM name WHERE col op v.
type Delete struct {
	Table string
	Where *Cond
}

// Select is SELECT cols FROM name [WHERE col op v].
type Select struct {
	Table   string
	Columns []string // nil means *
	Where   *Cond
}

// ShowHistory is SHOW HISTORY FOR name WHERE col = v — time travel over one
// record (Section 4.2's "time travel" functionality).
type ShowHistory struct {
	Table string
	Where *Cond
}

// VacuumHistory is VACUUM HISTORY — one synchronous cold-tier pass with
// retention vacuuming, reporting what it reclaimed.
type VacuumHistory struct{}

// Cond is a single comparison on one column.
type Cond struct {
	Column string
	Op     string // = < > <= >=
	Value  Literal
}

// Literal is an unparsed literal value.
type Literal struct {
	Text     string
	IsString bool
}

func (Literal) String() string { return "" }

func (CreateTable) stmt()         {}
func (AlterEnableSnapshot) stmt() {}
func (BeginTran) stmt()           {}
func (CommitTran) stmt()          {}
func (RollbackTran) stmt()        {}
func (Insert) stmt()              {}
func (Update) stmt()              {}
func (Delete) stmt()              {}
func (Select) stmt()              {}
func (ShowHistory) stmt()         {}
func (VacuumHistory) stmt()       {}

type parser struct {
	toks []token
	pos  int
}

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(in string) (Stmt, error) {
	toks, err := tokenize(in)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	return s, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, fmt.Errorf("sql: expected %s, found %q", want, p.cur().text)
	}
	t := p.cur()
	p.pos++
	return t, nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent, "")
	return t.text, err
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.accept(tokIdent, "CREATE"):
		return p.createTable()
	case p.accept(tokIdent, "ALTER"):
		return p.alterTable()
	case p.accept(tokIdent, "BEGIN"):
		return p.beginTran()
	case p.accept(tokIdent, "COMMIT"):
		p.accept(tokIdent, "TRAN")
		p.accept(tokIdent, "TRANSACTION")
		return CommitTran{}, nil
	case p.accept(tokIdent, "ROLLBACK"):
		p.accept(tokIdent, "TRAN")
		p.accept(tokIdent, "TRANSACTION")
		return RollbackTran{}, nil
	case p.accept(tokIdent, "INSERT"):
		return p.insert()
	case p.accept(tokIdent, "UPDATE"):
		return p.update()
	case p.accept(tokIdent, "DELETE"):
		return p.delete()
	case p.accept(tokIdent, "SELECT"):
		return p.selectStmt()
	case p.accept(tokIdent, "SHOW"):
		return p.showHistory()
	case p.accept(tokIdent, "VACUUM"):
		if _, err := p.expect(tokIdent, "HISTORY"); err != nil {
			return nil, err
		}
		return VacuumHistory{}, nil
	default:
		return nil, fmt.Errorf("sql: unrecognized statement starting with %q", p.cur().text)
	}
}

func (p *parser) createTable() (Stmt, error) {
	s := CreateTable{}
	if p.accept(tokIdent, "IMMORTAL") {
		s.Immortal = true
	}
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Name = name
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.column()
		if err != nil {
			return nil, err
		}
		s.Columns = append(s.Columns, col)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	// Optional storage clause "ON [PRIMARY]" — accepted and ignored, like
	// the paper's example.
	if p.accept(tokIdent, "ON") {
		if p.accept(tokPunct, "[") {
			p.accept(tokIdent, "PRIMARY")
			p.accept(tokPunct, "]")
		} else {
			p.accept(tokIdent, "PRIMARY")
		}
	}
	npk := 0
	for _, c := range s.Columns {
		if c.PrimaryKey {
			npk++
		}
	}
	if npk != 1 {
		return nil, fmt.Errorf("sql: table %s needs exactly one PRIMARY KEY column, has %d", s.Name, npk)
	}
	return s, nil
}

func (p *parser) column() (catalog.Column, error) {
	var c catalog.Column
	name, err := p.ident()
	if err != nil {
		return c, err
	}
	c.Name = name
	tname, err := p.ident()
	if err != nil {
		return c, err
	}
	switch strings.ToUpper(tname) {
	case "SMALLINT":
		c.Type = catalog.TypeSmallInt
	case "INT", "INTEGER":
		c.Type = catalog.TypeInt
	case "BIGINT":
		c.Type = catalog.TypeBigInt
	case "VARCHAR", "TEXT":
		c.Type = catalog.TypeVarChar
		if p.accept(tokPunct, "(") { // VARCHAR(n): length accepted, unenforced
			p.expect(tokNumber, "")
			p.expect(tokPunct, ")")
		}
	case "DATETIME":
		c.Type = catalog.TypeDateTime
	default:
		return c, fmt.Errorf("sql: unknown column type %q", tname)
	}
	if p.accept(tokIdent, "PRIMARY") {
		if _, err := p.expect(tokIdent, "KEY"); err != nil {
			return c, err
		}
		c.PrimaryKey = true
	}
	return c, nil
}

func (p *parser) alterTable() (Stmt, error) {
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "ENABLE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "SNAPSHOT"); err != nil {
		return nil, err
	}
	return AlterEnableSnapshot{Name: name}, nil
}

func (p *parser) beginTran() (Stmt, error) {
	if !p.accept(tokIdent, "TRAN") && !p.accept(tokIdent, "TRANSACTION") {
		return nil, fmt.Errorf("sql: expected TRAN after BEGIN")
	}
	s := BeginTran{}
	if p.accept(tokIdent, "AS") {
		if _, err := p.expect(tokIdent, "OF"); err != nil {
			return nil, err
		}
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		s.AsOf = t.text
	}
	if p.accept(tokIdent, "ISOLATION") {
		if _, err := p.expect(tokIdent, "SNAPSHOT"); err != nil {
			return nil, err
		}
		s.Snapshot = true
	}
	return s, nil
}

func (p *parser) insert() (Stmt, error) {
	if _, err := p.expect(tokIdent, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	s := Insert{Table: name}
	for {
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		s.Values = append(s.Values, lit)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) literal() (Literal, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if _, err := strconv.ParseFloat(t.text, 64); err != nil {
			return Literal{}, fmt.Errorf("sql: bad number %q", t.text)
		}
		return Literal{Text: t.text}, nil
	case tokString:
		p.pos++
		return Literal{Text: t.text, IsString: true}, nil
	default:
		return Literal{}, fmt.Errorf("sql: expected literal, found %q", t.text)
	}
}

func (p *parser) update() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "SET"); err != nil {
		return nil, err
	}
	s := Update{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		s.Sets = append(s.Sets, Assign{Column: col, Value: lit})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	s.Where, err = p.where(true)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) delete() (Stmt, error) {
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := Delete{Table: name}
	s.Where, err = p.where(true)
	return s, err
}

func (p *parser) selectStmt() (Stmt, error) {
	s := Select{}
	if p.accept(tokPunct, "*") {
		// all columns
	} else {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, col)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Table = name
	s.Where, err = p.where(false)
	return s, err
}

func (p *parser) showHistory() (Stmt, error) {
	if _, err := p.expect(tokIdent, "HISTORY"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "FOR"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := ShowHistory{Table: name}
	s.Where, err = p.where(true)
	if err != nil {
		return nil, err
	}
	if s.Where.Op != "=" {
		return nil, fmt.Errorf("sql: SHOW HISTORY requires an equality predicate")
	}
	return s, nil
}

// where parses [WHERE col op literal]; required forces its presence.
func (p *parser) where(required bool) (*Cond, error) {
	if !p.accept(tokIdent, "WHERE") {
		if required {
			return nil, fmt.Errorf("sql: WHERE clause required")
		}
		return nil, nil
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch {
	case t.kind == tokPunct && (t.text == "=" || t.text == "<" || t.text == ">" || t.text == "<=" || t.text == ">="):
		p.pos++
	default:
		return nil, fmt.Errorf("sql: expected comparison operator, found %q", t.text)
	}
	lit, err := p.literal()
	if err != nil {
		return nil, err
	}
	return &Cond{Column: col, Op: t.text, Value: lit}, nil
}
