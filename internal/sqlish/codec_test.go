package sqlish

import (
	"reflect"
	"testing"
)

func TestResultCodecRoundTrip(t *testing.T) {
	cases := []*Result{
		{Msg: "table created"},
		{Affected: 3},
		{Columns: []string{"Oid", "LocationX"}, Rows: [][]string{
			{"1", "10"},
			{"2", "-5"},
		}},
		// Empty result set: Columns non-nil distinguishes "zero rows" from
		// "no result set".
		{Columns: []string{"Oid"}, Rows: nil},
		{},
	}
	for i, want := range cases {
		b := want.AppendBinary(nil)
		got, err := DecodeResult(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Msg != want.Msg || got.Affected != want.Affected {
			t.Fatalf("case %d: got %+v, want %+v", i, got, want)
		}
		if (got.Columns != nil) != (want.Columns != nil) {
			t.Fatalf("case %d: Columns nil-ness diverged", i)
		}
		if len(want.Columns) > 0 && !reflect.DeepEqual(got.Columns, want.Columns) {
			t.Fatalf("case %d: columns %v, want %v", i, got.Columns, want.Columns)
		}
		if len(want.Rows) > 0 && !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("case %d: rows %v, want %v", i, got.Rows, want.Rows)
		}
	}
}

func TestDecodeResultRejectsCorrupt(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		{},
		{0x01},                            // has-rows flag, then truncated
		{0x00, 200},                       // truncated affected uvarint
		{0x01, 0, 0, 0xff, 0xff, 0xff, 7}, // absurd column count
	} {
		if _, err := DecodeResult(b); err == nil {
			t.Fatalf("decode %v: want error", b)
		}
	}
}
