package wal

import (
	"os"
	"path/filepath"
	"testing"

	"immortaldb/internal/itime"
)

func benchLog(b *testing.B) *Log {
	b.Helper()
	dir, err := os.MkdirTemp("", "walbench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	l, err := Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		b.Fatal(err)
	}
	l.NoSync = true
	b.Cleanup(func() { l.Close() })
	return l
}

// BenchmarkAppendInsertVersion measures the per-write log cost.
func BenchmarkAppendInsertVersion(b *testing.B) {
	l := benchLog(b)
	rec := &Record{
		Type: TypeInsertVersion, TID: 1, Table: 1, Page: 9,
		Key: []byte("key-000123"), Value: make([]byte, 64),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
		if i%256 == 0 {
			if err := l.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAppendCommitFlush is the commit critical path: one commit record
// plus a log flush.
func BenchmarkAppendCommitFlush(b *testing.B) {
	l := benchLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(&Record{Type: TypeCommit, TID: itime.TID(i), TS: itime.Timestamp{Wall: int64(i)}}); err != nil {
			b.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
