package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"immortaldb/internal/obs"
	"immortaldb/internal/storage/vfs"
)

// Observability: append and fsync latency distributions plus how many commit
// hardenings each group-commit flush round satisfied (the batching win made
// visible). Process-global, aggregated across Log instances.
var obsAppendSample atomic.Uint64

var (
	obsAppendLat = obs.NewHistogram("immortaldb_wal_append_seconds",
		"Latency of appending one record to the WAL buffer.", obs.LatencyBuckets)
	obsFsyncLat = obs.NewHistogram("immortaldb_wal_fsync_seconds",
		"Latency of one WAL fsync.", obs.LatencyBuckets)
	obsGroupBatch = obs.NewHistogram("immortaldb_wal_group_batch",
		"Commit hardenings per group-commit flush round (leader plus joined followers).", obs.CountBuckets)
)

// fileHeaderLen is the log file header: magic(8) checkpointLSN(8).
const fileHeaderLen = 16

const logMagic = 0x494d4d57414c0a01 // "IMMWAL\n" + version

// FirstLSN is the LSN of the first record in a log file.
const FirstLSN = LSN(fileHeaderLen)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is the write-ahead log file. Appends are buffered in memory until
// Flush; FlushedLSN tells the buffer pool how far the log is durable (the
// WAL protocol: a page may be written only when the log covering its changes
// has been flushed).
//
// Appends stay cheap and concurrent: l.mu covers only the in-memory buffer.
// The write+fsync of a flush happens outside l.mu, serialized by flushMu, so
// new records can be appended while a sync is in flight — the property group
// commit (SyncTo) depends on.
type Log struct {
	mu       sync.Mutex // in-memory state: buf, offsets, counters, closed
	flushMu  sync.Mutex // serializes flush rounds: file writes stay ordered
	f        vfs.File
	buf      []byte // pending appended bytes
	bufStart LSN    // file offset of buf[0]
	end      LSN    // next append position
	flushed  LSN    // durable up to here (exclusive)
	ckpt     LSN    // last checkpoint record, 0 if none
	closed   bool
	// NoSync skips fsync on Flush; used by benchmarks where the paper's
	// workload measures CPU and buffer behaviour rather than disk latency.
	NoSync bool
	// GroupCommit makes SyncTo share fsyncs between concurrent committers: a
	// leader flushes through the highest pending LSN while followers park,
	// then everyone whose record is covered wakes. Must be set before use.
	GroupCommit bool
	// CommitEvery bounds the extra latency a group-commit leader adds waiting
	// for followers to join its fsync. Zero (the default) never waits: the
	// leader flushes immediately, and batching arises from committers that
	// arrive while its sync is in flight.
	CommitEvery time.Duration

	// Group-commit dispatcher state. gcRound counts completed flush rounds so
	// followers can wait for "the round after mine started".
	gcMu     sync.Mutex
	gcCond   *sync.Cond
	gcLeader bool
	gcRound  uint64
	// gcJoiners counts followers parked on the in-flight round; the leader
	// reads-and-resets it to observe the round's batch size. A follower that
	// joins after the round captured the buffer inflates the count by one —
	// histogram noise, not bookkeeping.
	gcJoiners uint64

	appends uint64
	syncs   uint64
	grouped uint64 // SyncTo calls satisfied by another caller's fsync
}

// Open opens or creates the log at path on the real filesystem. On open it
// scans for the last valid record, truncating any torn tail left by a crash.
func Open(path string) (*Log, error) {
	return OpenFS(vfs.OS(), path)
}

// OpenFS is Open on an arbitrary filesystem — vfs.OS for production,
// vfs.SimFS for crash testing.
func OpenFS(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: size: %w", err)
	}
	if size == 0 {
		var hdr [fileHeaderLen]byte
		binary.BigEndian.PutUint64(hdr[0:], logMagic)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: init header: %w", err)
		}
		// Make the header durable now: it is written exactly once, and a
		// later Flush with NoSync set must not leave it at risk.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync header: %w", err)
		}
		l.end = FirstLSN
		l.bufStart = l.end
		l.flushed = l.end
		return l, nil
	}
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, fileHeaderLen), hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read header: %w", err)
	}
	if binary.BigEndian.Uint64(hdr[0:]) != logMagic {
		f.Close()
		return nil, fmt.Errorf("wal: %s is not a log file", path)
	}
	l.ckpt = LSN(binary.BigEndian.Uint64(hdr[8:]))

	// Scan forward to the last valid record.
	data, err := io.ReadAll(io.NewSectionReader(f, fileHeaderLen, size-fileHeaderLen))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read log: %w", err)
	}
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			break // torn tail
		}
		off += n
	}
	l.end = FirstLSN + LSN(off)
	if err := f.Truncate(int64(l.end)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if l.ckpt >= l.end {
		l.ckpt = 0 // checkpoint pointer beyond the valid log: ignore it
	}
	l.bufStart = l.end
	l.flushed = l.end
	return l, nil
}

// Append adds r to the log buffer and returns its LSN. The record is not
// durable until Flush (or FlushTo past it).
func (l *Log) Append(r *Record) (LSN, error) {
	// Sampled 1-in-16: an append is a sub-microsecond buffer copy, and two
	// clock reads per record would cost more than the work being measured.
	// Quantiles over a 1/16 systematic sample are statistically the same.
	if obsAppendSample.Add(1)&15 == 0 {
		defer obsAppendLat.ObserveSince(obs.Now())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.end
	r.LSN = lsn
	l.buf = r.encode(l.buf)
	l.end += LSN(r.encodedLen())
	l.appends++
	return lsn, nil
}

// Flush writes all buffered records and makes them durable (unless NoSync).
func (l *Log) Flush() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return l.flushRoundLocked()
}

// flushRoundLocked runs one flush round: it takes ownership of the pending
// buffer under l.mu, writes and syncs it with l.mu released, then advances
// the durable watermark. The caller holds flushMu, so concurrent flushers
// with overlapping ranges are ordered — a later round can only write bytes
// appended after the earlier round's capture, never the same file range
// twice with different content — and re-flushing an already-durable range
// degenerates to an empty write plus an extra (idempotent) fsync.
func (l *Log) flushRoundLocked() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	buf := l.buf
	start := l.bufStart
	end := l.end
	l.buf = nil
	l.bufStart = end
	l.mu.Unlock()

	if len(buf) > 0 {
		if _, err := l.f.WriteAt(buf, int64(start)); err != nil {
			// Hand the bytes back: appends that raced in during the write sit
			// in l.buf and belong directly after ours, so the spliced buffer
			// is contiguous again from start.
			l.mu.Lock()
			l.buf = append(buf, l.buf...)
			l.bufStart = start
			l.mu.Unlock()
			return fmt.Errorf("wal: write: %w", err)
		}
	}
	if !l.NoSync {
		syncStart := obs.Now()
		if err := l.f.Sync(); err != nil {
			// Written but not durable: flushed stays put, a later round's
			// sync covers these bytes.
			return fmt.Errorf("wal: sync: %w", err)
		}
		obsFsyncLat.ObserveSince(syncStart)
	}
	l.mu.Lock()
	if !l.NoSync {
		l.syncs++
	}
	if end > l.flushed {
		l.flushed = end
	}
	l.mu.Unlock()
	return nil
}

// FlushTo ensures the record at lsn (and everything before it) is durable.
// It is the buffer pool's write-ahead check. flushed always sits on a record
// boundary, so the record at lsn is durable exactly when lsn < flushed: a
// record appended immediately after a flush starts AT the flushed offset and
// is still entirely in the buffer — lsn == flushed means not yet written.
func (l *Log) FlushTo(lsn LSN) error {
	l.mu.Lock()
	covered := lsn < l.flushed
	l.mu.Unlock()
	if covered {
		return nil
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	// A round that completed while this caller waited for flushMu may already
	// have covered lsn; re-flushing would only burn an extra fsync.
	l.mu.Lock()
	covered = lsn < l.flushed
	l.mu.Unlock()
	if covered {
		return nil
	}
	return l.flushRoundLocked()
}

// SyncTo makes the record at lsn durable — the commit path's durability
// point. With GroupCommit off it is FlushTo. With it on, concurrent callers
// elect a leader: the leader (optionally waiting CommitEvery for more
// committers to append) runs one flush round covering everything appended so
// far, while followers park; when the round ends, every caller whose record
// it covered returns on that single shared fsync, and anyone left over
// competes to lead the next round.
func (l *Log) SyncTo(lsn LSN) error {
	if !l.GroupCommit {
		return l.FlushTo(lsn)
	}
	l.gcMu.Lock()
	if l.gcCond == nil {
		l.gcCond = sync.NewCond(&l.gcMu)
	}
	waited := false
	for {
		l.mu.Lock()
		covered := lsn < l.flushed
		closed := l.closed
		l.mu.Unlock()
		if closed {
			l.gcMu.Unlock()
			return ErrClosed
		}
		if covered {
			if waited {
				l.grouped++
			}
			l.gcMu.Unlock()
			return nil
		}
		if !l.gcLeader {
			l.gcLeader = true
			l.gcMu.Unlock()
			if l.CommitEvery > 0 {
				time.Sleep(l.CommitEvery)
			} else {
				// Give committers already on the run queue one scheduler pass
				// to append before the round captures the buffer. A goroutine
				// blocked in a short fsync keeps its P until the runtime
				// retakes it, so on few-core boxes concurrent committers
				// otherwise never overlap a sync round and every round flushes
				// a single record. With an idle run queue this is a no-op, so
				// a lone committer pays nothing.
				runtime.Gosched()
			}
			err := func() error {
				l.flushMu.Lock()
				defer l.flushMu.Unlock()
				return l.flushRoundLocked()
			}()
			l.gcMu.Lock()
			l.gcLeader = false
			l.gcRound++
			batch := 1 + l.gcJoiners
			l.gcJoiners = 0
			l.gcCond.Broadcast()
			l.gcMu.Unlock()
			obsGroupBatch.Observe(float64(batch))
			return err
		}
		// Follow: wait out the in-flight round, then re-check. If the round
		// failed or started before our append, the loop elects us leader and
		// we get the flush error (or success) firsthand.
		l.gcJoiners++
		round := l.gcRound
		for l.gcRound == round {
			l.gcCond.Wait()
		}
		waited = true
	}
}

// GroupedSyncs returns how many SyncTo calls were satisfied by an fsync
// another caller issued — the group-commit batching win.
func (l *Log) GroupedSyncs() uint64 {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return l.grouped
}

// FlushedLSN returns the durable prefix end.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// End returns the LSN one past the last appended record — the "end of log"
// the VTT snapshots when a transaction's timestamping completes (Section
// 2.2, garbage collection).
func (l *Log) End() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Checkpoint returns the LSN of the last checkpoint record, 0 if none.
func (l *Log) Checkpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckpt
}

// SetCheckpoint durably records lsn as the checkpoint pointer in the file
// header. The checkpoint record itself must already be flushed.
func (l *Log) SetCheckpoint(lsn LSN) error {
	if err := l.FlushTo(lsn); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(lsn))
	if _, err := l.f.WriteAt(b[:], 8); err != nil {
		return fmt.Errorf("wal: write checkpoint pointer: %w", err)
	}
	if !l.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync checkpoint pointer: %w", err)
		}
		l.syncs++
	}
	l.ckpt = lsn
	return nil
}

// ReadAt reads the single record at lsn. Pending appends are flushed first
// so undo can read what it just wrote.
func (l *Log) ReadAt(lsn LSN) (*Record, error) {
	l.mu.Lock()
	pending := len(l.buf) > 0
	end := l.end
	l.mu.Unlock()
	if pending {
		if err := l.Flush(); err != nil {
			return nil, err
		}
	}
	if lsn < FirstLSN || lsn >= end {
		return nil, fmt.Errorf("wal: LSN %d out of range [%d,%d)", lsn, FirstLSN, end)
	}
	var hdr [4]byte
	if _, err := l.f.ReadAt(hdr[:], int64(lsn)); err != nil {
		return nil, fmt.Errorf("wal: read at %d: %w", lsn, err)
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total < recHeaderLen || total > MaxRecordLen {
		return nil, fmt.Errorf("%w: at %d", ErrCorruptRecord, lsn)
	}
	buf := make([]byte, total)
	if _, err := l.f.ReadAt(buf, int64(lsn)); err != nil {
		return nil, fmt.Errorf("wal: read at %d: %w", lsn, err)
	}
	r, _, err := decodeRecord(buf)
	if err != nil {
		return nil, err
	}
	r.LSN = lsn
	return r, nil
}

// Scan calls fn for every record from lsn (inclusive) to the end of the log,
// in order. Pending appends are flushed first. fn returning an error stops
// the scan and returns that error.
func (l *Log) Scan(from LSN, fn func(*Record) error) error {
	l.mu.Lock()
	pending := len(l.buf) > 0
	end := l.end
	l.mu.Unlock()
	if pending {
		if err := l.Flush(); err != nil {
			return err
		}
	}
	if from == 0 || from < FirstLSN {
		from = FirstLSN
	}
	if from >= end {
		return nil
	}
	data, err := io.ReadAll(io.NewSectionReader(l.f, int64(from), int64(end-from)))
	if err != nil {
		return fmt.Errorf("wal: scan read: %w", err)
	}
	off := 0
	for off < len(data) {
		r, n, err := decodeRecord(data[off:])
		if err != nil {
			return fmt.Errorf("wal: scan at %d: %w", from+LSN(off), err)
		}
		r.LSN = from + LSN(off)
		if err := fn(r); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Stats returns append and fsync counters.
func (l *Log) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// Size returns the current log size in bytes, pending appends included.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.end)
}

// CloseNoFlush closes the log file abruptly, discarding buffered appends —
// it simulates a process crash for recovery testing. Records already flushed
// (every committed transaction's) remain on disk.
func (l *Log) CloseNoFlush() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.f.Close()
	l.mu.Unlock()
	l.gcMu.Lock()
	if l.gcCond != nil {
		l.gcRound++
		l.gcCond.Broadcast()
	}
	l.gcMu.Unlock()
	return err
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if len(l.buf) > 0 {
		if _, werr := l.f.WriteAt(l.buf, int64(l.bufStart)); werr != nil {
			err = fmt.Errorf("wal: write: %w", werr)
		} else {
			l.bufStart += LSN(len(l.buf))
			l.buf = nil
		}
	}
	if err == nil && !l.NoSync {
		if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: sync: %w", serr)
		} else {
			l.syncs++
			l.flushed = l.bufStart
		}
	} else if err == nil {
		l.flushed = l.bufStart
	}
	if err2 := l.f.Close(); err == nil {
		err = err2
	}
	l.closed = true
	l.mu.Unlock()
	// Wake any group-commit followers so they observe closed and return.
	l.gcMu.Lock()
	if l.gcCond != nil {
		l.gcRound++
		l.gcCond.Broadcast()
	}
	l.gcMu.Unlock()
	return err
}
