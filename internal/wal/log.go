package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"immortaldb/internal/obs"
	"immortaldb/internal/storage/vfs"
)

// Observability: append and fsync latency distributions plus how many commit
// hardenings each group-commit flush round satisfied (the batching win made
// visible). Process-global, aggregated across Log instances.
var obsAppendSample atomic.Uint64

var (
	obsAppendLat = obs.NewHistogram("immortaldb_wal_append_seconds",
		"Latency of appending one record to the WAL buffer.", obs.LatencyBuckets)
	obsFsyncLat = obs.NewHistogram("immortaldb_wal_fsync_seconds",
		"Latency of one WAL fsync.", obs.LatencyBuckets)
	obsGroupBatch = obs.NewHistogram("immortaldb_wal_group_batch",
		"Commit hardenings per group-commit flush round (leader plus joined followers).", obs.CountBuckets)
	obsSegments = obs.NewGauge("immortaldb_wal_segments",
		"Live WAL segment files (grows on rotation, shrinks on checkpoint truncation).")
)

// FirstLSN is the LSN of the first record ever appended. LSNs are logical
// offsets in the unbroken record stream; the value 16 is kept from the
// single-file layout so LSN arithmetic and on-disk record formats are
// unchanged by segmentation.
const FirstLSN = LSN(16)

// DefaultSegmentSize is the data capacity of one segment file before the log
// rotates to a new one.
const DefaultSegmentSize = 16 << 20

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrFailed reports use of a log that has taken an I/O failure on its write
// path. The state is sticky by design: once a write or fsync has failed, the
// kernel may have dropped the dirty pages, so a later "successful" fsync
// proves nothing (the fsyncgate trap). The only way back to a trustworthy
// log is reopen + recovery, which re-reads what is actually on disk.
var ErrFailed = errors.New("wal: log failed, reopen required")

// Log is the write-ahead log: rotated segment files plus a control file (see
// segment.go for the layout). Appends are buffered in memory until Flush;
// FlushedLSN tells the buffer pool how far the log is durable (the WAL
// protocol: a page may be written only when the log covering its changes has
// been flushed).
//
// Appends stay cheap and concurrent: l.mu covers only the in-memory buffer.
// The write+fsync of a flush happens outside l.mu, serialized by flushMu, so
// new records can be appended while a sync is in flight — the property group
// commit (SyncTo) depends on.
type Log struct {
	mu       sync.Mutex // in-memory state: buf, offsets, segments, counters
	flushMu  sync.Mutex // serializes flush rounds: file writes stay ordered
	fsys     vfs.FS
	path     string
	ctl      vfs.File   // control file (checkpoint slots)
	segs     []*segment // ascending by start; the last is the active segment
	ctlGen   uint64
	buf      []byte // pending appended bytes
	bufStart LSN    // logical offset of buf[0]
	end      LSN    // next append position
	flushed  LSN    // durable up to here (exclusive)
	ckpt     LSN    // last checkpoint record, 0 if none
	fail     error  // sticky first write-path failure; nil while healthy
	closed   bool
	// ingest marks a replica's log copy (set by the first IngestChunk).
	// Ordinary appends are refused: the copy must stay byte-identical to a
	// prefix of the primary's stream.
	ingest bool
	// sealed marks a promoted log: Promote cut the ingested stream at the
	// fence and this log now appends its own timeline, so any further
	// ingestion — a late chunk from a retired pull loop, a zombie shipper —
	// is refused instead of grafting foreign bytes past the fence.
	sealed bool
	// NoSync skips fsync on Flush; used by benchmarks where the paper's
	// workload measures CPU and buffer behaviour rather than disk latency.
	NoSync bool
	// GroupCommit makes SyncTo share fsyncs between concurrent committers: a
	// leader flushes through the highest pending LSN while followers park,
	// then everyone whose record is covered wakes. Must be set before use.
	GroupCommit bool
	// CommitEvery bounds the extra latency a group-commit leader adds waiting
	// for followers to join its fsync. Zero (the default) never waits: the
	// leader flushes immediately, and batching arises from committers that
	// arrive while its sync is in flight.
	CommitEvery time.Duration
	// SegmentSize is the data capacity of a segment before rotation; zero
	// means DefaultSegmentSize. Must be set before use.
	SegmentSize int64
	// LowWater is extra free space (beyond the new segment itself) the
	// filesystem must report for a rotation to proceed, reserving headroom
	// for page and checkpoint writes. Only enforced when the FS implements
	// vfs.FreeSpacer. Must be set before use.
	LowWater int64

	// Group-commit dispatcher state. gcRound counts completed flush rounds so
	// followers can wait for "the round after mine started".
	gcMu     sync.Mutex
	gcCond   *sync.Cond
	gcLeader bool
	gcRound  uint64
	// gcJoiners counts followers parked on the in-flight round; the leader
	// reads-and-resets it to observe the round's batch size. A follower that
	// joins after the round captured the buffer inflates the count by one —
	// histogram noise, not bookkeeping.
	gcJoiners uint64

	appends uint64
	syncs   uint64
	grouped uint64 // SyncTo calls satisfied by another caller's fsync
}

// Open opens or creates the log at path on the real filesystem. On open it
// scans for the last valid record, truncating any torn tail left by a crash.
func Open(path string) (*Log, error) {
	return OpenFS(vfs.OS(), path)
}

// OpenFS is Open on an arbitrary filesystem — vfs.OS for production,
// vfs.SimFS for crash testing. It reads the control file, discovers and
// validates the segment files, and scans the retained records to find the
// end of log, truncating any torn tail.
func OpenFS(fsys vfs.FS, path string) (*Log, error) {
	l := &Log{fsys: fsys, path: path}
	if err := l.openCtl(); err != nil {
		return nil, err
	}
	if err := l.openSegments(); err != nil {
		l.ctl.Close()
		return nil, err
	}
	if err := l.scanSegments(); err != nil {
		l.closeFiles()
		return nil, err
	}
	if l.ckpt >= l.end || (l.ckpt != 0 && l.ckpt < l.segs[0].start) {
		l.ckpt = 0 // checkpoint pointer outside the retained log: ignore it
	}
	l.bufStart = l.end
	l.flushed = l.end
	obsSegments.Set(int64(len(l.segs)))
	return l, nil
}

// openCtl opens or creates the control file and loads the newest valid
// checkpoint slot.
func (l *Log) openCtl() error {
	ctl, err := l.fsys.OpenFile(l.path)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", l.path, err)
	}
	l.ctl = ctl
	size, err := ctl.Size()
	if err != nil {
		ctl.Close()
		return fmt.Errorf("wal: size %s: %w", l.path, err)
	}
	if size == 0 {
		if err := l.writeCtlSlot(1, 0, true); err != nil {
			ctl.Close()
			return err
		}
		l.ctlGen = 1
		return nil
	}
	b := make([]byte, ctlSlotStride+ctlSlotLen)
	if n, err := ctl.ReadAt(b, 0); err != nil && err != io.EOF {
		ctl.Close()
		return fmt.Errorf("wal: read %s: %w", l.path, err)
	} else {
		b = b[:n]
	}
	if len(b) >= 8 && binary.BigEndian.Uint64(b) == 0x494d4d57414c0a01 {
		ctl.Close()
		return fmt.Errorf("wal: %s is a v1 single-file log (unsupported)", l.path)
	}
	found := false
	for slot := 0; slot < 2; slot++ {
		off := slot * ctlSlotStride
		if off+ctlSlotLen > len(b) {
			continue
		}
		if gen, ckpt, ok := decodeCtlSlot(b[off : off+ctlSlotLen]); ok && gen > l.ctlGen {
			l.ctlGen, l.ckpt, found = gen, ckpt, true
		}
	}
	if !found {
		// Both slots unreadable (first-ever slot write torn by a crash, or
		// foreign bytes at this path). Records are still recoverable from
		// the segment scan; restart the checkpoint pointer from zero.
		if err := l.writeCtlSlot(1, 0, true); err != nil {
			ctl.Close()
			return err
		}
		l.ctlGen, l.ckpt = 1, 0
	}
	return nil
}

// writeCtlSlot writes one checkpoint slot. Slots alternate by generation so
// a torn write never destroys the last durable checkpoint pointer.
func (l *Log) writeCtlSlot(gen uint64, ckpt LSN, sync bool) error {
	off := int64((gen - 1) % 2 * ctlSlotStride)
	if _, err := l.ctl.WriteAt(encodeCtlSlot(gen, ckpt), off); err != nil {
		obs.IOError("write", vfs.ErrClass(err))
		return fmt.Errorf("wal: write checkpoint slot: %w", err)
	}
	if sync {
		if err := l.ctl.Sync(); err != nil {
			obs.IOError("sync", vfs.ErrClass(err))
			return fmt.Errorf("wal: sync checkpoint slot: %w", err)
		}
	}
	return nil
}

// openSegments discovers, orders and validates segment files. The first
// segment with a bad header or a sequence/start discontinuity and everything
// after it are deleted: a segment's header is made durable before any record
// in it can be acked, so a torn header proves nothing beyond that rotation
// point ever reached a committed acknowledgement.
func (l *Log) openSegments() error {
	names, err := l.fsys.List(l.path + ".")
	if err != nil {
		return fmt.Errorf("wal: list segments: %w", err)
	}
	type cand struct {
		seq  uint64
		name string
	}
	var cands []cand
	for _, name := range names {
		if seq, ok := parseSegPath(l.path, name); ok {
			cands = append(cands, cand{seq, name})
		}
	}
	// List returns sorted names and seqs are fixed-width, so cands are in
	// ascending seq order already; validate rather than assume.
	for i := 1; i < len(cands); i++ {
		if cands[i].seq <= cands[i-1].seq {
			return fmt.Errorf("wal: segment listing out of order at %s", cands[i].name)
		}
	}
	for i, c := range cands {
		f, err := l.fsys.OpenFile(c.name)
		if err != nil {
			l.closeSegs()
			return fmt.Errorf("wal: open segment %s: %w", c.name, err)
		}
		hdr := make([]byte, segHeaderLen)
		_, rerr := f.ReadAt(hdr, 0)
		seq, start, derr := decodeSegHeader(hdr)
		bad := rerr != nil && rerr != io.EOF || derr != nil || seq != c.seq
		if !bad && len(l.segs) > 0 {
			prev := l.segs[len(l.segs)-1]
			bad = seq != prev.seq+1 || start <= prev.start
		}
		if bad {
			// Drop this segment and all later ones.
			f.Close()
			for _, d := range cands[i:] {
				if err := l.fsys.Remove(d.name); err != nil {
					l.closeSegs()
					return fmt.Errorf("wal: remove dead segment %s: %w", d.name, err)
				}
			}
			break
		}
		l.segs = append(l.segs, &segment{seq: seq, start: start, f: f, path: c.name})
	}
	if len(l.segs) == 0 {
		return l.addSegment(1, FirstLSN, false)
	}
	return nil
}

// addSegment creates and makes durable a new empty segment file starting at
// start. With preallocate set, the file is extended to its full capacity now
// so a full disk fails the rotation — before any LSN is assigned — instead
// of a later record write.
func (l *Log) addSegment(seq uint64, start LSN, preallocate bool) error {
	path := segPath(l.path, seq)
	f, err := l.fsys.OpenFile(path)
	if err != nil {
		obs.IOError("open", vfs.ErrClass(err))
		return fmt.Errorf("wal: create segment %s: %w", path, err)
	}
	abort := func(op string, err error) error {
		obs.IOError(op, vfs.ErrClass(err))
		f.Close()
		l.fsys.Remove(path)
		return fmt.Errorf("wal: init segment %s: %w", path, err)
	}
	if _, err := f.WriteAt(encodeSegHeader(seq, start), 0); err != nil {
		return abort("write", err)
	}
	if preallocate {
		if err := f.Truncate(segHeaderLen + l.segmentSize()); err != nil {
			return abort("truncate", err)
		}
	}
	if err := f.Sync(); err != nil {
		return abort("sync", err)
	}
	l.segs = append(l.segs, &segment{seq: seq, start: start, f: f, path: path, prealloc: preallocate})
	obsSegments.Set(int64(len(l.segs)))
	return nil
}

func (l *Log) segmentSize() int64 {
	if l.SegmentSize > 0 {
		return l.SegmentSize
	}
	return DefaultSegmentSize
}

// scanSegments walks every retained record to find the end of log. A decode
// failure inside a sealed segment (a hole: sectors lost under data that was
// never sync-acked) or in the last segment (a torn tail) truncates the log
// there; later segments cannot contain acked records — their syncs are
// ordered after the failed range's — and are deleted.
func (l *Log) scanSegments() error {
	for i := 0; i < len(l.segs); i++ {
		seg := l.segs[i]
		var limit int64 // data bytes this segment may validly hold
		if i+1 < len(l.segs) {
			limit = int64(l.segs[i+1].start - seg.start)
		} else {
			size, err := seg.f.Size()
			if err != nil {
				return fmt.Errorf("wal: size %s: %w", seg.path, err)
			}
			limit = size - segHeaderLen
		}
		data, err := io.ReadAll(io.NewSectionReader(seg.f, segHeaderLen, limit))
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", seg.path, err)
		}
		off := 0
		for off < len(data) {
			_, n, err := decodeRecord(data[off:])
			if err != nil {
				break
			}
			off += n
		}
		l.end = seg.start + LSN(off)
		if off == len(data) && int64(off) == limit && i+1 < len(l.segs) {
			continue // sealed segment fully valid; next segment picks up
		}
		// Torn tail or hole: the log ends here. Trim this file and drop any
		// later segments.
		if err := seg.f.Truncate(segHeaderLen + int64(off)); err != nil {
			return fmt.Errorf("wal: truncate torn tail %s: %w", seg.path, err)
		}
		for _, dead := range l.segs[i+1:] {
			dead.f.Close()
			if err := l.fsys.Remove(dead.path); err != nil {
				return fmt.Errorf("wal: remove dead segment %s: %w", dead.path, err)
			}
		}
		l.segs = l.segs[:i+1]
		break
	}
	return nil
}

func (l *Log) closeSegs() {
	for _, seg := range l.segs {
		seg.f.Close()
	}
	l.segs = nil
}

func (l *Log) closeFiles() {
	l.closeSegs()
	if l.ctl != nil {
		l.ctl.Close()
	}
}

// failedErrLocked wraps the sticky first failure; callers hold l.mu.
func (l *Log) failedErrLocked() error {
	return fmt.Errorf("%w (first failure: %v)", ErrFailed, l.fail)
}

// setFail latches the first write-path failure. Every later Append, Flush,
// SyncTo and SetCheckpoint returns ErrFailed until the log is reopened.
func (l *Log) setFail(err error) {
	l.mu.Lock()
	if l.fail == nil {
		l.fail = err
	}
	l.mu.Unlock()
}

// Failed returns the sticky first write-path failure, nil while healthy.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fail
}

// segIndex returns the index of the segment containing lsn; segs must be
// non-empty and lsn >= segs[0].start.
func segIndex(segs []*segment, lsn LSN) int {
	i := len(segs) - 1
	for i > 0 && segs[i].start > lsn {
		i--
	}
	return i
}

// Append adds r to the log buffer and returns its LSN. The record is not
// durable until Flush (or FlushTo past it). When the active segment is full
// Append first rotates to a new one; a rotation failure (including a clean
// ErrNoSpace from the free-space low-water check) is returned before any
// LSN is assigned, so the failed record simply does not exist.
func (l *Log) Append(r *Record) (LSN, error) {
	// Sampled 1-in-16: an append is a sub-microsecond buffer copy, and two
	// clock reads per record would cost more than the work being measured.
	// Quantiles over a 1/16 systematic sample are statistically the same.
	if obsAppendSample.Add(1)&15 == 0 {
		defer obsAppendLat.ObserveSince(obs.Now())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.fail != nil {
		return 0, l.failedErrLocked()
	}
	if l.ingest {
		return 0, fmt.Errorf("wal: append to a replica log copy")
	}
	// Exact-fit rotation: a record that would overflow the active segment's
	// preallocated capacity goes into a fresh one instead (unless the
	// segment is empty — a record bigger than a whole segment still gets
	// one to itself). Flushes therefore never grow a segment file, so a
	// full disk surfaces here, before the LSN exists, not mid-flush.
	recLen := int64(r.encodedLen())
	active := l.segs[len(l.segs)-1]
	if int64(l.end-active.start)+recLen > l.segmentSize() && l.end > active.start {
		if err := l.rotateLocked(active, r.Type == TypeCheckpoint); err != nil {
			return 0, err
		}
	} else if !active.prealloc {
		if err := l.preallocLocked(active); err != nil {
			return 0, err
		}
	}
	lsn := l.end
	r.LSN = lsn
	l.buf = r.encode(l.buf)
	l.end += LSN(r.encodedLen())
	l.appends++
	return lsn, nil
}

// rotateLocked opens the next segment. Before touching the disk it applies
// the low-water free-space check: if the filesystem can report free space
// and there is not room for the new segment plus LowWater headroom, the
// rotation fails with ErrNoSpace — a clean, contained refusal at
// segment-extend time rather than a torn write later.
//
// A checkpoint record is exempt (and its segment is not preallocated): the
// checkpoint is the record that moves the reclamation bound, so it is the
// engine's only way OUT of a full disk. Gating it behind free space would
// deadlock recovery — the post-recovery checkpoint could never land, so
// TruncateBefore could never free the dead segments that would have made
// room for it. The emergency segment only consumes the header plus the
// record itself; the next ordinary append preallocates it to full size,
// after checkpoint-driven truncation has (normally) freed space again.
func (l *Log) rotateLocked(active *segment, emergency bool) error {
	short := false
	need := segHeaderLen + l.segmentSize() + l.LowWater
	if fsp, ok := l.fsys.(vfs.FreeSpacer); ok {
		if free, known := fsp.FreeBytes(); known && free < need {
			if !emergency {
				obs.IOError("truncate", vfs.ClassNoSpace)
				return fmt.Errorf("wal: rotate to segment %d: free space %d below low water %d: %w",
					active.seq+1, free, need, vfs.ErrNoSpace)
			}
			short = true
		}
	}
	return l.addSegment(active.seq+1, l.end, !short)
}

// preallocLocked extends a segment that was opened without preallocation —
// the first segment of a fresh log, or the tail segment after a reopen
// trimmed it — to full capacity, so that a full disk is detected now rather
// than by a mid-flush write. No sync: the extension reads back as zeros and
// losing it in a crash just re-runs this on reopen.
func (l *Log) preallocLocked(seg *segment) error {
	want := segHeaderLen + l.segmentSize()
	size, err := seg.f.Size()
	if err != nil {
		return fmt.Errorf("wal: size %s: %w", seg.path, err)
	}
	if size < want {
		if err := seg.f.Truncate(want); err != nil {
			obs.IOError("truncate", vfs.ErrClass(err))
			return fmt.Errorf("wal: preallocate %s: %w", seg.path, err)
		}
	}
	seg.prealloc = true
	return nil
}

// writeRange writes buf, whose first byte is at logical offset start, into
// the segments that cover it, returning the segments touched in ascending
// order. segs is a snapshot taken with the buffer.
func writeRange(segs []*segment, buf []byte, start LSN) ([]*segment, error) {
	var touched []*segment
	cur := start
	i := segIndex(segs, cur)
	for len(buf) > 0 {
		seg := segs[i]
		n := len(buf)
		if i+1 < len(segs) {
			if avail := int64(segs[i+1].start - cur); int64(n) > avail {
				n = int(avail)
			}
		}
		if _, err := seg.f.WriteAt(buf[:n], segHeaderLen+int64(cur-seg.start)); err != nil {
			obs.IOError("write", vfs.ErrClass(err))
			return touched, fmt.Errorf("wal: write %s: %w", seg.path, err)
		}
		touched = append(touched, seg)
		cur += LSN(n)
		buf = buf[n:]
		i++
	}
	return touched, nil
}

// Flush writes all buffered records and makes them durable (unless NoSync).
func (l *Log) Flush() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return l.flushRoundLocked()
}

// flushRoundLocked runs one flush round: it takes ownership of the pending
// buffer under l.mu, writes and syncs it with l.mu released, then advances
// the durable watermark. The caller holds flushMu, so concurrent flushers
// with overlapping ranges are ordered — a later round can only write bytes
// appended after the earlier round's capture, never the same file range
// twice with different content.
//
// Any write or sync failure latches the log failed (setFail): after a failed
// fsync the kernel may have dropped the dirty pages, so retrying the round
// and trusting a later clean fsync would claim durability for bytes that
// never reached the platter. The watermark therefore never advances past a
// failure, and the log refuses all further writes until reopened.
func (l *Log) flushRoundLocked() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.fail != nil {
		err := l.failedErrLocked()
		l.mu.Unlock()
		return err
	}
	buf := l.buf
	start := l.bufStart
	end := l.end
	segs := l.segs
	l.buf = nil
	l.bufStart = end
	l.mu.Unlock()

	touched, err := writeRange(segs, buf, start)
	if err != nil {
		l.setFail(err)
		return err
	}
	nsyncs := 0
	if !l.NoSync && len(touched) > 0 {
		syncStart := obs.Now()
		// Oldest segment first: a record is only considered durable when
		// every byte before it is, so syncs must land in log order.
		for _, seg := range touched {
			if err := seg.f.Sync(); err != nil {
				obs.IOError("sync", vfs.ErrClass(err))
				err = fmt.Errorf("wal: sync %s: %w", seg.path, err)
				l.setFail(err)
				return err
			}
			nsyncs++
		}
		obsFsyncLat.ObserveSince(syncStart)
	}
	l.mu.Lock()
	l.syncs += uint64(nsyncs)
	if end > l.flushed {
		l.flushed = end
	}
	l.mu.Unlock()
	return nil
}

// FlushTo ensures the record at lsn (and everything before it) is durable.
// It is the buffer pool's write-ahead check. flushed always sits on a record
// boundary, so the record at lsn is durable exactly when lsn < flushed: a
// record appended immediately after a flush starts AT the flushed offset and
// is still entirely in the buffer — lsn == flushed means not yet written.
func (l *Log) FlushTo(lsn LSN) error {
	l.mu.Lock()
	covered := lsn < l.flushed
	l.mu.Unlock()
	if covered {
		return nil
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	// A round that completed while this caller waited for flushMu may already
	// have covered lsn; re-flushing would only burn an extra fsync.
	l.mu.Lock()
	covered = lsn < l.flushed
	l.mu.Unlock()
	if covered {
		return nil
	}
	return l.flushRoundLocked()
}

// SyncTo makes the record at lsn durable — the commit path's durability
// point. With GroupCommit off it is FlushTo. With it on, concurrent callers
// elect a leader: the leader (optionally waiting CommitEvery for more
// committers to append) runs one flush round covering everything appended so
// far, while followers park; when the round ends, every caller whose record
// it covered returns on that single shared fsync, and anyone left over
// competes to lead the next round.
func (l *Log) SyncTo(lsn LSN) error {
	if !l.GroupCommit {
		return l.FlushTo(lsn)
	}
	l.gcMu.Lock()
	if l.gcCond == nil {
		l.gcCond = sync.NewCond(&l.gcMu)
	}
	waited := false
	for {
		l.mu.Lock()
		covered := lsn < l.flushed
		closed := l.closed
		failed := l.fail != nil
		var failErr error
		if failed {
			failErr = l.failedErrLocked()
		}
		l.mu.Unlock()
		if closed {
			l.gcMu.Unlock()
			return ErrClosed
		}
		if failed {
			// A follower must never treat a round that failed — even one led
			// by someone else — as durability for its own record.
			l.gcMu.Unlock()
			return failErr
		}
		if covered {
			if waited {
				l.grouped++
			}
			l.gcMu.Unlock()
			return nil
		}
		if !l.gcLeader {
			l.gcLeader = true
			l.gcMu.Unlock()
			if l.CommitEvery > 0 {
				time.Sleep(l.CommitEvery)
			} else {
				// Give committers already on the run queue one scheduler pass
				// to append before the round captures the buffer. A goroutine
				// blocked in a short fsync keeps its P until the runtime
				// retakes it, so on few-core boxes concurrent committers
				// otherwise never overlap a sync round and every round flushes
				// a single record. With an idle run queue this is a no-op, so
				// a lone committer pays nothing.
				runtime.Gosched()
			}
			err := func() error {
				l.flushMu.Lock()
				defer l.flushMu.Unlock()
				return l.flushRoundLocked()
			}()
			l.gcMu.Lock()
			l.gcLeader = false
			l.gcRound++
			batch := 1 + l.gcJoiners
			l.gcJoiners = 0
			l.gcCond.Broadcast()
			l.gcMu.Unlock()
			obsGroupBatch.Observe(float64(batch))
			return err
		}
		// Follow: wait out the in-flight round, then re-check. If the round
		// failed or started before our append, the loop elects us leader and
		// we get the flush error (or success) firsthand.
		l.gcJoiners++
		round := l.gcRound
		for l.gcRound == round {
			l.gcCond.Wait()
		}
		waited = true
	}
}

// GroupedSyncs returns how many SyncTo calls were satisfied by an fsync
// another caller issued — the group-commit batching win.
func (l *Log) GroupedSyncs() uint64 {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return l.grouped
}

// FlushedLSN returns the durable prefix end.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// End returns the LSN one past the last appended record — the "end of log"
// the VTT snapshots when a transaction's timestamping completes (Section
// 2.2, garbage collection).
func (l *Log) End() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Checkpoint returns the LSN of the last checkpoint record, 0 if none.
func (l *Log) Checkpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckpt
}

// SetCheckpoint durably records lsn as the checkpoint pointer in the control
// file. The checkpoint record itself must already be flushed.
func (l *Log) SetCheckpoint(lsn LSN) error {
	if err := l.FlushTo(lsn); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.fail != nil {
		return l.failedErrLocked()
	}
	if err := l.writeCtlSlot(l.ctlGen+1, lsn, !l.NoSync); err != nil {
		return err
	}
	if !l.NoSync {
		l.syncs++
	}
	l.ctlGen++
	l.ckpt = lsn
	return nil
}

// TruncateBefore deletes segments every record of which lies below bound —
// checkpoint-driven log reclamation, and the engine's escape hatch from a
// full disk. The caller guarantees bound is at or below the recovery scan
// floor (RedoScanStart and the oldest undo chain of any live transaction);
// as defense in depth the bound is additionally clamped to the checkpoint
// pointer. The active segment is never deleted.
func (l *Log) TruncateBefore(bound LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.ckpt != 0 && bound > l.ckpt {
		bound = l.ckpt
	}
	for len(l.segs) >= 2 && l.segs[1].start <= bound {
		seg := l.segs[0]
		if err := l.fsys.Remove(seg.path); err != nil {
			obs.IOError("remove", vfs.ErrClass(err))
			return fmt.Errorf("wal: remove %s: %w", seg.path, err)
		}
		seg.f.Close()
		l.segs = l.segs[1:]
	}
	obsSegments.Set(int64(len(l.segs)))
	return nil
}

// SegmentCount returns the number of live segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// FirstRetained returns the LSN of the oldest record still on disk (records
// below it were reclaimed by TruncateBefore).
func (l *Log) FirstRetained() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return FirstLSN
	}
	return l.segs[0].start
}

// ReadAt reads the single record at lsn. Pending appends are flushed first
// so undo can read what it just wrote.
func (l *Log) ReadAt(lsn LSN) (*Record, error) {
	l.mu.Lock()
	pending := len(l.buf) > 0
	l.mu.Unlock()
	if pending {
		if err := l.Flush(); err != nil {
			return nil, err
		}
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	end := l.end
	first := l.segs[0].start
	var seg *segment
	if lsn >= first && lsn < end {
		seg = l.segs[segIndex(l.segs, lsn)]
	}
	l.mu.Unlock()
	if lsn < FirstLSN || lsn >= end {
		return nil, fmt.Errorf("wal: LSN %d out of range [%d,%d)", lsn, FirstLSN, end)
	}
	if seg == nil {
		return nil, fmt.Errorf("wal: LSN %d below first retained record %d", lsn, first)
	}
	phys := segHeaderLen + int64(lsn-seg.start)
	var hdr [4]byte
	if _, err := seg.f.ReadAt(hdr[:], phys); err != nil {
		obs.IOError("read", vfs.ErrClass(err))
		return nil, fmt.Errorf("wal: read at %d: %w", lsn, err)
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total < recHeaderLen || total > MaxRecordLen {
		return nil, fmt.Errorf("%w: at %d", ErrCorruptRecord, lsn)
	}
	buf := make([]byte, total)
	if _, err := seg.f.ReadAt(buf, phys); err != nil {
		obs.IOError("read", vfs.ErrClass(err))
		return nil, fmt.Errorf("wal: read at %d: %w", lsn, err)
	}
	r, _, err := decodeRecord(buf)
	if err != nil {
		return nil, err
	}
	r.LSN = lsn
	return r, nil
}

// Scan calls fn for every record from lsn (inclusive) to the end of the log,
// in order. Pending appends are flushed first; a from below the first
// retained record is clamped to it. fn returning an error stops the scan and
// returns that error.
func (l *Log) Scan(from LSN, fn func(*Record) error) error {
	l.mu.Lock()
	pending := len(l.buf) > 0
	l.mu.Unlock()
	if pending {
		if err := l.Flush(); err != nil {
			return err
		}
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	end := l.end
	segs := l.segs
	l.mu.Unlock()
	if from == 0 || from < FirstLSN {
		from = FirstLSN
	}
	if first := segs[0].start; from < first {
		from = first
	}
	if from >= end {
		return nil
	}
	for i := segIndex(segs, from); i < len(segs); i++ {
		seg := segs[i]
		lo := from
		if seg.start > lo {
			lo = seg.start
		}
		hi := end
		if i+1 < len(segs) && segs[i+1].start < hi {
			hi = segs[i+1].start
		}
		if lo >= hi {
			continue
		}
		data, err := io.ReadAll(io.NewSectionReader(seg.f, segHeaderLen+int64(lo-seg.start), int64(hi-lo)))
		if err != nil {
			obs.IOError("read", vfs.ErrClass(err))
			return fmt.Errorf("wal: scan read %s: %w", seg.path, err)
		}
		off := 0
		for off < len(data) {
			r, n, err := decodeRecord(data[off:])
			if err != nil {
				return fmt.Errorf("wal: scan at %d: %w", lo+LSN(off), err)
			}
			r.LSN = lo + LSN(off)
			if err := fn(r); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// Stats returns append and fsync counters.
func (l *Log) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// Size returns the logical log size in bytes — everything ever appended,
// pending appends included, truncated segments still counted (LSNs are
// cumulative offsets).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.end)
}

// CloseNoFlush closes the log files abruptly, discarding buffered appends —
// it simulates a process crash for recovery testing. Records already flushed
// (every committed transaction's) remain on disk.
func (l *Log) CloseNoFlush() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	for _, seg := range l.segs {
		if cerr := seg.f.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := l.ctl.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	l.gcMu.Lock()
	if l.gcCond != nil {
		l.gcRound++
		l.gcCond.Broadcast()
	}
	l.gcMu.Unlock()
	return err
}

// Close flushes and closes the log. A log in the failed state skips the
// flush — its buffered records can no longer be made trustworthy — and just
// releases the files.
func (l *Log) Close() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if l.fail == nil && len(l.buf) > 0 {
		touched, werr := writeRange(l.segs, l.buf, l.bufStart)
		if werr != nil {
			err = werr
		} else {
			l.bufStart += LSN(len(l.buf))
			l.buf = nil
			if !l.NoSync {
				for _, seg := range touched {
					if serr := seg.f.Sync(); serr != nil {
						err = fmt.Errorf("wal: sync %s: %w", seg.path, serr)
						break
					}
					l.syncs++
				}
			}
			if err == nil {
				l.flushed = l.bufStart
			}
		}
	}
	for _, seg := range l.segs {
		if cerr := seg.f.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := l.ctl.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	l.mu.Unlock()
	// Wake any group-commit followers so they observe closed and return.
	l.gcMu.Lock()
	if l.gcCond != nil {
		l.gcRound++
		l.gcCond.Broadcast()
	}
	l.gcMu.Unlock()
	return err
}
