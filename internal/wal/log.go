package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"immortaldb/internal/storage/vfs"
)

// fileHeaderLen is the log file header: magic(8) checkpointLSN(8).
const fileHeaderLen = 16

const logMagic = 0x494d4d57414c0a01 // "IMMWAL\n" + version

// FirstLSN is the LSN of the first record in a log file.
const FirstLSN = LSN(fileHeaderLen)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is the write-ahead log file. Appends are buffered in memory until
// Flush; FlushedLSN tells the buffer pool how far the log is durable (the
// WAL protocol: a page may be written only when the log covering its changes
// has been flushed).
type Log struct {
	mu       sync.Mutex
	f        vfs.File
	buf      []byte // pending appended bytes
	bufStart LSN    // file offset of buf[0]
	end      LSN    // next append position
	flushed  LSN    // durable up to here (exclusive)
	ckpt     LSN    // last checkpoint record, 0 if none
	closed   bool
	// NoSync skips fsync on Flush; used by benchmarks where the paper's
	// workload measures CPU and buffer behaviour rather than disk latency.
	NoSync bool

	appends uint64
	syncs   uint64
}

// Open opens or creates the log at path on the real filesystem. On open it
// scans for the last valid record, truncating any torn tail left by a crash.
func Open(path string) (*Log, error) {
	return OpenFS(vfs.OS(), path)
}

// OpenFS is Open on an arbitrary filesystem — vfs.OS for production,
// vfs.SimFS for crash testing.
func OpenFS(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: size: %w", err)
	}
	if size == 0 {
		var hdr [fileHeaderLen]byte
		binary.BigEndian.PutUint64(hdr[0:], logMagic)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: init header: %w", err)
		}
		// Make the header durable now: it is written exactly once, and a
		// later Flush with NoSync set must not leave it at risk.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync header: %w", err)
		}
		l.end = FirstLSN
		l.bufStart = l.end
		l.flushed = l.end
		return l, nil
	}
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, fileHeaderLen), hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read header: %w", err)
	}
	if binary.BigEndian.Uint64(hdr[0:]) != logMagic {
		f.Close()
		return nil, fmt.Errorf("wal: %s is not a log file", path)
	}
	l.ckpt = LSN(binary.BigEndian.Uint64(hdr[8:]))

	// Scan forward to the last valid record.
	data, err := io.ReadAll(io.NewSectionReader(f, fileHeaderLen, size-fileHeaderLen))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read log: %w", err)
	}
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			break // torn tail
		}
		off += n
	}
	l.end = FirstLSN + LSN(off)
	if err := f.Truncate(int64(l.end)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if l.ckpt >= l.end {
		l.ckpt = 0 // checkpoint pointer beyond the valid log: ignore it
	}
	l.bufStart = l.end
	l.flushed = l.end
	return l, nil
}

// Append adds r to the log buffer and returns its LSN. The record is not
// durable until Flush (or FlushTo past it).
func (l *Log) Append(r *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.end
	r.LSN = lsn
	l.buf = r.encode(l.buf)
	l.end += LSN(r.encodedLen())
	l.appends++
	return lsn, nil
}

// Flush writes all buffered records and makes them durable (unless NoSync).
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if l.closed {
		return ErrClosed
	}
	if len(l.buf) > 0 {
		if _, err := l.f.WriteAt(l.buf, int64(l.bufStart)); err != nil {
			return fmt.Errorf("wal: write: %w", err)
		}
		l.bufStart += LSN(len(l.buf))
		l.buf = l.buf[:0]
	}
	if !l.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.syncs++
	}
	l.flushed = l.bufStart
	return nil
}

// FlushTo ensures the record at lsn (and everything before it) is durable.
// It is the buffer pool's write-ahead check. flushed always sits on a record
// boundary, so the record at lsn is durable exactly when lsn < flushed: a
// record appended immediately after a flush starts AT the flushed offset and
// is still entirely in the buffer — lsn == flushed means not yet written.
func (l *Log) FlushTo(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn < l.flushed {
		return nil
	}
	return l.flushLocked()
}

// FlushedLSN returns the durable prefix end.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// End returns the LSN one past the last appended record — the "end of log"
// the VTT snapshots when a transaction's timestamping completes (Section
// 2.2, garbage collection).
func (l *Log) End() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Checkpoint returns the LSN of the last checkpoint record, 0 if none.
func (l *Log) Checkpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckpt
}

// SetCheckpoint durably records lsn as the checkpoint pointer in the file
// header. The checkpoint record itself must already be flushed.
func (l *Log) SetCheckpoint(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if lsn >= l.flushed {
		if err := l.flushLocked(); err != nil {
			return err
		}
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(lsn))
	if _, err := l.f.WriteAt(b[:], 8); err != nil {
		return fmt.Errorf("wal: write checkpoint pointer: %w", err)
	}
	if !l.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync checkpoint pointer: %w", err)
		}
		l.syncs++
	}
	l.ckpt = lsn
	return nil
}

// ReadAt reads the single record at lsn. Pending appends are flushed first
// so undo can read what it just wrote.
func (l *Log) ReadAt(lsn LSN) (*Record, error) {
	l.mu.Lock()
	if len(l.buf) > 0 {
		if err := l.flushLocked(); err != nil {
			l.mu.Unlock()
			return nil, err
		}
	}
	end := l.end
	l.mu.Unlock()
	if lsn < FirstLSN || lsn >= end {
		return nil, fmt.Errorf("wal: LSN %d out of range [%d,%d)", lsn, FirstLSN, end)
	}
	var hdr [4]byte
	if _, err := l.f.ReadAt(hdr[:], int64(lsn)); err != nil {
		return nil, fmt.Errorf("wal: read at %d: %w", lsn, err)
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total < recHeaderLen || total > MaxRecordLen {
		return nil, fmt.Errorf("%w: at %d", ErrCorruptRecord, lsn)
	}
	buf := make([]byte, total)
	if _, err := l.f.ReadAt(buf, int64(lsn)); err != nil {
		return nil, fmt.Errorf("wal: read at %d: %w", lsn, err)
	}
	r, _, err := decodeRecord(buf)
	if err != nil {
		return nil, err
	}
	r.LSN = lsn
	return r, nil
}

// Scan calls fn for every record from lsn (inclusive) to the end of the log,
// in order. Pending appends are flushed first. fn returning an error stops
// the scan and returns that error.
func (l *Log) Scan(from LSN, fn func(*Record) error) error {
	l.mu.Lock()
	if len(l.buf) > 0 {
		if err := l.flushLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	end := l.end
	l.mu.Unlock()
	if from == 0 || from < FirstLSN {
		from = FirstLSN
	}
	if from >= end {
		return nil
	}
	data, err := io.ReadAll(io.NewSectionReader(l.f, int64(from), int64(end-from)))
	if err != nil {
		return fmt.Errorf("wal: scan read: %w", err)
	}
	off := 0
	for off < len(data) {
		r, n, err := decodeRecord(data[off:])
		if err != nil {
			return fmt.Errorf("wal: scan at %d: %w", from+LSN(off), err)
		}
		r.LSN = from + LSN(off)
		if err := fn(r); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Stats returns append and fsync counters.
func (l *Log) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// Size returns the current log size in bytes, pending appends included.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.end)
}

// CloseNoFlush closes the log file abruptly, discarding buffered appends —
// it simulates a process crash for recovery testing. Records already flushed
// (every committed transaction's) remain on disk.
func (l *Log) CloseNoFlush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.flushLocked()
	if !l.NoSync {
		if err2 := l.f.Sync(); err == nil {
			err = err2
		}
	}
	if err2 := l.f.Close(); err == nil {
		err = err2
	}
	l.closed = true
	return err
}
