package wal

// Fuzzing the record decoder: arbitrary bytes — including the torn tails and
// coin-flipped sectors the crash matrix produces — must yield a record or
// ErrCorruptRecord, never a panic or an out-of-bounds read.

import (
	"bytes"
	"testing"

	"immortaldb/internal/itime"
)

// fuzzSeeds encodes one record of every type, giving the fuzzer valid
// starting points whose mutations explore each payload parser.
func fuzzSeeds() [][]byte {
	ts := itime.Timestamp{Wall: 1<<40 + 12345, Seq: 7}
	records := []*Record{
		{Type: TypeInsertVersion, TID: 3, PrevLSN: 40, Table: 1, Page: 9,
			Key: []byte("k1"), Value: []byte("hello"), Stub: false},
		{Type: TypeInsertVersion, TID: 3, PrevLSN: 41, Table: 1, Page: 9,
			Key: []byte("k1"), Value: nil, Stub: true, Old: []byte("prev"), OldStub: false},
		{Type: TypeCLR, TID: 3, PrevLSN: 42, Table: 1, Page: 9,
			Key: []byte("k1"), Undo: 17, Restore: true, Value: []byte("old")},
		{Type: TypeCommit, TID: 3, PrevLSN: 43, TS: ts, HasTT: true},
		{Type: TypeAbort, TID: 4, PrevLSN: 44},
		{Type: TypePageImage, Page: 12, Img: bytes.Repeat([]byte{0xAB}, 64)},
		{Type: TypeCheckpoint, Blob: []byte("ckpt-blob")},
		{Type: TypeCatalog, Blob: []byte("catalog-blob")},
		{Type: TypeFreePage, Page: 31},
		{Type: TypeStamp, TID: 5, Table: 1, Page: 9, Key: []byte("k2"), TS: ts},
		{Type: TypeSMO, Images: []PageImg{
			{Page: 13, Img: bytes.Repeat([]byte{0xCD}, 32)},
			{Page: 14, Img: bytes.Repeat([]byte{0xEF}, 16)},
		}, Blob: []byte("catalog-after-root-move")},
		{Type: TypeHistRun, Table: 2, Page: 5, Blob: bytes.Repeat([]byte{0x5A}, 48)},
		{Type: TypeHistManifest, Table: 2, Blob: bytes.Repeat([]byte{0x3C}, 40)},
	}
	out := make([][]byte, 0, len(records))
	for _, r := range records {
		out = append(out, r.encode(nil))
	}
	return out
}

// FuzzSegmentHeader drives the segment-header decoder with arbitrary bytes:
// rotation crashes leave torn headers on disk, and open must classify them
// as ErrBadSegment — never panic, never accept a corrupted header.
func FuzzSegmentHeader(f *testing.F) {
	f.Add(encodeSegHeader(1, FirstLSN))
	f.Add(encodeSegHeader(42, 1<<30))
	f.Add(encodeSegHeader(^uint64(0), LSN(^uint64(0)>>1)))
	// Broken seeds: empty, short, zeroed, magic-only, flipped CRC.
	f.Add([]byte{})
	f.Add(make([]byte, segHeaderLen-1))
	f.Add(make([]byte, segHeaderLen))
	bad := encodeSegHeader(3, 4096)
	bad[segHeaderLen-5] ^= 0x01
	f.Add(bad)

	f.Fuzz(func(t *testing.T, b []byte) {
		seq, start, err := decodeSegHeader(b)
		if err != nil {
			return // rejected input; the only requirement is not panicking
		}
		if seq == 0 || start < FirstLSN {
			t.Fatalf("decode accepted invalid header: seq=%d start=%d", seq, start)
		}
		// A valid header must round-trip bit-exactly through the encoder —
		// up to the CRC; the trailing pad bytes are not covered by it.
		if got := encodeSegHeader(seq, start); !bytes.Equal(got[:28], b[:28]) {
			t.Fatalf("round trip changed header:\n  in:  %x\n  out: %x", b[:28], got[:28])
		}
	})
}

func FuzzWALRecordDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	// Structurally broken seeds: truncated header, huge length, bad CRC.
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1})
	f.Add(make([]byte, recHeaderLen))

	f.Fuzz(func(t *testing.T, b []byte) {
		r, n, err := decodeRecord(b)
		if err != nil {
			return // rejected input; the only requirement is not panicking
		}
		if n < recHeaderLen || n > len(b) {
			t.Fatalf("decode accepted %d bytes but reported length %d", len(b), n)
		}
		// A decoded record must survive an encode/decode round trip with its
		// logical content intact (encode may drop slack bytes the original
		// carried inside its declared length).
		r2, _, err := decodeRecord(r.encode(nil))
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v (orig %+v)", err, r)
		}
		if r2.Type != r.Type || r2.TID != r.TID || r2.PrevLSN != r.PrevLSN ||
			r2.Table != r.Table || r2.Page != r.Page || r2.TS != r.TS ||
			!bytes.Equal(r2.Key, r.Key) || !bytes.Equal(r2.Value, r.Value) ||
			!bytes.Equal(r2.Img, r.Img) || !bytes.Equal(r2.Blob, r.Blob) {
			t.Fatalf("round trip changed record:\n  first:  %+v\n  second: %+v", r, r2)
		}
	})
}
