package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/vfs"
)

// fillRecord is a ~60-byte record for driving rotation with few appends.
func fillRecord(tid uint64) *Record {
	return &Record{Type: TypeInsertVersion, TID: itime.TID(tid), Table: 1, Page: 3,
		Key: []byte("key"), Value: []byte("value-payload-for-rotation-tests")}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.SegmentSize = 256
	var lsns []LSN
	for i := 0; i < 40; i++ {
		lsn, err := l.Append(fillRecord(uint64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := l.SegmentCount(); n < 3 {
		t.Fatalf("segments = %d, want several with 256-byte capacity", n)
	}
	// Every record must be readable across segment boundaries.
	for i, lsn := range lsns {
		r, err := l.ReadAt(lsn)
		if err != nil {
			t.Fatalf("ReadAt(%d): %v", lsn, err)
		}
		if r.TID != itime.TID(i+1) {
			t.Fatalf("ReadAt(%d).TID = %d, want %d", lsn, r.TID, i+1)
		}
	}
	end := l.End()
	segs := l.SegmentCount()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != end {
		t.Fatalf("end after reopen = %d, want %d", l2.End(), end)
	}
	if l2.SegmentCount() != segs {
		t.Fatalf("segments after reopen = %d, want %d", l2.SegmentCount(), segs)
	}
	var got []LSN
	if err := l2.Scan(0, func(r *Record) error { got = append(got, r.LSN); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lsns) {
		t.Fatalf("scanned %d records, want %d", len(got), len(lsns))
	}
	for i := range got {
		if got[i] != lsns[i] {
			t.Fatalf("scan LSN[%d] = %d, want %d", i, got[i], lsns[i])
		}
	}
}

func TestTornTailInSealedSegmentDropsLaterSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.SegmentSize = 256
	for i := 0; i < 40; i++ {
		l.Append(fillRecord(uint64(i + 1)))
	}
	l.Flush()
	if l.SegmentCount() < 3 {
		t.Fatalf("segments = %d, want several", l.SegmentCount())
	}
	l.Close()

	// Tear a hole in segment 2: everything from the hole on must go, later
	// segments included (their records were never ack-able before segment
	// 2's sync).
	seg2 := segPath(path, 2)
	st, err := os.Stat(seg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg2, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if n := l2.SegmentCount(); n != 2 {
		t.Fatalf("segments after hole = %d, want 2", n)
	}
	if _, err := os.Stat(segPath(path, 3)); !os.IsNotExist(err) {
		t.Fatalf("segment 3 should have been removed, stat err = %v", err)
	}
	// The survivors must still scan cleanly and the log must accept appends.
	n := 0
	if err := l2.Scan(0, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records survived")
	}
	if _, err := l2.Append(fillRecord(99)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateBeforeReclaimsSegments(t *testing.T) {
	fs := vfs.NewSim(1)
	l, err := OpenFS(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SegmentSize = 256
	for i := 0; i < 40; i++ {
		l.Append(fillRecord(uint64(i + 1)))
	}
	l.Flush()
	before := l.SegmentCount()
	if before < 3 {
		t.Fatalf("segments = %d, want several", before)
	}
	// A checkpoint near the end lets everything below it go.
	ckptLSN, _ := l.Append(&Record{Type: TypeCheckpoint, Blob: []byte("ck")})
	if err := l.SetCheckpoint(ckptLSN); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(ckptLSN); err != nil {
		t.Fatal(err)
	}
	after := l.SegmentCount()
	if after >= before {
		t.Fatalf("segments %d -> %d, want fewer", before, after)
	}
	first := l.FirstRetained()
	if first <= FirstLSN {
		t.Fatalf("first retained = %d, want > %d", first, FirstLSN)
	}
	// The files are really gone.
	names, err := fs.List("wal.log.")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != after {
		t.Fatalf("files on disk = %d, segments = %d", len(names), after)
	}
	// Reads below the boundary fail loudly; scans clamp to it.
	if _, err := l.ReadAt(FirstLSN); err == nil {
		t.Fatal("ReadAt below first retained should fail")
	}
	n := 0
	if err := l.Scan(0, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("scan after truncation returned nothing")
	}
	// The checkpoint segment itself must survive.
	if _, err := l.ReadAt(ckptLSN); err != nil {
		t.Fatalf("checkpoint record lost: %v", err)
	}

	// And the truncated log must reopen cleanly.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFS(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.FirstRetained() != first {
		t.Fatalf("first retained after reopen = %d, want %d", l2.FirstRetained(), first)
	}
	if l2.Checkpoint() != ckptLSN {
		t.Fatalf("checkpoint after reopen = %d, want %d", l2.Checkpoint(), ckptLSN)
	}
}

func TestRotationENOSPCFailsCleanly(t *testing.T) {
	fs := vfs.NewSim(1)
	fs.SetCapacity(2048)
	l, err := OpenFS(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SegmentSize = 512
	var lastErr error
	appended := 0
	for i := 0; i < 200; i++ {
		if _, err := l.Append(fillRecord(uint64(i + 1))); err != nil {
			lastErr = err
			break
		}
		appended++
	}
	if lastErr == nil {
		t.Fatal("append never hit the capacity limit")
	}
	if !vfs.IsNoSpace(lastErr) {
		t.Fatalf("rotation failure class = %q (%v), want enospc", vfs.ErrClass(lastErr), lastErr)
	}
	// A clean refusal: nothing was assigned an LSN, the log is not failed,
	// and everything appended before the wall is still flushable.
	if ferr := l.Failed(); ferr != nil {
		t.Fatalf("clean ENOSPC rotation latched the log failed: %v", ferr)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := l.Scan(0, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != appended {
		t.Fatalf("scan found %d records, want %d", n, appended)
	}
}

func TestSyncFailureLatchesLogFailed(t *testing.T) {
	fs := vfs.NewSim(1)
	l, err := OpenFS(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(fillRecord(1)); err != nil {
		t.Fatal(err)
	}
	fs.InjectFault(vfs.Fault{Op: vfs.OpSync, File: "wal.log.", Count: 1})
	if err := l.Flush(); err == nil {
		t.Fatal("flush with failing fsync should error")
	}
	// The fault has cleared (Count: 1) but the log must stay failed: the
	// dropped dirty pages mean a later clean fsync proves nothing.
	if _, err := l.Append(fillRecord(2)); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after failed fsync = %v, want ErrFailed", err)
	}
	if err := l.Flush(); !errors.Is(err, ErrFailed) {
		t.Fatalf("flush after failed fsync = %v, want ErrFailed", err)
	}
	if err := l.SyncTo(FirstLSN); !errors.Is(err, ErrFailed) {
		t.Fatalf("SyncTo after failed fsync = %v, want ErrFailed", err)
	}
	if got := l.FlushedLSN(); got != FirstLSN {
		t.Fatalf("flushed advanced to %d past a failed fsync", got)
	}
}

func TestCtlSlotFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := l.Append(&Record{Type: TypeCheckpoint, Blob: []byte("ck")})
	if err := l.SetCheckpoint(lsn); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the slot that write landed in (gen 2 -> slot 1): the reopen must
	// fall back to the gen-1 slot rather than trusting garbage.
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, ctlSlotStride+8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Checkpoint(); got != 0 {
		t.Fatalf("checkpoint after torn slot = %d, want 0 (gen-1 fallback)", got)
	}
	// The records themselves are intact.
	if _, err := l2.ReadAt(lsn); err != nil {
		t.Fatalf("record lost with torn ctl slot: %v", err)
	}
}

func TestTornSegmentHeaderDroppedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.SegmentSize = 256
	for i := 0; i < 12; i++ {
		l.Append(fillRecord(uint64(i + 1)))
	}
	l.Flush()
	segs := l.SegmentCount()
	if segs < 2 {
		t.Fatalf("segments = %d, want >= 2", segs)
	}
	end := l.End()
	l.Close()

	// A crash during rotation leaves a segment whose header never became
	// durable. Fake one past the end: reopen must delete it and keep the
	// valid prefix.
	junk := segPath(path, uint64(segs+1))
	if err := os.WriteFile(junk, []byte("not a segment header at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Fatalf("torn-header segment not removed, stat err = %v", err)
	}
	if l2.End() != end {
		t.Fatalf("end = %d, want %d", l2.End(), end)
	}
}

func TestSegHeaderRoundTrip(t *testing.T) {
	b := encodeSegHeader(7, 12345)
	seq, start, err := decodeSegHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || start != 12345 {
		t.Fatalf("round trip = (%d, %d)", seq, start)
	}
	b[9] ^= 0x40
	if _, _, err := decodeSegHeader(b); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("corrupt header err = %v, want ErrBadSegment", err)
	}
	if _, _, err := decodeSegHeader(b[:10]); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("short header err = %v, want ErrBadSegment", err)
	}
}

func TestParseSegPath(t *testing.T) {
	base := "dir/wal.log"
	for seq, want := range map[string]uint64{
		segPath(base, 1):        1,
		segPath(base, 12345678): 12345678,
		base + ".0000001":       0, // 7 digits
		base + ".000000001":     0, // 9 digits
		base + ".0000000x":      0,
		base + ".00000000":      0, // seq zero is invalid
		base + "00000001":       0, // missing dot
		"other.00000001":        0,
	} {
		got, ok := parseSegPath(base, seq)
		if want == 0 && ok {
			t.Fatalf("parseSegPath(%q) accepted (seq %d)", seq, got)
		}
		if want != 0 && (!ok || got != want) {
			t.Fatalf("parseSegPath(%q) = (%d, %v), want %d", seq, got, ok, want)
		}
	}
	if p := segPath(base, 42); p != base+".00000042" {
		t.Fatalf("segPath = %q", p)
	}
}
