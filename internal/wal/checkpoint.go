package wal

import (
	"encoding/binary"
	"fmt"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// TxnState is one active-transaction-table entry in a checkpoint.
type TxnState struct {
	TID     itime.TID
	LastLSN LSN
}

// DirtyPage is one dirty-page-table entry in a checkpoint: the page and the
// LSN of the first record that dirtied it since its last write to disk.
type DirtyPage struct {
	ID     page.ID
	RecLSN LSN
}

// Checkpoint is the payload of a TypeCheckpoint record: a fuzzy (non-
// quiescing) snapshot of recovery state, ARIES-style.
type Checkpoint struct {
	ActiveTxns []TxnState
	DirtyPages []DirtyPage
	// NextTID and LastTS restore the allocators after recovery so new
	// transactions never reuse a TID or produce a non-increasing timestamp.
	NextTID itime.TID
	LastTS  itime.Timestamp
	// BeginLSN is the end-of-log position at the instant ActiveTxns was
	// snapshotted — the moral equivalent of ARIES's begin_checkpoint record.
	// The checkpoint is fuzzy: transactions keep beginning, committing,
	// aborting, and writing between the snapshot and the checkpoint record
	// itself, so records of both listed transactions (their commits, CLRs,
	// updates past the snapshotted LastLSN) and transactions born inside the
	// window land in [BeginLSN, ckptLSN). The analysis scan must start no
	// later than BeginLSN — even when ActiveTxns is empty — or it would miss
	// them: undoing a committed transaction, losing a window-born one's
	// updates to redo, or never undoing it at all.
	BeginLSN LSN
	// Epoch is the promotion epoch at checkpoint time. Recovery restores it
	// from here so the epoch survives once checkpoints move the redo scan
	// start past the promote record that set it; a newer promote record
	// inside the scan window then overrides. Encoded as an optional trailing
	// field — blobs written before epochs existed decode as epoch 0.
	Epoch uint64
}

// RedoScanStart returns the LSN at which redo must begin for this
// checkpoint: the minimum dirty-page RecLSN, or ckptLSN when no page is
// dirty. Movement of this point is also what licenses PTT garbage
// collection (Section 2.2): once it passes the end-of-log LSN recorded when
// a transaction's timestamping completed, the stamped pages are on disk.
func (c *Checkpoint) RedoScanStart(ckptLSN LSN) LSN {
	start := ckptLSN
	// The scan must reach back to BeginLSN even when the ATT snapshot is
	// empty: a transaction that BEGINS inside the fuzzy window appends
	// records in [BeginLSN, ckptLSN) without being listed, and a page it
	// dirties after the DPT snapshot appears in no DirtyPages entry either.
	// Only the scan window covers such a transaction — starting at the
	// checkpoint record would lose its updates to redo and hide it from
	// analysis entirely.
	if c.BeginLSN != 0 && c.BeginLSN < start {
		start = c.BeginLSN
	}
	for _, dp := range c.DirtyPages {
		if dp.RecLSN < start {
			start = dp.RecLSN
		}
	}
	return start
}

// Marshal encodes the checkpoint for a record blob.
func (c *Checkpoint) Marshal() []byte {
	n := 8 + itime.EncodedLen + 8 + 4 + len(c.ActiveTxns)*16 + 4 + len(c.DirtyPages)*16 + 8
	b := make([]byte, n)
	off := 0
	binary.BigEndian.PutUint64(b[off:], uint64(c.NextTID))
	off += 8
	c.LastTS.Encode(b[off:])
	off += itime.EncodedLen
	binary.BigEndian.PutUint64(b[off:], uint64(c.BeginLSN))
	off += 8
	binary.BigEndian.PutUint32(b[off:], uint32(len(c.ActiveTxns)))
	off += 4
	for _, t := range c.ActiveTxns {
		binary.BigEndian.PutUint64(b[off:], uint64(t.TID))
		binary.BigEndian.PutUint64(b[off+8:], uint64(t.LastLSN))
		off += 16
	}
	binary.BigEndian.PutUint32(b[off:], uint32(len(c.DirtyPages)))
	off += 4
	for _, d := range c.DirtyPages {
		binary.BigEndian.PutUint64(b[off:], uint64(d.ID))
		binary.BigEndian.PutUint64(b[off+8:], uint64(d.RecLSN))
		off += 16
	}
	binary.BigEndian.PutUint64(b[off:], c.Epoch)
	return b
}

// UnmarshalCheckpoint decodes a checkpoint record blob.
func UnmarshalCheckpoint(b []byte) (*Checkpoint, error) {
	bad := fmt.Errorf("%w: checkpoint blob", ErrCorruptRecord)
	if len(b) < 8+itime.EncodedLen+8+4 {
		return nil, bad
	}
	c := &Checkpoint{}
	off := 0
	c.NextTID = itime.TID(binary.BigEndian.Uint64(b[off:]))
	off += 8
	c.LastTS = itime.DecodeTimestamp(b[off:])
	off += itime.EncodedLen
	c.BeginLSN = LSN(binary.BigEndian.Uint64(b[off:]))
	off += 8
	na := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if len(b) < off+na*16+4 {
		return nil, bad
	}
	c.ActiveTxns = make([]TxnState, na)
	for i := range c.ActiveTxns {
		c.ActiveTxns[i].TID = itime.TID(binary.BigEndian.Uint64(b[off:]))
		c.ActiveTxns[i].LastLSN = LSN(binary.BigEndian.Uint64(b[off+8:]))
		off += 16
	}
	nd := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if len(b) < off+nd*16 {
		return nil, bad
	}
	c.DirtyPages = make([]DirtyPage, nd)
	for i := range c.DirtyPages {
		c.DirtyPages[i].ID = page.ID(binary.BigEndian.Uint64(b[off:]))
		c.DirtyPages[i].RecLSN = LSN(binary.BigEndian.Uint64(b[off+8:]))
		off += 16
	}
	if len(b) >= off+8 {
		c.Epoch = binary.BigEndian.Uint64(b[off:])
	}
	return c, nil
}
