package wal

// The log is stored as a sequence of rotated segment files plus one small
// control file:
//
//	wal.log            control file: two generation-stamped checkpoint slots
//	wal.log.00000001   segment 1: header + records
//	wal.log.00000002   segment 2: header + records
//	...
//
// LSNs are logical byte offsets in the unbroken record stream, exactly as in
// the single-file layout (FirstLSN is still 16): segment seq covers
// [start, nextStart) and a record at lsn lives at file offset
// segHeaderLen + (lsn - start) of its segment. Records never span segments —
// rotation happens before an LSN is assigned — so a record is always one
// contiguous read. Checkpoint-driven truncation deletes whole dead segments
// from the front, which is how the engine gives space back to a full disk.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"immortaldb/internal/storage/vfs"
)

// segMagic identifies a segment file ("IMMSEG\n" + format version).
const segMagic = 0x494d4d5345470a01

// segHeaderLen is the segment header: magic(8) seq(8) startLSN(8) crc(4)
// pad(4). The CRC covers the first 24 bytes, so a torn header — a crash
// during rotation — is detected and the segment discarded, which is safe
// because nothing in a segment can be acked before its header is durable.
const segHeaderLen = 32

// ctlMagic identifies the control file ("IMMWAL\n" + version 2; version 1
// was the single-file layout, refused on open with a clear error).
const ctlMagic = 0x494d4d57414c0a02

// Control file geometry: two slots in separate sectors, written alternately
// by generation, each magic(8) gen(8) checkpointLSN(8) crc(4). A torn write
// can destroy at most the slot being written; the other still names a valid
// checkpoint whose segments are all retained (truncation only runs after the
// new slot is durable).
const (
	ctlSlotLen    = 28
	ctlSlotStride = 512
)

// ErrBadSegment reports a segment file whose header fails validation.
var ErrBadSegment = errors.New("wal: bad segment header")

var segCRC = crc32.MakeTable(crc32.Castagnoli)

// segment is one log segment file. start is the LSN of its first record; the
// data of a sealed segment runs exactly to the next segment's start.
type segment struct {
	seq   uint64
	start LSN
	f     vfs.File
	path  string
	// prealloc records that the file has been extended to full capacity, so
	// record writes within it cannot hit ENOSPC.
	prealloc bool
	// dirty marks bytes ingested by a replica copy (IngestChunk) that have
	// not yet been fsynced by SyncIngested.
	dirty bool
}

func encodeSegHeader(seq uint64, start LSN) []byte {
	b := make([]byte, segHeaderLen)
	binary.BigEndian.PutUint64(b[0:], segMagic)
	binary.BigEndian.PutUint64(b[8:], seq)
	binary.BigEndian.PutUint64(b[16:], uint64(start))
	binary.BigEndian.PutUint32(b[24:], crc32.Checksum(b[:24], segCRC))
	return b
}

// decodeSegHeader validates a segment header. It must never panic on
// arbitrary input (fuzzed: FuzzSegmentHeader).
func decodeSegHeader(b []byte) (seq uint64, start LSN, err error) {
	if len(b) < segHeaderLen {
		return 0, 0, fmt.Errorf("%w: %d bytes, want %d", ErrBadSegment, len(b), segHeaderLen)
	}
	if got, want := crc32.Checksum(b[:24], segCRC), binary.BigEndian.Uint32(b[24:28]); got != want {
		return 0, 0, fmt.Errorf("%w: crc %08x != %08x", ErrBadSegment, got, want)
	}
	if m := binary.BigEndian.Uint64(b[0:]); m != segMagic {
		return 0, 0, fmt.Errorf("%w: magic %016x", ErrBadSegment, m)
	}
	seq = binary.BigEndian.Uint64(b[8:])
	start = LSN(binary.BigEndian.Uint64(b[16:]))
	if seq == 0 || start < FirstLSN {
		return 0, 0, fmt.Errorf("%w: seq %d start %d", ErrBadSegment, seq, start)
	}
	return seq, start, nil
}

// segPath names segment seq of the log at base.
func segPath(base string, seq uint64) string {
	return fmt.Sprintf("%s.%08d", base, seq)
}

// parseSegPath extracts the sequence number from a segment file name; ok is
// false for names that are not exactly base + "." + 8 digits (stray files
// matching the listing prefix are ignored, never deleted).
func parseSegPath(base, name string) (seq uint64, ok bool) {
	suffix, found := strings.CutPrefix(name, base+".")
	if !found || len(suffix) != 8 {
		return 0, false
	}
	n, err := strconv.ParseUint(suffix, 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

func encodeCtlSlot(gen uint64, ckpt LSN) []byte {
	b := make([]byte, ctlSlotLen)
	binary.BigEndian.PutUint64(b[0:], ctlMagic)
	binary.BigEndian.PutUint64(b[8:], gen)
	binary.BigEndian.PutUint64(b[16:], uint64(ckpt))
	binary.BigEndian.PutUint32(b[24:], crc32.Checksum(b[:24], segCRC))
	return b
}

func decodeCtlSlot(b []byte) (gen uint64, ckpt LSN, ok bool) {
	if len(b) < ctlSlotLen {
		return 0, 0, false
	}
	if crc32.Checksum(b[:24], segCRC) != binary.BigEndian.Uint32(b[24:28]) {
		return 0, 0, false
	}
	if binary.BigEndian.Uint64(b[0:]) != ctlMagic {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(b[8:]), LSN(binary.BigEndian.Uint64(b[16:])), true
}
