package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"immortaldb/internal/itime"
)

func openDurable(t *testing.T) *Log {
	t.Helper()
	l, err := Open(t.TempDir() + "/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func commitRec(tid itime.TID) *Record {
	return &Record{Type: TypeCommit, TID: tid, TS: itime.Timestamp{Wall: int64(tid), Seq: 1}}
}

// TestSyncToSerial checks SyncTo's FlushTo degeneration with group commit
// off, and its single-caller behaviour with it on.
func TestSyncToSerial(t *testing.T) {
	for _, group := range []bool{false, true} {
		t.Run(fmt.Sprintf("group=%v", group), func(t *testing.T) {
			l := openDurable(t)
			l.GroupCommit = group
			for i := 1; i <= 5; i++ {
				lsn, err := l.Append(commitRec(itime.TID(i)))
				if err != nil {
					t.Fatal(err)
				}
				if err := l.SyncTo(lsn); err != nil {
					t.Fatal(err)
				}
				if got := l.FlushedLSN(); got <= lsn {
					t.Fatalf("after SyncTo(%d): flushed=%d, record not durable", lsn, got)
				}
			}
			if _, syncs := l.Stats(); syncs != 5 {
				t.Fatalf("serial SyncTo calls: want 5 fsyncs, got %d", syncs)
			}
		})
	}
}

// TestGroupCommitShared drives many concurrent committers through SyncTo and
// checks every record became durable while some fsyncs were shared — the
// leader/follower batching. Whether two committers actually overlap inside a
// sync round is up to the scheduler (on a single-core box 400 goroutine
// commits can serialize perfectly), so the workload repeats, switching to a
// non-zero CommitEvery — the leader then waits out a window in which
// followers must pile up — if opportunistic rounds batch nothing; the
// durability checks hold on every round regardless.
func TestGroupCommitShared(t *testing.T) {
	l := openDurable(t)
	l.GroupCommit = true
	const committers, commits, rounds = 8, 50, 5
	next := itime.TID(0)
	total := 0
	for round := 0; round < rounds; round++ {
		if round == 2 {
			// Two opportunistic rounds batched nothing: force overlap.
			l.CommitEvery = 500 * time.Microsecond
		}
		var wg sync.WaitGroup
		errs := make(chan error, committers)
		for g := 0; g < committers; g++ {
			wg.Add(1)
			base := next + itime.TID(g*commits)
			go func(base itime.TID) {
				defer wg.Done()
				for i := 0; i < commits; i++ {
					lsn, err := l.Append(commitRec(base + itime.TID(i) + 1))
					if err != nil {
						errs <- err
						return
					}
					if err := l.SyncTo(lsn); err != nil {
						errs <- err
						return
					}
					if got := l.FlushedLSN(); got <= lsn {
						errs <- fmt.Errorf("SyncTo(%d) returned with flushed=%d", lsn, got)
						return
					}
				}
			}(base)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		next += itime.TID(committers * commits)
		total += committers * commits
		appends, syncs := l.Stats()
		if int(appends) != total {
			t.Fatalf("appends = %d, want %d", appends, total)
		}
		if l.GroupedSyncs() > 0 {
			t.Logf("%d commits, %d fsyncs, %d piggybacked", appends, syncs, l.GroupedSyncs())
			break
		}
		if round == rounds-1 {
			t.Errorf("group commit batched nothing: %d fsyncs for %d commits", syncs, appends)
		}
	}

	// Everything must actually be on disk in append order.
	var n int
	if err := l.Scan(FirstLSN, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("scan found %d records, want %d", n, total)
	}
}

// TestGroupCommitMaxDelay checks the CommitEvery knob: a lone committer still
// completes (the delay bounds added latency, it is not a required quorum).
func TestGroupCommitMaxDelay(t *testing.T) {
	l := openDurable(t)
	l.GroupCommit = true
	l.CommitEvery = 2 * time.Millisecond
	lsn, err := l.Append(commitRec(1))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := l.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < l.CommitEvery {
		t.Fatalf("leader flushed after %v, before the %v max-delay window", el, l.CommitEvery)
	}
	if got := l.FlushedLSN(); got <= lsn {
		t.Fatalf("record not durable after SyncTo: flushed=%d", got)
	}
}

// TestDoubleFlushOverlap is the regression test for the buffer-handoff race
// the dispatcher exposes: two flushers targeting overlapping LSN ranges must
// be idempotent (no range is written twice with different bytes, no record is
// lost) and ordered (flushed never moves past bytes not yet written). It
// hammers concurrent Append+FlushTo/Flush pairs and then verifies the log
// scans back exactly the records appended.
func TestDoubleFlushOverlap(t *testing.T) {
	l := openDurable(t)
	const flushers, rounds = 6, 80
	var wg sync.WaitGroup
	var total atomic.Uint64
	errs := make(chan error, flushers)
	for g := 0; g < flushers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				lsn, err := l.Append(commitRec(itime.TID(g*rounds + i + 1)))
				if err != nil {
					errs <- err
					return
				}
				total.Add(1)
				// Alternate full flushes and targeted ones so rounds overlap:
				// several goroutines ask for ranges covering each other.
				if i%2 == 0 {
					err = l.Flush()
				} else {
					err = l.FlushTo(lsn)
				}
				if err != nil {
					errs <- err
					return
				}
				if got := l.FlushedLSN(); got <= lsn {
					errs <- fmt.Errorf("flush returned with lsn %d not durable (flushed=%d)", lsn, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seen := make(map[itime.TID]bool)
	if err := l.Scan(FirstLSN, func(r *Record) error {
		if r.Type != TypeCommit {
			return fmt.Errorf("unexpected record type %d at %d", r.Type, r.LSN)
		}
		if seen[r.TID] {
			return fmt.Errorf("record for TID %d appears twice", r.TID)
		}
		seen[r.TID] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if uint64(len(seen)) != total.Load() {
		t.Fatalf("scan found %d records, appended %d", len(seen), total.Load())
	}
}

// TestFlushToSkipsRedundantSync checks that a FlushTo whose range was covered
// by a concurrent round does not issue its own fsync (the idempotence half of
// the double-flush audit, observable through the sync counter).
func TestFlushToSkipsRedundantSync(t *testing.T) {
	l := openDurable(t)
	lsn, err := l.Append(commitRec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	_, before := l.Stats()
	for i := 0; i < 3; i++ {
		if err := l.FlushTo(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if _, after := l.Stats(); after != before {
		t.Fatalf("covered FlushTo issued %d extra fsyncs", after-before)
	}
}
