package wal

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.NoSync = true
	t.Cleanup(func() { l.Close() })
	return l, path
}

func sampleRecords() []*Record {
	return []*Record{
		{Type: TypeInsertVersion, TID: 1, Table: 3, Page: 9, Key: []byte("k1"), Value: []byte("v1")},
		{Type: TypeInsertVersion, TID: 1, PrevLSN: 16, Table: 3, Page: 9, Key: []byte("k2"), Stub: true},
		{Type: TypeCommit, TID: 1, TS: itime.Timestamp{Wall: 77, Seq: 3}, HasTT: true},
		{Type: TypeAbort, TID: 2},
		{Type: TypeCLR, TID: 2, Table: 3, Page: 9, Key: []byte("k1"), Undo: 16},
		{Type: TypePageImage, Page: 12, Img: []byte{1, 2, 3, 4, 5}},
		{Type: TypeCheckpoint, Blob: (&Checkpoint{NextTID: 5}).Marshal()},
		{Type: TypeCatalog, Blob: []byte(`{"tables":[]}`)},
		{Type: TypeFreePage, Page: 44},
		{Type: TypeSMO, Images: []PageImg{
			{Page: 7, Img: []byte{9, 8, 7}},
			{Page: 8, Img: []byte{6, 5}},
		}, Blob: []byte("root-move")},
		{Type: TypeHistRun, Table: 3, Page: 17, Blob: []byte("run-file-bytes")},
		{Type: TypeHistManifest, Table: 3, Blob: []byte("manifest-image")},
	}
}

func TestAppendScanRoundTrip(t *testing.T) {
	l, _ := openTemp(t)
	recs := sampleRecords()
	var lsns []LSN
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if lsns[0] != FirstLSN {
		t.Fatalf("first LSN = %d", lsns[0])
	}
	var got []*Record
	if err := l.Scan(0, func(r *Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		want := *r
		want.LSN = lsns[i]
		canon(&want)
		canon(got[i])
		if !reflect.DeepEqual(&want, got[i]) {
			t.Fatalf("record %d mismatch:\n in: %+v\nout: %+v", i, &want, got[i])
		}
	}
}

// canon normalizes nil/empty slices for DeepEqual.
func canon(r *Record) {
	if len(r.Key) == 0 {
		r.Key = nil
	}
	if len(r.Value) == 0 {
		r.Value = nil
	}
	if len(r.Img) == 0 {
		r.Img = nil
	}
	if len(r.Blob) == 0 {
		r.Blob = nil
	}
	if len(r.Images) == 0 {
		r.Images = nil
	}
}

func TestReadAt(t *testing.T) {
	l, _ := openTemp(t)
	recs := sampleRecords()
	var lsns []LSN
	for _, r := range recs {
		lsn, _ := l.Append(r)
		lsns = append(lsns, lsn)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		r, err := l.ReadAt(lsns[i])
		if err != nil {
			t.Fatalf("ReadAt(%d): %v", lsns[i], err)
		}
		if r.Type != recs[i].Type || r.TID != recs[i].TID {
			t.Fatalf("record %d: got %v tid %d", i, r.Type, r.TID)
		}
	}
	if _, err := l.ReadAt(l.End()); err == nil {
		t.Fatal("ReadAt past end accepted")
	}
	if _, err := l.ReadAt(3); err == nil {
		t.Fatal("ReadAt inside header accepted")
	}
}

func TestScanFromMiddle(t *testing.T) {
	l, _ := openTemp(t)
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsn, _ := l.Append(&Record{Type: TypeAbort, TID: itime.TID(i)})
		lsns = append(lsns, lsn)
	}
	var got []itime.TID
	if err := l.Scan(lsns[6], func(r *Record) error {
		got = append(got, r.TID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 6 {
		t.Fatalf("scan from middle = %v", got)
	}
}

func TestReopenRecoversEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.NoSync = true
	for i := 0; i < 5; i++ {
		l.Append(&Record{Type: TypeAbort, TID: itime.TID(i)})
	}
	end := l.End()
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != end {
		t.Fatalf("end after reopen = %d, want %d", l2.End(), end)
	}
	n := 0
	l2.Scan(0, func(*Record) error { n++; return nil })
	if n != 5 {
		t.Fatalf("records after reopen = %d", n)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.NoSync = true
	l.Append(&Record{Type: TypeAbort, TID: 1})
	lsn2, _ := l.Append(&Record{Type: TypeCommit, TID: 2, TS: itime.Timestamp{Wall: 5}})
	end := l.End()
	l.Flush()
	l.Close()

	// Simulate a torn write: chop the last record in half. Records live in
	// the first segment file (path itself is the control file), at physical
	// offset segHeaderLen + (lsn - start); the file extends past the data
	// with preallocated zeros, so cut relative to the record end.
	seg := segPath(path, 1)
	if err := os.Truncate(seg, segHeaderLen+int64(end-FirstLSN)-5); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != lsn2 {
		t.Fatalf("end = %d, want %d (torn record dropped)", l2.End(), lsn2)
	}
	n := 0
	l2.Scan(0, func(*Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("surviving records = %d, want 1", n)
	}
	// The log must be appendable after truncation.
	if _, err := l2.Append(&Record{Type: TypeAbort, TID: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushToAndFlushedLSN(t *testing.T) {
	l, _ := openTemp(t)
	if l.FlushedLSN() != FirstLSN {
		t.Fatalf("initial flushed = %d", l.FlushedLSN())
	}
	lsn, _ := l.Append(&Record{Type: TypeAbort, TID: 1})
	if l.FlushedLSN() > lsn {
		t.Fatal("append must not be durable before flush")
	}
	if err := l.FlushTo(lsn + 1); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() < lsn+1 {
		t.Fatalf("flushed = %d, want >= %d", l.FlushedLSN(), lsn+1)
	}
	// FlushTo below the watermark is a no-op.
	if err := l.FlushTo(FirstLSN); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointPointer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.NoSync = true
	if l.Checkpoint() != 0 {
		t.Fatal("fresh log has a checkpoint")
	}
	ck := &Checkpoint{NextTID: 9, LastTS: itime.Timestamp{Wall: 3}}
	lsn, _ := l.Append(&Record{Type: TypeCheckpoint, Blob: ck.Marshal()})
	if err := l.SetCheckpoint(lsn); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Checkpoint() != lsn {
		t.Fatalf("checkpoint after reopen = %d, want %d", l2.Checkpoint(), lsn)
	}
	r, err := l2.ReadAt(l2.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCheckpoint(r.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextTID != 9 || got.LastTS.Wall != 3 {
		t.Fatalf("checkpoint content = %+v", got)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := &Checkpoint{
		ActiveTxns: []TxnState{{TID: 1, LastLSN: 100}, {TID: 7, LastLSN: 220}},
		DirtyPages: []DirtyPage{{ID: 3, RecLSN: 50}, {ID: 9, RecLSN: 40}},
		NextTID:    42,
		LastTS:     itime.Timestamp{Wall: 11, Seq: 2},
		BeginLSN:   90,
	}
	got, err := UnmarshalCheckpoint(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip: %+v vs %+v", c, got)
	}
	if got.RedoScanStart(500) != 40 {
		t.Fatalf("RedoScanStart = %d", got.RedoScanStart(500))
	}
	empty := &Checkpoint{}
	if empty.RedoScanStart(500) != 500 {
		t.Fatal("empty DPT must start redo at the checkpoint")
	}
	// With active transactions, analysis must start no later than the ATT
	// snapshot point: records they log after the snapshot land past it.
	active := &Checkpoint{ActiveTxns: []TxnState{{TID: 1, LastLSN: 100}}, BeginLSN: 90}
	if active.RedoScanStart(500) != 90 {
		t.Fatalf("active ATT must clamp the scan to BeginLSN, got %d", active.RedoScanStart(500))
	}
	// Even with an empty ATT the scan must reach back to the snapshot
	// point: a transaction born inside the fuzzy window is listed in
	// neither table, and only the scan window covers its records.
	idle := &Checkpoint{BeginLSN: 90}
	if idle.RedoScanStart(500) != 90 {
		t.Fatalf("empty-ATT checkpoint must still clamp to BeginLSN, got %d", idle.RedoScanStart(500))
	}
	if _, err := UnmarshalCheckpoint([]byte{1, 2}); err == nil {
		t.Fatal("short blob accepted")
	}
}

func TestRecordEncodePropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := &Record{
			Type:    RecType(1 + rng.Intn(9)),
			TID:     itime.TID(rng.Uint64()),
			PrevLSN: LSN(rng.Uint64() % 1000),
			Table:   rng.Uint32(),
			Page:    9,
			Key:     randBytes(rng, rng.Intn(30)),
			Value:   randBytes(rng, rng.Intn(100)),
			Stub:    rng.Intn(2) == 0,
			TS:      itime.Timestamp{Wall: int64(rng.Uint32()), Seq: rng.Uint32()},
			HasTT:   rng.Intn(2) == 0,
			Img:     randBytes(rng, rng.Intn(200)),
			Undo:    LSN(rng.Uint64() % 1000),
			Blob:    randBytes(rng, rng.Intn(50)),
			Images: []PageImg{
				{Page: page.ID(rng.Intn(100)), Img: randBytes(rng, rng.Intn(80))},
				{Page: page.ID(rng.Intn(100)), Img: randBytes(rng, rng.Intn(80))},
			},
		}
		enc := r.encode(nil)
		got, n, err := decodeRecord(enc)
		if err != nil || n != len(enc) {
			return false
		}
		// Only fields meaningful for the type survive; re-encode and compare.
		return string(got.encode(nil)) == string(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptRecordRejected(t *testing.T) {
	r := &Record{Type: TypeCommit, TID: 1, TS: itime.Timestamp{Wall: 1}}
	enc := r.encode(nil)
	enc[10] ^= 0xFF
	if _, _, err := decodeRecord(enc); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("corrupt record: %v", err)
	}
	if _, _, err := decodeRecord(enc[:3]); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("short record: %v", err)
	}
}

func TestUseAfterClose(t *testing.T) {
	l, _ := openTemp(t)
	l.Close()
	if _, err := l.Append(&Record{Type: TypeAbort}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close: %v", err)
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}
