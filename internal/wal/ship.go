package wal

import (
	"errors"
	"fmt"
	"io"

	"immortaldb/internal/storage/vfs"
)

// This file is the log's replication surface. A primary ships its durable
// byte prefix to followers chunk by chunk (ShipRead); a follower writes the
// same bytes into an identical local segment chain (IngestChunk), so its
// copy of the log is byte-for-byte a prefix of the primary's. Follower crash
// recovery therefore needs no new machinery: reopening the copied chain runs
// the ordinary torn-tail scan, and resync resumes from wherever it ends.

// ErrShipGap reports a ship request below the primary's first retained
// record: checkpoint truncation reclaimed the segments the follower still
// needs, so it must re-seed from a base snapshot instead of the log.
var ErrShipGap = errors.New("wal: requested LSN below first retained segment")

// ErrSealed reports ingestion into a sealed log — a primary's, or a
// promoted copy cut at the fence: the log appends its own timeline, which no
// shipped byte may ever extend.
var ErrSealed = errors.New("wal: log sealed, ingestion refused")

// Seal latches the log against ingestion: every IngestChunk fails with
// ErrSealed from here on. A primary seals its log at open, and Promote seals
// a replica's copy at the fence, so a late chunk from a retired pull loop —
// or a zombie shipper — can never graft foreign bytes onto the local
// timeline (or trip the ingest latch and refuse the primary's own appends).
func (l *Log) Seal() {
	l.mu.Lock()
	l.sealed = true
	l.mu.Unlock()
}

// ShipChunk is one shipped span of the log. The bytes lie entirely inside
// one segment of the primary's chain, identified by (Seq, SegStart) so the
// follower can reproduce the same rotation points. At is the logical offset
// of Data[0]; a chunk with empty Data means the follower is caught up with
// the primary's durable prefix.
type ShipChunk struct {
	Seq      uint64 // segment sequence number
	SegStart LSN    // first LSN of that segment
	At       LSN    // logical offset of Data[0]
	Data     []byte
}

// ShipRead reads up to max bytes of the durable log starting at from. The
// returned chunk never crosses a segment boundary and never includes bytes
// past FlushedLSN, so every byte shipped is already crash-durable on the
// primary — a follower can never get ahead of what the primary would itself
// recover. At the durable end it returns an empty chunk positioned at from.
func (l *Log) ShipRead(from LSN, max int) (ShipChunk, error) {
	if max <= 0 {
		return ShipChunk{}, fmt.Errorf("wal: ship read of %d bytes", max)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ShipChunk{}, ErrClosed
	}
	if from < FirstLSN {
		from = FirstLSN
	}
	if from < l.segs[0].start {
		return ShipChunk{}, fmt.Errorf("%w: %d < %d", ErrShipGap, from, l.segs[0].start)
	}
	if from > l.flushed {
		return ShipChunk{}, fmt.Errorf("wal: ship read at %d past durable end %d", from, l.flushed)
	}
	i := segIndex(l.segs, from)
	seg := l.segs[i]
	if from == l.flushed {
		// Caught up. If the durable end sits exactly on a rotation point the
		// next byte belongs to the next segment; report that segment's
		// coordinates so the follower rotates in lockstep.
		if i+1 < len(l.segs) && l.segs[i+1].start == from {
			seg = l.segs[i+1]
		}
		return ShipChunk{Seq: seg.seq, SegStart: seg.start, At: from}, nil
	}
	hi := l.flushed
	if i+1 < len(l.segs) && l.segs[i+1].start < hi {
		hi = l.segs[i+1].start
	}
	if hi <= from {
		// from sits exactly at this segment's end; the next segment holds the
		// byte. (Only reachable when rotation happened at from < flushed.)
		seg = l.segs[i+1]
		hi = l.flushed
		if i+2 < len(l.segs) && l.segs[i+2].start < hi {
			hi = l.segs[i+2].start
		}
	}
	n := int(hi - from)
	if n > max {
		n = max
	}
	buf := make([]byte, n)
	if _, err := seg.f.ReadAt(buf, segHeaderLen+int64(from-seg.start)); err != nil {
		return ShipChunk{}, fmt.Errorf("wal: ship read %s at %d: %w", seg.path, from, err)
	}
	return ShipChunk{Seq: seg.seq, SegStart: seg.start, At: from, Data: buf}, nil
}

// IngestChunk appends one shipped chunk to a follower's log copy. Chunks
// must arrive contiguously (ch.At == End()); when the chunk belongs to the
// next segment of the primary's chain, the local chain rotates at the same
// point before writing. Ingested bytes are readable immediately (Scan,
// ReadAt) but only crash-durable after SyncIngested; a crash in between is
// healed by the ordinary torn-tail scan on reopen.
//
// A log that has ingested is a replica copy: ordinary Append is refused, so
// the copy can never diverge from the primary's byte stream.
func (l *Log) IngestChunk(ch ShipChunk) error {
	if len(ch.Data) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.fail != nil {
		return l.failedErrLocked()
	}
	if l.sealed {
		return ErrSealed
	}
	if len(l.buf) > 0 {
		return fmt.Errorf("wal: ingest into a log with buffered appends")
	}
	if ch.At != l.end {
		return fmt.Errorf("wal: ingest at %d, log ends at %d", ch.At, l.end)
	}
	l.ingest = true
	active := l.segs[len(l.segs)-1]
	if ch.Seq != active.seq {
		// Primary rotated: mirror it. A fresh empty local segment whose
		// header was never matched by shipped bytes (the empty seg 1 of a
		// brand-new copy receiving a post-truncation chain) is replaced.
		if active.start == l.end && len(l.segs) == 1 && ch.SegStart == l.end {
			if ch.Seq != active.seq {
				if err := l.fsys.Remove(active.path); err == nil {
					active.f.Close()
					l.segs = l.segs[:0]
				} else {
					return fmt.Errorf("wal: replace placeholder segment: %v", err)
				}
			}
		} else if ch.Seq != active.seq+1 || ch.SegStart != l.end {
			return fmt.Errorf("wal: ingest segment %d@%d does not follow %d@%d (end %d)",
				ch.Seq, ch.SegStart, active.seq, active.start, l.end)
		}
		if err := l.addSegment(ch.Seq, ch.SegStart, false); err != nil {
			return err
		}
		active = l.segs[len(l.segs)-1]
	} else if ch.SegStart != active.start {
		return fmt.Errorf("wal: ingest segment %d start %d, local start %d", ch.Seq, ch.SegStart, active.start)
	}
	off := segHeaderLen + int64(ch.At-active.start)
	if _, err := active.f.WriteAt(ch.Data, off); err != nil {
		err = fmt.Errorf("wal: ingest write %s: %w", active.path, err)
		l.fail = err
		return err
	}
	active.dirty = true
	l.end += LSN(len(ch.Data))
	// Readable-but-unsynced bytes count as flushed on a replica: flushed
	// gates the pool's write-ahead check, and the replica's authority on
	// durability is the primary, which only ships its own durable prefix.
	l.flushed = l.end
	l.bufStart = l.end
	l.appends++
	return nil
}

// ResetIngest re-roots an empty log copy at (seq, start): the placeholder
// first segment of a freshly-created log is replaced by one matching the
// primary's chain, so a base-seeded follower can ingest a log suffix that
// begins mid-history (the primary truncated everything before its base
// checkpoint). Only an empty log — no record ever appended or ingested —
// can be re-rooted.
func (l *Log) ResetIngest(seq uint64, start LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(l.segs) != 1 || l.end != l.segs[0].start || len(l.buf) > 0 {
		return fmt.Errorf("wal: reset of a non-empty log (end %d)", l.end)
	}
	if start < FirstLSN || seq == 0 {
		return fmt.Errorf("wal: reset to segment %d@%d", seq, start)
	}
	old := l.segs[0]
	old.f.Close()
	if err := l.fsys.Remove(old.path); err != nil {
		return fmt.Errorf("wal: reset remove %s: %w", old.path, err)
	}
	l.segs = l.segs[:0]
	if err := l.addSegment(seq, start, false); err != nil {
		return err
	}
	l.ingest = true
	l.end, l.flushed, l.bufStart = start, start, start
	return nil
}

// SyncIngested fsyncs every segment written by IngestChunk since the last
// call. A replica calls it before moving its checkpoint pointer, mirroring
// the primary's flush-before-checkpoint ordering.
func (l *Log) SyncIngested() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.fail != nil {
		return l.failedErrLocked()
	}
	for _, seg := range l.segs {
		if !seg.dirty {
			continue
		}
		if !l.NoSync {
			if err := seg.f.Sync(); err != nil {
				err = fmt.Errorf("wal: sync ingested %s: %w", seg.path, err)
				l.fail = err
				return err
			}
			l.syncs++
		}
		seg.dirty = false
	}
	return nil
}

// TrimIngestTail seals the readable end of a follower's log copy at a record
// boundary. Starting from a known boundary at or below the ingested end
// (clamped up to the first retained byte), it walks complete records forward
// and cuts the log at the first incomplete one — the half-shipped record a
// dead primary will never finish. End, FlushedLSN and the append position all
// move back to the cut, and the stale partial bytes past it are truncated
// from the tail segment so no future crash scan can resurrect them. from must
// lie on a record boundary (a replica's applied LSN always does). Returns the
// boundary the log now ends at — the promotion fence.
func (l *Log) TrimIngestTail(from LSN) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.fail != nil {
		return 0, l.failedErrLocked()
	}
	if len(l.buf) > 0 {
		return 0, fmt.Errorf("wal: trim of a log with buffered appends")
	}
	if from < FirstLSN {
		from = FirstLSN
	}
	if first := l.segs[0].start; from < first {
		from = first
	}
	if from > l.end {
		return 0, fmt.Errorf("wal: trim from %d past end %d", from, l.end)
	}
	boundary := from
	for i := segIndex(l.segs, from); i < len(l.segs); i++ {
		seg := l.segs[i]
		lo := boundary
		if seg.start > lo {
			lo = seg.start
		}
		hi := l.end
		if i+1 < len(l.segs) && l.segs[i+1].start < hi {
			hi = l.segs[i+1].start
		}
		if lo >= hi {
			continue
		}
		data, err := io.ReadAll(io.NewSectionReader(seg.f, segHeaderLen+int64(lo-seg.start), int64(hi-lo)))
		if err != nil {
			return 0, fmt.Errorf("wal: trim read %s: %w", seg.path, err)
		}
		off := 0
		for off < len(data) {
			_, n, derr := decodeRecord(data[off:])
			if derr != nil {
				break
			}
			off += n
		}
		boundary = lo + LSN(off)
		if off < len(data) {
			break // incomplete trailing record: the fence sits here
		}
	}
	if boundary < l.end {
		seg := l.segs[segIndex(l.segs, boundary)]
		if err := seg.f.Truncate(segHeaderLen + int64(boundary-seg.start)); err != nil {
			err = fmt.Errorf("wal: trim truncate %s: %w", seg.path, err)
			l.fail = err
			return 0, err
		}
		seg.prealloc = false // shrunk: the next Append re-extends it
	}
	l.end, l.flushed, l.bufStart = boundary, boundary, boundary
	return boundary, nil
}

// Promote seals a follower's log copy and reopens it for ordinary appends —
// the log half of promoting a replica to primary. The ingested stream is
// trimmed to its last complete record (TrimIngestTail) and the ingest latch
// cleared, so Append works again; the caller then appends the promotion
// record at the returned fence before accepting any write. Promote does not
// require that the log ever ingested: a copy reopened after a crash
// mid-promotion has only the on-disk chain, and promoting it again is the
// recovery path.
func (l *Log) Promote(from LSN) (LSN, error) {
	fence, err := l.TrimIngestTail(from)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.ingest = false
	l.sealed = true
	l.mu.Unlock()
	return fence, nil
}

// SegmentStart returns the (seq, start) coordinates of the segment that
// contains lsn — or, when lsn is the current end of an exactly-full chain,
// of the segment that will contain the next byte.
func (l *Log) SegmentStart(lsn LSN) (seq uint64, start LSN, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, ErrClosed
	}
	if lsn < l.segs[0].start {
		return 0, 0, fmt.Errorf("%w: %d < %d", ErrShipGap, lsn, l.segs[0].start)
	}
	seg := l.segs[segIndex(l.segs, lsn)]
	return seg.seq, seg.start, nil
}

// ScanComplete is Scan for a replica's log copy. Shipped chunks can split a
// record, so the readable end of an ingesting log may sit mid-record; the
// scan stops silently at the first incomplete record instead of failing —
// the rest of it is simply still in flight.
func (l *Log) ScanComplete(from LSN, fn func(*Record) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	end := l.end
	segs := l.segs
	l.mu.Unlock()
	if from == 0 || from < FirstLSN {
		from = FirstLSN
	}
	if first := segs[0].start; from < first {
		from = first
	}
	if from >= end {
		return nil
	}
	for i := segIndex(segs, from); i < len(segs); i++ {
		seg := segs[i]
		lo := from
		if seg.start > lo {
			lo = seg.start
		}
		hi := end
		if i+1 < len(segs) && segs[i+1].start < hi {
			hi = segs[i+1].start
		}
		if lo >= hi {
			continue
		}
		data, err := io.ReadAll(io.NewSectionReader(seg.f, segHeaderLen+int64(lo-seg.start), int64(hi-lo)))
		if err != nil {
			return fmt.Errorf("wal: scan read %s: %w", seg.path, err)
		}
		off := 0
		for off < len(data) {
			r, n, err := decodeRecord(data[off:])
			if err != nil {
				return nil // incomplete trailing record: stop here
			}
			r.LSN = lo + LSN(off)
			if err := fn(r); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// CopyRetained copies the raw retained chain at path into dst — a fresh,
// empty log — stopping at upto (an exclusive bound on a record boundary).
// The copy reproduces the source's exact segment geometry via IngestChunk,
// so the destination is byte-for-byte a prefix of the source. Point-in-time
// restore uses it to cut a database's history at a chosen commit.
func CopyRetained(fsys vfs.FS, path string, upto LSN, dst *Log) error {
	const copyChunk = 1 << 20
	stop := errors.New("stop")
	_, err := walkRetained(fsys, path, nil, func(seq uint64, start LSN, valid []byte) error {
		if start >= upto {
			return stop
		}
		if end := start + LSN(len(valid)); end > upto {
			valid = valid[:upto-start]
		}
		at := start
		for len(valid) > 0 {
			n := len(valid)
			if n > copyChunk {
				n = copyChunk
			}
			if err := dst.IngestChunk(ShipChunk{Seq: seq, SegStart: start, At: at, Data: valid[:n]}); err != nil {
				return err
			}
			at += LSN(n)
			valid = valid[n:]
		}
		if at >= upto {
			return stop
		}
		return nil
	})
	if err == stop {
		err = nil
	}
	return err
}

// ScanRetained reads the log rooted at path without opening (and therefore
// without mutating) it: segment files are discovered, header-validated and
// stream-decoded in place, and the scan simply stops at the first undecodable
// byte — a torn tail is the end of history, not an error. fn receives every
// record with its LSN; returning an error stops the scan.
//
// It is the read-only substrate for point-in-time restore, which must walk a
// source database's chain without truncating its torn tail or touching its
// control file.
func ScanRetained(fsys vfs.FS, path string, fn func(*Record) error) error {
	_, err := scanRetained(fsys, path, fn)
	return err
}

// RetainedStart returns the first LSN of the oldest segment at path, again
// without mutating anything. It lets restore verify the chain reaches back
// to the beginning of history before replaying it.
func RetainedStart(fsys vfs.FS, path string) (LSN, error) {
	start, err := scanRetained(fsys, path, nil)
	return start, err
}

func scanRetained(fsys vfs.FS, path string, fn func(*Record) error) (LSN, error) {
	return walkRetained(fsys, path, fn, nil)
}

// walkRetained is the shared chain walk behind ScanRetained and CopyRetained:
// recFn (if non-nil) gets every decodable record, segFn (if non-nil) gets
// each segment's coordinates and decodable byte extent once it is known.
func walkRetained(fsys vfs.FS, path string, recFn func(*Record) error, segFn func(seq uint64, start LSN, valid []byte) error) (LSN, error) {
	names, err := fsys.List(path + ".")
	if err != nil {
		return 0, fmt.Errorf("wal: list segments: %w", err)
	}
	type cand struct {
		seq  uint64
		name string
	}
	var cands []cand
	for _, name := range names {
		if seq, ok := parseSegPath(path, name); ok {
			cands = append(cands, cand{seq, name})
		}
	}
	if len(cands) == 0 {
		return 0, fmt.Errorf("wal: no segments at %s", path)
	}
	first := LSN(0)
	var prevSeq uint64
	var next LSN
	for i, c := range cands {
		f, err := fsys.OpenFile(c.name)
		if err != nil {
			return first, fmt.Errorf("wal: open segment %s: %w", c.name, err)
		}
		hdr := make([]byte, segHeaderLen)
		_, rerr := f.ReadAt(hdr, 0)
		seq, start, derr := decodeSegHeader(hdr)
		if (rerr != nil && rerr != io.EOF) || derr != nil || seq != c.seq {
			f.Close()
			break // chain ends at the first bad header
		}
		if i == 0 {
			first = start
		} else if seq != prevSeq+1 || start != next {
			f.Close()
			break // discontinuity: everything from here was never acked
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return first, fmt.Errorf("wal: size %s: %w", c.name, err)
		}
		data, err := io.ReadAll(io.NewSectionReader(f, segHeaderLen, size-segHeaderLen))
		f.Close()
		if err != nil {
			return first, fmt.Errorf("wal: read %s: %w", c.name, err)
		}
		off := 0
		torn := false
		for off < len(data) {
			r, n, derr := decodeRecord(data[off:])
			if derr != nil {
				torn = true // torn tail: end of recoverable history
				break
			}
			r.LSN = start + LSN(off)
			if recFn != nil {
				if err := recFn(r); err != nil {
					return first, err
				}
			}
			off += n
		}
		if segFn != nil {
			if err := segFn(seq, start, data[:off]); err != nil {
				return first, err
			}
		}
		if torn {
			return first, nil
		}
		prevSeq, next = seq, start+LSN(off)
	}
	return first, nil
}
