// Package wal implements the write-ahead log: an append-only record file
// with per-record CRCs, a checkpoint pointer, and ARIES-style record types
// (redo/undo of versioned inserts, compensation records, fuzzy checkpoints).
//
// Two properties from the paper shape this log (Section 2.2):
//
//   - Commit records carry the transaction's timestamp, so recovery can
//     rebuild Persistent Timestamp Table entries without ever logging the
//     per-record timestamping itself.
//   - Lazy timestamping is NOT logged. Stamped pages that reached disk keep
//     their stamps; stamps lost in a crash are simply re-applied lazily from
//     the PTT after restart — stamping is idempotent.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// LSN is a log sequence number: the byte offset of a record in the log file.
// LSN 0 means "none".
type LSN uint64

// RecType identifies a log record type.
type RecType uint8

// Log record types.
const (
	TypeInvalid RecType = iota
	// TypeInsertVersion records the insertion of one new record version
	// (insert, update, or delete stub) into a data page. Redo is
	// page-oriented; undo is logical (remove the newest version of the key).
	TypeInsertVersion
	// TypeCLR is a compensation record written while undoing an
	// InsertVersion; it is redo-only and chains to the next record to undo.
	TypeCLR
	// TypeCommit ends a transaction and carries its commit timestamp; redo
	// restores the transaction's PTT entry if missing.
	TypeCommit
	// TypeAbort ends a rolled-back transaction.
	TypeAbort
	// TypePageImage is a physical after-image of a whole page, logged for
	// structure modifications (time splits, key splits, index updates).
	TypePageImage
	// TypeCheckpoint is a fuzzy checkpoint: active-transaction table,
	// dirty-page table and allocator high-water marks.
	TypeCheckpoint
	// TypeCatalog records a DDL change as an opaque catalog snapshot.
	TypeCatalog
	// TypeFreePage records that a page was returned to the free list.
	TypeFreePage
	// TypeStamp records the timestamping of one record version. It is used
	// ONLY by the eager-timestamping ablation: the paper's lazy scheme never
	// logs timestamping (that is its point), while eager timestamping "needs
	// to be logged as well, because recovery needs to redo the timestamping
	// should the system crash" (Section 2.2).
	TypeStamp
	// TypeSMO is one atomic structure modification: the full after-images of
	// every page a split (time split, key split, index split, root growth)
	// touched, plus the catalog snapshot when the modification moved the
	// tree root. Packing the whole SMO into one checksummed record makes it
	// atomic across a torn log tail: recovery either sees the complete new
	// structure or none of it — never a leaf rewritten without the parent
	// entry (or root change) that routes to its sibling.
	TypeSMO
	// TypeHistRun carries one immutable cold-history run file: the table, the
	// run sequence number (in the Page field) and the complete encoded file.
	// The run file itself, fsynced before the manifest flip, is the local
	// durability authority; the record makes the write idempotent under redo
	// and lets replicas materialize their own copy of the cold tier.
	TypeHistRun
	// TypeHistManifest carries a table's cold-tier run manifest image. Redo
	// installs it when newer than the one on disk, so the hot/cold boundary
	// flip is crash-atomic and replicable: a run exists exactly when some
	// installed manifest names it.
	TypeHistManifest
	// TypePromote fences a primary handover: it is the first record a
	// promoted follower appends to its (formerly replica) log copy, carrying
	// the new monotonic promotion epoch and the fence LSN — the sealed end of
	// the replicated prefix. Everything below the fence was written under an
	// older epoch; recovery restores the epoch from the newest promote record
	// it scans, so a rebooted node knows which generation of the cluster its
	// log belongs to.
	TypePromote
)

func (t RecType) String() string {
	switch t {
	case TypeInsertVersion:
		return "insert-version"
	case TypeCLR:
		return "clr"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypePageImage:
		return "page-image"
	case TypeCheckpoint:
		return "checkpoint"
	case TypeCatalog:
		return "catalog"
	case TypeFreePage:
		return "free-page"
	case TypeStamp:
		return "stamp"
	case TypeSMO:
		return "smo"
	case TypeHistRun:
		return "hist-run"
	case TypeHistManifest:
		return "hist-manifest"
	case TypePromote:
		return "promote"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(t))
	}
}

// PageImg is one page after-image inside a TypeSMO record.
type PageImg struct {
	Page page.ID
	Img  []byte
}

// Record is a decoded log record. It is a flat union: which fields are
// meaningful depends on Type.
type Record struct {
	LSN     LSN // assigned by Append / filled by readers
	Type    RecType
	TID     itime.TID
	PrevLSN LSN // previous record of the same transaction

	Table uint32  // InsertVersion, CLR, SMO
	Page  page.ID // InsertVersion, CLR, PageImage, FreePage
	Key   []byte  // InsertVersion, CLR
	Value []byte  // InsertVersion
	Old   []byte  // InsertVersion: prior value for undo (no-tail tables
	// and same-transaction overwrites of versioned records)
	OldStub bool            // InsertVersion: the overwritten version was a delete stub
	Restore bool            // CLR: redo restores Old/OldStub instead of removing
	Stub    bool            // InsertVersion
	TS      itime.Timestamp // Commit
	HasTT   bool            // Commit: transaction wrote a transaction-time table
	Img     []byte          // PageImage
	Undo    LSN             // CLR: next record of the transaction to undo
	Blob    []byte          // Checkpoint, Catalog; SMO: catalog snapshot on root change
	Images  []PageImg       // SMO: after-images of every touched page
	Epoch   uint64          // Promote: the new promotion epoch
	Fence   LSN             // Promote: sealed end of the replicated prefix
}

// recHeaderLen is the fixed record prefix: totalLen(4) crc(4) type(1)
// tid(8) prevLSN(8).
const recHeaderLen = 4 + 4 + 1 + 8 + 8

// MaxRecordLen bounds a single record (a page image plus slack).
const MaxRecordLen = 1 << 24

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord reports an undecodable log record (normal at the torn
// tail of a log after a crash).
var ErrCorruptRecord = errors.New("wal: corrupt record")

func (r *Record) payloadLen() int {
	switch r.Type {
	case TypeInsertVersion:
		return 4 + 8 + 1 + 2 + len(r.Key) + 4 + len(r.Value) + 4 + len(r.Old) + 1
	case TypeCLR:
		return 4 + 8 + 2 + len(r.Key) + 8 + 1 + 4 + len(r.Value)
	case TypeCommit:
		return itime.EncodedLen + 1
	case TypeAbort:
		return 0
	case TypePageImage:
		return 8 + 4 + len(r.Img)
	case TypeCheckpoint, TypeCatalog:
		return 4 + len(r.Blob)
	case TypeFreePage:
		return 8
	case TypeStamp:
		return 4 + 8 + 2 + len(r.Key) + itime.EncodedLen
	case TypeSMO:
		n := 4 + 4 + len(r.Blob) + 4
		for i := range r.Images {
			n += 12 + len(r.Images[i].Img)
		}
		return n
	case TypeHistRun:
		return 4 + 8 + 4 + len(r.Blob)
	case TypeHistManifest:
		return 4 + 4 + len(r.Blob)
	case TypePromote:
		return 8 + 8
	default:
		return 0
	}
}

// encodedLen returns the full on-disk size of the record.
func (r *Record) encodedLen() int { return recHeaderLen + r.payloadLen() }

// EndLSN returns the LSN one past this record — where the next record
// starts. Replica redo uses it to track the applied horizon record by
// record; it is only meaningful on records whose LSN has been assigned.
func (r *Record) EndLSN() LSN { return r.LSN + LSN(r.encodedLen()) }

// encode appends the record to dst and returns the extended slice.
func (r *Record) encode(dst []byte) []byte {
	total := r.encodedLen()
	start := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[start:]
	binary.BigEndian.PutUint32(b[0:], uint32(total))
	// crc at [4:8] filled below.
	b[8] = byte(r.Type)
	binary.BigEndian.PutUint64(b[9:], uint64(r.TID))
	binary.BigEndian.PutUint64(b[17:], uint64(r.PrevLSN))
	p := b[recHeaderLen:]
	switch r.Type {
	case TypeInsertVersion:
		binary.BigEndian.PutUint32(p[0:], r.Table)
		binary.BigEndian.PutUint64(p[4:], uint64(r.Page))
		if r.Stub {
			p[12] |= 1
		}
		if r.OldStub {
			p[12] |= 2
		}
		binary.BigEndian.PutUint16(p[13:], uint16(len(r.Key)))
		copy(p[15:], r.Key)
		q := p[15+len(r.Key):]
		binary.BigEndian.PutUint32(q[0:], uint32(len(r.Value)))
		copy(q[4:], r.Value)
		q = q[4+len(r.Value):]
		binary.BigEndian.PutUint32(q[0:], uint32(len(r.Old)))
		copy(q[4:], r.Old)
		if r.Old != nil {
			q[4+len(r.Old)] = 1
		}
	case TypeCLR:
		binary.BigEndian.PutUint32(p[0:], r.Table)
		binary.BigEndian.PutUint64(p[4:], uint64(r.Page))
		binary.BigEndian.PutUint16(p[12:], uint16(len(r.Key)))
		copy(p[14:], r.Key)
		q := p[14+len(r.Key):]
		binary.BigEndian.PutUint64(q[0:], uint64(r.Undo))
		if r.Stub {
			q[8] |= 1
		}
		if r.Restore {
			q[8] |= 2
		}
		binary.BigEndian.PutUint32(q[9:], uint32(len(r.Value)))
		copy(q[13:], r.Value)
	case TypeCommit:
		r.TS.Encode(p[0:])
		if r.HasTT {
			p[itime.EncodedLen] = 1
		}
	case TypeAbort:
	case TypePageImage:
		binary.BigEndian.PutUint64(p[0:], uint64(r.Page))
		binary.BigEndian.PutUint32(p[8:], uint32(len(r.Img)))
		copy(p[12:], r.Img)
	case TypeCheckpoint, TypeCatalog:
		binary.BigEndian.PutUint32(p[0:], uint32(len(r.Blob)))
		copy(p[4:], r.Blob)
	case TypeFreePage:
		binary.BigEndian.PutUint64(p[0:], uint64(r.Page))
	case TypeStamp:
		binary.BigEndian.PutUint32(p[0:], r.Table)
		binary.BigEndian.PutUint64(p[4:], uint64(r.Page))
		binary.BigEndian.PutUint16(p[12:], uint16(len(r.Key)))
		copy(p[14:], r.Key)
		r.TS.Encode(p[14+len(r.Key):])
	case TypeSMO:
		binary.BigEndian.PutUint32(p[0:], r.Table)
		binary.BigEndian.PutUint32(p[4:], uint32(len(r.Blob)))
		copy(p[8:], r.Blob)
		q := p[8+len(r.Blob):]
		binary.BigEndian.PutUint32(q[0:], uint32(len(r.Images)))
		q = q[4:]
		for i := range r.Images {
			binary.BigEndian.PutUint64(q[0:], uint64(r.Images[i].Page))
			binary.BigEndian.PutUint32(q[8:], uint32(len(r.Images[i].Img)))
			copy(q[12:], r.Images[i].Img)
			q = q[12+len(r.Images[i].Img):]
		}
	case TypeHistRun:
		binary.BigEndian.PutUint32(p[0:], r.Table)
		binary.BigEndian.PutUint64(p[4:], uint64(r.Page))
		binary.BigEndian.PutUint32(p[12:], uint32(len(r.Blob)))
		copy(p[16:], r.Blob)
	case TypeHistManifest:
		binary.BigEndian.PutUint32(p[0:], r.Table)
		binary.BigEndian.PutUint32(p[4:], uint32(len(r.Blob)))
		copy(p[8:], r.Blob)
	case TypePromote:
		binary.BigEndian.PutUint64(p[0:], r.Epoch)
		binary.BigEndian.PutUint64(p[8:], uint64(r.Fence))
	}
	binary.BigEndian.PutUint32(b[4:], crc32.Checksum(b[8:], crcTable))
	return dst
}

// decodeRecord parses one record from the front of b. It returns the record
// and its total length, or ErrCorruptRecord.
func decodeRecord(b []byte) (*Record, int, error) {
	if len(b) < recHeaderLen {
		return nil, 0, fmt.Errorf("%w: short header", ErrCorruptRecord)
	}
	total := int(binary.BigEndian.Uint32(b[0:]))
	if total < recHeaderLen || total > MaxRecordLen || total > len(b) {
		return nil, 0, fmt.Errorf("%w: bad length %d", ErrCorruptRecord, total)
	}
	if got, want := crc32.Checksum(b[8:total], crcTable), binary.BigEndian.Uint32(b[4:]); got != want {
		return nil, 0, fmt.Errorf("%w: checksum", ErrCorruptRecord)
	}
	r := &Record{
		Type:    RecType(b[8]),
		TID:     itime.TID(binary.BigEndian.Uint64(b[9:])),
		PrevLSN: LSN(binary.BigEndian.Uint64(b[17:])),
	}
	p := b[recHeaderLen:total]
	bad := func() (*Record, int, error) {
		return nil, 0, fmt.Errorf("%w: truncated %v payload", ErrCorruptRecord, r.Type)
	}
	switch r.Type {
	case TypeInsertVersion:
		if len(p) < 15 {
			return bad()
		}
		r.Table = binary.BigEndian.Uint32(p[0:])
		r.Page = page.ID(binary.BigEndian.Uint64(p[4:]))
		r.Stub = p[12]&1 != 0
		r.OldStub = p[12]&2 != 0
		klen := int(binary.BigEndian.Uint16(p[13:]))
		if len(p) < 15+klen+4 {
			return bad()
		}
		r.Key = append([]byte(nil), p[15:15+klen]...)
		q := p[15+klen:]
		vlen := int(binary.BigEndian.Uint32(q[0:]))
		if len(q) < 4+vlen {
			return bad()
		}
		r.Value = append([]byte(nil), q[4:4+vlen]...)
		q = q[4+vlen:]
		if len(q) < 5 {
			return bad()
		}
		olen := int(binary.BigEndian.Uint32(q[0:]))
		if len(q) < 4+olen+1 {
			return bad()
		}
		if q[4+olen] == 1 {
			r.Old = make([]byte, olen)
			copy(r.Old, q[4:4+olen])
		}
	case TypeCLR:
		if len(p) < 14 {
			return bad()
		}
		r.Table = binary.BigEndian.Uint32(p[0:])
		r.Page = page.ID(binary.BigEndian.Uint64(p[4:]))
		klen := int(binary.BigEndian.Uint16(p[12:]))
		if len(p) < 14+klen+8 {
			return bad()
		}
		r.Key = append([]byte(nil), p[14:14+klen]...)
		q := p[14+klen:]
		if len(q) < 13 {
			return bad()
		}
		r.Undo = LSN(binary.BigEndian.Uint64(q[0:]))
		r.Stub = q[8]&1 != 0
		r.Restore = q[8]&2 != 0
		vlen := int(binary.BigEndian.Uint32(q[9:]))
		if len(q) < 13+vlen {
			return bad()
		}
		r.Value = append([]byte(nil), q[13:13+vlen]...)
	case TypeCommit:
		if len(p) < itime.EncodedLen+1 {
			return bad()
		}
		r.TS = itime.DecodeTimestamp(p)
		r.HasTT = p[itime.EncodedLen] == 1
	case TypeAbort:
	case TypePageImage:
		if len(p) < 12 {
			return bad()
		}
		r.Page = page.ID(binary.BigEndian.Uint64(p[0:]))
		n := int(binary.BigEndian.Uint32(p[8:]))
		if len(p) < 12+n {
			return bad()
		}
		r.Img = append([]byte(nil), p[12:12+n]...)
	case TypeCheckpoint, TypeCatalog:
		if len(p) < 4 {
			return bad()
		}
		n := int(binary.BigEndian.Uint32(p[0:]))
		if len(p) < 4+n {
			return bad()
		}
		r.Blob = append([]byte(nil), p[4:4+n]...)
	case TypeFreePage:
		if len(p) < 8 {
			return bad()
		}
		r.Page = page.ID(binary.BigEndian.Uint64(p[0:]))
	case TypeStamp:
		if len(p) < 14 {
			return bad()
		}
		r.Table = binary.BigEndian.Uint32(p[0:])
		r.Page = page.ID(binary.BigEndian.Uint64(p[4:]))
		klen := int(binary.BigEndian.Uint16(p[12:]))
		if len(p) < 14+klen+itime.EncodedLen {
			return bad()
		}
		r.Key = append([]byte(nil), p[14:14+klen]...)
		r.TS = itime.DecodeTimestamp(p[14+klen:])
	case TypeSMO:
		if len(p) < 8 {
			return bad()
		}
		r.Table = binary.BigEndian.Uint32(p[0:])
		bn := int(binary.BigEndian.Uint32(p[4:]))
		if bn < 0 || len(p) < 8+bn+4 {
			return bad()
		}
		if bn > 0 {
			r.Blob = append([]byte(nil), p[8:8+bn]...)
		}
		q := p[8+bn:]
		ni := int(binary.BigEndian.Uint32(q[0:]))
		q = q[4:]
		if ni < 0 || ni*12 > len(q) {
			return bad()
		}
		r.Images = make([]PageImg, 0, ni)
		for i := 0; i < ni; i++ {
			if len(q) < 12 {
				return bad()
			}
			id := page.ID(binary.BigEndian.Uint64(q[0:]))
			n := int(binary.BigEndian.Uint32(q[8:]))
			if n < 0 || len(q) < 12+n {
				return bad()
			}
			r.Images = append(r.Images, PageImg{Page: id, Img: append([]byte(nil), q[12:12+n]...)})
			q = q[12+n:]
		}
	case TypeHistRun:
		if len(p) < 16 {
			return bad()
		}
		r.Table = binary.BigEndian.Uint32(p[0:])
		r.Page = page.ID(binary.BigEndian.Uint64(p[4:]))
		n := int(binary.BigEndian.Uint32(p[12:]))
		if n < 0 || len(p) < 16+n {
			return bad()
		}
		r.Blob = append([]byte(nil), p[16:16+n]...)
	case TypeHistManifest:
		if len(p) < 8 {
			return bad()
		}
		r.Table = binary.BigEndian.Uint32(p[0:])
		n := int(binary.BigEndian.Uint32(p[4:]))
		if n < 0 || len(p) < 8+n {
			return bad()
		}
		r.Blob = append([]byte(nil), p[8:8+n]...)
	case TypePromote:
		if len(p) < 16 {
			return bad()
		}
		r.Epoch = binary.BigEndian.Uint64(p[0:])
		r.Fence = LSN(binary.BigEndian.Uint64(p[8:]))
	default:
		return nil, 0, fmt.Errorf("%w: unknown type %d", ErrCorruptRecord, b[8])
	}
	return r, total, nil
}
