package catalog

import (
	"errors"
	"testing"
)

func TestCreateGetDrop(t *testing.T) {
	c := New()
	tbl, err := c.Create(Table{Name: "moving_objects", Immortal: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != 1 {
		t.Fatalf("first table ID = %d", tbl.ID)
	}
	if _, err := c.Create(Table{Name: "moving_objects"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	got, err := c.Get("moving_objects")
	if err != nil || got.ID != 1 || !got.Immortal {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if _, ok := c.ByID(1); !ok {
		t.Fatal("ByID failed")
	}
	if err := c.Drop("moving_objects"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("moving_objects"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after drop: %v", err)
	}
	if err := c.Drop("moving_objects"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestIDsNeverReused(t *testing.T) {
	c := New()
	a, _ := c.Create(Table{Name: "a"})
	c.Drop("a")
	b, _ := c.Create(Table{Name: "b"})
	if b.ID == a.ID {
		t.Fatal("table ID reused after drop")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := New()
	c.Create(Table{Name: "t1", Immortal: true, Root: 7, RootIsLeaf: true,
		Columns: []Column{{Name: "Oid", Type: TypeSmallInt, PrimaryKey: true}}})
	c.Create(Table{Name: "t2", Snapshot: true})
	c.SetRoot(2, 9, false)
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c2 := New()
	if err := c2.Load(data); err != nil {
		t.Fatal(err)
	}
	t1, err := c2.Get("t1")
	if err != nil || !t1.Immortal || t1.Root != 7 || !t1.RootIsLeaf {
		t.Fatalf("t1 = %+v, %v", t1, err)
	}
	pk, ok := t1.PrimaryKey()
	if !ok || pk.Name != "Oid" {
		t.Fatalf("pk = %+v, %v", pk, ok)
	}
	t2, _ := c2.Get("t2")
	if !t2.Snapshot || t2.Root != 9 || t2.RootIsLeaf {
		t.Fatalf("t2 = %+v", t2)
	}
	// ID allocation continues past loaded tables.
	t3, _ := c2.Create(Table{Name: "t3"})
	if t3.ID != 3 {
		t.Fatalf("next ID after load = %d", t3.ID)
	}
}

func TestEnableSnapshot(t *testing.T) {
	c := New()
	c.Create(Table{Name: "conv"})
	if err := c.EnableSnapshot("conv", false); err == nil {
		t.Fatal("enable snapshot on non-empty table must fail")
	}
	if err := c.EnableSnapshot("conv", true); err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Get("conv")
	if !tbl.Snapshot || !tbl.Versioned() {
		t.Fatalf("tbl = %+v", tbl)
	}
	// Idempotent.
	if err := c.EnableSnapshot("conv", false); err != nil {
		t.Fatal("re-enable must be a no-op")
	}
	if err := c.EnableSnapshot("ghost", true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("enable on missing table: %v", err)
	}
}

func TestListSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		c.Create(Table{Name: n})
	}
	list := c.List()
	if len(list) != 3 || list[0].Name != "alpha" || list[2].Name != "zeta" {
		t.Fatalf("list = %v", list)
	}
}
