// Package catalog maintains table metadata: the IMMORTAL flag of Section
// 4.1, the snapshot-versioning flag, tree roots, and (for the SQL layer)
// column schemas. The catalog serializes to JSON; the engine stores it in
// the pager's meta area and logs full snapshots on DDL and root changes.
package catalog

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"immortaldb/internal/storage/page"
)

// ColType is a SQL-ish column type.
type ColType string

// Column types supported by the SQL layer.
const (
	TypeSmallInt ColType = "SMALLINT"
	TypeInt      ColType = "INT"
	TypeBigInt   ColType = "BIGINT"
	TypeVarChar  ColType = "VARCHAR"
	TypeDateTime ColType = "DATETIME"
)

// Column describes one table column.
type Column struct {
	Name       string  `json:"name"`
	Type       ColType `json:"type"`
	PrimaryKey bool    `json:"primary_key,omitempty"`
}

// Table is one table's metadata. The Immortal flag determines the three
// behaviours of Section 4.1: no version GC, PTT entries at commit, and AS OF
// queries. Snapshot marks conventional tables altered to keep recent
// versions for snapshot isolation.
type Table struct {
	ID         uint32   `json:"id"`
	Name       string   `json:"name"`
	Immortal   bool     `json:"immortal"`
	Snapshot   bool     `json:"snapshot"`
	Root       page.ID  `json:"root"`
	RootIsLeaf bool     `json:"root_is_leaf"`
	Columns    []Column `json:"columns,omitempty"`
}

// Versioned reports whether the table's records carry versioning tails.
func (t *Table) Versioned() bool { return t.Immortal || t.Snapshot }

// PrimaryKey returns the primary key column, if declared.
func (t *Table) PrimaryKey() (Column, bool) {
	for _, c := range t.Columns {
		if c.PrimaryKey {
			return c, true
		}
	}
	return Column{}, false
}

// Catalog is the table directory. It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]*Table
	byID   map[uint32]*Table
	nextID uint32
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		byName: make(map[string]*Table),
		byID:   make(map[uint32]*Table),
		nextID: 1,
	}
}

// Errors.
var (
	ErrExists   = fmt.Errorf("catalog: table already exists")
	ErrNotFound = fmt.Errorf("catalog: no such table")
)

// Create registers a new table and assigns its ID.
func (c *Catalog) Create(t Table) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[t.Name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, t.Name)
	}
	t.ID = c.nextID
	c.nextID++
	tt := &t
	c.byName[t.Name] = tt
	c.byID[t.ID] = tt
	return tt, nil
}

// Get returns a table by name.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return t, nil
}

// ByID returns a table by ID.
func (c *Catalog) ByID(id uint32) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.byID[id]
	return t, ok
}

// Drop removes a table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(c.byName, name)
	delete(c.byID, t.ID)
	return nil
}

// SetRoot updates a table's tree root.
func (c *Catalog) SetRoot(id uint32, root page.ID, isLeaf bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	t.Root = root
	t.RootIsLeaf = isLeaf
	return nil
}

// EnableSnapshot turns on snapshot versioning for a conventional table
// (ALTER TABLE ... ENABLE SNAPSHOT). It fails on tables already holding
// data, since their records lack versioning tails.
func (c *Catalog) EnableSnapshot(name string, empty bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if t.Immortal || t.Snapshot {
		return nil
	}
	if !empty {
		return fmt.Errorf("catalog: cannot enable snapshot on non-empty table %s", name)
	}
	t.Snapshot = true
	return nil
}

// List returns the tables sorted by name.
func (c *Catalog) List() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.byName))
	for _, t := range c.byName {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

type serialized struct {
	NextID uint32  `json:"next_id"`
	Tables []Table `json:"tables"`
}

// Marshal serializes the catalog.
func (c *Catalog) Marshal() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := serialized{NextID: c.nextID}
	for _, t := range c.List2Locked() {
		s.Tables = append(s.Tables, *t)
	}
	return json.Marshal(&s)
}

// List2Locked returns tables sorted by ID; the caller holds the lock.
func (c *Catalog) List2Locked() []*Table {
	out := make([]*Table, 0, len(c.byID))
	for _, t := range c.byID {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Load replaces the catalog's contents from a serialized snapshot.
func (c *Catalog) Load(data []byte) error {
	var s serialized
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("catalog: parse: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byName = make(map[string]*Table, len(s.Tables))
	c.byID = make(map[uint32]*Table, len(s.Tables))
	c.nextID = s.NextID
	if c.nextID == 0 {
		c.nextID = 1
	}
	for i := range s.Tables {
		t := s.Tables[i]
		tt := &t
		c.byName[t.Name] = tt
		c.byID[t.ID] = tt
	}
	return nil
}
