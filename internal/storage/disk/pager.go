// Package disk implements the page file: fixed-size pages addressed by
// page.ID, with CRC32C checksums, a persistent free list, and a small engine
// metadata area on page 0.
package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"immortaldb/internal/storage/page"
)

// Errors returned by the pager.
var (
	ErrChecksum  = errors.New("disk: page checksum mismatch")
	ErrBadMeta   = errors.New("disk: bad or foreign meta page")
	ErrOutOfFile = errors.New("disk: page beyond end of file")
	ErrClosed    = errors.New("disk: pager closed")
)

const (
	magic         = 0x494d4d44420a01 // "IMMDB\n" + version tag
	formatVersion = 1
	// metaFixedLen is the meta page layout after the frame header:
	// magic(8) version(4) pageSize(4) freeHead(8) metaLen(4).
	metaFixedLen = 8 + 4 + 4 + 8 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Pager manages a single page file. It is safe for concurrent use.
type Pager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages uint64 // includes the meta page
	freeHead page.ID
	meta     []byte
	closed   bool
	// syncs and writes count physical operations, for benchmarks.
	writes uint64
	reads  uint64
	syncs  uint64
}

// Open opens or creates the page file at path. For a new file, pageSize sets
// the page size; for an existing file pageSize must match the stored value
// (or be 0 to accept whatever the file uses).
func Open(path string, pageSize int) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat %s: %w", path, err)
	}
	p := &Pager{f: f}
	if st.Size() == 0 {
		if pageSize == 0 {
			pageSize = page.DefaultSize
		}
		if pageSize < page.MinSize {
			f.Close()
			return nil, fmt.Errorf("disk: page size %d below minimum %d", pageSize, page.MinSize)
		}
		p.pageSize = pageSize
		p.numPages = 1
		if err := p.writeMeta(); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	if err := p.readMeta(); err != nil {
		f.Close()
		return nil, err
	}
	if pageSize != 0 && pageSize != p.pageSize {
		f.Close()
		return nil, fmt.Errorf("%w: page size %d, file uses %d", ErrBadMeta, pageSize, p.pageSize)
	}
	// Derive the page count from the file size: it survives crashes that
	// happen after extending the file but before a meta write.
	p.numPages = uint64(st.Size()) / uint64(p.pageSize)
	if p.numPages == 0 {
		p.numPages = 1
	}
	return p, nil
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of pages in the file, the meta page included.
func (p *Pager) NumPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages
}

// Stats returns physical I/O counters: pages read, pages written, syncs.
func (p *Pager) Stats() (reads, writes, syncs uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reads, p.writes, p.syncs
}

func (p *Pager) writeMeta() error {
	buf := make([]byte, p.pageSize)
	buf[page.TypeOff] = byte(page.TypeMeta)
	off := page.PayloadOff
	binary.BigEndian.PutUint64(buf[off:], magic)
	binary.BigEndian.PutUint32(buf[off+8:], formatVersion)
	binary.BigEndian.PutUint32(buf[off+12:], uint32(p.pageSize))
	binary.BigEndian.PutUint64(buf[off+16:], uint64(p.freeHead))
	if page.PayloadOff+metaFixedLen+len(p.meta) > p.pageSize {
		return fmt.Errorf("disk: engine meta too large: %d bytes", len(p.meta))
	}
	binary.BigEndian.PutUint32(buf[off+24:], uint32(len(p.meta)))
	copy(buf[off+28:], p.meta)
	binary.BigEndian.PutUint32(buf[page.ChecksumOff:], crc32.Checksum(buf[4:], crcTable))
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("disk: write meta: %w", err)
	}
	p.writes++
	return nil
}

func (p *Pager) readMeta() error {
	// The page size is stored inside the page; bootstrap by reading a
	// minimal prefix first.
	head := make([]byte, page.PayloadOff+metaFixedLen)
	if _, err := p.f.ReadAt(head, 0); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMeta, err)
	}
	off := page.PayloadOff
	if binary.BigEndian.Uint64(head[off:]) != magic {
		return fmt.Errorf("%w: bad magic", ErrBadMeta)
	}
	if v := binary.BigEndian.Uint32(head[off+8:]); v != formatVersion {
		return fmt.Errorf("%w: format version %d", ErrBadMeta, v)
	}
	p.pageSize = int(binary.BigEndian.Uint32(head[off+12:]))
	if p.pageSize < page.MinSize {
		return fmt.Errorf("%w: page size %d", ErrBadMeta, p.pageSize)
	}
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMeta, err)
	}
	if got, want := crc32.Checksum(buf[4:], crcTable), binary.BigEndian.Uint32(buf[page.ChecksumOff:]); got != want {
		return fmt.Errorf("%w: meta page", ErrChecksum)
	}
	p.freeHead = page.ID(binary.BigEndian.Uint64(buf[off+16:]))
	n := binary.BigEndian.Uint32(buf[off+24:])
	if int(n) > p.pageSize-page.PayloadOff-metaFixedLen {
		return fmt.Errorf("%w: meta blob length %d", ErrBadMeta, n)
	}
	p.meta = append([]byte(nil), buf[off+28:off+28+int(n)]...)
	return nil
}

// GetMeta returns a copy of the engine metadata blob stored on page 0.
func (p *Pager) GetMeta() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.meta...)
}

// SetMeta stores the engine metadata blob and writes the meta page through.
func (p *Pager) SetMeta(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	old := p.meta
	p.meta = append([]byte(nil), b...)
	if err := p.writeMeta(); err != nil {
		p.meta = old
		return err
	}
	return nil
}

// MetaCapacity returns the maximum engine metadata blob size.
func (p *Pager) MetaCapacity() int {
	return p.pageSize - page.PayloadOff - metaFixedLen
}

// ReadPage reads page id into a freshly allocated buffer, verifying its
// checksum.
func (p *Pager) ReadPage(id page.ID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if uint64(id) >= p.numPages {
		return nil, fmt.Errorf("%w: page %d of %d", ErrOutOfFile, id, p.numPages)
	}
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: page %d", ErrOutOfFile, id)
		}
		return nil, fmt.Errorf("disk: read page %d: %w", id, err)
	}
	if got, want := crc32.Checksum(buf[4:], crcTable), binary.BigEndian.Uint32(buf[page.ChecksumOff:]); got != want {
		return nil, fmt.Errorf("%w: page %d", ErrChecksum, id)
	}
	p.reads++
	return buf, nil
}

// WritePage writes buf (exactly one page) to page id, stamping its checksum.
func (p *Pager) WritePage(id page.ID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writePageLocked(id, buf)
}

func (p *Pager) writePageLocked(id page.ID, buf []byte) error {
	if p.closed {
		return ErrClosed
	}
	if len(buf) != p.pageSize {
		return fmt.Errorf("disk: write of %d bytes to %d-byte page", len(buf), p.pageSize)
	}
	if uint64(id) >= p.numPages {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfFile, id, p.numPages)
	}
	binary.BigEndian.PutUint32(buf[page.ChecksumOff:], crc32.Checksum(buf[4:], crcTable))
	if _, err := p.f.WriteAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("disk: write page %d: %w", id, err)
	}
	p.writes++
	return nil
}

// Allocate returns a fresh page ID, reusing the free list when possible. The
// page's prior content is undefined; callers must fully write it.
func (p *Pager) Allocate() (page.ID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	if p.freeHead != 0 {
		id := p.freeHead
		buf := make([]byte, p.pageSize)
		if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
			return 0, fmt.Errorf("disk: read free page %d: %w", id, err)
		}
		if page.TypeOf(buf) != page.TypeFree {
			return 0, fmt.Errorf("disk: free list head %d is a %v page", id, page.TypeOf(buf))
		}
		p.freeHead = page.ID(binary.BigEndian.Uint64(buf[page.PayloadOff:]))
		return id, nil
	}
	id := page.ID(p.numPages)
	p.numPages++
	// Extend the file so the page is addressable; content stays undefined
	// until the caller writes it.
	if err := p.f.Truncate(int64(p.numPages) * int64(p.pageSize)); err != nil {
		p.numPages--
		return 0, fmt.Errorf("disk: extend file: %w", err)
	}
	return id, nil
}

// Free returns page id to the free list.
func (p *Pager) Free(id page.ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id == 0 || uint64(id) >= p.numPages {
		return fmt.Errorf("disk: cannot free page %d", id)
	}
	buf := make([]byte, p.pageSize)
	buf[page.TypeOff] = byte(page.TypeFree)
	binary.BigEndian.PutUint64(buf[page.PayloadOff:], uint64(p.freeHead))
	if err := p.writePageLocked(id, buf); err != nil {
		return err
	}
	p.freeHead = id
	return nil
}

// Sync persists the free-list head and engine meta, then fsyncs the file.
// Free-list updates between Syncs can be lost in a crash; lost pages leak
// (they are simply never reused), which is safe.
func (p *Pager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := p.writeMeta(); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync: %w", err)
	}
	p.syncs++
	return nil
}

// Close syncs and closes the file. The pager is unusable afterwards.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	err := p.writeMeta()
	if err2 := p.f.Sync(); err == nil {
		err = err2
	}
	if err2 := p.f.Close(); err == nil {
		err = err2
	}
	p.closed = true
	return err
}
