// Package disk implements the page file: fixed-size pages addressed by
// page.ID, with CRC32C checksums, a persistent free list, and a small engine
// metadata area kept in two alternating meta pages so a torn meta write can
// never brick the file.
package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"immortaldb/internal/storage/page"
	"immortaldb/internal/storage/vfs"
)

// Errors returned by the pager.
var (
	ErrChecksum  = errors.New("disk: page checksum mismatch")
	ErrBadMeta   = errors.New("disk: bad or foreign meta page")
	ErrOutOfFile = errors.New("disk: page beyond end of file")
	ErrClosed    = errors.New("disk: pager closed")
)

const (
	magic         = 0x494d4d44420a01 // "IMMDB\n" + version tag
	formatVersion = 2
	// metaFixedLen is the meta page layout after the frame header:
	// magic(8) version(4) pageSize(4) metaVer(8) freeHead(8) metaLen(4).
	metaFixedLen = 8 + 4 + 4 + 8 + 8 + 4
	// metaPages is the number of reserved meta pages at the front of the
	// file. Meta writes ping-pong between them (slot = metaVer % 2), and
	// every meta write is fsynced before the next one starts, so at any
	// instant at most one slot is at risk of tearing: Open recovers the
	// other, older slot. Data pages start at ID metaPages.
	metaPages = 2
)

// FirstDataPage is the ID of the first non-meta page — where a base-snapshot
// page copy starts.
const FirstDataPage = page.ID(metaPages)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Pager manages a single page file. It is safe for concurrent use.
type Pager struct {
	mu       sync.Mutex
	f        vfs.File
	pageSize int
	numPages uint64 // includes the meta pages
	metaVer  uint64 // version of the live meta slot; slot index = metaVer % 2
	freeHead page.ID
	meta     []byte
	closed   bool
	// syncs and writes count physical operations, for benchmarks.
	writes uint64
	reads  uint64
	syncs  uint64
}

// Open opens or creates the page file at path on the real filesystem. For a
// new file, pageSize sets the page size; for an existing file pageSize must
// match the stored value (or be 0 to accept whatever the file uses).
func Open(path string, pageSize int) (*Pager, error) {
	return OpenFS(vfs.OS(), path, pageSize)
}

// OpenFS is Open on an arbitrary filesystem — vfs.OS for production,
// vfs.SimFS for crash testing.
func OpenFS(fsys vfs.FS, path string, pageSize int) (*Pager, error) {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: size %s: %w", path, err)
	}
	p := &Pager{f: f}
	if size == 0 {
		if pageSize == 0 {
			pageSize = page.DefaultSize
		}
		if pageSize < page.MinSize {
			f.Close()
			return nil, fmt.Errorf("disk: page size %d below minimum %d", pageSize, page.MinSize)
		}
		p.pageSize = pageSize
		p.numPages = metaPages
		if err := f.Truncate(int64(metaPages) * int64(pageSize)); err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: extend file: %w", err)
		}
		// Write and fsync the initial meta so a crash after Open returns
		// finds at least one valid slot.
		if err := p.writeMeta(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: sync: %w", err)
		}
		return p, nil
	}
	if err := p.readMeta(pageSize); err != nil {
		f.Close()
		return nil, err
	}
	if pageSize != 0 && pageSize != p.pageSize {
		f.Close()
		return nil, fmt.Errorf("%w: page size %d, file uses %d", ErrBadMeta, pageSize, p.pageSize)
	}
	// Derive the page count from the file size: it survives crashes that
	// happen after extending the file but before a meta write.
	p.numPages = uint64(size) / uint64(p.pageSize)
	if p.numPages < metaPages {
		p.numPages = metaPages
	}
	return p, nil
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of pages in the file, the meta pages included.
func (p *Pager) NumPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages
}

// Stats returns physical I/O counters: pages read, pages written, syncs.
func (p *Pager) Stats() (reads, writes, syncs uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reads, p.writes, p.syncs
}

// writeMeta writes the next version of the meta into the alternate slot.
// Callers MUST make the write durable (fsync) before the next writeMeta, or
// a crash could tear both slots. On error the in-memory version is not
// advanced, so a retry targets the same slot.
func (p *Pager) writeMeta() error {
	if page.PayloadOff+metaFixedLen+len(p.meta) > p.pageSize {
		return fmt.Errorf("disk: engine meta too large: %d bytes", len(p.meta))
	}
	ver := p.metaVer + 1
	buf := make([]byte, p.pageSize)
	buf[page.TypeOff] = byte(page.TypeMeta)
	off := page.PayloadOff
	binary.BigEndian.PutUint64(buf[off:], magic)
	binary.BigEndian.PutUint32(buf[off+8:], formatVersion)
	binary.BigEndian.PutUint32(buf[off+12:], uint32(p.pageSize))
	binary.BigEndian.PutUint64(buf[off+16:], ver)
	binary.BigEndian.PutUint64(buf[off+24:], uint64(p.freeHead))
	binary.BigEndian.PutUint32(buf[off+32:], uint32(len(p.meta)))
	copy(buf[off+36:], p.meta)
	binary.BigEndian.PutUint32(buf[page.ChecksumOff:], crc32.Checksum(buf[4:], crcTable))
	slot := int64(ver % metaPages)
	if _, err := p.f.WriteAt(buf, slot*int64(p.pageSize)); err != nil {
		return fmt.Errorf("disk: write meta: %w", err)
	}
	p.metaVer = ver
	p.writes++
	return nil
}

// metaSlot holds one decoded meta page.
type metaSlot struct {
	pageSize int
	ver      uint64
	freeHead page.ID
	meta     []byte
}

// readSlot reads and validates the meta page in the given slot, assuming
// page size ps. It returns nil if the slot is absent, torn, or foreign.
func (p *Pager) readSlot(slot int, ps int) *metaSlot {
	buf := make([]byte, ps)
	if _, err := p.f.ReadAt(buf, int64(slot)*int64(ps)); err != nil {
		return nil
	}
	if got, want := crc32.Checksum(buf[4:], crcTable), binary.BigEndian.Uint32(buf[page.ChecksumOff:]); got != want {
		return nil
	}
	off := page.PayloadOff
	if binary.BigEndian.Uint64(buf[off:]) != magic {
		return nil
	}
	if binary.BigEndian.Uint32(buf[off+8:]) != formatVersion {
		return nil
	}
	m := &metaSlot{
		pageSize: int(binary.BigEndian.Uint32(buf[off+12:])),
		ver:      binary.BigEndian.Uint64(buf[off+16:]),
		freeHead: page.ID(binary.BigEndian.Uint64(buf[off+24:])),
	}
	if m.pageSize != ps {
		return nil // valid-looking page at the wrong granularity
	}
	if int(m.ver%metaPages) != slot {
		return nil // stale copy left behind in the wrong slot
	}
	n := binary.BigEndian.Uint32(buf[off+32:])
	if int(n) > ps-page.PayloadOff-metaFixedLen {
		return nil
	}
	m.meta = append([]byte(nil), buf[off+36:off+36+int(n)]...)
	return m
}

// readMeta locates the newest valid meta slot. The page size is stored
// inside the slots themselves, so it bootstraps from slot 0's header, the
// caller's hint, and a power-of-two probe — slot 1 lives at offset pageSize,
// which is unknowable until a size is assumed.
func (p *Pager) readMeta(hint int) error {
	var candidates []int
	seen := map[int]bool{}
	add := func(ps int) {
		if ps >= page.MinSize && !seen[ps] {
			seen[ps] = true
			candidates = append(candidates, ps)
		}
	}
	head := make([]byte, page.PayloadOff+metaFixedLen)
	if _, err := p.f.ReadAt(head, 0); err == nil &&
		binary.BigEndian.Uint64(head[page.PayloadOff:]) == magic {
		add(int(binary.BigEndian.Uint32(head[page.PayloadOff+12:])))
	}
	add(hint)
	for ps := page.MinSize; ps <= 1<<16; ps <<= 1 {
		add(ps)
	}
	for _, ps := range candidates {
		s0 := p.readSlot(0, ps)
		s1 := p.readSlot(1, ps)
		best := s0
		if best == nil || (s1 != nil && s1.ver > best.ver) {
			best = s1
		}
		if best == nil {
			continue
		}
		p.pageSize = best.pageSize
		p.metaVer = best.ver
		p.freeHead = best.freeHead
		p.meta = best.meta
		return nil
	}
	return fmt.Errorf("%w: no valid meta slot", ErrBadMeta)
}

// GetMeta returns a copy of the engine metadata blob.
func (p *Pager) GetMeta() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.meta...)
}

// SetMeta stores the engine metadata blob, writes the meta slot through, and
// fsyncs, honoring the one-slot-at-risk discipline.
func (p *Pager) SetMeta(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	old := p.meta
	p.meta = append([]byte(nil), b...)
	if err := p.writeMeta(); err != nil {
		p.meta = old
		return err
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync: %w", err)
	}
	return nil
}

// MetaCapacity returns the maximum engine metadata blob size.
func (p *Pager) MetaCapacity() int {
	return p.pageSize - page.PayloadOff - metaFixedLen
}

// ReadPage reads page id into a freshly allocated buffer, verifying its
// checksum.
func (p *Pager) ReadPage(id page.ID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if id < metaPages {
		return nil, fmt.Errorf("disk: page %d is a meta page", id)
	}
	if uint64(id) >= p.numPages {
		return nil, fmt.Errorf("%w: page %d of %d", ErrOutOfFile, id, p.numPages)
	}
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: page %d", ErrOutOfFile, id)
		}
		return nil, fmt.Errorf("disk: read page %d: %w", id, err)
	}
	if got, want := crc32.Checksum(buf[4:], crcTable), binary.BigEndian.Uint32(buf[page.ChecksumOff:]); got != want {
		return nil, fmt.Errorf("%w: page %d", ErrChecksum, id)
	}
	p.reads++
	return buf, nil
}

// WritePage writes buf (exactly one page) to page id, stamping its checksum.
func (p *Pager) WritePage(id page.ID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writePageLocked(id, buf)
}

func (p *Pager) writePageLocked(id page.ID, buf []byte) error {
	if p.closed {
		return ErrClosed
	}
	if len(buf) != p.pageSize {
		return fmt.Errorf("disk: write of %d bytes to %d-byte page", len(buf), p.pageSize)
	}
	if id < metaPages {
		return fmt.Errorf("disk: page %d is a meta page", id)
	}
	if uint64(id) >= p.numPages {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfFile, id, p.numPages)
	}
	binary.BigEndian.PutUint32(buf[page.ChecksumOff:], crc32.Checksum(buf[4:], crcTable))
	if _, err := p.f.WriteAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("disk: write page %d: %w", id, err)
	}
	p.writes++
	return nil
}

// Allocate returns a fresh page ID, reusing the free list when possible. The
// page's prior content is undefined; callers must fully write it.
func (p *Pager) Allocate() (page.ID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	if p.freeHead != 0 {
		id := p.freeHead
		buf := make([]byte, p.pageSize)
		if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
			return 0, fmt.Errorf("disk: read free page %d: %w", id, err)
		}
		if page.TypeOf(buf) != page.TypeFree {
			return 0, fmt.Errorf("disk: free list head %d is a %v page", id, page.TypeOf(buf))
		}
		p.freeHead = page.ID(binary.BigEndian.Uint64(buf[page.PayloadOff:]))
		return id, nil
	}
	id := page.ID(p.numPages)
	p.numPages++
	// Extend the file so the page is addressable; content stays undefined
	// until the caller writes it.
	if err := p.f.Truncate(int64(p.numPages) * int64(p.pageSize)); err != nil {
		p.numPages--
		return 0, fmt.Errorf("disk: extend file: %w", err)
	}
	return id, nil
}

// Free returns page id to the free list.
func (p *Pager) Free(id page.ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id < metaPages || uint64(id) >= p.numPages {
		return fmt.Errorf("disk: cannot free page %d", id)
	}
	buf := make([]byte, p.pageSize)
	buf[page.TypeOff] = byte(page.TypeFree)
	binary.BigEndian.PutUint64(buf[page.PayloadOff:], uint64(p.freeHead))
	if err := p.writePageLocked(id, buf); err != nil {
		return err
	}
	p.freeHead = id
	return nil
}

// Sync persists the free-list head and engine meta, then fsyncs the file.
// Free-list updates between Syncs can be lost in a crash; lost pages leak
// (they are simply never reused), which is safe.
func (p *Pager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := p.writeMeta(); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync: %w", err)
	}
	p.syncs++
	return nil
}

// Close syncs and closes the file. The pager is unusable afterwards.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	err := p.writeMeta()
	if err2 := p.f.Sync(); err == nil {
		err = err2
	}
	if err2 := p.f.Close(); err == nil {
		err = err2
	}
	p.closed = true
	return err
}
