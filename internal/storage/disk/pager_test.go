package disk

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"immortaldb/internal/storage/page"
)

func openTemp(t *testing.T, pageSize int) (*Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.pages")
	p, err := Open(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, path
}

func mkPage(p *Pager, fill byte) []byte {
	buf := make([]byte, p.PageSize())
	buf[page.TypeOff] = byte(page.TypeBlob)
	for i := page.PayloadOff; i < len(buf); i++ {
		buf[i] = fill
	}
	return buf
}

func TestAllocateWriteRead(t *testing.T) {
	p, _ := openTemp(t, 512)
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("allocated the meta page")
	}
	in := mkPage(p, 0xAB)
	if err := p.WritePage(id, in); err != nil {
		t.Fatal(err)
	}
	out, err := p.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in[4:], out[4:]) {
		t.Fatal("read back different bytes")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	p, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	if err := p.WritePage(id, mkPage(p, 0x7)); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMeta([]byte("hello-meta")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	q, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.PageSize() != 512 {
		t.Fatalf("page size = %d", q.PageSize())
	}
	if got := q.GetMeta(); string(got) != "hello-meta" {
		t.Fatalf("meta = %q", got)
	}
	out, err := q.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if out[page.PayloadOff] != 0x7 {
		t.Fatal("page content lost")
	}
	if _, err := Open(path, 1024); err == nil {
		t.Fatal("mismatched page size accepted")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	p, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	if err := p.WritePage(id, mkPage(p, 1)); err != nil {
		t.Fatal(err)
	}
	p.Close()

	// Flip one byte in the page body.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(id)*512 + 100
	f.WriteAt([]byte{0xFF}, off)
	f.Close()

	q, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.ReadPage(id); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestFreeListReuse(t *testing.T) {
	p, _ := openTemp(t, 512)
	a, _ := p.Allocate()
	b, _ := p.Allocate()
	c, _ := p.Allocate()
	for _, id := range []page.ID{a, b, c} {
		if err := p.WritePage(id, mkPage(p, byte(id))); err != nil {
			t.Fatal(err)
		}
	}
	n := p.NumPages()
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	// LIFO reuse: a then b, without extending the file.
	got1, _ := p.Allocate()
	got2, _ := p.Allocate()
	if got1 != a || got2 != b {
		t.Fatalf("reuse order = %d,%d want %d,%d", got1, got2, a, b)
	}
	if p.NumPages() != n {
		t.Fatalf("file grew during reuse: %d -> %d", n, p.NumPages())
	}
	got3, _ := p.Allocate()
	if got3 != page.ID(n) {
		t.Fatalf("exhausted free list should extend: got %d want %d", got3, n)
	}
}

func TestFreeListSurvivesSyncAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	p, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Allocate()
	if err := p.WritePage(a, mkPage(p, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	p.Close() // close persists meta incl. free head

	q, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	got, err := q.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("freed page not reused after reopen: got %d want %d", got, a)
	}
}

func TestErrors(t *testing.T) {
	p, _ := openTemp(t, 512)
	if _, err := p.ReadPage(99); !errors.Is(err, ErrOutOfFile) {
		t.Fatalf("read past end: %v", err)
	}
	if err := p.WritePage(99, make([]byte, 512)); !errors.Is(err, ErrOutOfFile) {
		t.Fatalf("write past end: %v", err)
	}
	id, _ := p.Allocate()
	if err := p.WritePage(id, make([]byte, 100)); err == nil {
		t.Fatal("short write accepted")
	}
	if err := p.Free(0); err == nil {
		t.Fatal("freeing meta page accepted")
	}
	p.Close()
	if _, err := p.Allocate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("use after close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestMetaCapacityEnforced(t *testing.T) {
	p, _ := openTemp(t, 512)
	if err := p.SetMeta(make([]byte, p.MetaCapacity())); err != nil {
		t.Fatalf("max-size meta rejected: %v", err)
	}
	if err := p.SetMeta(make([]byte, p.MetaCapacity()+1)); err == nil {
		t.Fatal("oversized meta accepted")
	}
	// Failed SetMeta must not clobber the old meta.
	if got := len(p.GetMeta()); got != p.MetaCapacity() {
		t.Fatalf("meta after failed set = %d bytes", got)
	}
}

func TestStatsCount(t *testing.T) {
	p, _ := openTemp(t, 512)
	id, _ := p.Allocate()
	_ = p.WritePage(id, mkPage(p, 1))
	_, _ = p.ReadPage(id)
	_ = p.Sync()
	r, w, s := p.Stats()
	if r != 1 || w < 2 || s != 1 { // writes: meta(on create) + page (+ sync meta)
		t.Fatalf("stats = %d reads %d writes %d syncs", r, w, s)
	}
}
