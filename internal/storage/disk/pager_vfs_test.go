package disk

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"immortaldb/internal/storage/page"
	"immortaldb/internal/storage/vfs"
)

func TestOpenFSOnSimDisk(t *testing.T) {
	fs := vfs.NewSim(1)
	p, err := OpenFS(fs, "db.pages", 512)
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(id, mkPage(p, 0x5A)); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMeta([]byte("sim-meta")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	q, err := OpenFS(fs, "db.pages", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if string(q.GetMeta()) != "sim-meta" {
		t.Fatalf("meta = %q", q.GetMeta())
	}
	out, err := q.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if out[page.PayloadOff] != 0x5A {
		t.Fatal("page content lost")
	}
}

// A torn write to one meta slot must fall back to the other slot's older,
// intact meta rather than failing to open.
func TestTornMetaSlotRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	p, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetMeta([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMeta([]byte("new")); err != nil {
		t.Fatal(err)
	}
	live := int64(p.metaVer % metaPages)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Close wrote yet another version into the alternate slot; tear THAT
	// (the newest) slot and check Open falls back to "new" from the other.
	tornSlot := (live + 1) % metaPages
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xDE, 0xAD}, tornSlot*512+100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q, err := Open(path, 0)
	if err != nil {
		t.Fatalf("open with one torn slot: %v", err)
	}
	defer q.Close()
	if string(q.GetMeta()) != "new" {
		t.Fatalf("meta = %q, want the surviving slot's %q", q.GetMeta(), "new")
	}
}

// Both slots torn means the file is genuinely unrecoverable: Open must fail
// cleanly, not panic or invent state.
func TestBothMetaSlotsTornFailsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	p, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	f.WriteAt([]byte{0xFF}, 50)      // slot 0
	f.WriteAt([]byte{0xFF}, 512+50)  // slot 1
	f.Close()
	if _, err := Open(path, 0); !errors.Is(err, ErrBadMeta) {
		t.Fatalf("err = %v, want ErrBadMeta", err)
	}
}

// Torn slot 0 also destroys the stored page size; Open must still find slot
// 1 by probing (the caller passes 0, knowing nothing).
func TestTornSlotZeroBootstrapsFromProbe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.pages")
	p, err := Open(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetMeta([]byte("probe-me")); err != nil {
		t.Fatal(err)
	}
	// Arrange for slot 0 to receive the final (Close-time) meta write, so
	// slot 1 keeps an older valid copy; then destroy slot 0, magic included.
	for (p.metaVer+1)%metaPages != 0 {
		if err := p.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	zero := make([]byte, 1024)
	f.WriteAt(zero, 0)
	f.Close()

	q, err := Open(path, 0)
	if err != nil {
		t.Fatalf("open with slot 0 destroyed: %v", err)
	}
	defer q.Close()
	if q.PageSize() != 1024 {
		t.Fatalf("page size = %d", q.PageSize())
	}
	if string(q.GetMeta()) != "probe-me" {
		t.Fatalf("meta = %q", q.GetMeta())
	}
}

func TestMetaPagesProtected(t *testing.T) {
	p, _ := openTemp(t, 512)
	if _, err := p.ReadPage(0); err == nil {
		t.Fatal("read of meta page 0 accepted")
	}
	if _, err := p.ReadPage(1); err == nil {
		t.Fatal("read of meta page 1 accepted")
	}
	if err := p.WritePage(1, make([]byte, 512)); err == nil {
		t.Fatal("write to meta page 1 accepted")
	}
	if err := p.Free(1); err == nil {
		t.Fatal("freeing meta page 1 accepted")
	}
}
