package page

import (
	"fmt"

	"immortaldb/internal/itime"
)

// TimeSplit performs the paper's page time split (Section 3.3, Figure 3).
// It moves historical record versions out of the current page p into a new
// historical page and shrinks p in place. splitTS becomes the new start of
// p's time range; the historical page covers [old StartTS, splitTS) and is
// linked at the head of p's history chain.
//
// Version assignment follows the four cases of Figure 3, with a version's
// lifetime [start, end) determined by its own timestamp and its successor's:
//
//  1. end <= splitTS: moved to the historical page;
//  2. start < splitTS < end: copied to the historical page and (redundantly)
//     kept in the current page — except delete stubs, which are dropped from
//     the current page since absence already means "deleted" there;
//  3. start >= splitTS: kept only in the current page;
//  4. non-timestamped (uncommitted) versions: kept only in the current page.
//
// Every committed version must be stamped before calling TimeSplit — the
// caller triggers lazy timestamping first (Section 2.2, "when we time split
// a page ... we timestamp all versions from committed transactions").
//
// The returned historical page may be empty (NumVersions() == 0) when the
// split freed no space; the caller should then fall back to a key split.
func (p *DataPage) TimeSplit(splitTS itime.Timestamp, histID ID) (*DataPage, error) {
	if !p.Current {
		return nil, fmt.Errorf("page %d: time split of a historical page", p.ID)
	}
	if !p.StartTS.Less(splitTS) {
		return nil, fmt.Errorf("page %d: split time %v not after page start %v", p.ID, splitTS, p.StartTS)
	}
	hist := &DataPage{
		ID:         histID,
		Size:       p.Size,
		Current:    false,
		NoTail:     p.NoTail,
		Hist:       p.Hist,
		StartTS:    p.StartTS,
		EndTS:      splitTS,
		LowKey:     cloneKey(p.LowKey),
		HighKey:    cloneKey(p.HighKey),
		cachedUsed: -1,
	}

	succ := p.successors()
	var curRecs []Version
	var curSlots []int16

	for s := range p.Slots {
		chain := p.Chain(s) // newest first
		// Walk oldest -> newest so chains build in time order on both sides.
		var histPrev = NoPrev
		var curPrev = NoPrev
		keyHasCur := false
		for ci := len(chain) - 1; ci >= 0; ci-- {
			i := chain[ci]
			v := p.Recs[i]
			switch {
			case !v.Stamped:
				// Case 4: uncommitted, current page only.
				v.Prev = curPrev
				curRecs = append(curRecs, v)
				curPrev = int16(len(curRecs) - 1)
				keyHasCur = true
			default:
				start := v.TS
				end := p.EndOf(i, succ)
				toHist := start.Less(splitTS)
				toCur := end.After(splitTS)
				if v.Stub && start.Less(splitTS) {
					// Stubs earlier than the split time are removed from the
					// current page (Section 3.3).
					toCur = false
				}
				if toHist {
					hv := v
					hv.Prev = histPrev
					if err := hist.insert(hv); err != nil {
						return nil, fmt.Errorf("page %d: historical page overflow: %w", p.ID, err)
					}
					// insert placed it as the new chain head with Prev set by
					// FindSlot chaining; fix the explicit Prev we computed.
					hist.Recs[len(hist.Recs)-1].Prev = histPrev
					histPrev = int16(len(hist.Recs) - 1)
				}
				if toCur {
					cv := v
					cv.Prev = curPrev
					curRecs = append(curRecs, cv)
					curPrev = int16(len(curRecs) - 1)
					keyHasCur = true
				}
			}
		}
		if keyHasCur {
			curSlots = append(curSlots, curPrev)
		}
	}

	p.Recs = curRecs
	p.Slots = curSlots
	p.Hist = hist.ID
	p.StartTS = splitTS
	p.invalidateUsed()
	return hist, nil
}

// KeySplit performs a B-tree style key split of a current page (Section 3.3):
// the upper part of the key space, version chains included, moves to a new
// current page. It returns the separator key; p keeps [LowKey, sep) and the
// new right page covers [sep, HighKey). Both pages remain current, share p's
// time-range start, and share p's history chain — versions for both key
// subranges historically lived in the common ancestor pages.
func (p *DataPage) KeySplit(rightID ID) (sep []byte, right *DataPage, err error) {
	if !p.Current {
		return nil, nil, fmt.Errorf("page %d: key split of a historical page", p.ID)
	}
	if len(p.Slots) < 2 {
		return nil, nil, fmt.Errorf("page %d: key split needs at least 2 keys, have %d", p.ID, len(p.Slots))
	}
	// Balance by marshalled bytes, not key count: chains vary in length.
	chainBytes := make([]int, len(p.Slots))
	total := 0
	for s := range p.Slots {
		for i := p.Slots[s]; i != NoPrev; i = p.Recs[i].Prev {
			chainBytes[s] += p.Recs[i].size(p.NoTail) + slotLen
		}
		total += chainBytes[s]
	}
	splitAt := len(p.Slots) / 2
	cum := 0
	for s := range p.Slots {
		cum += chainBytes[s]
		if cum*2 >= total {
			splitAt = s + 1
			break
		}
	}
	if splitAt < 1 {
		splitAt = 1
	}
	if splitAt >= len(p.Slots) {
		splitAt = len(p.Slots) - 1
	}
	sep = cloneKey(p.Recs[p.Slots[splitAt]].Key)

	right = &DataPage{
		ID:         rightID,
		Size:       p.Size,
		Current:    true,
		NoTail:     p.NoTail,
		Hist:       p.Hist,
		StartTS:    p.StartTS,
		EndTS:      itime.Max,
		LowKey:     cloneKey(sep),
		HighKey:    cloneKey(p.HighKey),
		cachedUsed: -1,
	}

	// Move the upper chains to the right page, oldest first per key.
	for s := splitAt; s < len(p.Slots); s++ {
		chain := p.Chain(s)
		prev := NoPrev
		for ci := len(chain) - 1; ci >= 0; ci-- {
			v := p.Recs[chain[ci]]
			v.Prev = prev
			right.Recs = append(right.Recs, v)
			prev = int16(len(right.Recs) - 1)
		}
		right.Slots = append(right.Slots, prev)
	}

	// Rebuild the left page with only the lower chains.
	var leftRecs []Version
	var leftSlots []int16
	for s := 0; s < splitAt; s++ {
		chain := p.Chain(s)
		prev := NoPrev
		for ci := len(chain) - 1; ci >= 0; ci-- {
			v := p.Recs[chain[ci]]
			v.Prev = prev
			leftRecs = append(leftRecs, v)
			prev = int16(len(leftRecs) - 1)
		}
		leftSlots = append(leftSlots, prev)
	}
	p.Recs = leftRecs
	p.Slots = leftSlots
	p.HighKey = cloneKey(sep)
	p.invalidateUsed()
	right.invalidateUsed()
	return sep, right, nil
}

func cloneKey(k []byte) []byte {
	if k == nil {
		return nil
	}
	out := make([]byte, len(k))
	copy(out, k)
	return out
}
