package page

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"immortaldb/internal/itime"
)

func ts(wall int64, seq uint32) itime.Timestamp { return itime.Timestamp{Wall: wall, Seq: seq} }

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

// stamp stamps every unstamped version of tid on p with time t.
func stampTID(p *DataPage, tid itime.TID, t itime.Timestamp) int {
	m := p.StampAll(func(id itime.TID) (itime.Timestamp, bool) {
		if id == tid {
			return t, true
		}
		return itime.Timestamp{}, false
	})
	return m[tid]
}

func TestInsertAndFind(t *testing.T) {
	p := NewData(1, DefaultSize)
	for i := 0; i < 10; i++ {
		if err := p.Insert(key(i), val(i), false, 7); err != nil {
			t.Fatal(err)
		}
	}
	if p.NumKeys() != 10 || p.NumVersions() != 10 {
		t.Fatalf("keys=%d versions=%d", p.NumKeys(), p.NumVersions())
	}
	for i := 0; i < 10; i++ {
		s, found := p.FindSlot(key(i))
		if !found {
			t.Fatalf("key %d not found", i)
		}
		v := p.Latest(s)
		if !bytes.Equal(v.Value, val(i)) {
			t.Fatalf("key %d: wrong value %q", i, v.Value)
		}
		if v.Stamped || v.TID != 7 {
			t.Fatalf("fresh version must carry its TID: %+v", v)
		}
	}
	if _, found := p.FindSlot([]byte("nope")); found {
		t.Fatal("found nonexistent key")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertKeepsSlotOrder(t *testing.T) {
	p := NewData(1, DefaultSize)
	order := rand.New(rand.NewSource(42)).Perm(50)
	for _, i := range order {
		if err := p.Insert(key(i), val(i), false, 1); err != nil {
			t.Fatal(err)
		}
	}
	for s := 1; s < p.NumKeys(); s++ {
		if bytes.Compare(p.Latest(s-1).Key, p.Latest(s).Key) >= 0 {
			t.Fatalf("slots out of order at %d", s)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionChain(t *testing.T) {
	p := NewData(1, DefaultSize)
	// Figure 2: Transaction I inserts A and B; II updates A; III updates both.
	mustInsert(t, p, []byte("A"), []byte("a0"), 1)
	mustInsert(t, p, []byte("B"), []byte("b0"), 1)
	stampTID(p, 1, ts(10, 0))
	mustInsert(t, p, []byte("A"), []byte("a1"), 2)
	stampTID(p, 2, ts(11, 0))
	mustInsert(t, p, []byte("A"), []byte("a2"), 3)
	mustInsert(t, p, []byte("B"), []byte("b1"), 3)
	stampTID(p, 3, ts(12, 0))

	sA, _ := p.FindSlot([]byte("A"))
	if got := p.ChainLen(sA); got != 3 {
		t.Fatalf("A chain length = %d, want 3", got)
	}
	chain := p.Chain(sA)
	wantVals := []string{"a2", "a1", "a0"}
	for i, idx := range chain {
		if string(p.Recs[idx].Value) != wantVals[i] {
			t.Fatalf("chain[%d] = %q, want %q", i, p.Recs[idx].Value, wantVals[i])
		}
	}
	sB, _ := p.FindSlot([]byte("B"))
	if got := p.ChainLen(sB); got != 2 {
		t.Fatalf("B chain length = %d, want 2", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionAsOf(t *testing.T) {
	p := NewData(1, DefaultSize)
	mustInsert(t, p, []byte("A"), []byte("a0"), 1)
	stampTID(p, 1, ts(10, 0))
	mustInsert(t, p, []byte("A"), []byte("a1"), 2)
	stampTID(p, 2, ts(20, 0))
	mustInsert(t, p, []byte("A"), nil, 3) // delete stub (pending)
	s, _ := p.FindSlot([]byte("A"))

	cases := []struct {
		at   itime.Timestamp
		want string
		ok   bool
		stub bool
	}{
		{ts(5, 0), "", false, false},
		{ts(10, 0), "a0", true, false},
		{ts(15, 9), "a0", true, false},
		{ts(20, 0), "a1", true, false},
		{ts(99, 0), "a1", true, false}, // stub not yet stamped: invisible
	}
	for _, c := range cases {
		v, ok := p.VersionAsOf(s, c.at)
		if ok != c.ok {
			t.Fatalf("as of %v: ok=%v want %v", c.at, ok, c.ok)
		}
		if ok && string(v.Value) != c.want {
			t.Fatalf("as of %v: got %q want %q", c.at, v.Value, c.want)
		}
	}
	// Stamp the stub: now it is the visible version after t=30.
	stampTID(p, 3, ts(30, 0))
	v, ok := p.VersionAsOf(s, ts(31, 0))
	if !ok || !v.Stub {
		t.Fatalf("as of after delete: want stub, got %+v ok=%v", v, ok)
	}
}

func TestInsertUpdateOnStubThenReinsert(t *testing.T) {
	p := NewData(1, DefaultSize)
	mustInsert(t, p, []byte("A"), []byte("a0"), 1)
	stampTID(p, 1, ts(10, 0))
	mustInsert(t, p, []byte("A"), nil, 2) // delete
	if !p.Latest(0).Stub {
		t.Fatal("latest should be a stub")
	}
	stampTID(p, 2, ts(20, 0))
	mustInsert(t, p, []byte("A"), []byte("a1"), 3) // re-insert after delete
	stampTID(p, 3, ts(30, 0))
	s, _ := p.FindSlot([]byte("A"))
	if got := p.ChainLen(s); got != 3 {
		t.Fatalf("chain length = %d, want 3 (v0, stub, v1)", got)
	}
	if v, ok := p.VersionAsOf(s, ts(25, 0)); !ok || !v.Stub {
		t.Fatalf("as of between delete and reinsert: want stub, got %+v", v)
	}
	if v, ok := p.VersionAsOf(s, ts(30, 0)); !ok || string(v.Value) != "a1" {
		t.Fatalf("as of after reinsert: got %+v", v)
	}
}

func TestPageFull(t *testing.T) {
	p := NewData(1, MinSize)
	var err error
	inserted := 0
	for i := 0; i < 1000; i++ {
		err = p.Insert(key(i), val(i), false, 1)
		if err != nil {
			break
		}
		inserted++
	}
	if err == nil {
		t.Fatal("page never filled")
	}
	if err != ErrPageFull {
		t.Fatalf("err = %v, want ErrPageFull", err)
	}
	if inserted == 0 {
		t.Fatal("nothing fit in a MinSize page")
	}
	if p.Used() > MinSize {
		t.Fatalf("Used %d exceeds page size %d", p.Used(), MinSize)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertTooLarge(t *testing.T) {
	p := NewData(1, MinSize)
	big := make([]byte, MinSize)
	err := p.Insert([]byte("k"), big, false, 1)
	if err == nil || err == ErrPageFull {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestUndoInsert(t *testing.T) {
	p := NewData(1, DefaultSize)
	mustInsert(t, p, []byte("A"), []byte("a0"), 1)
	stampTID(p, 1, ts(10, 0))
	mustInsert(t, p, []byte("A"), []byte("a1"), 2)
	mustInsert(t, p, []byte("B"), []byte("b0"), 2)

	if err := p.UndoInsert([]byte("A"), 2); err != nil {
		t.Fatal(err)
	}
	s, found := p.FindSlot([]byte("A"))
	if !found {
		t.Fatal("A vanished")
	}
	if got := string(p.Latest(s).Value); got != "a0" {
		t.Fatalf("after undo, latest A = %q", got)
	}
	if err := p.UndoInsert([]byte("B"), 2); err != nil {
		t.Fatal(err)
	}
	if _, found := p.FindSlot([]byte("B")); found {
		t.Fatal("B should be fully removed")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Undoing a stamped or wrong-TID version must fail.
	if err := p.UndoInsert([]byte("A"), 2); err == nil {
		t.Fatal("undo of stamped version should fail")
	}
	if err := p.UndoInsert([]byte("missing"), 2); err == nil {
		t.Fatal("undo of missing key should fail")
	}
}

func TestStampAllCountsPerTID(t *testing.T) {
	p := NewData(1, DefaultSize)
	mustInsert(t, p, []byte("A"), []byte("a"), 1)
	mustInsert(t, p, []byte("B"), []byte("b"), 1)
	mustInsert(t, p, []byte("C"), []byte("c"), 2)
	mustInsert(t, p, []byte("D"), []byte("d"), 3) // still active

	commits := map[itime.TID]itime.Timestamp{1: ts(10, 1), 2: ts(10, 2)}
	m := p.StampAll(func(tid itime.TID) (itime.Timestamp, bool) {
		t, ok := commits[tid]
		return t, ok
	})
	if m[1] != 2 || m[2] != 1 {
		t.Fatalf("stamped counts = %v", m)
	}
	if _, ok := m[3]; ok {
		t.Fatal("active transaction must not be stamped")
	}
	if !p.HasUnstamped() {
		t.Fatal("version of active txn should remain unstamped")
	}
	// Idempotent: second call stamps nothing new.
	if m2 := p.StampAll(func(tid itime.TID) (itime.Timestamp, bool) {
		t, ok := commits[tid]
		return t, ok
	}); len(m2) != 0 {
		t.Fatalf("restamp = %v, want empty", m2)
	}
	s, _ := p.FindSlot([]byte("A"))
	if v := p.Latest(s); !v.Stamped || v.TS != ts(10, 1) || v.TID != 0 {
		t.Fatalf("stamped version wrong: %+v", v)
	}
}

func TestOldestStart(t *testing.T) {
	p := NewData(1, DefaultSize)
	if !p.OldestStart().IsZero() {
		t.Fatal("empty page oldest start")
	}
	mustInsert(t, p, []byte("A"), []byte("a"), 1)
	stampTID(p, 1, ts(30, 0))
	mustInsert(t, p, []byte("B"), []byte("b"), 2)
	stampTID(p, 2, ts(20, 0))
	mustInsert(t, p, []byte("C"), []byte("c"), 3) // unstamped
	if got := p.OldestStart(); got != ts(20, 0) {
		t.Fatalf("OldestStart = %v", got)
	}
}

func TestGCOlderThan(t *testing.T) {
	p := NewData(1, DefaultSize)
	// Key A: versions at 10, 20, 30.
	for i, at := range []int64{10, 20, 30} {
		mustInsert(t, p, []byte("A"), []byte(fmt.Sprintf("a%d", i)), itime.TID(i+1))
		stampTID(p, itime.TID(i+1), ts(at, 0))
	}
	// Key B: version at 10, stub at 20 (deleted).
	mustInsert(t, p, []byte("B"), []byte("b0"), 10)
	stampTID(p, 10, ts(10, 0))
	mustInsert(t, p, []byte("B"), nil, 11)
	stampTID(p, 11, ts(20, 0))

	removed := p.GCOlderThan(ts(25, 0))
	// A: version@20 is visible at 25, version@10 removable, version@30 kept.
	// B: stub@20 visible at 25 and is chain head -> whole slot removable.
	if removed != 3 {
		t.Fatalf("removed = %d, want 3", removed)
	}
	sA, found := p.FindSlot([]byte("A"))
	if !found || p.ChainLen(sA) != 2 {
		t.Fatalf("A chain after GC: found=%v len=%d", found, p.ChainLen(sA))
	}
	if _, found := p.FindSlot([]byte("B")); found {
		t.Fatal("deleted B should be fully reclaimed")
	}
	if v, ok := p.VersionAsOf(sA, ts(25, 0)); !ok || string(v.Value) != "a1" {
		t.Fatalf("visibility at cutoff broken: %+v ok=%v", v, ok)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGCKeepsUnstampedAndRecent(t *testing.T) {
	p := NewData(1, DefaultSize)
	mustInsert(t, p, []byte("A"), []byte("a0"), 1)
	stampTID(p, 1, ts(10, 0))
	mustInsert(t, p, []byte("A"), []byte("a1"), 2) // unstamped head
	if removed := p.GCOlderThan(ts(50, 0)); removed != 0 {
		t.Fatalf("removed = %d; the stamped version is still visible at cutoff", removed)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInKeyRange(t *testing.T) {
	p := NewData(1, DefaultSize)
	p.LowKey = []byte("b")
	p.HighKey = []byte("m")
	cases := map[string]bool{"a": false, "b": true, "c": true, "lzzz": true, "m": false, "z": false}
	for k, want := range cases {
		if got := p.InKeyRange([]byte(k)); got != want {
			t.Errorf("InKeyRange(%q) = %v, want %v", k, got, want)
		}
	}
	p.LowKey, p.HighKey = nil, nil
	if !p.InKeyRange([]byte("anything")) {
		t.Error("unbounded page must contain every key")
	}
}

// Property: random interleavings of inserts, updates, stamps and undos keep
// the page structurally valid, and Used() never exceeds the page size.
func TestPageRandomOpsInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewData(1, 1024)
		nextTID := itime.TID(1)
		wall := int64(100)
		type pending struct {
			tid  itime.TID
			keys [][]byte
		}
		var open *pending
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0, 1: // write in open txn (start one if needed)
				if open == nil {
					open = &pending{tid: nextTID}
					nextTID++
				}
				k := key(rng.Intn(20))
				var v []byte
				stub := rng.Intn(8) == 0
				if !stub {
					v = val(rng.Intn(1000))
				}
				if err := p.Insert(k, v, stub, open.tid); err == nil {
					open.keys = append(open.keys, k)
				}
			case 2: // commit: stamp
				if open != nil {
					wall++
					stampTID(p, open.tid, ts(wall, 0))
					open = nil
				}
			case 3: // abort: undo in reverse order
				if open != nil {
					for i := len(open.keys) - 1; i >= 0; i-- {
						if err := p.UndoInsert(open.keys[i], open.tid); err != nil {
							return false
						}
					}
					open = nil
				}
			case 4: // GC
				p.GCOlderThan(ts(wall-int64(rng.Intn(20)), 0))
			}
			if p.Used() > 1024 {
				t.Logf("seed %d: Used %d > 1024", seed, p.Used())
				return false
			}
			if err := p.Validate(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func mustInsert(t *testing.T, p *DataPage, k, v []byte, tid itime.TID) {
	t.Helper()
	stub := v == nil
	if err := p.Insert(k, v, stub, tid); err != nil {
		t.Fatalf("insert %q: %v", k, err)
	}
}
