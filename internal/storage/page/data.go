package page

import (
	"bytes"
	"fmt"
	"sort"

	"immortaldb/internal/itime"
)

// DataPage is a slotted page of record versions. The slot array holds, per
// distinct key, the index of the *latest* version; older versions hang off
// the latest via the Prev chain (the VP field of the versioning tail). A
// current transaction therefore sees exactly the records a conventional
// slotted page would show it (Section 3.2).
//
// Current pages cover the time range [StartTS, +inf); historical pages cover
// [StartTS, EndTS). StartTS is the paper's "split time" header field and
// Hist its "history pointer".
type DataPage struct {
	ID  ID
	LSN uint64

	// Size is the page capacity in bytes. It is not marshalled; NewData and
	// Unmarshal set it. Zero falls back to DefaultSize.
	Size int

	// Current marks a page holding the current database state; false marks a
	// historical page produced by a time split.
	Current bool
	// NoTail marks a conventional (non-versioned, non-snapshot) table page
	// whose records carry no 14-byte versioning tail, preserving the paper's
	// claim of zero storage overhead for conventional tables.
	NoTail bool

	// Hist points to the newest historical page holding versions that once
	// lived in this page; 0 if none.
	Hist ID
	// StartTS is the start of this page's time range (the split time of the
	// most recent time split, or zero if never split).
	StartTS itime.Timestamp
	// EndTS is the exclusive end of a historical page's time range; current
	// pages use itime.Max.
	EndTS itime.Timestamp

	// LowKey and HighKey fence the page's key range: LowKey <= key < HighKey.
	// nil LowKey means -inf, nil HighKey means +inf.
	LowKey, HighKey []byte

	// Recs is the record heap; Slots[i] indexes the latest version of the
	// i-th key in sorted key order.
	Recs  []Version
	Slots []int16

	// StampLSN is the highest commit-record LSN among transactions whose
	// versions were lazily stamped in place on this page. Stamping is never
	// logged and does not move the page LSN, but a freshly stamped version
	// reaching disk before its commit record would survive a crash that must
	// roll the transaction back — so the buffer pool flushes the log through
	// max(LSN, StampLSN) before writing the page. Transient: not marshalled
	// (after a reboot every stamp on disk is covered by a durable commit
	// record, or the page write would not have happened).
	StampLSN uint64

	// cachedUsed memoizes Used(); -1 means unknown. Mutators adjust it
	// incrementally or invalidate it; Validate cross-checks it.
	cachedUsed int
}

// NewData returns an empty current data page of the given byte size covering
// all keys and all time.
func NewData(id ID, size int) *DataPage {
	return &DataPage{ID: id, Size: size, Current: true, EndTS: itime.Max, cachedUsed: -1}
}

// fixedDataHeaderLen is the marshalled size of the fixed data page header:
// id(8) flags(1) hist(8) lsn(8) startTS(12) endTS(12) nrecs(2) nslots(2).
const fixedDataHeaderLen = 8 + 1 + 8 + 8 + itime.EncodedLen + itime.EncodedLen + 2 + 2

// Used returns the exact marshalled size of the page, frame header included.
// The value is memoized and maintained incrementally by the mutators.
func (p *DataPage) Used() int {
	if p.cachedUsed >= 0 {
		return p.cachedUsed
	}
	n := PayloadOff + fixedDataHeaderLen
	n += 2 + len(p.LowKey) + 2 + len(p.HighKey)
	for i := range p.Recs {
		n += p.Recs[i].size(p.NoTail)
	}
	n += slotLen * len(p.Slots)
	p.cachedUsed = n
	return n
}

// invalidateUsed forgets the memoized size after a wholesale rewrite.
func (p *DataPage) invalidateUsed() { p.cachedUsed = -1 }

func (p *DataPage) adjustUsed(delta int) {
	if p.cachedUsed >= 0 {
		p.cachedUsed += delta
	}
}

// FitsIn reports whether the page marshals into pageSize bytes.
func (p *DataPage) FitsIn(pageSize int) bool { return p.Used() <= pageSize }

// NumKeys returns the number of distinct keys (slots) on the page.
func (p *DataPage) NumKeys() int { return len(p.Slots) }

// NumVersions returns the total number of record versions on the page.
func (p *DataPage) NumVersions() int { return len(p.Recs) }

// FindSlot locates key in the slot array. It returns the slot index and true
// if found, or the insertion position and false if not.
func (p *DataPage) FindSlot(key []byte) (int, bool) {
	lo := sort.Search(len(p.Slots), func(i int) bool {
		return bytes.Compare(p.Recs[p.Slots[i]].Key, key) >= 0
	})
	if lo < len(p.Slots) && bytes.Equal(p.Recs[p.Slots[lo]].Key, key) {
		return lo, true
	}
	return lo, false
}

// Latest returns the latest version for slot s.
func (p *DataPage) Latest(s int) *Version { return &p.Recs[p.Slots[s]] }

// Chain returns the indices of slot s's versions, newest first.
func (p *DataPage) Chain(s int) []int16 {
	var out []int16
	for i := p.Slots[s]; i != NoPrev; i = p.Recs[i].Prev {
		out = append(out, i)
	}
	return out
}

// ChainLen returns the number of versions in slot s's chain.
func (p *DataPage) ChainLen(s int) int {
	n := 0
	for i := p.Slots[s]; i != NoPrev; i = p.Recs[i].Prev {
		n++
	}
	return n
}

// Insert adds a new non-timestamped version of key, written by transaction
// tid. If the key already exists the new version becomes the slot's latest
// and chains to the old one; otherwise a new slot is created. stub records a
// deletion. ErrPageFull is returned (and the page left unchanged) when the
// version does not fit.
func (p *DataPage) Insert(key, value []byte, stub bool, tid itime.TID) error {
	v := Version{Key: key, Value: value, Stub: stub, TID: tid, Prev: NoPrev}
	return p.insert(v)
}

// InsertStamped adds an already-timestamped version, used by splits,
// recovery and bulk loading.
func (p *DataPage) InsertStamped(key, value []byte, stub bool, ts itime.Timestamp) error {
	v := Version{Key: key, Value: value, Stub: stub, Stamped: true, TS: ts, Prev: NoPrev}
	return p.insert(v)
}

// InsertOrReplaceOwn is the versioned write path: if the key's latest
// version is an uncommitted version of the same transaction, it is
// overwritten in place (a transaction's intermediate states are invisible to
// everyone, so re-updating a record must not grow the chain — this mirrors
// SQL Server, where only one new version exists per record per transaction).
// Otherwise a new non-timestamped version is chained as in Insert.
func (p *DataPage) InsertOrReplaceOwn(key, value []byte, stub bool, tid itime.TID) (replaced bool, oldVal []byte, oldStub bool, err error) {
	if slot, found := p.FindSlot(key); found {
		v := p.Latest(slot)
		if !v.Stamped && v.TID == tid {
			delta := len(value) - len(v.Value)
			if delta > 0 && p.Used()+delta > maxUsable(p) {
				return false, nil, false, ErrPageFull
			}
			oldVal, oldStub = v.Value, v.Stub
			v.Value = append([]byte(nil), value...)
			v.Stub = stub
			p.adjustUsed(delta)
			return true, oldVal, oldStub, nil
		}
	}
	return false, nil, false, p.Insert(key, value, stub, tid)
}

// RestoreOwn undoes an in-place overwrite: the latest version of key, which
// must be an uncommitted version of tid, gets its previous value and stub
// flag back.
func (p *DataPage) RestoreOwn(key []byte, tid itime.TID, oldVal []byte, oldStub bool) error {
	slot, found := p.FindSlot(key)
	if !found {
		return fmt.Errorf("%w: restore-own of key %q", ErrNotFound, key)
	}
	v := p.Latest(slot)
	if v.Stamped || v.TID != tid {
		return fmt.Errorf("page: restore-own mismatch for key %q: stamped=%v tid=%d want %d",
			key, v.Stamped, v.TID, tid)
	}
	delta := len(oldVal) - len(v.Value)
	if delta > 0 && p.Used()+delta > maxUsable(p) {
		return ErrPageFull
	}
	v.Value = append([]byte(nil), oldVal...)
	v.Stub = oldStub
	p.adjustUsed(delta)
	return nil
}

// Replace overwrites the value of an existing key in place, returning the
// old value. It is the update path for NoTail (conventional, non-versioned)
// pages, where there is no version chain to grow. found is false when the
// key is absent.
func (p *DataPage) Replace(key, value []byte) (old []byte, found bool, err error) {
	slot, ok := p.FindSlot(key)
	if !ok {
		return nil, false, nil
	}
	v := p.Latest(slot)
	delta := len(value) - len(v.Value)
	if delta > 0 && p.Used()+delta > maxUsable(p) {
		return nil, true, ErrPageFull
	}
	old = v.Value
	v.Value = append([]byte(nil), value...)
	p.adjustUsed(delta)
	return old, true, nil
}

// RestoreValue puts a prior value back for key (undo of Replace).
func (p *DataPage) RestoreValue(key, old []byte) error {
	slot, ok := p.FindSlot(key)
	if !ok {
		return fmt.Errorf("%w: restore of key %q", ErrNotFound, key)
	}
	rec := &p.Recs[p.Slots[slot]]
	p.adjustUsed(len(old) - len(rec.Value))
	rec.Value = append([]byte(nil), old...)
	return nil
}

// Remove deletes a key outright (NoTail pages only — versioned tables use
// delete stubs). It returns the removed value.
func (p *DataPage) Remove(key []byte) ([]byte, error) {
	slot, ok := p.FindSlot(key)
	if !ok {
		return nil, fmt.Errorf("%w: remove of key %q", ErrNotFound, key)
	}
	idx := p.Slots[slot]
	val := p.Recs[idx].Value
	p.Slots = append(p.Slots[:slot], p.Slots[slot+1:]...)
	p.adjustUsed(-slotLen)
	p.removeRec(idx)
	return val, nil
}

// TimeSplitGain estimates how many bytes a time split at splitTS would free
// from the current page: the sizes of versions that would move out (end time
// at or before the split) plus stubs dropped from the current page. Spanning
// versions free nothing (they are kept redundantly). Callers use it to skip
// useless time splits without allocating a history page.
func (p *DataPage) TimeSplitGain(splitTS itime.Timestamp) int {
	succ := p.successors()
	gain := 0
	for i := range p.Recs {
		v := &p.Recs[i]
		if !v.Stamped {
			continue
		}
		end := p.EndOf(int16(i), succ)
		leaves := !end.After(splitTS) || (v.Stub && v.TS.Less(splitTS))
		if leaves {
			gain += v.size(p.NoTail)
		}
	}
	return gain
}

func (p *DataPage) insert(v Version) error {
	if p.NoTail {
		// Conventional records carry no timestamp; treat them as stamped at
		// time zero so visibility checks (which skip unstamped versions)
		// always see them.
		v.Stamped = true
		v.TID = 0
		v.TS = itime.Timestamp{}
		v.Prev = NoPrev
	}
	slot, found := p.FindSlot(v.Key)
	need := v.size(p.NoTail)
	if !found {
		need += slotLen
	}
	if p.Used()+need > maxUsable(p) {
		if p.Used() == minUsed(p) {
			return fmt.Errorf("%w: %d bytes", ErrTooLarge, need)
		}
		return ErrPageFull
	}
	idx := int16(len(p.Recs))
	if found {
		v.Prev = p.Slots[slot]
		p.Recs = append(p.Recs, v)
		p.Slots[slot] = idx
	} else {
		p.Recs = append(p.Recs, v)
		p.Slots = append(p.Slots, 0)
		copy(p.Slots[slot+1:], p.Slots[slot:])
		p.Slots[slot] = idx
	}
	p.adjustUsed(need)
	return nil
}

func maxUsable(p *DataPage) int {
	if p.Size == 0 {
		return DefaultSize
	}
	return p.Size
}

func minUsed(p *DataPage) int {
	n := PayloadOff + fixedDataHeaderLen
	n += 2 + len(p.LowKey) + 2 + len(p.HighKey)
	return n
}

// UndoInsert removes the newest version of key, which must be non-timestamped
// and belong to transaction tid; it restores the slot to the prior version
// (or removes the slot if none). It is the logical undo of Insert, used by
// transaction rollback and ARIES undo.
func (p *DataPage) UndoInsert(key []byte, tid itime.TID) error {
	slot, found := p.FindSlot(key)
	if !found {
		return fmt.Errorf("%w: undo of key %q", ErrNotFound, key)
	}
	idx := p.Slots[slot]
	v := &p.Recs[idx]
	if v.Stamped || v.TID != tid {
		return fmt.Errorf("page: undo mismatch for key %q: stamped=%v tid=%d want %d",
			key, v.Stamped, v.TID, tid)
	}
	if v.Prev == NoPrev {
		p.Slots = append(p.Slots[:slot], p.Slots[slot+1:]...)
		p.adjustUsed(-slotLen)
	} else {
		p.Slots[slot] = v.Prev
	}
	p.removeRec(idx)
	return nil
}

// removeRec deletes record index idx from the heap, fixing every slot and
// Prev reference greater than idx. Nothing may still reference idx itself.
func (p *DataPage) removeRec(idx int16) {
	p.adjustUsed(-p.Recs[idx].size(p.NoTail))
	p.Recs = append(p.Recs[:idx], p.Recs[idx+1:]...)
	for i := range p.Recs {
		if p.Recs[i].Prev > idx {
			p.Recs[i].Prev--
		}
	}
	for i := range p.Slots {
		if p.Slots[i] > idx {
			p.Slots[i]--
		}
	}
}

// Resolver maps a transaction ID to its commit timestamp. ok is false while
// the transaction is still active (or was aborted and is being rolled back),
// in which case the version keeps its TID.
type Resolver func(tid itime.TID) (ts itime.Timestamp, ok bool)

// StampAll lazily timestamps every non-timestamped version whose transaction
// has committed, per Section 2.2 stage IV. It returns, per transaction, how
// many versions were stamped so the caller can decrement VTT reference
// counts. The page is dirtied by the caller if the returned map is non-empty.
func (p *DataPage) StampAll(resolve Resolver) map[itime.TID]int {
	var stamped map[itime.TID]int
	for i := range p.Recs {
		v := &p.Recs[i]
		if v.Stamped {
			continue
		}
		ts, ok := resolve(v.TID)
		if !ok {
			continue
		}
		tid := v.TID
		v.Stamped = true
		v.TS = ts
		v.TID = 0
		if stamped == nil {
			stamped = make(map[itime.TID]int)
		}
		stamped[tid]++
	}
	return stamped
}

// VersionAsOf returns the version of slot s visible at time ts: the version
// with the largest start time <= ts. Non-timestamped versions are treated as
// starting after every stamped time (their transactions have not committed
// as of any queryable time); callers must stamp committed versions first.
// ok is false when no version of the key existed at ts. The returned version
// may be a delete stub, meaning the record was deleted as of ts.
func (p *DataPage) VersionAsOf(s int, ts itime.Timestamp) (*Version, bool) {
	for i := p.Slots[s]; i != NoPrev; i = p.Recs[i].Prev {
		v := &p.Recs[i]
		if !v.Stamped {
			continue
		}
		if v.TS.Compare(ts) <= 0 {
			return v, true
		}
	}
	return nil, false
}

// OldestStart returns the smallest stamped start time on the page, or zero
// if the page has no stamped versions.
func (p *DataPage) OldestStart() itime.Timestamp {
	var oldest itime.Timestamp
	first := true
	for i := range p.Recs {
		if !p.Recs[i].Stamped {
			continue
		}
		if first || p.Recs[i].TS.Less(oldest) {
			oldest = p.Recs[i].TS
			first = false
		}
	}
	if first {
		return itime.Timestamp{}
	}
	return oldest
}

// HasUnstamped reports whether any version still carries a TID.
func (p *DataPage) HasUnstamped() bool {
	for i := range p.Recs {
		if !p.Recs[i].Stamped {
			return true
		}
	}
	return false
}

// successors returns, for each record index, the index of the *next* (newer)
// version of the same key, or NoPrev for chain heads. End times are implicit:
// a version's end time is its successor's start time (Section 1.2).
func (p *DataPage) successors() []int16 {
	succ := make([]int16, len(p.Recs))
	for i := range succ {
		succ[i] = NoPrev
	}
	for i := range p.Recs {
		if prev := p.Recs[i].Prev; prev != NoPrev {
			succ[prev] = int16(i)
		}
	}
	return succ
}

// EndOf returns the end time of record index i: the start time of its
// successor, or itime.Max if it is the latest version of its key. succ must
// come from successors(). Unstamped successors yield itime.Max because their
// commit time is in the future of every stamped time.
func (p *DataPage) EndOf(i int16, succ []int16) itime.Timestamp {
	s := succ[i]
	if s == NoPrev {
		return itime.Max
	}
	if !p.Recs[s].Stamped {
		return itime.Max
	}
	return p.Recs[s].TS
}

// GCOlderThan removes versions that ended before cutoff, keeping for each
// key at least the version visible at cutoff. It implements version garbage
// collection for snapshot-only (non-immortal) tables, where versions older
// than the oldest active snapshot are reclaimed (Section 3, "Snapshots").
// Delete stubs whose chains become singleton stubs older than cutoff are
// dropped entirely. It returns the number of versions removed.
func (p *DataPage) GCOlderThan(cutoff itime.Timestamp) int {
	removed := 0
	for s := 0; s < len(p.Slots); s++ {
		// Find the newest version with start <= cutoff; everything strictly
		// older than it is invisible to every active or future snapshot.
		keepTail := NoPrev
		for i := p.Slots[s]; i != NoPrev; i = p.Recs[i].Prev {
			v := &p.Recs[i]
			if v.Stamped && v.TS.Compare(cutoff) <= 0 {
				keepTail = i
				break
			}
		}
		if keepTail == NoPrev {
			continue
		}
		// Truncate the chain below keepTail.
		for i := p.Recs[keepTail].Prev; i != NoPrev; {
			next := p.Recs[i].Prev
			p.Recs[keepTail].Prev = next // keep links valid during removal
			p.removeRec(i)
			if i < keepTail {
				keepTail--
			}
			if next > i {
				next--
			}
			i = next
			p.Recs[keepTail].Prev = i
			removed++
		}
		p.Recs[keepTail].Prev = NoPrev
		// A slot whose only remaining version is a stamped stub at or before
		// cutoff can disappear: the record is deleted and no snapshot that
		// could still see the pre-delete value remains.
		head := p.Slots[s]
		if head == keepTail {
			v := &p.Recs[head]
			if v.Stub && v.Stamped && v.TS.Compare(cutoff) <= 0 {
				p.Slots = append(p.Slots[:s], p.Slots[s+1:]...)
				p.adjustUsed(-slotLen)
				p.removeRec(head)
				removed++
				s--
			}
		}
	}
	return removed
}

// InKeyRange reports whether key falls in the page's fence interval.
func (p *DataPage) InKeyRange(key []byte) bool {
	if p.LowKey != nil && bytes.Compare(key, p.LowKey) < 0 {
		return false
	}
	if p.HighKey != nil && bytes.Compare(key, p.HighKey) >= 0 {
		return false
	}
	return true
}

// Validate checks structural invariants: sorted unique slot keys, acyclic
// chains, in-range Prev pointers, every record reachable from exactly one
// slot chain, and newest-to-oldest stamped chains in decreasing time order.
func (p *DataPage) Validate() error {
	for i := 1; i < len(p.Slots); i++ {
		if bytes.Compare(p.Recs[p.Slots[i-1]].Key, p.Recs[p.Slots[i]].Key) >= 0 {
			return fmt.Errorf("page %d: slots not strictly sorted at %d", p.ID, i)
		}
	}
	reached := make([]int, len(p.Recs))
	for s := range p.Slots {
		key := p.Recs[p.Slots[s]].Key
		var last *Version
		steps := 0
		for i := p.Slots[s]; i != NoPrev; i = p.Recs[i].Prev {
			if int(i) >= len(p.Recs) || i < 0 {
				return fmt.Errorf("page %d: chain index %d out of range", p.ID, i)
			}
			if steps++; steps > len(p.Recs) {
				return fmt.Errorf("page %d: version chain cycle at slot %d", p.ID, s)
			}
			v := &p.Recs[i]
			reached[i]++
			if !bytes.Equal(v.Key, key) {
				return fmt.Errorf("page %d: chain of %q contains key %q", p.ID, key, v.Key)
			}
			// Chains run newest to oldest. Adjacent versions may carry equal
			// timestamps when one transaction updated the same record more
			// than once; only the newest of the equal group is ever visible.
			if last != nil && last.Stamped && v.Stamped && v.TS.After(last.TS) {
				return fmt.Errorf("page %d: chain of %q not in decreasing time order", p.ID, key)
			}
			last = v
		}
	}
	for i, n := range reached {
		if n != 1 {
			return fmt.Errorf("page %d: record %d reached %d times", p.ID, i, n)
		}
	}
	if p.cachedUsed >= 0 {
		cached := p.cachedUsed
		p.cachedUsed = -1
		if fresh := p.Used(); fresh != cached {
			return fmt.Errorf("page %d: cached used %d != recomputed %d", p.ID, cached, fresh)
		}
	}
	return nil
}
