package page

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"immortaldb/internal/itime"
)

func TestDataPageRoundTrip(t *testing.T) {
	p := NewData(42, DefaultSize)
	p.LSN = 12345
	p.Hist = 7
	p.StartTS = ts(100, 2)
	p.LowKey = []byte("aaa")
	p.HighKey = []byte("zzz")
	mustInsert(t, p, []byte("bob"), []byte("v1"), 1)
	stampTID(p, 1, ts(110, 0))
	mustInsert(t, p, []byte("bob"), []byte("v2"), 2)
	stampTID(p, 2, ts(120, 5))
	mustInsert(t, p, []byte("carol"), nil, 3) // pending stub with TID

	buf := make([]byte, DefaultSize)
	if err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	if TypeOf(buf) != TypeData {
		t.Fatal("type byte not set")
	}
	got, err := UnmarshalData(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(p), normalize(got)) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
	}
	if got.Used() != p.Used() {
		t.Fatalf("Used changed: %d -> %d", p.Used(), got.Used())
	}
}

// normalize clears fields legitimately differing across a round trip
// (nothing today; it also canonicalizes empty vs nil values).
func normalize(p *DataPage) *DataPage {
	q := *p
	q.cachedUsed = -1 // memoization state is not part of page identity
	q.Recs = append([]Version(nil), p.Recs...)
	for i := range q.Recs {
		if len(q.Recs[i].Value) == 0 {
			q.Recs[i].Value = nil
		}
		if len(q.Recs[i].Key) == 0 {
			q.Recs[i].Key = nil
		}
	}
	return &q
}

func TestDataPageRoundTripNilVsEmptyFences(t *testing.T) {
	p := NewData(1, DefaultSize)
	p.LowKey = []byte{} // present but empty
	p.HighKey = nil     // unbounded
	buf := make([]byte, DefaultSize)
	if err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalData(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LowKey == nil || len(got.LowKey) != 0 {
		t.Fatalf("empty fence decoded as %v", got.LowKey)
	}
	if got.HighKey != nil {
		t.Fatalf("nil fence decoded as %v", got.HighKey)
	}
}

func TestNoTailRoundTrip(t *testing.T) {
	p := NewData(1, DefaultSize)
	p.NoTail = true
	if err := p.Insert([]byte("k"), []byte("v"), false, 0); err != nil {
		t.Fatal(err)
	}
	withTail := NewData(1, DefaultSize)
	if err := withTail.Insert([]byte("k"), []byte("v"), false, 0); err != nil {
		t.Fatal(err)
	}
	if p.Used() != withTail.Used()-TailLen {
		t.Fatalf("NoTail must save exactly TailLen bytes: %d vs %d", p.Used(), withTail.Used())
	}
	buf := make([]byte, DefaultSize)
	if err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalData(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.NoTail || got.NumKeys() != 1 {
		t.Fatalf("NoTail round trip: %+v", got)
	}
	if got.Recs[0].Prev != NoPrev {
		t.Fatal("NoTail record must have no chain")
	}
}

func TestUsedMatchesMarshalledSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewData(ID(rng.Uint64()), DefaultSize)
		if rng.Intn(2) == 0 {
			p.LowKey = randBytes(rng, rng.Intn(20))
		}
		if rng.Intn(2) == 0 {
			p.HighKey = randBytes(rng, rng.Intn(20))
		}
		for i := 0; i < rng.Intn(60); i++ {
			k := randBytes(rng, 1+rng.Intn(15))
			v := randBytes(rng, rng.Intn(40))
			if err := p.Insert(k, v, rng.Intn(9) == 0, itime.TID(rng.Intn(5)+1)); err != nil {
				return true // page full is fine; skip
			}
		}
		buf := make([]byte, DefaultSize)
		if err := p.Marshal(buf); err != nil {
			return false
		}
		got, err := UnmarshalData(buf)
		if err != nil {
			return false
		}
		return got.Used() == p.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDataPageCorruptionDetected(t *testing.T) {
	p := NewData(1, DefaultSize)
	mustInsert(t, p, []byte("k"), []byte("v"), 1)
	buf := make([]byte, DefaultSize)
	if err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	// Wrong type byte.
	bad := append([]byte(nil), buf...)
	bad[TypeOff] = byte(TypeIndex)
	if _, err := UnmarshalData(bad); err == nil {
		t.Fatal("wrong type accepted")
	}
	// Implausible record count.
	bad = append([]byte(nil), buf...)
	bad[PayloadOff+8+1+8+8+12+12] = 0xFF
	bad[PayloadOff+8+1+8+8+12+12+1] = 0xFF
	if _, err := UnmarshalData(bad); err == nil {
		t.Fatal("implausible record count accepted")
	}
	// Truncated buffer.
	if _, err := UnmarshalData(buf[:16]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
}

func TestIndexPageRoundTrip(t *testing.T) {
	p := NewIndex(9, DefaultSize, 2)
	p.LSN = 99
	p.Add(IndexEntry{
		R:     Rect{LowKey: nil, HighKey: []byte("m"), LowTS: ts(0, 0), HighTS: ts(50, 0)},
		Child: 3,
		Leaf:  true,
	})
	p.Add(IndexEntry{
		R:     Rect{LowKey: []byte("m"), HighKey: nil, LowTS: ts(50, 0), HighTS: itime.Max},
		Child: 4,
		Leaf:  false,
	})
	buf := make([]byte, DefaultSize)
	if err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalIndex(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, got)
	}
	if got.Used() != p.Used() {
		t.Fatalf("Used changed: %d -> %d", p.Used(), got.Used())
	}
}

func TestBlobRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("catalog"), 100)
	p := &BlobPage{ID: 5, Next: 6, Data: data}
	buf := make([]byte, DefaultSize)
	if err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBlob(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 5 || got.Next != 6 || !bytes.Equal(got.Data, data) {
		t.Fatalf("blob round trip: %+v", got)
	}
	if BlobCapacity(DefaultSize) != DefaultSize-PayloadOff-20 {
		t.Fatalf("BlobCapacity = %d", BlobCapacity(DefaultSize))
	}
	big := &BlobPage{ID: 1, Data: make([]byte, BlobCapacity(DefaultSize)+1)}
	if err := big.Marshal(buf); err == nil {
		t.Fatal("oversized blob accepted")
	}
}

func TestUnmarshalDispatch(t *testing.T) {
	buf := make([]byte, DefaultSize)
	p := NewData(1, DefaultSize)
	if err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	if v, err := Unmarshal(buf); err != nil {
		t.Fatal(err)
	} else if _, ok := v.(*DataPage); !ok {
		t.Fatalf("dispatch returned %T", v)
	}
	ix := NewIndex(2, DefaultSize, 1)
	if err := ix.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	if v, err := Unmarshal(buf); err != nil {
		t.Fatal(err)
	} else if _, ok := v.(*IndexPage); !ok {
		t.Fatalf("dispatch returned %T", v)
	}
	buf[TypeOff] = byte(TypeFree)
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("free page should not decode")
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return b
}
