package page

import (
	"encoding/binary"
	"fmt"

	"immortaldb/internal/itime"
)

// Key length sentinel: a nil (unbounded) fence key is encoded as length
// 0xFFFF, distinguishing it from a present empty key.
const nilKeyLen = 0xFFFF

// Data page flag bits.
const (
	dataFlagCurrent = 1 << 0
	dataFlagNoTail  = 1 << 1
)

// Record flag bits.
const (
	recFlagStub    = 1 << 0
	recFlagStamped = 1 << 1
)

type encoder struct {
	buf []byte
	off int
}

func (e *encoder) u8(v uint8)   { e.buf[e.off] = v; e.off++ }
func (e *encoder) u16(v uint16) { binary.BigEndian.PutUint16(e.buf[e.off:], v); e.off += 2 }
func (e *encoder) u32(v uint32) { binary.BigEndian.PutUint32(e.buf[e.off:], v); e.off += 4 }
func (e *encoder) u64(v uint64) { binary.BigEndian.PutUint64(e.buf[e.off:], v); e.off += 8 }
func (e *encoder) ts(v itime.Timestamp) {
	v.Encode(e.buf[e.off:])
	e.off += itime.EncodedLen
}
func (e *encoder) bytes(b []byte) { copy(e.buf[e.off:], b); e.off += len(b) }
func (e *encoder) key(k []byte) {
	if k == nil {
		e.u16(nilKeyLen)
		return
	}
	e.u16(uint16(len(k)))
	e.bytes(k)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated at offset %d (+%d)", ErrCorrupt, d.off, n)
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) ts() itime.Timestamp {
	if !d.need(itime.EncodedLen) {
		return itime.Timestamp{}
	}
	v := itime.DecodeTimestamp(d.buf[d.off:])
	d.off += itime.EncodedLen
	return v
}

func (d *decoder) bytesN(n int) []byte {
	if !d.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += n
	return out
}

func (d *decoder) key() []byte {
	n := d.u16()
	if n == nilKeyLen {
		return nil
	}
	return d.bytesN(int(n))
}

// TypeOf reports the page type stored in a raw page buffer.
func TypeOf(buf []byte) Type {
	if len(buf) <= TypeOff {
		return TypeInvalid
	}
	return Type(buf[TypeOff])
}

// Marshal serializes the data page into buf, which must be the full page
// size. The frame header bytes (checksum, written later by the pager) are
// zeroed; the type byte is set.
func (p *DataPage) Marshal(buf []byte) error {
	if p.Used() > len(buf) {
		return fmt.Errorf("page %d: %w: %d > %d bytes", p.ID, ErrPageFull, p.Used(), len(buf))
	}
	clear(buf)
	buf[TypeOff] = byte(TypeData)
	e := &encoder{buf: buf, off: PayloadOff}
	e.u64(uint64(p.ID))
	var flags uint8
	if p.Current {
		flags |= dataFlagCurrent
	}
	if p.NoTail {
		flags |= dataFlagNoTail
	}
	e.u8(flags)
	e.u64(uint64(p.Hist))
	e.u64(p.LSN)
	e.ts(p.StartTS)
	e.ts(p.EndTS)
	e.u16(uint16(len(p.Recs)))
	e.u16(uint16(len(p.Slots)))
	e.key(p.LowKey)
	e.key(p.HighKey)
	for i := range p.Recs {
		v := &p.Recs[i]
		e.u16(uint16(len(v.Key)))
		e.u16(uint16(len(v.Value)))
		var rf uint8
		if v.Stub {
			rf |= recFlagStub
		}
		if v.Stamped {
			rf |= recFlagStamped
		}
		e.u8(rf)
		e.bytes(v.Key)
		e.bytes(v.Value)
		if !p.NoTail {
			// The 14-byte versioning tail of Figure 1b: VP, Ttime, SN. The
			// Ttime field holds the TID until the version is stamped.
			e.u16(uint16(v.Prev))
			if v.Stamped {
				e.u64(uint64(v.TS.Wall))
				e.u32(v.TS.Seq)
			} else {
				e.u64(uint64(v.TID))
				e.u32(0)
			}
		}
	}
	for _, s := range p.Slots {
		e.u16(uint16(s))
	}
	return nil
}

// UnmarshalData parses a data page from a raw page buffer.
func UnmarshalData(buf []byte) (*DataPage, error) {
	if TypeOf(buf) != TypeData {
		return nil, fmt.Errorf("%w: not a data page (type %v)", ErrCorrupt, TypeOf(buf))
	}
	d := &decoder{buf: buf, off: PayloadOff}
	p := &DataPage{Size: len(buf), cachedUsed: -1}
	p.ID = ID(d.u64())
	flags := d.u8()
	p.Current = flags&dataFlagCurrent != 0
	p.NoTail = flags&dataFlagNoTail != 0
	p.Hist = ID(d.u64())
	p.LSN = d.u64()
	p.StartTS = d.ts()
	p.EndTS = d.ts()
	nrecs := int(d.u16())
	nslots := int(d.u16())
	p.LowKey = d.key()
	p.HighKey = d.key()
	if d.err != nil {
		return nil, d.err
	}
	if nrecs > len(buf) || nslots > nrecs {
		return nil, fmt.Errorf("%w: implausible counts nrecs=%d nslots=%d", ErrCorrupt, nrecs, nslots)
	}
	p.Recs = make([]Version, nrecs)
	for i := 0; i < nrecs; i++ {
		klen := int(d.u16())
		vlen := int(d.u16())
		rf := d.u8()
		v := &p.Recs[i]
		v.Key = d.bytesN(klen)
		v.Value = d.bytesN(vlen)
		v.Stub = rf&recFlagStub != 0
		v.Stamped = rf&recFlagStamped != 0
		if p.NoTail {
			v.Prev = NoPrev
			v.Stamped = true
		} else {
			v.Prev = int16(d.u16())
			ttime := d.u64()
			sn := d.u32()
			if v.Stamped {
				v.TS = itime.Timestamp{Wall: int64(ttime), Seq: sn}
			} else {
				v.TID = itime.TID(ttime)
			}
		}
		if d.err != nil {
			return nil, d.err
		}
		if v.Prev != NoPrev && (v.Prev < 0 || int(v.Prev) >= nrecs) {
			return nil, fmt.Errorf("%w: version pointer %d out of range", ErrCorrupt, v.Prev)
		}
	}
	p.Slots = make([]int16, nslots)
	for i := 0; i < nslots; i++ {
		s := int16(d.u16())
		if s < 0 || int(s) >= nrecs {
			return nil, fmt.Errorf("%w: slot %d out of range", ErrCorrupt, s)
		}
		p.Slots[i] = s
	}
	return p, d.err
}

// Marshal serializes the index page into buf (full page size).
func (p *IndexPage) Marshal(buf []byte) error {
	if p.Used() > len(buf) {
		return fmt.Errorf("index page %d: %w: %d > %d bytes", p.ID, ErrPageFull, p.Used(), len(buf))
	}
	clear(buf)
	buf[TypeOff] = byte(TypeIndex)
	e := &encoder{buf: buf, off: PayloadOff}
	e.u64(uint64(p.ID))
	e.u64(p.LSN)
	e.u16(p.Level)
	e.u16(uint16(len(p.Entries)))
	for i := range p.Entries {
		ent := &p.Entries[i]
		e.u64(uint64(ent.Child))
		if ent.Leaf {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.ts(ent.R.LowTS)
		e.ts(ent.R.HighTS)
		e.key(ent.R.LowKey)
		e.key(ent.R.HighKey)
	}
	return nil
}

// UnmarshalIndex parses an index page from a raw page buffer.
func UnmarshalIndex(buf []byte) (*IndexPage, error) {
	if TypeOf(buf) != TypeIndex {
		return nil, fmt.Errorf("%w: not an index page (type %v)", ErrCorrupt, TypeOf(buf))
	}
	d := &decoder{buf: buf, off: PayloadOff}
	p := &IndexPage{Size: len(buf)}
	p.ID = ID(d.u64())
	p.LSN = d.u64()
	p.Level = d.u16()
	n := int(d.u16())
	if d.err != nil {
		return nil, d.err
	}
	if n > len(buf) {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrCorrupt, n)
	}
	p.Entries = make([]IndexEntry, n)
	for i := 0; i < n; i++ {
		ent := &p.Entries[i]
		ent.Child = ID(d.u64())
		ent.Leaf = d.u8() == 1
		ent.R.LowTS = d.ts()
		ent.R.HighTS = d.ts()
		ent.R.LowKey = d.key()
		ent.R.HighKey = d.key()
		if d.err != nil {
			return nil, d.err
		}
	}
	return p, nil
}

// BlobPage is a page in a chain of opaque engine bytes (catalog storage).
type BlobPage struct {
	ID   ID
	Next ID
	Data []byte
}

// blobHeaderLen: id(8) next(8) len(4).
const blobHeaderLen = 8 + 8 + 4

// BlobCapacity returns how many data bytes fit in one blob page.
func BlobCapacity(pageSize int) int { return pageSize - PayloadOff - blobHeaderLen }

// Marshal serializes the blob page into buf (full page size).
func (p *BlobPage) Marshal(buf []byte) error {
	if PayloadOff+blobHeaderLen+len(p.Data) > len(buf) {
		return fmt.Errorf("blob page %d: %w", p.ID, ErrPageFull)
	}
	clear(buf)
	buf[TypeOff] = byte(TypeBlob)
	e := &encoder{buf: buf, off: PayloadOff}
	e.u64(uint64(p.ID))
	e.u64(uint64(p.Next))
	e.u32(uint32(len(p.Data)))
	e.bytes(p.Data)
	return nil
}

// UnmarshalBlob parses a blob page from a raw page buffer.
func UnmarshalBlob(buf []byte) (*BlobPage, error) {
	if TypeOf(buf) != TypeBlob {
		return nil, fmt.Errorf("%w: not a blob page (type %v)", ErrCorrupt, TypeOf(buf))
	}
	d := &decoder{buf: buf, off: PayloadOff}
	p := &BlobPage{}
	p.ID = ID(d.u64())
	p.Next = ID(d.u64())
	n := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	p.Data = d.bytesN(n)
	return p, d.err
}

// Unmarshal dispatches on the page type and returns the decoded page as one
// of *DataPage, *IndexPage or *BlobPage.
func Unmarshal(buf []byte) (any, error) {
	switch TypeOf(buf) {
	case TypeData:
		return UnmarshalData(buf)
	case TypeIndex:
		return UnmarshalIndex(buf)
	case TypeBlob:
		return UnmarshalBlob(buf)
	default:
		return nil, fmt.Errorf("%w: undecodable page type %v", ErrCorrupt, TypeOf(buf))
	}
}
