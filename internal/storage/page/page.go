// Package page implements Immortal DB's on-disk page formats: slotted data
// pages holding record versions with the paper's 14-byte versioning tail
// (Figure 1), intra-page version chains (Figure 2), the time-split and
// key-split operations (Figure 3), and the rectangle-described index pages of
// the time-split B-tree (Section 3.4).
//
// Pages marshal to and from fixed-size byte buffers. The first 8 bytes of
// every raw page are a frame header owned by the disk layer: a CRC32 checksum
// (4 bytes, written by the pager), the page type (1 byte), and 3 reserved
// bytes. Page payloads begin at PayloadOff.
package page

import (
	"errors"
	"fmt"

	"immortaldb/internal/itime"
)

// ID identifies a page within a page file. ID 0 is never a valid data page
// (it is the pager's meta page), so 0 doubles as the nil page pointer.
type ID uint64

// Type tags the content of a raw page.
type Type uint8

// Page types.
const (
	TypeInvalid Type = iota
	TypeMeta         // pager metadata
	TypeData         // slotted data page (current or historical)
	TypeIndex        // TSB-tree index page
	TypeBlob         // engine blob chain (catalog, etc.)
	TypeFree         // on the free list
)

func (t Type) String() string {
	switch t {
	case TypeMeta:
		return "meta"
	case TypeData:
		return "data"
	case TypeIndex:
		return "index"
	case TypeBlob:
		return "blob"
	case TypeFree:
		return "free"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(t))
	}
}

// Frame layout constants.
const (
	// ChecksumOff is where the disk layer stores the page CRC.
	ChecksumOff = 0
	// TypeOff is the byte holding the page Type.
	TypeOff = 4
	// PayloadOff is where marshalled page payloads begin.
	PayloadOff = 8
)

// DefaultSize is the default page size, matching the paper's 8 KB pages.
const DefaultSize = 8192

// MinSize is the smallest supported page size; tiny pages are useful in
// tests to force frequent splits.
const MinSize = 256

// TailLen is the size of the per-record versioning data appended to each
// record version: version pointer VP (2 bytes), timestamp Ttime (8 bytes)
// and sequence number SN (4 bytes) — Figure 1b.
const TailLen = 14

// recHeaderLen is the per-record fixed overhead before the key/value bytes:
// key length (2), value length (2) and record flags (1).
const recHeaderLen = 5

// slotLen is the size of one slot array entry.
const slotLen = 2

// Errors returned by page operations.
var (
	// ErrPageFull reports that a record does not fit; the caller must split.
	ErrPageFull = errors.New("page: page full")
	// ErrTooLarge reports a record that cannot fit even in an empty page.
	ErrTooLarge = errors.New("page: record larger than page")
	// ErrCorrupt reports an unparseable page image.
	ErrCorrupt = errors.New("page: corrupt page image")
	// ErrNotFound reports a missing key or version.
	ErrNotFound = errors.New("page: not found")
)

// NoPrev marks the end of an intra-page version chain.
const NoPrev = int16(-1)

// Version is one record version. A version is born non-timestamped, carrying
// the TID of its updating transaction in the Ttime field; lazy timestamping
// later replaces the TID with the transaction's commit timestamp (Section
// 2.2, stage IV). A delete is a special version, the delete stub, that exists
// only to supply the end time of its predecessor (Section 1.2).
type Version struct {
	Key   []byte
	Value []byte
	Stub  bool // delete stub: marks the record deleted as of TS
	// Stamped reports whether the version carries its final timestamp (TS)
	// rather than the updating transaction's TID.
	Stamped bool
	TID     itime.TID       // updating transaction, valid when !Stamped
	TS      itime.Timestamp // start of lifetime, valid when Stamped
	Prev    int16           // index of the previous (older) version in Recs
}

// size returns the marshalled size of v, with or without the versioning tail.
func (v *Version) size(noTail bool) int {
	n := recHeaderLen + len(v.Key) + len(v.Value)
	if !noTail {
		n += TailLen
	}
	return n
}

// StartKnown reports whether the version's start time is known, i.e. it has
// been stamped. Unstamped versions belong to in-flight (or just-committed,
// not-yet-revisited) transactions.
func (v *Version) StartKnown() bool { return v.Stamped }
