package page

import (
	"bytes"
	"fmt"

	"immortaldb/internal/itime"
)

// Rect is a rectangle in (key, time) space describing the responsibility
// region of a TSB-tree child: keys in [LowKey, HighKey) and times in
// [LowTS, HighTS). nil LowKey/HighKey mean unbounded; HighTS == itime.Max
// means the region is current (open-ended in time).
type Rect struct {
	LowKey, HighKey []byte
	LowTS, HighTS   itime.Timestamp
}

// ContainsKey reports whether key falls in the rectangle's key interval.
func (r Rect) ContainsKey(key []byte) bool {
	if r.LowKey != nil && bytes.Compare(key, r.LowKey) < 0 {
		return false
	}
	if r.HighKey != nil && bytes.Compare(key, r.HighKey) >= 0 {
		return false
	}
	return true
}

// ContainsTime reports whether ts falls in the rectangle's time interval.
// Open-ended (current) rectangles contain every time >= LowTS, including
// itime.Max itself, which the engine uses to mean "the current state".
func (r Rect) ContainsTime(ts itime.Timestamp) bool {
	if ts.Less(r.LowTS) {
		return false
	}
	return r.HighTS.IsMax() || ts.Less(r.HighTS)
}

// Contains reports whether the point (key, ts) is inside the rectangle.
func (r Rect) Contains(key []byte, ts itime.Timestamp) bool {
	return r.ContainsKey(key) && r.ContainsTime(ts)
}

// IntersectsKeyRange reports whether the rectangle's key interval intersects
// [lo, hi); nil bounds are unbounded.
func (r Rect) IntersectsKeyRange(lo, hi []byte) bool {
	if hi != nil && r.LowKey != nil && bytes.Compare(r.LowKey, hi) >= 0 {
		return false
	}
	if lo != nil && r.HighKey != nil && bytes.Compare(lo, r.HighKey) >= 0 {
		return false
	}
	return true
}

func (r Rect) String() string {
	k := func(b []byte) string {
		if b == nil {
			return "∞"
		}
		return fmt.Sprintf("%q", b)
	}
	return fmt.Sprintf("[%s,%s)x[%v,%v)", k(r.LowKey), k(r.HighKey), r.LowTS, r.HighTS)
}

// IndexEntry maps a child region to a child page.
type IndexEntry struct {
	R     Rect
	Child ID
	// Leaf reports whether Child is a data page rather than another index
	// page.
	Leaf bool
}

// indexEntryFixedLen is the marshalled size of an entry minus its key bytes:
// child(8) leaf(1) lowTS(12) highTS(12) lowKeyLen(2) highKeyLen(2).
const indexEntryFixedLen = 8 + 1 + itime.EncodedLen + itime.EncodedLen + 2 + 2

func (e *IndexEntry) size() int {
	return indexEntryFixedLen + len(e.R.LowKey) + len(e.R.HighKey)
}

// IndexPage is a TSB-tree index node: a set of child entries whose
// rectangles tile the node's own responsibility region (Section 3.4).
type IndexPage struct {
	ID   ID
	LSN  uint64
	Size int // capacity in bytes; not marshalled
	// Level is the height above the data pages: 1 means children are data
	// pages.
	Level   uint16
	Entries []IndexEntry
}

// fixedIndexHeaderLen: id(8) lsn(8) level(2) nentries(2).
const fixedIndexHeaderLen = 8 + 8 + 2 + 2

// NewIndex returns an empty index page at the given level.
func NewIndex(id ID, size int, level uint16) *IndexPage {
	return &IndexPage{ID: id, Size: size, Level: level}
}

// Used returns the exact marshalled size of the page, frame header included.
func (p *IndexPage) Used() int {
	n := PayloadOff + fixedIndexHeaderLen
	for i := range p.Entries {
		n += p.Entries[i].size()
	}
	return n
}

// CanFit reports whether an additional entry e would fit.
func (p *IndexPage) CanFit(e IndexEntry) bool {
	size := p.Size
	if size == 0 {
		size = DefaultSize
	}
	return p.Used()+e.size() <= size
}

// FindChild returns the entry whose rectangle contains (key, ts). Entries'
// rectangles are disjoint within a node, so at most one matches.
func (p *IndexPage) FindChild(key []byte, ts itime.Timestamp) (IndexEntry, bool) {
	for i := range p.Entries {
		if p.Entries[i].R.Contains(key, ts) {
			return p.Entries[i], true
		}
	}
	return IndexEntry{}, false
}

// ChildrenForTime returns all entries whose time interval contains ts and
// whose key interval intersects [loKey, hiKey) — the set of children an
// as-of-ts range scan must visit.
func (p *IndexPage) ChildrenForTime(loKey, hiKey []byte, ts itime.Timestamp) []IndexEntry {
	var out []IndexEntry
	for i := range p.Entries {
		e := &p.Entries[i]
		if e.R.ContainsTime(ts) && e.R.IntersectsKeyRange(loKey, hiKey) {
			out = append(out, *e)
		}
	}
	return out
}

// ChildrenForKey returns all entries whose key interval contains key — the
// children a full-history (time travel) query of one key must visit.
func (p *IndexPage) ChildrenForKey(key []byte) []IndexEntry {
	var out []IndexEntry
	for i := range p.Entries {
		if p.Entries[i].R.ContainsKey(key) {
			out = append(out, p.Entries[i])
		}
	}
	return out
}

// Add appends an entry. The caller is responsible for capacity (CanFit) and
// for keeping sibling rectangles disjoint.
func (p *IndexPage) Add(e IndexEntry) { p.Entries = append(p.Entries, e) }

// ReplaceChild rewrites the entry for child old in place. It returns false
// if no entry references old.
func (p *IndexPage) ReplaceChild(old ID, e IndexEntry) bool {
	for i := range p.Entries {
		if p.Entries[i].Child == old {
			p.Entries[i] = e
			return true
		}
	}
	return false
}

// EntryFor returns the (first) entry pointing at child.
func (p *IndexPage) EntryFor(child ID) (IndexEntry, bool) {
	for i := range p.Entries {
		if p.Entries[i].Child == child {
			return p.Entries[i], true
		}
	}
	return IndexEntry{}, false
}

// Validate checks that entry rectangles are pairwise disjoint.
func (p *IndexPage) Validate() error {
	for i := range p.Entries {
		for j := i + 1; j < len(p.Entries); j++ {
			a, b := p.Entries[i].R, p.Entries[j].R
			if rectsOverlap(a, b) {
				return fmt.Errorf("index page %d: overlapping rects %v and %v", p.ID, a, b)
			}
		}
	}
	return nil
}

func rectsOverlap(a, b Rect) bool {
	if !a.IntersectsKeyRange(b.LowKey, b.HighKey) {
		return false
	}
	// Time intervals [LowTS, HighTS) with Max meaning open-ended.
	aHi, bHi := a.HighTS, b.HighTS
	if !aHi.IsMax() && !b.LowTS.Less(aHi) {
		return false
	}
	if !bHi.IsMax() && !a.LowTS.Less(bHi) {
		return false
	}
	return true
}
