package page

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"immortaldb/internal/itime"
)

// buildFigure3 reproduces the paper's Figure 3 scenario:
//
//	RecA: one version spanning the split time.
//	RecB: an early version ending after the split (spans), and a recent
//	      version starting after the split.
//	RecC: an early version ending before the split, a center version
//	      spanning it, and a delete stub after the split.
func buildFigure3(t *testing.T) *DataPage {
	t.Helper()
	p := NewData(1, DefaultSize)
	ins := func(k, v string, tid itime.TID, at int64) {
		var b []byte
		if v != "" {
			b = []byte(v)
		}
		if err := p.Insert([]byte(k), b, v == "", tid); err != nil {
			t.Fatal(err)
		}
		stampTID(p, tid, ts(at, 0))
	}
	ins("A", "a0", 1, 10) // A: [10, inf)
	ins("B", "b0", 2, 20) // B: [20, 60)
	ins("C", "c0", 3, 15) // C: [15, 30)
	ins("C", "c1", 4, 30) // C: [30, 55)
	ins("C", "", 5, 55)   // C stub: [55, inf) -- after split
	ins("B", "b1", 6, 60) // B: [60, inf)
	return p
}

const fig3Split = int64(50)

func TestTimeSplitFigure3(t *testing.T) {
	p := buildFigure3(t)
	hist, err := p.TimeSplit(ts(fig3Split, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("current page invalid: %v", err)
	}
	if err := hist.Validate(); err != nil {
		t.Fatalf("history page invalid: %v", err)
	}
	if hist.Current {
		t.Fatal("history page marked current")
	}
	if p.Hist != hist.ID {
		t.Fatal("current page history pointer not set")
	}
	if p.StartTS != ts(fig3Split, 0) || hist.EndTS != ts(fig3Split, 0) || !hist.StartTS.IsZero() {
		t.Fatalf("time ranges wrong: cur start %v, hist [%v,%v)", p.StartTS, hist.StartTS, hist.EndTS)
	}

	get := func(pg *DataPage, k string) []string {
		s, found := pg.FindSlot([]byte(k))
		if !found {
			return nil
		}
		var out []string
		for _, i := range pg.Chain(s) {
			v := pg.Recs[i]
			if v.Stub {
				out = append(out, "STUB@"+fmt.Sprint(v.TS.Wall))
			} else {
				out = append(out, string(v.Value))
			}
		}
		return out
	}

	// A (spans): redundantly in both pages.
	if got := get(p, "A"); len(got) != 1 || got[0] != "a0" {
		t.Fatalf("current A = %v", got)
	}
	if got := get(hist, "A"); len(got) != 1 || got[0] != "a0" {
		t.Fatalf("hist A = %v", got)
	}
	// B: early version spans (both), latest version only current.
	if got := get(p, "B"); len(got) != 2 || got[0] != "b1" || got[1] != "b0" {
		t.Fatalf("current B = %v", got)
	}
	if got := get(hist, "B"); len(got) != 1 || got[0] != "b0" {
		t.Fatalf("hist B = %v", got)
	}
	// C: earliest only hist; center both; stub (after split) only current.
	if got := get(hist, "C"); len(got) != 2 || got[0] != "c1" || got[1] != "c0" {
		t.Fatalf("hist C = %v", got)
	}
	if got := get(p, "C"); len(got) != 2 || got[0] != "STUB@55" || got[1] != "c1" {
		t.Fatalf("current C = %v", got)
	}
}

func TestTimeSplitVisibilityPreserved(t *testing.T) {
	// The essential point of Section 3.3: after a split, each page contains
	// all the versions alive in its key and time region. Verify every
	// historical query answers identically from the page covering its time.
	p := buildFigure3(t)
	type answer struct {
		val  string
		ok   bool
		stub bool
	}
	lookup := func(pg *DataPage, k string, at itime.Timestamp) answer {
		s, found := pg.FindSlot([]byte(k))
		if !found {
			return answer{}
		}
		v, ok := pg.VersionAsOf(s, at)
		if !ok {
			return answer{}
		}
		return answer{val: string(v.Value), ok: true, stub: v.Stub}
	}
	var before [200]map[string]answer
	for w := 0; w < 200; w++ {
		before[w] = map[string]answer{}
		for _, k := range []string{"A", "B", "C"} {
			before[w][k] = lookup(p, k, ts(int64(w), 0))
		}
	}
	hist, err := p.TimeSplit(ts(fig3Split, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 200; w++ {
		at := ts(int64(w), 0)
		pg := p
		if at.Less(ts(fig3Split, 0)) {
			pg = hist
		}
		for _, k := range []string{"A", "B", "C"} {
			got := lookup(pg, k, at)
			// In the current page a record absent or stub-free at time >=
			// split because its stub was dropped is "not alive"; map stubs
			// and misses to the same observable answer.
			want := before[w][k]
			gAlive := got.ok && !got.stub
			wAlive := want.ok && !want.stub
			if gAlive != wAlive || (gAlive && got.val != want.val) {
				t.Fatalf("key %s at %d: got %+v want %+v", k, w, got, want)
			}
		}
	}
}

func TestTimeSplitUncommittedStaysCurrent(t *testing.T) {
	p := NewData(1, DefaultSize)
	mustInsert(t, p, []byte("A"), []byte("a0"), 1)
	stampTID(p, 1, ts(10, 0))
	mustInsert(t, p, []byte("A"), []byte("a1-pending"), 99) // uncommitted
	mustInsert(t, p, []byte("Z"), []byte("z-pending"), 99)  // uncommitted

	hist, err := p.TimeSplit(ts(50, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	// a0 has unknown end (successor uncommitted) -> spans -> both pages.
	s, _ := p.FindSlot([]byte("A"))
	if p.ChainLen(s) != 2 {
		t.Fatalf("current A chain = %d, want 2 (pending + a0)", p.ChainLen(s))
	}
	if !p.Latest(s).Stamped == false && p.Latest(s).TID != 99 {
		t.Fatalf("latest A should be pending: %+v", p.Latest(s))
	}
	hs, found := hist.FindSlot([]byte("A"))
	if !found || hist.ChainLen(hs) != 1 {
		t.Fatal("a0 must be copied to history")
	}
	if _, found := hist.FindSlot([]byte("Z")); found {
		t.Fatal("uncommitted-only key must not reach history")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := hist.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSplitChainsHistory(t *testing.T) {
	p := NewData(1, DefaultSize)
	mustInsert(t, p, []byte("A"), []byte("a0"), 1)
	stampTID(p, 1, ts(10, 0))
	h1, err := p.TimeSplit(ts(20, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, p, []byte("A"), []byte("a1"), 2)
	stampTID(p, 2, ts(30, 0))
	h2, err := p.TimeSplit(ts(40, 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hist != h2.ID || h2.Hist != h1.ID || h1.Hist != 0 {
		t.Fatalf("history chain wrong: p->%d, h2->%d, h1->%d", p.Hist, h2.Hist, h1.Hist)
	}
	if h2.StartTS != ts(20, 0) || h2.EndTS != ts(40, 0) {
		t.Fatalf("h2 range [%v,%v)", h2.StartTS, h2.EndTS)
	}
}

func TestTimeSplitErrors(t *testing.T) {
	p := NewData(1, DefaultSize)
	p.StartTS = ts(50, 0)
	if _, err := p.TimeSplit(ts(50, 0), 2); err == nil {
		t.Fatal("split time must be after page start")
	}
	p.Current = false
	if _, err := p.TimeSplit(ts(60, 0), 2); err == nil {
		t.Fatal("cannot time split a historical page")
	}
}

func TestKeySplit(t *testing.T) {
	p := NewData(1, DefaultSize)
	p.Hist = 77
	p.StartTS = ts(5, 0)
	for i := 0; i < 40; i++ {
		mustInsert(t, p, key(i), val(i), 1)
	}
	stampTID(p, 1, ts(10, 0))
	for i := 0; i < 40; i += 2 {
		mustInsert(t, p, key(i), val(i+1000), 2)
	}
	stampTID(p, 2, ts(20, 0))

	before := map[string]int{}
	for s := range p.Slots {
		before[string(p.Latest(s).Key)] = p.ChainLen(s)
	}

	sep, right, err := p.KeySplit(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := right.Validate(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.HighKey, sep) || !bytes.Equal(right.LowKey, sep) {
		t.Fatal("fences not set to separator")
	}
	if right.Hist != 77 || p.Hist != 77 {
		t.Fatal("both halves must share the history chain")
	}
	if right.StartTS != p.StartTS || !right.Current {
		t.Fatal("right page must be current with same time start")
	}
	// Every key, with its whole chain, lives on exactly one side.
	after := map[string]int{}
	for s := range p.Slots {
		k := string(p.Latest(s).Key)
		if bytes.Compare([]byte(k), sep) >= 0 {
			t.Fatalf("left page has key %q >= sep %q", k, sep)
		}
		after[k] = p.ChainLen(s)
	}
	for s := range right.Slots {
		k := string(right.Latest(s).Key)
		if bytes.Compare([]byte(k), sep) < 0 {
			t.Fatalf("right page has key %q < sep %q", k, sep)
		}
		if _, dup := after[k]; dup {
			t.Fatalf("key %q on both sides", k)
		}
		after[k] = right.ChainLen(s)
	}
	if len(after) != len(before) {
		t.Fatalf("key count changed: %d -> %d", len(before), len(after))
	}
	for k, n := range before {
		if after[k] != n {
			t.Fatalf("chain length of %q changed: %d -> %d", k, n, after[k])
		}
	}
}

func TestKeySplitErrors(t *testing.T) {
	p := NewData(1, DefaultSize)
	mustInsert(t, p, []byte("only"), []byte("v"), 1)
	if _, _, err := p.KeySplit(2); err == nil {
		t.Fatal("key split with one key must fail")
	}
	p.Current = false
	if _, _, err := p.KeySplit(2); err == nil {
		t.Fatal("key split of historical page must fail")
	}
}

// Property: a time split at a random boundary preserves as-of visibility for
// every (key, time) point and never grows total bytes beyond 2x.
func TestTimeSplitPropertyVisibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewData(1, DefaultSize)
		wall := int64(1)
		seq := uint32(0)
		tid := itime.TID(1)
		for i := 0; i < 100; i++ {
			k := key(rng.Intn(12))
			stub := rng.Intn(6) == 0
			var v []byte
			if !stub {
				v = val(rng.Intn(100))
			}
			if err := p.Insert(k, v, stub, tid); err != nil {
				return false
			}
			stampTID(p, tid, ts(wall, seq))
			tid++
			// Advance like a commit sequencer: same tick bumps seq.
			if step := int64(rng.Intn(3)); step > 0 {
				wall += step
				seq = 0
			} else {
				seq++
			}
		}
		splitAt := ts(int64(rng.Intn(int(wall)))+1, 0)
		if !p.StartTS.Less(splitAt) {
			return true // skip degenerate boundary
		}
		type ans struct {
			alive bool
			val   string
		}
		snap := func(pg *DataPage, k []byte, at itime.Timestamp) ans {
			s, found := pg.FindSlot(k)
			if !found {
				return ans{}
			}
			v, ok := pg.VersionAsOf(s, at)
			if !ok || v.Stub {
				return ans{}
			}
			return ans{true, string(v.Value)}
		}
		var want []ans
		for w := int64(0); w <= wall+2; w++ {
			for ki := 0; ki < 12; ki++ {
				want = append(want, snap(p, key(ki), ts(w, 99)))
			}
		}
		hist, err := p.TimeSplit(splitAt, 2)
		if err != nil {
			return false
		}
		if p.Validate() != nil || hist.Validate() != nil {
			return false
		}
		i := 0
		for w := int64(0); w <= wall+2; w++ {
			at := ts(w, 99)
			pg := p
			if at.Less(splitAt) {
				pg = hist
			}
			for ki := 0; ki < 12; ki++ {
				if got := snap(pg, key(ki), at); got != want[i] {
					t.Logf("seed %d: key %d at %d: got %+v want %+v (split %v)", seed, ki, w, got, want[i], splitAt)
					return false
				}
				i++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
