package page

import (
	"fmt"
	"testing"

	"immortaldb/internal/itime"
)

// buildBenchPage fills a default-size page with stamped version chains.
func buildBenchPage(b *testing.B) *DataPage {
	b.Helper()
	p := NewData(1, DefaultSize)
	i := 0
	for {
		k := []byte(fmt.Sprintf("key-%03d", i%60))
		if err := p.Insert(k, []byte("payload-123456"), false, itime.TID(i+1)); err != nil {
			break
		}
		i++
	}
	p.StampAll(func(tid itime.TID) (itime.Timestamp, bool) {
		return itime.Timestamp{Wall: int64(tid)}, true
	})
	return p
}

func BenchmarkPageInsert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%150 == 0 {
			b.StopTimer()
			bp := NewData(1, DefaultSize)
			b.StartTimer()
			benchSink = bp
		}
		p := benchSink.(*DataPage)
		k := []byte(fmt.Sprintf("key-%03d", i%60))
		if err := p.Insert(k, []byte("payload-123456"), false, 1); err != nil {
			b.StopTimer()
			benchSink = NewData(1, DefaultSize)
			b.StartTimer()
		}
	}
}

var benchSink any = NewData(1, DefaultSize)

func BenchmarkVersionAsOf(b *testing.B) {
	p := buildBenchPage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % p.NumKeys()
		if _, ok := p.VersionAsOf(s, itime.Timestamp{Wall: int64(i%200 + 1)}); !ok && i > 400 {
			// Early timestamps may precede the key's first version.
			_ = ok
		}
	}
}

func BenchmarkMarshalUnmarshal(b *testing.B) {
	p := buildBenchPage(b)
	buf := make([]byte, DefaultSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Marshal(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := UnmarshalData(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimeSplit(b *testing.B) {
	proto := buildBenchPage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cp := *proto
		cp.Recs = append([]Version(nil), proto.Recs...)
		cp.Slots = append([]int16(nil), proto.Slots...)
		cp.invalidateUsed()
		b.StartTimer()
		if _, err := cp.TimeSplit(itime.Timestamp{Wall: 1 << 40}, 2); err != nil {
			b.Fatal(err)
		}
	}
}
