package page

import (
	"testing"

	"immortaldb/internal/itime"
)

func rect(lo, hi string, t0, t1 int64) Rect {
	r := Rect{LowTS: ts(t0, 0)}
	if t1 < 0 {
		r.HighTS = itime.Max
	} else {
		r.HighTS = ts(t1, 0)
	}
	if lo != "-" {
		r.LowKey = []byte(lo)
	}
	if hi != "-" {
		r.HighKey = []byte(hi)
	}
	return r
}

func TestRectContains(t *testing.T) {
	r := rect("b", "m", 10, 50)
	cases := []struct {
		key  string
		at   int64
		want bool
	}{
		{"b", 10, true},
		{"b", 9, false},
		{"a", 20, false},
		{"m", 20, false},
		{"lzz", 49, true},
		{"lzz", 50, false},
	}
	for _, c := range cases {
		if got := r.Contains([]byte(c.key), ts(c.at, 0)); got != c.want {
			t.Errorf("Contains(%q,%d) = %v, want %v", c.key, c.at, got, c.want)
		}
	}
}

func TestRectOpenEnded(t *testing.T) {
	r := rect("-", "-", 10, -1)
	if !r.Contains([]byte("anything"), itime.Max) {
		t.Fatal("current rect must contain the 'now' point (Max)")
	}
	if !r.Contains([]byte(""), ts(10, 0)) {
		t.Fatal("unbounded key range must contain empty key")
	}
	closed := rect("-", "-", 10, 50)
	if closed.ContainsTime(itime.Max) {
		t.Fatal("closed rect must not contain Max")
	}
}

func TestRectIntersectsKeyRange(t *testing.T) {
	r := rect("d", "m", 0, -1)
	cases := []struct {
		lo, hi string
		want   bool
	}{
		{"a", "c", false},
		{"a", "d", false}, // hi exclusive
		{"a", "e", true},
		{"f", "g", true},
		{"m", "z", false}, // r.HighKey exclusive
		{"l", "z", true},
		{"-", "-", true},
	}
	for _, c := range cases {
		var lo, hi []byte
		if c.lo != "-" {
			lo = []byte(c.lo)
		}
		if c.hi != "-" {
			hi = []byte(c.hi)
		}
		if got := r.IntersectsKeyRange(lo, hi); got != c.want {
			t.Errorf("IntersectsKeyRange(%q,%q) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestIndexPageFindChild(t *testing.T) {
	p := NewIndex(1, DefaultSize, 1)
	// A current page split history: hist page [t0,t50) over all keys, then
	// current key-split at "m": two current pages from t50.
	p.Add(IndexEntry{R: rect("-", "-", 0, 50), Child: 10, Leaf: true})
	p.Add(IndexEntry{R: rect("-", "m", 50, -1), Child: 11, Leaf: true})
	p.Add(IndexEntry{R: rect("m", "-", 50, -1), Child: 12, Leaf: true})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  string
		at   int64
		want ID
	}{
		{"a", 10, 10},
		{"z", 49, 10},
		{"a", 50, 11},
		{"z", 50, 12},
	}
	for _, c := range cases {
		e, ok := p.FindChild([]byte(c.key), ts(c.at, 0))
		if !ok || e.Child != c.want {
			t.Errorf("FindChild(%q,%d) = %v,%v want child %d", c.key, c.at, e.Child, ok, c.want)
		}
	}
	// Current state lookup uses Max.
	if e, ok := p.FindChild([]byte("q"), itime.Max); !ok || e.Child != 12 {
		t.Errorf("FindChild at Max = %v,%v", e.Child, ok)
	}
}

func TestIndexPageChildrenForTime(t *testing.T) {
	p := NewIndex(1, DefaultSize, 1)
	p.Add(IndexEntry{R: rect("-", "m", 0, 50), Child: 1, Leaf: true})
	p.Add(IndexEntry{R: rect("m", "-", 0, 50), Child: 2, Leaf: true})
	p.Add(IndexEntry{R: rect("-", "-", 50, -1), Child: 3, Leaf: true})
	got := p.ChildrenForTime(nil, nil, ts(10, 0))
	if len(got) != 2 {
		t.Fatalf("full scan at t=10 should visit 2 children, got %d", len(got))
	}
	got = p.ChildrenForTime([]byte("a"), []byte("b"), ts(10, 0))
	if len(got) != 1 || got[0].Child != 1 {
		t.Fatalf("narrow scan = %+v", got)
	}
	got = p.ChildrenForTime(nil, nil, itime.Max)
	if len(got) != 1 || got[0].Child != 3 {
		t.Fatalf("current scan = %+v", got)
	}
}

func TestIndexPageChildrenForKey(t *testing.T) {
	p := NewIndex(1, DefaultSize, 1)
	p.Add(IndexEntry{R: rect("-", "m", 0, 50), Child: 1, Leaf: true})
	p.Add(IndexEntry{R: rect("m", "-", 0, 50), Child: 2, Leaf: true})
	p.Add(IndexEntry{R: rect("-", "-", 50, -1), Child: 3, Leaf: true})
	got := p.ChildrenForKey([]byte("z"))
	if len(got) != 2 {
		t.Fatalf("time travel of 'z' should visit 2 children, got %d", len(got))
	}
}

func TestIndexPageReplaceAndEntryFor(t *testing.T) {
	p := NewIndex(1, DefaultSize, 1)
	p.Add(IndexEntry{R: rect("-", "-", 0, -1), Child: 10, Leaf: true})
	e, ok := p.EntryFor(10)
	if !ok || e.Child != 10 {
		t.Fatal("EntryFor failed")
	}
	if !p.ReplaceChild(10, IndexEntry{R: rect("-", "-", 50, -1), Child: 20, Leaf: true}) {
		t.Fatal("ReplaceChild failed")
	}
	if _, ok := p.EntryFor(10); ok {
		t.Fatal("old child still present")
	}
	if p.ReplaceChild(99, IndexEntry{}) {
		t.Fatal("ReplaceChild of missing child succeeded")
	}
}

func TestIndexValidateOverlap(t *testing.T) {
	p := NewIndex(1, DefaultSize, 1)
	p.Add(IndexEntry{R: rect("-", "m", 0, -1), Child: 1, Leaf: true})
	p.Add(IndexEntry{R: rect("l", "-", 0, -1), Child: 2, Leaf: true})
	if err := p.Validate(); err == nil {
		t.Fatal("overlapping rects not detected")
	}
	// Touching rects do not overlap.
	p.Entries = nil
	p.Add(IndexEntry{R: rect("-", "m", 0, 50), Child: 1, Leaf: true})
	p.Add(IndexEntry{R: rect("m", "-", 0, 50), Child: 2, Leaf: true})
	p.Add(IndexEntry{R: rect("-", "-", 50, -1), Child: 3, Leaf: true})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexCanFit(t *testing.T) {
	p := NewIndex(1, MinSize, 1)
	e := IndexEntry{R: rect("aaaaaaaa", "bbbbbbbb", 0, -1), Child: 1, Leaf: true}
	n := 0
	for p.CanFit(e) {
		p.Add(e)
		n++
		if n > 1000 {
			t.Fatal("CanFit never said no")
		}
	}
	if n == 0 {
		t.Fatal("nothing fit")
	}
	buf := make([]byte, MinSize)
	if err := p.Marshal(buf); err != nil {
		t.Fatalf("page that CanFit approved does not marshal: %v", err)
	}
}
