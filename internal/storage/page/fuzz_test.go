package page

// Fuzzing the page decoder: a page buffer read back from disk can contain
// anything after a crash — torn sector mixes, zeroes, stale data. Unmarshal
// must reject garbage with ErrCorrupt (or decode it), never panic or read
// out of bounds. The page CRC lives a layer below (the pager), so the
// decoder cannot assume integrity.

import (
	"testing"

	"immortaldb/internal/itime"
)

// pageSeeds marshals one specimen of each page type at MinSize.
func pageSeeds(f *testing.F) [][]byte {
	f.Helper()
	ts := itime.Timestamp{Wall: 1 << 41, Seq: 3}
	var seeds [][]byte

	dp := NewData(7, MinSize)
	if err := dp.Insert([]byte("alpha"), []byte("one"), false, 11); err != nil {
		f.Fatal(err)
	}
	if err := dp.InsertStamped([]byte("beta"), []byte("two"), false, ts); err != nil {
		f.Fatal(err)
	}
	if err := dp.Insert([]byte("beta"), nil, true, 12); err != nil {
		f.Fatal(err)
	}
	dp.LSN = 99
	buf := make([]byte, MinSize)
	if err := dp.Marshal(buf); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, append([]byte(nil), buf...))

	ip := NewIndex(8, MinSize, 1)
	ip.Add(IndexEntry{R: Rect{LowKey: nil, HighKey: []byte("m"), HighTS: ts}, Child: 7, Leaf: true})
	ip.Add(IndexEntry{R: Rect{LowKey: []byte("m"), HighKey: nil, LowTS: ts}, Child: 9, Leaf: true})
	buf = make([]byte, MinSize)
	if err := ip.Marshal(buf); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, append([]byte(nil), buf...))

	bp := &BlobPage{ID: 10, Next: 11, Data: []byte("blob contents")}
	buf = make([]byte, MinSize)
	if err := bp.Marshal(buf); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, append([]byte(nil), buf...))
	return seeds
}

func FuzzPageDecode(f *testing.F) {
	for _, seed := range pageSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add(make([]byte, MinSize))                 // all zeroes: invalid type
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})     // data type byte, truncated body
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 2, 9}) // index type byte, truncated body

	f.Fuzz(func(t *testing.T, buf []byte) {
		pg, err := Unmarshal(buf)
		if err != nil {
			return // rejected; not panicking is the requirement
		}
		// Whatever decoded must re-marshal into an equally sized buffer and
		// decode again: recovery writes recovered pages back through this
		// path, so decode must never accept a page that cannot round-trip.
		out := make([]byte, len(buf))
		switch v := pg.(type) {
		case *DataPage:
			err = v.Marshal(out)
		case *IndexPage:
			err = v.Marshal(out)
		case *BlobPage:
			err = v.Marshal(out)
		default:
			t.Fatalf("Unmarshal returned unexpected type %T", pg)
		}
		if err != nil {
			t.Fatalf("decoded page fails to re-marshal into %d bytes: %v", len(buf), err)
		}
		if _, err := Unmarshal(out); err != nil {
			t.Fatalf("re-marshaled page fails to decode: %v", err)
		}
	})
}
