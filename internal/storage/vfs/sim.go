package vfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// SectorSize is the atomic persistence unit of the simulated disk. A write
// that has not been Synced persists across a crash sector by sector: each
// 512-byte sector independently either reaches the platter or is lost, which
// is exactly how an 8 KB page write tears on real hardware.
const SectorSize = 512

// Errors returned by the simulated disk.
var (
	// ErrCrashed reports that the simulated machine has crashed: the
	// operation — and every operation after it until Reboot — does nothing.
	ErrCrashed = errors.New("vfs: simulated crash")
	// ErrInjectedSync is returned by a Sync chosen for transient failure
	// injection; durability does NOT advance.
	ErrInjectedSync = errors.New("vfs: injected sync failure")
	// ErrInjectedIO is the EIO-class error of a sustained fault: the
	// operation fails and does nothing.
	ErrInjectedIO = errors.New("vfs: injected I/O error")
	// ErrNoSpace is the ENOSPC-class error: a write or truncate that would
	// grow a file fails atomically, either injected or because the simulated
	// disk's capacity is exhausted.
	ErrNoSpace = errors.New("vfs: no space left on device")
)

// Fault operation kinds for sustained fault injection.
const (
	OpRead     = "read"
	OpWrite    = "write"
	OpSync     = "sync"
	OpTruncate = "truncate"
	OpRemove   = "remove"
	OpAny      = "any"
)

// Fault is one sustained fault: starting at the StartOp-th I/O operation
// (counting reads, writes, syncs, truncates and removes across all files),
// every matching operation fails with Err until Count failures have been
// delivered (Count < 0: the fault never clears). Unlike SetCrashAt, a fault
// does not stop the machine — the engine keeps running against a disk that
// keeps erroring, which is what the degradation policy must contain.
type Fault struct {
	// Op selects the operation kind ("read", "write", "sync", "truncate",
	// "remove", or "any").
	Op string
	// File, when non-empty, restricts the fault to files whose name contains
	// it as a substring.
	File string
	// Err is the error delivered; nil defaults to ErrInjectedIO.
	Err error
	// StartOp is the 1-based global I/O operation index at which the fault
	// becomes active (0: immediately).
	StartOp int64
	// Count is how many matching operations fail before the fault clears
	// (transient-then-clearing); negative means it never clears (permanent).
	Count int64
	// DropDirty models the "fsyncgate" kernel behaviour on a failed Sync:
	// the dirty pages are silently dropped and marked clean, so a LATER Sync
	// succeeds without ever persisting them. Reads still see the data (it is
	// in the page cache); a crash loses it.
	DropDirty bool
}

func (f *Fault) matches(op, file string) bool {
	if f.Count == 0 {
		return false // exhausted
	}
	if f.Op != OpAny && f.Op != op {
		return false
	}
	if f.File != "" && !strings.Contains(file, f.File) {
		return false
	}
	return true
}

// Op is one recorded mutation on the simulated disk.
type Op struct {
	Index int64 // 1-based global mutation index
	File  string
	Kind  string // "write" | "sync" | "truncate"
	Off   int64  // write offset / truncate size
	Len   int64  // write length
}

func (o Op) String() string {
	switch o.Kind {
	case "write":
		return fmt.Sprintf("#%d %s write [%d,+%d)", o.Index, o.File, o.Off, o.Len)
	case "truncate":
		return fmt.Sprintf("#%d %s truncate to %d", o.Index, o.File, o.Off)
	default:
		return fmt.Sprintf("#%d %s %s", o.Index, o.File, o.Kind)
	}
}

// SimFS is an in-memory simulated disk with deterministic fault injection.
// Every mutation (WriteAt, Sync, Truncate) across all its files is numbered;
// SetCrashAt arms a crash at a chosen mutation index. After the crash, all
// I/O fails with ErrCrashed until Reboot, which resolves unsynced writes the
// way a power loss does: each dirty sector independently persists or is
// lost, chosen by a rand.Rand seeded from (seed, crash index) so a failure
// replays exactly from those two numbers.
type SimFS struct {
	mu      sync.Mutex
	seed    int64
	files   map[string]*simFile
	ops     int64 // mutations executed so far
	crashAt int64 // 1-based index of the mutation that crashes; 0 = never
	crashed bool
	syncErr map[int64]bool // sync ops that fail transiently (no crash)

	// Sustained fault state. ioOps counts EVERY operation (reads included),
	// separately from the mutation counter that numbers crash points, so
	// arming a fault never shifts the crash matrix's coordinates.
	ioOps    int64
	faults   []*Fault
	capacity int64 // total bytes the disk can hold; 0 = unlimited

	trace    []Op // ring buffer of recent mutations
	traceCap int
	traceLen int
}

// NewSim returns an empty simulated disk. seed drives every random choice
// the FS ever makes (there are none until a crash is resolved).
func NewSim(seed int64) *SimFS {
	return &SimFS{
		seed:     seed,
		files:    make(map[string]*simFile),
		syncErr:  make(map[int64]bool),
		traceCap: 64,
	}
}

// Seed returns the seed the FS was created with.
func (fs *SimFS) Seed() int64 { return fs.seed }

// SetCrashAt arms a crash at the n-th mutation (1-based). Zero disarms.
func (fs *SimFS) SetCrashAt(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = n
}

// InjectSyncError makes the n-th mutation, if it is a Sync, fail with
// ErrInjectedSync without crashing the disk or advancing durability.
func (fs *SimFS) InjectSyncError(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncErr[n] = true
}

// InjectFault arms one sustained fault. Multiple faults may be armed; the
// first match (in injection order) delivers its error.
func (fs *SimFS) InjectFault(f Fault) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cp := f
	if cp.Err == nil {
		cp.Err = ErrInjectedIO
	}
	fs.faults = append(fs.faults, &cp)
}

// ClearFaults disarms all sustained faults (the fault "clears": an operator
// replaced the disk, the full volume was expanded). Crash arming and
// capacity are untouched.
func (fs *SimFS) ClearFaults() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.faults = nil
}

// SetCapacity bounds the disk's total size in bytes: any write or truncate
// that would grow the files past it fails with ErrNoSpace, atomically.
// Removing files (or truncating down) frees space. Zero removes the bound.
func (fs *SimFS) SetCapacity(bytes int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.capacity = bytes
}

// FreeBytes implements FreeSpacer against the capacity model.
func (fs *SimFS) FreeBytes() (int64, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.capacity == 0 {
		return 0, false
	}
	free := fs.capacity - fs.usedLocked()
	if free < 0 {
		free = 0
	}
	return free, true
}

// usedLocked sums the volatile size of every file. Caller holds fs.mu.
func (fs *SimFS) usedLocked() int64 {
	var used int64
	for _, f := range fs.files {
		used += int64(len(f.data))
	}
	return used
}

// faultFor numbers one I/O operation and returns the injected error for it,
// if a fault matches. Caller holds fs.mu.
func (fs *SimFS) faultFor(op, file string) (*Fault, error) {
	fs.ioOps++
	for _, f := range fs.faults {
		if !f.matches(op, file) {
			continue
		}
		if f.StartOp > 0 && fs.ioOps < f.StartOp {
			continue
		}
		if f.Count > 0 {
			f.Count--
		}
		return f, f.Err
	}
	return nil, nil
}

// OpCount returns how many mutations have executed.
func (fs *SimFS) OpCount() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// IOOpCount returns how many I/O operations (reads included) have executed —
// the coordinate system sustained faults are scheduled on.
func (fs *SimFS) IOOpCount() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ioOps
}

// Crashed reports whether the simulated machine is down.
func (fs *SimFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Trace returns the most recent mutations, oldest first.
func (fs *SimFS) Trace() []Op {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.traceLen < len(fs.trace) {
		return append([]Op(nil), fs.trace[:fs.traceLen]...)
	}
	// Ring wrapped: oldest entry is at traceLen % cap.
	start := fs.traceLen % fs.traceCap
	out := make([]Op, 0, fs.traceCap)
	out = append(out, fs.trace[start:]...)
	out = append(out, fs.trace[:start]...)
	return out
}

// Crash forces an immediate crash, as if the power failed between
// operations.
func (fs *SimFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = true
}

// Reboot brings the machine back up after a crash: for every file, synced
// content survives intact, and each unsynced (dirty) sector independently
// either persisted or is lost — the choice drawn from a generator seeded by
// (seed, crash op index), so the same (seed, point) pair always yields the
// same surviving bytes. Fault injection is disarmed; subsequent I/O behaves
// like a healthy disk.
func (fs *SimFS) Reboot() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	rng := rand.New(rand.NewSource(fs.seed*1_000_003 + fs.ops))
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fs.files[name]
		survived := append([]byte(nil), f.durable...)
		sectors := make([]int64, 0, len(f.dirty))
		for s := range f.dirty {
			sectors = append(sectors, s)
		}
		sort.Slice(sectors, func(i, j int) bool { return sectors[i] < sectors[j] })
		for _, s := range sectors {
			if rng.Intn(2) == 0 {
				continue // this sector never reached the disk
			}
			lo := s * SectorSize
			hi := lo + SectorSize
			if lo >= int64(len(f.data)) {
				continue
			}
			if hi > int64(len(f.data)) {
				hi = int64(len(f.data))
			}
			if hi > int64(len(survived)) {
				grown := make([]byte, hi)
				copy(grown, survived)
				survived = grown
			}
			copy(survived[lo:hi], f.data[lo:hi])
		}
		f.data = survived
		f.durable = append([]byte(nil), survived...)
		f.dirty = make(map[int64]struct{})
	}
	fs.crashed = false
	fs.crashAt = 0
	fs.syncErr = make(map[int64]bool)
	fs.faults = nil // the replacement hardware is healthy; capacity persists
}

// OpenFile implements FS. Opening is not a mutation and never crashes the
// machine, but fails if it is already down.
func (fs *SimFS) OpenFile(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		f = &simFile{fs: fs, name: name, dirty: make(map[int64]struct{})}
		fs.files[name] = f
	}
	return f, nil
}

// List implements FS: names of existing files with the given prefix, sorted.
func (fs *SimFS) List(prefix string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	var out []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Remove implements FS. Like a real unlink followed by a directory fsync,
// removal is durable immediately; it is a numbered mutation so the crash
// matrix can land on it.
func (fs *SimFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	if _, err := fs.faultFor(OpRemove, name); err != nil {
		return err
	}
	if _, ok := fs.files[name]; !ok {
		return nil
	}
	_, crash := fs.record(name, "remove", 0, 0)
	if crash {
		fs.crashed = true
		return ErrCrashed
	}
	delete(fs.files, name)
	return nil
}

// record numbers one mutation, traces it, and reports whether it is the
// armed crash point. Caller holds fs.mu.
func (fs *SimFS) record(file, kind string, off, n int64) (int64, bool) {
	fs.ops++
	op := Op{Index: fs.ops, File: file, Kind: kind, Off: off, Len: n}
	if len(fs.trace) < fs.traceCap {
		fs.trace = append(fs.trace, op)
	} else {
		fs.trace[fs.traceLen%fs.traceCap] = op
	}
	fs.traceLen++
	return fs.ops, fs.crashAt != 0 && fs.ops == fs.crashAt
}

// simFile is one file on the simulated disk. data is the volatile view (what
// reads observe while the machine is up); durable is the last synced image;
// dirty marks sectors written since the last successful Sync.
type simFile struct {
	fs      *SimFS
	name    string
	data    []byte
	durable []byte
	dirty   map[int64]struct{}
}

func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	if _, err := f.fs.faultFor(OpRead, f.name); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative offset %d", off)
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *simFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative offset %d", off)
	}
	// Injected and capacity failures are atomic: nothing is written, no
	// sector goes dirty. The op is not a crash-matrix mutation (it did not
	// mutate), so arming faults never shifts crash coordinates.
	if _, err := f.fs.faultFor(OpWrite, f.name); err != nil {
		return 0, err
	}
	end := off + int64(len(p))
	if grow := end - int64(len(f.data)); grow > 0 && f.fs.capacity > 0 {
		if f.fs.usedLocked()+grow > f.fs.capacity {
			return 0, ErrNoSpace
		}
	}
	_, crash := f.fs.record(f.name, "write", off, int64(len(p)))
	if end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], p)
	for s := off / SectorSize; s*SectorSize < end; s++ {
		f.dirty[s] = struct{}{}
	}
	if crash {
		// The write was in flight when the power failed: its sectors are
		// dirty and Reboot decides which of them survive.
		f.fs.crashed = true
		return 0, ErrCrashed
	}
	return len(p), nil
}

func (f *simFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return ErrCrashed
	}
	if flt, err := f.fs.faultFor(OpSync, f.name); err != nil {
		if flt.DropDirty {
			// fsyncgate: the kernel reports the failure once, drops the dirty
			// pages, and marks them clean — the data stays readable in the
			// page cache but will NEVER reach the platter. A later Sync
			// "succeeds" vacuously.
			f.dirty = make(map[int64]struct{})
		}
		// Without DropDirty the sectors stay dirty: durability simply did
		// not advance.
		return err
	}
	op, crash := f.fs.record(f.name, "sync", 0, 0)
	if crash {
		f.fs.crashed = true
		return ErrCrashed
	}
	if f.fs.syncErr[op] {
		return ErrInjectedSync
	}
	f.durable = append(f.durable[:0], f.data...)
	f.dirty = make(map[int64]struct{})
	return nil
}

func (f *simFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return ErrCrashed
	}
	if size < 0 {
		return fmt.Errorf("vfs: negative size %d", size)
	}
	if _, err := f.fs.faultFor(OpTruncate, f.name); err != nil {
		return err
	}
	if grow := size - int64(len(f.data)); grow > 0 && f.fs.capacity > 0 {
		if f.fs.usedLocked()+grow > f.fs.capacity {
			return ErrNoSpace
		}
	}
	_, crash := f.fs.record(f.name, "truncate", size, 0)
	if crash {
		f.fs.crashed = true
		return ErrCrashed
	}
	switch {
	case size < int64(len(f.data)):
		f.data = f.data[:size]
		for s := range f.dirty {
			if s*SectorSize >= size {
				delete(f.dirty, s)
			}
		}
	case size > int64(len(f.data)):
		grown := make([]byte, size)
		copy(grown, f.data)
		f.data = grown
		// Growth is metadata plus implied zeros; like a real filesystem the
		// new length is not durable until Sync, which falls out naturally:
		// durable keeps the old length and Reboot reverts to it.
	}
	return nil
}

func (f *simFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	return int64(len(f.data)), nil
}

func (f *simFile) Close() error {
	// Closing flushes nothing on the simulated disk: only Sync persists.
	return nil
}
