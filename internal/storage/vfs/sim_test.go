package vfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestSimReadWriteRoundTrip(t *testing.T) {
	fs := NewSim(1)
	f, err := fs.OpenFile("a")
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("hello, simulated world")
	if _, err := f.WriteAt(in, 100); err != nil {
		t.Fatal(err)
	}
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if sz != 100+int64(len(in)) {
		t.Fatalf("size = %d", sz)
	}
	out := make([]byte, len(in))
	if _, err := f.ReadAt(out, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("read %q", out)
	}
	// Gap before the write reads as zeros.
	gap := make([]byte, 100)
	if _, err := f.ReadAt(gap, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range gap {
		if b != 0 {
			t.Fatal("gap not zero-filled")
		}
	}
	if _, err := f.ReadAt(out, sz); err != io.EOF {
		t.Fatalf("read past end: %v", err)
	}
}

func TestSimSameNameSameFile(t *testing.T) {
	fs := NewSim(1)
	f1, _ := fs.OpenFile("x")
	f2, _ := fs.OpenFile("x")
	if _, err := f1.WriteAt([]byte{42}, 0); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, err := f2.ReadAt(b, 0); err != nil {
		t.Fatal(err)
	}
	if b[0] != 42 {
		t.Fatal("second handle does not see the write")
	}
}

func TestSimCrashLosesUnsynced(t *testing.T) {
	fs := NewSim(7)
	f, _ := fs.OpenFile("a")
	if _, err := f.WriteAt(bytes.Repeat([]byte{1}, SectorSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Overwrite without sync: the crash may keep either version per sector,
	// but with one sector the content must be all-1 or all-2, never mixed.
	if _, err := f.WriteAt(bytes.Repeat([]byte{2}, SectorSize), 0); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := f.WriteAt([]byte{9}, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write while down: %v", err)
	}
	fs.Reboot()
	out := make([]byte, SectorSize)
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	if out[0] != out[SectorSize-1] || (out[0] != 1 && out[0] != 2) {
		t.Fatalf("sector not atomic: first=%d last=%d", out[0], out[SectorSize-1])
	}
}

func TestSimCrashAtNthOpAndTornWrite(t *testing.T) {
	// An 8-sector page written in one WriteAt must be able to tear: across
	// seeds, some reboot outcome keeps a strict subset of the new sectors.
	torn := false
	for seed := int64(0); seed < 32 && !torn; seed++ {
		fs := NewSim(seed)
		f, _ := fs.OpenFile("p")
		old := bytes.Repeat([]byte{0xAA}, 8*SectorSize)
		if _, err := f.WriteAt(old, 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		fs.SetCrashAt(fs.OpCount() + 1)
		nw := bytes.Repeat([]byte{0xBB}, 8*SectorSize)
		if _, err := f.WriteAt(nw, 0); !errors.Is(err, ErrCrashed) {
			t.Fatalf("armed write: %v", err)
		}
		fs.Reboot()
		got := make([]byte, 8*SectorSize)
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		newSectors := 0
		for s := 0; s < 8; s++ {
			sec := got[s*SectorSize : (s+1)*SectorSize]
			switch sec[0] {
			case 0xBB:
				newSectors++
			case 0xAA:
			default:
				t.Fatalf("seed %d sector %d: garbage byte %x", seed, s, sec[0])
			}
			if !bytes.Equal(sec, bytes.Repeat([]byte{sec[0]}, SectorSize)) {
				t.Fatalf("seed %d sector %d torn inside a sector", seed, s)
			}
		}
		if newSectors > 0 && newSectors < 8 {
			torn = true
		}
	}
	if !torn {
		t.Fatal("no seed produced a torn page in 32 tries")
	}
}

func TestSimRebootDeterministic(t *testing.T) {
	run := func() []byte {
		fs := NewSim(99)
		f, _ := fs.OpenFile("p")
		f.WriteAt(bytes.Repeat([]byte{1}, 4*SectorSize), 0)
		f.Sync()
		fs.SetCrashAt(fs.OpCount() + 2)
		f.WriteAt(bytes.Repeat([]byte{2}, 2*SectorSize), 0)
		f.WriteAt(bytes.Repeat([]byte{3}, 2*SectorSize), 2*SectorSize)
		fs.Reboot()
		out := make([]byte, 4*SectorSize)
		f.ReadAt(out, 0)
		return out
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("same (seed, point) produced different survivors")
	}
}

func TestSimInjectedSyncError(t *testing.T) {
	fs := NewSim(3)
	f, _ := fs.OpenFile("a")
	f.WriteAt([]byte{1}, 0)
	fs.InjectSyncError(fs.OpCount() + 1)
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync: %v", err)
	}
	// Durability must not have advanced: a crash now can lose the write.
	fs.Crash()
	fs.Reboot()
	// Whether the sector survived is seed-dependent; what matters is the
	// next sync succeeds and then the data is stable across crashes.
	f.WriteAt([]byte{5}, 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Reboot()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, 0); err != nil {
		t.Fatal(err)
	}
	if b[0] != 5 {
		t.Fatalf("synced byte lost: %d", b[0])
	}
}

func TestSimTruncateNotDurableUntilSync(t *testing.T) {
	fs := NewSim(5)
	f, _ := fs.OpenFile("a")
	f.WriteAt(bytes.Repeat([]byte{1}, SectorSize), 0)
	f.Sync()
	if err := f.Truncate(3 * SectorSize); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 3*SectorSize {
		t.Fatalf("size after grow = %d", sz)
	}
	fs.Crash()
	fs.Reboot()
	if sz, _ := f.Size(); sz != SectorSize {
		t.Fatalf("unsynced growth survived crash: size = %d", sz)
	}
	if err := f.Truncate(2 * SectorSize); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Reboot()
	if sz, _ := f.Size(); sz != 2*SectorSize {
		t.Fatalf("synced growth lost: size = %d", sz)
	}
}

func TestSimTrace(t *testing.T) {
	fs := NewSim(1)
	f, _ := fs.OpenFile("a")
	f.WriteAt([]byte{1}, 0)
	f.Sync()
	tr := fs.Trace()
	if len(tr) != 2 || tr[0].Kind != "write" || tr[1].Kind != "sync" {
		t.Fatalf("trace = %v", tr)
	}
	if tr[0].Index != 1 || tr[1].Index != 2 {
		t.Fatalf("indices = %d,%d", tr[0].Index, tr[1].Index)
	}
}

func TestOSFSImplements(t *testing.T) {
	dir := t.TempDir()
	f, err := OS().OpenFile(dir + "/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if sz, err := f.Size(); err != nil || sz != 1 {
		t.Fatalf("size = %d, %v", sz, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}
