// Package vfs defines the virtual file system boundary between the storage
// engine and the operating system. The pager, the write-ahead log, and the
// copy-on-write timestamp table all perform their I/O through the File
// interface, so the entire durable state of a database can be redirected —
// in production to real files (OS), in crash tests to a simulated disk with
// deterministic fault injection (Sim).
package vfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the storage engine needs. Implementations
// must be safe for concurrent use by multiple goroutines.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes all preceding writes durable. Until Sync returns nil, any
	// written data may be lost — wholly or partially, at sector granularity —
	// in a crash.
	Sync() error
	// Truncate changes the file size; growth reads back as zeros.
	Truncate(size int64) error
	// Size returns the current file size in bytes.
	Size() (int64, error)
	Close() error
}

// FS opens files. Paths are opaque to the engine; a simulated FS may treat
// them as pure names.
type FS interface {
	// OpenFile opens the named file read-write, creating it if absent.
	OpenFile(name string) (File, error)
}

// osFS is the production FS over the operating system.
type osFS struct{}

// OS returns the real-file implementation of FS.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// osFile adapts *os.File to File. The only addition is Size.
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
