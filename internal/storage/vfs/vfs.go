// Package vfs defines the virtual file system boundary between the storage
// engine and the operating system. The pager, the write-ahead log, and the
// copy-on-write timestamp table all perform their I/O through the File
// interface, so the entire durable state of a database can be redirected —
// in production to real files (OS), in crash tests to a simulated disk with
// deterministic fault injection (Sim).
package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
)

// File is the subset of *os.File the storage engine needs. Implementations
// must be safe for concurrent use by multiple goroutines.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes all preceding writes durable. Until Sync returns nil, any
	// written data may be lost — wholly or partially, at sector granularity —
	// in a crash. A failed Sync makes NO promise about the fate of the data
	// it covered: on common filesystems the dirty pages are dropped and a
	// later Sync returns nil without ever having persisted them, so callers
	// must never retry-and-trust a failed Sync.
	Sync() error
	// Truncate changes the file size; growth reads back as zeros. Growth may
	// fail with an ENOSPC-class error when the filesystem is full.
	Truncate(size int64) error
	// Size returns the current file size in bytes.
	Size() (int64, error)
	Close() error
}

// FS opens, lists and removes files. Paths are opaque to the engine; a
// simulated FS may treat them as pure names.
type FS interface {
	// OpenFile opens the named file read-write, creating it if absent.
	OpenFile(name string) (File, error)
	// List returns the names of existing files whose name starts with
	// prefix, sorted. The WAL uses it to discover its segment files.
	List(prefix string) ([]string, error)
	// Remove deletes the named file. Removing an absent file is not an
	// error. The WAL uses it to delete dead segments at checkpoint.
	Remove(name string) error
}

// FreeSpacer is optionally implemented by an FS that can report free space,
// enabling the WAL's low-water check to fail a segment extension cleanly
// before any byte of it is written.
type FreeSpacer interface {
	// FreeBytes returns the free space available to new writes and true, or
	// (0, false) when the filesystem cannot tell.
	FreeBytes() (int64, bool)
}

// Errno classes for observability and degradation policy. ErrClass maps any
// error from a vfs.File operation onto one of these.
const (
	ClassNoSpace = "enospc"
	ClassIO      = "eio"
	ClassCrash   = "crash"
	ClassOther   = "other"
)

// ErrClass classifies an I/O error by errno family, covering both the
// simulated disk's injected errors and real OS errnos.
func ErrClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrNoSpace) || errors.Is(err, syscall.ENOSPC):
		return ClassNoSpace
	case errors.Is(err, ErrInjectedIO) || errors.Is(err, ErrInjectedSync) || errors.Is(err, syscall.EIO):
		return ClassIO
	case errors.Is(err, ErrCrashed):
		return ClassCrash
	default:
		return ClassOther
	}
}

// IsNoSpace reports whether err is an out-of-disk-space condition.
func IsNoSpace(err error) bool { return ErrClass(err) == ClassNoSpace }

// osFS is the production FS over the operating system.
type osFS struct{}

// OS returns the real-file implementation of FS.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) List(prefix string) ([]string, error) {
	dir := filepath.Dir(prefix)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		full := filepath.Join(dir, e.Name())
		if strings.HasPrefix(full, prefix) {
			out = append(out, full)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (osFS) Remove(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// osFile adapts *os.File to File. The only addition is Size.
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
