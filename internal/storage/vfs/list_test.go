package vfs

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// List takes a NAME prefix, not a directory: "a" matches everything that
// starts with the string "a", including files under a sibling directory
// "a2/". Call sites listing a directory must therefore pass
// dir + string(filepath.Separator), and call sites listing a file family
// ("wal.log.000001", "hist.3.run.7") must include the trailing separator of
// the family name ("wal.log.", "hist."). These tests pin that contract for
// both implementations so a future call site that drops the separator fails
// here instead of silently over- or under-matching in production.

func simWrite(t *testing.T, fs *SimFS, name string) {
	t.Helper()
	f, err := fs.OpenFile(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync %s: %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", name, err)
	}
}

func TestSimListPrefixSemantics(t *testing.T) {
	fs := NewSim(1)
	sep := string(filepath.Separator)
	for _, name := range []string{
		"a" + sep + "wal.log.000001",
		"a" + sep + "wal.logical", // extends the "wal.log" stem without the dot
		"a2" + sep + "wal.log.000001",
	} {
		simWrite(t, fs, name)
	}

	// A bare directory name is a foot-gun: it also matches the sibling "a2".
	got, err := fs.List("a")
	if err != nil {
		t.Fatalf("List(a): %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("List(%q) = %v; a bare name prefix must match sibling dirs too (the reason call sites append the separator)", "a", got)
	}

	// With the trailing separator, only the directory's own files match.
	got, err = fs.List("a" + sep)
	if err != nil {
		t.Fatalf("List(a%s): %v", sep, err)
	}
	want := []string{"a" + sep + "wal.log.000001", "a" + sep + "wal.logical"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List(%q) = %v, want %v", "a"+sep, got, want)
	}

	// File families need their trailing dot, or name-extending siblings leak in.
	got, err = fs.List("a" + sep + "wal.log.")
	if err != nil {
		t.Fatalf("List(wal.log.): %v", err)
	}
	want = []string{"a" + sep + "wal.log.000001"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List(%q) = %v, want %v", "a"+sep+"wal.log.", got, want)
	}
}

func TestOSListPrefixSemantics(t *testing.T) {
	base := t.TempDir()
	sep := string(filepath.Separator)
	for _, dir := range []string{"a", "a2"} {
		if err := os.MkdirAll(filepath.Join(base, dir), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{
		filepath.Join(base, "a", "wal.log.000001"),
		filepath.Join(base, "a", "wal.logical"),
		filepath.Join(base, "a2", "wal.log.000001"),
	} {
		if err := os.WriteFile(name, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fs := OS()

	// The OS implementation reads filepath.Dir(prefix): with a bare directory
	// name that is the PARENT, whose entries are all directories and are
	// skipped — the listing is silently empty. Omitting the separator
	// under-matches here where SimFS over-matches; both are wrong, which is
	// why every call site appends it.
	got, err := fs.List(filepath.Join(base, "a"))
	if err != nil {
		t.Fatalf("List(a): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("List(%q) = %v, want empty (parent holds only directories)", filepath.Join(base, "a"), got)
	}

	got, err = fs.List(filepath.Join(base, "a") + sep)
	if err != nil {
		t.Fatalf("List(a%s): %v", sep, err)
	}
	want := []string{
		filepath.Join(base, "a", "wal.log.000001"),
		filepath.Join(base, "a", "wal.logical"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List(%q) = %v, want %v", filepath.Join(base, "a")+sep, got, want)
	}

	got, err = fs.List(filepath.Join(base, "a", "wal.log."))
	if err != nil {
		t.Fatalf("List(wal.log.): %v", err)
	}
	want = []string{filepath.Join(base, "a", "wal.log.000001")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List(%q) = %v, want %v", filepath.Join(base, "a", "wal.log."), got, want)
	}
}
