package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"immortaldb/internal/itime"
)

func k(s string) Key { return Key{Table: 1, Key: s} }

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	if err := m.Acquire(1, k("a"), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, k("a"), Shared); err != nil {
		t.Fatal(err)
	}
	if mode, ok := m.Held(1, k("a")); !ok || mode != Shared {
		t.Fatal("lock not held")
	}
}

func TestExclusiveBlocksAndWakes(t *testing.T) {
	m := New()
	if err := m.Acquire(1, k("a"), Exclusive); err != nil {
		t.Fatal(err)
	}
	var got atomic.Bool
	done := make(chan error, 1)
	go func() {
		done <- m.Acquire(2, k("a"), Exclusive)
		got.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if got.Load() {
		t.Fatal("second X granted while first held")
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReacquireIsIdempotent(t *testing.T) {
	m := New()
	for i := 0; i < 3; i++ {
		if err := m.Acquire(1, k("a"), Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Acquire(1, k("a"), Shared); err != nil {
		t.Fatal("S under own X must be free:", err)
	}
}

func TestUpgrade(t *testing.T) {
	m := New()
	if err := m.Acquire(1, k("a"), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, k("a"), Exclusive); err != nil {
		t.Fatal("sole-holder upgrade must succeed:", err)
	}
	if mode, _ := m.Held(1, k("a")); mode != Exclusive {
		t.Fatal("upgrade did not stick")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New()
	m.Timeout = 5 * time.Second
	if err := m.Acquire(1, k("a"), Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, k("b"), Exclusive); err != nil {
		t.Fatal(err)
	}
	// txn 1 blocks on b.
	errc := make(chan error, 1)
	go func() { errc <- m.Acquire(1, k("b"), Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	// txn 2 requesting a closes the cycle and must get ErrDeadlock.
	err := m.Acquire(2, k("a"), Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Victim aborts; txn 1 proceeds.
	m.ReleaseAll(2)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two S holders both upgrading is the classic conversion deadlock.
	m := New()
	m.Timeout = 5 * time.Second
	m.Acquire(1, k("a"), Shared)
	m.Acquire(2, k("a"), Shared)
	errc := make(chan error, 1)
	go func() { errc <- m.Acquire(1, k("a"), Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Acquire(2, k("a"), Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestTimeout(t *testing.T) {
	m := New()
	m.Timeout = 30 * time.Millisecond
	m.Acquire(1, k("a"), Exclusive)
	err := m.Acquire(2, k("a"), Exclusive)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// After the timeout the waiter is gone; release must not panic and the
	// key must be reusable.
	m.ReleaseAll(1)
	if err := m.Acquire(2, k("a"), Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOFairness(t *testing.T) {
	m := New()
	m.Acquire(1, k("a"), Exclusive)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 2; i <= 4; i++ {
		wg.Add(1)
		tid := itime.TID(i)
		go func(n int) {
			defer wg.Done()
			if err := m.Acquire(tid, k("a"), Exclusive); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, n)
			mu.Unlock()
			m.ReleaseAll(tid)
		}(i)
		time.Sleep(20 * time.Millisecond) // establish queue order
	}
	m.ReleaseAll(1)
	wg.Wait()
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 4 {
		t.Fatalf("grant order = %v", order)
	}
}

func TestWaiterBehindQueueDoesNotStarve(t *testing.T) {
	// A new S request must queue behind a waiting X (no reader barging).
	m := New()
	m.Acquire(1, k("a"), Shared)
	xdone := make(chan error, 1)
	go func() { xdone <- m.Acquire(2, k("a"), Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	sdone := make(chan error, 1)
	go func() { sdone <- m.Acquire(3, k("a"), Shared) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-sdone:
		t.Fatal("reader barged past waiting writer")
	default:
	}
	m.ReleaseAll(1)
	if err := <-xdone; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-sdone; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllCleansUp(t *testing.T) {
	m := New()
	m.Acquire(1, k("a"), Exclusive)
	m.Acquire(1, k("b"), Shared)
	m.ReleaseAll(1)
	if m.Count() != 0 {
		t.Fatalf("%d lock entries leaked", m.Count())
	}
	if _, ok := m.Held(1, k("a")); ok {
		t.Fatal("lock still held after ReleaseAll")
	}
}

func TestConcurrentStress(t *testing.T) {
	m := New()
	m.Timeout = 2 * time.Second
	const goroutines = 16
	var wg sync.WaitGroup
	var deadlocks atomic.Int64
	keys := []string{"a", "b", "c", "d"}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tid := itime.TID(g*1000 + i + 1)
				ok := true
				for j := 0; j < 3; j++ {
					key := k(keys[(g+i+j)%len(keys)])
					mode := Shared
					if (i+j)%3 == 0 {
						mode = Exclusive
					}
					if err := m.Acquire(tid, key, mode); err != nil {
						if errors.Is(err, ErrDeadlock) {
							deadlocks.Add(1)
							ok = false
							break
						}
						t.Error(err)
						ok = false
						break
					}
				}
				_ = ok
				m.ReleaseAll(tid)
			}
		}(g)
	}
	wg.Wait()
	if m.Count() != 0 {
		t.Fatalf("%d entries leaked after stress", m.Count())
	}
	t.Logf("deadlocks detected and broken: %d", deadlocks.Load())
}
