// Package lock implements the fine-grained lock manager backing serializable
// transactions (Section 2.1: "SQL Server supports a number of isolation
// modes, including serializable, via fine grained locking"). It provides
// shared/exclusive record locks with lock upgrade, wait-for-graph deadlock
// detection, and a timeout backstop.
//
// Snapshot-isolation reads never touch the lock manager — that is snapshot
// isolation's selling point ("reads are not blocked by concurrent updates").
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"immortaldb/internal/itime"
	"immortaldb/internal/obs"
)

// Observability: blocked-wait latency (uncontended grants are not observed)
// and the two abort causes the lock manager can inflict on a transaction.
var (
	obsWaitLat   = obs.NewHistogram("immortaldb_lock_wait_seconds", "Time a transaction spent blocked waiting for a record lock (granted waits only).", obs.LatencyBuckets)
	obsTimeouts  = obs.NewCounter("immortaldb_lock_timeouts_total", "Lock waits abandoned by the timeout backstop.")
	obsDeadlocks = obs.NewCounter("immortaldb_lock_deadlocks_total", "Lock requests refused because waiting would close a wait-for cycle.")
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Key names a lockable resource: one record of one table.
type Key struct {
	Table uint32
	Key   string
}

// Errors returned by Acquire.
var (
	ErrDeadlock = errors.New("lock: deadlock detected")
	ErrTimeout  = errors.New("lock: timed out waiting for lock")
)

// DefaultTimeout bounds a single lock wait.
const DefaultTimeout = 10 * time.Second

type waiter struct {
	tid  itime.TID
	mode Mode
	ch   chan error // closed/sent when granted or aborted
}

type entry struct {
	holders map[itime.TID]Mode
	queue   []*waiter
}

// Manager is the lock manager. The zero value is not usable; call New.
type Manager struct {
	mu      sync.Mutex
	locks   map[Key]*entry
	held    map[itime.TID]map[Key]Mode // per-transaction held locks
	waitFor map[itime.TID]Key          // which key each blocked txn waits on
	Timeout time.Duration
}

// New returns an empty lock manager.
func New() *Manager {
	return &Manager{
		locks:   make(map[Key]*entry),
		held:    make(map[itime.TID]map[Key]Mode),
		waitFor: make(map[itime.TID]Key),
		Timeout: DefaultTimeout,
	}
}

// compatible reports whether a request by tid in mode m can be granted given
// the current holders.
func (e *entry) compatible(tid itime.TID, m Mode) bool {
	for h, hm := range e.holders {
		if h == tid {
			continue // own lock: upgrade handled by caller
		}
		if m == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// Acquire takes key in mode for tid, blocking until granted, deadlock, or
// timeout. Re-acquiring an already-held lock (same or weaker mode) returns
// immediately; holding Shared and requesting Exclusive performs an upgrade.
func (m *Manager) Acquire(tid itime.TID, key Key, mode Mode) error {
	m.mu.Lock()
	e, ok := m.locks[key]
	if !ok {
		e = &entry{holders: make(map[itime.TID]Mode)}
		m.locks[key] = e
	}
	if have, holding := e.holders[tid]; holding {
		if have == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil
		}
		// Upgrade S -> X: grantable when no other holder.
		if len(e.holders) == 1 {
			e.holders[tid] = Exclusive
			m.held[tid][key] = Exclusive
			m.mu.Unlock()
			return nil
		}
	} else if e.compatible(tid, mode) && len(e.queue) == 0 {
		m.grantLocked(e, tid, key, mode)
		m.mu.Unlock()
		return nil
	}

	// Must wait. Deadlock check: would waiting close a cycle?
	if m.wouldDeadlockLocked(tid, e) {
		m.mu.Unlock()
		obsDeadlocks.Inc()
		return fmt.Errorf("%w: txn %d on %v", ErrDeadlock, tid, key)
	}
	w := &waiter{tid: tid, mode: mode, ch: make(chan error, 1)}
	e.queue = append(e.queue, w)
	m.waitFor[tid] = key
	timeout := m.Timeout
	m.mu.Unlock()

	waitStart := obs.Now()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-w.ch:
		obsWaitLat.ObserveSince(waitStart)
		return err
	case <-timer.C:
		m.mu.Lock()
		// Re-check: the grant may have raced the timer.
		select {
		case err := <-w.ch:
			m.mu.Unlock()
			obsWaitLat.ObserveSince(waitStart)
			return err
		default:
		}
		m.removeWaiterLocked(key, w)
		delete(m.waitFor, tid)
		m.mu.Unlock()
		obsTimeouts.Inc()
		return fmt.Errorf("%w: txn %d on %v", ErrTimeout, tid, key)
	}
}

func (m *Manager) grantLocked(e *entry, tid itime.TID, key Key, mode Mode) {
	if cur, ok := e.holders[tid]; !ok || mode == Exclusive || cur == Shared {
		if cur, ok := e.holders[tid]; !ok || mode > cur {
			e.holders[tid] = mode
		}
	}
	hm := m.held[tid]
	if hm == nil {
		hm = make(map[Key]Mode)
		m.held[tid] = hm
	}
	if cur, ok := hm[key]; !ok || mode > cur {
		hm[key] = mode
	}
}

// wouldDeadlockLocked reports whether blocking tid on entry e creates a
// cycle in the wait-for graph (tid waits for e's holders; each blocked txn
// waits for the holders of the key it is queued on).
func (m *Manager) wouldDeadlockLocked(tid itime.TID, e *entry) bool {
	// DFS from each current holder of e: can we reach tid?
	seen := make(map[itime.TID]bool)
	var reach func(from itime.TID) bool
	reach = func(from itime.TID) bool {
		if from == tid {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		key, blocked := m.waitFor[from]
		if !blocked {
			return false
		}
		blockedOn, ok := m.locks[key]
		if !ok {
			return false
		}
		for h := range blockedOn.holders {
			if h != from && reach(h) {
				return true
			}
		}
		return false
	}
	for h := range e.holders {
		if h != tid && reach(h) {
			return true
		}
	}
	return false
}

func (m *Manager) removeWaiterLocked(key Key, w *waiter) {
	e, ok := m.locks[key]
	if !ok {
		return
	}
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// ReleaseAll frees every lock held by tid (commit or abort) and wakes
// waiters that become grantable.
func (m *Manager) ReleaseAll(tid itime.TID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key := range m.held[tid] {
		e := m.locks[key]
		if e == nil {
			continue
		}
		delete(e.holders, tid)
		m.wakeLocked(key, e)
		if len(e.holders) == 0 && len(e.queue) == 0 {
			delete(m.locks, key)
		}
	}
	delete(m.held, tid)
	delete(m.waitFor, tid)
}

// wakeLocked grants queued waiters in FIFO order while compatible.
func (m *Manager) wakeLocked(key Key, e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if have, holding := e.holders[w.tid]; holding && w.mode == Exclusive && have == Shared {
			// Queued upgrade.
			if len(e.holders) != 1 {
				return
			}
		} else if !e.compatible(w.tid, w.mode) {
			return
		}
		e.queue = e.queue[1:]
		m.grantLocked(e, w.tid, key, w.mode)
		delete(m.waitFor, w.tid)
		w.ch <- nil
	}
}

// Held returns the mode tid holds on key, if any.
func (m *Manager) Held(tid itime.TID, key Key) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[tid][key]
	return mode, ok
}

// Count returns the number of distinct locked resources (for tests).
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.locks)
}
