// Package itime implements Immortal DB's notion of time: transaction IDs,
// the 12-byte timestamp (an 8-byte wall-clock value with 20 ms resolution
// extended by a 4-byte sequence number), clocks, and the commit-time
// sequencer that hands out timestamps consistent with serialization order.
//
// The representation follows Section 2.1 of the paper: SQL Server's
// date/time has 20 ms resolution, which cannot give every transaction a
// unique time, so the timestamp is extended with a sequence number that
// distinguishes up to 2^32 transactions within a single 20 ms tick.
package itime

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"
)

// TID identifies a transaction. TIDs are assigned in ascending order, which
// keeps recent entries clustered at the tail of the Persistent Timestamp
// Table (Section 2.2).
type TID uint64

// TickDuration is the resolution of the wall-clock component of a timestamp,
// mirroring SQL Server's 20 ms date/time resolution.
const TickDuration = 20 * time.Millisecond

// EncodedLen is the on-disk size of a Timestamp: 8 bytes of wall time plus a
// 4 byte sequence number (the Ttime and SN fields of Figure 1b).
const EncodedLen = 12

// Timestamp is a transaction timestamp: Wall counts TickDuration units since
// the Unix epoch; Seq orders transactions that commit within the same tick.
// The zero Timestamp is "no time" and orders before every real timestamp.
type Timestamp struct {
	Wall int64
	Seq  uint32
}

// Max is the largest representable timestamp; it is used as the open end
// time of current pages and current record versions.
var Max = Timestamp{Wall: 1<<63 - 1, Seq: 1<<32 - 1}

// FromTime converts a wall-clock time to a Timestamp with sequence number 0.
func FromTime(t time.Time) Timestamp {
	return Timestamp{Wall: t.UnixNano() / int64(TickDuration)}
}

// Time converts the wall component back to a time.Time. The sequence number
// carries no wall-clock information and is discarded.
func (ts Timestamp) Time() time.Time {
	return time.Unix(0, ts.Wall*int64(TickDuration)).UTC()
}

// IsZero reports whether ts is the zero ("no time") timestamp.
func (ts Timestamp) IsZero() bool { return ts.Wall == 0 && ts.Seq == 0 }

// IsMax reports whether ts is the open-ended maximum timestamp.
func (ts Timestamp) IsMax() bool { return ts == Max }

// Compare returns -1, 0, or +1 as ts sorts before, equal to, or after o.
// Ordering is lexicographic on (Wall, Seq), which agrees with commit order.
func (ts Timestamp) Compare(o Timestamp) int {
	switch {
	case ts.Wall < o.Wall:
		return -1
	case ts.Wall > o.Wall:
		return 1
	case ts.Seq < o.Seq:
		return -1
	case ts.Seq > o.Seq:
		return 1
	default:
		return 0
	}
}

// Less reports whether ts orders strictly before o.
func (ts Timestamp) Less(o Timestamp) bool { return ts.Compare(o) < 0 }

// After reports whether ts orders strictly after o.
func (ts Timestamp) After(o Timestamp) bool { return ts.Compare(o) > 0 }

// Next returns the smallest timestamp strictly greater than ts.
func (ts Timestamp) Next() Timestamp {
	if ts.Seq == 1<<32-1 {
		return Timestamp{Wall: ts.Wall + 1, Seq: 0}
	}
	return Timestamp{Wall: ts.Wall, Seq: ts.Seq + 1}
}

// String renders the timestamp as an RFC 3339 time plus the sequence number,
// e.g. "2004-08-12T10:15:20.000Z#3".
func (ts Timestamp) String() string {
	if ts.IsZero() {
		return "<zero>"
	}
	if ts.IsMax() {
		return "<max>"
	}
	return fmt.Sprintf("%s#%d", ts.Time().Format("2006-01-02T15:04:05.000Z"), ts.Seq)
}

// Encode writes the 12-byte big-endian representation into b. Big-endian
// encoding makes byte order agree with time order, so encoded timestamps can
// be compared with bytes.Compare.
func (ts Timestamp) Encode(b []byte) {
	_ = b[EncodedLen-1]
	binary.BigEndian.PutUint64(b[0:8], uint64(ts.Wall))
	binary.BigEndian.PutUint32(b[8:12], ts.Seq)
}

// AppendEncode appends the 12-byte representation to b.
func (ts Timestamp) AppendEncode(b []byte) []byte {
	var tmp [EncodedLen]byte
	ts.Encode(tmp[:])
	return append(b, tmp[:]...)
}

// DecodeTimestamp reads a Timestamp previously written by Encode.
func DecodeTimestamp(b []byte) Timestamp {
	_ = b[EncodedLen-1]
	return Timestamp{
		Wall: int64(binary.BigEndian.Uint64(b[0:8])),
		Seq:  binary.BigEndian.Uint32(b[8:12]),
	}
}

// asOfLayouts are the time layouts accepted by ParseAsOf, including the
// paper's US-style example ("8/12/2004 10:15:20").
var asOfLayouts = []string{
	"2006-01-02T15:04:05.999999999Z07:00",
	"2006-01-02T15:04:05",
	"2006-01-02 15:04:05.999",
	"2006-01-02 15:04:05",
	"2006-01-02",
	"1/2/2006 15:04:05",
	"1/2/2006",
}

// ParseAsOf parses a user-supplied AS OF time string into a Timestamp whose
// sequence number is the maximum, so that an AS OF query at clock time t sees
// every transaction that committed during tick t.
func ParseAsOf(s string) (Timestamp, error) {
	s = strings.TrimSpace(s)
	for _, layout := range asOfLayouts {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			ts := FromTime(t)
			ts.Seq = 1<<32 - 1
			return ts, nil
		}
	}
	return Timestamp{}, fmt.Errorf("itime: cannot parse AS OF time %q", s)
}
