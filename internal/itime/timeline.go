package itime

import (
	"container/heap"
	"context"
	"sync"
	"time"
)

// Timeline is the engine's notion of flowing time: it extends Clock (wall
// ticks for commit timestamps) with the operations the serving layer needs —
// reading a time.Time for deadlines, sleeping, and scheduling callbacks. The
// real implementation delegates to the time package; SimTimeline is a virtual
// timeline that advances only when told to, so whole client/server clusters
// can run wall-clock-fast under the deterministic simulation harness while
// commit timestamps, idle deadlines and retry backoffs all draw from the
// same clock.
type Timeline interface {
	Clock
	// Now returns the current time. On a simulated timeline this is virtual
	// time; values from Now are only comparable to other values from the
	// same timeline.
	Now() time.Time
	// Sleep blocks for d, honoring ctx cancellation.
	Sleep(ctx context.Context, d time.Duration) error
	// AfterFunc schedules f to run once d has elapsed, in its own goroutine.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle to a scheduled AfterFunc callback.
type Timer interface {
	// Stop cancels the callback, reporting whether it was still pending.
	Stop() bool
}

// Real returns the process-wide real timeline, backed by the OS clock.
func Real() Timeline { return realSingleton }

var realSingleton = &realTimeline{}

type realTimeline struct{ wall WallClock }

func (r *realTimeline) NowTick() int64 { return r.wall.NowTick() }
func (r *realTimeline) Now() time.Time { return time.Now() }

func (r *realTimeline) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *realTimeline) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// SimTimeline is a deterministic virtual timeline. Time stands still except
// when Advance moves it (or the pump started by StartPump does); callbacks
// scheduled with AfterFunc fire, in deadline order, as the clock passes
// them. It implements Clock, so one SimTimeline can drive the engine's
// commit timestamps, the server's idle and request deadlines, the client's
// retry backoff, and the simulated network's latency all at once.
type SimTimeline struct {
	mu      sync.Mutex
	now     int64 // virtual nanoseconds since the Unix epoch
	seq     int64 // tiebreak so same-deadline waiters fire in creation order
	waiters waiterHeap
}

// NewSimTimeline returns a timeline positioned at start.
func NewSimTimeline(start time.Time) *SimTimeline {
	return &SimTimeline{now: start.UnixNano()}
}

// NowTick implements Clock: virtual time in TickDuration units.
func (s *SimTimeline) NowTick() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now / int64(TickDuration)
}

// Now returns the current virtual time.
func (s *SimTimeline) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Unix(0, s.now).UTC()
}

// Sleep blocks until the virtual clock has advanced by d (or ctx is done).
// Something else must advance the clock — Advance or the pump — or Sleep
// waits forever.
func (s *SimTimeline) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	ch := make(chan struct{})
	t := s.AfterFunc(d, func() { close(ch) })
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	}
}

// AfterFunc schedules f once the virtual clock passes now+d. Non-positive d
// runs f immediately in its own goroutine, like time.AfterFunc.
func (s *SimTimeline) AfterFunc(d time.Duration, f func()) Timer {
	if d <= 0 {
		go f()
		return (*simWaiter)(nil)
	}
	s.mu.Lock()
	s.seq++
	w := &simWaiter{tl: s, at: s.now + int64(d), seq: s.seq, f: f}
	heap.Push(&s.waiters, w)
	s.mu.Unlock()
	return w
}

// Advance moves virtual time forward by d, firing every callback whose
// deadline it passes, in deadline order. Callbacks run on the calling
// goroutine with the timeline unlocked, so they may schedule further
// callbacks (which fire in this same Advance if they land within it).
func (s *SimTimeline) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	target := s.now + int64(d)
	for {
		w := s.waiters.peek()
		if w == nil || w.at > target {
			break
		}
		heap.Pop(&s.waiters)
		if w.stopped {
			continue
		}
		if w.at > s.now {
			s.now = w.at
		}
		w.fired = true
		s.mu.Unlock()
		w.f()
		s.mu.Lock()
	}
	s.now = target
	s.mu.Unlock()
}

// StartPump starts a goroutine that advances virtual time by step every poll
// of real time, turning the timeline into a fast-forwarded clock (speedup =
// step/poll). The returned function stops it. The pump's real-time cadence
// is not deterministic — simulations must therefore keep their semantics
// insensitive to how far virtual time drifts between events (deadlines far
// larger than any virtual interval a single operation spans), which the
// scenario harness does.
func (s *SimTimeline) StartPump(poll, step time.Duration) (stop func()) {
	if poll <= 0 {
		poll = 200 * time.Microsecond
	}
	if step <= 0 {
		step = 100 * time.Millisecond
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			time.Sleep(poll)
			s.Advance(step)
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// simWaiter is one scheduled callback on a SimTimeline's heap. Its fields
// are guarded by tl.mu.
type simWaiter struct {
	tl      *SimTimeline
	at      int64
	seq     int64
	f       func()
	stopped bool
	fired   bool
}

// Stop implements Timer. A nil receiver (the immediate-fire case) reports
// not-pending. A Stop racing the fire may lose, as with time.Timer.
func (w *simWaiter) Stop() bool {
	if w == nil {
		return false
	}
	w.tl.mu.Lock()
	defer w.tl.mu.Unlock()
	if w.fired || w.stopped {
		return false
	}
	w.stopped = true
	return true
}

// waiterHeap is a min-heap on (at, seq).
type waiterHeap []*simWaiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*simWaiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

func (h waiterHeap) peek() *simWaiter {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}
