package itime

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies the wall-tick component of timestamps. Implementations must
// be safe for concurrent use and must never move backwards.
type Clock interface {
	// NowTick returns the current time in TickDuration units since the Unix
	// epoch.
	NowTick() int64
}

// WallClock reads the operating system clock, truncated to TickDuration,
// mirroring the 20 ms resolution of SQL Server's date/time type. It guards
// against the OS clock stepping backwards by never returning a value smaller
// than one it has already returned.
type WallClock struct {
	last atomic.Int64
}

// NowTick implements Clock.
func (c *WallClock) NowTick() int64 {
	now := time.Now().UnixNano() / int64(TickDuration)
	for {
		prev := c.last.Load()
		if now <= prev {
			return prev
		}
		if c.last.CompareAndSwap(prev, now) {
			return now
		}
	}
}

// SimClock is a deterministic clock for tests and benchmarks. It starts at a
// fixed tick and advances only when told to (Advance) or, if AutoStep is set,
// by AutoStep ticks every AutoEvery reads — which deterministically spreads
// transactions across ticks so the sequence-number machinery is exercised.
type SimClock struct {
	mu        sync.Mutex
	tick      int64
	reads     int64
	AutoStep  int64 // ticks to advance after every AutoEvery reads (0 = never)
	AutoEvery int64 // number of reads between automatic steps (0 treated as 1)
}

// NewSimClock returns a SimClock positioned at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{tick: start.UnixNano() / int64(TickDuration)}
}

// NowTick implements Clock.
func (c *SimClock) NowTick() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.AutoStep > 0 {
		every := c.AutoEvery
		if every <= 0 {
			every = 1
		}
		c.reads++
		if c.reads%every == 0 {
			c.tick += c.AutoStep
		}
	}
	return c.tick
}

// Advance moves the clock forward by d (rounded down to whole ticks, minimum
// one tick for any positive d).
func (c *SimClock) Advance(d time.Duration) {
	ticks := int64(d / TickDuration)
	if ticks == 0 && d > 0 {
		ticks = 1
	}
	c.mu.Lock()
	c.tick += ticks
	c.mu.Unlock()
}

// Sequencer hands out commit timestamps that are strictly increasing and
// therefore consistent with commit (serialization) order, as Section 2.1
// requires. Within one wall tick it increments the sequence number; when the
// clock has moved on it resets the sequence number to zero.
type Sequencer struct {
	mu    sync.Mutex
	clock Clock
	last  Timestamp
}

// NewSequencer returns a Sequencer drawing wall ticks from clock.
func NewSequencer(clock Clock) *Sequencer {
	return &Sequencer{clock: clock}
}

// Next returns the next commit timestamp. It is safe for concurrent use; the
// caller serializes commits, and the returned timestamps strictly increase in
// the order Next returns them.
func (s *Sequencer) Next() Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.clock.NowTick()
	if w > s.last.Wall {
		s.last = Timestamp{Wall: w}
	} else {
		// Same (or, defensively, earlier) tick: extend with the sequence
		// number. 2^32 transactions per 20 ms exceeds any real system.
		s.last = s.last.Next()
	}
	return s.last
}

// Last returns the most recently issued timestamp, or the zero timestamp if
// none has been issued. It is the snapshot point for new snapshot-isolation
// transactions: everything committed so far is visible at Last.
func (s *Sequencer) Last() Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Reset restores the sequencer's high-water mark, used after recovery so
// post-crash commits never reuse or precede a pre-crash timestamp.
func (s *Sequencer) Reset(last Timestamp) {
	s.mu.Lock()
	if last.After(s.last) {
		s.last = last
	}
	s.mu.Unlock()
}

// TIDSource allocates ascending transaction IDs.
type TIDSource struct {
	next atomic.Uint64
}

// NewTIDSource returns a source whose first TID is first (or 1 if first is 0).
func NewTIDSource(first TID) *TIDSource {
	s := &TIDSource{}
	if first == 0 {
		first = 1
	}
	s.next.Store(uint64(first))
	return s
}

// Next returns the next TID.
func (s *TIDSource) Next() TID { return TID(s.next.Add(1) - 1) }

// Peek returns the TID that the next call to Next will return.
func (s *TIDSource) Peek() TID { return TID(s.next.Load()) }

// Bump raises the allocator so that the next TID is strictly greater than
// seen; recovery uses it to skip past every TID found in the log.
func (s *TIDSource) Bump(seen TID) {
	for {
		cur := s.next.Load()
		if cur > uint64(seen) {
			return
		}
		if s.next.CompareAndSwap(cur, uint64(seen)+1) {
			return
		}
	}
}
