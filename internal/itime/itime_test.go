package itime

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestTimestampCompare(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		want int
	}{
		{Timestamp{}, Timestamp{}, 0},
		{Timestamp{Wall: 1}, Timestamp{Wall: 2}, -1},
		{Timestamp{Wall: 2}, Timestamp{Wall: 1}, 1},
		{Timestamp{Wall: 1, Seq: 1}, Timestamp{Wall: 1, Seq: 2}, -1},
		{Timestamp{Wall: 1, Seq: 2}, Timestamp{Wall: 1, Seq: 2}, 0},
		{Timestamp{Wall: 1, Seq: 3}, Timestamp{Wall: 1, Seq: 2}, 1},
		{Timestamp{}, Max, -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTimestampNext(t *testing.T) {
	ts := Timestamp{Wall: 5, Seq: 7}
	if got := ts.Next(); got != (Timestamp{Wall: 5, Seq: 8}) {
		t.Fatalf("Next = %v", got)
	}
	overflow := Timestamp{Wall: 5, Seq: 1<<32 - 1}
	if got := overflow.Next(); got != (Timestamp{Wall: 6, Seq: 0}) {
		t.Fatalf("Next at seq overflow = %v", got)
	}
	if !ts.Next().After(ts) {
		t.Fatal("Next must be strictly after")
	}
}

func TestTimestampEncodeRoundTrip(t *testing.T) {
	f := func(wall int64, seq uint32) bool {
		if wall < 0 {
			wall = -wall
		}
		ts := Timestamp{Wall: wall, Seq: seq}
		var b [EncodedLen]byte
		ts.Encode(b[:])
		return DecodeTimestamp(b[:]) == ts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampEncodeOrderAgreesWithCompare(t *testing.T) {
	f := func(w1, w2 int64, s1, s2 uint32) bool {
		if w1 < 0 {
			w1 = -w1
		}
		if w2 < 0 {
			w2 = -w2
		}
		a := Timestamp{Wall: w1, Seq: s1}
		b := Timestamp{Wall: w2, Seq: s2}
		var ea, eb [EncodedLen]byte
		a.Encode(ea[:])
		b.Encode(eb[:])
		return sign(bytes.Compare(ea[:], eb[:])) == sign(a.Compare(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestFromTimeRoundTrip(t *testing.T) {
	orig := time.Date(2004, 8, 12, 10, 15, 20, 0, time.UTC)
	ts := FromTime(orig)
	if got := ts.Time(); !got.Equal(orig) {
		t.Fatalf("Time() = %v, want %v", got, orig)
	}
	// Sub-tick precision is truncated.
	ts2 := FromTime(orig.Add(7 * time.Millisecond))
	if ts2 != ts {
		t.Fatalf("expected 7ms to truncate to same tick: %v vs %v", ts2, ts)
	}
	ts3 := FromTime(orig.Add(25 * time.Millisecond))
	if !ts3.After(ts) {
		t.Fatalf("25ms later should be a later tick")
	}
}

func TestParseAsOf(t *testing.T) {
	for _, s := range []string{
		"2004-08-12 10:15:20",
		"2004-08-12T10:15:20",
		"8/12/2004 10:15:20",
	} {
		ts, err := ParseAsOf(s)
		if err != nil {
			t.Fatalf("ParseAsOf(%q): %v", s, err)
		}
		want := FromTime(time.Date(2004, 8, 12, 10, 15, 20, 0, time.UTC)).Wall
		if ts.Wall != want {
			t.Errorf("ParseAsOf(%q).Wall = %d, want %d", s, ts.Wall, want)
		}
		if ts.Seq != 1<<32-1 {
			t.Errorf("ParseAsOf(%q).Seq = %d, want max", s, ts.Seq)
		}
	}
	if _, err := ParseAsOf("not a time"); err == nil {
		t.Fatal("expected error for junk input")
	}
}

func TestParseAsOfSeesWholeTick(t *testing.T) {
	// An AS OF at clock time t must see a transaction that committed at
	// (t, seq>0); ParseAsOf therefore returns the max sequence number.
	asOf, err := ParseAsOf("2004-08-12 10:15:20")
	if err != nil {
		t.Fatal(err)
	}
	commit := Timestamp{Wall: asOf.Wall, Seq: 17}
	if commit.After(asOf) {
		t.Fatal("commit within the tick must not be after the AS OF bound")
	}
}

func TestSimClock(t *testing.T) {
	c := NewSimClock(time.Date(2004, 8, 12, 0, 0, 0, 0, time.UTC))
	t0 := c.NowTick()
	if c.NowTick() != t0 {
		t.Fatal("clock moved without Advance")
	}
	c.Advance(100 * time.Millisecond)
	if got := c.NowTick(); got != t0+5 {
		t.Fatalf("Advance(100ms): got %d, want %d", got, t0+5)
	}
	c.Advance(time.Nanosecond)
	if got := c.NowTick(); got != t0+6 {
		t.Fatalf("tiny Advance should move at least one tick: got %d, want %d", got, t0+6)
	}
}

func TestSimClockAutoStep(t *testing.T) {
	c := NewSimClock(time.Unix(1000, 0))
	c.AutoStep = 1
	c.AutoEvery = 3
	t0 := c.NowTick() // read 1 -> no step yet (step happens on the 3rd read)
	_ = c.NowTick()   // read 2
	t3 := c.NowTick() // read 3 -> step
	if t3 != t0+1 {
		t.Fatalf("auto step: got %d, want %d", t3, t0+1)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	var c WallClock
	prev := c.NowTick()
	for i := 0; i < 1000; i++ {
		now := c.NowTick()
		if now < prev {
			t.Fatal("wall clock went backwards")
		}
		prev = now
	}
}

func TestSequencerStrictlyIncreasing(t *testing.T) {
	c := NewSimClock(time.Unix(1000, 0))
	s := NewSequencer(c)
	prev := s.Next()
	for i := 0; i < 10000; i++ {
		if i%100 == 0 {
			c.Advance(TickDuration)
		}
		ts := s.Next()
		if !ts.After(prev) {
			t.Fatalf("timestamp %v not after %v", ts, prev)
		}
		prev = ts
	}
}

func TestSequencerSameTickUsesSeq(t *testing.T) {
	c := NewSimClock(time.Unix(1000, 0))
	s := NewSequencer(c)
	a := s.Next()
	b := s.Next()
	if a.Wall != b.Wall {
		t.Fatalf("clock did not advance but wall differs: %v vs %v", a, b)
	}
	if b.Seq != a.Seq+1 {
		t.Fatalf("expected consecutive sequence numbers: %v then %v", a, b)
	}
}

func TestSequencerReset(t *testing.T) {
	c := NewSimClock(time.Unix(1000, 0))
	s := NewSequencer(c)
	high := Timestamp{Wall: c.NowTick() + 100, Seq: 9}
	s.Reset(high)
	if got := s.Next(); !got.After(high) {
		t.Fatalf("after Reset(%v), Next() = %v; want after", high, got)
	}
	// Reset never moves backwards.
	s.Reset(Timestamp{Wall: 1})
	if got := s.Last(); !got.After(high) {
		t.Fatalf("Reset moved high-water mark backwards: %v", got)
	}
}

func TestSequencerConcurrent(t *testing.T) {
	c := NewSimClock(time.Unix(1000, 0))
	c.AutoStep = 1
	c.AutoEvery = 7
	s := NewSequencer(c)
	const goroutines, per = 8, 500
	ch := make(chan Timestamp, goroutines*per)
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < per; i++ {
				ch <- s.Next()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	close(ch)
	seen := make(map[Timestamp]bool)
	for ts := range ch {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %v", ts)
		}
		seen[ts] = true
	}
	if len(seen) != goroutines*per {
		t.Fatalf("got %d unique timestamps, want %d", len(seen), goroutines*per)
	}
}

func TestTIDSource(t *testing.T) {
	s := NewTIDSource(0)
	if got := s.Next(); got != 1 {
		t.Fatalf("first TID = %d, want 1", got)
	}
	if got := s.Next(); got != 2 {
		t.Fatalf("second TID = %d, want 2", got)
	}
	s.Bump(100)
	if got := s.Next(); got != 101 {
		t.Fatalf("after Bump(100), Next = %d, want 101", got)
	}
	s.Bump(50) // no-op
	if got := s.Next(); got != 102 {
		t.Fatalf("Bump must never move backwards: got %d", got)
	}
}

func TestTimestampString(t *testing.T) {
	if (Timestamp{}).String() != "<zero>" {
		t.Error("zero timestamp string")
	}
	if !Max.IsMax() || Max.String() != "<max>" {
		t.Error("max timestamp string")
	}
	ts := FromTime(time.Date(2004, 8, 12, 10, 15, 20, 0, time.UTC))
	ts.Seq = 3
	if got := ts.String(); got != "2004-08-12T10:15:20.000Z#3" {
		t.Errorf("String = %q", got)
	}
}
