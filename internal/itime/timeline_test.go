package itime

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestSimTimelineAdvanceFiresInOrder(t *testing.T) {
	tl := NewSimTimeline(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	var order []int
	tl.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	tl.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	tl.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })

	tl.Advance(5 * time.Millisecond)
	if len(order) != 0 {
		t.Fatalf("fired early: %v", order)
	}
	tl.Advance(25 * time.Millisecond) // now at +30ms: all three due
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order %v, want [1 2 3]", order)
	}
}

func TestSimTimelineStop(t *testing.T) {
	tl := NewSimTimeline(time.Unix(0, 0))
	var fired atomic.Bool
	timer := tl.AfterFunc(time.Second, func() { fired.Store(true) })
	if !timer.Stop() {
		t.Fatal("Stop on pending timer reported not-pending")
	}
	tl.Advance(2 * time.Second)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
	if timer.Stop() {
		t.Fatal("second Stop reported pending")
	}
}

func TestSimTimelineSleepAndTicks(t *testing.T) {
	start := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	tl := NewSimTimeline(start)
	if got := tl.Now(); !got.Equal(start) {
		t.Fatalf("Now = %v, want %v", got, start)
	}
	tick0 := tl.NowTick()

	done := make(chan error, 1)
	go func() { done <- tl.Sleep(context.Background(), 100*time.Millisecond) }()
	// The sleeper must not return until virtual time passes it.
	select {
	case <-done:
		t.Fatal("Sleep returned with the clock standing still")
	case <-time.After(20 * time.Millisecond):
	}
	tl.Advance(100 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if got, want := tl.NowTick()-tick0, int64(5); got != want {
		t.Fatalf("ticks advanced by %d, want %d (100ms / 20ms)", got, want)
	}
}

func TestSimTimelineSleepHonorsContext(t *testing.T) {
	tl := NewSimTimeline(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tl.Sleep(ctx, time.Hour) }()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Sleep under canceled ctx: %v", err)
	}
}

func TestSimTimelinePump(t *testing.T) {
	tl := NewSimTimeline(time.Unix(0, 0))
	stop := tl.StartPump(100*time.Microsecond, 10*time.Millisecond)
	defer stop()
	if err := tl.Sleep(context.Background(), 5*time.Second); err != nil {
		t.Fatalf("pumped Sleep: %v", err)
	}
}

func TestSimTimelineAfterFuncChains(t *testing.T) {
	// A callback scheduling a further callback within the same Advance
	// window fires inside that Advance.
	tl := NewSimTimeline(time.Unix(0, 0))
	var hits atomic.Int32
	tl.AfterFunc(10*time.Millisecond, func() {
		hits.Add(1)
		tl.AfterFunc(10*time.Millisecond, func() { hits.Add(1) })
	})
	tl.Advance(50 * time.Millisecond)
	if got := hits.Load(); got != 2 {
		t.Fatalf("chained callbacks fired %d times, want 2", got)
	}
}

func TestRealTimelineBasics(t *testing.T) {
	tl := Real()
	if err := tl.Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ch := make(chan struct{})
	tl.AfterFunc(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if tl.NowTick() <= 0 {
		t.Fatal("real NowTick not positive")
	}
}
