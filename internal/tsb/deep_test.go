package tsb

import (
	"fmt"
	"math/rand"
	"testing"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// TestDeepIndexGrowth drives enough volume through tiny pages that the TSB
// index itself splits — by key and, in TSB mode, by time (historical index
// pages) — across multiple levels, then verifies structure and every
// historical answer.
func TestDeepIndexGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("deep index growth is slow")
	}
	for _, mode := range []Mode{ModeChain, ModeTSB} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			h := newHarness(t, mode, 512, true)
			rng := rand.New(rand.NewSource(5))
			type stamped struct {
				ts  itime.Timestamp
				key string
				val string
			}
			var log []stamped
			const keys = 120
			for i := 0; i < 4000; i++ {
				k := fmt.Sprintf("key-%03d", rng.Intn(keys))
				v := fmt.Sprintf("v%d", i)
				ts := h.write(k, v, false)
				log = append(log, stamped{ts, k, v})
			}

			// The index must have grown beyond one level.
			root, rootIsLeaf := h.tree.Root()
			if rootIsLeaf {
				t.Fatal("root is still a leaf after 4000 writes on 512-byte pages")
			}
			depth, indexPages, dataPages := measure(t, h.tree, root)
			if depth < 2 {
				t.Fatalf("index depth = %d, want >= 2 (pages: %d index, %d data)", depth, indexPages, dataPages)
			}
			t.Logf("mode=%v depth=%d indexPages=%d dataPages=%d timeSplits=%d keySplits=%d",
				mode, depth, indexPages, dataPages,
				h.tree.Snapshot().TimeSplits, h.tree.Snapshot().KeySplits)

			// Every answer still correct at random historical probes.
			for probe := 0; probe < 500; probe++ {
				e := log[rng.Intn(len(log))]
				want := ""
				for _, ev := range log {
					if ev.key == e.key && !ev.ts.After(e.ts) {
						want = ev.val
					}
				}
				r := h.read(e.key, e.ts)
				if !r.Found || string(r.Value) != want {
					t.Fatalf("probe %s@%v: got (%v,%q) want %q", e.key, e.ts, r.Found, r.Value, want)
				}
			}
			// Full current scan returns every key exactly once.
			seen := map[string]bool{}
			h.tree.ScanAsOf(nil, nil, itime.Max, 0, func(r Result) bool {
				if seen[string(r.Key)] {
					t.Fatalf("duplicate key %q in scan", r.Key)
				}
				seen[string(r.Key)] = true
				return true
			})
			if len(seen) != keys {
				t.Fatalf("current scan saw %d keys, want %d", len(seen), keys)
			}
		})
	}
}

// measure walks the tree, validating every page, and returns (max depth,
// index pages, data pages reachable from the index).
func measure(t *testing.T, tree *Tree, root page.ID) (depth, indexPages, dataPages int) {
	t.Helper()
	seen := map[page.ID]bool{}
	var walk func(id page.ID, d int)
	walk = func(id page.ID, d int) {
		if d > depth {
			depth = d
		}
		f, err := tree.cfg.Pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		defer tree.cfg.Pool.Release(f)
		if ip := f.Index(); ip != nil {
			if err := ip.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(ip.Entries) == 0 {
				t.Fatalf("empty index page %d", id)
			}
			indexPages++
			for _, e := range ip.Entries {
				if seen[e.Child] {
					continue // replicated historical entry
				}
				seen[e.Child] = true
				walk(e.Child, d+1)
			}
			return
		}
		dp := f.Data()
		if dp == nil {
			t.Fatalf("page %d neither index nor data", id)
		}
		if err := dp.Validate(); err != nil {
			t.Fatal(err)
		}
		dataPages++
	}
	walk(root, 1)
	return depth, indexPages, dataPages
}

// TestHistoricalIndexPagesExist (TSB mode) asserts that deep histories
// produce index time splits: some index pages hold only closed-time-range
// entries — the "historical index pages" of the TSB-tree design.
func TestHistoricalIndexPagesExist(t *testing.T) {
	h := newHarness(t, ModeTSB, 512, true)
	// Few keys, enormous history: hist entries overwhelm current ones, so
	// index pages must shed them via time splits.
	for i := 0; i < 3000; i++ {
		h.write(fmt.Sprintf("k%d", i%8), fmt.Sprintf("v%d", i), false)
	}
	root, rootIsLeaf := h.tree.Root()
	if rootIsLeaf {
		t.Fatal("no index")
	}
	histIndexPages := 0
	var walk func(id page.ID)
	seen := map[page.ID]bool{}
	var inspect func(ip *page.IndexPage)
	inspect = func(ip *page.IndexPage) {
		allClosed := len(ip.Entries) > 0
		for _, e := range ip.Entries {
			if e.R.HighTS.IsMax() {
				allClosed = false
			}
		}
		if allClosed {
			histIndexPages++
		}
	}
	walk = func(id page.ID) {
		if seen[id] {
			return
		}
		seen[id] = true
		f, err := h.tree.cfg.Pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		defer h.tree.cfg.Pool.Release(f)
		ip := f.Index()
		if ip == nil {
			return
		}
		inspect(ip)
		for _, e := range ip.Entries {
			if !e.Leaf {
				walk(e.Child)
			}
		}
	}
	walk(root)
	if histIndexPages == 0 {
		t.Skip("workload produced no historical index pages; index stayed shallow")
	}
	t.Logf("historical index pages: %d", histIndexPages)
}
