package tsb

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"immortaldb/internal/buffer"
	"immortaldb/internal/itime"
	"immortaldb/internal/storage/disk"
	"immortaldb/internal/storage/page"
)

// mockStamper resolves TIDs from a committed map, like the real VTT/PTT.
type mockStamper struct {
	mu        sync.Mutex
	committed map[itime.TID]itime.Timestamp
	stamped   map[itime.TID]int
}

func newMockStamper() *mockStamper {
	return &mockStamper{
		committed: make(map[itime.TID]itime.Timestamp),
		stamped:   make(map[itime.TID]int),
	}
}

func (m *mockStamper) Resolve(tid itime.TID) (itime.Timestamp, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.committed[tid]
	return ts, ok
}

func (m *mockStamper) MaxCommitLSN(counts map[itime.TID]int) uint64 { return 0 }

func (m *mockStamper) NoteStamped(counts map[itime.TID]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for tid, n := range counts {
		m.stamped[tid] += n
	}
}

func (m *mockStamper) commit(tid itime.TID, ts itime.Timestamp) {
	m.mu.Lock()
	m.committed[tid] = ts
	m.mu.Unlock()
}

type harness struct {
	tree    *Tree
	stamper *mockStamper
	nextTID itime.TID
	lastTS  itime.Timestamp
	t       *testing.T
}

func newHarness(t *testing.T, mode Mode, pageSize int, immortal bool) *harness {
	t.Helper()
	pager, err := disk.Open(filepath.Join(t.TempDir(), "db.pages"), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pager.Close() })
	pool := buffer.New(pager, 256)
	st := newMockStamper()
	h := &harness{stamper: st, nextTID: 1, t: t}
	cfg := Config{
		Pool:     pool,
		Pager:    pager,
		Stamper:  st,
		Mode:     mode,
		Immortal: immortal,
		SplitNow: func() itime.Timestamp { return h.lastTS.Next() },
	}
	tree, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.tree = tree
	return h
}

// write runs a single-record transaction: insert + commit(stamp mapping).
func (h *harness) write(key, value string, stub bool) itime.Timestamp {
	h.t.Helper()
	tid := h.nextTID
	h.nextTID++
	var v []byte
	if !stub {
		v = []byte(value)
	}
	if _, err := h.tree.Insert(tid, []byte(key), v, stub, nil); err != nil {
		h.t.Fatalf("insert %q: %v", key, err)
	}
	h.lastTS = h.lastTS.Next()
	if h.lastTS.Seq%5 == 4 { // spread across wall ticks
		h.lastTS = itime.Timestamp{Wall: h.lastTS.Wall + 1}
	}
	h.stamper.commit(tid, h.lastTS)
	return h.lastTS
}

func (h *harness) read(key string, ts itime.Timestamp) Result {
	h.t.Helper()
	r, err := h.tree.ReadKey([]byte(key), ts, 0)
	if err != nil {
		h.t.Fatalf("read %q: %v", key, err)
	}
	return r
}

func TestInsertAndReadCurrent(t *testing.T) {
	for _, mode := range []Mode{ModeChain, ModeTSB} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			h := newHarness(t, mode, page.DefaultSize, true)
			h.write("alpha", "1", false)
			h.write("beta", "2", false)
			h.write("alpha", "3", false)

			r := h.read("alpha", itime.Max)
			if !r.Found || string(r.Value) != "3" {
				t.Fatalf("current alpha = %+v", r)
			}
			r = h.read("beta", itime.Max)
			if !r.Found || string(r.Value) != "2" {
				t.Fatalf("current beta = %+v", r)
			}
			if r := h.read("gamma", itime.Max); r.Found {
				t.Fatalf("ghost key = %+v", r)
			}
		})
	}
}

func TestOwnUncommittedWritesVisible(t *testing.T) {
	h := newHarness(t, ModeChain, page.DefaultSize, true)
	tid := h.nextTID
	h.nextTID++
	if _, err := h.tree.Insert(tid, []byte("k"), []byte("mine"), false, nil); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: invisible to others, visible to self.
	r, _ := h.tree.ReadKey([]byte("k"), itime.Max, 0)
	if r.Found {
		t.Fatalf("other txn sees uncommitted write: %+v", r)
	}
	r, _ = h.tree.ReadKey([]byte("k"), itime.Max, tid)
	if !r.Found || string(r.Value) != "mine" {
		t.Fatalf("own write invisible: %+v", r)
	}
}

func TestDeleteStubSemantics(t *testing.T) {
	h := newHarness(t, ModeChain, page.DefaultSize, true)
	t1 := h.write("k", "v1", false)
	t2 := h.write("k", "", true) // delete
	t3 := h.write("k", "v2", false)

	if r := h.read("k", t1); !r.Found || string(r.Value) != "v1" {
		t.Fatalf("as of t1: %+v", r)
	}
	if r := h.read("k", t2); r.Found || !r.Deleted {
		t.Fatalf("as of t2 (deleted): %+v", r)
	}
	if r := h.read("k", t3); !r.Found || string(r.Value) != "v2" {
		t.Fatalf("as of t3: %+v", r)
	}
}

func TestKeySplitsPreserveEverything(t *testing.T) {
	for _, mode := range []Mode{ModeChain, ModeTSB} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			h := newHarness(t, mode, 512, true) // tiny pages force splits
			const n = 300
			for i := 0; i < n; i++ {
				h.write(fmt.Sprintf("key-%04d", i*7%n), fmt.Sprintf("val-%d", i), false)
			}
			if h.tree.Snapshot().KeySplits == 0 {
				t.Fatal("no key splits with 512-byte pages and 300 keys")
			}
			seen := 0
			err := h.tree.ScanAsOf(nil, nil, itime.Max, 0, func(r Result) bool {
				seen++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if seen != n {
				t.Fatalf("current scan found %d of %d keys", seen, n)
			}
			for i := 0; i < n; i += 17 {
				k := fmt.Sprintf("key-%04d", i)
				if r := h.read(k, itime.Max); !r.Found {
					t.Fatalf("key %q lost", k)
				}
			}
		})
	}
}

func TestTimeSplitsAndAsOfReads(t *testing.T) {
	for _, mode := range []Mode{ModeChain, ModeTSB} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			h := newHarness(t, mode, 512, true)
			// Few keys, many updates: history builds up, forcing time splits.
			const keys, rounds = 6, 120
			type verRec struct {
				ts  itime.Timestamp
				val string
			}
			model := make(map[string][]verRec)
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("k%d", r%keys)
				v := fmt.Sprintf("v%d-%d", r%keys, r)
				ts := h.write(k, v, false)
				model[k] = append(model[k], verRec{ts, v})
			}
			if h.tree.Snapshot().TimeSplits == 0 {
				t.Fatal("no time splits despite heavy update history")
			}
			// Check every model version is visible at its own time and at a
			// point just before its successor.
			for k, vers := range model {
				for i, vr := range vers {
					if r := h.read(k, vr.ts); !r.Found || string(r.Value) != vr.val {
						t.Fatalf("%s as of %v: got %+v want %q", k, vr.ts, r, vr.val)
					}
					if i+1 < len(vers) {
						// Immediately before successor: still this version.
						prev := verJustBefore(vers[i+1].ts)
						if r := h.read(k, prev); !r.Found || string(r.Value) != vr.val {
							t.Fatalf("%s just before %v: got %+v want %q", k, vers[i+1].ts, r, vr.val)
						}
					}
				}
				// Before the first version: not found.
				if r := h.read(k, verJustBefore(vers[0].ts)); r.Found {
					t.Fatalf("%s before creation: %+v", k, r)
				}
			}
		})
	}
}

func verJustBefore(ts itime.Timestamp) itime.Timestamp {
	if ts.Seq > 0 {
		return itime.Timestamp{Wall: ts.Wall, Seq: ts.Seq - 1}
	}
	return itime.Timestamp{Wall: ts.Wall - 1, Seq: 1<<32 - 1}
}

func TestChainHopsGrowOnlyInChainMode(t *testing.T) {
	deep := func(mode Mode) (*harness, itime.Timestamp) {
		h := newHarness(t, mode, 512, true)
		first := h.write("k0", "genesis", false)
		for r := 0; r < 400; r++ {
			h.write(fmt.Sprintf("k%d", r%4), fmt.Sprintf("v%d", r), false)
		}
		return h, first
	}

	hChain, firstC := deep(ModeChain)
	if r := hChain.read("k0", firstC); !r.Found || string(r.Value) != "genesis" {
		t.Fatalf("chain deep read: %+v", r)
	}
	if hops := hChain.tree.Snapshot().ChainHops; hops == 0 {
		t.Fatal("chain mode deep history read did not walk the chain")
	}

	hTSB, firstT := deep(ModeTSB)
	before := hTSB.tree.Snapshot().ChainHops
	if r := hTSB.read("k0", firstT); !r.Found || string(r.Value) != "genesis" {
		t.Fatalf("tsb deep read: %+v", r)
	}
	if hops := hTSB.tree.Snapshot().ChainHops; hops != before {
		t.Fatalf("TSB mode used the chain: %d hops", hops-before)
	}
}

func TestUndoInsertThroughTree(t *testing.T) {
	h := newHarness(t, ModeChain, page.DefaultSize, true)
	h.write("k", "committed", false)
	tid := h.nextTID
	h.nextTID++
	if _, err := h.tree.Insert(tid, []byte("k"), []byte("doomed"), false, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.tree.UndoInsert(tid, []byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	if r := h.read("k", itime.Max); !r.Found || string(r.Value) != "committed" {
		t.Fatalf("after undo: %+v", r)
	}
}

func TestHistoryTimeTravel(t *testing.T) {
	for _, mode := range []Mode{ModeChain, ModeTSB} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			h := newHarness(t, mode, 512, true)
			var wrote []string
			for i := 0; i < 60; i++ {
				v := fmt.Sprintf("v%02d", i)
				h.write("traveler", v, false)
				wrote = append(wrote, v)
				// Interleave other keys to force splits.
				h.write(fmt.Sprintf("filler-%d", i%9), fmt.Sprintf("f%d", i), false)
			}
			hist, err := h.tree.History([]byte("traveler"))
			if err != nil {
				t.Fatal(err)
			}
			if len(hist) != len(wrote) {
				t.Fatalf("history has %d versions, want %d", len(hist), len(wrote))
			}
			for i, vi := range hist { // newest first
				want := wrote[len(wrote)-1-i]
				if string(vi.Value) != want {
					t.Fatalf("history[%d] = %q, want %q", i, vi.Value, want)
				}
				if i > 0 && hist[i-1].TS.Less(vi.TS) {
					t.Fatal("history not in descending time order")
				}
			}
		})
	}
}

func TestScanAsOfMatchesModel(t *testing.T) {
	for _, mode := range []Mode{ModeChain, ModeTSB} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			h := newHarness(t, mode, 512, true)
			rng := rand.New(rand.NewSource(7))
			type event struct {
				ts   itime.Timestamp
				key  string
				val  string
				stub bool
			}
			var log []event
			var checkpoints []itime.Timestamp
			for i := 0; i < 250; i++ {
				k := fmt.Sprintf("key-%02d", rng.Intn(25))
				stub := rng.Intn(7) == 0
				v := fmt.Sprintf("v%d", i)
				ts := h.write(k, v, stub)
				log = append(log, event{ts, k, v, stub})
				if i%40 == 13 {
					checkpoints = append(checkpoints, ts)
				}
			}
			checkpoints = append(checkpoints, itime.Max)

			for _, at := range checkpoints {
				want := map[string]string{}
				for _, e := range log {
					if e.ts.After(at) {
						continue
					}
					if e.stub {
						delete(want, e.key)
					} else {
						want[e.key] = e.val
					}
				}
				got := map[string]string{}
				var lastKey string
				err := h.tree.ScanAsOf(nil, nil, at, 0, func(r Result) bool {
					if lastKey != "" && string(r.Key) <= lastKey {
						t.Fatalf("scan out of order: %q after %q", r.Key, lastKey)
					}
					lastKey = string(r.Key)
					got[string(r.Key)] = string(r.Value)
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("as of %v: scan found %d keys, want %d\ngot: %v\nwant: %v",
						at, len(got), len(want), got, want)
				}
				for k, v := range want {
					if got[k] != v {
						t.Fatalf("as of %v: %s = %q, want %q", at, k, got[k], v)
					}
				}
			}
		})
	}
}

func TestScanKeyRange(t *testing.T) {
	h := newHarness(t, ModeTSB, 512, true)
	for i := 0; i < 100; i++ {
		h.write(fmt.Sprintf("key-%03d", i), "v", false)
	}
	var got []string
	err := h.tree.ScanAsOf([]byte("key-020"), []byte("key-030"), itime.Max, 0, func(r Result) bool {
		got = append(got, string(r.Key))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "key-020" || got[9] != "key-029" {
		t.Fatalf("range scan = %v", got)
	}
	// Early stop.
	n := 0
	h.tree.ScanAsOf(nil, nil, itime.Max, 0, func(Result) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestNoTailTable(t *testing.T) {
	pager, err := disk.Open(filepath.Join(t.TempDir(), "db.pages"), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer pager.Close()
	pool := buffer.New(pager, 64)
	tree, err := Create(Config{Pool: pool, Pager: pager, NoTail: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := tree.Insert(0, []byte(fmt.Sprintf("k%03d", i)), []byte("v0"), false, nil); err != nil {
			t.Fatal(err)
		}
	}
	// In-place update.
	old, found, err := tree.ReplaceNoTail([]byte("k005"), []byte("v1-longer"), nil)
	if err != nil || !found || string(old) != "v0" {
		t.Fatalf("replace: old=%q found=%v err=%v", old, found, err)
	}
	r, err := tree.ReadKey([]byte("k005"), itime.Max, 0)
	if err != nil || !r.Found || string(r.Value) != "v1-longer" {
		t.Fatalf("read after replace: %+v err=%v", r, err)
	}
	// Remove.
	if _, err := tree.RemoveNoTail([]byte("k007"), nil); err != nil {
		t.Fatal(err)
	}
	if r, _ := tree.ReadKey([]byte("k007"), itime.Max, 0); r.Found {
		t.Fatal("removed key still present")
	}
	// Restore (undo).
	if err := tree.RestoreNoTail([]byte("k007"), []byte("v0"), true, nil); err != nil {
		t.Fatal(err)
	}
	if r, _ := tree.ReadKey([]byte("k007"), itime.Max, 0); !r.Found {
		t.Fatal("restored key missing")
	}
	// Splits happened and everything is still reachable.
	if tree.Snapshot().KeySplits == 0 {
		t.Fatal("no key splits on 512-byte pages with 200 keys")
	}
	if tree.Snapshot().TimeSplits != 0 {
		t.Fatal("conventional table must never time split")
	}
	count := 0
	tree.ScanAsOf(nil, nil, itime.Max, 0, func(Result) bool { count++; return true })
	if count != 200 {
		t.Fatalf("scan found %d, want 200", count)
	}
}

func TestSnapshotTableGC(t *testing.T) {
	pager, err := disk.Open(filepath.Join(t.TempDir(), "db.pages"), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer pager.Close()
	pool := buffer.New(pager, 64)
	st := newMockStamper()
	horizon := itime.Timestamp{}
	var last itime.Timestamp
	tree, err := Create(Config{
		Pool: pool, Pager: pager, Stamper: st,
		Immortal:        false,
		SnapshotHorizon: func() itime.Timestamp { return horizon },
	})
	if err != nil {
		t.Fatal(err)
	}
	tid := itime.TID(1)
	write := func(k, v string) itime.Timestamp {
		if _, err := tree.Insert(tid, []byte(k), []byte(v), false, nil); err != nil {
			t.Fatal(err)
		}
		last = last.Next()
		st.commit(tid, last)
		tid++
		return last
	}
	// Build deep version chains with the horizon tracking "now": old
	// versions are reclaimable, so the table must never time split and must
	// stay compact.
	for r := 0; r < 500; r++ {
		write(fmt.Sprintf("k%d", r%5), fmt.Sprintf("v%d", r))
		horizon = last
	}
	if tree.Snapshot().TimeSplits != 0 {
		t.Fatal("snapshot-only table must never time split")
	}
	// All current values correct.
	for i := 0; i < 5; i++ {
		r, err := tree.ReadKey([]byte(fmt.Sprintf("k%d", i)), itime.Max, 0)
		if err != nil || !r.Found {
			t.Fatalf("k%d: %+v err=%v", i, r, err)
		}
	}
	// The file must stay small: GC keeps reclaiming, so 500 updates of 5
	// keys need only a handful of pages.
	if n := pager.NumPages(); n > 8 {
		t.Fatalf("snapshot table grew to %d pages; GC is not reclaiming", n)
	}
}

func TestSnapshotTableReadAtHorizon(t *testing.T) {
	pager, _ := disk.Open(filepath.Join(t.TempDir(), "db.pages"), 512)
	defer pager.Close()
	pool := buffer.New(pager, 64)
	st := newMockStamper()
	horizon := itime.Timestamp{}
	var last itime.Timestamp
	tree, _ := Create(Config{
		Pool: pool, Pager: pager, Stamper: st,
		SnapshotHorizon: func() itime.Timestamp { return horizon },
	})
	tid := itime.TID(1)
	write := func(k, v string) itime.Timestamp {
		tree.Insert(tid, []byte(k), []byte(v), false, nil)
		last = last.Next()
		st.commit(tid, last)
		tid++
		return last
	}
	// A snapshot pins the horizon; versions it can see must survive GC.
	snapAt := write("k", "visible-to-snapshot")
	horizon = snapAt
	for i := 0; i < 300; i++ {
		write("k", fmt.Sprintf("newer-%d", i))
		write(fmt.Sprintf("pad%d", i%7), "x") // force page pressure
	}
	r, err := tree.ReadKey([]byte("k"), snapAt, 0)
	if err != nil || !r.Found || string(r.Value) != "visible-to-snapshot" {
		t.Fatalf("snapshot lost its version: %+v err=%v", r, err)
	}
}

// TestRandomizedModelBothModes is the heavyweight invariant test: a random
// single-writer workload checked against an in-memory model at many points
// in time, on tiny pages, in both index modes.
func TestRandomizedModelBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeChain, ModeTSB} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				h := newHarness(t, mode, 512, true)
				type event struct {
					ts   itime.Timestamp
					key  string
					val  string
					stub bool
				}
				var log []event
				for i := 0; i < 400; i++ {
					k := fmt.Sprintf("key-%02d", rng.Intn(30))
					stub := rng.Intn(8) == 0
					v := fmt.Sprintf("s%d-v%d", seed, i)
					ts := h.write(k, v, stub)
					log = append(log, event{ts, k, v, stub})
				}
				// Probe random (key, time) points.
				for probe := 0; probe < 300; probe++ {
					e := log[rng.Intn(len(log))]
					at := e.ts
					if rng.Intn(2) == 0 {
						at = verJustBefore(at)
					}
					var wantVal string
					wantFound := false
					for _, ev := range log {
						if ev.key != e.key || ev.ts.After(at) {
							continue
						}
						wantFound = !ev.stub
						wantVal = ev.val
					}
					r := h.read(e.key, at)
					if r.Found != wantFound || (wantFound && string(r.Value) != wantVal) {
						t.Fatalf("seed %d mode %v: %s as of %v: got (%v,%q) want (%v,%q)",
							seed, mode, e.key, at, r.Found, r.Value, wantFound, wantVal)
					}
				}
			}
		})
	}
}

// TestIndexInvariants walks the whole index after heavy splitting and checks
// that every index page's entries are disjoint and nested inside the rect
// the parent assigned, and that data page fences match their entry rects.
func TestIndexInvariants(t *testing.T) {
	h := newHarness(t, ModeTSB, 512, true)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 600; i++ {
		h.write(fmt.Sprintf("key-%03d", rng.Intn(60)), fmt.Sprintf("v%d", i), false)
	}
	root, rootIsLeaf := h.tree.Root()
	if rootIsLeaf {
		t.Fatal("tree never grew an index")
	}
	pool := h.tree.cfg.Pool
	var walk func(id page.ID, rect page.Rect, depth int)
	walk = func(id page.ID, rect page.Rect, depth int) {
		if depth > 20 {
			t.Fatal("index too deep; probable cycle")
		}
		f, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Release(f)
		if ip := f.Index(); ip != nil {
			if err := ip.Validate(); err != nil {
				t.Fatal(err)
			}
			// Historical entries replicated by index splits may stick out of
			// the parent region (the copy in the sibling covers the rest);
			// the invariant is that entries are disjoint (checked above) and
			// CURRENT entries nest, since they are never replicated.
			for _, e := range ip.Entries {
				if e.R.HighTS.IsMax() {
					if rect.LowKey != nil && (e.R.LowKey == nil || bytes.Compare(e.R.LowKey, rect.LowKey) < 0) {
						t.Fatalf("current child rect %v escapes parent %v (low)", e.R, rect)
					}
					if rect.HighKey != nil && (e.R.HighKey == nil || bytes.Compare(e.R.HighKey, rect.HighKey) > 0) {
						t.Fatalf("current child rect %v escapes parent %v (high)", e.R, rect)
					}
				}
				walk(e.Child, e.R, depth+1)
			}
			return
		}
		dp := f.Data()
		if dp == nil {
			t.Fatalf("page %d is neither index nor data", id)
		}
		if err := dp.Validate(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dp.LowKey, rect.LowKey) || !bytes.Equal(dp.HighKey, rect.HighKey) {
			t.Fatalf("page %d fences [%q,%q) disagree with entry rect %v",
				id, dp.LowKey, dp.HighKey, rect)
		}
		if dp.Current && !rect.HighTS.IsMax() {
			t.Fatalf("current page %d indexed with closed time rect %v", id, rect)
		}
	}
	walk(root, everything, 0)
}
