package tsb

import (
	"errors"
	"fmt"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// errRetry signals that a structure modification ran and the caller must
// re-descend from the root.
var errRetry = errors.New("tsb: retry after structure modification")

// maxSplitRounds bounds the re-descend loop; any correct split sequence
// converges in a handful of rounds.
const maxSplitRounds = 64

// LogFunc is called with the destination page once space is ensured; the
// engine appends the WAL record and returns its LSN (0 with no logging).
type LogFunc func(pid page.ID) (uint64, error)

// nopLog is used when the caller does not log.
func nopLog(page.ID) (uint64, error) { return 0, nil }

// InsertLogFunc logs a versioned write. When the write overwrote the
// transaction's own uncommitted version in place (see
// page.InsertOrReplaceOwn), replaced is true and oldVal/oldStub carry the
// overwritten state for undo.
type InsertLogFunc func(pid page.ID, replaced bool, oldVal []byte, oldStub bool) (uint64, error)

func nopInsertLog(page.ID, bool, []byte, bool) (uint64, error) { return 0, nil }

// Insert writes a non-timestamped version of key (stub marks a delete) on
// behalf of transaction tid: a new chained version, or an in-place overwrite
// when the latest version is tid's own uncommitted one. It returns the page
// that received the version.
func (t *Tree) Insert(tid itime.TID, key, value []byte, stub bool, logRec InsertLogFunc) (page.ID, error) {
	if logRec == nil {
		logRec = nopInsertLog
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for round := 0; round < maxSplitRounds; round++ {
		path, lf, err := t.descend(key, itime.Max)
		if err != nil {
			return 0, err
		}
		dp := lf.Data()
		if dp == nil {
			t.releasePath(path)
			t.cfg.Pool.Release(lf)
			return 0, fmt.Errorf("tsb: descent for %q hit non-data page %d", key, lf.ID())
		}
		replaced, oldVal, oldStub, err := dp.InsertOrReplaceOwn(key, value, stub, tid)
		if err == nil {
			lsn, lerr := logRec(dp.ID, replaced, oldVal, oldStub)
			if lerr != nil {
				// Roll the in-memory change back; nothing was logged.
				if replaced {
					_ = dp.RestoreOwn(key, tid, oldVal, oldStub)
				} else {
					_ = dp.UndoInsert(key, tid)
				}
				t.releasePath(path)
				t.cfg.Pool.Release(lf)
				return 0, lerr
			}
			if lsn != 0 {
				dp.LSN = lsn
			}
			t.cfg.Pool.MarkDirty(lf, dp.LSN)
			id := dp.ID
			t.releasePath(path)
			t.cfg.Pool.Release(lf)
			return id, nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			t.releasePath(path)
			t.cfg.Pool.Release(lf)
			if errors.Is(err, page.ErrTooLarge) {
				return 0, fmt.Errorf("%w: key %q", ErrNoSpace, key)
			}
			return 0, err
		}
		// Page full: run one structure modification and retry.
		err = t.splitLeaf(path, lf)
		t.releasePath(path)
		t.cfg.Pool.Release(lf)
		if err != nil && !errors.Is(err, errRetry) {
			return 0, err
		}
	}
	return 0, fmt.Errorf("tsb: insert of %q did not converge after %d split rounds", key, maxSplitRounds)
}

// UndoReplaceOwn rolls back an in-place same-transaction overwrite.
func (t *Tree) UndoReplaceOwn(tid itime.TID, key, oldVal []byte, oldStub bool, logRec LogFunc) error {
	if logRec == nil {
		logRec = nopLog
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	path, lf, err := t.descend(key, itime.Max)
	if err != nil {
		return err
	}
	defer t.cfg.Pool.Release(lf)
	defer t.releasePath(path)
	dp := lf.Data()
	if err := dp.RestoreOwn(key, tid, oldVal, oldStub); err != nil {
		return err
	}
	lsn, lerr := logRec(dp.ID)
	if lerr != nil {
		return lerr
	}
	if lsn != 0 {
		dp.LSN = lsn
	}
	t.cfg.Pool.MarkDirty(lf, dp.LSN)
	return nil
}

// NoTailLogFunc logs a conventional-table write; old carries the value the
// write displaced, for undo.
type NoTailLogFunc func(pid page.ID, old []byte) (uint64, error)

func nopNoTailLog(page.ID, []byte) (uint64, error) { return 0, nil }

// ReplaceNoTail updates a conventional (no-tail) table's record in place,
// returning the old value. found is false when the key does not exist (and
// nothing is logged).
func (t *Tree) ReplaceNoTail(key, value []byte, logRec NoTailLogFunc) (old []byte, found bool, err error) {
	if logRec == nil {
		logRec = nopNoTailLog
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for round := 0; round < maxSplitRounds; round++ {
		path, lf, err := t.descend(key, itime.Max)
		if err != nil {
			return nil, false, err
		}
		dp := lf.Data()
		old, found, err = dp.Replace(key, value)
		if err == nil {
			if found {
				lsn, lerr := logRec(dp.ID, old)
				if lerr != nil {
					_ = dp.RestoreValue(key, old)
					t.releasePath(path)
					t.cfg.Pool.Release(lf)
					return nil, false, lerr
				}
				if lsn != 0 {
					dp.LSN = lsn
				}
				t.cfg.Pool.MarkDirty(lf, dp.LSN)
			}
			t.releasePath(path)
			t.cfg.Pool.Release(lf)
			return old, found, nil
		}
		err = t.splitLeaf(path, lf)
		t.releasePath(path)
		t.cfg.Pool.Release(lf)
		if err != nil && !errors.Is(err, errRetry) {
			return nil, false, err
		}
	}
	return nil, false, fmt.Errorf("tsb: replace of %q did not converge", key)
}

// RemoveNoTail deletes a conventional table's record outright, returning the
// removed value. page.ErrNotFound surfaces for missing keys (nothing is
// logged).
func (t *Tree) RemoveNoTail(key []byte, logRec NoTailLogFunc) ([]byte, error) {
	if logRec == nil {
		logRec = nopNoTailLog
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	path, lf, err := t.descend(key, itime.Max)
	if err != nil {
		return nil, err
	}
	defer t.cfg.Pool.Release(lf)
	defer t.releasePath(path)
	dp := lf.Data()
	old, err := dp.Remove(key)
	if err != nil {
		return nil, err
	}
	lsn, lerr := logRec(dp.ID, old)
	if lerr != nil {
		_ = dp.Insert(key, old, false, 0)
		return nil, lerr
	}
	if lsn != 0 {
		dp.LSN = lsn
	}
	t.cfg.Pool.MarkDirty(lf, dp.LSN)
	return old, nil
}

// RestoreNoTail puts back a value removed or replaced on a no-tail table
// (recovery undo).
func (t *Tree) RestoreNoTail(key, old []byte, existed bool, logRec LogFunc) error {
	if logRec == nil {
		logRec = nopLog
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for round := 0; round < maxSplitRounds; round++ {
		path, lf, err := t.descend(key, itime.Max)
		if err != nil {
			return err
		}
		dp := lf.Data()
		if !existed {
			// Undo of a fresh insert: remove.
			_, err = dp.Remove(key)
		} else if _, found, rerr := dp.Replace(key, old); rerr != nil {
			err = rerr
		} else if !found {
			err = dp.Insert(key, old, false, 0)
		}
		if err == nil || !errors.Is(err, page.ErrPageFull) {
			if err == nil {
				lsn, lerr := logRec(dp.ID)
				if lerr == nil && lsn != 0 {
					dp.LSN = lsn
				}
				t.cfg.Pool.MarkDirty(lf, dp.LSN)
				err = lerr
			}
			t.releasePath(path)
			t.cfg.Pool.Release(lf)
			return err
		}
		serr := t.splitLeaf(path, lf)
		t.releasePath(path)
		t.cfg.Pool.Release(lf)
		if serr != nil && !errors.Is(serr, errRetry) {
			return serr
		}
	}
	return fmt.Errorf("tsb: restore of %q did not converge", key)
}

// UndoInsert removes transaction tid's newest (non-timestamped) version of
// key — transaction rollback and ARIES undo.
func (t *Tree) UndoInsert(tid itime.TID, key []byte, logRec LogFunc) error {
	if logRec == nil {
		logRec = nopLog
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	path, lf, err := t.descend(key, itime.Max)
	if err != nil {
		return err
	}
	defer t.cfg.Pool.Release(lf)
	defer t.releasePath(path)
	dp := lf.Data()
	if err := dp.UndoInsert(key, tid); err != nil {
		return err
	}
	lsn, lerr := logRec(dp.ID)
	if lerr != nil {
		return lerr
	}
	if lsn != 0 {
		dp.LSN = lsn
	}
	t.cfg.Pool.MarkDirty(lf, dp.LSN)
	return nil
}

// ApplyInsertRedo re-executes a logged insert against its original page if
// the page has not yet seen the record's LSN (ARIES redo).
func (t *Tree) ApplyInsertRedo(pid page.ID, tid itime.TID, key, value []byte, stub bool, lsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := t.cfg.Pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer t.cfg.Pool.Release(f)
	dp := f.Data()
	if dp == nil {
		return fmt.Errorf("tsb: redo target %d is not a data page", pid)
	}
	if dp.LSN >= lsn {
		return nil
	}
	if _, _, _, err := dp.InsertOrReplaceOwn(key, value, stub, tid); err != nil {
		return fmt.Errorf("tsb: redo insert on page %d: %w", pid, err)
	}
	dp.LSN = lsn
	t.cfg.Pool.MarkDirty(f, lsn)
	return nil
}
