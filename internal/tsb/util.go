package tsb

import (
	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// Utilization describes storage occupancy, separating current pages (whose
// single-timeslice utilization the threshold T controls — Section 3.3 notes
// it converges to about T·ln 2) from historical pages.
type Utilization struct {
	CurrentPages int
	HistPages    int
	// CurrentUsed is the marshalled byte size of current pages' contents.
	CurrentUsed int
	// CurrentLive is the byte size of only the versions alive right now —
	// the "current time slice".
	CurrentLive int
	// HistUsed is the marshalled byte size of historical pages' contents.
	HistUsed int
	// PageSize is the configured page capacity.
	PageSize int
}

// CurrentSliceUtilization returns CurrentLive / (CurrentPages * PageSize).
func (u Utilization) CurrentSliceUtilization() float64 {
	if u.CurrentPages == 0 {
		return 0
	}
	return float64(u.CurrentLive) / float64(u.CurrentPages*u.PageSize)
}

// Utilization walks the whole structure (current pages via the index,
// historical pages via the chains) and reports occupancy.
func (t *Tree) Utilization() (Utilization, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	u := Utilization{PageSize: t.cfg.Pool.PageSize()}
	currents, err := t.currentPages(nil, nil)
	if err != nil {
		return u, err
	}
	seen := make(map[page.ID]bool)
	for _, cid := range currents {
		f, err := t.cfg.Pool.Fetch(cid)
		if err != nil {
			return u, err
		}
		dp := f.Data()
		u.CurrentPages++
		u.CurrentUsed += dp.Used()
		u.CurrentLive += liveBytes(dp)
		chain := dp.Hist
		t.cfg.Pool.Release(f)
		for chain != 0 && !seen[chain] {
			seen[chain] = true
			hf, err := t.cfg.Pool.Fetch(chain)
			if err != nil {
				return u, err
			}
			hp := hf.Data()
			u.HistPages++
			u.HistUsed += hp.Used()
			chain = hp.Hist
			t.cfg.Pool.Release(hf)
		}
	}
	return u, nil
}

// liveBytes sums the sizes of versions visible at the current time.
func liveBytes(dp *page.DataPage) int {
	n := 0
	for s := range dp.Slots {
		v, ok := dp.VersionAsOf(s, itime.Max)
		if !ok || v.Stub {
			// An unstamped head also counts as live payload.
			head := &dp.Recs[dp.Slots[s]]
			if !head.Stamped && !head.Stub {
				n += len(head.Key) + len(head.Value) + page.TailLen
			}
			continue
		}
		n += len(v.Key) + len(v.Value) + page.TailLen
	}
	return n
}
