package tsb

import (
	"fmt"
	"sort"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// Cold-tier migration: after a time split a history page is immutable, and
// its versions can move into compacted runs. The tree side is two
// operations — CollectCold enumerates the history pages reachable from the
// chains and extracts their versions; CutCold, after the engine has made
// the extracted versions durable in the cold tier, severs every chain edge
// into those pages so they can be freed.
//
// Key splits SHARE history chains between sibling current pages (the chain
// graph is a DAG whose suffixes converge), so victims are collected as a
// closed suffix set: every page reachable from a victim is itself a victim.
// CutCold re-enumerates under the exclusive lock rather than trusting the
// collected set's reverse edges — time splits between Collect and Cut may
// have created NEW history pages whose Hist still points at a victim.

// ColdEntry is one stamped version extracted from a history page.
type ColdEntry struct {
	Key   []byte
	Value []byte
	TS    itime.Timestamp
	Stub  bool
}

// CollectCold walks, under the shared lock, every history chain of the tree
// and returns the IDs of history pages that can migrate plus their versions,
// (key, TS)-deduplicated and sorted. A chain is followed until its end; a
// page holding an unstamped version (which should not exist on a history
// page, but is checked defensively) stops the walk there, keeping the
// returned victim set suffix-closed.
func (t *Tree) CollectCold() ([]page.ID, []ColdEntry, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	currents, err := t.currentPages(nil, nil)
	if err != nil {
		return nil, nil, err
	}
	visited := make(map[page.ID]bool)
	type verKey struct {
		key string
		ts  itime.Timestamp
	}
	seen := make(map[verKey]bool)
	var victims []page.ID
	var entries []ColdEntry

	for _, cid := range currents {
		f, err := t.cfg.Pool.Fetch(cid)
		if err != nil {
			return nil, nil, err
		}
		dp := f.Data()
		if dp == nil {
			t.cfg.Pool.Release(f)
			return nil, nil, fmt.Errorf("tsb: current page %d is not a data page", cid)
		}
		id := dp.Hist
		t.cfg.Pool.Release(f)

		for id != 0 && !visited[id] {
			visited[id] = true
			f, err := t.cfg.Pool.Fetch(id)
			if err != nil {
				return nil, nil, err
			}
			hp := f.Data()
			if hp == nil {
				t.cfg.Pool.Release(f)
				return nil, nil, fmt.Errorf("tsb: history chain hit non-data page %d", id)
			}
			if hp.Current || hp.HasUnstamped() {
				// Not migratable; stop here so victims stay a closed suffix
				// (everything below remains reachable through this page).
				t.cfg.Pool.Release(f)
				break
			}
			for s := range hp.Slots {
				for _, i := range hp.Chain(s) {
					v := &hp.Recs[i]
					if !v.Stamped {
						continue
					}
					vk := verKey{key: string(v.Key), ts: v.TS}
					if seen[vk] {
						continue
					}
					seen[vk] = true
					entries = append(entries, ColdEntry{
						Key:   append([]byte(nil), v.Key...),
						Value: append([]byte(nil), v.Value...),
						TS:    v.TS,
						Stub:  v.Stub,
					})
				}
			}
			victims = append(victims, id)
			next := hp.Hist
			t.cfg.Pool.Release(f)
			id = next
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	return victims, entries, nil
}

// CutCold severs, under the writer lock, every chain edge pointing into
// victims and logs each severed page as a structure modification. It is
// called only after the victims' versions are durable in the cold tier
// (manifest installed and its WAL record flushed). Returns the highest SMO
// LSN written (0 when no page referenced a victim); the caller must flush
// the log to it before freeing the victim pages.
func (t *Tree) CutCold(victims []page.ID) (uint64, error) {
	if len(victims) == 0 {
		return 0, nil
	}
	vset := make(map[page.ID]bool, len(victims))
	for _, id := range victims {
		vset[id] = true
	}

	t.mu.Lock()
	defer t.mu.Unlock()

	currents, err := t.currentPages(nil, nil)
	if err != nil {
		return 0, err
	}
	visited := make(map[page.ID]bool)
	var lastLSN uint64
	for _, cid := range currents {
		id := cid
		for id != 0 && !visited[id] {
			visited[id] = true
			if vset[id] {
				// Should be unreachable: edges into victims are cut before
				// descending. Defensive stop.
				break
			}
			f, err := t.cfg.Pool.Fetch(id)
			if err != nil {
				return lastLSN, err
			}
			dp := f.Data()
			if dp == nil {
				t.cfg.Pool.Release(f)
				return lastLSN, fmt.Errorf("tsb: chain hit non-data page %d", id)
			}
			next := dp.Hist
			if next != 0 && vset[next] {
				// Sever the edge. One SMO per page keeps pin counts at one
				// regardless of chain count; each cut is independently
				// consistent (the manifest already serves the severed
				// suffix), so a crash between cuts loses nothing.
				dp.Hist = 0
				lsn, err := t.logSMO([]any{dp}, nil)
				if err != nil {
					dp.Hist = next // keep memory consistent for degraded reads
					t.cfg.Pool.Release(f)
					return lastLSN, err
				}
				if lsn != 0 {
					dp.LSN = lsn
					t.cfg.Pool.MarkDirty(f, lsn)
					lastLSN = lsn
				} else {
					t.cfg.Pool.MarkDirty(f, dp.LSN)
				}
				t.cfg.Pool.Release(f)
				break // everything below is a victim (suffix-closed)
			}
			t.cfg.Pool.Release(f)
			id = next
		}
	}
	return lastLSN, nil
}
