// Package tsb implements the time-split B-tree — Immortal DB's integrated
// storage structure housing all record versions, current and historical
// (Section 3, and Lomet & Salzberg's TSB-tree it builds on).
//
// Current and historical versions start on the same data page, linked by
// in-page version chains. Full current pages split by TIME (historical
// versions move to a history page chained from the current page) and, above
// a utilization threshold, additionally by KEY. Two historical access paths
// are provided, matching the paper:
//
//   - ModeChain: the measured prototype of Section 5 — only current pages
//     are indexed; as-of queries walk the history page chain backwards
//     comparing split times.
//   - ModeTSB: the full two-dimensional index of Section 3.4 — history pages
//     get index entries describing (key range × time range) rectangles, and
//     an as-of query descends directly to the one page that must contain the
//     version of interest.
package tsb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"immortaldb/internal/buffer"
	"immortaldb/internal/itime"
	"immortaldb/internal/obs"
	"immortaldb/internal/storage/disk"
	"immortaldb/internal/storage/page"
)

// Observability: split kinds and history-chain traversal cost. The hop
// histogram records pages visited per chain read (0 = answered from the
// current page), the shape behind the paper's Figure 9 read penalty.
var (
	obsTimeSplits    = obs.NewCounter("immortaldb_tsb_time_splits_total", "TSB-tree time splits (historical page migrations).")
	obsKeySplits     = obs.NewCounter("immortaldb_tsb_key_splits_total", "TSB-tree key splits of current pages.")
	obsChainHopsAll  = obs.NewCounter("immortaldb_tsb_chain_hops_total", "History-chain pages visited across all operations.")
	obsChainReadHops = obs.NewHistogram("immortaldb_tsb_chain_hops", "History-chain pages visited per chain read.", obs.CountBuckets)
)

// Mode selects the historical access path.
type Mode int

// Historical access modes.
const (
	// ModeChain indexes only current pages; history is reached by walking
	// each current page's time-split chain (the paper's prototype).
	ModeChain Mode = iota
	// ModeTSB posts index entries for historical pages, enabling direct
	// descent to any (key, time) point.
	ModeTSB
)

// DefaultThreshold is the storage utilization threshold T above which a time
// split is followed by a key split (Section 3.3 suggests ~70%, yielding
// single-timeslice utilization of about T·ln 2).
const DefaultThreshold = 0.70

// ErrNoSpace reports a record too large for any page.
var ErrNoSpace = errors.New("tsb: record larger than a page")

// RootChange describes a tree-root move carried inside a structure-
// modification record, made durable so recovery can find the tree.
type RootChange struct {
	Root   page.ID
	IsLeaf bool
}

// Logger receives structure modifications for the WAL. The returned LSN
// becomes every touched page's LSN. A nil Logger disables logging (unit
// tests).
type Logger interface {
	// LogSMO atomically logs one structure modification: full after-images
	// of every page it touched and, when root is non-nil, the root move.
	// Everything must land in ONE log record — a torn log tail has to keep
	// the whole modification or none of it, or recovery could rebuild a
	// child page without the parent entry (or root change) that routes to
	// the keys it absorbed.
	LogSMO(pages []any, root *RootChange) (lsn uint64, err error)
}

// Stamper resolves transaction IDs to commit timestamps and is told how many
// versions of each transaction were lazily stamped (Section 2.2, stage IV).
// A nil Stamper treats every TID as uncommitted.
type Stamper interface {
	Resolve(tid itime.TID) (itime.Timestamp, bool)
	NoteStamped(counts map[itime.TID]int)
	// MaxCommitLSN returns the highest commit-record LSN among the stamped
	// transactions — the write-ahead point for a page carrying their stamps.
	// It must be queried before NoteStamped, which may retire the entries.
	MaxCommitLSN(counts map[itime.TID]int) uint64
}

// Config configures a Tree.
type Config struct {
	Pool  *buffer.Pool
	Pager *disk.Pager
	// TableID tags lock keys and log records.
	TableID uint32
	// Logger may be nil (no WAL).
	Logger Logger
	// Stamper may be nil (no lazy timestamping).
	Stamper Stamper
	Mode    Mode
	// Threshold is the post-time-split utilization above which a key split
	// follows; 0 means DefaultThreshold.
	Threshold float64
	// Immortal enables time splits and forbids version GC. Non-immortal
	// versioned tables (snapshot isolation only) GC old versions instead of
	// time-splitting; their history never persists.
	Immortal bool
	// NoTail marks a conventional table: no version chains at all, updates
	// in place. Implies !Immortal.
	NoTail bool
	// SplitNow supplies the "current time" used as a time-split boundary; it
	// must return a timestamp strictly greater than every issued commit
	// timestamp (the engine wires it to the commit sequencer).
	SplitNow func() itime.Timestamp
	// SnapshotHorizon returns the oldest timestamp any active snapshot
	// transaction can still read; versions strictly older than the version
	// visible there are reclaimable on non-immortal tables. A nil func
	// disables GC.
	SnapshotHorizon func() itime.Timestamp
	// Hist is the cold history tier. When a chain walk runs off the end of
	// the in-tree history (Hist == 0) without reaching a page covering the
	// requested time, the versions migrated into compacted runs answer
	// through it. nil means the chain is complete — the pre-migration
	// invariant that the first page ever created has StartTS == 0.
	Hist HistStore
	// OnTimeSplit, when non-nil, is called after every successful time split,
	// inside the tree's writer section. It must not block; the engine wires
	// it to a non-blocking kick of the history compactor.
	OnTimeSplit func()
}

// Tree is one table's time-split B-tree. The engine serializes structural
// mutations; Tree adds its own lock so independent tables can proceed in
// parallel and reads can run concurrently with each other.
type Tree struct {
	cfg Config

	mu         sync.RWMutex
	root       page.ID
	rootIsLeaf bool

	keySplits, timeSplits atomic.Uint64
	chainHops             atomic.Uint64 // history pages visited by chain walks
}

// Open attaches a Tree to an existing root.
func Open(cfg Config, root page.ID, rootIsLeaf bool) *Tree {
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	return &Tree{cfg: cfg, root: root, rootIsLeaf: rootIsLeaf}
}

// Create allocates the initial (empty, unbounded, current) data page and
// returns the new tree.
func Create(cfg Config) (*Tree, error) {
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	id, err := cfg.Pager.Allocate()
	if err != nil {
		return nil, err
	}
	leaf := page.NewData(id, cfg.Pool.PageSize())
	leaf.NoTail = cfg.NoTail
	t := &Tree{cfg: cfg, root: id, rootIsLeaf: true}
	lsn, err := t.logSMO([]any{leaf}, &RootChange{Root: id, IsLeaf: true})
	if err != nil {
		return nil, err
	}
	leaf.LSN = lsn
	f, err := cfg.Pool.NewPage(id, leaf, lsn)
	if err != nil {
		return nil, err
	}
	cfg.Pool.Release(f)
	return t, nil
}

// Root returns the root page and whether it is a leaf, for catalog
// persistence.
func (t *Tree) Root() (page.ID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root, t.rootIsLeaf
}

// Exclusive runs fn holding the tree's writer lock, excluding every reader
// and writer. Live replica redo uses it to install multi-page structure
// modifications atomically with respect to the AS OF reads it serves
// concurrently — a reader never observes a split half-applied.
func (t *Tree) Exclusive(fn func() error) error {
	return t.ApplyExclusive(fn, nil)
}

// ApplyExclusive runs fn under the tree's writer lock and, if fn succeeds
// and rc is non-nil, repositions the root in the same critical section —
// the page installs and the root move of one replicated structure
// modification become a single atomic step for concurrent readers.
func (t *Tree) ApplyExclusive(fn func() error, rc *RootChange) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := fn(); err != nil {
		return err
	}
	if rc != nil {
		t.root, t.rootIsLeaf = rc.Root, rc.IsLeaf
	}
	return nil
}

// SetRoot repositions the tree (recovery applying a root-change record).
func (t *Tree) SetRoot(root page.ID, isLeaf bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root = root
	t.rootIsLeaf = isLeaf
}

// Stats describes tree activity.
type Stats struct {
	TimeSplits, KeySplits uint64
	ChainHops             uint64
}

// Snapshot returns activity counters.
func (t *Tree) Snapshot() Stats {
	return Stats{
		TimeSplits: t.timeSplits.Load(),
		KeySplits:  t.keySplits.Load(),
		ChainHops:  t.chainHops.Load(),
	}
}

func (t *Tree) logSMO(pages []any, root *RootChange) (uint64, error) {
	if t.cfg.Logger == nil {
		return 0, nil
	}
	return t.cfg.Logger.LogSMO(pages, root)
}

// resolve adapts the Stamper to page.Resolver.
func (t *Tree) resolve(tid itime.TID) (itime.Timestamp, bool) {
	if t.cfg.Stamper == nil {
		return itime.Timestamp{}, false
	}
	return t.cfg.Stamper.Resolve(tid)
}

// stampPage lazily timestamps every committed version on dp and reports the
// counts to the Stamper. It returns true if anything was stamped (the page
// must then be marked dirty). Timestamping is never logged, so the page's
// StampLSN advances to the stamped transactions' highest commit-record LSN
// instead — the buffer pool flushes the log through it before a page write.
// Callers must hold either the tree's exclusive lock or the frame's
// exclusive latch.
func (t *Tree) stampPage(dp *page.DataPage) bool {
	if t.cfg.Stamper == nil || !dp.HasUnstamped() {
		return false
	}
	counts := dp.StampAll(t.resolve)
	if len(counts) == 0 {
		return false
	}
	if lsn := t.cfg.Stamper.MaxCommitLSN(counts); lsn > dp.StampLSN {
		dp.StampLSN = lsn
	}
	t.cfg.Stamper.NoteStamped(counts)
	return true
}

// pathEntry is one index page on a descent path, with the rectangle the
// parent assigned it (the root gets the unbounded rectangle).
type pathEntry struct {
	frame *buffer.Frame
	rect  page.Rect
}

// releasePath unpins the frames of a descent path.
func (t *Tree) releasePath(path []pathEntry) {
	for _, pe := range path {
		t.cfg.Pool.Release(pe.frame)
	}
}

var everything = page.Rect{HighTS: itime.Max}

// descend walks from the root towards the data page containing (key, ts),
// returning the index path (possibly empty) and the pinned leaf frame. The
// caller must hold t.mu (read or write).
func (t *Tree) descend(key []byte, ts itime.Timestamp) ([]pathEntry, *buffer.Frame, error) {
	root, rootIsLeaf := t.root, t.rootIsLeaf
	if rootIsLeaf {
		f, err := t.cfg.Pool.Fetch(root)
		return nil, f, err
	}
	var path []pathEntry
	id := root
	rect := everything
	for {
		f, err := t.cfg.Pool.Fetch(id)
		if err != nil {
			t.releasePath(path)
			return nil, nil, err
		}
		ip := f.Index()
		if ip == nil {
			// Reached a data page.
			return path, f, nil
		}
		path = append(path, pathEntry{frame: f, rect: rect})
		e, ok := ip.FindChild(key, ts)
		if !ok {
			t.releasePath(path)
			return nil, nil, fmt.Errorf("tsb: index page %d has no child for (%q, %v)", id, key, ts)
		}
		id = e.Child
		rect = e.R
	}
}
