package tsb

import (
	"bytes"
	"fmt"
	"sort"

	"immortaldb/internal/buffer"
	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// Result is a read outcome: a copy of the visible version, if any. Deleted
// records (visible version is a delete stub) report Found=false with
// Deleted=true.
type Result struct {
	Key     []byte
	Value   []byte
	TS      itime.Timestamp // start time of the version (zero if unstamped)
	TID     itime.TID       // writer, when the version is the reader's own uncommitted write
	Found   bool
	Deleted bool
}

func resultFrom(v *page.Version) Result {
	if v == nil {
		return Result{}
	}
	r := Result{
		Key:     append([]byte(nil), v.Key...),
		Value:   append([]byte(nil), v.Value...),
		Found:   !v.Stub,
		Deleted: v.Stub,
	}
	if v.Stamped {
		r.TS = v.TS
	} else {
		r.TID = v.TID
	}
	return r
}

// pageNeedsStamp reports whether dp carries versions whose transactions have
// committed but which are not yet timestamped. The caller holds the frame's
// shared latch (or any exclusive lock over the page).
func (t *Tree) pageNeedsStamp(dp *page.DataPage) bool {
	if t.cfg.Stamper == nil {
		return false
	}
	for i := range dp.Recs {
		v := &dp.Recs[i]
		if v.Stamped {
			continue
		}
		if _, ok := t.cfg.Stamper.Resolve(v.TID); ok {
			return true
		}
	}
	return false
}

// maybeStamp lazily timestamps dp's committed versions in place ("if a
// transaction reads a non-timestamped version, we timestamp it" — Section
// 2.2). It runs under the tree's SHARED lock: concurrent readers of the same
// page are excluded by the frame's latch, not the tree lock, so AS OF scans
// and snapshot reads on other pages proceed in parallel. The caller holds a
// pin on lf (which also keeps the buffer pool from flushing the page
// mid-stamp: flushes skip pinned frames).
func (t *Tree) maybeStamp(lf *buffer.Frame, dp *page.DataPage) {
	if t.cfg.Stamper == nil {
		return
	}
	lf.RLatch()
	need := t.pageNeedsStamp(dp)
	lf.RUnlatch()
	if !need {
		return
	}
	lf.Latch()
	// Re-check under the exclusive latch: another reader may have stamped
	// the page while we waited (stampPage then finds nothing — benign).
	if t.stampPage(dp) {
		t.cfg.Pool.MarkDirty(lf, dp.LSN)
	}
	lf.Unlatch()
}

// lookInLatched is lookIn under the frame's shared latch when dp is a
// current page (the only pages mutated in place — by stamping — under the
// shared tree lock). Historical pages are immutable outside the tree's
// exclusive lock and need no latch.
func (t *Tree) lookInLatched(lf *buffer.Frame, dp *page.DataPage, key []byte, ts itime.Timestamp, self itime.TID) Result {
	if !dp.Current {
		return t.lookIn(dp, key, ts, self)
	}
	lf.RLatch()
	defer lf.RUnlatch()
	return t.lookIn(dp, key, ts, self)
}

// ReadKey returns the version of key visible at ts. ts == itime.Max reads
// the current state. self, when non-zero, makes the reading transaction's
// own uncommitted writes visible (they have no timestamp yet).
//
// Reads run entirely under the shared tree lock; when a visited page holds
// committed-but-unstamped versions, the read trigger of lazy timestamping
// stamps them in place under the page frame's exclusive latch, so reads of
// other pages — and the commit pipeline — are never blocked by it.
func (t *Tree) ReadKey(key []byte, ts itime.Timestamp, self itime.TID) (Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.cfg.NoTail {
		return t.readNoTail(key)
	}
	if t.cfg.Mode == ModeTSB && !ts.IsMax() {
		return t.readDirect(key, ts, self)
	}
	return t.readViaChain(key, ts, self)
}

func (t *Tree) readNoTail(key []byte) (Result, error) {
	path, lf, err := t.descend(key, itime.Max)
	if err != nil {
		return Result{}, err
	}
	defer t.cfg.Pool.Release(lf)
	defer t.releasePath(path)
	dp := lf.Data()
	s, found := dp.FindSlot(key)
	if !found {
		return Result{}, nil
	}
	return resultFrom(dp.Latest(s)), nil
}

// readDirect descends straight to the page covering (key, ts) — ModeTSB.
func (t *Tree) readDirect(key []byte, ts itime.Timestamp, self itime.TID) (Result, error) {
	path, lf, err := t.descend(key, ts)
	if err != nil {
		return Result{}, err
	}
	defer t.cfg.Pool.Release(lf)
	defer t.releasePath(path)
	dp := lf.Data()
	if dp.Current {
		t.maybeStamp(lf, dp)
	}
	return t.lookInLatched(lf, dp, key, ts, self), nil
}

// readViaChain finds the current page and walks its history chain back to
// the page whose time range covers ts — the paper's prototype access path.
func (t *Tree) readViaChain(key []byte, ts itime.Timestamp, self itime.TID) (Result, error) {
	hops := 0
	defer func() { obsChainReadHops.Observe(float64(hops)) }()
	path, lf, err := t.descend(key, itime.Max)
	if err != nil {
		return Result{}, err
	}
	t.releasePath(path)
	dp := lf.Data()
	t.maybeStamp(lf, dp)
	// "We check the current page's split time. If as of time is later than
	// split time, the version we want is in the current page. Otherwise we
	// follow the page chain" (Section 4.2).
	for ts.Less(dp.StartTS) {
		hist := dp.Hist
		t.cfg.Pool.Release(lf)
		if hist == 0 {
			// The chain ends here without covering ts: either before the
			// beginning of history, or the older pages have migrated to the
			// cold tier.
			return t.coldRead(key, ts)
		}
		lf, err = t.cfg.Pool.Fetch(hist)
		if err != nil {
			return Result{}, err
		}
		t.chainHops.Add(1)
		obsChainHopsAll.Inc()
		hops++
		dp = lf.Data()
		if dp == nil {
			t.cfg.Pool.Release(lf)
			return Result{}, fmt.Errorf("tsb: history chain hit non-data page %d", hist)
		}
	}
	res := t.lookInLatched(lf, dp, key, ts, self)
	t.cfg.Pool.Release(lf)
	return res, nil
}

// lookIn finds the visible version of key in dp at ts, honouring the
// reader's own uncommitted writes.
func (t *Tree) lookIn(dp *page.DataPage, key []byte, ts itime.Timestamp, self itime.TID) Result {
	s, found := dp.FindSlot(key)
	if !found {
		return Result{}
	}
	if self != 0 && dp.Current {
		// The newest version may be the reader's own in-flight write.
		for i := dp.Slots[s]; i != page.NoPrev; i = dp.Recs[i].Prev {
			v := &dp.Recs[i]
			if v.Stamped {
				break
			}
			if v.TID == self {
				return resultFrom(v)
			}
		}
	}
	v, ok := dp.VersionAsOf(s, ts)
	if !ok {
		return Result{}
	}
	return resultFrom(v)
}

// LatestInfo reports the newest version of key — its timestamp (or writer
// TID if unstamped) and whether it is a delete stub. The write-conflict
// check of snapshot isolation uses it (first committer wins).
//
// The newest version normally lives on the key's current page, but a time
// split drops delete stubs older than the split time from the current page
// entirely (absence there already means "deleted"), leaving the record's
// newest version on a history page. A conflict check that stopped at the
// current page would miss a deletion committed after the caller's snapshot.
// `since` bounds the caller's indifference: versions at or before it never
// matter, so the history chain is walked only when the current page has
// time-split after `since` — otherwise absence from the current page proves
// no version newer than `since` exists. Pass itime.Max to never walk.
func (t *Tree) LatestInfo(key []byte, since itime.Timestamp) (ts itime.Timestamp, tid itime.TID, stub, found bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	path, lf, err := t.descend(key, itime.Max)
	if err != nil {
		return itime.Timestamp{}, 0, false, false, err
	}
	t.releasePath(path)
	dp := lf.Data()
	t.maybeStamp(lf, dp)
	lf.RLatch()
	s, ok := dp.FindSlot(key)
	if ok {
		v := dp.Latest(s)
		lf.RUnlatch()
		t.cfg.Pool.Release(lf)
		if v.Stamped {
			return v.TS, 0, v.Stub, true, nil
		}
		return itime.Timestamp{}, v.TID, v.Stub, true, nil
	}
	lf.RUnlatch()
	if !since.Less(dp.StartTS) {
		// No time split after `since`: a version newer than `since` would
		// still be on the current page, so absence is authoritative.
		t.cfg.Pool.Release(lf)
		return itime.Timestamp{}, 0, false, false, nil
	}
	// Walk the history chain to the nearest page still holding the key; its
	// newest version (a migrated delete stub, for keys dead at the split) is
	// the record's newest version overall. Historical pages are immutable,
	// so no latch is needed past the current page.
	for {
		hist := dp.Hist
		t.cfg.Pool.Release(lf)
		if hist == 0 {
			// Chain exhausted: the key's newest surviving version, if any,
			// migrated to the cold tier (always stamped there).
			if t.cfg.Hist == nil {
				return itime.Timestamp{}, 0, false, false, nil
			}
			v, ok, cerr := t.cfg.Hist.Newest(key)
			if cerr != nil || !ok {
				return itime.Timestamp{}, 0, false, false, cerr
			}
			return v.TS, 0, v.Stub, true, nil
		}
		lf, err = t.cfg.Pool.Fetch(hist)
		if err != nil {
			return itime.Timestamp{}, 0, false, false, err
		}
		t.chainHops.Add(1)
		obsChainHopsAll.Inc()
		dp = lf.Data()
		if dp == nil {
			t.cfg.Pool.Release(lf)
			return itime.Timestamp{}, 0, false, false, fmt.Errorf("tsb: history chain hit non-data page %d", hist)
		}
		if s, ok := dp.FindSlot(key); ok {
			v := dp.Latest(s)
			t.cfg.Pool.Release(lf)
			if v.Stamped {
				return v.TS, 0, v.Stub, true, nil
			}
			return itime.Timestamp{}, v.TID, v.Stub, true, nil
		}
	}
}

// ScanAsOf calls fn for every record alive at ts with lo <= key < hi (nil
// bounds are unbounded), in ascending key order. ts == itime.Max scans the
// current state. fn returning false stops the scan.
func (t *Tree) ScanAsOf(lo, hi []byte, ts itime.Timestamp, self itime.TID, fn func(Result) bool) error {
	t.mu.RLock()
	results, err := t.collectScan(lo, hi, ts, self)
	t.mu.RUnlock()
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(results[k]) {
			return nil
		}
	}
	return nil
}

func (t *Tree) collectScan(lo, hi []byte, ts itime.Timestamp, self itime.TID) (map[string]Result, error) {
	// Collect the set of data pages whose region intersects the scan, plus
	// the key ranges whose history at ts lives only in the cold tier.
	pages, cold, err := t.pagesForScan(lo, hi, ts)
	if err != nil {
		return nil, err
	}
	// Replicated spanning versions can surface the same key from two pages;
	// keep one result per key (the copies are identical by construction).
	results := make(map[string]Result)
	for _, pid := range pages {
		lf, err := t.cfg.Pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		dp := lf.Data()
		if dp == nil {
			t.cfg.Pool.Release(lf)
			return nil, fmt.Errorf("tsb: scan hit non-data page %d", pid)
		}
		if dp.Current {
			t.maybeStamp(lf, dp)
			lf.RLatch()
		}
		for s := range dp.Slots {
			k := dp.Recs[dp.Slots[s]].Key
			if lo != nil && bytes.Compare(k, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				continue
			}
			if _, seen := results[string(k)]; seen {
				continue
			}
			res := t.lookIn(dp, k, ts, self)
			if res.Found {
				results[string(k)] = res
			}
		}
		if dp.Current {
			lf.RUnlatch()
		}
		t.cfg.Pool.Release(lf)
	}
	// Cold ranges: key partitions whose chain ended before covering ts. No
	// surviving chain page holds their keys at ts (sibling chains sharing a
	// suffix converge on the same covering page), so any key already in
	// results was answered hot and keeps priority; stubs read as absent.
	if t.cfg.Hist != nil {
		for _, cr := range cold {
			err := t.cfg.Hist.ScanAsOf(cr.lo, cr.hi, ts, func(k []byte, v ColdVersion) bool {
				if _, seen := results[string(k)]; seen {
					return true
				}
				if !v.Stub {
					results[string(k)] = coldResult(k, v)
				}
				return true
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return results, nil
}

// coldRange is a key range whose as-of-ts versions live in the cold tier.
type coldRange struct{ lo, hi []byte }

// pagesForScan returns the data pages an as-of-ts scan over [lo, hi) must
// visit — via the index in ModeTSB, via current pages plus chain walks in
// ModeChain — plus, in chain mode, the key ranges whose chain ended without
// covering ts: their versions at ts, if any, migrated to the cold tier. For
// NoTail tables there is no time dimension. The caller holds the tree lock
// (shared or exclusive); nothing is mutated.
func (t *Tree) pagesForScan(lo, hi []byte, ts itime.Timestamp) ([]page.ID, []coldRange, error) {
	var out []page.ID
	var cold []coldRange
	seen := make(map[page.ID]bool)
	add := func(id page.ID) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}

	if t.cfg.Mode == ModeTSB && !ts.IsMax() && !t.cfg.NoTail {
		// Direct: walk the index collecting children whose rect contains ts.
		var walk func(id page.ID) error
		walk = func(id page.ID) error {
			f, err := t.cfg.Pool.Fetch(id)
			if err != nil {
				return err
			}
			defer t.cfg.Pool.Release(f)
			if ip := f.Index(); ip != nil {
				for _, e := range ip.ChildrenForTime(lo, hi, ts) {
					if err := walk(e.Child); err != nil {
						return err
					}
				}
				return nil
			}
			add(f.ID())
			return nil
		}
		root, rootIsLeaf := t.root, t.rootIsLeaf
		if rootIsLeaf {
			add(root)
			return out, nil, nil
		}
		if err := walk(root); err != nil {
			return nil, nil, err
		}
		return out, nil, nil
	}

	// Chain mode (and all current scans): find current pages, then follow
	// each history chain back to the page covering ts.
	currents, err := t.currentPages(lo, hi)
	if err != nil {
		return nil, nil, err
	}
	for _, cid := range currents {
		id := cid
		// The current page's fences bound the partition this chain serves;
		// clipped against the scan bounds they become the cold range if the
		// chain ends uncovered.
		var partLo, partHi []byte
		for id != 0 {
			f, err := t.cfg.Pool.Fetch(id)
			if err != nil {
				return nil, nil, err
			}
			dp := f.Data()
			if dp == nil {
				t.cfg.Pool.Release(f)
				return nil, nil, fmt.Errorf("tsb: chain hit non-data page %d", id)
			}
			if id == cid {
				partLo = clipLo(dp.LowKey, lo)
				partHi = clipHi(dp.HighKey, hi)
			}
			covers := !ts.Less(dp.StartTS)
			next := dp.Hist
			if !seen[id] && id != cid {
				t.chainHops.Add(1)
				obsChainHopsAll.Inc()
			}
			if covers {
				add(id)
				t.cfg.Pool.Release(f)
				break
			}
			t.cfg.Pool.Release(f)
			id = next
			if id == 0 && t.cfg.Hist != nil {
				cold = append(cold, coldRange{lo: partLo, hi: partHi})
			}
		}
	}
	return out, cold, nil
}

// clipLo returns the tighter (larger) of a page's low fence and the scan's
// low bound; nil means unbounded.
func clipLo(fence, lo []byte) []byte {
	if fence == nil {
		return lo
	}
	if lo == nil || bytes.Compare(fence, lo) > 0 {
		return fence
	}
	return lo
}

// clipHi returns the tighter (smaller) of a page's high fence and the
// scan's exclusive high bound; nil means unbounded.
func clipHi(fence, hi []byte) []byte {
	if fence == nil {
		return hi
	}
	if hi == nil || bytes.Compare(fence, hi) < 0 {
		return fence
	}
	return hi
}

// currentPages returns the IDs of current data pages intersecting [lo, hi).
func (t *Tree) currentPages(lo, hi []byte) ([]page.ID, error) {
	root, rootIsLeaf := t.root, t.rootIsLeaf
	if rootIsLeaf {
		return []page.ID{root}, nil
	}
	var out []page.ID
	seen := make(map[page.ID]bool)
	var walk func(id page.ID) error
	walk = func(id page.ID) error {
		f, err := t.cfg.Pool.Fetch(id)
		if err != nil {
			return err
		}
		defer t.cfg.Pool.Release(f)
		ip := f.Index()
		if ip == nil {
			dp := f.Data()
			if dp != nil && dp.Current && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
			return nil
		}
		for _, e := range ip.ChildrenForTime(lo, hi, itime.Max) {
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return out, nil
}

// VersionInfo is one entry of a key's time-travel history.
type VersionInfo struct {
	Value   []byte
	TS      itime.Timestamp
	Stub    bool
	Stamped bool
	TID     itime.TID
}

// History returns every version of key, newest first — the "time travel"
// functionality of Section 4.2. Replicated copies (from time splits) are
// collapsed.
func (t *Tree) History(key []byte) ([]VersionInfo, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.historyLocked(key)
}

func (t *Tree) historyLocked(key []byte) ([]VersionInfo, error) {
	if t.cfg.NoTail {
		return nil, fmt.Errorf("tsb: no history on a conventional table")
	}
	// Walk from the current page back through the whole chain (chain mode
	// always works; TSB mode could use ChildrenForKey, but the chain is
	// complete by construction and keeps this path mode-independent).
	path, lf, err := t.descend(key, itime.Max)
	if err != nil {
		return nil, err
	}
	t.releasePath(path)
	var out []VersionInfo
	seenStart := make(map[itime.Timestamp]bool)
	for {
		dp := lf.Data()
		if dp == nil {
			t.cfg.Pool.Release(lf)
			return nil, fmt.Errorf("tsb: history chain hit non-data page")
		}
		if dp.Current {
			t.maybeStamp(lf, dp)
			lf.RLatch()
		}
		if s, found := dp.FindSlot(key); found {
			for _, i := range dp.Chain(s) {
				v := &dp.Recs[i]
				if v.Stamped {
					if seenStart[v.TS] {
						continue
					}
					seenStart[v.TS] = true
				}
				out = append(out, VersionInfo{
					Value:   append([]byte(nil), v.Value...),
					TS:      v.TS,
					Stub:    v.Stub,
					Stamped: v.Stamped,
					TID:     v.TID,
				})
			}
		}
		if dp.Current {
			lf.RUnlatch()
		}
		hist := dp.Hist
		t.cfg.Pool.Release(lf)
		if hist == 0 {
			// Chain exhausted: append the key's versions that migrated to the
			// cold tier. seenStart already collapses replicated copies that
			// exist both in a surviving chain page and in a run.
			if t.cfg.Hist != nil {
				cold, cerr := t.cfg.Hist.KeyHistory(key)
				if cerr != nil {
					return nil, cerr
				}
				for _, v := range cold {
					if seenStart[v.TS] {
						continue
					}
					seenStart[v.TS] = true
					out = append(out, VersionInfo{
						Value:   v.Value,
						TS:      v.TS,
						Stub:    v.Stub,
						Stamped: true,
					})
				}
			}
			break
		}
		lf, err = t.cfg.Pool.Fetch(hist)
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		// Unstamped (in-flight) versions are newest.
		if out[a].Stamped != out[b].Stamped {
			return !out[a].Stamped
		}
		return out[b].TS.Less(out[a].TS)
	})
	return out, nil
}
