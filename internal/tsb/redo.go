package tsb

import (
	"fmt"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// ApplyNoTailRedo re-executes a logged conventional-table write against its
// original page: upsert semantics for a value, removal for a stub.
func (t *Tree) ApplyNoTailRedo(pid page.ID, key, value []byte, stub bool, lsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := t.cfg.Pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer t.cfg.Pool.Release(f)
	dp := f.Data()
	if dp == nil {
		return fmt.Errorf("tsb: redo target %d is not a data page", pid)
	}
	if dp.LSN >= lsn {
		return nil
	}
	if stub {
		if _, err := dp.Remove(key); err != nil {
			return fmt.Errorf("tsb: redo remove on page %d: %w", pid, err)
		}
	} else if _, found, err := dp.Replace(key, value); err != nil {
		return fmt.Errorf("tsb: redo replace on page %d: %w", pid, err)
	} else if !found {
		if err := dp.Insert(key, value, false, 0); err != nil {
			return fmt.Errorf("tsb: redo insert on page %d: %w", pid, err)
		}
	}
	dp.LSN = lsn
	t.cfg.Pool.MarkDirty(f, lsn)
	return nil
}

// ApplyUndoRedo re-executes a logged compensation (CLR) against its original
// page: remove the newest version of key written by tid (versioned tables)
// or restore a prior value (no-tail tables, old carried in the CLR's key
// payload is not needed — the CLR records the full restore via value/stub in
// the engine's encoding; here we only handle the versioned case).
func (t *Tree) ApplyUndoRedo(pid page.ID, tid itime.TID, key []byte, lsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := t.cfg.Pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer t.cfg.Pool.Release(f)
	dp := f.Data()
	if dp == nil {
		return fmt.Errorf("tsb: CLR redo target %d is not a data page", pid)
	}
	if dp.LSN >= lsn {
		return nil
	}
	if err := dp.UndoInsert(key, tid); err != nil {
		return fmt.Errorf("tsb: CLR redo on page %d: %w", pid, err)
	}
	dp.LSN = lsn
	t.cfg.Pool.MarkDirty(f, lsn)
	return nil
}

// ApplyStamp timestamps transaction tid's versions of key — the EAGER
// timestamping path (Section 2.2's rejected alternative, implemented as an
// ablation). Unlike lazy timestamping it is logged: logRec is called with
// the page and the returned LSN becomes the page LSN. It returns how many
// versions were stamped.
func (t *Tree) ApplyStamp(key []byte, tid itime.TID, ts itime.Timestamp, logRec LogFunc) (int, error) {
	if logRec == nil {
		logRec = nopLog
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	path, lf, err := t.descend(key, itime.Max)
	if err != nil {
		return 0, err
	}
	defer t.cfg.Pool.Release(lf)
	defer t.releasePath(path)
	dp := lf.Data()
	n := stampChain(dp, key, tid, ts)
	if n == 0 {
		return 0, nil
	}
	lsn, err := logRec(dp.ID)
	if err != nil {
		return 0, err
	}
	if lsn != 0 {
		dp.LSN = lsn
	}
	t.cfg.Pool.MarkDirty(lf, dp.LSN)
	return n, nil
}

// ApplyStampRedo re-executes a logged eager stamp against its original page.
func (t *Tree) ApplyStampRedo(pid page.ID, key []byte, tid itime.TID, ts itime.Timestamp, lsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := t.cfg.Pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer t.cfg.Pool.Release(f)
	dp := f.Data()
	if dp == nil {
		return fmt.Errorf("tsb: stamp redo target %d is not a data page", pid)
	}
	if dp.LSN >= lsn {
		return nil
	}
	stampChain(dp, key, tid, ts)
	dp.LSN = lsn
	t.cfg.Pool.MarkDirty(f, lsn)
	return nil
}

// stampChain stamps every version of key carrying tid.
func stampChain(dp *page.DataPage, key []byte, tid itime.TID, ts itime.Timestamp) int {
	s, found := dp.FindSlot(key)
	if !found {
		return 0
	}
	n := 0
	for i := dp.Slots[s]; i != page.NoPrev; i = dp.Recs[i].Prev {
		v := &dp.Recs[i]
		if !v.Stamped && v.TID == tid {
			v.Stamped = true
			v.TS = ts
			v.TID = 0
			n++
		}
	}
	return n
}

// ApplyRestoreOwnRedo re-executes a logged restore compensation (the CLR of
// an in-place overwrite) against its original page.
func (t *Tree) ApplyRestoreOwnRedo(pid page.ID, tid itime.TID, key, oldVal []byte, oldStub bool, lsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := t.cfg.Pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer t.cfg.Pool.Release(f)
	dp := f.Data()
	if dp == nil {
		return fmt.Errorf("tsb: restore redo target %d is not a data page", pid)
	}
	if dp.LSN >= lsn {
		return nil
	}
	if err := dp.RestoreOwn(key, tid, oldVal, oldStub); err != nil {
		return fmt.Errorf("tsb: restore redo on page %d: %w", pid, err)
	}
	dp.LSN = lsn
	t.cfg.Pool.MarkDirty(f, lsn)
	return nil
}
