package tsb

import (
	"immortaldb/internal/itime"
)

// ColdVersion is one record version served from the cold history tier.
// Cold versions are always stamped — unstamped versions never migrate.
type ColdVersion struct {
	Value []byte
	TS    itime.Timestamp
	Stub  bool
}

// HistStore is the tree's view of the cold history tier (implemented by the
// engine over internal/hist). Every method may be called under the tree's
// shared lock; implementations must be safe for concurrent use.
//
// The contract with the read path: the cold tier holds exactly the versions
// of history pages that were cut from the chains, so it is consulted ONLY
// when a chain walk exhausts (Hist == 0) without covering the requested
// time. Versions reachable through the chain are never also asked of the
// cold tier, which keeps replicated spanning copies from double-counting.
type HistStore interface {
	// Lookup returns the newest cold version of key with TS <= ts.
	// ok=false means the record did not exist at ts.
	Lookup(key []byte, ts itime.Timestamp) (ColdVersion, bool, error)
	// Newest returns the newest cold version of key regardless of time.
	Newest(key []byte) (ColdVersion, bool, error)
	// KeyHistory returns every cold version of key, newest first.
	KeyHistory(key []byte) ([]ColdVersion, error)
	// ScanAsOf visits the newest cold version with TS <= ts of every key in
	// [lo, hi) in ascending key order, delete stubs included. fn returning
	// false stops the scan.
	ScanAsOf(lo, hi []byte, ts itime.Timestamp, fn func(key []byte, v ColdVersion) bool) error
}

// coldResult converts a cold version to a read Result.
func coldResult(key []byte, v ColdVersion) Result {
	return Result{
		Key:     append([]byte(nil), key...),
		Value:   v.Value,
		TS:      v.TS,
		Found:   !v.Stub,
		Deleted: v.Stub,
	}
}

// coldRead answers a point read from the cold tier after the chain
// exhausted without covering ts.
func (t *Tree) coldRead(key []byte, ts itime.Timestamp) (Result, error) {
	if t.cfg.Hist == nil {
		return Result{}, nil // before the beginning of history
	}
	v, ok, err := t.cfg.Hist.Lookup(key, ts)
	if err != nil || !ok {
		return Result{}, err
	}
	return coldResult(key, v), nil
}
