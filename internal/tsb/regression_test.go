package tsb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// dump prints the tree structure (test helper).
func (t *Tree) dump(tb testing.TB) {
	root, rootIsLeaf := t.Root()
	var walk func(id page.ID, depth int)
	walk = func(id page.ID, depth int) {
		pad := strings.Repeat("  ", depth)
		f, err := t.cfg.Pool.Fetch(id)
		if err != nil {
			tb.Logf("%s<fetch %d: %v>", pad, id, err)
			return
		}
		defer t.cfg.Pool.Release(f)
		if ip := f.Index(); ip != nil {
			tb.Logf("%sindex %d (level %d, %d entries)", pad, id, ip.Level, len(ip.Entries))
			for _, e := range ip.Entries {
				tb.Logf("%s  entry child=%d leaf=%v rect=%v", pad, e.Child, e.Leaf, e.R)
				walk(e.Child, depth+2)
			}
			return
		}
		dp := f.Data()
		tb.Logf("%sdata %d cur=%v keys=%d vers=%d [%q,%q) time=[%v,%v) hist=%d",
			pad, id, dp.Current, dp.NumKeys(), dp.NumVersions(), dp.LowKey, dp.HighKey, dp.StartTS, dp.EndTS, dp.Hist)
	}
	if rootIsLeaf {
		tb.Logf("root is leaf %d", root)
	}
	walk(root, 0)
}

// TestRegressionRootGrowthDuringTimeSplit pins the fix for a bug where a
// time split of a root leaf grew an index root, and the follow-up key split
// (still seeing an empty descent path) grew a second root that orphaned the
// history entry — leaving a coverage hole for historical reads.
func TestRegressionRootGrowthDuringTimeSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := newHarness(t, ModeTSB, 512, true)
	type event struct {
		ts  itime.Timestamp
		key string
	}
	var log []event
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("key-%02d", rng.Intn(30))
		stub := rng.Intn(8) == 0
		v := fmt.Sprintf("s%d-v%d", 1, i)
		ts := h.write(k, v, stub)
		log = append(log, event{ts, k})
		_, err := h.tree.ReadKey([]byte("key-08"), itime.Timestamp{Wall: 3, Seq: 0}, 0)
		if err != nil {
			t.Logf("FIRST FAILURE after write %d (%s @ %v)", i, k, ts)
			h.tree.dump(t)
			t.Fatal(err)
		}
	}
}
