package tsb

import (
	"bytes"
	"fmt"
	"sort"

	"immortaldb/internal/buffer"
	"immortaldb/internal/itime"
	"immortaldb/internal/storage/page"
)

// entrySlack over-estimates index entry growth so parent-room checks stay
// conservative.
const entrySlack = 32

// splitLeaf frees space on a full data page. Preference order depends on the
// table kind (Section 3.3):
//
//   - transaction-time tables: lazy-timestamp the page, TIME split at the
//     current time; if utilization after the time split is still above the
//     threshold T, key split as well; if the time split would free nothing,
//     key split only;
//   - snapshot-only tables: reclaim versions older than the snapshot
//     horizon; key split when that frees nothing;
//   - conventional (no-tail) tables: key split.
//
// On success it returns errRetry: the structure changed and the caller must
// re-descend. The caller releases path and lf.
func (t *Tree) splitLeaf(path []pathEntry, lf *buffer.Frame) error {
	dp := lf.Data()

	if t.stampPage(dp) {
		t.cfg.Pool.MarkDirty(lf, dp.LSN)
	}

	if !t.cfg.NoTail && !t.cfg.Immortal && t.cfg.SnapshotHorizon != nil {
		if removed := dp.GCOlderThan(t.cfg.SnapshotHorizon()); removed > 0 {
			// Like timestamping, version GC is not logged: redo never
			// resurrects reclaimed versions (page LSN is unchanged and GC
			// re-runs lazily), and undo only touches uncommitted versions,
			// which GC never removes.
			t.cfg.Pool.MarkDirty(lf, dp.LSN)
			if dp.Used()*4 < dp.Size*3 {
				return errRetry
			}
		}
	}

	wantTime := false
	var splitTS itime.Timestamp
	if t.cfg.Immortal && !t.cfg.NoTail && t.cfg.SplitNow != nil {
		splitTS = t.cfg.SplitNow()
		wantTime = dp.StartTS.Less(splitTS) && dp.TimeSplitGain(splitTS) > 0
	}

	// Ensure the parent can absorb the index growth before touching the data
	// page; if not, split the parent first and retry from the top.
	newEntries := 0
	if wantTime && t.cfg.Mode == ModeTSB {
		newEntries++ // history page entry
	}
	// A key split may follow the time split (threshold) or stand alone.
	newEntries++
	if err := t.ensureParentRoom(path, dp, newEntries); err != nil {
		return err
	}

	didSomething := false
	if wantTime {
		if err := t.timeSplitLeaf(path, lf, splitTS); err != nil {
			return err
		}
		if t.cfg.OnTimeSplit != nil {
			t.cfg.OnTimeSplit()
		}
		didSomething = true
		if len(path) == 0 && t.cfg.Mode == ModeTSB {
			// The time split grew an index root above this (formerly root)
			// leaf; the descent path is stale, so re-descend before any
			// follow-up key split.
			return errRetry
		}
		if float64(dp.Used()) <= t.cfg.Threshold*float64(dp.Size) {
			return errRetry
		}
	}
	if dp.NumKeys() < 2 {
		if didSomething {
			return errRetry
		}
		return fmt.Errorf("%w: page %d cannot shrink (1 oversized key)", ErrNoSpace, dp.ID)
	}
	if err := t.keySplitLeaf(path, lf); err != nil {
		return err
	}
	return errRetry
}

// ensureParentRoom makes sure the leaf's parent index page can take n more
// entries sized like the leaf's fences. With no parent (root leaf) there is
// always room — a fresh root index page is created during the split itself.
func (t *Tree) ensureParentRoom(path []pathEntry, dp *page.DataPage, n int) error {
	if len(path) == 0 {
		return nil
	}
	parent := path[len(path)-1]
	need := n * (indexEntrySize(dp.LowKey, dp.HighKey) + maxKeyLen(dp) + entrySlack)
	if parent.frame.Index().Used()+need <= t.cfg.Pool.PageSize() {
		return nil
	}
	if err := t.splitIndex(path, len(path)-1); err != nil {
		return err
	}
	return errRetry
}

func indexEntrySize(low, high []byte) int {
	e := page.IndexEntry{R: page.Rect{LowKey: low, HighKey: high}}
	probe := page.NewIndex(0, 1<<30, 1)
	before := probe.Used()
	probe.Add(e)
	return probe.Used() - before
}

func maxKeyLen(dp *page.DataPage) int {
	m := 0
	for i := range dp.Recs {
		if len(dp.Recs[i].Key) > m {
			m = len(dp.Recs[i].Key)
		}
	}
	return m
}

// timeSplitLeaf performs the time split of a current data page, (in ModeTSB)
// posting the history page's index entry. The parent is guaranteed to have
// room. Every in-memory change is applied first, then the whole set of
// touched pages is logged as ONE structure-modification record: a torn log
// tail keeps all of it or none of it, so recovery never sees the current
// page shrunk without the history page (and the entry routing to it) that
// absorbed its versions.
func (t *Tree) timeSplitLeaf(path []pathEntry, lf *buffer.Frame, splitTS itime.Timestamp) error {
	dp := lf.Data()
	oldStart := dp.StartTS
	histID, err := t.cfg.Pager.Allocate()
	if err != nil {
		return err
	}
	hist, err := dp.TimeSplit(splitTS, histID)
	if err != nil {
		return err
	}
	t.timeSplits.Add(1)
	obsTimeSplits.Inc()

	pages := []any{hist, dp}
	var parent *buffer.Frame
	var newRoot *page.IndexPage
	var rc *RootChange
	if t.cfg.Mode == ModeTSB {
		histEntry := page.IndexEntry{
			R: page.Rect{
				LowKey: cloneKey(dp.LowKey), HighKey: cloneKey(dp.HighKey),
				LowTS: oldStart, HighTS: splitTS,
			},
			Child: histID,
			Leaf:  true,
		}
		curEntry := page.IndexEntry{
			R: page.Rect{
				LowKey: cloneKey(dp.LowKey), HighKey: cloneKey(dp.HighKey),
				LowTS: splitTS, HighTS: itime.Max,
			},
			Child: dp.ID,
			Leaf:  true,
		}
		if len(path) == 0 {
			// Root was a leaf: grow an index root holding both regions.
			if newRoot, err = t.buildRoot(histEntry, curEntry); err != nil {
				return err
			}
			pages = append(pages, newRoot)
			rc = &RootChange{Root: newRoot.ID}
		} else {
			parent = path[len(path)-1].frame
			ip := parent.Index()
			if !ip.ReplaceChild(dp.ID, curEntry) {
				return fmt.Errorf("tsb: parent %d lost entry for page %d", ip.ID, dp.ID)
			}
			ip.Add(histEntry)
			pages = append(pages, ip)
		}
	}
	lsn, err := t.logSMO(pages, rc)
	if err != nil {
		return err
	}
	hist.LSN = lsn
	hf, err := t.cfg.Pool.NewPage(histID, hist, lsn)
	if err != nil {
		return err
	}
	t.cfg.Pool.Release(hf)
	dp.LSN = lsn
	t.cfg.Pool.MarkDirty(lf, lsn)
	switch {
	case newRoot != nil:
		return t.installRoot(newRoot, lsn)
	case parent != nil:
		parent.Index().LSN = lsn
		t.cfg.Pool.MarkDirty(parent, lsn)
	}
	return nil
}

// keySplitLeaf performs the key split of a current data page and updates the
// index. The parent is guaranteed to have room. Like timeSplitLeaf, all
// in-memory changes happen first and the touched pages are logged as ONE
// atomic structure-modification record.
func (t *Tree) keySplitLeaf(path []pathEntry, lf *buffer.Frame) error {
	dp := lf.Data()
	rightID, err := t.cfg.Pager.Allocate()
	if err != nil {
		return err
	}
	_, right, err := dp.KeySplit(rightID)
	if err != nil {
		return err
	}
	t.keySplits.Add(1)
	obsKeySplits.Inc()

	leftE := page.IndexEntry{R: t.currentRect(dp), Child: dp.ID, Leaf: true}
	rightE := page.IndexEntry{R: t.currentRect(right), Child: rightID, Leaf: true}
	pages := []any{right, dp}
	var parent *buffer.Frame
	var newRoot *page.IndexPage
	var rc *RootChange
	if len(path) == 0 {
		if newRoot, err = t.buildRoot(leftE, rightE); err != nil {
			return err
		}
		pages = append(pages, newRoot)
		rc = &RootChange{Root: newRoot.ID}
	} else {
		parent = path[len(path)-1].frame
		ip := parent.Index()
		if !ip.ReplaceChild(dp.ID, leftE) {
			return fmt.Errorf("tsb: parent %d lost entry for page %d", ip.ID, dp.ID)
		}
		ip.Add(rightE)
		pages = append(pages, ip)
	}
	lsn, err := t.logSMO(pages, rc)
	if err != nil {
		return err
	}
	right.LSN = lsn
	rf, err := t.cfg.Pool.NewPage(rightID, right, lsn)
	if err != nil {
		return err
	}
	t.cfg.Pool.Release(rf)
	dp.LSN = lsn
	t.cfg.Pool.MarkDirty(lf, lsn)
	switch {
	case newRoot != nil:
		return t.installRoot(newRoot, lsn)
	case parent != nil:
		parent.Index().LSN = lsn
		t.cfg.Pool.MarkDirty(parent, lsn)
	}
	return nil
}

// currentRect is the index rectangle for a current data page. In ModeTSB the
// time dimension starts at the page's split time; in ModeChain current
// entries cover all time (historical access goes through the chain, so every
// as-of scan must still reach the current pages).
func (t *Tree) currentRect(dp *page.DataPage) page.Rect {
	r := page.Rect{
		LowKey: cloneKey(dp.LowKey), HighKey: cloneKey(dp.HighKey),
		HighTS: itime.Max,
	}
	if t.cfg.Mode == ModeTSB {
		r.LowTS = dp.StartTS
	}
	return r
}

// buildRoot constructs (but does not install) a new index root holding the
// two entries. The caller logs it inside its structure-modification record
// and then installs it with installRoot — the root image, the root change,
// and the sibling images all travel in the same atomic record.
func (t *Tree) buildRoot(a, b page.IndexEntry) (*page.IndexPage, error) {
	id, err := t.cfg.Pager.Allocate()
	if err != nil {
		return nil, err
	}
	level := uint16(1)
	if !a.Leaf {
		// Children are index pages; root level grows above them. The exact
		// level is cosmetic; use 2+ to signal "above leaf parents".
		level = 2
	}
	root := page.NewIndex(id, t.cfg.Pool.PageSize(), level)
	root.Add(a)
	root.Add(b)
	return root, nil
}

// installRoot registers a freshly logged root page with the pool and points
// the tree at it.
func (t *Tree) installRoot(root *page.IndexPage, lsn uint64) error {
	root.LSN = lsn
	f, err := t.cfg.Pool.NewPage(root.ID, root, lsn)
	if err != nil {
		return err
	}
	t.cfg.Pool.Release(f)
	t.root = root.ID
	t.rootIsLeaf = false
	return nil
}

// splitIndex splits the index page at path[i], posting the results to its
// parent (path[i-1]) or growing a new root. It first ensures the parent has
// room, recursing upwards if needed. Always leaves the tree consistent; the
// caller retries from the root.
func (t *Tree) splitIndex(path []pathEntry, i int) error {
	pe := path[i]
	ip := pe.frame.Index()

	// Make sure the parent can absorb one extra entry.
	if i > 0 {
		parent := path[i-1].frame.Index()
		need := indexEntrySize(pe.rect.LowKey, pe.rect.HighKey) + 2*maxRectKeyLen(ip) + entrySlack
		if parent.Used()+need > t.cfg.Pool.PageSize() {
			return t.splitIndex(path, i-1)
		}
	}

	var current, hist []page.IndexEntry
	for _, e := range ip.Entries {
		if e.R.HighTS.IsMax() {
			current = append(current, e)
		} else {
			hist = append(hist, e)
		}
	}

	var leftE, rightE page.IndexEntry
	var right *page.IndexPage
	preferTime := len(hist) > len(current) && t.cfg.Mode == ModeTSB

	doKey := func() error {
		if len(current) < 2 {
			return fmt.Errorf("tsb: index page %d cannot key split (%d current entries)", ip.ID, len(current))
		}
		sort.Slice(current, func(a, b int) bool {
			return keyLess(current[a].R.LowKey, current[b].R.LowKey)
		})
		// Current entries partition the region's key space, so every LowKey
		// except the first (== the region's own LowKey) is a strict interior
		// boundary that cuts no current entry.
		b := current[len(current)/2].R.LowKey
		var lefts, rights []page.IndexEntry
		for _, e := range ip.Entries {
			switch {
			case e.R.HighKey != nil && bytes.Compare(e.R.HighKey, b) <= 0:
				lefts = append(lefts, e)
			case keyGE(e.R.LowKey, b):
				rights = append(rights, e)
			default:
				// Spanning (historical) entry: replicated in both halves.
				// Historical pages are immutable, so the redundancy is safe
				// (Section 3.3's replication argument applied to the index).
				lefts = append(lefts, e)
				rights = append(rights, e)
			}
		}
		if len(lefts) == 0 || len(rights) == 0 {
			return fmt.Errorf("tsb: index key split of %d produced an empty half", ip.ID)
		}
		rid, err := t.cfg.Pager.Allocate()
		if err != nil {
			return err
		}
		right = page.NewIndex(rid, t.cfg.Pool.PageSize(), ip.Level)
		right.Entries = rights
		ip.Entries = lefts
		lr := pe.rect
		lr.HighKey = cloneKey(b)
		rr := pe.rect
		rr.LowKey = cloneKey(b)
		leftE = page.IndexEntry{R: lr, Child: ip.ID}
		rightE = page.IndexEntry{R: rr, Child: rid}
		return nil
	}

	doTime := func() error {
		// Index time split at the oldest current child's start: everything
		// that ended before any current child began moves to a historical
		// index page.
		if len(current) == 0 {
			return fmt.Errorf("tsb: index page %d has no current entries", ip.ID)
		}
		tMin := itime.Max
		for _, e := range current {
			if e.R.LowTS.Less(tMin) {
				tMin = e.R.LowTS
			}
		}
		if !pe.rect.LowTS.Less(tMin) {
			return fmt.Errorf("tsb: index page %d time split boundary %v not past region start %v", ip.ID, tMin, pe.rect.LowTS)
		}
		var stay, move []page.IndexEntry
		for _, e := range ip.Entries {
			switch {
			case !e.R.HighTS.IsMax() && !e.R.HighTS.After(tMin):
				move = append(move, e)
			case e.R.LowTS.Less(tMin):
				// Spans the boundary: replicated.
				move = append(move, e)
				stay = append(stay, e)
			default:
				stay = append(stay, e)
			}
		}
		if len(move) == 0 {
			return fmt.Errorf("tsb: index page %d time split moved nothing", ip.ID)
		}
		rid, err := t.cfg.Pager.Allocate()
		if err != nil {
			return err
		}
		right = page.NewIndex(rid, t.cfg.Pool.PageSize(), ip.Level)
		right.Entries = move
		ip.Entries = stay
		hr := pe.rect
		hr.HighTS = tMin
		cr := pe.rect
		cr.LowTS = tMin
		leftE = page.IndexEntry{R: hr, Child: rid} // historical index page
		rightE = page.IndexEntry{R: cr, Child: ip.ID}
		return nil
	}

	var err error
	if preferTime {
		if err = doTime(); err != nil {
			err = doKey()
		}
	} else {
		if err = doKey(); err != nil && t.cfg.Mode == ModeTSB {
			err = doTime()
		}
	}
	if err != nil {
		return err
	}

	pages := []any{right, ip}
	var grand *buffer.Frame
	var newRoot *page.IndexPage
	var rc *RootChange
	if i == 0 {
		if newRoot, err = t.buildRoot(leftE, rightE); err != nil {
			return err
		}
		pages = append(pages, newRoot)
		rc = &RootChange{Root: newRoot.ID}
	} else {
		grand = path[i-1].frame
		gp := grand.Index()
		if !gp.ReplaceChild(ip.ID, pickEntryFor(ip.ID, leftE, rightE)) {
			return fmt.Errorf("tsb: grandparent %d lost entry for index page %d", gp.ID, ip.ID)
		}
		gp.Add(pickEntryNotFor(ip.ID, leftE, rightE))
		pages = append(pages, gp)
	}
	lsn, err := t.logSMO(pages, rc)
	if err != nil {
		return err
	}
	right.LSN = lsn
	rf, err := t.cfg.Pool.NewPage(right.ID, right, lsn)
	if err != nil {
		return err
	}
	t.cfg.Pool.Release(rf)
	ip.LSN = lsn
	t.cfg.Pool.MarkDirty(pe.frame, lsn)
	switch {
	case newRoot != nil:
		return t.installRoot(newRoot, lsn)
	case grand != nil:
		grand.Index().LSN = lsn
		t.cfg.Pool.MarkDirty(grand, lsn)
	}
	return nil
}

func pickEntryFor(id page.ID, a, b page.IndexEntry) page.IndexEntry {
	if a.Child == id {
		return a
	}
	return b
}

func pickEntryNotFor(id page.ID, a, b page.IndexEntry) page.IndexEntry {
	if a.Child == id {
		return b
	}
	return a
}

func maxRectKeyLen(ip *page.IndexPage) int {
	m := 0
	for i := range ip.Entries {
		if n := len(ip.Entries[i].R.LowKey); n > m {
			m = n
		}
		if n := len(ip.Entries[i].R.HighKey); n > m {
			m = n
		}
	}
	return m
}

func keyLess(a, b []byte) bool {
	if a == nil {
		return b != nil
	}
	if b == nil {
		return false
	}
	return bytes.Compare(a, b) < 0
}

func keyGE(a, b []byte) bool {
	if a == nil {
		return b == nil
	}
	if b == nil {
		return false // b = -inf only when nil; here b is a real boundary
	}
	return bytes.Compare(a, b) >= 0
}

func cloneKey(k []byte) []byte {
	if k == nil {
		return nil
	}
	out := make([]byte, len(k))
	copy(out, k)
	return out
}
