package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"immortaldb"
	"immortaldb/internal/admit"
	"immortaldb/internal/client"
	"immortaldb/internal/itime"
	"immortaldb/internal/sqlish"
	"immortaldb/internal/storage/vfs"
	"immortaldb/internal/workload"
)

// startServer opens a database and serves it on a loopback port, returning
// the pool-ready address. Cleanup force-stops the server; tests that shut
// down gracefully do so themselves first.
func startServer(t *testing.T, dir string, opts *immortaldb.Options, cfg Config) (*immortaldb.DB, *Server, string) {
	t.Helper()
	db, err := immortaldb.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv, addr.String()
}

// retryDeadlock runs fn, retrying while the server reports a deadlock
// victim or a first-committer-wins conflict.
func retryDeadlock(fn func() error) error {
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		err = fn()
		var re *client.RemoteError
		if err == nil || !errors.As(err, &re) {
			return err
		}
		if !strings.Contains(re.Msg, "deadlock") && !strings.Contains(re.Msg, "conflict") {
			return err
		}
		time.Sleep(time.Duration(attempt+1) * time.Millisecond)
	}
	return err
}

// TestServerConcurrentMixedClients drives 64 concurrent wire clients — a mix
// of serializable writers, snapshot-isolation readers, and AS OF historical
// readers — against one server. Run under -race in CI.
func TestServerConcurrentMixedClients(t *testing.T) {
	// The engine commits on a simulated clock, so the AS OF cut between the
	// seed state and the writers is a deterministic tick boundary instead
	// of a wall-clock sleep race.
	clock := itime.NewSimClock(time.Date(2004, 8, 12, 10, 0, 0, 0, time.UTC))
	_, srv, addr := startServer(t, t.TempDir(),
		&immortaldb.Options{NoSync: true, Clock: clock}, Config{MaxConns: 80})

	ctx := context.Background()
	pool, err := client.Open(addr, &client.Options{MaxConns: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if _, err := pool.Exec(ctx, "CREATE IMMORTAL TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	const seedRows = 8
	for k := 1; k <= seedRows; k++ {
		if _, err := pool.Exec(ctx, fmt.Sprintf("INSERT INTO kv VALUES (%d, 100)", k)); err != nil {
			t.Fatal(err)
		}
	}
	// Advance past the seed commits, cut the AS OF instant, then advance
	// again so no writer commit can share the cut's tick.
	clock.Advance(2 * itime.TickDuration)
	asOf := time.Unix(0, clock.NowTick()*int64(itime.TickDuration)).UTC().
		Format("2006-01-02T15:04:05.999999999Z07:00")
	clock.Advance(2 * itime.TickDuration)

	const clients = 64
	const iters = 4
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fail := func(err error) { errCh <- fmt.Errorf("client %d: %w", w, err) }
			switch w % 3 {
			case 0: // serializable writer: own key plus a contended seed key
				own := 1000 + w
				seed := w%seedRows + 1
				for i := 0; i < iters; i++ {
					var stmt string
					if i == 0 {
						stmt = fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", own, i)
					} else {
						stmt = fmt.Sprintf("UPDATE kv SET v = %d WHERE k = %d", i, own)
					}
					// Contended writers can deadlock; the engine picks a
					// victim and the client retries, like any real
					// application.
					err := retryDeadlock(func() error {
						tx, err := pool.Begin(ctx)
						if err != nil {
							return err
						}
						if _, err := tx.Exec(ctx, stmt); err != nil {
							tx.Rollback(ctx)
							return err
						}
						if _, err := tx.Exec(ctx, fmt.Sprintf("UPDATE kv SET v = 999 WHERE k = %d", seed)); err != nil {
							tx.Rollback(ctx)
							return err
						}
						return tx.Commit(ctx)
					})
					if err != nil {
						fail(err)
						return
					}
				}
			case 1: // snapshot reader
				for i := 0; i < iters; i++ {
					tx, err := pool.BeginSnapshot(ctx)
					if err != nil {
						fail(err)
						return
					}
					res, err := tx.Exec(ctx, "SELECT * FROM kv")
					if err != nil {
						tx.Rollback(ctx)
						fail(err)
						return
					}
					if len(res.Rows) < seedRows {
						tx.Rollback(ctx)
						fail(fmt.Errorf("snapshot saw %d rows, want >= %d", len(res.Rows), seedRows))
						return
					}
					if err := tx.Commit(ctx); err != nil {
						fail(err)
						return
					}
				}
			case 2: // AS OF historical reader: must see exactly the seed state
				for i := 0; i < iters; i++ {
					tx, err := pool.BeginAsOf(ctx, asOf)
					if err != nil {
						fail(err)
						return
					}
					res, err := tx.Exec(ctx, "SELECT * FROM kv")
					if err != nil {
						tx.Rollback(ctx)
						fail(err)
						return
					}
					if len(res.Rows) != seedRows {
						tx.Rollback(ctx)
						fail(fmt.Errorf("AS OF saw %d rows, want %d", len(res.Rows), seedRows))
						return
					}
					for _, row := range res.Rows {
						if row[1] != "100" {
							tx.Rollback(ctx)
							fail(fmt.Errorf("AS OF saw k=%s v=%s, want v=100", row[0], row[1]))
							return
						}
					}
					if err := tx.Commit(ctx); err != nil {
						fail(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	ss := srv.Stats()
	if ss.Panics != 0 {
		t.Fatalf("connection panics: %d", ss.Panics)
	}
	if ss.Requests == 0 {
		t.Fatal("server saw no requests")
	}
}

// TestServerGracefulShutdownDrain verifies the drain contract: a connection
// holding an open transaction gets to finish it — and its acknowledged
// commit survives a reopen — while new connections are refused and idle
// connections close.
func TestServerGracefulShutdownDrain(t *testing.T) {
	dir := t.TempDir()
	db, srv, addr := startServer(t, dir, &immortaldb.Options{NoSync: true}, Config{})

	ctx := context.Background()
	pool, err := client.Open(addr, &client.Options{MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Exec(ctx, "CREATE IMMORTAL TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}

	// Client A: open transaction with an uncommitted write.
	txA, err := pool.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txA.Exec(ctx, "INSERT INTO kv VALUES (1, 11)"); err != nil {
		t.Fatal(err)
	}

	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Shutdown(shutCtx) }()

	// Wait until the drain is observable.
	for !srv.Stats().Draining {
		time.Sleep(time.Millisecond)
	}
	// The listener is closed: fresh dials must fail.
	if _, err := client.Open(addr, &client.Options{DialRetries: 1, RetryBackoff: time.Millisecond}); err == nil {
		t.Fatal("dial during drain succeeded")
	}
	// Client A may keep working inside its transaction, then commit.
	if _, err := txA.Exec(ctx, "INSERT INTO kv VALUES (2, 22)"); err != nil {
		t.Fatalf("statement during drain: %v", err)
	}
	if err := txA.Commit(ctx); err != nil {
		t.Fatalf("commit during drain: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("db.Close: %v", err)
	}

	// The acknowledged commit survives a reopen.
	db2, err := immortaldb.Open(dir, &immortaldb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	sess := sqlish.NewSession(db2)
	defer sess.Close()
	res, err := sess.Exec("SELECT * FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("after reopen: %d rows, want 2", len(res.Rows))
	}
}

// TestServerShutdownForceClosesStragglers: a transaction that never commits
// is force-closed when the drain deadline passes, and its write is rolled
// back.
func TestServerShutdownForceCloses(t *testing.T) {
	db, srv, addr := startServer(t, t.TempDir(), &immortaldb.Options{NoSync: true}, Config{})

	ctx := context.Background()
	pool, err := client.Open(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Exec(ctx, "CREATE IMMORTAL TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	tx, err := pool.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, "INSERT INTO kv VALUES (9, 9)"); err != nil {
		t.Fatal(err)
	}

	shutCtx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel()
	// The connection either closes itself at the drain deadline (Shutdown
	// returns nil) or is force-closed just after it (deadline exceeded);
	// both end with the transaction rolled back.
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := tx.Exec(ctx, "INSERT INTO kv VALUES (10, 10)"); err == nil {
		t.Fatal("statement on force-closed connection succeeded")
	}
	// The straggler's session rolled back on force-close: its write is gone.
	sess := sqlish.NewSession(db)
	defer sess.Close()
	res, err := sess.Exec("SELECT * FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("force-closed transaction's write survived: %v", res.Rows)
	}
}

// TestServerKillRestartRecovery crashes the simulated disk under a serving
// database mid-workload, reboots, reopens — running ARIES recovery — and
// verifies every commit acknowledged over the wire is still there, read back
// over the wire from a restarted server.
func TestServerKillRestartRecovery(t *testing.T) {
	fs := vfs.NewSim(1)
	opts := &immortaldb.Options{FS: fs} // durable commits: acked means fsynced
	db, srv, addr := startServer(t, "simdb", opts, Config{})

	ctx := context.Background()
	pool, err := client.Open(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Exec(ctx, "CREATE IMMORTAL TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}

	var acked []int
	for k := 1; k <= 10; k++ {
		if _, err := pool.Exec(ctx, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", k, k*10)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		acked = append(acked, k)
	}

	// Power off. Every acknowledgement above is durable; everything after
	// this fails.
	fs.Crash()
	if _, err := pool.Exec(ctx, "INSERT INTO kv VALUES (99, 99)"); err == nil {
		t.Fatal("insert after crash succeeded")
	}
	pool.Close()
	srv.Close()
	db.Close() // fails against the crashed disk; the state is on the "disk"

	// Reboot and restart the server on the recovered database.
	fs.Reboot()
	db2, err := immortaldb.Open("simdb", &immortaldb.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	srv2 := New(db2, Config{})
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve()
	defer func() {
		srv2.Close()
		db2.Close()
	}()

	pool2, err := client.Open(addr2.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	res, err := pool2.Exec(ctx, "SELECT * FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]string{}
	for _, row := range res.Rows {
		k, _ := strconv.Atoi(row[0])
		got[k] = row[1]
	}
	for _, k := range acked {
		if got[k] != strconv.Itoa(k*10) {
			t.Fatalf("acked key %d lost or wrong after recovery: %q", k, got[k])
		}
	}
	if _, ok := got[99]; ok {
		t.Fatal("unacknowledged insert visible after recovery")
	}
}

// TestServerAdmissionGate runs the admission gate end to end over the wire:
// a tenant that exhausts its token bucket is shed with a typed, hinted
// CodeOverloaded; other tenants and untagged statements are untouched; and a
// session holding an open transaction bypasses the gate even with its
// tenant's bucket empty — a lock holder must always be able to finish.
func TestServerAdmissionGate(t *testing.T) {
	_, srv, addr := startServer(t, t.TempDir(), &immortaldb.Options{NoSync: true}, Config{
		Admission: &admit.Config{Tenant: admit.Quota{Burst: 2}},
	})
	ctx := context.Background()
	pool, err := client.Open(addr, &client.Options{DialRetries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Untagged DDL draws from the (unlimited) default bucket.
	if _, err := pool.Exec(ctx, workload.MeterCreate()); err != nil {
		t.Fatal(err)
	}
	stmt := func(tenant, seq uint32) string {
		return workload.MeterOp{Kind: workload.MeterAppend, Tenant: tenant, Period: 1, Seq: seq, Amount: 5}.Statement()
	}
	// Tenant 7 spends its burst of 2...
	for seq := uint32(1); seq <= 2; seq++ {
		if _, err := pool.Exec(ctx, stmt(7, seq)); err != nil {
			t.Fatalf("within quota (seq %d): %v", seq, err)
		}
	}
	// ...and the third statement is shed, typed and hinted.
	_, err = pool.Exec(ctx, stmt(7, 3))
	var re *client.RemoteError
	if !errors.As(err, &re) || !re.Overloaded() {
		t.Fatalf("over quota: got %v, want overloaded RemoteError", err)
	}
	if re.RetryAfter <= 0 {
		t.Fatal("quota shed carried no retry-after hint")
	}
	if srv.Stats().Shed == 0 {
		t.Fatal("gate shed counter did not move")
	}
	// Tenant 8 has its own bucket and is unaffected by 7's storm.
	if _, err := pool.Exec(ctx, stmt(8, 1)); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	// In-transaction statements bypass the gate even for the throttled
	// tenant: the transaction already holds locks.
	tx, err := pool.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint32(4); seq <= 6; seq++ {
		if _, err := tx.Exec(ctx, stmt(7, seq)); err != nil {
			t.Fatalf("in-tx exec (seq %d): %v", seq, err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServerRefusesOverCap fills the connection cap with pinned sessions and
// verifies the next connection is turned away, then admitted again after a
// slot frees up.
func TestServerRefusesOverCap(t *testing.T) {
	_, srv, addr := startServer(t, t.TempDir(), &immortaldb.Options{NoSync: true}, Config{MaxConns: 2})

	ctx := context.Background()
	pool, err := client.Open(addr, &client.Options{MaxConns: 4, DialRetries: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	s1, err := pool.Session(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pool.Session(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Session(ctx); err == nil {
		t.Fatal("third connection admitted over cap")
	} else {
		// The refusal is a typed, retryable overload with a retry-after
		// hint — not a dead-end generic dial failure.
		var re *client.RemoteError
		if !errors.As(err, &re) || !re.Overloaded() {
			t.Fatalf("over-cap refusal: got %v, want overloaded RemoteError", err)
		}
		if re.RetryAfter <= 0 {
			t.Fatal("over-cap refusal carried no retry-after hint")
		}
	}
	if srv.Stats().Refused == 0 {
		t.Fatal("refused counter did not move")
	}
	s1.Close()
	s2.Close()
	// Freed slots: a new session must be admitted (retry covers the window
	// in which the server has not yet reaped the closed connections).
	deadline := time.Now().Add(2 * time.Second)
	for {
		s3, err := pool.Session(ctx)
		if err == nil {
			s3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("connection still refused after close: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
