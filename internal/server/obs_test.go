package server

import (
	"context"
	"strings"
	"testing"

	"immortaldb"
	"immortaldb/internal/client"
	"immortaldb/internal/obs"
)

// TestRequestPathObservability drives real requests through the wire and
// checks the request-latency histogram accumulates and renders in the
// Prometheus exposition the /metrics endpoint serves.
func TestRequestPathObservability(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("obs compiled out (obsoff)")
	}
	count0, _, _, ok := obs.HistogramSnapshot("immortald_exec_seconds", 0.5)
	if !ok {
		t.Fatal("immortald_exec_seconds not registered")
	}

	_, _, addr := startServer(t, t.TempDir(),
		&immortaldb.Options{NoSync: true}, Config{MaxConns: 8})
	ctx := context.Background()
	pool, err := client.Open(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if _, err := pool.Exec(ctx, "CREATE IMMORTAL TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		if _, err := pool.Exec(ctx, "INSERT INTO kv VALUES (1, 1) ON CONFLICT UPDATE"); err != nil {
			// Statement dialect may not support upserts; plain updates serve
			// the same purpose.
			if _, err2 := pool.Exec(ctx, "UPDATE kv SET v = 2 WHERE k = 1"); err2 != nil {
				t.Fatalf("exec: %v / %v", err, err2)
			}
		}
	}

	count1, sum, qs, _ := obs.HistogramSnapshot("immortald_exec_seconds", 0.5, 0.99)
	if count1 < count0+n {
		t.Fatalf("exec histogram count = %d, want >= %d", count1, count0+n)
	}
	if sum <= 0 || len(qs) != 2 {
		t.Fatalf("exec histogram sum=%g quantiles=%v", sum, qs)
	}

	// The exposition the /metrics handler appends must carry the summary.
	var b strings.Builder
	obs.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE immortald_exec_seconds summary",
		`immortald_exec_seconds{quantile="0.99"}`,
		"immortald_exec_seconds_count",
		"immortald_inflight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
