// Package server is immortald's network serving layer: a TCP server
// speaking the wire protocol, with one sqlish session — and therefore at
// most one open transaction — per connection.
//
// The server enforces a connection cap, idle timeouts, and per-request I/O
// deadlines; isolates connection-handler panics; and shuts down gracefully:
// draining connections finish their in-flight request, connections holding
// an open transaction get until the shutdown deadline to commit or roll
// back, and everything left is force-closed (sessions roll their
// transactions back on the way out). An acknowledged commit is never lost:
// the engine hardens the commit record before the session returns, which is
// before the acknowledgement frame is written.
package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"immortaldb"
	"immortaldb/internal/admit"
	"immortaldb/internal/itime"
	"immortaldb/internal/obs"
	"immortaldb/internal/repl"
	"immortaldb/internal/wire"
)

// Observability: request-path latency per verb, the in-flight gauge, and
// the connection gauge. Exec latency covers statement execution plus the
// response write — what a client actually waits for after the frame lands.
var (
	obsExecLat  = obs.NewHistogram("immortald_exec_seconds", "Latency of one exec request: statement execution plus response write.", obs.LatencyBuckets)
	obsPingLat  = obs.NewHistogram("immortald_ping_seconds", "Latency of one ping round trip (server side).", obs.LatencyBuckets)
	obsInflight = obs.NewGauge("immortald_inflight_requests", "Requests currently executing across all connections.")
	obsConns    = obs.NewGauge("immortald_open_connections", "Currently open client connections.")
)

// Config tunes the server. The zero value serves with the defaults below.
type Config struct {
	// MaxConns caps concurrent connections (default 128). Connections over
	// the cap are refused with an error frame.
	MaxConns int
	// IdleTimeout closes a connection that sends no request for this long
	// (default 5m).
	IdleTimeout time.Duration
	// RequestTimeout bounds the network I/O of a single request/response
	// exchange — reading the request body, writing the response (default
	// 30s). Statement execution itself is bounded by the engine's lock
	// timeout, not preempted mid-flight.
	RequestTimeout time.Duration
	// Logf, when set, receives server diagnostics (accept errors, panics).
	Logf func(format string, args ...any)
	// Clock is the timeline idle and request deadlines and the drain window
	// are measured on (default: the real clock). The simulation harness
	// injects a virtual timeline here so whole scenarios run
	// wall-clock-fast. With a non-real Clock, Shutdown contexts should
	// carry no deadline (a real-time context deadline cannot be compared
	// against virtual time); bound the drain with the context's cancel.
	Clock itime.Timeline
	// Admission, when set, puts an admission gate in front of the Exec
	// path: per-tenant quotas, an adaptive concurrency limit, and bounded
	// deadline-aware queueing (see internal/admit). Nil serves ungated.
	// The gate inherits Clock unless Admission.Clock is set.
	Admission *admit.Config
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 128
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = itime.Real()
	}
	return c
}

// Stats is a snapshot of server counters for /metrics.
type Stats struct {
	// Accepted counts connections admitted; Refused those turned away over
	// the connection cap.
	Accepted, Refused uint64
	// ActiveConns is the number of connections currently open.
	ActiveConns int64
	// Requests counts statements executed; Errors those answered with an
	// error frame; Panics connection handlers killed by a panic.
	Requests, Errors, Panics uint64
	// Admitted and Shed mirror the admission gate's counters (zero when the
	// server runs ungated).
	Admitted, Shed uint64
	// Draining reports an in-progress graceful shutdown.
	Draining bool
}

// Server serves one database over one listener.
type Server struct {
	db  *immortaldb.DB
	cfg Config

	mu       sync.Mutex
	lis      net.Listener
	conns    map[*conn]struct{}
	draining bool
	closed   bool
	// drainUntil is the graceful-shutdown deadline (UnixNano); connections
	// holding an open transaction may keep serving requests until then.
	drainUntil atomic.Int64

	wg sync.WaitGroup // connection handlers

	// ship serves replication connections (created on first use; one per
	// server so follower horizon acks aggregate into one lag gauge).
	shipOnce sync.Once
	ship     *repl.Shipper

	accepted, refused  atomic.Uint64
	requests, errCount atomic.Uint64
	panics             atomic.Uint64
	active             atomic.Int64

	// primaryAddr is the cluster's current primary address, advertised in
	// CodeReadOnlyReplica refusals so they double as redirects. Empty when
	// unknown or when this server is itself the primary.
	primaryAddr atomic.Value // string

	// gate is the admission gate, nil when Config.Admission is nil.
	gate *admit.Gate
}

// New returns a server over db.
func New(db *immortaldb.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:    db,
		cfg:   cfg,
		conns: make(map[*conn]struct{}),
	}
	if cfg.Admission != nil {
		ac := *cfg.Admission
		if ac.Clock == nil {
			ac.Clock = cfg.Clock
		}
		s.gate = admit.New(ac)
	}
	return s
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// errBusy is sent to connections refused over the cap.
var errBusy = errors.New("server: connection limit reached")

// Listen starts listening on addr (e.g. ":7707" or "127.0.0.1:0") and
// returns the bound address. Serve must be called next.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		lis.Close()
		return nil, ErrServerClosed
	}
	s.lis = lis
	s.mu.Unlock()
	return lis.Addr(), nil
}

// ListenOn serves on an already-created listener — the simulation harness's
// in-memory network, or a caller-managed socket. Serve must be called next.
func (s *Server) ListenOn(lis net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		lis.Close()
		return ErrServerClosed
	}
	if s.lis != nil {
		return errors.New("server: already listening")
	}
	s.lis = lis
	return nil
}

// now reads the server's clock.
func (s *Server) now() time.Time { return s.cfg.Clock.Now() }

// Addr returns the listener's address, nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Serve accepts connections until Shutdown or Close. It always returns a
// non-nil error; after a graceful shutdown that error is ErrServerClosed.
func (s *Server) Serve() error {
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.draining || s.closed
			s.mu.Unlock()
			if stopping {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if s.active.Load() >= int64(s.cfg.MaxConns) {
			s.refused.Add(1)
			s.refuse(nc)
			continue
		}
		c := &conn{srv: s, nc: nc}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			s.refuse(nc)
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		obsConns.Inc()
		s.wg.Add(1)
		go c.serve()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if _, err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// connRetryAfter is the retry-after hint attached to connection-cap
// refusals: long enough for a slot to open under churn, short enough that a
// waiting client notices promptly.
const connRetryAfter = 100 * time.Millisecond

// refuse best-effort sends an error frame and closes the connection. The
// refusal is a retryable CodeOverloaded with a retry-after hint — a full
// connection table is a moment, not a verdict, and a cooperative client
// should wait it out instead of burning its dial budget rediscovering it.
func (s *Server) refuse(nc net.Conn) {
	nc.SetDeadline(s.now().Add(s.cfg.RequestTimeout))
	msg := wire.OverloadMsg(errBusy.Error(), connRetryAfter)
	wire.WriteFrame(nc, wire.MsgError, wire.ErrorPayload(wire.CodeOverloaded, msg))
	nc.Close()
}

// Shutdown gracefully stops the server: the listener closes, idle
// connections without an open transaction close immediately, connections
// mid-request finish and are answered, and connections holding an open
// transaction may keep issuing statements until ctx expires — enough to
// COMMIT or ROLLBACK. When ctx expires, survivors are force-closed and
// their sessions roll back. Shutdown does not close the database.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	until := s.now().Add(24 * time.Hour)
	if d, ok := ctx.Deadline(); ok {
		until = d
	}
	s.drainUntil.Store(until.UnixNano())
	if s.lis != nil {
		s.lis.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	// Wake connections blocked in Read so they observe the drain. A
	// connection mid-request is not disturbed: the deadline poke only
	// affects the blocked idle read, and the handler re-arms deadlines
	// before every exchange.
	for _, c := range conns {
		c.wakeForDrain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close() // handler sees the error, rolls back, exits
		}
		s.mu.Unlock()
		<-done
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return err
}

// Close force-stops the server without draining.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	if s.lis != nil {
		s.lis.Close()
	}
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	st := Stats{
		Accepted:    s.accepted.Load(),
		Refused:     s.refused.Load(),
		ActiveConns: s.active.Load(),
		Requests:    s.requests.Load(),
		Errors:      s.errCount.Load(),
		Panics:      s.panics.Load(),
		Draining:    draining,
	}
	if s.gate != nil {
		gs := s.gate.Stats()
		st.Admitted, st.Shed = gs.Admitted, gs.Shed
	}
	return st
}

// Gate exposes the admission gate, nil when the server runs ungated. The
// simulation harness uses it to refill quota buckets at deterministic phase
// barriers; /healthz reads its Stats.
func (s *Server) Gate() *admit.Gate { return s.gate }

// DB exposes the served database (metrics endpoints read its Stats).
func (s *Server) DB() *immortaldb.DB { return s.db }

// SetPrimaryAddr records the cluster's current primary address. A replica
// server embeds it in every write refusal so clients re-resolve without an
// external directory; set it to "" (or to this server's own address) after a
// promotion makes this server the primary.
func (s *Server) SetPrimaryAddr(addr string) { s.primaryAddr.Store(addr) }

// PrimaryAddr returns the advertised primary address, "" when unset.
func (s *Server) PrimaryAddr() string {
	if v := s.primaryAddr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// shipper lazily creates the replication shipper.
func (s *Server) shipper() *repl.Shipper {
	s.shipOnce.Do(func() { s.ship = repl.NewShipper(s.db) })
	return s.ship
}

// Shipper exposes the replication shipper's stats (nil-safe: creates it).
func (s *Server) Shipper() *repl.Shipper { return s.shipper() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.active.Add(-1)
	obsConns.Dec()
	s.wg.Done()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
